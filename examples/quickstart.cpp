// Quickstart: build the paper's default scenario, run the hybrid scheduler
// at one cutoff, and print per-class QoS. Start here.
#include <iostream>

#include "exp/scenario.hpp"
#include "exp/table.hpp"

int main() {
  using namespace pushpull;

  // 1. The workload: 100 Zipf(0.6) items, Poisson arrivals at rate 5,
  //    three client classes A/B/C (A most important, fewest clients).
  exp::Scenario scenario;
  scenario.num_requests = 50000;
  const auto built = scenario.build();

  // 2. The scheduler: push the 40 hottest items in a flat cycle, serve the
  //    rest on demand ordered by the importance factor (alpha balances
  //    stretch vs. client priority).
  core::HybridConfig config;
  config.cutoff = 40;
  config.alpha = 0.5;
  config.pull_policy = sched::PullPolicyKind::kImportance;

  // 3. Run and report.
  const core::SimResult result = exp::run_hybrid(built, config);

  std::cout << "pushpull quickstart — hybrid scheduling with service "
               "classification\n\n";
  exp::Table table({"class", "priority", "share", "requests", "mean delay",
                    "p-cost"});
  for (workload::ClassId c = 0; c < built.population.num_classes(); ++c) {
    const auto& stats = result.per_class[c];
    table.row()
        .add(std::string(built.population.cls(c).name))
        .add(built.population.priority(c), 0)
        .add(built.population.share(c), 3)
        .add(static_cast<std::size_t>(stats.arrived))
        .add(stats.wait.mean(), 2)
        .add(result.prioritized_cost(built.population, c), 2);
  }
  table.print(std::cout);
  std::cout << "\npush transmissions: " << result.push_transmissions
            << ", pull transmissions: " << result.pull_transmissions
            << "\nmean pull-queue length: " << result.mean_pull_queue_len
            << "\ntotal prioritized cost: "
            << result.total_prioritized_cost(built.population) << "\n";
  return 0;
}
