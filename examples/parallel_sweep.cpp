// Parallel replications and sweeps with the runtime engine.
//
// Demonstrates the determinism contract end to end: a 12-replication run is
// executed serially and with every hardware thread, the two summaries are
// compared bit-for-bit, and a cutoff sweep fans out across workers while
// JSONL progress telemetry streams to stderr.
#include <iostream>

#include "exp/replication.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "exp/table.hpp"
#include "runtime/runtime.hpp"

int main() {
  using namespace pushpull;

  exp::Scenario scenario;
  scenario.num_requests = 10000;
  core::HybridConfig config;
  config.cutoff = 30;
  config.alpha = 0.5;

  // 1) Replications: serial vs all-cores, same numbers either way.
  exp::ReplicateOptions serial_opts;
  serial_opts.jobs = 1;
  const runtime::StopWatch serial_watch;
  const auto serial = exp::replicate_hybrid(scenario, config, 12,
                                            serial_opts);
  const double serial_ms = serial_watch.elapsed_ms();

  exp::ReplicateOptions parallel_opts;
  parallel_opts.jobs = 0;  // one worker per hardware thread
  const runtime::StopWatch parallel_watch;
  const auto parallel = exp::replicate_hybrid(scenario, config, 12,
                                              parallel_opts);
  const double parallel_ms = parallel_watch.elapsed_ms();

  std::cout << "replicate x12: serial " << serial_ms << " ms, parallel "
            << parallel_ms << " ms ("
            << runtime::ThreadPool::default_concurrency() << " workers)\n"
            << "overall delay " << serial.overall_delay.mean() << " vs "
            << parallel.overall_delay.mean() << " -> "
            << (serial.overall_delay.mean() == parallel.overall_delay.mean()
                    ? "bit-identical"
                    : "DIVERGED (bug!)")
            << "\n\n";

  // 2) A cutoff sweep over one shared trace, with live JSONL telemetry.
  const auto built = scenario.build();
  const std::size_t cutoffs[] = {10, 20, 30, 40, 60, 80};
  runtime::RunReporter reporter(std::cerr);
  exp::SweepOptions sweep_opts;
  sweep_opts.jobs = 0;
  sweep_opts.reporter = &reporter;
  sweep_opts.label = "cutoff-sweep";
  const auto results = exp::sweep(
      std::size(cutoffs),
      [&](std::size_t i) {
        core::HybridConfig c = config;
        c.cutoff = cutoffs[i];
        return exp::run_hybrid(built, c);
      },
      sweep_opts);

  exp::Table table({"K", "delay A", "delay C", "total cost"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    table.row()
        .add(cutoffs[i])
        .add(results[i].mean_wait(0), 2)
        .add(results[i].mean_wait(2), 2)
        .add(results[i].total_prioritized_cost(built.population), 2);
  }
  table.print(std::cout);
  return 0;
}
