// Adaptive scheduling under drift: the hot items change every epoch (think
// breaking news cycles); a static push set goes stale, while the adaptive
// server re-learns popularity online and re-optimizes the cutoff. This
// example prints the cutoff trajectory so you can watch it track the drift.
#include <iostream>

#include "core/adaptive_server.hpp"
#include "core/hybrid_server.hpp"
#include "exp/table.hpp"
#include "workload/drifting_generator.hpp"

int main() {
  using namespace pushpull;

  catalog::Catalog cat(100, 1.0, catalog::LengthModel::paper_default(), 17);
  const auto pop = workload::ClientPopulation::paper_default();

  // The hot set rotates by a third of the catalog every 500 time units.
  workload::DriftingGenerator gen(cat, pop, 5.0, /*epoch=*/500.0,
                                  /*shift=*/33, /*seed=*/17);
  const workload::Trace trace = workload::Trace::record(gen, 40000);

  std::cout << "adaptive_drift — popularity rotates by 33 ranks every 500 "
               "units\n\n";

  // Static server, tuned for epoch 0 and left alone.
  core::HybridConfig static_config;
  static_config.cutoff = 30;
  static_config.alpha = 0.5;
  core::HybridServer fixed(cat, pop, static_config);
  const core::SimResult rs = fixed.run(trace);

  // Adaptive server: EWMA popularity estimate, analytic K-scan every 150
  // units, pending requests migrated across the boundary.
  core::AdaptiveConfig adaptive;
  adaptive.initial_cutoff = 30;
  adaptive.alpha = 0.5;
  adaptive.reoptimize_interval = 150.0;
  adaptive.estimator_half_life = 200.0;
  adaptive.scan_step = 5;
  core::AdaptiveHybridServer dynamic(cat, pop, adaptive);
  const core::AdaptiveResult ra = dynamic.run(trace);

  exp::Table compare({"server", "delay A", "delay B", "delay C", "overall",
                      "total cost"});
  compare.row()
      .add("static K=30 (stale)")
      .add(rs.mean_wait(0), 2)
      .add(rs.mean_wait(1), 2)
      .add(rs.mean_wait(2), 2)
      .add(rs.overall().wait.mean(), 2)
      .add(rs.total_prioritized_cost(pop), 2);
  compare.row()
      .add("adaptive")
      .add(ra.mean_wait(0), 2)
      .add(ra.mean_wait(1), 2)
      .add(ra.mean_wait(2), 2)
      .add(ra.overall().wait.mean(), 2)
      .add(ra.total_prioritized_cost(pop), 2);
  compare.print(std::cout);

  std::cout << "\ncutoff trajectory (" << ra.reoptimizations
            << " re-optimizations):\n";
  exp::Table history({"time", "push-set size"});
  // Print every 4th entry to keep the trajectory readable.
  for (std::size_t i = 0; i < ra.cutoff_history.size(); i += 4) {
    history.row()
        .add(ra.cutoff_history[i].first, 0)
        .add(ra.cutoff_history[i].second);
  }
  history.print(std::cout);
  return 0;
}
