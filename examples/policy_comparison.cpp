// Policy comparison: every pull-selection discipline on the identical
// request trace, split by service class — the quickest way to see what the
// paper's importance factor buys over the classical baselines.
#include <iostream>

#include "exp/scenario.hpp"
#include "exp/table.hpp"

int main() {
  using namespace pushpull;

  exp::Scenario scenario;
  scenario.theta = 0.60;
  scenario.num_requests = 50000;
  const auto built = scenario.build();

  std::cout << "policy_comparison — pull disciplines on one trace "
               "(K = 20, alpha = 0.25 for importance forms)\n\n";

  exp::Table table({"policy", "delay A", "delay B", "delay C", "overall",
                    "total cost"});
  struct Row {
    sched::PullPolicyKind kind;
    const char* note;
  };
  const Row rows[] = {
      {sched::PullPolicyKind::kFcfs, "oldest request first"},
      {sched::PullPolicyKind::kMrf, "most requests first"},
      {sched::PullPolicyKind::kStretch, "stretch-optimal"},
      {sched::PullPolicyKind::kPriority, "summed client priority"},
      {sched::PullPolicyKind::kRxw, "requests x wait"},
      {sched::PullPolicyKind::kImportance, "paper Eq. 1"},
      {sched::PullPolicyKind::kImportanceQueueAware, "paper Eq. 6"},
  };
  double importance_cost = 0.0;
  double best_baseline_cost = 0.0;
  bool have_baseline = false;
  for (const Row& row : rows) {
    core::HybridConfig config;
    config.cutoff = 20;
    config.alpha = 0.25;
    config.pull_policy = row.kind;
    const core::SimResult r = exp::run_hybrid(built, config);
    const double cost = r.total_prioritized_cost(built.population);
    table.row()
        .add(std::string(sched::to_string(row.kind)))
        .add(r.mean_wait(0), 2)
        .add(r.mean_wait(1), 2)
        .add(r.mean_wait(2), 2)
        .add(r.overall().wait.mean(), 2)
        .add(cost, 2);
    if (row.kind == sched::PullPolicyKind::kImportance) {
      importance_cost = cost;
    } else if (row.kind != sched::PullPolicyKind::kImportanceQueueAware) {
      if (!have_baseline || cost < best_baseline_cost) {
        best_baseline_cost = cost;
        have_baseline = true;
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nimportance-factor total cost " << importance_cost
            << " vs best priority-blind baseline " << best_baseline_cost
            << "\n";
  return 0;
}
