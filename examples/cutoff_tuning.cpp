// Cutoff tuning: the paper's periodic re-optimization of the push/pull
// split, done two ways — by brute-force simulation and by the analytical
// access-time model — showing that the fast analytic scan lands near the
// simulated optimum.
#include <chrono>
#include <iostream>

#include "core/cutoff_optimizer.hpp"
#include "exp/scenario.hpp"
#include "exp/table.hpp"
#include "queueing/access_time.hpp"

int main() {
  using namespace pushpull;
  using Clock = std::chrono::steady_clock;

  exp::Scenario scenario;
  scenario.theta = 0.60;
  scenario.num_requests = 40000;
  const auto built = scenario.build();
  const double alpha = 0.5;

  std::cout << "cutoff_tuning — finding the optimal push/pull split\n\n";

  // Route 1: simulate every candidate cutoff (expensive, exact).
  const auto t0 = Clock::now();
  const auto sim_cost = [&](std::size_t k) {
    core::HybridConfig config;
    config.cutoff = k;
    config.alpha = alpha;
    return exp::run_hybrid(built, config)
        .total_prioritized_cost(built.population);
  };
  const core::CutoffScan sim_scan = core::scan_cutoffs(5, 100, 5, sim_cost);
  const auto t1 = Clock::now();

  // Route 2: scan the analytical model (instant, approximate).
  queueing::HybridAccessModel model(built.catalog, built.population,
                                    scenario.arrival_rate);
  const auto model_cost = [&](std::size_t k) {
    return model.prioritized_cost(k, alpha);
  };
  const core::CutoffScan model_scan =
      core::scan_cutoffs(5, 100, 5, model_cost);
  const auto t2 = Clock::now();

  exp::Table table({"K", "simulated cost", "model cost"});
  for (std::size_t i = 0; i < sim_scan.curve.size(); ++i) {
    table.row()
        .add(sim_scan.curve[i].cutoff)
        .add(sim_scan.curve[i].cost, 2)
        .add(model_scan.curve[i].cost, 2);
  }
  table.print(std::cout);

  const auto ms = [](auto d) {
    return std::chrono::duration_cast<std::chrono::milliseconds>(d).count();
  };
  std::cout << "\nsimulated optimum:  K* = " << sim_scan.best_cutoff
            << " (cost " << sim_scan.best_cost << ", " << ms(t1 - t0)
            << " ms)\n";
  std::cout << "analytic optimum:   K* = " << model_scan.best_cutoff
            << " (cost " << model_scan.best_cost << ", " << ms(t2 - t1)
            << " ms)\n";
  std::cout << "cost of running the analytic K* in simulation: "
            << sim_cost(model_scan.best_cutoff) << "\n";
  return 0;
}
