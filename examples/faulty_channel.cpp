// Faulty channel: the same hybrid schedule over a clean downlink and over a
// Gilbert–Elliott burst-error downlink, side by side. Shows how to enable
// fault injection, what corruption does to each service class, and how the
// bounded-retry recovery and overload shedding show up in the counters.
#include <iostream>

#include "exp/scenario.hpp"
#include "exp/table.hpp"

int main() {
  using namespace pushpull;

  // The paper's workload, replayed identically through both servers so the
  // only difference is the channel.
  exp::Scenario scenario;
  scenario.num_requests = 50000;
  const auto built = scenario.build();

  core::HybridConfig clean;
  clean.cutoff = 40;
  clean.alpha = 0.5;

  core::HybridConfig noisy = clean;
  noisy.fault.enabled = true;
  noisy.fault.channel.p_good_to_bad = 0.10;  // bursts start often...
  noisy.fault.channel.p_bad_to_good = 0.30;  // ...and last ~3 transmissions
  noisy.fault.channel.corrupt_bad = 0.75;    // most bad-state tx are garbage
  noisy.fault.retry.max_retries = 3;         // then the request is lost
  noisy.fault.retry.backoff_base = 1.0;      // retry after 1, 2, 4 units
  noisy.fault.queue_capacity = 64;           // shed if the queue overflows
  noisy.fault.shed_policy = fault::ShedPolicy::kDropLowestPriority;

  const core::SimResult before = exp::run_hybrid(built, clean);
  const core::SimResult after = exp::run_hybrid(built, noisy);

  std::cout << "faulty_channel — hybrid scheduling over a burst-error "
               "downlink\n(stationary bad-state fraction: "
            << noisy.fault.channel.stationary_bad() << ")\n\n";

  exp::Table table({"class", "clean delay", "noisy delay", "corrupted",
                    "retries", "shed", "lost", "goodput"});
  for (workload::ClassId c = 0; c < built.population.num_classes(); ++c) {
    const auto& n = after.per_class[c];
    table.row()
        .add(std::string(built.population.cls(c).name))
        .add(before.per_class[c].wait.mean(), 2)
        .add(n.wait.mean(), 2)
        .add(static_cast<std::size_t>(n.corrupted))
        .add(static_cast<std::size_t>(n.retries))
        .add(static_cast<std::size_t>(n.shed))
        .add(static_cast<std::size_t>(n.lost))
        .add(n.goodput_ratio(), 4);
  }
  table.print(std::cout);

  std::cout << "\ncorrupted transmissions: push "
            << after.corrupted_push_transmissions << ", pull "
            << after.corrupted_pull_transmissions << " of "
            << after.total_transmissions() << " (ratio "
            << after.corruption_ratio() << ")\n"
            << "Class A keeps the best goodput and the smallest delay "
               "inflation: corrupted pushes cost one extra cycle for "
               "everyone, but the priority shedding policy protects "
               "high-importance pulls when the bounded queue overflows.\n";
  return 0;
}
