// Carrier scenario: a wireless operator with gold/silver/bronze subscriber
// tiers must (a) keep gold delay low and (b) keep gold blocking near zero
// on a bandwidth-constrained downlink. This example sizes the per-tier
// bandwidth partition by sweeping the gold share, then reports the QoS
// each tier actually receives — the paper's end-to-end story.
#include <iostream>

#include "exp/scenario.hpp"
#include "exp/table.hpp"

int main() {
  using namespace pushpull;

  // The operator's catalog: 100 items, moderately skewed popularity; three
  // subscriber tiers with priorities 3:2:1, gold being the smallest tier.
  exp::Scenario scenario;
  scenario.theta = 0.60;
  scenario.num_requests = 60000;
  const auto built = scenario.build();

  std::cout << "carrier_qos — sizing per-tier bandwidth on a constrained "
               "downlink\n\n";
  std::cout << "subscriber mix:\n";
  for (workload::ClassId c = 0; c < built.population.num_classes(); ++c) {
    std::cout << "  " << built.population.cls(c).name << ": priority "
              << built.population.priority(c) << ", share "
              << built.population.share(c) << "\n";
  }

  // Step 1: sweep the gold bandwidth share on the constrained channel.
  std::cout << "\nstep 1 — gold bandwidth share sweep (total bandwidth 5, "
               "mean demand 2, K = 10):\n";
  exp::Table sweep({"gold share", "gold block", "silver block",
                    "bronze block", "gold delay"});
  double chosen_share = 1.0 / 3.0;
  double chosen_blocking = 1.0;
  constexpr double kGoldBlockingSla = 0.05;  // at most 5% gold drops
  bool met = false;
  for (double share : {0.2, 1.0 / 3.0, 0.5, 0.7, 0.85}) {
    core::HybridConfig config;
    config.cutoff = 10;
    config.alpha = 0.25;  // priority-leaning importance factor
    config.total_bandwidth = 5.0;
    config.mean_bandwidth_demand = 2.0;
    const double rest = (1.0 - share) / 2.0;
    config.bandwidth_fractions = {share, rest, rest};
    const core::SimResult r = exp::run_hybrid(built, config);
    sweep.row()
        .add(share, 2)
        .add(r.per_class[0].blocking_ratio(), 4)
        .add(r.per_class[1].blocking_ratio(), 4)
        .add(r.per_class[2].blocking_ratio(), 4)
        .add(r.mean_wait(0), 2);
    const double gold_blocking = r.per_class[0].blocking_ratio();
    if (!met && gold_blocking <= kGoldBlockingSla) {
      chosen_share = share;
      chosen_blocking = gold_blocking;
      met = true;
    } else if (!met && gold_blocking < chosen_blocking) {
      chosen_share = share;  // best so far, in case nothing meets the SLA
      chosen_blocking = gold_blocking;
    }
  }
  sweep.print(std::cout);
  if (met) {
    std::cout << "\nsmallest gold share meeting the " << kGoldBlockingSla * 100
              << "% blocking SLA: " << chosen_share << "\n";
  } else {
    std::cout << "\nno swept share meets the " << kGoldBlockingSla * 100
              << "% SLA on this channel; using the share with the lowest "
                 "gold blocking ("
              << chosen_share << ", blocking " << chosen_blocking << ")\n";
  }

  // Step 2: with the partition fixed, report the final per-tier QoS.
  core::HybridConfig final_config;
  final_config.cutoff = 10;
  final_config.alpha = 0.25;
  final_config.total_bandwidth = 5.0;
  final_config.mean_bandwidth_demand = 2.0;
  const double rest = (1.0 - chosen_share) / 2.0;
  final_config.bandwidth_fractions = {chosen_share, rest, rest};
  const core::SimResult r = exp::run_hybrid(built, final_config);

  std::cout << "\nstep 2 — delivered QoS:\n";
  exp::Table qos({"tier", "mean delay", "p-cost", "blocking", "served"});
  for (workload::ClassId c = 0; c < built.population.num_classes(); ++c) {
    qos.row()
        .add(std::string(built.population.cls(c).name))
        .add(r.mean_wait(c), 2)
        .add(r.prioritized_cost(built.population, c), 2)
        .add(r.per_class[c].blocking_ratio(), 4)
        .add(static_cast<std::size_t>(r.per_class[c].served));
  }
  qos.print(std::cout);
  return 0;
}
