// Trace record/replay: capture a workload to CSV, load it back, and replay
// it against two scheduler configurations. Replay is what makes every
// comparison in this library *paired* — both configurations see the exact
// same request stream.
#include <fstream>
#include <iostream>
#include <sstream>

#include "exp/scenario.hpp"
#include "exp/table.hpp"
#include "workload/request_generator.hpp"
#include "workload/trace.hpp"

int main() {
  using namespace pushpull;

  exp::Scenario scenario;
  scenario.num_requests = 30000;
  const auto built = scenario.build();

  // 1. Record a fresh trace (independent of the scenario's own trace) and
  //    round-trip it through CSV.
  workload::RequestGenerator gen(built.catalog, built.population,
                                 scenario.arrival_rate, /*seed=*/777);
  const workload::Trace recorded = workload::Trace::record(gen, 30000);

  const char* path = "trace_replay_example.csv";
  {
    std::ofstream out(path);
    recorded.save_csv(out);
  }
  workload::Trace loaded;
  {
    std::ifstream in(path);
    loaded = workload::Trace::load_csv(in);
  }
  std::cout << "trace_replay — recorded " << recorded.size()
            << " requests spanning " << recorded.span()
            << " broadcast units; reloaded " << loaded.size()
            << " from " << path << "\n\n";

  // 2. Replay the same trace under two configurations.
  core::HybridConfig priority_leaning;
  priority_leaning.cutoff = 30;
  priority_leaning.alpha = 0.25;

  core::HybridConfig stretch_leaning = priority_leaning;
  stretch_leaning.alpha = 0.75;

  core::HybridServer server_a(built.catalog, built.population,
                              priority_leaning);
  core::HybridServer server_b(built.catalog, built.population,
                              stretch_leaning);
  const core::SimResult ra = server_a.run(loaded);
  const core::SimResult rb = server_b.run(loaded);

  exp::Table table({"config", "delay A", "delay B", "delay C", "overall",
                    "total cost"});
  table.row()
      .add("alpha=0.25 (priority-leaning)")
      .add(ra.mean_wait(0), 2)
      .add(ra.mean_wait(1), 2)
      .add(ra.mean_wait(2), 2)
      .add(ra.overall().wait.mean(), 2)
      .add(ra.total_prioritized_cost(built.population), 2);
  table.row()
      .add("alpha=0.75 (stretch-leaning)")
      .add(rb.mean_wait(0), 2)
      .add(rb.mean_wait(1), 2)
      .add(rb.mean_wait(2), 2)
      .add(rb.overall().wait.mean(), 2)
      .add(rb.total_prioritized_cost(built.population), 2);
  table.print(std::cout);

  std::cout << "\nidentical arrivals, identical items — only the pull "
               "selection changed.\n";
  return 0;
}
