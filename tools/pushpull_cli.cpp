// pushpull — command-line driver for the hybrid-scheduling library.
//
//   pushpull simulate  [--theta T] [--alpha A] [--cutoff K] [--requests N]
//                      [--seed S] [--policy NAME] [--bandwidth B]
//                      [--demand D] [--patience P] [--csv]
//   pushpull optimize  [--theta T] [--alpha A] [--step STEP] [--analytic]
//   pushpull model     [--theta T] [--alpha A] [--cutoff K]
//   pushpull replicate [--theta T] [--alpha A] [--cutoff K] [--reps R]
//                      [--jobs N] [--progress FILE] [--resume]
//   pushpull trace     [--out FILE] [--trace FILE] [--requests N] [--seed S]
//
// All commands run the paper's §5.1 scenario (D = 100 items, λ' = 5,
// lengths 1..5 mean 2, three classes) with the given overrides. Fault
// injection (`--fault*`, `--queue-cap`, `--shed`) applies wherever the
// hybrid server runs, and `--trace FILE` records a deterministic sim-time
// event trace (JSONL) wherever it does; see `pushpull help`.
#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <initializer_list>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "core/adaptive_server.hpp"
#include "lint.hpp"
#include "report.hpp"
#include "core/closed_loop.hpp"
#include "core/cutoff_optimizer.hpp"
#include "core/multichannel_server.hpp"
#include "exp/chaos.hpp"
#include "exp/cli.hpp"
#include "exp/replication.hpp"
#include "fault/fault_config.hpp"
#include "metrics/sorted_view.hpp"
#include "obs/category.hpp"
#include "obs/config.hpp"
#include "obs/export.hpp"
#include "obs/observer.hpp"
#include "obs/trace.hpp"
#include "resilience/invariants.hpp"
#include "resilience/resilience_config.hpp"
#include "rng/splitmix64.hpp"
#include "scenario/presets.hpp"
#include "scenario/shaper.hpp"
#include "scenario/timeline.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/run_reporter.hpp"
#include "exp/report.hpp"
#include "exp/scenario.hpp"
#include "exp/table.hpp"
#include "queueing/access_time.hpp"
#include "serve/serve.hpp"
#include "uplink/slotted_aloha.hpp"
#include "workload/drifting_generator.hpp"
#include "workload/request_generator.hpp"

namespace {

using namespace pushpull;

exp::Scenario scenario_from(const exp::ArgParser& args) {
  exp::Scenario s;
  s.theta = args.get_double("theta", s.theta);
  s.num_items = args.get_size("items", s.num_items);
  s.arrival_rate = args.get_double("rate", s.arrival_rate);
  s.num_requests = args.get_size("requests", 50000);
  s.seed = args.get_u64("seed", s.seed);
  s.jobs = args.get_jobs("jobs");
  s.preset = pushpull::scenario::parse_preset(
      args.get_string("scenario", "none"));
  s.preset_intensity = args.get_positive_double("scenario-intensity", 1.0);
  return s;
}

sched::PullPolicyKind policy_from(const std::string& name) {
  for (auto kind :
       {sched::PullPolicyKind::kFcfs, sched::PullPolicyKind::kMrf,
        sched::PullPolicyKind::kStretch, sched::PullPolicyKind::kPriority,
        sched::PullPolicyKind::kRxw, sched::PullPolicyKind::kLwf,
        sched::PullPolicyKind::kImportance,
        sched::PullPolicyKind::kImportanceQueueAware}) {
    if (name == sched::to_string(kind)) return kind;
  }
  throw std::invalid_argument("unknown pull policy: " + name);
}

fault::FaultConfig fault_from(const exp::ArgParser& args) {
  fault::FaultConfig f;
  f.enabled = args.has("fault");
  f.channel.p_good_to_bad = args.get_double("fault-p-gb", 0.05);
  f.channel.p_bad_to_good = args.get_double("fault-p-bg", 0.30);
  f.channel.corrupt_good = args.get_double("fault-corrupt-good", 0.0);
  f.channel.corrupt_bad = args.get_double("fault-corrupt-bad", 0.5);
  f.retry.max_retries =
      static_cast<std::uint32_t>(args.get_size("fault-retries", 3));
  f.retry.backoff_base = args.get_double("fault-backoff", 1.0);
  f.retry.backoff_multiplier = args.get_double("fault-backoff-mult", 2.0);
  f.queue_capacity = args.get_size("queue-cap", 0);
  f.shed_policy = fault::parse_shed_policy(args.get_string("shed", "tail"));
  f.validate();
  return f;
}

resilience::ResilienceConfig resilience_from(const exp::ArgParser& args) {
  resilience::ResilienceConfig r;
  r.crash.rate = args.get_double("crash-rate", 0.0);
  r.crash.enabled = r.crash.rate > 0.0;
  r.crash.downtime = args.get_double("crash-downtime", 50.0);
  r.crash.recovery =
      resilience::parse_recovery_mode(args.get_string("recovery", "cold"));
  r.crash.snapshot_interval = args.get_double("snapshot-interval", 100.0);
  r.crash.rerequest_timeout = args.get_double("rerequest-timeout", 20.0);
  r.crash.storm_spread = args.get_double("storm-spread", 10.0);
  r.crash.max_crashes = args.get_size("max-crashes", 64);
  r.overload.enabled = args.has("ladder");
  r.overload.eval_interval = args.get_double("ladder-interval", 5.0);
  r.overload.capacity_ref = args.get_size("ladder-capacity", 64);
  r.overload.cutoff_step = args.get_size("ladder-cutoff-step", 10);
  r.validate();
  return r;
}

// Observability is keyed off `--trace FILE`: no flag, no observer, and the
// simulation output is bit-identical to a build without the obs layer.
obs::ObsConfig obs_from(const exp::ArgParser& args) {
  obs::ObsConfig o;
  o.enabled = args.has("trace");
  o.categories =
      obs::parse_categories(args.get_string("trace-categories", "all"));
  o.trace_capacity = args.get_size("trace-cap", o.trace_capacity);
  o.validate();
  return o;
}

int write_trace_file(const std::string& path, const obs::ObsReport& report,
                     const char* cmd) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << cmd << ": cannot open " << path << "\n";
    return 2;
  }
  out << obs::render_header(report.categories, report.trace_capacity);
  out << obs::render_chunk(report, obs::kNoRep);
  std::cout << "wrote " << report.events.size() << " trace events ("
            << report.emitted << " emitted, " << report.dropped
            << " dropped) to " << path << "\n";
  return 0;
}

core::HybridConfig config_from(const exp::ArgParser& args) {
  core::HybridConfig config;
  config.cutoff = args.get_size("cutoff", 40);
  config.alpha = args.get_double("alpha", 0.5);
  config.pull_policy =
      policy_from(args.get_string("policy", "importance"));
  config.total_bandwidth = args.get_double("bandwidth", 0.0);
  config.mean_bandwidth_demand = args.get_double("demand", 1.0);
  config.mean_patience = args.get_double("patience", 0.0);
  config.seed = args.get_u64("seed", 1);
  config.fault = fault_from(args);
  config.resilience = resilience_from(args);
  return config;
}

// Options shared by scenario_from / config_from / print_table; each command
// passes these plus its own extras to require_known so a typo fails with a
// one-line diagnostic instead of silently running the default experiment.
const std::initializer_list<std::string_view> kScenarioOpts = {
    "theta", "items", "rate", "requests", "seed", "jobs", "csv",
    "scenario", "scenario-intensity"};
const std::initializer_list<std::string_view> kConfigOpts = {
    "theta", "items", "rate", "requests", "seed", "jobs", "csv",
    "scenario", "scenario-intensity",
    "cutoff", "alpha", "policy", "bandwidth", "demand", "patience",
    "fault", "fault-p-gb", "fault-p-bg", "fault-corrupt-good",
    "fault-corrupt-bad", "fault-retries", "fault-backoff",
    "fault-backoff-mult", "queue-cap", "shed",
    "crash-rate", "crash-downtime", "recovery", "snapshot-interval",
    "rerequest-timeout", "storm-spread", "max-crashes",
    "ladder", "ladder-interval", "ladder-capacity", "ladder-cutoff-step"};

void print_table(const exp::Table& table, const exp::ArgParser& args) {
  if (args.has("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

int cmd_simulate(const exp::ArgParser& args) {
  args.require_known(kConfigOpts,
                     {"report", "trace", "trace-categories", "trace-cap"});
  const auto scenario = scenario_from(args);
  const auto built = scenario.build();
  core::HybridConfig config = config_from(args);
  config.obs = obs_from(args);
  const exp::ObservedRun observed = exp::run_hybrid_observed(built, config);
  const core::SimResult& r = observed.result;

  const std::string report_path = args.get_string("report", "");
  if (!report_path.empty()) {
    std::ofstream report(report_path);
    if (!report) {
      std::cerr << "simulate: cannot open " << report_path << "\n";
      return 2;
    }
    exp::ReportHeader header;
    header.num_items = scenario.num_items;
    header.theta = scenario.theta;
    header.arrival_rate = scenario.arrival_rate;
    header.num_requests = scenario.num_requests;
    header.seed = scenario.seed;
    exp::write_markdown_report(report, header, config, built.population, r);
    std::cout << "wrote report to " << report_path << "\n";
  }

  // Fault/resilience/scenario columns appear only when the respective
  // layer is on, so the default output stays byte-identical to builds
  // without them.
  const bool faulty = config.fault.active();
  const bool resilient = config.resilience.active();
  const bool shaped =
      scenario.preset != pushpull::scenario::Preset::kNone;
  std::vector<std::string> columns = {"class",     "priority",  "arrived",
                                      "mean delay", "max delay", "blocked",
                                      "abandoned"};
  if (shaped) {
    for (const char* c : {"gap max", "gap p99"}) columns.emplace_back(c);
  }
  if (faulty) {
    for (const char* c : {"corrupted", "retries", "shed", "lost", "goodput"})
      columns.emplace_back(c);
  }
  if (resilient) {
    for (const char* c : {"stormed", "rejected"}) columns.emplace_back(c);
  }
  columns.emplace_back("p-cost");
  exp::Table table(columns);
  for (workload::ClassId c = 0; c < built.population.num_classes(); ++c) {
    const auto& stats = r.per_class[c];
    auto& row = table.row()
        .add(std::string(built.population.cls(c).name))
        .add(built.population.priority(c), 0)
        .add(static_cast<std::size_t>(stats.arrived))
        .add(stats.wait.mean(), 2)
        .add(stats.wait.max(), 2)
        .add(static_cast<std::size_t>(stats.blocked))
        .add(static_cast<std::size_t>(stats.abandoned));
    if (shaped) {
      row.add(stats.gap.max(), 2).add(stats.gap_p99.value(), 2);
    }
    if (faulty) {
      row.add(static_cast<std::size_t>(stats.corrupted))
          .add(static_cast<std::size_t>(stats.retries))
          .add(static_cast<std::size_t>(stats.shed))
          .add(static_cast<std::size_t>(stats.lost))
          .add(stats.goodput_ratio(), 4);
    }
    if (resilient) {
      row.add(static_cast<std::size_t>(stats.stormed))
          .add(static_cast<std::size_t>(stats.rejected));
    }
    row.add(r.prioritized_cost(built.population, c), 2);
  }
  print_table(table, args);
  std::cout << "overall delay " << r.overall().wait.mean()
            << ", total prioritized cost "
            << r.total_prioritized_cost(built.population) << ", push tx "
            << r.push_transmissions << ", pull tx " << r.pull_transmissions;
  if (faulty) {
    std::cout << ", corrupted tx " << r.corrupted_push_transmissions << "+"
              << r.corrupted_pull_transmissions << ", shed "
              << r.overall().shed << ", lost " << r.overall().lost;
  }
  if (resilient) {
    std::cout << ", crashes " << r.crashes << " (downtime "
              << r.total_downtime << ", storms " << r.storm_rerequests
              << "), ladder max "
              << resilience::to_string(r.max_overload_level) << " ("
              << r.overload_transitions.size() << " transitions)";
  }
  if (shaped) {
    std::cout << ", scenario "
              << pushpull::scenario::to_string(scenario.preset)
              << " (re-homed " << built.shape.rehomed << ", handoff-lost "
              << built.shape.total_lost() << ", rotated "
              << built.shape.rotated << ")";
  }
  std::cout << "\n";
  const std::string trace_path = args.get_string("trace", "");
  if (!trace_path.empty()) {
    const int rc = write_trace_file(trace_path, observed.obs, "simulate");
    if (rc != 0) return rc;
  }
  return 0;
}

int cmd_chaos(const exp::ArgParser& args) {
  args.require_known(kConfigOpts,
                     {"reps", "spike-factor", "spike-start", "spike-duration",
                      "no-replay-check", "progress", "out", "gap-bound"});
  const auto scenario = scenario_from(args);
  const core::HybridConfig config = config_from(args);

  exp::ChaosOptions options;
  options.replications = args.get_size("reps", 16);
  options.jobs = scenario.jobs;
  // Validated numeric parsing: a spike factor must be positive finite, the
  // window non-negative finite — "-1" or "2x" fails with a one-line
  // diagnostic instead of warping the trace with garbage.
  options.spike_factor = args.get_positive_double("spike-factor", 1.0);
  options.spike_start = args.get_nonnegative_double("spike-start", 0.0);
  options.spike_duration = args.get_nonnegative_double("spike-duration", 0.0);
  options.verify_replay = !args.has("no-replay-check");
  options.gap_bound = args.get_nonnegative_double("gap-bound", 0.0);

  std::ofstream progress;
  std::unique_ptr<runtime::RunReporter> reporter;
  const std::string progress_path = args.get_string("progress", "");
  if (!progress_path.empty()) {
    progress.open(progress_path);
    if (!progress) {
      std::cerr << "chaos: cannot open " << progress_path << "\n";
      return 2;
    }
    reporter = std::make_unique<runtime::RunReporter>(progress);
    options.reporter = reporter.get();
  }
  const exp::ChaosSummary summary = exp::run_chaos(scenario, config, options);

  exp::Table table({"metric", "value"});
  table.row().add("replications").add(summary.replications);
  table.row().add("overall delay").add(summary.overall_delay.mean(), 3);
  table.row().add("total cost").add(summary.total_cost.mean(), 3);
  table.row().add("goodput").add(summary.goodput.mean(), 4);
  table.row().add("crashes").add(static_cast<std::size_t>(summary.crashes));
  table.row().add("total downtime").add(summary.total_downtime, 1);
  table.row().add("storm re-requests").add(
      static_cast<std::size_t>(summary.storm_rerequests));
  table.row().add("largest storm").add(
      static_cast<std::size_t>(summary.largest_storm));
  table.row().add("mean recovery latency").add(
      summary.recovery_latency.count() > 0 ? summary.recovery_latency.mean()
                                           : 0.0, 3);
  table.row().add("ladder transitions").add(summary.overload_transitions);
  table.row().add("ladder max level").add(
      std::string(resilience::to_string(summary.max_overload_level)));
  if (scenario.preset != pushpull::scenario::Preset::kNone) {
    table.row().add("scenario").add(std::string(
        pushpull::scenario::to_string(scenario.preset)));
    table.row().add("handoffs re-homed").add(
        static_cast<std::size_t>(summary.handoff_rehomed));
    table.row().add("handoffs lost").add(
        static_cast<std::size_t>(summary.handoff_lost));
    double worst_gap = 0.0;
    for (const auto& s : summary.per_class) {
      worst_gap = std::max(worst_gap, s.gap.max());
    }
    table.row().add("max service gap").add(worst_gap, 3);
  }
  print_table(table, args);

  const std::size_t failures = summary.invariants.failures();
  std::cout << "invariants: " << summary.invariants.checks.size() - failures
            << "/" << summary.invariants.checks.size() << " passed\n";
  if (failures > 0) {
    std::cout << resilience::format_report(summary.invariants);
  }

  const std::string out_path = args.get_string("out", "");
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "chaos: cannot open " << out_path << "\n";
      return 2;
    }
    double worst_gap = 0.0;
    for (const auto& s : summary.per_class) {
      worst_gap = std::max(worst_gap, s.gap.max());
    }
    out << "{\n  \"replications\": " << summary.replications
        << ",\n  \"overall_delay\": " << summary.overall_delay.mean()
        << ",\n  \"total_cost\": " << summary.total_cost.mean()
        << ",\n  \"goodput\": " << summary.goodput.mean()
        << ",\n  \"crashes\": " << summary.crashes
        << ",\n  \"total_downtime\": " << summary.total_downtime
        << ",\n  \"storm_rerequests\": " << summary.storm_rerequests
        << ",\n  \"largest_storm\": " << summary.largest_storm
        << ",\n  \"scenario\": \""
        << pushpull::scenario::to_string(scenario.preset)
        << "\",\n  \"handoff_rehomed\": " << summary.handoff_rehomed
        << ",\n  \"handoff_lost\": " << summary.handoff_lost
        << ",\n  \"max_service_gap\": " << worst_gap
        << ",\n  \"ladder_transitions\": " << summary.overload_transitions
        << ",\n  \"ladder_max_level\": \""
        << resilience::to_string(summary.max_overload_level)
        << "\",\n  \"replay_identical\": "
        << (summary.replay_identical ? "true" : "false")
        << ",\n  \"invariant_checks\": " << summary.invariants.checks.size()
        << ",\n  \"invariant_failures\": " << failures << ",\n  \"checks\": [";
    for (std::size_t i = 0; i < summary.invariants.checks.size(); ++i) {
      const auto& check = summary.invariants.checks[i];
      out << (i ? "," : "") << "\n    {\"name\": \"" << check.name
          << "\", \"pass\": " << (check.pass ? "true" : "false") << "}";
    }
    out << "\n  ]\n}\n";
    std::cout << "wrote invariant report to " << out_path << "\n";
  }
  return summary.invariants.all_pass() ? 0 : 1;
}

int cmd_optimize(const exp::ArgParser& args) {
  args.require_known(kScenarioOpts, {"alpha", "step", "analytic", "trace",
                                     "trace-categories", "trace-cap"});
  const auto scenario = scenario_from(args);
  const double alpha = args.get_double("alpha", 0.5);
  const std::size_t step = args.get_size("step", 5);
  const obs::ObsConfig obs_config = obs_from(args);

  const auto built = scenario.build();
  std::unique_ptr<queueing::HybridAccessModel> model;
  std::function<double(std::size_t)> cost;
  if (args.has("analytic")) {
    model = std::make_unique<queueing::HybridAccessModel>(
        built.catalog, built.population, scenario.arrival_rate);
    cost = [&model, alpha](std::size_t k) {
      return model->prioritized_cost(k, alpha);
    };
  } else {
    cost = [&built, alpha](std::size_t k) {
      core::HybridConfig config;
      config.cutoff = k;
      config.alpha = alpha;
      return exp::run_hybrid(built, config)
          .total_prioritized_cost(built.population);
    };
  }

  exp::Table table({"K", "total cost"});
  core::CutoffScan scan;
  if (obs_config.enabled) {
    obs::TraceSink sink(obs_config.trace_capacity, obs_config.categories);
    scan = core::scan_cutoffs(0, built.catalog.size(), step, cost,
                              obs::Tracer(&sink));
    obs::ObsReport report;
    report.enabled = true;
    report.categories = sink.categories();
    report.trace_capacity = sink.capacity();
    report.emitted = sink.emitted();
    report.dropped = sink.dropped();
    report.events = sink.snapshot();
    const int rc =
        write_trace_file(args.get_string("trace", ""), report, "optimize");
    if (rc != 0) return rc;
  } else {
    scan = core::scan_cutoffs(0, built.catalog.size(), step, cost);
  }
  for (const auto& sample : scan.curve) {
    table.row().add(sample.cutoff).add(sample.cost, 2);
  }
  print_table(table, args);
  std::cout << "optimal cutoff K* = " << scan.best_cutoff << " (cost "
            << scan.best_cost << ")\n";
  return 0;
}

int cmd_model(const exp::ArgParser& args) {
  args.require_known(kScenarioOpts, {"alpha", "cutoff"});
  const auto scenario = scenario_from(args);
  const auto built = scenario.build();
  const double alpha = args.get_double("alpha", 0.5);
  const std::size_t cutoff = args.get_size("cutoff", 40);
  queueing::HybridAccessModel model(built.catalog, built.population,
                                    scenario.arrival_rate);
  const auto est = model.estimate(cutoff, alpha);

  exp::Table table({"metric", "value"});
  table.row().add("push delay").add(est.push_delay, 3);
  table.row().add("broadcast period").add(est.broadcast_period, 3);
  table.row().add("pull entry rate").add(est.entry_rate, 4);
  for (std::size_t c = 0; c < est.access_time.size(); ++c) {
    table.row()
        .add("E[T] class " + std::string(1, static_cast<char>('A' + c)))
        .add(est.access_time[c], 3);
  }
  table.row().add("E[T] overall").add(est.overall, 3);
  const double eq19 = model.paper_eq19(cutoff);
  table.row().add("paper Eq.19 (literal)").add(eq19, 3);
  print_table(table, args);
  return 0;
}

int cmd_replicate(const exp::ArgParser& args) {
  args.require_known(kConfigOpts, {"reps", "progress", "resume", "trace",
                                   "trace-categories", "trace-cap"});
  const auto scenario = scenario_from(args);
  const core::HybridConfig config = config_from(args);
  const std::size_t reps = args.get_size("reps", 10);

  exp::ReplicateOptions options;
  options.jobs = scenario.jobs;
  options.obs = obs_from(args);
  std::ofstream trace_file;
  const std::string trace_path = args.get_string("trace", "");
  if (!trace_path.empty()) {
    trace_file.open(trace_path);
    if (!trace_file) {
      std::cerr << "replicate: cannot open " << trace_path << "\n";
      return 2;
    }
    options.trace_out = &trace_file;
  }
  std::ofstream progress;
  std::unique_ptr<runtime::RunReporter> reporter;
  runtime::CheckpointStore checkpoint;
  const std::string progress_path = args.get_string("progress", "");
  const bool resume = args.has("resume");
  if (resume && progress_path.empty()) {
    std::cerr << "replicate: --resume needs --progress FILE (the JSONL file "
                 "of the interrupted run)\n";
    return 2;
  }
  if (!progress_path.empty()) {
    if (resume) {
      // Restore completed replications, then append new records to the same
      // file so a second crash is also resumable.
      checkpoint = runtime::CheckpointStore::load_file(progress_path);
      options.resume = &checkpoint;
      std::cout << "resuming: " << checkpoint.size() << "/" << reps
                << " replications already checkpointed in " << progress_path
                << "\n";
      progress.open(progress_path, std::ios::app);
    } else {
      progress.open(progress_path);
    }
    if (!progress) {
      std::cerr << "replicate: cannot open " << progress_path << "\n";
      return 2;
    }
    reporter = std::make_unique<runtime::RunReporter>(progress);
    options.reporter = reporter.get();
  }
  const auto summary = exp::replicate_hybrid(scenario, config, reps, options);

  exp::Table table({"metric", "mean", "ci95 +/-"});
  table.row()
      .add("overall delay")
      .add(summary.overall_delay.mean(), 3)
      .add(summary.overall_delay.ci_half_width(), 3);
  for (std::size_t c = 0; c < summary.class_delay.size(); ++c) {
    table.row()
        .add("delay class " + std::string(1, static_cast<char>('A' + c)))
        .add(summary.class_delay[c].mean(), 3)
        .add(summary.class_delay[c].ci_half_width(), 3);
  }
  table.row()
      .add("total cost")
      .add(summary.total_cost.mean(), 3)
      .add(summary.total_cost.ci_half_width(), 3);
  table.row()
      .add("blocking ratio")
      .add(summary.blocking.mean(), 5)
      .add(summary.blocking.ci_half_width(), 5);
  print_table(table, args);
  if (!trace_path.empty()) {
    std::cout << "wrote merged trace (" << reps << " replications) to "
              << trace_path << "\n";
  }
  return 0;
}

int cmd_adaptive(const exp::ArgParser& args) {
  // Runs the adaptive server on a drifting workload and prints the cutoff
  // trajectory alongside the delivered QoS.
  args.require_known(kScenarioOpts, {"epoch", "shift", "cutoff", "alpha",
                                     "interval", "half-life"});
  const auto scenario = scenario_from(args);
  catalog::Catalog cat(scenario.num_items, scenario.theta,
                       catalog::LengthModel(scenario.min_length,
                                            scenario.max_length,
                                            scenario.mean_length),
                       scenario.seed);
  const auto pop = workload::ClientPopulation::zipf_classes(
      scenario.num_classes, scenario.class_zipf_theta);
  const double epoch = args.get_double("epoch", 500.0);
  const std::size_t shift = args.get_size("shift", scenario.num_items / 3);
  workload::DriftingGenerator gen(cat, pop, scenario.arrival_rate, epoch,
                                  shift, scenario.seed);
  const workload::Trace trace =
      workload::Trace::record(gen, scenario.num_requests);

  core::AdaptiveConfig config;
  config.initial_cutoff = args.get_size("cutoff", 30);
  config.alpha = args.get_double("alpha", 0.5);
  config.reoptimize_interval = args.get_double("interval", 200.0);
  config.estimator_half_life = args.get_double("half-life", 300.0);
  core::AdaptiveHybridServer server(cat, pop, config);
  const core::AdaptiveResult r = server.run(trace);

  exp::Table table({"class", "mean delay", "p-cost"});
  for (workload::ClassId c = 0; c < pop.num_classes(); ++c) {
    table.row()
        .add(std::string(pop.cls(c).name))
        .add(r.mean_wait(c), 2)
        .add(pop.priority(c) * r.mean_wait(c), 2);
  }
  print_table(table, args);
  std::cout << "re-optimizations: " << r.reoptimizations
            << ", final push-set size: "
            << (r.cutoff_history.empty() ? 0u : r.cutoff_history.back().second)
            << ", total cost " << r.total_prioritized_cost(pop) << "\n";
  return 0;
}

int cmd_multichannel(const exp::ArgParser& args) {
  args.require_known(kScenarioOpts, {"cutoff", "alpha", "channels"});
  const auto built = scenario_from(args).build();
  core::MultiChannelConfig config;
  config.cutoff = args.get_size("cutoff", 40);
  config.alpha = args.get_double("alpha", 0.5);
  config.num_pull_channels = args.get_size("channels", 2);
  core::MultiChannelServer server(built.catalog, built.population, config);
  const core::MultiChannelResult r = server.run(built.trace);

  exp::Table table({"class", "mean delay", "p99", "p-cost"});
  for (workload::ClassId c = 0; c < built.population.num_classes(); ++c) {
    table.row()
        .add(std::string(built.population.cls(c).name))
        .add(r.mean_wait(c), 2)
        .add(r.per_class[c].wait_p99.value(), 2)
        .add(built.population.priority(c) * r.mean_wait(c), 2);
  }
  print_table(table, args);
  std::cout << "push channel util " << r.push_channel_utilization
            << ", pull channels:";
  for (double u : r.pull_channel_utilization) std::cout << ' ' << u;
  std::cout << "\n";
  return 0;
}

int cmd_closedloop(const exp::ArgParser& args) {
  args.require_known(kScenarioOpts, {"clients", "think-rate", "cutoff",
                                     "alpha", "horizon"});
  const auto scenario = scenario_from(args);
  catalog::Catalog cat(scenario.num_items, scenario.theta,
                       catalog::LengthModel(scenario.min_length,
                                            scenario.max_length,
                                            scenario.mean_length),
                       scenario.seed);
  const auto pop = workload::ClientPopulation::zipf_classes(
      scenario.num_classes, scenario.class_zipf_theta);
  core::ClosedLoopConfig config;
  config.num_clients = args.get_size("clients", 50);
  config.think_rate = args.get_double("think-rate", 0.05);
  config.cutoff = args.get_size("cutoff", 15);
  config.alpha = args.get_double("alpha", 0.25);
  config.horizon = args.get_double("horizon", 20000.0);
  config.seed = scenario.seed;
  core::ClosedLoopServer server(cat, pop, config);
  const core::ClosedLoopResult r = server.run();

  exp::Table table({"class", "arrived", "mean delay"});
  for (workload::ClassId c = 0; c < pop.num_classes(); ++c) {
    table.row()
        .add(std::string(pop.cls(c).name))
        .add(static_cast<std::size_t>(r.per_class[c].arrived))
        .add(r.mean_wait(c), 2);
  }
  print_table(table, args);
  std::cout << "throughput " << r.throughput << " deliveries/unit, push tx "
            << r.push_transmissions << ", pull tx " << r.pull_transmissions
            << "\n";
  return 0;
}

int cmd_uplink(const exp::ArgParser& args) {
  args.require_known(kScenarioOpts, {"slot", "retry"});
  const auto built = scenario_from(args).build();
  uplink::AlohaConfig config;
  config.slot_duration = args.get_double("slot", 0.1);
  config.retry_probability = args.get_double("retry", 0.1);
  config.seed = args.get_u64("seed", 1);
  const uplink::AlohaResult r = uplink::simulate_uplink(built.trace, config);

  exp::Table table({"metric", "value"});
  table.row().add("requests").add(static_cast<std::size_t>(
      r.delayed_trace.size()));
  table.row().add("mean uplink delay").add(r.mean_uplink_delay, 3);
  table.row().add("max uplink delay").add(r.max_uplink_delay, 3);
  table.row().add("collision ratio").add(r.collision_ratio(), 4);
  table.row().add("throughput / slot").add(r.throughput(), 4);
  print_table(table, args);
  return 0;
}

int cmd_lint(const exp::ArgParser& args) {
  // Prints the determinism-contract rule table and baseline statistics,
  // then scans the tree — the same passes the `detlint` binary and the
  // detlint_tree ctest run (per-file rules, cross-engine parity, layer DAG,
  // dead suppressions, baseline ratchet), embedded here so EXPERIMENTS.md
  // can document one entry point. Exit 0 clean, 1 findings, 2 usage/IO.
  std::filesystem::path root;
  std::string baseline_path;
  std::string json_path;
  try {
    args.require_known({"root", "baseline", "json"});
#ifdef DETLINT_DEFAULT_ROOT
    const std::string default_root = DETLINT_DEFAULT_ROOT;
#else
    const std::string default_root = ".";
#endif
    root = args.get_string("root", default_root);
    baseline_path = args.get_string(
        "baseline", (root / "tools" / "detlint" / "baseline.txt").string());
    json_path = args.get_string("json", "");
  } catch (const std::invalid_argument& e) {
    std::cerr << "lint: " << e.what() << "\n";
    return 2;
  }
  if (!std::filesystem::is_directory(root)) {
    std::cerr << "lint: --root " << root.string() << " is not a directory\n";
    return 2;
  }
  const detlint::Baseline baseline =
      detlint::Baseline::load_file(baseline_path);

  detlint::print_rule_table(std::cout);
  std::cout << "baseline: " << baseline.size() << " grandfathered entr"
            << (baseline.size() == 1 ? "y" : "ies") << " (" << baseline_path
            << ")\n\n";

  auto diags = detlint::analyze_tree(root);
  detlint::apply_baseline(diags, baseline);
  auto stale = detlint::baseline_ratchet(diags, baseline, baseline_path);
  diags.insert(diags.end(), stale.begin(), stale.end());

  // Emission routes through the same sorted_view idiom rule D3 enforces on
  // the tree: findings bucketed by (file, line, rule), emitted key-sorted.
  std::unordered_map<std::string, std::vector<const detlint::Diagnostic*>>
      fresh_by_key;
  for (const auto& d : diags) {
    if (d.baselined) continue;
    // Line zero-padded so the key's string order is (file, line, rule).
    char padded[16];
    std::snprintf(padded, sizeof padded, "%08zu", d.line);
    fresh_by_key[d.file + ":" + padded + ":" + d.rule].push_back(&d);
  }
  for (const auto& [key, group] : metrics::sorted_view(fresh_by_key)) {
    for (const detlint::Diagnostic* d : group) {
      std::cout << d->file << ":" << d->line << ": " << d->rule << ": "
                << d->message << "\n";
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "lint: cannot open " << json_path << "\n";
      return 2;
    }
    std::sort(diags.begin(), diags.end(),
              [](const detlint::Diagnostic& a, const detlint::Diagnostic& b) {
                return std::tie(a.file, a.line, a.rule) <
                       std::tie(b.file, b.line, b.rule);
              });
    detlint::render_json(out, diags);
  }

  const std::size_t fresh = detlint::fresh_count(diags);
  std::cout << "lint: " << fresh << " finding" << (fresh == 1 ? "" : "s")
            << ", " << diags.size() - fresh << " baselined\n";
  return fresh == 0 ? 0 : 1;
}

int cmd_trace(const exp::ArgParser& args) {
  args.require_known(kConfigOpts,
                     {"out", "trace", "trace-categories", "trace-cap"});
  const std::string out = args.get_string("out", "");
  const std::string trace_path = args.get_string("trace", "");
  if (out.empty() && trace_path.empty()) {
    std::cerr << "trace: need --out FILE (request CSV) and/or --trace FILE "
                 "(simulation event trace)\n";
    return 2;
  }
  const auto scenario = scenario_from(args);
  const auto built = scenario.build();
  if (!out.empty()) {
    std::ofstream file(out);
    if (!file) {
      std::cerr << "trace: cannot open " << out << "\n";
      return 2;
    }
    built.trace.save_csv(file);
    std::cout << "wrote " << built.trace.size() << " requests spanning "
              << built.trace.span() << " broadcast units to " << out << "\n";
  }
  if (!trace_path.empty()) {
    core::HybridConfig config = config_from(args);
    config.obs = obs_from(args);
    const exp::ObservedRun observed = exp::run_hybrid_observed(built, config);
    const int rc = write_trace_file(trace_path, observed.obs, "trace");
    if (rc != 0) return rc;
  }
  return 0;
}

// Options understood by serve_config_from — the live-serving analogue of
// kScenarioOpts/kConfigOpts. Execution knobs (--accelerated, --time-scale,
// --pacers, --queue-capacity) live here too so serve and loadtest share one
// builder. The fault/ladder flags reuse the simulate/replicate spellings.
const std::initializer_list<std::string_view> kServeOpts = {
    "items",        "theta",      "classes", "cutoff",
    "alpha",        "policy",     "demand",  "duration",
    "target-qps",   "seed",       "accelerated", "time-scale",
    "pacers",       "queue-capacity",
    "scenario",     "scenario-intensity",
    "mean-deadline", "deadline-scale", "deadline-spike-factor",
    "deadline-spike-start", "deadline-spike-duration",
    "fault", "fault-p-gb", "fault-p-bg", "fault-corrupt-good",
    "fault-corrupt-bad", "fault-retries", "fault-backoff",
    "fault-backoff-mult", "queue-cap", "shed",
    "ladder", "ladder-interval", "ladder-capacity", "ladder-cutoff-step",
    "hedge-after", "drain-after", "sync-every"};

std::vector<double> parse_csv_doubles(const std::string& key,
                                      const std::string& csv) {
  std::vector<double> out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = csv.find(',', start);
    const std::string token =
        csv.substr(start, comma == std::string::npos ? std::string::npos
                                                     : comma - start);
    std::size_t pos = 0;
    double parsed = 0.0;
    try {
      parsed = std::stod(token, &pos);
    } catch (const std::exception&) {
      pos = std::string::npos;
    }
    if (pos != token.size()) {
      throw std::invalid_argument(
          "--" + key + " expects a comma-separated list of numbers, got '" +
          token + "'");
    }
    out.push_back(parsed);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

serve::ServeConfig serve_config_from(const exp::ArgParser& args) {
  serve::ServeConfig c;
  c.num_items = args.get_size("items", c.num_items);
  c.theta = args.get_double("theta", c.theta);
  c.num_classes = args.get_size("classes", c.num_classes);
  c.cutoff = args.get_size("cutoff", c.cutoff);
  c.alpha = args.get_double("alpha", c.alpha);
  c.pull_policy = policy_from(args.get_string("policy", "importance"));
  c.mean_bandwidth_demand = args.get_double("demand", c.mean_bandwidth_demand);
  c.duration = args.get_positive_double("duration", c.duration);
  c.target_qps = args.get_positive_double("target-qps", c.target_qps);
  c.seed = args.get_u64("seed", c.seed);
  c.accelerated = args.has("accelerated");
  c.time_scale = args.get_positive_double("time-scale", c.time_scale);
  c.pacers =
      static_cast<std::size_t>(args.get_positive_u64("pacers", c.pacers));
  c.queue_capacity = static_cast<std::size_t>(
      args.get_positive_u64("queue-capacity", c.queue_capacity));
  // Live failure model (DESIGN §10).
  c.mean_deadline = args.get_double("mean-deadline", c.mean_deadline);
  const std::string scales = args.get_string("deadline-scale", "");
  if (!scales.empty()) {
    c.deadline_scale = parse_csv_doubles("deadline-scale", scales);
  }
  c.deadline_spike_factor =
      args.get_double("deadline-spike-factor", c.deadline_spike_factor);
  c.deadline_spike_start =
      args.get_double("deadline-spike-start", c.deadline_spike_start);
  c.deadline_spike_duration =
      args.get_double("deadline-spike-duration", c.deadline_spike_duration);
  c.fault = fault_from(args);
  c.overload.enabled = args.has("ladder");
  c.overload.eval_interval =
      args.get_double("ladder-interval", c.overload.eval_interval);
  c.overload.capacity_ref =
      args.get_size("ladder-capacity", c.overload.capacity_ref);
  c.overload.cutoff_step =
      args.get_size("ladder-cutoff-step", c.overload.cutoff_step);
  c.hedge_after = args.get_double("hedge-after", c.hedge_after);
  c.drain_after = args.get_double("drain-after", c.drain_after);
  c.journal_sync_every = args.get_size("sync-every", c.journal_sync_every);
  c.validate();
  return c;
}

// SIGTERM target of `pushpull serve`: the handler only flips the flag; the
// realtime loop polls it and runs the graceful drain (stop admission,
// flush the pull side, seal the journal with the conservation ledger).
std::atomic<bool> g_drain_requested{false};

extern "C" void on_sigterm(int) { g_drain_requested.store(true); }

// Shared body of `pushpull serve` and `pushpull loadtest`: build (or load)
// the plan, run the live server on the virtual or wall clock, print the
// deterministic report, optionally recording a crash-consistent sv2
// journal for replay/resume.
int run_live(serve::ServeConfig config, const std::string& record_path,
             const std::string& from_trace, const char* cmd,
             const exp::ArgParser& args) {
  std::optional<serve::RecordedRun> recorded;
  if (!from_trace.empty()) {
    recorded = serve::load_trace_file(from_trace);
    // Workload universe + scheduler come from the recording; only the
    // execution knobs (clock mode, pacing, queue bound) follow the CLI, so
    // a re-offered trace hits the same catalog it was captured against.
    serve::ServeConfig base = recorded->config;
    base.accelerated = config.accelerated;
    base.time_scale = config.time_scale;
    base.pacers = config.pacers;
    base.queue_capacity = config.queue_capacity;
    config = base;
  }
  const auto cat = config.build_catalog();
  const auto pop = config.build_population();
  serve::LoadDriver driver =
      recorded ? serve::LoadDriver(recorded->trace())
               : serve::LoadDriver(cat, pop, config.target_qps,
                                   config.duration, config.seed);

  // Scenario shaping happens at the plan level, before any pacing: the
  // journal then records the *shaped* requests, so replay and resume need
  // no scenario knowledge at all.
  const pushpull::scenario::Preset preset =
      pushpull::scenario::parse_preset(args.get_string("scenario", "none"));
  if (preset != pushpull::scenario::Preset::kNone) {
    if (!from_trace.empty()) {
      std::cerr << cmd
                << ": --scenario shapes a synthesized plan; it cannot be "
                   "combined with --from-trace (the recording is already "
                   "whatever environment it was captured in)\n";
      return 2;
    }
    const double intensity =
        args.get_positive_double("scenario-intensity", 1.0);
    const pushpull::scenario::Timeline timeline =
        pushpull::scenario::make_timeline(preset, intensity,
                                          driver.plan().span(),
                                          config.num_items);
    pushpull::scenario::ShapedTrace shaped =
        pushpull::scenario::shape_trace(
            driver.plan(), timeline,
            rng::SplitMix64::mix(config.seed ^ 0x5EEDCAFEULL),
            config.num_items, config.num_classes);
    std::cout << "scenario " << pushpull::scenario::to_string(preset)
              << ": shaped " << shaped.summary.total_base()
              << " planned requests (re-homed " << shaped.summary.rehomed
              << ", handoff-lost " << shaped.summary.total_lost()
              << ", rotated " << shaped.summary.rotated << ")\n";
    driver = serve::LoadDriver(std::move(shaped.trace));
  }

  std::optional<serve::JournalFile> journal;
  std::optional<serve::TraceRecorder> recorder;
  if (!record_path.empty()) {
    try {
      journal.emplace(record_path);
    } catch (const std::exception& e) {
      std::cerr << cmd << ": " << e.what() << "\n";
      return 2;
    }
    recorder.emplace(*journal, config);
  }
  serve::TraceRecorder* rec = recorder ? &*recorder : nullptr;

  const obs::ObsConfig obs_config = obs_from(args);
  std::optional<obs::RunObserver> observer;

  serve::LiveServer server(cat, pop, config);
  if (obs_config.enabled) {
    observer.emplace(obs_config, config.num_classes);
    server.set_tracer(observer->tracer());
  }
  serve::ServeReport report;
  if (config.accelerated) {
    report = server.run_accelerated(driver, rec);
  } else {
    server.set_drain_flag(&g_drain_requested);
    (void)std::signal(SIGTERM, on_sigterm);
    const auto clock = serve::make_wall_clock(config.time_scale);
    serve::CompletionQueue queue(config.queue_capacity);
    const std::uint64_t planned = driver.plan().size();
    std::thread producer(
        [&driver, &queue, &clock, &config] {
          driver.run_realtime(queue, *clock, config.pacers);
        });
    try {
      report = server.run_realtime(queue, *clock, planned, rec);
    } catch (...) {
      queue.close();  // unblocks the pacers so the join below terminates
      producer.join();
      throw;
    }
    producer.join();
  }
  if (recorder) recorder->finish();
  std::cout << serve::render_serve_report(report);
  if (!record_path.empty()) {
    std::cout << "journaled " << report.arrivals << " requests to "
              << record_path << "\n";
  }
  if (observer) {
    const int rc =
        write_trace_file(args.get_string("trace", ""), observer->report(),
                         cmd);
    if (rc != 0) return rc;
  }
  return 0;
}

// `pushpull serve --resume CRASHED.svj`: salvage the longest valid prefix
// of a truncated journal, deterministically re-run it (optionally
// re-journaling into --record FILE, sealed this time), and report.
int cmd_serve_resume(const exp::ArgParser& args) {
  args.require_known({"resume", "record"});
  const std::string in = args.get_string("resume", "");
  if (in.empty()) {
    std::cerr << "serve: --resume needs the crashed journal path "
                 "(pushpull serve --resume FILE [--record OUT])\n";
    return 2;
  }
  const serve::ResumeResult resume =
      serve::resume_from_journal(in, args.get_string("record", ""));
  std::cout << "{\"schema\":\"resume1\",\"records\":"
            << resume.recovered.records << ",\"requests\":"
            << resume.recovered.run.requests.size() << ",\"bytes_consumed\":"
            << resume.recovered.bytes_consumed << ",\"sealed\":"
            << (resume.recovered.sealed ? "true" : "false") << "}\n";
  std::cout << serve::render_serve_report(resume.report);
  return 0;
}

// `pushpull serve --chaos`: the seeded kill/recover/resume/replay harness
// over the full failure cocktail. Exit 1 when any replication fails the
// bit-exact replay check.
int cmd_serve_chaos(const exp::ArgParser& args) {
  args.require_known(kServeOpts, {"chaos", "reps", "dir", "out"});
  serve::ServeConfig config = serve::chaos_profile(serve_config_from(args));
  config.accelerated = true;
  config.validate();
  serve::ChaosOptions options;
  options.replications =
      static_cast<std::size_t>(args.get_positive_u64("reps", 5));
  options.scratch_dir = args.get_string("dir", ".");
  // --scenario used to be accepted and silently ignored here; wire it
  // through the plan-shaping hook so each rep journals a shaped plan, with
  // the same timeline/seed derivation as plain `serve --scenario`.
  const pushpull::scenario::Preset preset =
      pushpull::scenario::parse_preset(args.get_string("scenario", "none"));
  if (preset != pushpull::scenario::Preset::kNone) {
    const double intensity =
        args.get_positive_double("scenario-intensity", 1.0);
    options.shape_plan = [preset, intensity](
                             workload::Trace plan,
                             const serve::ServeConfig& cfg) {
      const pushpull::scenario::Timeline timeline =
          pushpull::scenario::make_timeline(preset, intensity, plan.span(),
                                            cfg.num_items);
      pushpull::scenario::ShapedTrace shaped =
          pushpull::scenario::shape_trace(
              plan, timeline, rng::SplitMix64::mix(cfg.seed ^ 0x5EEDCAFEULL),
              cfg.num_items, cfg.num_classes);
      return std::move(shaped.trace);
    };
  }
  const serve::ChaosReport report = serve::run_chaos(config, options);
  const std::string rendered = serve::render_chaos_report(report);
  const std::string out = args.get_string("out", "");
  if (!out.empty()) {
    std::ofstream file(out);
    if (!file) {
      std::cerr << "serve: cannot open " << out << "\n";
      return 2;
    }
    file << rendered;
  }
  std::cout << rendered;
  return report.all_exact() ? 0 : 1;
}

int cmd_serve(const exp::ArgParser& args) {
  // Wall-clock serving: the load driver paces arrivals in real time
  // (scaled by --time-scale) and the server completes slots as the wall
  // passes their logical ends. For the deterministic fast path use
  // `pushpull loadtest --accelerated`. SIGTERM (or --drain-after) drains
  // gracefully instead of killing the run.
  if (args.has("resume")) return cmd_serve_resume(args);
  if (args.has("chaos")) return cmd_serve_chaos(args);
  args.require_known(kServeOpts, {"record", "from-trace", "trace",
                                  "trace-categories", "trace-cap"});
  serve::ServeConfig config = serve_config_from(args);
  config.accelerated = false;
  return run_live(config, args.get_string("record", ""),
                  args.get_string("from-trace", ""), "serve", args);
}

int cmd_loadtest(const exp::ArgParser& args) {
  args.require_known(kServeOpts, {"record", "from-trace", "trace",
                                  "trace-categories", "trace-cap"});
  const serve::ServeConfig config = serve_config_from(args);
  return run_live(config, args.get_string("record", ""),
                  args.get_string("from-trace", ""), "loadtest", args);
}

int cmd_replay(const exp::ArgParser& args) {
  args.require_known({"in", "reps", "jobs", "out"});
  std::string path = args.get_string("in", "");
  if (path.empty() && args.positional().size() > 1) {
    path = args.positional()[1];
  }
  if (path.empty()) {
    std::cerr << "replay: need a recorded trace "
                 "(pushpull replay TRACE.jsonl, or --in FILE)\n";
    return 2;
  }
  const serve::RecordedRun run = serve::load_trace_file(path);
  serve::ReplayOptions options;
  options.reps = static_cast<std::size_t>(args.get_positive_u64("reps", 1));
  options.jobs = args.has("jobs") ? args.get_jobs("jobs") : 1;
  const auto results = serve::replay(run, options);
  const std::string report = serve::render_replay_report(run, results);
  const std::string out = args.get_string("out", "");
  if (!out.empty()) {
    std::ofstream file(out);
    if (!file) {
      std::cerr << "replay: cannot open " << out << "\n";
      return 2;
    }
    file << report;
  }
  std::cout << report;
  return 0;
}

void usage() {
  std::cout <<
      R"(pushpull — hybrid push/pull broadcast scheduling (ICPP 2005 reproduction)

commands:
  simulate     run the hybrid server once, print per-class QoS
  optimize     scan cutoffs for the minimum total prioritized cost
  model        evaluate the analytical access-time model at one cutoff
  replicate    run many seeds, report means with 95% confidence intervals
               (--jobs N parallel workers; output is bit-identical for any N)
  adaptive     adaptive server on a drifting workload (--epoch, --shift)
  multichannel dedicated broadcast channel + N pull channels (--channels)
  uplink       push the trace through the slotted-ALOHA back-channel
  closedloop   finite client population (--clients, --think-rate)
  chaos        seeded chaos/soak harness: crashes + burst errors + arrival
               spike over N replications, with a machine-verified invariant
               suite (exit 1 on any violation)
  serve        run the live completion-queue server against paced open-loop
               load on the wall clock (--time-scale X fast-forwards).
               SIGTERM or --drain-after T drains gracefully: admission
               stops, the pull side flushes, the journal seals with the
               conservation ledger. `serve --resume FILE` recovers a
               crashed journal; `serve --chaos` runs the kill/recover/
               resume/replay harness (exit 1 on any replay mismatch)
  loadtest     measurement run of the live server; --accelerated drives the
               identical event loop on a virtual clock (fast, seeded,
               bit-reproducible), --record FILE captures an sv2 journal
  replay       feed a recorded trace back through a deterministic engine
               (pushpull replay TRACE [--reps R] [--jobs N]): the DES core
               when the config has an exact DES mirror, the accelerated
               live engine otherwise; rep 0 re-runs the recorded seed
               bit-exactly
  trace        record the scenario's request trace to CSV (--out FILE)
               and/or run the hybrid server with full observability and
               write the sim-time event trace as JSONL (--trace FILE)
  lint         print the determinism-contract rules (D1-D5, L1, P1, R1-R2,
               S1) and baseline stats, then run every detlint pass over the
               tree — per-file rules, cross-engine parity, layer DAG, dead
               suppressions, baseline ratchet (--root DIR, --baseline FILE,
               --json FILE; exit 0 clean / 1 findings / 2 usage-IO)

common options:
  --theta T --alpha A --cutoff K --requests N --seed S --items D --rate L
  --policy {fcfs,mrf,stretch,priority,rxw,lwf,importance,importance-q}
  --bandwidth B --demand D --patience P --csv --report FILE (simulate)
  --scenario {none,diurnal,flashcrowd,commuter,kitchen-sink}
               apply a seeded environment timeline to the recorded trace:
               piecewise arrival modulation (diurnal curves, flash-crowd
               ramps), moving-Zipf popularity rotation, and cell handoffs
               that re-home or lose in-flight requests. RNG-free trace
               transformation — `none` (default) is byte-identical to
               pre-scenario builds. Honored by the trace-driven commands
               (simulate / optimize / trace / multichannel / uplink /
               replicate / chaos) and by serve / loadtest (shapes the
               synthesized plan; incompatible with --from-trace)
  --scenario-intensity X   how far the preset departs from the stationary
               baseline (default 1.0; rate deviations scale by X, handoff
               probabilities scale linearly, capped at 0.9)
  --jobs N     worker threads for replicate (default: all hardware threads;
               --jobs 1 = serial). Seeds derive from the replication index,
               so results are identical for every N.
  --progress FILE  write JSONL progress + checkpoint lines (one per finished
               replication); also the input for --resume
  --resume     with --progress FILE: restore replications already
               checkpointed in FILE (from a killed run) and compute only the
               rest; the summary is bit-identical to an uninterrupted run

fault injection (simulate / replicate):
  --fault      enable the Gilbert-Elliott burst-error downlink channel
  --fault-p-gb P / --fault-p-bg P   good->bad / bad->good transition
               probabilities per transmission (default 0.05 / 0.30)
  --fault-corrupt-good P / --fault-corrupt-bad P   corruption probability in
               the good / bad state (default 0.0 / 0.5)
  --fault-retries N    re-request attempts before a pull item is lost (3)
  --fault-backoff B / --fault-backoff-mult M   exponential backoff: retry k
               waits B*M^(k-1) broadcast units (default 1.0 / 2.0)
  --queue-cap N    bound the pull queue at N requests (0 = unbounded)
  --shed {tail,priority}   overload policy at the cap: refuse the newcomer
               (tail) or evict the lowest-importance request (priority)

resilience (simulate / replicate / chaos):
  --crash-rate R   Poisson server-crash rate per broadcast unit (0 = never);
               crashes void the in-flight transmission and wipe the queue
  --crash-downtime T   dark time after each crash (default 50)
  --recovery {cold,warm}   cold loses all server state (re-request storm);
               warm restores the pull queue from the latest snapshot
  --snapshot-interval T   period of warm-recovery snapshots (default 100)
  --rerequest-timeout T / --storm-spread J   a wiped client re-requests at
               recovery + T + U(0, J) (defaults 20 / 10)
  --max-crashes N  upper bound on scheduled crashes (default 64)
  --ladder     enable the overload degradation ladder: normal ->
               shed-low-priority -> widen-push -> admission-control ->
               brownout, driven by queue occupancy and blocking EWMA
  --ladder-interval T / --ladder-capacity N / --ladder-cutoff-step K
               evaluation period (5), occupancy reference & soft cap (64),
               widen-push cutoff growth (10)

observability (simulate / optimize / replicate / trace):
  --trace FILE accumulate a deterministic sim-time event trace and write it
               as sorted JSONL; without the flag no observer exists and the
               run is byte-identical to an uninstrumented build
  --trace-categories CSV   keep only these categories (push, pull, queue,
               cutoff, fault, crash, ladder; default "all"); the filtered
               stream is an exact sub-sequence of the unfiltered one
  --trace-cap N    ring-buffer capacity in events (default 65536); on
               overflow the oldest events drop and the footer reports it
               (replicate: the merged stream is bit-identical for every
               --jobs value and across --resume)

live serving (serve / loadtest / replay):
  --duration SEC   load-generation horizon in broadcast units (default 50);
               must be a positive finite number
  --target-qps N   mean offered arrivals per broadcast unit (default 5)
  --accelerated    (loadtest) virtual clock: the event loop advances time
               itself; the run is a pure function of the seed
  --time-scale X   broadcast units per wall second on the wall clock
               (default 1.0; 10 = ten times faster than real time)
  --pacers N   producer threads pacing arrivals (default 1). The plan is
               synthesized upfront, so pacer count never changes which
               requests exist
  --queue-capacity N   completion-queue bound; a full queue backpressures
               the pacers (default 1024)
  --record FILE    write the run as a crash-consistent sv2 journal (framed
               header + requests + decisions + sealed ledger footer) — the
               input to `pushpull replay` and `serve --resume`; sv1 JSONL
               traces from older builds still load
  --from-trace FILE    re-offer a recorded trace as the load plan instead of
               synthesizing one (workload + scheduler come from the file)
  --classes N  service classes in the synthesized population (default 3)
  --reps R     (replay) server-side replications over the recorded workload:
               rep 0 uses the recorded seed verbatim, rep r > 0 decorrelates
               the server seed; merged in rep order so --jobs N never
               changes the bytes
  --out FILE   (replay) also write the report to FILE

live failure model (serve / loadtest; defaults inert):
  --mean-deadline T    mean exponential per-request deadline in broadcast
               units, drawn from the seeded patience stream (0 = off)
  --deadline-scale CSV     per-class multipliers on each deadline draw
               (e.g. 2.0,1.0,0.5: premium classes wait longer)
  --deadline-spike-factor F --deadline-spike-start T
  --deadline-spike-duration W   chaos: deadlines drawn in [T, T+W) are
               multiplied by F (F < 1 tightens them)
  --fault* / --queue-cap / --shed   the simulate/replicate fault layer,
               applied to the live loop (burst errors, bounded retries,
               bounded queue with shedding)
  --ladder*    the overload degradation ladder; transitions are stamped
               into the journal decision log
  --hedge-after T  hedge a pull request still queued after T units: post a
               duplicate into its item entry to boost its priority
  --drain-after T  stop admission at serve time T and drain (what SIGTERM
               does on the wall clock)
  --sync-every N   fsync the journal every N records (default 64; 0 = only
               at seal)

serve --resume / --chaos:
  --resume FILE    salvage the longest valid prefix of a truncated journal,
               re-run it deterministically, print the recovery summary +
               report (--record OUT re-journals the run, sealed)
  --chaos      seeded kill/recover/resume/replay harness over the full
               failure cocktail (deadlines + spike + burst errors + ladder);
               per rep: journal a run, truncate at a random offset, resume,
               replay, compare per-class stats bit-for-bit
  --reps R     (--chaos) replications (default 5)
  --dir DIR    (--chaos) where per-rep journal artifacts land (default .)
  --out FILE   (--chaos) also write the chaos report to FILE
               (--chaos) --scenario/--scenario-intensity shape each rep's
               plan before it is journaled, exactly like plain serve

chaos options:
  --reps R     replications (default 16; merged in index order, so --jobs N
               never changes the numbers)
  --spike-factor F --spike-start T --spike-duration W   compress arrivals in
               [T, T+W) by F (instantaneous rate multiplies by F). F must be
               positive finite; T and W non-negative finite
  --scenario NAME --scenario-intensity X   compose an environment timeline
               with the crash/fault cocktail from the same seed; adds the
               conservation-across-handoff invariant per class
  --gap-bound G    require every class's max inter-service gap <= G
               (0 = unchecked); violations fail the invariant suite (exit 1)
  --no-replay-check    skip the bit-identical-replay invariant
  --out FILE   write the invariant report + summary as JSON
)";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const exp::ArgParser args(argc, argv);
    if (args.positional().empty()) {
      usage();
      return 2;
    }
    const std::string& command = args.positional().front();
    if (command == "simulate") return cmd_simulate(args);
    if (command == "optimize") return cmd_optimize(args);
    if (command == "model") return cmd_model(args);
    if (command == "replicate") return cmd_replicate(args);
    if (command == "adaptive") return cmd_adaptive(args);
    if (command == "multichannel") return cmd_multichannel(args);
    if (command == "uplink") return cmd_uplink(args);
    if (command == "closedloop") return cmd_closedloop(args);
    if (command == "chaos") return cmd_chaos(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "loadtest") return cmd_loadtest(args);
    if (command == "replay") return cmd_replay(args);
    if (command == "trace") return cmd_trace(args);
    if (command == "lint") return cmd_lint(args);
    if (command == "help") {
      usage();
      return 0;
    }
    std::cerr << "unknown command: " << command << "\n";
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
