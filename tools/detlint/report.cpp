#include "report.hpp"

#include <cctype>
#include <cstddef>
#include <map>
#include <memory>
#include <sstream>

namespace detlint {

namespace {

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void render_json(std::ostream& out, const std::vector<Diagnostic>& diags) {
  out << "{\n  \"findings\": [";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"file\": \""
        << json_escape(d.file) << "\", \"line\": " << d.line
        << ", \"rule\": \"" << json_escape(d.rule) << "\", \"message\": \""
        << json_escape(d.message) << "\", \"baselined\": "
        << (d.baselined ? "true" : "false") << "}";
  }
  out << (diags.empty() ? "" : "\n  ") << "],\n  \"fresh\": "
      << fresh_count(diags) << ",\n  \"baselined\": "
      << (diags.size() - fresh_count(diags)) << "\n}\n";
}

void render_sarif(std::ostream& out, const std::vector<Diagnostic>& diags) {
  out << "{\n"
         "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
         "  \"version\": \"2.1.0\",\n"
         "  \"runs\": [\n"
         "    {\n"
         "      \"tool\": {\n"
         "        \"driver\": {\n"
         "          \"name\": \"detlint\",\n"
         "          \"rules\": [";
  const auto& table = rules();
  for (std::size_t i = 0; i < table.size(); ++i) {
    const RuleInfo& r = table[i];
    out << (i == 0 ? "\n" : ",\n")
        << "            {\"id\": \"" << r.id << "\", \"name\": \"" << r.name
        << "\", \"shortDescription\": {\"text\": \""
        << json_escape(r.summary) << "\"}}";
  }
  out << "\n          ]\n"
         "        }\n"
         "      },\n"
         "      \"results\": [";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    // SARIF requires startLine >= 1; line-0 findings (baseline ratchet,
    // IO errors) anchor at the top of the file.
    const std::size_t line = d.line == 0 ? 1 : d.line;
    out << (i == 0 ? "\n" : ",\n")
        << "        {\"ruleId\": \"" << json_escape(d.rule)
        << "\", \"level\": \"error\", \"message\": {\"text\": \""
        << json_escape(d.message)
        << "\"}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \""
        << json_escape(d.file) << "\"}, \"region\": {\"startLine\": " << line
        << "}}}]";
    if (d.baselined) {
      out << ", \"suppressions\": [{\"kind\": \"external\"}]";
    }
    out << "}";
  }
  out << (diags.empty() ? "" : "\n      ") << "]\n"
         "    }\n"
         "  ]\n"
         "}\n";
}

// ---------------------------------------------------------------------------
// Offline SARIF validation: a dependency-free JSON parser plus structural
// checks for the 2.1.0 shape detlint emits.
// ---------------------------------------------------------------------------

namespace {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  bool number_integral = false;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] const JsonValue* get(const std::string& key) const {
    if (kind != Kind::kObject) return nullptr;
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  [[nodiscard]] bool parse(JsonValue& out, std::string& error) {
    skip_ws();
    if (!parse_value(out, error)) return false;
    skip_ws();
    if (pos_ != text_.size()) {
      error = at() + "trailing characters after the top-level value";
      return false;
    }
    return true;
  }

 private:
  [[nodiscard]] std::string at() const {
    return "JSON offset " + std::to_string(pos_) + ": ";
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  [[nodiscard]] bool parse_value(JsonValue& out, std::string& error) {
    if (pos_ >= text_.size()) {
      error = at() + "unexpected end of input";
      return false;
    }
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return parse_object(out, error);
      case '[':
        return parse_array(out, error);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.string, error);
      case 't':
      case 'f':
        return parse_keyword(c == 't' ? "true" : "false", out, error);
      case 'n':
        return parse_keyword("null", out, error);
      default:
        return parse_number(out, error);
    }
  }

  [[nodiscard]] bool parse_keyword(std::string_view word, JsonValue& out,
                                   std::string& error) {
    if (text_.substr(pos_, word.size()) != word) {
      error = at() + "unexpected token";
      return false;
    }
    pos_ += word.size();
    if (word == "null") {
      out.kind = JsonValue::Kind::kNull;
    } else {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = word == "true";
    }
    return true;
  }

  [[nodiscard]] bool parse_number(JsonValue& out, std::string& error) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = integral && c != '.' && c != 'e' && c != 'E';
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      error = at() + "invalid number";
      return false;
    }
    out.kind = JsonValue::Kind::kNumber;
    out.number = std::stod(std::string(text_.substr(start, pos_ - start)));
    out.number_integral = integral;
    return true;
  }

  [[nodiscard]] bool parse_string(std::string& out, std::string& error) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) break;
        const char esc = text_[pos_ + 1];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u':
            // Preserved verbatim — the validator only checks structure, it
            // never needs the decoded code point.
            out += text_.substr(pos_, 6);
            pos_ += 4;
            break;
          default:
            error = at() + "bad escape '\\" + std::string(1, esc) + "'";
            return false;
        }
        pos_ += 2;
        continue;
      }
      out += c;
      ++pos_;
    }
    error = at() + "unterminated string";
    return false;
  }

  [[nodiscard]] bool parse_array(JsonValue& out, std::string& error) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue element;
      skip_ws();
      if (!parse_value(element, error)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (pos_ >= text_.size()) {
        error = at() + "unterminated array";
        return false;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      error = at() + "expected ',' or ']' in array";
      return false;
    }
  }

  [[nodiscard]] bool parse_object(JsonValue& out, std::string& error) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        error = at() + "expected object key";
        return false;
      }
      std::string key;
      if (!parse_string(key, error)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        error = at() + "expected ':' after object key";
        return false;
      }
      ++pos_;
      skip_ws();
      JsonValue value;
      if (!parse_value(value, error)) return false;
      out.object[key] = std::move(value);
      skip_ws();
      if (pos_ >= text_.size()) {
        error = at() + "unterminated object";
        return false;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      error = at() + "expected ',' or '}' in object";
      return false;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

class SarifChecker {
 public:
  explicit SarifChecker(std::vector<std::string>* errors) : errors_(errors) {}

  [[nodiscard]] bool check(const JsonValue& root) {
    if (root.kind != JsonValue::Kind::kObject) {
      fail("top level must be a JSON object");
      return ok_;
    }
    const JsonValue* version = root.get("version");
    if (version == nullptr || version->kind != JsonValue::Kind::kString ||
        version->string != "2.1.0") {
      fail("version must be the string \"2.1.0\"");
    }
    const JsonValue* runs = root.get("runs");
    if (runs == nullptr || runs->kind != JsonValue::Kind::kArray ||
        runs->array.empty()) {
      fail("runs must be a non-empty array");
      return ok_;
    }
    for (std::size_t i = 0; i < runs->array.size(); ++i) {
      check_run(runs->array[i], "runs[" + std::to_string(i) + "]");
    }
    return ok_;
  }

 private:
  void fail(std::string message) {
    ok_ = false;
    if (errors_ != nullptr) errors_->push_back(std::move(message));
  }

  void check_run(const JsonValue& run, const std::string& where) {
    if (run.kind != JsonValue::Kind::kObject) {
      fail(where + " must be an object");
      return;
    }
    const JsonValue* tool = run.get("tool");
    const JsonValue* driver =
        tool == nullptr ? nullptr : tool->get("driver");
    const JsonValue* name =
        driver == nullptr ? nullptr : driver->get("name");
    if (name == nullptr || name->kind != JsonValue::Kind::kString ||
        name->string.empty()) {
      fail(where + ".tool.driver.name must be a non-empty string");
    }
    const JsonValue* rule_list =
        driver == nullptr ? nullptr : driver->get("rules");
    if (rule_list != nullptr) {
      if (rule_list->kind != JsonValue::Kind::kArray) {
        fail(where + ".tool.driver.rules must be an array");
      } else {
        for (std::size_t i = 0; i < rule_list->array.size(); ++i) {
          const JsonValue& rule = rule_list->array[i];
          const JsonValue* id = rule.get("id");
          if (id == nullptr || id->kind != JsonValue::Kind::kString ||
              id->string.empty()) {
            fail(where + ".tool.driver.rules[" + std::to_string(i) +
                 "].id must be a non-empty string");
          }
        }
      }
    }
    const JsonValue* results = run.get("results");
    if (results == nullptr) return;  // results are optional in the spec
    if (results->kind != JsonValue::Kind::kArray) {
      fail(where + ".results must be an array");
      return;
    }
    for (std::size_t i = 0; i < results->array.size(); ++i) {
      check_result(results->array[i],
                   where + ".results[" + std::to_string(i) + "]");
    }
  }

  void check_result(const JsonValue& result, const std::string& where) {
    if (result.kind != JsonValue::Kind::kObject) {
      fail(where + " must be an object");
      return;
    }
    const JsonValue* rule_id = result.get("ruleId");
    if (rule_id == nullptr || rule_id->kind != JsonValue::Kind::kString ||
        rule_id->string.empty()) {
      fail(where + ".ruleId must be a non-empty string");
    }
    const JsonValue* message = result.get("message");
    const JsonValue* text =
        message == nullptr ? nullptr : message->get("text");
    if (text == nullptr || text->kind != JsonValue::Kind::kString) {
      fail(where + ".message.text must be a string");
    }
    const JsonValue* locations = result.get("locations");
    if (locations == nullptr ||
        locations->kind != JsonValue::Kind::kArray) {
      fail(where + ".locations must be an array");
      return;
    }
    for (std::size_t i = 0; i < locations->array.size(); ++i) {
      const std::string loc_where =
          where + ".locations[" + std::to_string(i) + "]";
      const JsonValue& loc = locations->array[i];
      const JsonValue* phys = loc.get("physicalLocation");
      const JsonValue* artifact =
          phys == nullptr ? nullptr : phys->get("artifactLocation");
      const JsonValue* uri =
          artifact == nullptr ? nullptr : artifact->get("uri");
      if (uri == nullptr || uri->kind != JsonValue::Kind::kString ||
          uri->string.empty()) {
        fail(loc_where +
             ".physicalLocation.artifactLocation.uri must be a non-empty "
             "string");
      }
      const JsonValue* region =
          phys == nullptr ? nullptr : phys->get("region");
      if (region != nullptr) {
        const JsonValue* start = region->get("startLine");
        if (start != nullptr &&
            (start->kind != JsonValue::Kind::kNumber ||
             !start->number_integral || start->number < 1.0)) {
          fail(loc_where +
               ".physicalLocation.region.startLine must be an integer >= 1");
        }
      }
    }
  }

  std::vector<std::string>* errors_;
  bool ok_ = true;
};

}  // namespace

bool validate_sarif(std::string_view text, std::vector<std::string>* errors) {
  JsonValue root;
  std::string parse_error;
  JsonParser parser(text);
  if (!parser.parse(root, parse_error)) {
    if (errors != nullptr) errors->push_back(parse_error);
    return false;
  }
  return SarifChecker(errors).check(root);
}

}  // namespace detlint
