#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "lint.hpp"

/// Machine-readable renderings of a detlint run, plus an offline SARIF
/// structural validator so CI can prove the artifact is well-formed without
/// a network round-trip to the published 2.1.0 JSON schema.
namespace detlint {

/// Stable JSON: findings sorted as given (the drivers sort by
/// (file, line, rule)), then summary counters. Byte-identical across
/// platforms for identical inputs.
void render_json(std::ostream& out, const std::vector<Diagnostic>& diags);

/// SARIF 2.1.0, one run, tool.driver.name "detlint". Every rule from
/// rules() is emitted as driver metadata; baselined findings carry a
/// `suppressions: [{kind: "external"}]` entry so SARIF viewers fold them
/// the way the CLI does. Line-0 findings (baseline ratchet) clamp to
/// startLine 1 — the spec requires a positive line.
void render_sarif(std::ostream& out, const std::vector<Diagnostic>& diags);

/// Structural validation against the SARIF 2.1.0 shape detlint relies on:
/// parses `text` with a dependency-free JSON parser and checks
///   - top level: object, version == "2.1.0", runs is a non-empty array
///   - each run: tool.driver.name is a non-empty string
///   - driver.rules (if present): array of objects with string `id`
///   - each result: string ruleId, message.text string, locations[*]
///     .physicalLocation.artifactLocation.uri string, and
///     .region.startLine (if present) an integer >= 1
/// Returns true when all checks pass; otherwise false with one message per
/// violation appended to `errors` (when non-null). JSON syntax errors fail
/// with a position-stamped message.
[[nodiscard]] bool validate_sarif(std::string_view text,
                                  std::vector<std::string>* errors = nullptr);

}  // namespace detlint
