#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iomanip>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

namespace detlint {

namespace {

// ---------------------------------------------------------------------------
// Rule table
// ---------------------------------------------------------------------------

const std::vector<RuleInfo> kRules = {
    {"D1", "no-wall-clock",
     "no std::random_device, time(), system_clock/steady_clock, rand(), "
     "getenv in simulation code (serve::Clock's wall backend in "
     "src/serve/clock.cpp is the one sanctioned boundary)"},
    {"D2", "named-rng-streams",
     "no raw std RNG engine construction outside src/rng/ — draw from "
     "rng::StreamFactory named streams"},
    {"D3", "ordered-emission",
     "no iteration over unordered_map/unordered_set (platform-dependent "
     "order) unless routed through metrics::sorted_view"},
    {"D4", "double-metrics",
     "no `float` and no raw ==/!= against floating-point literals outside "
     "approved helpers (metrics::exactly_equal)"},
    {"R1", "throw-not-assert",
     "no assert() in library code (src/) — throw std::logic_error with "
     "context so Release builds keep the check"},
    {"R2", "no-using-namespace-in-headers",
     "no `using namespace` at any scope in a header file"},
};

/// Files where D4's raw floating-point comparison is the implementation of
/// the approved helper itself.
const std::vector<std::string_view> kFloatCompareHelpers = {
    "src/metrics/float_compare.hpp",
};

/// Files where D1's wall-clock read is the sanctioned time boundary itself:
/// serve::Clock's wall backend. Everything else — including the rest of
/// src/serve/ — must go through the serve::Clock interface, so a stray
/// steady_clock read outside this file still flags.
const std::vector<std::string_view> kWallClockBoundary = {
    "src/serve/clock.cpp",
};

// ---------------------------------------------------------------------------
// Lexer: blank comments and literals, collect suppressions
// ---------------------------------------------------------------------------

struct Suppressions {
  /// line number -> rule ids allowed on that line
  std::map<std::size_t, std::set<std::string>> by_line;
  std::set<std::string> file_wide;

  [[nodiscard]] bool allows(const std::string& rule, std::size_t line) const {
    if (file_wide.count(rule) != 0) return true;
    const auto it = by_line.find(line);
    return it != by_line.end() && it->second.count(rule) != 0;
  }
};

/// Parses `detlint:allow(D1,D4)` / `detlint:allow-file(D1)` directives out
/// of one comment's text and registers them. A standalone comment (nothing
/// but whitespace before it on its starting line) covers its own line and
/// the next; a trailing comment covers only its own line.
void collect_directives(std::string_view comment, std::size_t start_line,
                        bool standalone, Suppressions& sup) {
  static constexpr std::string_view kAllow = "detlint:allow";
  std::size_t pos = 0;
  while ((pos = comment.find(kAllow, pos)) != std::string_view::npos) {
    std::size_t i = pos + kAllow.size();
    const bool file_wide = comment.substr(i, 5) == "-file";
    if (file_wide) i += 5;
    if (i >= comment.size() || comment[i] != '(') {
      pos = i;
      continue;
    }
    const std::size_t close = comment.find(')', i);
    if (close == std::string_view::npos) break;
    std::string rule;
    auto flush = [&] {
      if (rule.empty()) return;
      if (file_wide) {
        sup.file_wide.insert(rule);
      } else {
        sup.by_line[start_line].insert(rule);
        if (standalone) sup.by_line[start_line + 1].insert(rule);
      }
      rule.clear();
    };
    for (std::size_t j = i + 1; j < close; ++j) {
      const char c = comment[j];
      if (c == ',' || c == ' ' || c == '\t') {
        flush();
      } else {
        rule += c;
      }
    }
    flush();
    pos = close;
  }
}

/// `text` with comments, string literals and char literals replaced by
/// spaces (newlines preserved, so offsets and line numbers are unchanged),
/// plus the suppression directives found in comments.
struct Prepared {
  std::string code;
  Suppressions suppressions;
};

Prepared strip_comments_and_literals(std::string_view text) {
  Prepared out;
  out.code.assign(text.size(), ' ');
  std::size_t line = 1;
  bool line_has_code = false;  // non-whitespace code seen on current line

  auto keep = [&](std::size_t i) { out.code[i] = text[i]; };

  std::size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (c == '\n') {
      out.code[i] = '\n';
      ++line;
      line_has_code = false;
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < text.size() && text[i + 1] == '/') {
      const std::size_t start = i;
      while (i < text.size() && text[i] != '\n') ++i;
      collect_directives(text.substr(start, i - start), line, !line_has_code,
                         out.suppressions);
      continue;
    }
    if (c == '/' && i + 1 < text.size() && text[i + 1] == '*') {
      const std::size_t start = i;
      const std::size_t start_line = line;
      const bool standalone = !line_has_code;
      i += 2;
      while (i + 1 < text.size() && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') {
          out.code[i] = '\n';
          ++line;
        }
        ++i;
      }
      i = std::min(i + 2, text.size());
      collect_directives(text.substr(start, i - start), start_line, standalone,
                         out.suppressions);
      continue;
    }
    if (c == '"' || c == '\'') {
      // Raw string literal? (R"delim( ... )delim")
      if (c == '"' && i >= 1 && text[i - 1] == 'R') {
        std::size_t d = i + 1;
        while (d < text.size() && text[d] != '(') ++d;
        // Built with append() — chained operator+ here trips GCC 12's
        // spurious -Wrestrict under -O2.
        std::string closer;
        closer.reserve(d - i + 1);
        closer += ')';
        closer.append(text.substr(i + 1, d - i - 1));
        closer += '"';
        const std::size_t end = text.find(closer, d);
        const std::size_t stop = end == std::string_view::npos
                                     ? text.size()
                                     : end + closer.size();
        for (; i < stop; ++i) {
          if (text[i] == '\n') {
            out.code[i] = '\n';
            ++line;
          }
        }
        line_has_code = true;
        continue;
      }
      const char quote = c;
      keep(i);  // keep the delimiter so tokens stay separated
      ++i;
      while (i < text.size() && text[i] != quote && text[i] != '\n') {
        i += text[i] == '\\' ? std::size_t{2} : std::size_t{1};
      }
      if (i < text.size() && text[i] == quote) {
        keep(i);
        ++i;
      }
      line_has_code = true;
      continue;
    }
    keep(i);
    if (!std::isspace(static_cast<unsigned char>(c))) line_has_code = true;
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

enum class Tok { kIdent, kNumber, kPunct };

struct Token {
  Tok kind;
  std::string_view text;
  std::size_t line;
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::vector<Token> tokenize(std::string_view code) {
  std::vector<Token> toks;
  std::size_t line = 1;
  std::size_t i = 0;
  while (i < code.size()) {
    const char c = code[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (ident_start(c)) {
      const std::size_t start = i;
      while (i < code.size() && ident_char(code[i])) ++i;
      toks.push_back({Tok::kIdent, code.substr(start, i - start), line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < code.size() &&
         std::isdigit(static_cast<unsigned char>(code[i + 1])))) {
      const std::size_t start = i;
      // pp-number: digits, letters, dots, and exponent signs.
      while (i < code.size() &&
             (ident_char(code[i]) || code[i] == '.' || code[i] == '\'' ||
              ((code[i] == '+' || code[i] == '-') && i > start &&
               (code[i - 1] == 'e' || code[i - 1] == 'E' ||
                code[i - 1] == 'p' || code[i - 1] == 'P')))) {
        ++i;
      }
      toks.push_back({Tok::kNumber, code.substr(start, i - start), line});
      continue;
    }
    // Multi-char punctuators the rules care about; everything else single.
    static constexpr std::string_view kTwo[] = {"::", "->", "==", "!=", "<=",
                                                ">=", "&&", "||"};
    std::size_t len = 1;
    for (const auto two : kTwo) {
      if (code.substr(i, 2) == two) {
        len = 2;
        break;
      }
    }
    toks.push_back({Tok::kPunct, code.substr(i, len), line});
    i += len;
  }
  return toks;
}

bool is_float_literal(const Token& t) {
  if (t.kind != Tok::kNumber) return false;
  const std::string_view s = t.text;
  const bool hex = s.size() > 1 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X');
  if (s.find('.') != std::string_view::npos) return true;
  if (hex) return s.find_first_of("pP") != std::string_view::npos;
  return s.find_first_of("eE") != std::string_view::npos;
}

// ---------------------------------------------------------------------------
// Path predicates
// ---------------------------------------------------------------------------

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool is_header(std::string_view path) {
  const std::size_t dot = path.rfind('.');
  if (dot == std::string_view::npos) return false;
  const std::string_view ext = path.substr(dot);
  return ext == ".hpp" || ext == ".h" || ext == ".hh";
}

// ---------------------------------------------------------------------------
// Rule passes
// ---------------------------------------------------------------------------

/// Pass A of rule D3: names declared with an unordered container type.
std::set<std::string> unordered_names_in(const std::vector<Token>& toks) {
  static const std::set<std::string_view> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  std::set<std::string> names;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent || kUnordered.count(toks[i].text) == 0)
      continue;
    std::size_t j = i + 1;
    if (j >= toks.size() || toks[j].text != "<") continue;
    int depth = 0;
    for (; j < toks.size(); ++j) {
      if (toks[j].kind != Tok::kPunct) continue;
      if (toks[j].text == "<") ++depth;
      for (const char ch : toks[j].text) {
        if (ch == '>') --depth;  // counts both ">" and the ">>" token
      }
      if (depth <= 0 || toks[j].text == ";") break;
    }
    // `unordered_map<K, V> name` (possibly `&`/`*`-qualified).
    for (std::size_t k = j + 1; k < toks.size(); ++k) {
      if (toks[k].kind == Tok::kIdent) {
        names.insert(std::string(toks[k].text));
        break;
      }
      if (toks[k].kind == Tok::kPunct &&
          (toks[k].text == "&" || toks[k].text == "*")) {
        continue;
      }
      break;
    }
  }
  return names;
}

class Analysis {
 public:
  Analysis(std::string_view path, const std::vector<Token>& toks,
           const Suppressions& sup, const std::set<std::string>& extra_names)
      : path_(path), toks_(toks), sup_(sup), extra_names_(extra_names) {}

  [[nodiscard]] std::vector<Diagnostic> run() {
    check_d1();
    check_d2();
    check_d3();
    check_d4();
    check_r1();
    check_r2();
    std::sort(diags_.begin(), diags_.end(),
              [](const Diagnostic& a, const Diagnostic& b) {
                return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
              });
    return std::move(diags_);
  }

 private:
  void report(const char* rule, std::size_t line, std::string message) {
    if (sup_.allows(rule, line)) return;
    diags_.push_back({std::string(path_), line, rule, std::move(message)});
  }

  [[nodiscard]] const Token* prev(std::size_t i) const {
    return i == 0 ? nullptr : &toks_[i - 1];
  }
  [[nodiscard]] const Token* next(std::size_t i) const {
    return i + 1 < toks_.size() ? &toks_[i + 1] : nullptr;
  }

  [[nodiscard]] bool called(std::size_t i) const {
    const Token* n = next(i);
    return n != nullptr && n->kind == Tok::kPunct && n->text == "(";
  }
  [[nodiscard]] bool member_access(std::size_t i) const {
    const Token* p = prev(i);
    return p != nullptr && p->kind == Tok::kPunct &&
           (p->text == "." || p->text == "->");
  }
  /// `double time() const` declares a member named like a libc function —
  /// a preceding identifier that is not `return` marks a declaration, not
  /// a call.
  [[nodiscard]] bool declaration_like(std::size_t i) const {
    const Token* p = prev(i);
    return p != nullptr && p->kind == Tok::kIdent && p->text != "return";
  }

  // D1: wall clock / environment nondeterminism.
  void check_d1() {
    for (const auto boundary : kWallClockBoundary) {
      if (path_ == boundary) return;  // the sanctioned serve::Clock backend
    }
    static const std::set<std::string_view> kAlways = {
        "random_device",         "system_clock", "steady_clock",
        "high_resolution_clock", "getenv",       "gettimeofday",
        "timespec_get",          "clock_gettime"};
    // Flagged only as free-function calls, so `event.time`, `next_time()`
    // and member `clock()` accessors stay legal.
    static const std::set<std::string_view> kCallOnly = {"time", "clock",
                                                         "rand", "srand"};
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.kind != Tok::kIdent) continue;
      if (kAlways.count(t.text) != 0) {
        report("D1", t.line,
               "nondeterministic source '" + std::string(t.text) +
                   "' in simulation code; derive everything from the "
                   "scenario seed");
      } else if (kCallOnly.count(t.text) != 0 && called(i) &&
                 !member_access(i) && !declaration_like(i)) {
        report("D1", t.line,
               "wall-clock/libc call '" + std::string(t.text) +
                   "()' in simulation code; derive everything from the "
                   "scenario seed");
      }
    }
  }

  // D2: std RNG engines outside src/rng/.
  void check_d2() {
    if (starts_with(path_, "src/rng/")) return;
    static const std::set<std::string_view> kEngines = {
        "mt19937",        "mt19937_64",    "minstd_rand",
        "minstd_rand0",   "knuth_b",       "default_random_engine",
        "ranlux24",       "ranlux24_base", "ranlux48",
        "ranlux48_base",  "seed_seq"};
    for (const Token& t : toks_) {
      if (t.kind == Tok::kIdent && kEngines.count(t.text) != 0) {
        report("D2", t.line,
               "raw std RNG engine '" + std::string(t.text) +
                   "' outside src/rng/; draw from a rng::StreamFactory "
                   "named stream instead");
      }
    }
  }

  // D3: range-for over a name declared as an unordered container — locally
  // or (via extra_names_) anywhere in the scanned tree.
  void check_d3() {
    std::set<std::string> unordered_names = unordered_names_in(toks_);
    unordered_names.insert(extra_names_.begin(), extra_names_.end());
    if (unordered_names.empty()) return;

    // Pass B: range-for whose range expression names one of them.
    for (std::size_t i = 0; i + 1 < toks_.size(); ++i) {
      if (toks_[i].kind != Tok::kIdent || toks_[i].text != "for") continue;
      if (toks_[i + 1].text != "(") continue;
      int depth = 0;
      std::size_t colon = 0;
      std::size_t close = 0;
      for (std::size_t j = i + 1; j < toks_.size(); ++j) {
        if (toks_[j].kind != Tok::kPunct) continue;
        if (toks_[j].text == "(") ++depth;
        if (toks_[j].text == ")" && --depth == 0) {
          close = j;
          break;
        }
        if (toks_[j].text == ":" && depth == 1 && colon == 0) colon = j;
      }
      if (colon == 0 || close == 0) continue;  // not a range-for
      bool sorted = false;
      const Token* offender = nullptr;
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (toks_[j].kind != Tok::kIdent) continue;
        if (toks_[j].text == "sorted_view") sorted = true;
        if (unordered_names.count(std::string(toks_[j].text)) != 0) {
          offender = &toks_[j];
        }
      }
      if (offender != nullptr && !sorted) {
        report("D3", offender->line,
               "iteration over unordered container '" +
                   std::string(offender->text) +
                   "' has platform-dependent order; route through "
                   "metrics::sorted_view");
      }
    }
  }

  // D4: float keyword; raw ==/!= against floating-point literals.
  void check_d4() {
    for (const Token& t : toks_) {
      if (t.kind == Tok::kIdent && t.text == "float") {
        report("D4", t.line,
               "'float' loses precision in metric accumulation; this "
               "codebase is double-only");
      }
    }
    for (const auto helper : kFloatCompareHelpers) {
      if (path_ == helper) return;  // the approved helper implementation
    }
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.kind != Tok::kPunct || (t.text != "==" && t.text != "!=")) {
        continue;
      }
      const Token* p = prev(i);
      const Token* n = next(i);
      // Look through a unary sign: `x == -1.0`.
      if (n != nullptr && n->kind == Tok::kPunct &&
          (n->text == "-" || n->text == "+")) {
        n = i + 2 < toks_.size() ? &toks_[i + 2] : nullptr;
      }
      if ((p != nullptr && is_float_literal(*p)) ||
          (n != nullptr && is_float_literal(*n))) {
        report("D4", t.line,
               "raw '" + std::string(t.text) +
                   "' against a floating-point literal; use "
                   "metrics::exactly_equal / approx_equal (or justify with "
                   "a suppression)");
      }
    }
  }

  // R1: assert() in library code.
  void check_r1() {
    if (!starts_with(path_, "src/")) return;
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.kind == Tok::kIdent && t.text == "assert" && called(i)) {
        report("R1", t.line,
               "assert() vanishes under NDEBUG; throw std::logic_error with "
               "context (PR 2 convention)");
      }
    }
  }

  // R2: using namespace in headers.
  void check_r2() {
    if (!is_header(path_)) return;
    for (std::size_t i = 0; i + 1 < toks_.size(); ++i) {
      if (toks_[i].kind == Tok::kIdent && toks_[i].text == "using" &&
          toks_[i + 1].kind == Tok::kIdent &&
          toks_[i + 1].text == "namespace") {
        report("R2", toks_[i].line,
               "'using namespace' in a header leaks into every includer");
      }
    }
  }

  std::string_view path_;
  const std::vector<Token>& toks_;
  const Suppressions& sup_;
  const std::set<std::string>& extra_names_;
  std::vector<Diagnostic> diags_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

const std::vector<RuleInfo>& rules() { return kRules; }

std::set<std::string> collect_unordered_names(std::string_view text) {
  const Prepared prepared = strip_comments_and_literals(text);
  return unordered_names_in(tokenize(prepared.code));
}

std::vector<Diagnostic> analyze_source(
    std::string_view path, std::string_view text,
    const std::set<std::string>& extra_unordered_names) {
  const Prepared prepared = strip_comments_and_literals(text);
  const std::vector<Token> toks = tokenize(prepared.code);
  return Analysis(path, toks, prepared.suppressions, extra_unordered_names)
      .run();
}

namespace {

std::string read_or_empty(const std::filesystem::path& file, bool& ok) {
  std::ifstream in(file, std::ios::binary);
  ok = static_cast<bool>(in);
  if (!ok) return {};
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

}  // namespace

std::vector<Diagnostic> analyze_file(
    const std::filesystem::path& root, const std::filesystem::path& file,
    const std::set<std::string>& extra_unordered_names) {
  bool ok = false;
  const std::string text = read_or_empty(file, ok);
  if (!ok) {
    return {{file.generic_string(), 0, "IO", "cannot read file", false}};
  }
  const std::filesystem::path rel =
      file.lexically_proximate(root).lexically_normal();
  return analyze_source(rel.generic_string(), text, extra_unordered_names);
}

std::vector<Diagnostic> analyze_tree(const std::filesystem::path& root) {
  static const std::vector<std::string> kSubdirs = {"src", "tools", "bench"};
  static const std::set<std::string> kExtensions = {".hpp", ".h", ".hh",
                                                    ".cpp", ".cc"};
  std::vector<std::filesystem::path> files;
  for (const auto& sub : kSubdirs) {
    const std::filesystem::path dir = root / sub;
    if (!std::filesystem::is_directory(dir)) continue;
    for (auto it = std::filesystem::recursive_directory_iterator(dir);
         it != std::filesystem::recursive_directory_iterator(); ++it) {
      const std::filesystem::directory_entry& entry = *it;
      const std::string name = entry.path().filename().string();
      if (entry.is_directory() &&
          (name == "fixtures" || name == "build" ||
           (!name.empty() && name.front() == '.'))) {
        it.disable_recursion_pending();
        continue;
      }
      if (entry.is_regular_file() &&
          kExtensions.count(entry.path().extension().string()) != 0) {
        files.push_back(entry.path());
      }
    }
  }
  // Directory iteration order is unspecified — sort so the linter's own
  // output is deterministic.
  std::sort(files.begin(), files.end());

  // Phase 1: union the unordered-container declarations across every file,
  // so a .cpp iterating a member its header declared unordered still trips
  // D3 (lexical analysis has no cross-TU view otherwise).
  std::vector<std::string> texts;
  texts.reserve(files.size());
  std::set<std::string> tree_unordered_names;
  for (const auto& file : files) {
    bool ok = false;
    texts.push_back(read_or_empty(file, ok));
    const auto names = collect_unordered_names(texts.back());
    tree_unordered_names.insert(names.begin(), names.end());
  }

  // Phase 2: analyze with the global declaration set.
  std::vector<Diagnostic> diags;
  for (std::size_t i = 0; i < files.size(); ++i) {
    const std::filesystem::path rel =
        files[i].lexically_proximate(root).lexically_normal();
    auto file_diags = analyze_source(rel.generic_string(), texts[i],
                                     tree_unordered_names);
    diags.insert(diags.end(), std::make_move_iterator(file_diags.begin()),
                 std::make_move_iterator(file_diags.end()));
  }
  return diags;
}

Baseline Baseline::parse(std::istream& in) {
  Baseline b;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t end = line.find('#');
    std::string entry = line.substr(0, end);
    entry.erase(std::remove_if(entry.begin(), entry.end(),
                               [](unsigned char c) { return std::isspace(c); }),
                entry.end());
    if (!entry.empty()) b.entries_.insert(entry);
  }
  return b;
}

Baseline Baseline::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Baseline{};
  return parse(in);
}

void apply_baseline(std::vector<Diagnostic>& diags, const Baseline& baseline) {
  for (auto& d : diags) d.baselined = baseline.covers(d);
}

std::size_t fresh_count(const std::vector<Diagnostic>& diags) {
  return static_cast<std::size_t>(
      std::count_if(diags.begin(), diags.end(),
                    [](const Diagnostic& d) { return !d.baselined; }));
}

void print_rule_table(std::ostream& out) {
  out << "detlint rules (suppress: // detlint:allow(ID): reason | "
         "// detlint:allow-file(ID): reason | baseline entry 'path:ID')\n";
  for (const auto& rule : rules()) {
    out << "  " << rule.id << "  " << std::left << std::setw(32)
        << rule.name << " " << rule.summary << "\n";
  }
}

}  // namespace detlint
