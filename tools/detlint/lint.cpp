#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iomanip>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <tuple>
#include <utility>

namespace detlint {

namespace {

// ---------------------------------------------------------------------------
// Rule table
// ---------------------------------------------------------------------------

const std::vector<RuleInfo> kRules = {
    {"D1", "no-wall-clock",
     "no std::random_device, time(), system_clock/steady_clock, rand(), "
     "getenv in simulation code (serve::Clock's wall backend in "
     "src/serve/clock.cpp is the one sanctioned boundary)"},
    {"D2", "named-rng-streams",
     "no raw std RNG engine construction outside src/rng/ — draw from "
     "rng::StreamFactory named streams"},
    {"D3", "ordered-emission",
     "no iteration over unordered_map/unordered_set (platform-dependent "
     "order) unless routed through metrics::sorted_view"},
    {"D4", "double-metrics",
     "no `float` and no raw ==/!= against floating-point literals outside "
     "approved helpers (metrics::exactly_equal)"},
    {"D5", "rng-stream-purity",
     "in src/: engines never passed by value, never re-seeded/constructed "
     "from raw seeds outside src/rng/, never drawn inside iteration over an "
     "unordered container"},
    {"L1", "layer-dag",
     "every #include \"layer/...\" edge must be declared in the layer DAG "
     "(tools/detlint/layers.toml)"},
    {"P1", "cross-engine-parity",
     "parity:begin/parity:end regions must stay token-identical across the "
     "two scheduling engines, modulo the declared identifier renames"},
    {"R1", "throw-not-assert",
     "no assert() in library code (src/) — throw std::logic_error with "
     "context so Release builds keep the check"},
    {"R2", "no-using-namespace-in-headers",
     "no `using namespace` at any scope in a header file"},
    {"S1", "no-dead-suppressions",
     "a detlint:allow that suppresses nothing, and a baseline entry no "
     "finding matches, are themselves findings (a baseline only shrinks)"},
};

/// The engine-owned RNG type D5 polices. Standard-library engines are
/// already banned wholesale by D2, so only the project engine needs
/// dataflow treatment.
const std::set<std::string_view> kProjectEngines = {"Xoshiro256ss"};

/// Free draw helpers (src/rng/) whose call sites D5 treats as stream
/// consumption.
const std::set<std::string_view> kDrawFns = {"uniform", "exponential",
                                             "poisson", "zipf"};

/// Files where D4's raw floating-point comparison is the implementation of
/// the approved helper itself.
const std::vector<std::string_view> kFloatCompareHelpers = {
    "src/metrics/float_compare.hpp",
};

/// Files where D1's wall-clock read is the sanctioned time boundary itself:
/// serve::Clock's wall backend. Everything else — including the rest of
/// src/serve/ — must go through the serve::Clock interface, so a stray
/// steady_clock read outside this file still flags.
const std::vector<std::string_view> kWallClockBoundary = {
    "src/serve/clock.cpp",
};

// ---------------------------------------------------------------------------
// Lexer: blank comments and literals, collect suppressions
// ---------------------------------------------------------------------------

/// One detlint:allow / detlint:allow-file occurrence, kept in source order
/// so S1 can point at the exact dead directive.
struct AllowDirective {
  std::size_t line = 0;  ///< line the directive starts on
  std::string rule;
  bool file_wide = false;
  bool standalone = false;  ///< covers its own line and the next
};

struct Suppressions {
  /// line number -> rule ids allowed on that line
  std::map<std::size_t, std::set<std::string>> by_line;
  std::set<std::string> file_wide;
  std::vector<AllowDirective> directives;

  [[nodiscard]] bool allows(const std::string& rule, std::size_t line) const {
    if (file_wide.count(rule) != 0) return true;
    const auto it = by_line.find(line);
    return it != by_line.end() && it->second.count(rule) != 0;
  }
};

/// One parity:begin / parity:end marker comment, in source order.
struct ParityMarker {
  std::size_t line = 0;
  bool begin = false;
  std::string rule;  ///< empty on parity:end
  std::map<std::string, std::string> renames;
  std::string error;  ///< non-empty when the marker itself is malformed
};

/// First index of the comment's content: past the `//`/`/*` delimiters and
/// leading whitespace/decoration. Directives and parity markers only count
/// when anchored here — prose that merely *mentions* the syntax (like this
/// linter's own documentation) must not parse as the real thing.
std::size_t comment_content_start(std::string_view comment) {
  std::size_t i = 0;
  while (i < comment.size() &&
         (comment[i] == '/' || comment[i] == '*' ||
          std::isspace(static_cast<unsigned char>(comment[i])))) {
    ++i;
  }
  return i;
}

/// Parses `detlint:allow(D1,D4)` / `detlint:allow-file(D1)` directives out
/// of one comment's text and registers them. A standalone comment (nothing
/// but whitespace before it on its starting line) covers its own line and
/// the next; a trailing comment covers only its own line. The directive
/// must be the first thing in the comment (see comment_content_start).
void collect_directives(std::string_view comment, std::size_t start_line,
                        bool standalone, Suppressions& sup) {
  static constexpr std::string_view kAllow = "detlint:allow";
  const std::size_t pos = comment.find(kAllow);
  if (pos == std::string_view::npos ||
      pos != comment_content_start(comment)) {
    return;
  }
  std::size_t i = pos + kAllow.size();
  const bool file_wide = comment.substr(i, 5) == "-file";
  if (file_wide) i += 5;
  if (i >= comment.size() || comment[i] != '(') return;
  const std::size_t close = comment.find(')', i);
  if (close == std::string_view::npos) return;
  std::string rule;
  auto flush = [&] {
    if (rule.empty()) return;
    if (file_wide) {
      sup.file_wide.insert(rule);
    } else {
      sup.by_line[start_line].insert(rule);
      if (standalone) sup.by_line[start_line + 1].insert(rule);
    }
    sup.directives.push_back({start_line, rule, file_wide, standalone});
    rule.clear();
  };
  for (std::size_t j = i + 1; j < close; ++j) {
    const char c = comment[j];
    if (c == ',' || c == ' ' || c == '\t') {
      flush();
    } else {
      rule += c;
    }
  }
  flush();
}

bool parity_name_ok(std::string_view s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != '-') {
      return false;
    }
  }
  return true;
}

/// Parses `parity:begin(rule[, a=b ...])` / `parity:end[(rule)]` markers out
/// of one comment's text. The marker must be the first thing in the comment
/// (see comment_content_start) and the comment must be standalone — a
/// trailing marker would make it ambiguous whether its own line's code
/// belongs to the region.
void collect_parity_markers(std::string_view comment, std::size_t start_line,
                            bool standalone,
                            std::vector<ParityMarker>& markers) {
  static constexpr std::string_view kPrefix = "parity:";
  const std::size_t pos = comment.find(kPrefix);
  if (pos == std::string_view::npos ||
      pos != comment_content_start(comment)) {
    return;
  }
  {
    std::size_t i = pos + kPrefix.size();
    const bool begin = comment.substr(i, 5) == "begin";
    const bool end = comment.substr(i, 3) == "end";
    if (!begin && !end) return;
    i += begin ? 5 : 3;
    ParityMarker m;
    m.line = start_line;
    m.begin = begin;
    if (!standalone) {
      m.error = "parity markers must be standalone comments";
    }
    std::string args;
    if (i < comment.size() && comment[i] == '(') {
      const std::size_t close = comment.find(')', i);
      if (close == std::string_view::npos) {
        m.error = "unterminated parity marker argument list";
        markers.push_back(std::move(m));
        return;
      }
      args = std::string(comment.substr(i + 1, close - i - 1));
      i = close + 1;
    } else if (begin) {
      m.error = "parity:begin needs a rule name: parity:begin(<rule>)";
    }
    // Split `rule, a=b, c=d` on commas; first field is the rule name, the
    // rest are single-identifier renames.
    std::size_t field = 0;
    std::size_t from = 0;
    while (from <= args.size() && m.error.empty()) {
      std::size_t to = args.find(',', from);
      if (to == std::string::npos) to = args.size();
      std::string part = args.substr(from, to - from);
      part.erase(std::remove_if(part.begin(), part.end(),
                                [](unsigned char c) {
                                  return std::isspace(c) != 0;
                                }),
                 part.end());
      if (!part.empty()) {
        if (field == 0) {
          if (!parity_name_ok(part)) {
            m.error = "bad parity rule name '" + part + "'";
          }
          m.rule = part;
        } else if (begin) {
          const std::size_t eq = part.find('=');
          const std::string a = part.substr(0, eq);
          const std::string b =
              eq == std::string::npos ? "" : part.substr(eq + 1);
          if (eq == std::string::npos || !parity_name_ok(a) ||
              !parity_name_ok(b)) {
            m.error = "bad parity rename '" + part + "' (want ident=ident)";
          } else {
            m.renames[a] = b;
          }
        } else {
          m.error = "parity:end takes at most a rule name";
        }
        ++field;
      }
      from = to + 1;
    }
    if (begin && m.rule.empty() && m.error.empty()) {
      m.error = "parity:begin needs a rule name: parity:begin(<rule>)";
    }
    markers.push_back(std::move(m));
  }
}

/// `text` with comments, string literals and char literals replaced by
/// spaces (newlines preserved, so offsets and line numbers are unchanged),
/// plus the suppression directives and parity markers found in comments.
struct Prepared {
  std::string code;
  Suppressions suppressions;
  std::vector<ParityMarker> parity_markers;
};

Prepared strip_comments_and_literals(std::string_view text) {
  Prepared out;
  out.code.assign(text.size(), ' ');
  std::size_t line = 1;
  bool line_has_code = false;  // non-whitespace code seen on current line

  auto keep = [&](std::size_t i) { out.code[i] = text[i]; };

  std::size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (c == '\n') {
      out.code[i] = '\n';
      ++line;
      line_has_code = false;
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < text.size() && text[i + 1] == '/') {
      const std::size_t start = i;
      while (i < text.size() && text[i] != '\n') ++i;
      collect_directives(text.substr(start, i - start), line, !line_has_code,
                         out.suppressions);
      collect_parity_markers(text.substr(start, i - start), line,
                             !line_has_code, out.parity_markers);
      continue;
    }
    if (c == '/' && i + 1 < text.size() && text[i + 1] == '*') {
      const std::size_t start = i;
      const std::size_t start_line = line;
      const bool standalone = !line_has_code;
      i += 2;
      while (i + 1 < text.size() && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') {
          out.code[i] = '\n';
          ++line;
        }
        ++i;
      }
      i = std::min(i + 2, text.size());
      collect_directives(text.substr(start, i - start), start_line, standalone,
                         out.suppressions);
      collect_parity_markers(text.substr(start, i - start), start_line,
                             standalone, out.parity_markers);
      continue;
    }
    if (c == '"' || c == '\'') {
      // Raw string literal? (R"delim( ... )delim")
      if (c == '"' && i >= 1 && text[i - 1] == 'R') {
        std::size_t d = i + 1;
        while (d < text.size() && text[d] != '(') ++d;
        // Built with append() — chained operator+ here trips GCC 12's
        // spurious -Wrestrict under -O2.
        std::string closer;
        closer.reserve(d - i + 1);
        closer += ')';
        closer.append(text.substr(i + 1, d - i - 1));
        closer += '"';
        const std::size_t end = text.find(closer, d);
        const std::size_t stop = end == std::string_view::npos
                                     ? text.size()
                                     : end + closer.size();
        for (; i < stop; ++i) {
          if (text[i] == '\n') {
            out.code[i] = '\n';
            ++line;
          }
        }
        line_has_code = true;
        continue;
      }
      const char quote = c;
      keep(i);  // keep the delimiter so tokens stay separated
      ++i;
      while (i < text.size() && text[i] != quote && text[i] != '\n') {
        i += text[i] == '\\' ? std::size_t{2} : std::size_t{1};
      }
      if (i < text.size() && text[i] == quote) {
        keep(i);
        ++i;
      }
      line_has_code = true;
      continue;
    }
    keep(i);
    if (!std::isspace(static_cast<unsigned char>(c))) line_has_code = true;
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

enum class Tok { kIdent, kNumber, kPunct };

struct Token {
  Tok kind;
  std::string_view text;
  std::size_t line;
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::vector<Token> tokenize(std::string_view code) {
  std::vector<Token> toks;
  std::size_t line = 1;
  std::size_t i = 0;
  while (i < code.size()) {
    const char c = code[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (ident_start(c)) {
      const std::size_t start = i;
      while (i < code.size() && ident_char(code[i])) ++i;
      toks.push_back({Tok::kIdent, code.substr(start, i - start), line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < code.size() &&
         std::isdigit(static_cast<unsigned char>(code[i + 1])))) {
      const std::size_t start = i;
      // pp-number: digits, letters, dots, and exponent signs.
      while (i < code.size() &&
             (ident_char(code[i]) || code[i] == '.' || code[i] == '\'' ||
              ((code[i] == '+' || code[i] == '-') && i > start &&
               (code[i - 1] == 'e' || code[i - 1] == 'E' ||
                code[i - 1] == 'p' || code[i - 1] == 'P')))) {
        ++i;
      }
      toks.push_back({Tok::kNumber, code.substr(start, i - start), line});
      continue;
    }
    // Multi-char punctuators the rules care about; everything else single.
    static constexpr std::string_view kTwo[] = {"::", "->", "==", "!=", "<=",
                                                ">=", "&&", "||"};
    std::size_t len = 1;
    for (const auto two : kTwo) {
      if (code.substr(i, 2) == two) {
        len = 2;
        break;
      }
    }
    toks.push_back({Tok::kPunct, code.substr(i, len), line});
    i += len;
  }
  return toks;
}

bool is_float_literal(const Token& t) {
  if (t.kind != Tok::kNumber) return false;
  const std::string_view s = t.text;
  const bool hex = s.size() > 1 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X');
  if (s.find('.') != std::string_view::npos) return true;
  if (hex) return s.find_first_of("pP") != std::string_view::npos;
  return s.find_first_of("eE") != std::string_view::npos;
}

// ---------------------------------------------------------------------------
// Path predicates
// ---------------------------------------------------------------------------

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool is_header(std::string_view path) {
  const std::size_t dot = path.rfind('.');
  if (dot == std::string_view::npos) return false;
  const std::string_view ext = path.substr(dot);
  return ext == ".hpp" || ext == ".h" || ext == ".hh";
}

// ---------------------------------------------------------------------------
// Rule passes
// ---------------------------------------------------------------------------

/// Pass A of rule D3: names declared with an unordered container type.
std::set<std::string> unordered_names_in(const std::vector<Token>& toks) {
  static const std::set<std::string_view> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  std::set<std::string> names;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent || kUnordered.count(toks[i].text) == 0)
      continue;
    std::size_t j = i + 1;
    if (j >= toks.size() || toks[j].text != "<") continue;
    int depth = 0;
    for (; j < toks.size(); ++j) {
      if (toks[j].kind != Tok::kPunct) continue;
      if (toks[j].text == "<") ++depth;
      for (const char ch : toks[j].text) {
        if (ch == '>') --depth;  // counts both ">" and the ">>" token
      }
      if (depth <= 0 || toks[j].text == ";") break;
    }
    // `unordered_map<K, V> name` (possibly `&`/`*`-qualified).
    for (std::size_t k = j + 1; k < toks.size(); ++k) {
      if (toks[k].kind == Tok::kIdent) {
        names.insert(std::string(toks[k].text));
        break;
      }
      if (toks[k].kind == Tok::kPunct &&
          (toks[k].text == "&" || toks[k].text == "*")) {
        continue;
      }
      break;
    }
  }
  return names;
}

class Analysis {
 public:
  Analysis(std::string_view path, std::string_view raw_text,
           const Prepared& prepared, const std::vector<Token>& toks,
           const std::set<std::string>& extra_names, const LayerConfig* layers)
      : path_(path),
        raw_text_(raw_text),
        prepared_(prepared),
        toks_(toks),
        sup_(prepared.suppressions),
        extra_names_(extra_names),
        layers_(layers) {}

  [[nodiscard]] SourceReport run() {
    check_d1();
    check_d2();
    check_d3();
    check_d4();
    check_d5();
    check_l1();
    check_r1();
    check_r2();
    build_parity_regions();
    check_s1();  // last: judges the suppressed-hit ledger the others fed
    std::sort(diags_.begin(), diags_.end(),
              [](const Diagnostic& a, const Diagnostic& b) {
                return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
              });
    return {std::move(diags_), std::move(parity_)};
  }

 private:
  void report(const char* rule, std::size_t line, std::string message) {
    if (sup_.allows(rule, line)) {
      suppressed_.insert({rule, line});
      return;
    }
    diags_.push_back({std::string(path_), line, rule, std::move(message)});
  }

  /// For P1 structural and S1 findings, which must not be allow()able
  /// (suppressing the dead-suppression checker would be a paradox; parity
  /// marker structure has to be fixed, not silenced).
  void report_hard(const char* rule, std::size_t line, std::string message) {
    diags_.push_back({std::string(path_), line, rule, std::move(message)});
  }

  [[nodiscard]] const Token* prev(std::size_t i) const {
    return i == 0 ? nullptr : &toks_[i - 1];
  }
  [[nodiscard]] const Token* next(std::size_t i) const {
    return i + 1 < toks_.size() ? &toks_[i + 1] : nullptr;
  }

  [[nodiscard]] bool called(std::size_t i) const {
    const Token* n = next(i);
    return n != nullptr && n->kind == Tok::kPunct && n->text == "(";
  }
  [[nodiscard]] bool member_access(std::size_t i) const {
    const Token* p = prev(i);
    return p != nullptr && p->kind == Tok::kPunct &&
           (p->text == "." || p->text == "->");
  }
  /// `double time() const` declares a member named like a libc function —
  /// a preceding identifier that is not `return` marks a declaration, not
  /// a call.
  [[nodiscard]] bool declaration_like(std::size_t i) const {
    const Token* p = prev(i);
    return p != nullptr && p->kind == Tok::kIdent && p->text != "return";
  }

  // D1: wall clock / environment nondeterminism.
  void check_d1() {
    for (const auto boundary : kWallClockBoundary) {
      if (path_ == boundary) return;  // the sanctioned serve::Clock backend
    }
    static const std::set<std::string_view> kAlways = {
        "random_device",         "system_clock", "steady_clock",
        "high_resolution_clock", "getenv",       "gettimeofday",
        "timespec_get",          "clock_gettime"};
    // Flagged only as free-function calls, so `event.time`, `next_time()`
    // and member `clock()` accessors stay legal.
    static const std::set<std::string_view> kCallOnly = {"time", "clock",
                                                         "rand", "srand"};
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.kind != Tok::kIdent) continue;
      if (kAlways.count(t.text) != 0) {
        report("D1", t.line,
               "nondeterministic source '" + std::string(t.text) +
                   "' in simulation code; derive everything from the "
                   "scenario seed");
      } else if (kCallOnly.count(t.text) != 0 && called(i) &&
                 !member_access(i) && !declaration_like(i)) {
        report("D1", t.line,
               "wall-clock/libc call '" + std::string(t.text) +
                   "()' in simulation code; derive everything from the "
                   "scenario seed");
      }
    }
  }

  // D2: std RNG engines outside src/rng/.
  void check_d2() {
    if (starts_with(path_, "src/rng/")) return;
    static const std::set<std::string_view> kEngines = {
        "mt19937",        "mt19937_64",    "minstd_rand",
        "minstd_rand0",   "knuth_b",       "default_random_engine",
        "ranlux24",       "ranlux24_base", "ranlux48",
        "ranlux48_base",  "seed_seq"};
    for (const Token& t : toks_) {
      if (t.kind == Tok::kIdent && kEngines.count(t.text) != 0) {
        report("D2", t.line,
               "raw std RNG engine '" + std::string(t.text) +
                   "' outside src/rng/; draw from a rng::StreamFactory "
                   "named stream instead");
      }
    }
  }

  // D3: range-for over a name declared as an unordered container — locally
  // or (via extra_names_) anywhere in the scanned tree.
  void check_d3() {
    std::set<std::string> unordered_names = unordered_names_in(toks_);
    unordered_names.insert(extra_names_.begin(), extra_names_.end());
    if (unordered_names.empty()) return;

    // Pass B: range-for whose range expression names one of them.
    for (std::size_t i = 0; i + 1 < toks_.size(); ++i) {
      if (toks_[i].kind != Tok::kIdent || toks_[i].text != "for") continue;
      if (toks_[i + 1].text != "(") continue;
      int depth = 0;
      std::size_t colon = 0;
      std::size_t close = 0;
      for (std::size_t j = i + 1; j < toks_.size(); ++j) {
        if (toks_[j].kind != Tok::kPunct) continue;
        if (toks_[j].text == "(") ++depth;
        if (toks_[j].text == ")" && --depth == 0) {
          close = j;
          break;
        }
        if (toks_[j].text == ":" && depth == 1 && colon == 0) colon = j;
      }
      if (colon == 0 || close == 0) continue;  // not a range-for
      bool sorted = false;
      const Token* offender = nullptr;
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (toks_[j].kind != Tok::kIdent) continue;
        if (toks_[j].text == "sorted_view") sorted = true;
        if (unordered_names.count(std::string(toks_[j].text)) != 0) {
          offender = &toks_[j];
        }
      }
      if (offender != nullptr && !sorted) {
        report("D3", offender->line,
               "iteration over unordered container '" +
                   std::string(offender->text) +
                   "' has platform-dependent order; route through "
                   "metrics::sorted_view");
      }
    }
  }

  // D4: float keyword; raw ==/!= against floating-point literals.
  void check_d4() {
    for (const Token& t : toks_) {
      if (t.kind == Tok::kIdent && t.text == "float") {
        report("D4", t.line,
               "'float' loses precision in metric accumulation; this "
               "codebase is double-only");
      }
    }
    for (const auto helper : kFloatCompareHelpers) {
      if (path_ == helper) return;  // the approved helper implementation
    }
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.kind != Tok::kPunct || (t.text != "==" && t.text != "!=")) {
        continue;
      }
      const Token* p = prev(i);
      const Token* n = next(i);
      // Look through a unary sign: `x == -1.0`.
      if (n != nullptr && n->kind == Tok::kPunct &&
          (n->text == "-" || n->text == "+")) {
        n = i + 2 < toks_.size() ? &toks_[i + 2] : nullptr;
      }
      if ((p != nullptr && is_float_literal(*p)) ||
          (n != nullptr && is_float_literal(*n))) {
        report("D4", t.line,
               "raw '" + std::string(t.text) +
                   "' against a floating-point literal; use "
                   "metrics::exactly_equal / approx_equal (or justify with "
                   "a suppression)");
      }
    }
  }

  // R1: assert() in library code.
  void check_r1() {
    if (!starts_with(path_, "src/")) return;
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.kind == Tok::kIdent && t.text == "assert" && called(i)) {
        report("R1", t.line,
               "assert() vanishes under NDEBUG; throw std::logic_error with "
               "context (PR 2 convention)");
      }
    }
  }

  // R2: using namespace in headers.
  void check_r2() {
    if (!is_header(path_)) return;
    for (std::size_t i = 0; i + 1 < toks_.size(); ++i) {
      if (toks_[i].kind == Tok::kIdent && toks_[i].text == "using" &&
          toks_[i + 1].kind == Tok::kIdent &&
          toks_[i + 1].text == "namespace") {
        report("R2", toks_[i].line,
               "'using namespace' in a header leaks into every includer");
      }
    }
  }

  // D5: RNG stream purity. Scope: src/ minus src/rng/ (the stream factory
  // is the one place allowed to construct and seed engines).
  void check_d5() {
    if (!starts_with(path_, "src/") || starts_with(path_, "src/rng/")) return;

    // (a) engine passed by value: inside a parameter/argument list, the
    // engine type name followed directly by an identifier and then a
    // list-ish delimiter (`,` `)` `=`). A `&`/`*`/`&&` between type and
    // name makes it a reference/pointer and is fine.
    int paren_depth = 0;
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.kind == Tok::kPunct) {
        if (t.text == "(") ++paren_depth;
        if (t.text == ")") --paren_depth;
        continue;
      }
      if (t.kind != Tok::kIdent || kProjectEngines.count(t.text) == 0) {
        continue;
      }
      if (paren_depth > 0) {
        const Token* n = next(i);
        if (n != nullptr && n->kind == Tok::kIdent) {
          const Token* after =
              i + 2 < toks_.size() ? &toks_[i + 2] : nullptr;
          if (after != nullptr && after->kind == Tok::kPunct &&
              (after->text == "," || after->text == ")" ||
               after->text == "=")) {
            report("D5", t.line,
                   "engine '" + std::string(t.text) +
                       "' passed by value forks the stream (both copies "
                       "replay the same draws); pass by reference or a "
                       "rng::StreamFactory handle");
          }
        }
      }
      // (b) engine constructed from a raw seed outside src/rng/:
      // `Xoshiro256ss(...)` as a call/construction (not a declaration of a
      // reference parameter etc. — those are caught above or harmless).
      if (called(i) && !member_access(i)) {
        report("D5", t.line,
               "engine '" + std::string(t.text) +
                   "' constructed outside src/rng/; derive streams from "
                   "rng::StreamFactory so seeds stay centrally scheduled");
      }
    }

    // (b') re-seeding a live engine: member `.seed(` / `->seed(` call.
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.kind == Tok::kIdent && t.text == "seed" && called(i) &&
          member_access(i)) {
        report("D5", t.line,
               "re-seeding a live engine resets its stream mid-run; derive "
               "a fresh named stream from rng::StreamFactory instead");
      }
    }

    // (c) drawing inside iteration over an unordered container: a kDrawFns
    // call lexically inside a range-for whose range names an
    // unordered-declared variable. Flagged even through sorted_view — the
    // *emission* order is fixed by sorting, but the draw-to-key binding
    // still depends on hash order.
    std::set<std::string> unordered_names = unordered_names_in(toks_);
    unordered_names.insert(extra_names_.begin(), extra_names_.end());
    if (unordered_names.empty()) return;
    for (std::size_t i = 0; i + 1 < toks_.size(); ++i) {
      if (toks_[i].kind != Tok::kIdent || toks_[i].text != "for") continue;
      if (toks_[i + 1].text != "(") continue;
      int depth = 0;
      std::size_t colon = 0;
      std::size_t close = 0;
      for (std::size_t j = i + 1; j < toks_.size(); ++j) {
        if (toks_[j].kind != Tok::kPunct) continue;
        if (toks_[j].text == "(") ++depth;
        if (toks_[j].text == ")" && --depth == 0) {
          close = j;
          break;
        }
        if (toks_[j].text == ":" && depth == 1 && colon == 0) colon = j;
      }
      if (colon == 0 || close == 0) continue;  // not a range-for
      bool over_unordered = false;
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (toks_[j].kind == Tok::kIdent &&
            unordered_names.count(std::string(toks_[j].text)) != 0) {
          over_unordered = true;
        }
      }
      if (!over_unordered) continue;
      // Loop body: the braced block right after the close paren.
      std::size_t body_open = close + 1;
      if (body_open >= toks_.size() || toks_[body_open].text != "{") continue;
      int braces = 0;
      for (std::size_t j = body_open; j < toks_.size(); ++j) {
        if (toks_[j].kind == Tok::kPunct) {
          if (toks_[j].text == "{") ++braces;
          if (toks_[j].text == "}" && --braces == 0) break;
          continue;
        }
        if (toks_[j].kind == Tok::kIdent && kDrawFns.count(toks_[j].text) != 0 &&
            called(j)) {
          report("D5", toks_[j].line,
                 "RNG draw '" + std::string(toks_[j].text) +
                     "()' inside iteration over an unordered container binds "
                     "draws to hash order; iterate a sorted copy or draw "
                     "before the loop");
        }
      }
    }
  }

  // L1: every quoted include's first path segment must be a declared layer
  // edge. Scans the raw text — the stripped buffer blanked the include
  // paths along with every other string literal.
  void check_l1() {
    if (layers_ == nullptr || layers_->empty()) return;
    const std::string layer = layer_of(path_);
    if (layer.empty()) return;
    // Only declared layers are policed, on both ends of the edge — an
    // undeclared source directory is unlayered, same as an undeclared
    // include target.
    const auto deps_it = layers_->deps.find(layer);
    if (deps_it == layers_->deps.end()) return;
    const bool wildcard = deps_it->second.count("*") != 0;

    std::size_t line = 1;
    std::size_t pos = 0;
    const std::string_view text = raw_text_;
    while (pos < text.size()) {
      const std::size_t eol = text.find('\n', pos);
      const std::size_t end = eol == std::string_view::npos ? text.size() : eol;
      std::string_view l = text.substr(pos, end - pos);
      // `#include "target/..."` — system includes are out of scope.
      const std::size_t hash = l.find_first_not_of(" \t");
      if (hash != std::string_view::npos && l[hash] == '#' &&
          l.find("include", hash) != std::string_view::npos) {
        const std::size_t q1 = l.find('"');
        const std::size_t q2 =
            q1 == std::string_view::npos ? q1 : l.find('"', q1 + 1);
        if (q2 != std::string_view::npos) {
          const std::string_view target = l.substr(q1 + 1, q2 - q1 - 1);
          const std::size_t slash = target.find('/');
          if (slash != std::string_view::npos) {
            const std::string target_layer(target.substr(0, slash));
            check_include_edge(layer, target_layer, line, wildcard, deps_it);
          }
        }
      }
      if (eol == std::string_view::npos) break;
      pos = eol + 1;
      ++line;
    }
  }

  void check_include_edge(
      const std::string& layer, const std::string& target, std::size_t line,
      bool wildcard,
      std::map<std::string, std::set<std::string>>::const_iterator deps_it) {
    if (layers_->deps.count(target) == 0) return;  // not a declared layer
    // Restricted layers trump wildcards: `exp` is includable only by the
    // layers its [restricted] entry lists.
    const auto restricted = layers_->restricted.find(target);
    if (restricted != layers_->restricted.end() &&
        restricted->second.count(layer) == 0 && layer != target) {
      report("L1", line,
             "layer '" + layer + "' may not include restricted layer '" +
                 target + "' (tools/detlint/layers.toml [restricted])");
      return;
    }
    if (layer == target || wildcard) return;
    if (deps_it == layers_->deps.end() ||
        deps_it->second.count(target) == 0) {
      report("L1", line,
             "undeclared layer edge " + layer + " -> " + target +
                 "; declare it in tools/detlint/layers.toml or break the "
                 "dependency");
    }
  }

  /// Maps a repo-relative path to its layer name; empty = unlayered (tests,
  /// fixtures) and L1 does not apply.
  [[nodiscard]] static std::string layer_of(std::string_view path) {
    if (starts_with(path, "src/")) {
      const std::string_view rest = path.substr(4);
      const std::size_t slash = rest.find('/');
      if (slash != std::string_view::npos) {
        return std::string(rest.substr(0, slash));
      }
      return {};
    }
    if (starts_with(path, "tools/detlint/")) return "detlint";
    if (starts_with(path, "tools/")) return "cli";
    if (starts_with(path, "bench/")) return "bench";
    return {};
  }

  // P1 (per-file half): pair up the markers into regions and slice the
  // token stream. Structural problems — malformed/nested/unbalanced
  // markers — are file-local P1 findings; the cross-file comparison is
  // check_parity's job.
  void build_parity_regions() {
    const ParityMarker* open = nullptr;
    for (const ParityMarker& m : prepared_.parity_markers) {
      if (!m.error.empty()) {
        report_hard("P1", m.line, m.error);
        continue;
      }
      if (m.begin) {
        if (open != nullptr) {
          report_hard("P1", m.line,
                      "nested parity:begin('" + m.rule +
                          "') — close the '" + open->rule +
                          "' region first (regions cannot nest)");
          continue;
        }
        open = &m;
      } else {
        if (open == nullptr) {
          report_hard("P1", m.line, "parity:end without a matching begin");
          continue;
        }
        if (!m.rule.empty() && m.rule != open->rule) {
          report_hard("P1", m.line,
                      "parity:end(" + m.rule + ") closes region '" +
                          open->rule + "'");
          open = nullptr;
          continue;
        }
        ParityRegion region;
        region.rule = open->rule;
        region.file = std::string(path_);
        region.begin_line = open->line;
        region.end_line = m.line;
        region.renames = open->renames;
        for (const Token& t : toks_) {
          if (t.line > region.begin_line && t.line < region.end_line) {
            region.tokens.push_back(
                {std::string(t.text), t.line, t.kind == Tok::kIdent});
          }
        }
        parity_.push_back(std::move(region));
        open = nullptr;
      }
    }
    if (open != nullptr) {
      report_hard("P1", open->line,
                  "parity:begin('" + open->rule + "') never closed");
    }
  }

  // S1 (per-file half): every allow directive must have suppressed at least
  // one finding this run. Runs last so the ledger is complete.
  void check_s1() {
    for (const AllowDirective& d : sup_.directives) {
      bool used = false;
      if (d.file_wide) {
        for (const auto& hit : suppressed_) {
          if (hit.first == d.rule) {
            used = true;
            break;
          }
        }
      } else {
        used = suppressed_.count({d.rule, d.line}) != 0 ||
               (d.standalone && suppressed_.count({d.rule, d.line + 1}) != 0);
      }
      if (!used) {
        report_hard("S1", d.line,
                    "dead suppression: detlint:allow" +
                        std::string(d.file_wide ? "-file" : "") + "(" +
                        d.rule + ") no longer suppresses anything — delete "
                        "it");
      }
    }
  }

  std::string_view path_;
  std::string_view raw_text_;
  const Prepared& prepared_;
  const std::vector<Token>& toks_;
  const Suppressions& sup_;
  const std::set<std::string>& extra_names_;
  const LayerConfig* layers_ = nullptr;
  std::set<std::pair<std::string, std::size_t>> suppressed_;
  std::vector<Diagnostic> diags_;
  std::vector<ParityRegion> parity_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

const std::vector<RuleInfo>& rules() { return kRules; }

std::set<std::string> collect_unordered_names(std::string_view text) {
  const Prepared prepared = strip_comments_and_literals(text);
  return unordered_names_in(tokenize(prepared.code));
}

SourceReport analyze_source_v2(std::string_view path, std::string_view text,
                               const std::set<std::string>& extra_unordered_names,
                               const LayerConfig* layers) {
  const Prepared prepared = strip_comments_and_literals(text);
  const std::vector<Token> toks = tokenize(prepared.code);
  return Analysis(path, text, prepared, toks, extra_unordered_names, layers)
      .run();
}

std::vector<Diagnostic> analyze_source(
    std::string_view path, std::string_view text,
    const std::set<std::string>& extra_unordered_names) {
  return analyze_source_v2(path, text, extra_unordered_names).diags;
}

// ---------------------------------------------------------------------------
// P1: cross-file region comparison
// ---------------------------------------------------------------------------

namespace {

/// Applies the merged rename map symmetrically: a token equal to either
/// side of a declared pair canonicalizes to the pair's left side.
std::string canonical(const ParityToken& t,
                      const std::map<std::string, std::string>& renames) {
  if (!t.ident) return t.text;
  const auto direct = renames.find(t.text);
  if (direct != renames.end()) return direct->first;
  for (const auto& [a, b] : renames) {
    if (b == t.text) return a;
  }
  return t.text;
}

}  // namespace

std::vector<Diagnostic> check_parity(const std::vector<ParityRegion>& regions) {
  std::vector<Diagnostic> diags;
  std::map<std::string, std::vector<const ParityRegion*>> by_rule;
  for (const ParityRegion& r : regions) by_rule[r.rule].push_back(&r);

  for (const auto& [rule, group] : by_rule) {
    if (group.size() != 2) {
      std::string files;
      for (const auto* r : group) {
        files += (files.empty() ? "" : ", ") + r->file;
      }
      diags.push_back(
          {group.front()->file, group.front()->begin_line, "P1",
           "parity rule '" + rule + "' has " + std::to_string(group.size()) +
               " region(s) (" + files +
               "); exactly two engines must declare it",
           false});
      continue;
    }
    // Lexically-second file carries the drift diagnostic, so the finding
    // lands on the engine that usually lags (serve/ sorts after core/).
    const ParityRegion* first = group[0];
    const ParityRegion* second = group[1];
    if (std::tie(second->file, second->begin_line) <
        std::tie(first->file, first->begin_line)) {
      std::swap(first, second);
    }
    std::map<std::string, std::string> renames = first->renames;
    renames.insert(second->renames.begin(), second->renames.end());

    const std::size_t n = std::min(first->tokens.size(),
                                   second->tokens.size());
    std::size_t drift = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (canonical(first->tokens[i], renames) !=
          canonical(second->tokens[i], renames)) {
        drift = i;
        break;
      }
    }
    if (drift == n && first->tokens.size() == second->tokens.size()) {
      continue;  // token-identical modulo renames
    }
    std::size_t line = second->end_line;
    std::string got = "<end of region>";
    std::string want = "<end of region>";
    if (drift < second->tokens.size()) {
      line = second->tokens[drift].line;
      got = second->tokens[drift].text;
    }
    if (drift < first->tokens.size()) want = first->tokens[drift].text;
    diags.push_back(
        {second->file, line, "P1",
         "parity region '" + rule + "' drifted from " + first->file + ":" +
             std::to_string(first->begin_line) + ": token " +
             std::to_string(drift) + " is '" + got + "' here but '" + want +
             "' there (renames do not cover it)",
         false});
  }
  return diags;
}

// ---------------------------------------------------------------------------
// L1: layer config
// ---------------------------------------------------------------------------

namespace {

/// `name = ["a", "b"]` → (name, {a, b}). Returns false on malformed lines.
bool parse_toml_list(const std::string& line, std::string& name,
                     std::set<std::string>& values) {
  const std::size_t eq = line.find('=');
  if (eq == std::string::npos) return false;
  name.clear();
  for (const char c : line.substr(0, eq)) {
    if (!std::isspace(static_cast<unsigned char>(c))) name += c;
  }
  if (name.empty()) return false;
  const std::size_t open = line.find('[', eq);
  const std::size_t close = line.find(']', eq);
  if (open == std::string::npos || close == std::string::npos || close < open) {
    return false;
  }
  values.clear();
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = open + 1; i < close; ++i) {
    const char c = line[i];
    if (c == '"') {
      if (in_quotes && !cur.empty()) values.insert(cur);
      if (in_quotes) cur.clear();
      in_quotes = !in_quotes;
    } else if (in_quotes) {
      cur += c;
    } else if (c != ',' && !std::isspace(static_cast<unsigned char>(c))) {
      return false;  // bare (unquoted) junk between entries
    }
  }
  return !in_quotes;
}

}  // namespace

LayerConfig LayerConfig::parse(std::istream& in) {
  LayerConfig config;
  std::string line;
  std::string section;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    const std::size_t last = line.find_last_not_of(" \t\r");
    const std::string body = line.substr(first, last - first + 1);
    if (body.front() == '[') {
      if (body.back() != ']') {
        config.errors.push_back("line " + std::to_string(line_no) +
                                ": malformed section header '" + body + "'");
        continue;
      }
      section = body.substr(1, body.size() - 2);
      if (section != "layers" && section != "restricted") {
        config.errors.push_back("line " + std::to_string(line_no) +
                                ": unknown section [" + section + "]");
      }
      continue;
    }
    std::string name;
    std::set<std::string> values;
    if (!parse_toml_list(body, name, values)) {
      config.errors.push_back("line " + std::to_string(line_no) +
                              ": expected `name = [\"dep\", ...]`, got '" +
                              body + "'");
      continue;
    }
    if (section == "layers") {
      config.deps[name] = std::move(values);
    } else if (section == "restricted") {
      config.restricted[name] = std::move(values);
    } else {
      config.errors.push_back("line " + std::to_string(line_no) +
                              ": entry '" + name +
                              "' outside [layers]/[restricted]");
    }
  }

  // Every named dependency (and restricted subject) must itself be a
  // declared layer — a typo would silently disable checking for that edge.
  for (const auto& [layer, deps] : config.deps) {
    for (const auto& dep : deps) {
      if (dep != "*" && config.deps.count(dep) == 0) {
        config.errors.push_back("layer '" + layer +
                                "' depends on undeclared layer '" + dep + "'");
      }
    }
  }
  for (const auto& [layer, includers] : config.restricted) {
    if (config.deps.count(layer) == 0) {
      config.errors.push_back("[restricted] names undeclared layer '" +
                              layer + "'");
    }
    for (const auto& inc : includers) {
      if (config.deps.count(inc) == 0) {
        config.errors.push_back("[restricted] " + layer +
                                " lists undeclared layer '" + inc + "'");
      }
    }
  }

  // Cycle check over the declared edges (wildcard layers excluded — cli and
  // bench may include anything and nothing may include them back anyway).
  // Iterative DFS with an explicit color map.
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::string> order;
  for (const auto& [layer, deps] : config.deps) order.push_back(layer);
  for (const auto& start : order) {
    if (color[start] != 0) continue;
    std::vector<std::pair<std::string, bool>> stack = {{start, false}};
    while (!stack.empty()) {
      auto [node, done] = stack.back();
      stack.pop_back();
      if (done) {
        color[node] = 2;
        continue;
      }
      if (color[node] == 2) continue;
      if (color[node] == 1) continue;
      color[node] = 1;
      stack.push_back({node, true});
      const auto it = config.deps.find(node);
      if (it == config.deps.end() || it->second.count("*") != 0) continue;
      for (const auto& dep : it->second) {
        if (config.deps.count(dep) == 0) continue;
        if (color[dep] == 1) {
          config.errors.push_back("layer cycle: '" + node + "' -> '" + dep +
                                  "' closes a loop");
        } else if (color[dep] == 0) {
          stack.push_back({dep, false});
        }
      }
    }
  }
  return config;
}

LayerConfig LayerConfig::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return LayerConfig{};
  return parse(in);
}

std::vector<Diagnostic> check_layer_config(const LayerConfig& layers,
                                           std::string_view config_path) {
  std::vector<Diagnostic> diags;
  for (const auto& err : layers.errors) {
    diags.push_back({std::string(config_path), 0, "L1", err, false});
  }
  return diags;
}

namespace {

std::string read_or_empty(const std::filesystem::path& file, bool& ok) {
  std::ifstream in(file, std::ios::binary);
  ok = static_cast<bool>(in);
  if (!ok) return {};
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

}  // namespace

std::vector<Diagnostic> analyze_file(
    const std::filesystem::path& root, const std::filesystem::path& file,
    const std::set<std::string>& extra_unordered_names) {
  bool ok = false;
  const std::string text = read_or_empty(file, ok);
  if (!ok) {
    return {{file.generic_string(), 0, "IO", "cannot read file", false}};
  }
  const std::filesystem::path rel =
      file.lexically_proximate(root).lexically_normal();
  return analyze_source(rel.generic_string(), text, extra_unordered_names);
}

std::vector<Diagnostic> analyze_tree(const std::filesystem::path& root) {
  static const std::vector<std::string> kSubdirs = {"src", "tools", "bench"};
  static const std::set<std::string> kExtensions = {".hpp", ".h", ".hh",
                                                    ".cpp", ".cc"};
  std::vector<std::filesystem::path> files;
  for (const auto& sub : kSubdirs) {
    const std::filesystem::path dir = root / sub;
    if (!std::filesystem::is_directory(dir)) continue;
    for (auto it = std::filesystem::recursive_directory_iterator(dir);
         it != std::filesystem::recursive_directory_iterator(); ++it) {
      const std::filesystem::directory_entry& entry = *it;
      const std::string name = entry.path().filename().string();
      if (entry.is_directory() &&
          (name == "fixtures" || name == "build" ||
           (!name.empty() && name.front() == '.'))) {
        it.disable_recursion_pending();
        continue;
      }
      if (entry.is_regular_file() &&
          kExtensions.count(entry.path().extension().string()) != 0) {
        files.push_back(entry.path());
      }
    }
  }
  // Directory iteration order is unspecified — sort so the linter's own
  // output is deterministic.
  std::sort(files.begin(), files.end());

  // Phase 1: union the unordered-container declarations across every file,
  // so a .cpp iterating a member its header declared unordered still trips
  // D3 (lexical analysis has no cross-TU view otherwise).
  std::vector<std::string> texts;
  texts.reserve(files.size());
  std::set<std::string> tree_unordered_names;
  for (const auto& file : files) {
    bool ok = false;
    texts.push_back(read_or_empty(file, ok));
    const auto names = collect_unordered_names(texts.back());
    tree_unordered_names.insert(names.begin(), names.end());
  }

  // Phase 2: analyze with the global declaration set, pooling parity
  // regions for the cross-file P1 comparison.
  const std::string layers_path =
      (root / "tools" / "detlint" / "layers.toml").string();
  const LayerConfig layers = LayerConfig::load_file(layers_path);
  const LayerConfig* layers_ptr = layers.empty() ? nullptr : &layers;

  std::vector<Diagnostic> diags;
  std::vector<ParityRegion> regions;
  for (std::size_t i = 0; i < files.size(); ++i) {
    const std::filesystem::path rel =
        files[i].lexically_proximate(root).lexically_normal();
    auto file_report = analyze_source_v2(rel.generic_string(), texts[i],
                                         tree_unordered_names, layers_ptr);
    diags.insert(diags.end(),
                 std::make_move_iterator(file_report.diags.begin()),
                 std::make_move_iterator(file_report.diags.end()));
    regions.insert(regions.end(),
                   std::make_move_iterator(file_report.parity.begin()),
                   std::make_move_iterator(file_report.parity.end()));
  }

  auto parity_diags = check_parity(regions);
  diags.insert(diags.end(), std::make_move_iterator(parity_diags.begin()),
               std::make_move_iterator(parity_diags.end()));
  if (layers_ptr != nullptr) {
    auto config_diags =
        check_layer_config(layers, "tools/detlint/layers.toml");
    diags.insert(diags.end(), std::make_move_iterator(config_diags.begin()),
                 std::make_move_iterator(config_diags.end()));
  }

  std::sort(diags.begin(), diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return diags;
}

Baseline Baseline::parse(std::istream& in) {
  Baseline b;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t end = line.find('#');
    std::string entry = line.substr(0, end);
    entry.erase(std::remove_if(entry.begin(), entry.end(),
                               [](unsigned char c) { return std::isspace(c); }),
                entry.end());
    if (!entry.empty()) b.entries_.insert(entry);
  }
  return b;
}

Baseline Baseline::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Baseline{};
  return parse(in);
}

void apply_baseline(std::vector<Diagnostic>& diags, const Baseline& baseline) {
  for (auto& d : diags) d.baselined = baseline.covers(d);
}

std::vector<Diagnostic> baseline_ratchet(const std::vector<Diagnostic>& diags,
                                         const Baseline& baseline,
                                         std::string baseline_path) {
  std::set<std::string> matched;
  for (const auto& d : diags) {
    if (d.baselined) matched.insert(d.file + ":" + d.rule);
  }
  std::vector<Diagnostic> stale;
  for (const auto& entry : baseline.entries()) {
    if (matched.count(entry) != 0) continue;
    stale.push_back({baseline_path, 0, "S1",
                     "stale baseline entry '" + entry +
                         "' matches no finding — the baseline only shrinks; "
                         "delete the line",
                     false});
  }
  return stale;
}

std::size_t fresh_count(const std::vector<Diagnostic>& diags) {
  return static_cast<std::size_t>(
      std::count_if(diags.begin(), diags.end(),
                    [](const Diagnostic& d) { return !d.baselined; }));
}

void print_rule_table(std::ostream& out) {
  out << "detlint rules (suppress: // detlint:allow(ID): reason | "
         "// detlint:allow-file(ID): reason | baseline entry 'path:ID')\n";
  for (const auto& rule : rules()) {
    out << "  " << rule.id << "  " << std::left << std::setw(32)
        << rule.name << " " << rule.summary << "\n";
  }
}

}  // namespace detlint
