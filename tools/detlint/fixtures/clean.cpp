// Fixture: representative clean simulation code — detlint must report
// nothing under any pretend path (test_detlint analyzes it as
// src/sim/clean.cpp and as a header).
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace fixture {

/// Draws flow through a named-stream seed derivation, never a std engine.
struct StreamHandle {
  std::uint64_t state;
  std::uint64_t next() { return state += 0x9E3779B97F4A7C15ULL; }
};

inline StreamHandle named_stream(std::uint64_t master_seed,
                                 const std::string& name) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : name) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001B3ULL;
  }
  return StreamHandle{master_seed ^ h};
}

/// Ordered containers iterate deterministically — no D3.
inline double total(const std::map<std::string, double>& by_class) {
  double sum = 0.0;
  for (const auto& [name, value] : by_class) sum += value;
  return sum;
}

/// Library code throws with context instead of asserting — no R1.
inline double checked_at(const std::vector<double>& xs, std::size_t i) {
  if (i >= xs.size()) {
    throw std::logic_error("checked_at: index " + std::to_string(i) +
                           " out of range " + std::to_string(xs.size()));
  }
  return xs[i];
}

/// Tolerance comparison, not raw ==. Mentions of rules inside comments and
/// strings (rand(), time(), float, "assert(x)") must not fire either.
inline bool close(double a, double b) {
  const double scale = 1.0;
  const char* note = "guarded by assert(x) upstream";
  return (a > b ? a - b : b - a) <= 1e-12 * scale && note != nullptr;
}

}  // namespace fixture
