// Fixture: structural parity-marker errors are file-local P1 findings —
// a nested begin, an end without a begin, a trailing (non-standalone)
// marker, a begin with no rule name, and a begin never closed. Analyzed
// under src/core/parity_nested.cpp.
#include <cstddef>

namespace fixture {

inline std::size_t structure_errors(std::size_t n) {
  // parity:begin(outer-region)
  n += 1;
  // parity:begin(inner-region)  DETLINT-EXPECT: P1
  n += 2;
  // parity:end
  n += 3;
  // parity:end  DETLINT-EXPECT: P1
  n += 4;  // parity:begin(trailing-region)  DETLINT-EXPECT: P1
  // parity:begin()  DETLINT-EXPECT: P1
  // parity:begin(never-closed)  DETLINT-EXPECT: P1
  return n;
}

}  // namespace fixture
