// Fixture: a trimmed-down serve::Clock wall backend. Under its real path
// (src/serve/clock.cpp — the sanctioned D1 time boundary) the steady_clock
// reads below must produce NO findings; test_detlint also re-analyzes this
// same text under a neighboring path to prove the exemption does not leak.
#include <chrono>

namespace fixture {

class WallClock {
 public:
  WallClock() : start_(std::chrono::steady_clock::now()) {}

  [[nodiscard]] double now() const {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double>(elapsed).count() * scale_;
  }

 private:
  std::chrono::steady_clock::time_point start_;
  double scale_ = 1.0;
};

}  // namespace fixture
