// Fixture: rule S1 (no-dead-suppressions) must fire on every allow
// directive that suppresses nothing — a trailing allow on a clean line, a
// standalone allow covering a clean line, a file-wide allow for a rule the
// file never trips, and the dead half of a multi-rule list whose other
// half is genuinely used. Analyzed under src/sim/bad_s1.cpp.
#include <chrono>
#include <cstddef>

// detlint:allow-file(R1): no assert anywhere below  DETLINT-EXPECT: S1

namespace fixture {

inline std::size_t clean_count(std::size_t n) {
  return n + 1;  // detlint:allow(D4): nothing to suppress  DETLINT-EXPECT: S1
}

inline std::size_t also_clean(std::size_t n) {
  // detlint:allow(D3): the loop below is over a vector  DETLINT-EXPECT: S1
  return n * 2;
}

/// The D1 half suppresses the steady_clock read; the D2 half is dead.
inline double wall_ms() {
  const auto t0 = std::chrono::steady_clock::now();  // detlint:allow(D1, D2): telemetry  DETLINT-EXPECT: S1
  return std::chrono::duration<double, std::milli>(t0.time_since_epoch())
      .count();
}

}  // namespace fixture
