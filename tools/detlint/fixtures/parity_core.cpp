// Fixture: the DES half of a cross-engine parity pair, modeled on the
// ladder-occupancy and deliver-at-end rules the real engines share.
// test_detlint analyzes this together with parity_live.cpp and expects
// check_parity to pass, then mutates the live half to re-introduce the
// PR-7 bug shape (one engine's occupancy signal drifting) and expects P1
// to catch it. Analyzed under src/core/parity_core.cpp.
#include <cstddef>

namespace fixture::core {

double HybridFixture::evaluate_ladder() {
  // parity:begin(fixture-ladder-occupancy, HybridFixture=LiveFixture)
  const double occupancy = rules::ladder_occupancy(
      pull_queue_.total_requests(), push_waiters_, config_.cutoff,
      effective_cutoff(), config_.fault.queue_capacity,
      overload_config().capacity_ref);
  const double worst_ewma = rules::worst_blocking_ewma(blocking_ewma_);
  // parity:end
  return occupancy + worst_ewma;
}

void HybridFixture::deliver(const Request& request, bool via_push) {
  const double now = sim_.now();
  // parity:begin(fixture-deliver-at-end, request=r)
  rules::record_delivery(*collector_, request, now, via_push);
  // parity:end
}

}  // namespace fixture::core
