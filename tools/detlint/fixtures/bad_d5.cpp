// Fixture: rule D5 (rng-stream-purity) must fire on all three impurity
// modes — an engine passed by value (the copy replays the donor's draws),
// an engine re-seeded or constructed from a raw seed outside src/rng/, and
// a draw made inside iteration over an unordered container (the
// draw-to-key binding follows hash order even when emission is sorted).
// Analyzed under the pretend path src/sim/bad_d5.cpp; test_detlint also
// re-analyzes it as src/rng/bad_d5.cpp and expects the construction/reseed
// modes to stay legal there.
#include <cstdint>
#include <unordered_map>

namespace fixture {

// Mode (a): by-value engine parameter forks the stream.
inline double draw_pair(rng::Xoshiro256ss engine) {  // DETLINT-EXPECT: D5
  return rng::uniform(engine) + rng::uniform(engine);
}

// By-reference is the clean spelling — no finding.
inline double draw_one(rng::Xoshiro256ss& engine) {
  return rng::uniform(engine);
}

// Mode (b): construction from a raw seed outside src/rng/.
inline double ad_hoc_stream() {
  auto engine = rng::Xoshiro256ss(12345);  // DETLINT-EXPECT: D5
  return rng::uniform(engine);
}

// Mode (b'): re-seeding a live engine resets its stream mid-run.
inline void restart(rng::Xoshiro256ss& engine) {
  engine.seed(99);  // DETLINT-EXPECT: D5
}

// Mode (c): drawing inside iteration over an unordered container. The
// sorted_view routing satisfies D3 (emission order is fixed) but D5 still
// fires — which key consumes which draw depends on hash order.
inline double weigh(const std::unordered_map<int, double>& weights,
                    rng::Xoshiro256ss& engine) {
  double total = 0.0;
  for (const auto& [key, w] : metrics::sorted_view(weights)) {
    total += w * rng::exponential(engine, 1.0);  // DETLINT-EXPECT: D5
  }
  return total;
}

// Drawing before the loop is the clean spelling — no finding.
inline double weigh_once(const std::unordered_map<int, double>& weights,
                         rng::Xoshiro256ss& engine) {
  const double jitter = rng::exponential(engine, 1.0);
  double total = 0.0;
  for (const auto& [key, w] : metrics::sorted_view(weights)) total += w;
  return total * jitter;
}

}  // namespace fixture
