// Fixture: rule D4 (double-metrics) must fire on the float accumulator and
// on the raw floating-point-literal comparisons. Analyzed under the pretend
// path src/metrics/bad_d4.cpp.
#include <vector>

namespace fixture {

inline double mean(const std::vector<double>& xs) {
  float acc = 0;                            // DETLINT-EXPECT: D4
  for (const double x : xs) acc += static_cast<int>(x);
  return xs.empty() ? 0.0 : acc / static_cast<double>(xs.size());
}

inline bool converged(double mass) {
  return mass == 0.0;                       // DETLINT-EXPECT: D4
}

inline bool drifted(double theta) {
  return 0.60 != theta;                     // DETLINT-EXPECT: D4
}

// Integer comparisons must NOT fire.
inline bool ok_integer_compare(int n) { return n == 0; }

}  // namespace fixture
