// Fixture: rule R2 (no-using-namespace-in-headers) must fire on the
// directive below. Analyzed under the pretend path src/core/bad_r2.hpp;
// test_detlint also re-analyzes the same text as a .cpp and expects
// silence (R2 scopes to headers only).
#pragma once

#include <string>

using namespace std;                        // DETLINT-EXPECT: R2

namespace fixture {

// A using-declaration (not a directive) must NOT fire.
using std::string;

inline string greet() { return "hello"; }

}  // namespace fixture
