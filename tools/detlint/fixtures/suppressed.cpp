// Fixture: every violation below carries a detlint suppression, so the
// file must analyze clean; test_detlint also strips the suppressions and
// expects the findings to reappear. Analyzed under src/sim/suppressed.cpp.
#include <chrono>
#include <unordered_map>

namespace fixture {

/// Trailing suppression on the offending line.
inline double wall_ms() {
  const auto t0 = std::chrono::steady_clock::now();  // detlint:allow(D1): wall-clock telemetry only
  return std::chrono::duration<double, std::milli>(t0.time_since_epoch())
      .count();
}

/// Standalone suppression on the line above.
inline bool is_sentinel(double x) {
  // detlint:allow(D4): exact sentinel comparison, bit pattern intended
  return x == -1.0;
}

/// Multi-rule suppression list.
inline std::size_t count_all(
    const std::unordered_map<int, int>& m) {
  std::size_t n = 0;
  for (const auto& [k, v] : m) n += 1;  // detlint:allow(D3): order-free fold
  return n;
}

}  // namespace fixture

// File-wide suppression example lives in test_detlint (allow-file),
// exercised on a synthetic snippet.
