// Fixture: rule D1 (no-wall-clock) must fire on every wall-clock /
// environment read below, and nowhere else. Analyzed by test_detlint under
// the pretend path src/sim/bad_d1.cpp.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

inline unsigned long seed_from_entropy() {
  std::random_device entropy;               // DETLINT-EXPECT: D1
  return entropy();
}

inline long seed_from_wall_clock() {
  return time(nullptr);                     // DETLINT-EXPECT: D1
}

inline double now_ms() {
  using clock_type = std::chrono::system_clock;  // DETLINT-EXPECT: D1
  const auto t = clock_type::now().time_since_epoch();
  return std::chrono::duration<double, std::milli>(t).count();
}

inline int legacy_draw() {
  return rand();                            // DETLINT-EXPECT: D1
}

inline const char* config_override() {
  return std::getenv("PUSHPULL_SEED");      // DETLINT-EXPECT: D1
}

// Member accessors named like libc functions must NOT fire: the rule only
// matches free-function calls.
struct Sim {
  double time_ = 0.0;
  [[nodiscard]] double time() const { return time_; }
};
inline double ok_member_call(const Sim& sim) { return sim.time(); }

}  // namespace fixture
