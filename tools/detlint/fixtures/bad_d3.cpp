// Fixture: rule D3 (ordered-emission) must fire on the raw range-for over
// an unordered container, and stay silent on the sorted_view-routed loop.
// Analyzed under the pretend path src/exp/bad_d3.cpp.
#include <cstddef>
#include <iostream>
#include <string>
#include <unordered_map>
#include <vector>

namespace fixture {

// Stand-in for metrics::sorted_view so the fixture is self-contained.
inline std::vector<std::pair<std::string, std::size_t>> sorted_view(
    const std::unordered_map<std::string, std::size_t>& counters);

inline void emit_report(
    const std::unordered_map<std::string, std::size_t>& counters) {
  for (const auto& [key, count] : counters) {  // DETLINT-EXPECT: D3
    std::cout << key << "=" << count << "\n";
  }
}

inline void emit_report_ordered(
    const std::unordered_map<std::string, std::size_t>& counters) {
  for (const auto& [key, count] : sorted_view(counters)) {  // ok: routed
    std::cout << key << "=" << count << "\n";
  }
}

}  // namespace fixture
