// Fixture: wall-clock reads leaking out of the serve::Clock boundary. The
// D1 exemption covers exactly src/serve/clock.cpp; this file is analyzed
// under the pretend path src/serve/event_loop.cpp, where every machine-time
// read below must still fire.
#include <chrono>
#include <ctime>

namespace fixture {

inline double stamp_arrival() {
  const auto t = std::chrono::steady_clock::now();  // DETLINT-EXPECT: D1
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

inline long fallback_epoch() {
  return time(nullptr);                             // DETLINT-EXPECT: D1
}

inline double epoch_ms() {
  using wall = std::chrono::system_clock;           // DETLINT-EXPECT: D1
  const auto t = wall::now().time_since_epoch();
  return std::chrono::duration<double, std::milli>(t).count();
}

// Reading time through the injected clock interface is the approved path
// and must NOT fire: `clock.now()` is a member call, not a libc read.
struct Clock {
  double now_ = 0.0;
  [[nodiscard]] double now() const { return now_; }
};
inline double ok_injected(const Clock& clock) { return clock.now(); }

}  // namespace fixture
