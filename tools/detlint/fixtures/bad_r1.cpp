// Fixture: rule R1 (throw-not-assert) must fire on assert() in library
// code. Analyzed under the pretend path src/core/bad_r1.cpp; test_detlint
// also re-analyzes it as bench/bad_r1.cpp and expects silence (R1 scopes
// to src/ only).
#include <cassert>
#include <cstddef>
#include <vector>

namespace fixture {

inline double at(const std::vector<double>& xs, std::size_t i) {
  assert(i < xs.size());                    // DETLINT-EXPECT: R1
  return xs[i];
}

// static_assert is a different token and must NOT fire.
static_assert(sizeof(double) == 8, "IEEE-754 doubles assumed");

}  // namespace fixture
