// Fixture: rule D2 (named-rng-streams) must fire on raw std engine use
// outside src/rng/. Analyzed under the pretend path src/sim/bad_d2.cpp;
// test_detlint also re-analyzes it as src/rng/bad_d2.cpp and expects
// silence, proving the path scoping.
#include <cstdint>
#include <random>

namespace fixture {

inline std::uint64_t ad_hoc_engine(std::uint64_t seed) {
  std::mt19937_64 engine(seed);             // DETLINT-EXPECT: D2
  return engine();
}

inline std::uint32_t legacy_engine(std::uint32_t seed) {
  std::minstd_rand engine(seed);            // DETLINT-EXPECT: D2
  return engine();
}

}  // namespace fixture
