// Fixture: rule L1 (layer-dag) must fire on an include edge the layer DAG
// does not declare, and on an include of a [restricted] layer from a layer
// outside its allow-list. Analyzed under the pretend path
// src/core/bad_l1.cpp against the miniature layer config test_detlint
// builds in-process (core = ["des"]; serve = ["core"]; exp restricted to
// cli). The fixture's own expectations only hold under that config —
// expect_matches_markers passes it explicitly.
#include <cstddef>

#include "des/simulator.hpp"     // declared edge core -> des: clean
#include "core/other.hpp"        // same-layer include: always clean
#include "serve/live_server.hpp" // DETLINT-EXPECT: L1
#include "exp/cli.hpp"           // DETLINT-EXPECT: L1
#include "vendor/header.hpp"     // undeclared first segment: out of scope

namespace fixture {

inline std::size_t noop() { return 0; }

}  // namespace fixture
