// Fixture: the live-serving half of the parity pair in parity_core.cpp.
// Identifier drift the rename maps declare (HybridFixture=LiveFixture,
// request=r) is legal; any other token difference inside a region is a P1
// finding. Analyzed under src/serve/parity_live.cpp.
#include <cstddef>

namespace fixture::serve {

double LiveFixture::evaluate_ladder() {
  // parity:begin(fixture-ladder-occupancy, HybridFixture=LiveFixture)
  const double occupancy = rules::ladder_occupancy(
      pull_queue_.total_requests(), push_waiters_, config_.cutoff,
      effective_cutoff(), config_.fault.queue_capacity,
      overload_config().capacity_ref);
  const double worst_ewma = rules::worst_blocking_ewma(blocking_ewma_);
  // parity:end
  return occupancy + worst_ewma;
}

void LiveFixture::deliver(const Request& r, bool via_push) {
  const double now = clock_->now();
  // parity:begin(fixture-deliver-at-end, request=r)
  rules::record_delivery(*collector_, r, now, via_push);
  // parity:end
}

}  // namespace fixture::serve
