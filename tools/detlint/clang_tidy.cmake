# Runs clang-tidy (curated checks from the repo-root .clang-tidy, warnings
# as errors) over every library/tool source, using the compilation database
# in BUILD_DIR. Invoked by the `lint` target:
#
#   cmake -DSOURCE_DIR=... -DBUILD_DIR=... -P tools/detlint/clang_tidy.cmake
#
# Degrades to a notice when clang-tidy is not installed so `lint` stays
# usable in minimal containers — CI installs it and gets the full pass.
find_program(CLANG_TIDY_EXE NAMES clang-tidy clang-tidy-19 clang-tidy-18
             clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14)
if(NOT CLANG_TIDY_EXE)
  message(STATUS "clang-tidy not found — skipping the clang-tidy pass "
                 "(detlint already ran; install clang-tidy for the full "
                 "lint gate)")
  return()
endif()
if(NOT EXISTS "${BUILD_DIR}/compile_commands.json")
  message(FATAL_ERROR "no compile_commands.json in ${BUILD_DIR} — configure "
                      "with CMAKE_EXPORT_COMPILE_COMMANDS=ON (the default)")
endif()

file(GLOB_RECURSE TIDY_SOURCES
  "${SOURCE_DIR}/src/*.cpp"
  "${SOURCE_DIR}/tools/*.cpp"
  "${SOURCE_DIR}/bench/*.cpp")
list(FILTER TIDY_SOURCES EXCLUDE REGEX "/fixtures/")

list(LENGTH TIDY_SOURCES TIDY_COUNT)
message(STATUS "clang-tidy (${CLANG_TIDY_EXE}) over ${TIDY_COUNT} files")
execute_process(
  COMMAND "${CLANG_TIDY_EXE}" -p "${BUILD_DIR}" --quiet
          --warnings-as-errors=* ${TIDY_SOURCES}
  RESULT_VARIABLE TIDY_RESULT)
if(NOT TIDY_RESULT EQUAL 0)
  message(FATAL_ERROR "clang-tidy reported findings (exit ${TIDY_RESULT})")
endif()
