#pragma once

#include <cstddef>
#include <filesystem>
#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

/// detlint — the repo's determinism/invariant linter.
///
/// A token/lexer-based analyzer (no libclang) that enforces the project's
/// determinism contract on `src/`, `tools/` and `bench/`:
///
///   D1  no wall-clock / environment nondeterminism in simulation code
///       (std::random_device, time(), system_clock/steady_clock, rand(),
///       getenv, ...). One sanctioned boundary: src/serve/clock.cpp, the
///       wall backend behind the serve::Clock interface — real time is that
///       file's feature, and everything else (including the rest of
///       src/serve/) still reads time through the injected Clock
///   D2  no raw standard-library RNG engine construction outside src/rng/
///       — all randomness flows through rng::StreamFactory named streams
///   D3  no iteration over unordered_map/unordered_set (platform-dependent
///       order) unless routed through metrics::sorted_view
///   D4  no `float` (metrics accumulate in double) and no raw ==/!= against
///       floating-point literals outside approved helpers
///   D5  RNG stream purity in src/: engines are never passed by value,
///       never re-seeded or constructed from raw seeds outside src/rng/,
///       and never drawn from inside iteration over an unordered container
///   L1  include-graph layering: every `#include "layer/..."` edge must be
///       declared in the layer DAG (tools/detlint/layers.toml)
///   P1  cross-engine parity: `// parity:begin(<rule>[, a=b ...])` ...
///       `// parity:end` regions are token-compared pairwise across the two
///       scheduling engines, modulo the declared identifier-renaming map
///   R1  no assert() in library code (src/) — throw std::logic_error with
///       context instead, so Release builds keep the check
///   R2  no `using namespace` in headers
///   S1  no dead suppressions: an inline `detlint:allow` that no longer
///       suppresses anything, and a baseline entry no finding matches, are
///       themselves findings (ratchet: a baseline may only shrink)
///
/// Suppression: `// detlint:allow(RULE[,RULE...]): reason` on the offending
/// line (trailing) or on the line above (standalone comment);
/// `// detlint:allow-file(RULE): reason` anywhere suppresses the rule for
/// the whole file. A checked-in baseline file (`path:rule` lines)
/// grandfathers findings without touching the source. P1 and S1 findings
/// cannot be allow()ed inline (a suppression that suppresses the
/// dead-suppression checker would be a paradox); park them in the baseline
/// if they must be deferred.
namespace detlint {

struct RuleInfo {
  std::string_view id;       ///< "D1" ... "R2"
  std::string_view name;     ///< short kebab-case name
  std::string_view summary;  ///< one-line description for the rule table
};

/// The rule table, in fixed D1..D5, L1, P1, R1, R2, S1 order.
[[nodiscard]] const std::vector<RuleInfo>& rules();

struct Diagnostic {
  std::string file;  ///< repo-relative path, '/'-separated
  std::size_t line = 0;
  std::string rule;
  std::string message;
  bool baselined = false;  ///< matched a baseline entry — reported, not fatal
};

/// Grandfathered findings: one `path:rule` per line, `#` comments and blank
/// lines ignored. Paths are repo-relative with '/' separators.
class Baseline {
 public:
  [[nodiscard]] static Baseline parse(std::istream& in);
  /// Missing file loads as an empty baseline.
  [[nodiscard]] static Baseline load_file(const std::string& path);

  [[nodiscard]] bool covers(const Diagnostic& d) const {
    return entries_.count(d.file + ":" + d.rule) != 0;
  }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] const std::set<std::string>& entries() const noexcept {
    return entries_;
  }

 private:
  std::set<std::string> entries_;
};

/// One token of a parity region (text copied out of the source so regions
/// outlive the file buffer).
struct ParityToken {
  std::string text;
  std::size_t line = 0;
  bool ident = false;  ///< identifier tokens are the only renamable ones
};

/// One `// parity:begin(rule[, a=b ...])` ... `// parity:end` region. The
/// markers must be standalone comments; the region's tokens are everything
/// strictly between the marker lines (comments and literals stripped).
struct ParityRegion {
  std::string rule;
  std::string file;
  std::size_t begin_line = 0;
  std::size_t end_line = 0;
  /// Identifier-renaming map declared on the begin marker (single
  /// identifiers only, applied symmetrically when the pair is compared).
  std::map<std::string, std::string> renames;
  std::vector<ParityToken> tokens;
};

/// The declared layer DAG for rule L1, parsed from a minimal TOML subset:
///
///   [layers]
///   rng = []
///   core = ["catalog", "des", ...]   # allowed include targets
///   cli = ["*"]                      # "*" = may include anything
///
///   [restricted]
///   exp = ["cli", "bench"]           # only these layers may include exp
///
/// Malformed lines, undeclared dependency names and cycles among the
/// declared layers are collected into `errors` (never thrown), and the
/// drivers surface them as L1 findings against the config file itself.
struct LayerConfig {
  std::map<std::string, std::set<std::string>> deps;
  std::map<std::string, std::set<std::string>> restricted;
  std::vector<std::string> errors;

  [[nodiscard]] bool empty() const noexcept {
    return deps.empty() && errors.empty();
  }

  [[nodiscard]] static LayerConfig parse(std::istream& in);
  /// Missing file loads as an empty config (L1 is skipped entirely).
  [[nodiscard]] static LayerConfig load_file(const std::string& path);
};

/// Per-file analysis plus the parity regions found in it; the caller pools
/// regions across files and hands them to check_parity (P1 is the one
/// cross-file rule, so a single file can only yield its structural
/// diagnostics: nested/unbalanced/duplicated markers).
struct SourceReport {
  std::vector<Diagnostic> diags;
  std::vector<ParityRegion> parity;
};

/// Names declared with an unordered_map/unordered_set type in `text`.
/// analyze_tree unions these across all scanned files so a .cpp iterating
/// a member its header declared unordered (the common split) still trips
/// D3.
[[nodiscard]] std::set<std::string> collect_unordered_names(
    std::string_view text);

/// Analyzes one translation unit's text. `path` must be repo-relative with
/// '/' separators — it drives the path-scoped rules (D2 is allowed under
/// src/rng/, R1 applies only under src/, R2 only to headers, D4's ==/!=
/// check skips approved helper files). `extra_unordered_names` extends
/// D3's locally-collected declaration set (see collect_unordered_names).
/// Diagnostics come back sorted by (line, rule).
[[nodiscard]] std::vector<Diagnostic> analyze_source(
    std::string_view path, std::string_view text,
    const std::set<std::string>& extra_unordered_names = {});

/// analyze_source plus the file's parity regions and (when `layers` is
/// non-null) the L1 include-graph pass.
[[nodiscard]] SourceReport analyze_source_v2(
    std::string_view path, std::string_view text,
    const std::set<std::string>& extra_unordered_names = {},
    const LayerConfig* layers = nullptr);

/// P1: token-compares the pooled parity regions pairwise per rule name.
/// Exactly two regions (one per engine) must exist for every rule; the
/// renaming maps of both regions are merged and applied symmetrically to
/// identifier tokens. Diagnostics anchor at the drifting token in the
/// lexically-second file and name the counterpart.
[[nodiscard]] std::vector<Diagnostic> check_parity(
    const std::vector<ParityRegion>& regions);

/// L1 findings for problems with the layer config itself (parse errors,
/// undeclared dependencies, cycles), reported against `config_path`.
[[nodiscard]] std::vector<Diagnostic> check_layer_config(
    const LayerConfig& layers, std::string_view config_path);

/// Reads and analyzes `file`, reporting it relative to `root`.
[[nodiscard]] std::vector<Diagnostic> analyze_file(
    const std::filesystem::path& root, const std::filesystem::path& file,
    const std::set<std::string>& extra_unordered_names = {});

/// Walks root/{src,tools,bench} (skipping `fixtures`, `build` and hidden
/// directories), analyzing every .hpp/.h/.hh/.cpp/.cc file. Runs every
/// pass: the per-file rules, L1 against root/tools/detlint/layers.toml
/// (skipped when that file is absent), and P1 across the pooled parity
/// regions. The result is sorted by (file, line, rule) so the linter's own
/// output is byte-stable across platforms.
[[nodiscard]] std::vector<Diagnostic> analyze_tree(
    const std::filesystem::path& root);

/// Flags diagnostics covered by `baseline` (sets Diagnostic::baselined).
void apply_baseline(std::vector<Diagnostic>& diags, const Baseline& baseline);

/// Ratchet semantics: a baseline may only shrink. Returns one S1 finding
/// (anchored at `baseline_path`, line 0) for every baseline entry that no
/// diagnostic in `diags` matched — a stale entry must be deleted, never
/// hoarded for future regressions. Run after apply_baseline, in tree mode
/// only (single-file runs see too few diagnostics to judge staleness).
[[nodiscard]] std::vector<Diagnostic> baseline_ratchet(
    const std::vector<Diagnostic>& diags, const Baseline& baseline,
    std::string baseline_path);

/// Count of diagnostics with baselined == false.
[[nodiscard]] std::size_t fresh_count(const std::vector<Diagnostic>& diags);

/// Pretty rule table (id, name, summary) for `detlint --check` and
/// `pushpull lint`.
void print_rule_table(std::ostream& out);

}  // namespace detlint
