#pragma once

#include <cstddef>
#include <filesystem>
#include <iosfwd>
#include <set>
#include <string>
#include <string_view>
#include <vector>

/// detlint — the repo's determinism/invariant linter.
///
/// A token/lexer-based analyzer (no libclang) that enforces the project's
/// determinism contract on `src/`, `tools/` and `bench/`:
///
///   D1  no wall-clock / environment nondeterminism in simulation code
///       (std::random_device, time(), system_clock/steady_clock, rand(),
///       getenv, ...). One sanctioned boundary: src/serve/clock.cpp, the
///       wall backend behind the serve::Clock interface — real time is that
///       file's feature, and everything else (including the rest of
///       src/serve/) still reads time through the injected Clock
///   D2  no raw standard-library RNG engine construction outside src/rng/
///       — all randomness flows through rng::StreamFactory named streams
///   D3  no iteration over unordered_map/unordered_set (platform-dependent
///       order) unless routed through metrics::sorted_view
///   D4  no `float` (metrics accumulate in double) and no raw ==/!= against
///       floating-point literals outside approved helpers
///   R1  no assert() in library code (src/) — throw std::logic_error with
///       context instead, so Release builds keep the check
///   R2  no `using namespace` in headers
///
/// Suppression: `// detlint:allow(RULE[,RULE...]): reason` on the offending
/// line (trailing) or on the line above (standalone comment);
/// `// detlint:allow-file(RULE): reason` anywhere suppresses the rule for
/// the whole file. A checked-in baseline file (`path:rule` lines)
/// grandfathers findings without touching the source.
namespace detlint {

struct RuleInfo {
  std::string_view id;       ///< "D1" ... "R2"
  std::string_view name;     ///< short kebab-case name
  std::string_view summary;  ///< one-line description for the rule table
};

/// The rule table, in fixed D1..R2 order.
[[nodiscard]] const std::vector<RuleInfo>& rules();

struct Diagnostic {
  std::string file;  ///< repo-relative path, '/'-separated
  std::size_t line = 0;
  std::string rule;
  std::string message;
  bool baselined = false;  ///< matched a baseline entry — reported, not fatal
};

/// Grandfathered findings: one `path:rule` per line, `#` comments and blank
/// lines ignored. Paths are repo-relative with '/' separators.
class Baseline {
 public:
  [[nodiscard]] static Baseline parse(std::istream& in);
  /// Missing file loads as an empty baseline.
  [[nodiscard]] static Baseline load_file(const std::string& path);

  [[nodiscard]] bool covers(const Diagnostic& d) const {
    return entries_.count(d.file + ":" + d.rule) != 0;
  }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

 private:
  std::set<std::string> entries_;
};

/// Names declared with an unordered_map/unordered_set type in `text`.
/// analyze_tree unions these across all scanned files so a .cpp iterating
/// a member its header declared unordered (the common split) still trips
/// D3.
[[nodiscard]] std::set<std::string> collect_unordered_names(
    std::string_view text);

/// Analyzes one translation unit's text. `path` must be repo-relative with
/// '/' separators — it drives the path-scoped rules (D2 is allowed under
/// src/rng/, R1 applies only under src/, R2 only to headers, D4's ==/!=
/// check skips approved helper files). `extra_unordered_names` extends
/// D3's locally-collected declaration set (see collect_unordered_names).
/// Diagnostics come back sorted by (line, rule).
[[nodiscard]] std::vector<Diagnostic> analyze_source(
    std::string_view path, std::string_view text,
    const std::set<std::string>& extra_unordered_names = {});

/// Reads and analyzes `file`, reporting it relative to `root`.
[[nodiscard]] std::vector<Diagnostic> analyze_file(
    const std::filesystem::path& root, const std::filesystem::path& file,
    const std::set<std::string>& extra_unordered_names = {});

/// Walks root/{src,tools,bench} (skipping `fixtures`, `build` and hidden
/// directories), analyzing every .hpp/.h/.hh/.cpp/.cc file in sorted path
/// order so output is byte-stable across platforms.
[[nodiscard]] std::vector<Diagnostic> analyze_tree(
    const std::filesystem::path& root);

/// Flags diagnostics covered by `baseline` (sets Diagnostic::baselined).
void apply_baseline(std::vector<Diagnostic>& diags, const Baseline& baseline);

/// Count of diagnostics with baselined == false.
[[nodiscard]] std::size_t fresh_count(const std::vector<Diagnostic>& diags);

/// Pretty rule table (id, name, summary) for `detlint --check` and
/// `pushpull lint`.
void print_rule_table(std::ostream& out);

}  // namespace detlint
