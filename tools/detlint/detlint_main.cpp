// detlint — determinism/invariant linter for the pushpull tree.
//
//   detlint [--root DIR] [--baseline FILE] [--json FILE] [--sarif FILE]
//           [--check] [--rules] [FILE...]
//
// With no FILE arguments, scans <root>/{src,tools,bench} and runs every
// pass: the per-file rules (D1-D5, L1, R1, R2), cross-engine parity (P1)
// over the pooled parity regions, dead-suppression detection (S1), and the
// baseline ratchet (a baseline entry no finding matches is itself an S1
// finding). With FILE arguments, the named files are analyzed together —
// parity regions still pool across them, so a pair of engine files can be
// checked in isolation — but the ratchet is skipped (a partial scan cannot
// judge staleness).
//
// Prints one `file:line: rule: message` diagnostic per finding and exits 1
// if any finding is not covered by the baseline (0 when clean, 2 on
// usage/IO error). `--json`/`--sarif` additionally write the full finding
// list (baselined included) to FILE; `--rules` prints the rule table and
// exits; `--check` additionally prints the rule table and baseline
// statistics before scanning.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>
#include <tuple>
#include <vector>

#include "lint.hpp"
#include "report.hpp"

#ifndef DETLINT_DEFAULT_ROOT
#define DETLINT_DEFAULT_ROOT "."
#endif

namespace {

void usage() {
  std::cout <<
      R"(detlint — determinism/invariant linter (rules D1-D5, L1, P1, R1-R2, S1)

usage: detlint [--root DIR] [--baseline FILE] [--json FILE] [--sarif FILE]
               [--check] [--rules] [FILE...]

  --root DIR       repo root to scan (default: the source tree detlint was
                   built from); FILE arguments are reported relative to it
  --baseline FILE  grandfathered findings, one `path:rule` per line
  --json FILE      write the finding list as JSON to FILE
  --sarif FILE     write the finding list as SARIF 2.1.0 to FILE
  --rules          print the rule table and exit
  --check          print the rule table and baseline stats, then scan
)";
}

std::string read_file(const std::filesystem::path& file, bool& ok) {
  std::ifstream in(file, std::ios::binary);
  ok = static_cast<bool>(in);
  if (!ok) return {};
  std::string text{std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>()};
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  std::filesystem::path root = DETLINT_DEFAULT_ROOT;
  std::string baseline_path;
  std::string json_path;
  std::string sarif_path;
  bool check = false;
  std::vector<std::filesystem::path> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--sarif" && i + 1 < argc) {
      sarif_path = argv[++i];
    } else if (arg == "--rules") {
      detlint::print_rule_table(std::cout);
      return 0;
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "detlint: unknown option " << arg << "\n";
      usage();
      return 2;
    } else {
      files.emplace_back(arg);
    }
  }

  if (!std::filesystem::is_directory(root)) {
    std::cerr << "detlint: --root " << root.string()
              << " is not a directory\n";
    return 2;
  }
  if (baseline_path.empty()) {
    const std::filesystem::path candidate =
        root / "tools" / "detlint" / "baseline.txt";
    if (std::filesystem::exists(candidate)) {
      baseline_path = candidate.string();
    }
  }
  const detlint::Baseline baseline =
      detlint::Baseline::load_file(baseline_path);

  std::vector<detlint::Diagnostic> diags;
  if (files.empty()) {
    diags = detlint::analyze_tree(root);
  } else {
    // Explicit files analyze together: parity regions pool across them so
    // the two engine files can be parity-checked in isolation.
    const detlint::LayerConfig layers = detlint::LayerConfig::load_file(
        (root / "tools" / "detlint" / "layers.toml").string());
    const detlint::LayerConfig* layers_ptr =
        layers.empty() ? nullptr : &layers;
    std::vector<detlint::ParityRegion> regions;
    for (const auto& file : files) {
      bool ok = false;
      const std::string text = read_file(file, ok);
      if (!ok) {
        std::cerr << "detlint: cannot read " << file.string() << "\n";
        return 2;
      }
      const std::filesystem::path rel =
          file.lexically_proximate(root).lexically_normal();
      auto report = detlint::analyze_source_v2(rel.generic_string(), text,
                                               {}, layers_ptr);
      diags.insert(diags.end(), report.diags.begin(), report.diags.end());
      regions.insert(regions.end(), report.parity.begin(),
                     report.parity.end());
    }
    auto parity_diags = detlint::check_parity(regions);
    diags.insert(diags.end(), parity_diags.begin(), parity_diags.end());
  }
  detlint::apply_baseline(diags, baseline);
  if (files.empty() && !baseline_path.empty()) {
    auto stale = detlint::baseline_ratchet(diags, baseline, baseline_path);
    diags.insert(diags.end(), stale.begin(), stale.end());
  }
  std::sort(diags.begin(), diags.end(),
            [](const detlint::Diagnostic& a, const detlint::Diagnostic& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "detlint: cannot write " << json_path << "\n";
      return 2;
    }
    detlint::render_json(out, diags);
  }
  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path);
    if (!out) {
      std::cerr << "detlint: cannot write " << sarif_path << "\n";
      return 2;
    }
    detlint::render_sarif(out, diags);
  }

  if (check) {
    detlint::print_rule_table(std::cout);
    std::cout << "baseline: " << baseline.size() << " entr"
              << (baseline.size() == 1 ? "y" : "ies")
              << (baseline_path.empty() ? " (no baseline file)"
                                        : " (" + baseline_path + ")")
              << "\n\n";
  }

  std::size_t baselined = 0;
  for (const auto& d : diags) {
    if (d.baselined) {
      ++baselined;
      continue;
    }
    std::cout << d.file << ":" << d.line << ": " << d.rule << ": "
              << d.message << "\n";
  }
  const std::size_t fresh = detlint::fresh_count(diags);
  if (check || fresh != 0) {
    std::cout << "detlint: " << fresh << " finding"
              << (fresh == 1 ? "" : "s") << ", " << baselined
              << " baselined\n";
  }
  return fresh == 0 ? 0 : 1;
}
