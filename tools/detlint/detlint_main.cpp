// detlint — determinism/invariant linter for the pushpull tree.
//
//   detlint [--root DIR] [--baseline FILE] [--check] [--rules] [FILE...]
//
// With no FILE arguments, scans <root>/{src,tools,bench}. Prints one
// `file:line: rule: message` diagnostic per finding and exits 1 if any
// finding is not covered by the baseline (0 when clean, 2 on usage/IO
// error). `--rules` prints the rule table and exits; `--check` additionally
// prints the rule table and baseline statistics before scanning.
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "lint.hpp"

#ifndef DETLINT_DEFAULT_ROOT
#define DETLINT_DEFAULT_ROOT "."
#endif

namespace {

void usage() {
  std::cout <<
      R"(detlint — determinism/invariant linter (rules D1-D4, R1-R2)

usage: detlint [--root DIR] [--baseline FILE] [--check] [--rules] [FILE...]

  --root DIR       repo root to scan (default: the source tree detlint was
                   built from); FILE arguments are reported relative to it
  --baseline FILE  grandfathered findings, one `path:rule` per line
  --rules          print the rule table and exit
  --check          print the rule table and baseline stats, then scan
)";
}

}  // namespace

int main(int argc, char** argv) {
  std::filesystem::path root = DETLINT_DEFAULT_ROOT;
  std::string baseline_path;
  bool check = false;
  std::vector<std::filesystem::path> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--rules") {
      detlint::print_rule_table(std::cout);
      return 0;
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "detlint: unknown option " << arg << "\n";
      usage();
      return 2;
    } else {
      files.emplace_back(arg);
    }
  }

  if (!std::filesystem::is_directory(root)) {
    std::cerr << "detlint: --root " << root.string()
              << " is not a directory\n";
    return 2;
  }
  if (baseline_path.empty()) {
    const std::filesystem::path candidate =
        root / "tools" / "detlint" / "baseline.txt";
    if (std::filesystem::exists(candidate)) {
      baseline_path = candidate.string();
    }
  }
  const detlint::Baseline baseline =
      detlint::Baseline::load_file(baseline_path);

  std::vector<detlint::Diagnostic> diags;
  if (files.empty()) {
    diags = detlint::analyze_tree(root);
  } else {
    for (const auto& file : files) {
      auto file_diags = detlint::analyze_file(root, file);
      diags.insert(diags.end(), file_diags.begin(), file_diags.end());
    }
  }
  detlint::apply_baseline(diags, baseline);

  if (check) {
    detlint::print_rule_table(std::cout);
    std::cout << "baseline: " << baseline.size() << " entr"
              << (baseline.size() == 1 ? "y" : "ies")
              << (baseline_path.empty() ? " (no baseline file)"
                                        : " (" + baseline_path + ")")
              << "\n\n";
  }

  std::size_t baselined = 0;
  for (const auto& d : diags) {
    if (d.baselined) {
      ++baselined;
      continue;
    }
    std::cout << d.file << ":" << d.line << ": " << d.rule << ": "
              << d.message << "\n";
  }
  const std::size_t fresh = detlint::fresh_count(diags);
  if (check || fresh != 0) {
    std::cout << "detlint: " << fresh << " finding"
              << (fresh == 1 ? "" : "s") << ", " << baselined
              << " baselined\n";
  }
  return fresh == 0 ? 0 : 1;
}
