// F6 — Figure 6: total optimal prioritized cost vs. α for
// θ ∈ {0.20, 0.60, 1.40}. For every (θ, α) the cutoff is re-optimized
// (the paper's periodic K-scan) and the minimum total cost is reported.
//
// Paper claim to check: the optimal cost falls as α decreases — the more
// the importance factor weighs client priority, the cheaper the system.
#include <iostream>

#include "bench_common.hpp"
#include "core/cutoff_optimizer.hpp"

int main(int argc, char** argv) {
  using namespace pushpull;
  const auto opts = bench::parse_options(argc, argv);

  std::cout << "# Figure 6 — total optimal prioritized cost vs alpha\n";
  exp::Table table({"theta", "alpha", "K*", "optimal total cost"});
  const double alphas[] = {0.0, 0.25, 0.50, 0.75, 1.0};
  for (double theta : {0.20, 0.60, 1.40}) {
    const auto built = bench::paper_scenario(opts, theta).build();
    // Each grid point is a full cutoff scan (10 simulations) — coarse
    // enough that parallelizing across alphas keeps every worker busy.
    const auto scans = exp::sweep(
        std::size(alphas),
        [&](std::size_t i) {
          const double alpha = alphas[i];
          return core::scan_cutoffs(5, 100, 10, [&](std::size_t k) {
            core::HybridConfig config;
            config.cutoff = k;
            config.alpha = alpha;
            return exp::run_hybrid(built, config)
                .total_prioritized_cost(built.population);
          });
        },
        bench::sweep_options(opts, "fig6"));
    for (std::size_t i = 0; i < scans.size(); ++i) {
      table.row()
          .add(theta, 2)
          .add(alphas[i], 2)
          .add(scans[i].best_cutoff)
          .add(scans[i].best_cost, 2);
    }
  }
  bench::emit(table, opts);
  return 0;
}
