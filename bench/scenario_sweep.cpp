// Scenario degradation curves — every preset × intensity, plus the two
// machine-checked gates that make the scenario engine trustworthy:
//
//  1. determinism — the kitchen-sink chaos run is bit-identical across
//     --jobs 1/2/8 (pooled counters and Welford moments compare exactly);
//  2. adaptivity — under the flashcrowd preset (rate spike + hot set
//     jumping D/2) the adaptive cutoff re-optimizer must beat a static
//     cutoff on total prioritized cost.
//
//   scenario_sweep [--csv] [--requests N] [--seed S] [--jobs N]
//                  [--out FILE]
//
// Emits BENCH_scenarios.json; exit status 0 iff both gates hold.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/adaptive_server.hpp"
#include "core/hybrid_server.hpp"
#include "exp/chaos.hpp"
#include "metrics/float_compare.hpp"
#include "scenario/presets.hpp"

namespace {

using namespace pushpull;
using scenario::Preset;

struct Cell {
  Preset preset = Preset::kNone;
  double intensity = 1.0;
  double cost = 0.0;
  std::vector<double> goodput;  // per class
  double worst_gap = 0.0;       // max inter-service gap over classes
  std::uint64_t rehomed = 0;
  std::uint64_t lost = 0;
};

/// Exact equality of two pooled chaos summaries — any drift across worker
/// counts is a determinism bug, so the comparison is bitwise, not NEAR.
bool summaries_identical(const exp::ChaosSummary& a,
                         const exp::ChaosSummary& b) {
  if (a.crashes != b.crashes || a.handoff_rehomed != b.handoff_rehomed ||
      a.handoff_lost != b.handoff_lost ||
      !metrics::exactly_equal(a.total_downtime, b.total_downtime) ||
      !metrics::exactly_equal(a.overall_delay.mean(), b.overall_delay.mean()) ||
      !metrics::exactly_equal(a.overall_delay.variance(),
                              b.overall_delay.variance()) ||
      !metrics::exactly_equal(a.total_cost.mean(), b.total_cost.mean()) ||
      !metrics::exactly_equal(a.goodput.mean(), b.goodput.mean()) ||
      a.per_class.size() != b.per_class.size()) {
    return false;
  }
  for (std::size_t c = 0; c < a.per_class.size(); ++c) {
    const auto& x = a.per_class[c];
    const auto& y = b.per_class[c];
    if (x.arrived != y.arrived || x.served != y.served ||
        x.blocked != y.blocked || x.abandoned != y.abandoned ||
        x.gap.count() != y.gap.count() ||
        !metrics::exactly_equal(x.wait.mean(), y.wait.mean()) ||
        !metrics::exactly_equal(x.gap.mean(), y.gap.mean()) ||
        !metrics::exactly_equal(x.gap.max(), y.gap.max())) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  auto opts = bench::parse_options(argc, argv);
  std::string out_path = "BENCH_scenarios.json";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--out" && i + 1 < argc) out_path = argv[i + 1];
  }

  const std::vector<Preset> presets = {Preset::kDiurnal, Preset::kFlashcrowd,
                                       Preset::kCommuter,
                                       Preset::kKitchenSink};
  const std::vector<double> intensities = {0.5, 1.0, 2.0};

  // --- degradation curves: preset × intensity ----------------------------
  auto run_cell = [&](std::size_t i) {
    Cell cell;
    cell.preset = presets[i / intensities.size()];
    cell.intensity = intensities[i % intensities.size()];
    exp::Scenario s = bench::paper_scenario(opts, 0.60);
    s.preset = cell.preset;
    s.preset_intensity = cell.intensity;
    const auto built = s.build();
    core::HybridConfig config;
    config.cutoff = 20;
    config.alpha = 0.5;
    const core::SimResult r = exp::run_hybrid(built, config);
    cell.cost = r.total_prioritized_cost(built.population);
    for (workload::ClassId c = 0; c < built.population.num_classes(); ++c) {
      cell.goodput.push_back(r.per_class[c].goodput_ratio());
      cell.worst_gap = std::max(cell.worst_gap, r.per_class[c].gap.max());
    }
    cell.rehomed = built.shape.rehomed;
    cell.lost = built.shape.total_lost();
    return cell;
  };
  const auto grid = exp::sweep(presets.size() * intensities.size(), run_cell,
                               bench::sweep_options(opts, "scenarios"));

  exp::Table table({"preset", "intensity", "p-cost", "goodput A", "goodput B",
                    "goodput C", "worst gap", "re-homed", "lost"});
  for (const auto& cell : grid) {
    table.row()
        .add(std::string(scenario::to_string(cell.preset)))
        .add(cell.intensity, 1)
        .add(cell.cost, 1)
        .add(cell.goodput[0], 4)
        .add(cell.goodput[1], 4)
        .add(cell.goodput[2], 4)
        .add(cell.worst_gap, 1)
        .add(static_cast<std::size_t>(cell.rehomed))
        .add(static_cast<std::size_t>(cell.lost));
  }
  bench::emit(table, opts);

  // --- gate 1: jobs independence under the kitchen sink ------------------
  exp::Scenario chaos_scenario = bench::paper_scenario(opts, 0.60);
  chaos_scenario.num_requests = std::min<std::size_t>(opts.num_requests, 8000);
  chaos_scenario.preset = Preset::kKitchenSink;
  core::HybridConfig chaos_config;
  chaos_config.cutoff = 20;
  chaos_config.resilience.crash.enabled = true;
  chaos_config.resilience.crash.rate = 0.005;
  chaos_config.resilience.crash.downtime = 20.0;

  bool jobs_identical = true;
  bool invariants_pass = true;
  exp::ChaosSummary reference;
  for (std::size_t jobs : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    exp::ChaosOptions chaos_opts;
    chaos_opts.replications = 4;
    chaos_opts.jobs = jobs;
    chaos_scenario.jobs = jobs;
    const auto summary = exp::run_chaos(chaos_scenario, chaos_config,
                                        chaos_opts);
    invariants_pass = invariants_pass && summary.invariants.all_pass() &&
                      summary.replay_identical;
    if (jobs == 1) {
      reference = summary;
    } else if (!summaries_identical(reference, summary)) {
      jobs_identical = false;
      std::cerr << "scenario_sweep: kitchen-sink chaos diverged at --jobs "
                << jobs << "\n";
    }
  }

  // --- gate 2: adaptive beats static under the flash crowd ---------------
  // theta = 1.0 so the rank prefix carries real mass: when the crowd
  // arrives and the hot set jumps D/2, a static cutoff keeps pushing
  // yesterday's items while the estimator re-learns the new head.
  exp::Scenario flash = bench::paper_scenario(opts, 1.0);
  flash.num_requests = std::max<std::size_t>(opts.num_requests / 2, 10000);
  flash.preset = Preset::kFlashcrowd;
  const auto flash_built = flash.build();

  core::HybridConfig static_config;
  static_config.cutoff = 40;
  static_config.alpha = 0.5;
  const core::SimResult rs = exp::run_hybrid(flash_built, static_config);
  const double static_cost = rs.total_prioritized_cost(flash_built.population);

  core::AdaptiveConfig adaptive;
  adaptive.initial_cutoff = 40;
  adaptive.alpha = 0.5;
  adaptive.reoptimize_interval = 200.0;
  adaptive.estimator_half_life = 300.0;
  adaptive.scan_step = 5;
  core::AdaptiveHybridServer dynamic(flash_built.catalog,
                                     flash_built.population, adaptive);
  const core::AdaptiveResult ra = dynamic.run(flash_built.trace);
  const double adaptive_cost =
      ra.total_prioritized_cost(flash_built.population);
  const bool adaptive_wins = adaptive_cost < static_cost;

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "scenario_sweep: cannot open " << out_path << "\n";
    return 2;
  }
  out << "{\n  \"bench\": \"scenario_sweep\",\n"
      << "  \"requests\": " << opts.num_requests << ",\n  \"grid\": [\n";
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto& cell = grid[i];
    out << "    {\"preset\": \"" << scenario::to_string(cell.preset)
        << "\", \"intensity\": " << cell.intensity << ", \"cost\": "
        << cell.cost << ", \"goodput\": [" << cell.goodput[0] << ", "
        << cell.goodput[1] << ", " << cell.goodput[2] << "], \"worst_gap\": "
        << cell.worst_gap << ", \"rehomed\": " << cell.rehomed
        << ", \"lost\": " << cell.lost << "}"
        << (i + 1 < grid.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"jobs_identical\": " << (jobs_identical ? "true" : "false")
      << ",\n  \"invariants_pass\": " << (invariants_pass ? "true" : "false")
      << ",\n  \"flashcrowd_static_cost\": " << static_cost
      << ",\n  \"flashcrowd_adaptive_cost\": " << adaptive_cost
      << ",\n  \"adaptive_reoptimizations\": " << ra.reoptimizations
      << ",\n  \"adaptive_beats_static\": "
      << (adaptive_wins ? "true" : "false") << "\n}\n";

  std::cout << "jobs 1/2/8 " << (jobs_identical ? "identical" : "DIVERGED")
            << "; invariants " << (invariants_pass ? "pass" : "FAIL")
            << "; flashcrowd static cost " << static_cost << " vs adaptive "
            << adaptive_cost << " ("
            << (adaptive_wins ? "adaptive wins" : "ADAPTIVE LOST")
            << "); wrote " << out_path << "\n";
  return (jobs_identical && invariants_pass && adaptive_wins) ? 0 : 1;
}
