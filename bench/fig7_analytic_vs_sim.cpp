// F7 — Figure 7: analytical vs. simulation expected access time across the
// cutoff sweep at θ = 0.60, α = 0.75 (the paper's calibration point).
//
// Three estimators are reported: the simulation, this library's
// self-consistent batching model (queueing::HybridAccessModel::estimate),
// and the paper's Eq. 19 exactly as printed. The paper reports ~10%
// agreement between its analysis and simulation; the model-error column
// makes our agreement auditable per cutoff.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "queueing/access_time.hpp"

int main(int argc, char** argv) {
  using namespace pushpull;
  const auto opts = bench::parse_options(argc, argv);

  std::cout << "# Figure 7 — analytical vs simulation, theta = 0.60, "
               "alpha = 0.75\n";
  const auto built = bench::paper_scenario(opts, 0.60).build();
  queueing::HybridAccessModel model(built.catalog, built.population, 5.0);

  exp::Table table({"K", "sim delay", "model delay", "model err %",
                    "eq19 (literal)", "sim A", "model A", "sim C", "model C"});
  exp::PlotSpec plot;
  plot.title = "Fig. 7 - analytical vs simulation (theta = 0.60, alpha = 0.75)";
  plot.xlabel = "cutoff K";
  plot.ylabel = "mean delay (broadcast units)";
  plot.series = {{"simulation", {}}, {"model", {}}};
  // The simulations dominate the wall time; the analytic model evaluates
  // per-row below (it is cheap and shares no state with the sweep).
  const auto sims = exp::sweep(
      std::size(bench::kCutoffGrid),
      [&](std::size_t i) {
        core::HybridConfig config;
        config.cutoff = bench::kCutoffGrid[i];
        config.alpha = 0.75;
        return exp::run_hybrid(built, config);
      },
      bench::sweep_options(opts, "fig7"));
  for (std::size_t i = 0; i < sims.size(); ++i) {
    const std::size_t k = bench::kCutoffGrid[i];
    const core::SimResult& sim = sims[i];
    const auto est = model.estimate(k, 0.75);
    const double simulated = sim.overall().wait.mean();
    const double err =
        simulated > 0.0 ? 100.0 * (est.overall - simulated) / simulated : 0.0;
    const double eq19 = model.paper_eq19(k);
    table.row()
        .add(k)
        .add(simulated, 2)
        .add(est.overall, 2)
        .add(err, 1)
        .add(std::isfinite(eq19) ? eq19 : -1.0, 2)
        .add(sim.mean_wait(0), 2)
        .add(est.access_time[0], 2)
        .add(sim.mean_wait(2), 2)
        .add(est.access_time[2], 2);
    plot.series[0].points.emplace_back(static_cast<double>(k), simulated);
    plot.series[1].points.emplace_back(static_cast<double>(k), est.overall);
  }
  bench::emit(table, opts);
  if (!opts.plot_prefix.empty()) {
    exp::write_gnuplot(opts.plot_prefix, plot);
    std::cout << "# wrote " << opts.plot_prefix << ".dat/.gp\n";
  }
  std::cout << "# eq19 (literal) = -1.00 marks cutoffs where the paper's "
               "un-batched Eq. 19 is unstable (infinite).\n";
  return 0;
}
