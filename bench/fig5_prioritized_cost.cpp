// F5 — Figure 5: prioritized cost (q_j × expected delay) vs. cutoff point
// for each class, α ∈ {0.25, 0.75}, θ = 0.60. The operative output is the
// interior cutoff K* that minimizes the total prioritized cost.
#include <iostream>

#include "bench_common.hpp"
#include "core/cutoff_optimizer.hpp"

int main(int argc, char** argv) {
  using namespace pushpull;
  const auto opts = bench::parse_options(argc, argv);

  std::cout << "# Figure 5 — prioritized cost vs cutoff, theta = 0.60\n";
  const auto built = bench::paper_scenario(opts, 0.60).build();

  exp::Table table(
      {"alpha", "K", "cost A", "cost B", "cost C", "total cost"});
  for (double alpha : {0.25, 0.75}) {
    const auto results = exp::sweep(
        std::size(bench::kCutoffGrid),
        [&](std::size_t i) {
          core::HybridConfig config;
          config.cutoff = bench::kCutoffGrid[i];
          config.alpha = alpha;
          return exp::run_hybrid(built, config);
        },
        bench::sweep_options(opts, "fig5"));
    std::size_t best_k = 0;
    double best_cost = 0.0;
    bool first = true;
    for (std::size_t i = 0; i < results.size(); ++i) {
      const std::size_t k = bench::kCutoffGrid[i];
      const core::SimResult& r = results[i];
      const double total = r.total_prioritized_cost(built.population);
      table.row()
          .add(alpha, 2)
          .add(k)
          .add(r.prioritized_cost(built.population, 0), 2)
          .add(r.prioritized_cost(built.population, 1), 2)
          .add(r.prioritized_cost(built.population, 2), 2)
          .add(total, 2);
      if (first || total < best_cost) {
        best_cost = total;
        best_k = k;
        first = false;
      }
    }
    std::cout << "# alpha = " << alpha << ": optimal cutoff K* = " << best_k
              << " with total prioritized cost " << best_cost << "\n";
  }
  bench::emit(table, opts);
  return 0;
}
