// F4 — Figure 4: per-class expected delay vs. cutoff point K at α = 1
// (stretch-optimal pull selection, priority ignored), for every θ.
//
// Paper claims to check: with priority out of the importance factor the
// class bands collapse toward each other, while the delay-vs-K shape stays.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pushpull;
  const auto opts = bench::parse_options(argc, argv);

  std::cout << "# Figure 4 — delay vs cutoff, alpha = 1.0 (stretch-only "
               "pull selection)\n";
  exp::Table table({"theta", "K", "delay A", "delay B", "delay C", "overall"});
  for (double theta : {0.20, 0.60, 1.00, 1.40}) {
    const auto built = bench::paper_scenario(opts, theta).build();
    for (std::size_t k : bench::kCutoffGrid) {
      core::HybridConfig config;
      config.cutoff = k;
      config.alpha = 1.0;
      const core::SimResult r = exp::run_hybrid(built, config);
      table.row()
          .add(theta, 2)
          .add(k)
          .add(r.mean_wait(0), 2)
          .add(r.mean_wait(1), 2)
          .add(r.mean_wait(2), 2)
          .add(r.overall().wait.mean(), 2);
    }
  }
  bench::emit(table, opts);
  return 0;
}
