// F4 — Figure 4: per-class expected delay vs. cutoff point K at α = 1
// (stretch-optimal pull selection, priority ignored), for every θ.
//
// Paper claims to check: with priority out of the importance factor the
// class bands collapse toward each other, while the delay-vs-K shape stays.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pushpull;
  const auto opts = bench::parse_options(argc, argv);

  std::cout << "# Figure 4 — delay vs cutoff, alpha = 1.0 (stretch-only "
               "pull selection)\n";
  exp::Table table({"theta", "K", "delay A", "delay B", "delay C", "overall"});
  for (double theta : {0.20, 0.60, 1.00, 1.40}) {
    const auto built = bench::paper_scenario(opts, theta).build();
    const auto results = exp::sweep(
        std::size(bench::kCutoffGrid),
        [&](std::size_t i) {
          core::HybridConfig config;
          config.cutoff = bench::kCutoffGrid[i];
          config.alpha = 1.0;
          return exp::run_hybrid(built, config);
        },
        bench::sweep_options(opts, "fig4"));
    for (std::size_t i = 0; i < results.size(); ++i) {
      const core::SimResult& r = results[i];
      table.row()
          .add(theta, 2)
          .add(bench::kCutoffGrid[i])
          .add(r.mean_wait(0), 2)
          .add(r.mean_wait(1), 2)
          .add(r.mean_wait(2), 2)
          .add(r.overall().wait.mean(), 2);
    }
  }
  bench::emit(table, opts);
  return 0;
}
