// A1 — ablation: the paper's importance-factor policy against every other
// pull-selection discipline on the identical workload. Shows where the
// contribution actually pays: premium-class delay and total prioritized
// cost, at the price of (slightly) worse aggregate stretch metrics.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pushpull;
  const auto opts = bench::parse_options(argc, argv);

  std::cout << "# Pull-policy ablation, theta = 0.60, K = 20, alpha = 0.5 "
               "(importance policies)\n";
  const auto built = bench::paper_scenario(opts, 0.60).build();

  exp::Table table({"policy", "delay A", "delay B", "delay C", "overall",
                    "total cost", "pull tx"});
  const sched::PullPolicyKind kinds[] = {
      sched::PullPolicyKind::kFcfs,       sched::PullPolicyKind::kMrf,
      sched::PullPolicyKind::kStretch,    sched::PullPolicyKind::kPriority,
      sched::PullPolicyKind::kRxw,        sched::PullPolicyKind::kLwf,
      sched::PullPolicyKind::kImportance,
      sched::PullPolicyKind::kImportanceQueueAware};
  const auto results = exp::sweep(
      std::size(kinds),
      [&](std::size_t i) {
        core::HybridConfig config;
        config.cutoff = 20;
        config.alpha = 0.5;
        config.pull_policy = kinds[i];
        return exp::run_hybrid(built, config);
      },
      bench::sweep_options(opts, "abl_pull_policies"));
  for (std::size_t i = 0; i < results.size(); ++i) {
    const core::SimResult& r = results[i];
    table.row()
        .add(std::string(sched::to_string(kinds[i])))
        .add(r.mean_wait(0), 2)
        .add(r.mean_wait(1), 2)
        .add(r.mean_wait(2), 2)
        .add(r.overall().wait.mean(), 2)
        .add(r.total_prioritized_cost(built.population), 2)
        .add(static_cast<std::size_t>(r.pull_transmissions));
  }
  bench::emit(table, opts);
  return 0;
}
