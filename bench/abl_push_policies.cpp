// A2 — ablation: the paper's flat push cycle against the Broadcast Disks
// and Square-Root-Rule baselines from its related-work section, holding the
// pull side fixed at the importance policy.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pushpull;
  const auto opts = bench::parse_options(argc, argv);

  std::cout << "# Push-policy ablation, theta = 0.60, alpha = 0.5\n";
  exp::Table table({"push policy", "K", "delay A", "delay C", "overall",
                    "push-served delay", "total cost"});
  const auto built = bench::paper_scenario(opts, 0.60).build();
  const std::size_t cutoffs[] = {20, 40, 60};
  const sched::PushPolicyKind kinds[] = {
      sched::PushPolicyKind::kFlat, sched::PushPolicyKind::kBroadcastDisks,
      sched::PushPolicyKind::kSquareRootRule};
  // Cutoff-major, policy-minor point index — same order the serial loops
  // printed.
  const auto results = exp::sweep(
      std::size(cutoffs) * std::size(kinds),
      [&](std::size_t i) {
        core::HybridConfig config;
        config.cutoff = cutoffs[i / std::size(kinds)];
        config.alpha = 0.5;
        config.push_policy = kinds[i % std::size(kinds)];
        return exp::run_hybrid(built, config);
      },
      bench::sweep_options(opts, "abl_push_policies"));
  for (std::size_t i = 0; i < results.size(); ++i) {
    const core::SimResult& r = results[i];
    // Approximate push-side delay: aggregate wait over requests served by
    // the broadcast is not split out per transmission kind in ClassStats,
    // so report the overall mean alongside the totals.
    table.row()
        .add(std::string(sched::to_string(kinds[i % std::size(kinds)])))
        .add(cutoffs[i / std::size(kinds)])
        .add(r.mean_wait(0), 2)
        .add(r.mean_wait(2), 2)
        .add(r.overall().wait.mean(), 2)
        .add(static_cast<std::size_t>(r.overall().served_push))
        .add(r.total_prioritized_cost(built.population), 2);
  }
  bench::emit(table, opts);
  return 0;
}
