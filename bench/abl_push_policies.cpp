// A2 — ablation: the paper's flat push cycle against the Broadcast Disks
// and Square-Root-Rule baselines from its related-work section, holding the
// pull side fixed at the importance policy.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pushpull;
  const auto opts = bench::parse_options(argc, argv);

  std::cout << "# Push-policy ablation, theta = 0.60, alpha = 0.5\n";
  exp::Table table({"push policy", "K", "delay A", "delay C", "overall",
                    "push-served delay", "total cost"});
  const auto built = bench::paper_scenario(opts, 0.60).build();
  for (std::size_t k : {std::size_t{20}, std::size_t{40}, std::size_t{60}}) {
    for (auto kind : {sched::PushPolicyKind::kFlat,
                      sched::PushPolicyKind::kBroadcastDisks,
                      sched::PushPolicyKind::kSquareRootRule}) {
      core::HybridConfig config;
      config.cutoff = k;
      config.alpha = 0.5;
      config.push_policy = kind;
      const core::SimResult r = exp::run_hybrid(built, config);
      // Approximate push-side delay: aggregate wait over requests served by
      // the broadcast is not split out per transmission kind in ClassStats,
      // so report the overall mean alongside the totals.
      table.row()
          .add(std::string(sched::to_string(kind)))
          .add(k)
          .add(r.mean_wait(0), 2)
          .add(r.mean_wait(2), 2)
          .add(r.overall().wait.mean(), 2)
          .add(static_cast<std::size_t>(r.overall().served_push))
          .add(r.total_prioritized_cost(built.population), 2);
    }
  }
  bench::emit(table, opts);
  return 0;
}
