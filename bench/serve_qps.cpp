// R4 — live-serving throughput/latency sweep (see EXPERIMENTS.md).
//
// Drives the completion-queue server (accelerated virtual clock, so the
// sweep is seeded and bit-reproducible) across a range of offered loads,
// reporting achieved vs target QPS, per-class p50/p95/p99 waits and
// pull-queue depth, and writes BENCH_serve.json so the serving trajectory
// is tracked across PRs. Every point also records its sv1 trace and feeds
// it back through the deterministic DES core, asserting the record/replay
// bridge is bit-exact (exit 1 when any point diverges).
//
//   serve_qps [--duration T] [--seed S] [--out FILE]
//
// Defaults: 300 broadcast units per point, seed 20050614,
// out = BENCH_serve.json.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/cli.hpp"
#include "exp/table.hpp"
#include "obs/export.hpp"
#include "serve/serve.hpp"

namespace {

using namespace pushpull;

/// One sweep point, plus whether its replay reproduced the live run.
struct Point {
  double target_qps = 0.0;
  serve::ServeReport report;
  bool bridge_exact = false;
};

/// The live run and DES replay agree on *every* statistic the two rendered
/// reports share — counts exactly, waits bit-for-bit.
bool bridge_matches(const serve::ServeReport& live,
                    const core::SimResult& replayed) {
  if (live.end_time != replayed.end_time ||
      live.push_transmissions != replayed.push_transmissions ||
      live.pull_transmissions != replayed.pull_transmissions ||
      live.mean_pull_queue_len != replayed.mean_pull_queue_len ||
      live.max_pull_queue_len != replayed.max_pull_queue_len ||
      live.per_class.size() != replayed.per_class.size()) {
    return false;
  }
  for (std::size_t c = 0; c < live.per_class.size(); ++c) {
    const auto& a = live.per_class[c];
    const auto& b = replayed.per_class[c];
    if (a.arrived != b.arrived || a.served != b.served ||
        a.wait.mean() != b.wait.mean() || a.wait.count() != b.wait.count()) {
      return false;
    }
  }
  return true;
}

Point run_point(serve::ServeConfig config) {
  Point p;
  p.target_qps = config.target_qps;

  std::stringstream trace;
  {
    serve::TraceRecorder recorder(trace, config);
    const auto cat = config.build_catalog();
    const auto pop = config.build_population();
    serve::LoadDriver driver(cat, pop, config.target_qps, config.duration,
                             config.seed);
    serve::LiveServer server(cat, pop, config);
    p.report = server.run_accelerated(driver, &recorder);
  }

  const serve::RecordedRun run = serve::load_trace(trace);
  const auto replayed = serve::replay(run);
  p.bridge_exact = replayed.size() == 1 && bridge_matches(p.report,
                                                          replayed.front());
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const exp::ArgParser args(argc, argv);
  const double duration = args.get_positive_double("duration", 300.0);
  const std::uint64_t seed = args.get_u64("seed", 20050614);
  const std::string out_path = args.get_string("out", "BENCH_serve.json");

  const std::vector<double> sweep = {2.0, 5.0, 8.0, 12.0, 20.0};
  std::vector<Point> points;
  for (const double qps : sweep) {
    serve::ServeConfig config;
    config.accelerated = true;
    config.duration = duration;
    config.target_qps = qps;
    config.seed = seed;
    points.push_back(run_point(config));
  }

  exp::Table table({"target qps", "achieved", "served", "queue p99",
                    "c0 p95", "c1 p95", "c2 p95", "replay"});
  for (const Point& p : points) {
    auto& row = table.row();
    row.add(p.target_qps, 1).add(p.report.achieved_qps, 3);
    row.add(static_cast<std::size_t>(p.report.served));
    row.add(p.report.queue_depth.p99, 2);
    for (const auto& cls : p.report.per_class) {
      row.add(cls.wait_p95.count() > 0 ? cls.wait_p95.value() : 0.0, 2);
    }
    row.add(p.bridge_exact ? "exact" : "DIVERGED");
  }
  table.print(std::cout);

  bool all_exact = true;
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "serve_qps: cannot open " << out_path << "\n";
    return 2;
  }
  out << "{\n  \"bench\": \"serve_qps\",\n  \"duration\": "
      << obs::render_number(duration) << ",\n  \"seed\": " << seed
      << ",\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    const auto& r = p.report;
    out << "    {\"target_qps\": " << obs::render_number(p.target_qps)
        << ", \"achieved_qps\": " << obs::render_number(r.achieved_qps)
        << ", \"arrivals\": " << r.arrivals << ", \"served\": " << r.served
        << ", \"end_time\": " << obs::render_number(r.end_time)
        << ", \"mean_pull_queue_len\": "
        << obs::render_number(r.mean_pull_queue_len)
        << ", \"queue_p50\": " << obs::render_number(r.queue_depth.p50)
        << ", \"queue_p99\": " << obs::render_number(r.queue_depth.p99)
        << ", \"replay_exact\": " << (p.bridge_exact ? "true" : "false")
        << ", \"classes\": [";
    for (std::size_t c = 0; c < r.per_class.size(); ++c) {
      const auto& cls = r.per_class[c];
      out << (c == 0 ? "" : ", ") << "{\"mean_wait\": "
          << obs::render_number(cls.wait.mean()) << ", \"p50\": "
          << obs::render_number(
                 cls.wait_p50.count() > 0 ? cls.wait_p50.value() : 0.0)
          << ", \"p95\": "
          << obs::render_number(
                 cls.wait_p95.count() > 0 ? cls.wait_p95.value() : 0.0)
          << ", \"p99\": "
          << obs::render_number(
                 cls.wait_p99.count() > 0 ? cls.wait_p99.value() : 0.0)
          << "}";
    }
    out << "]}" << (i + 1 < points.size() ? "," : "") << "\n";
    all_exact = all_exact && p.bridge_exact;
  }
  out << "  ],\n  \"all_replays_exact\": " << (all_exact ? "true" : "false")
      << "\n}\n";

  std::cout << "wrote " << out_path << " ("
            << (all_exact ? "all replays bit-exact" : "REPLAY DIVERGENCE")
            << ")\n";
  return all_exact ? 0 : 1;
}
