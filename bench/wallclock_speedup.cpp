// P2 — wall-clock speedup of the parallel replication engine.
//
// Runs the same fixed replication sweep twice — serial (--jobs 1) and with
// N workers — verifies the two summaries are bit-identical, and writes
// BENCH_parallel.json so the perf trajectory is tracked across PRs.
//
//   wallclock_speedup [--reps R] [--requests N] [--jobs J] [--out FILE]
//
// Defaults: 20 replications, 8000 requests, J = 4 workers,
// out = BENCH_parallel.json.
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "exp/cli.hpp"
#include "exp/replication.hpp"
#include "runtime/run_reporter.hpp"

int main(int argc, char** argv) {
  using namespace pushpull;
  const exp::ArgParser args(argc, argv);
  const std::size_t reps = args.get_size("reps", 20);
  const std::size_t jobs = args.get_size("jobs", 4);
  const std::string out_path = args.get_string("out", "BENCH_parallel.json");

  exp::Scenario scenario;
  scenario.num_requests = args.get_size("requests", 8000);
  core::HybridConfig config;
  config.cutoff = 30;
  config.alpha = 0.5;

  exp::ReplicateOptions serial_opts;
  serial_opts.jobs = 1;
  const runtime::StopWatch serial_watch;
  const auto serial = exp::replicate_hybrid(scenario, config, reps,
                                            serial_opts);
  const double serial_ms = serial_watch.elapsed_ms();

  exp::ReplicateOptions parallel_opts;
  parallel_opts.jobs = jobs;
  const runtime::StopWatch parallel_watch;
  const auto parallel = exp::replicate_hybrid(scenario, config, reps,
                                              parallel_opts);
  const double parallel_ms = parallel_watch.elapsed_ms();

  // Bit-exact comparison: the whole point of the engine is that the worker
  // count is invisible in the numbers.
  const bool identical =
      serial.overall_delay.mean() == parallel.overall_delay.mean() &&
      serial.overall_delay.variance() == parallel.overall_delay.variance() &&
      serial.total_cost.mean() == parallel.total_cost.mean() &&
      serial.blocking.mean() == parallel.blocking.mean() &&
      serial.pull_queue_len.mean() == parallel.pull_queue_len.mean();

  const double speedup = parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0;
  const unsigned hw = std::thread::hardware_concurrency();

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "wallclock_speedup: cannot open " << out_path << "\n";
    return 2;
  }
  out << "{\n"
      << "  \"bench\": \"parallel_replications\",\n"
      << "  \"replications\": " << reps << ",\n"
      << "  \"requests_per_replication\": " << scenario.num_requests << ",\n"
      << "  \"hardware_threads\": " << hw << ",\n"
      << "  \"jobs\": " << jobs << ",\n"
      << "  \"serial_ms\": " << serial_ms << ",\n"
      << "  \"parallel_ms\": " << parallel_ms << ",\n"
      << "  \"speedup\": " << speedup << ",\n"
      << "  \"bit_identical\": " << (identical ? "true" : "false") << "\n"
      << "}\n";

  std::cout << "serial " << serial_ms << " ms, " << jobs << "-worker "
            << parallel_ms << " ms -> speedup " << speedup << "x ("
            << hw << " hardware threads), summaries "
            << (identical ? "bit-identical" : "DIVERGED") << "\n"
            << "wrote " << out_path << "\n";
  return identical ? 0 : 1;
}
