// X4 — multi-channel extension: how much of the hybrid system's delay is
// the single-channel alternation constraint, and how delay scales when the
// operator adds on-demand channels.
//
// Columns compare the paper's shared-channel server against a layout with
// a dedicated broadcast channel plus N pull channels, at the same cutoff,
// on the same trace. Also reports per-class p99 tails — the premium SLA
// metric a carrier actually buys channels for.
#include <iostream>

#include "bench_common.hpp"
#include "core/multichannel_server.hpp"

int main(int argc, char** argv) {
  using namespace pushpull;
  const auto opts = bench::parse_options(argc, argv);

  std::cout << "# Multi-channel scaling, theta = 0.60, K = 20, alpha = 0.25\n";
  const auto built = bench::paper_scenario(opts, 0.60).build();

  core::HybridConfig shared;
  shared.cutoff = 20;
  shared.alpha = 0.25;
  const core::SimResult baseline = exp::run_hybrid(built, shared);

  exp::Table table({"layout", "delay A", "delay C", "overall", "p99 A",
                    "p99 C", "pull ch util"});
  table.row()
      .add("shared channel (paper)")
      .add(baseline.mean_wait(0), 2)
      .add(baseline.mean_wait(2), 2)
      .add(baseline.overall().wait.mean(), 2)
      .add(baseline.per_class[0].wait_p99.value(), 2)
      .add(baseline.per_class[2].wait_p99.value(), 2)
      .add("-");

  for (std::size_t channels : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                               std::size_t{4}}) {
    core::MultiChannelConfig config;
    config.cutoff = 20;
    config.alpha = 0.25;
    config.num_pull_channels = channels;
    core::MultiChannelServer server(built.catalog, built.population, config);
    const core::MultiChannelResult r = server.run(built.trace);
    double mean_util = 0.0;
    for (double u : r.pull_channel_utilization) mean_util += u;
    mean_util /= static_cast<double>(channels);
    table.row()
        .add("bcast + " + std::to_string(channels) + " pull ch")
        .add(r.mean_wait(0), 2)
        .add(r.mean_wait(2), 2)
        .add(r.overall().wait.mean(), 2)
        .add(r.per_class[0].wait_p99.value(), 2)
        .add(r.per_class[2].wait_p99.value(), 2)
        .add(mean_util, 3);
  }
  bench::emit(table, opts);
  return 0;
}
