// F4b — the Figs. 3–4 family at the intermediate α the paper also ran
// (α ∈ {0.25, 0.50, 0.75}), θ = 0.60: delay vs cutoff per class, showing
// the class separation shrinking smoothly as α moves from priority (0)
// toward stretch (1).
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pushpull;
  const auto opts = bench::parse_options(argc, argv);

  std::cout << "# Figures 3-4 family — delay vs cutoff for intermediate "
               "alpha, theta = 0.60\n";
  exp::Table table({"alpha", "K", "delay A", "delay B", "delay C", "overall",
                    "A/C ratio"});
  const auto built = bench::paper_scenario(opts, 0.60).build();
  // One sweep across the full (alpha, K) grid: point index decomposes into
  // alpha-major, cutoff-minor, matching the serial loop's row order.
  const double alphas[] = {0.25, 0.50, 0.75};
  const std::size_t grid_size = std::size(bench::kCutoffGrid);
  const auto results = exp::sweep(
      std::size(alphas) * grid_size,
      [&](std::size_t i) {
        core::HybridConfig config;
        config.cutoff = bench::kCutoffGrid[i % grid_size];
        config.alpha = alphas[i / grid_size];
        return exp::run_hybrid(built, config);
      },
      bench::sweep_options(opts, "fig34"));
  for (std::size_t i = 0; i < results.size(); ++i) {
    const core::SimResult& r = results[i];
    const double a = r.mean_wait(0);
    const double c = r.mean_wait(2);
    table.row()
        .add(alphas[i / grid_size], 2)
        .add(bench::kCutoffGrid[i % grid_size])
        .add(a, 2)
        .add(r.mean_wait(1), 2)
        .add(c, 2)
        .add(r.overall().wait.mean(), 2)
        .add(c > 0.0 ? a / c : 1.0, 3);
  }
  bench::emit(table, opts);
  return 0;
}
