// R7 — raw speed of the event kernel's new data structures (DESIGN §13).
//
// Three measurements over deterministic workloads (min-of-R wall time,
// except where noted):
//
// 1. Hot loop: a combined event-kernel churn — pop/schedule on the pending
//    set plus a policy-driven pull extraction every 4th slot — run once on
//    the seed structures (binary-heap EventQueue + O(n) scan PullQueue) and
//    once on the fast ones (calendar queue + indexed γ-priority). Both runs
//    fold every popped (time, id) and extracted item into a checksum, which
//    must match exactly: the speedup only counts because the observable
//    behavior is identical. Gate: >= 2x events/sec.
// 2. Trace overhead: one fixed hybrid simulation with observability off vs
//    on (all categories), timing the run itself — rendering/export happens
//    at export time, outside the hot loop, which is the point of the binary
//    ring + deferred folding. The two arms run as back-to-back pairs and
//    the gate takes the median per-pair on/off ratio, because host clock
//    drift over the bench's runtime exceeds the true overhead and a
//    min-of-each-arm comparison bakes that drift into the ratio.
//    Gate: < 20% overhead.
// 3. The per-structure components (event queue alone, pull queue alone),
//    recorded as telemetry so regressions can be localized.
//
//   throughput [--rounds R] [--ops N] [--out FILE]
//
// Defaults: 7 rounds, 300000 hot-loop slots, out = BENCH_throughput.json.
// Exit 0 iff every gate passes; exit 1 on a timing-gate miss; exit 2 when
// any checksum disagrees (an exactness bug, never machine noise) — CI
// treats 2 as fatal even where timing gates are advisory.
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/pull_queue.hpp"
#include "des/event_queue.hpp"
#include "exp/cli.hpp"
#include "exp/scenario.hpp"
#include "runtime/run_reporter.hpp"
#include "sched/pull/policy.hpp"

namespace {

using namespace pushpull;

// Deterministic 64-bit LCG; no std RNG so the workload is identical across
// platforms and rounds.
struct Lcg {
  std::uint64_t state = 0x9E3779B97F4A7C15ULL;
  std::uint64_t next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state;
  }
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }
};

std::uint64_t mix(std::uint64_t h, std::uint64_t x) {
  h ^= x + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t bits_of(double x) {
  std::uint64_t b = 0;
  std::memcpy(&b, &x, sizeof(b));
  return b;
}

struct LoopResult {
  double ms = 0.0;
  std::uint64_t checksum = 0;
};

// The combined kernel churn: `ops` slots of pop + reschedule against a
// 2048-event pending set, with a pull extraction + re-add against a
// 768-item queue every 4th slot.
LoopResult hot_loop(des::EventQueueKind kind, core::PullQueue::SelectMode mode,
                    std::size_t ops) {
  constexpr std::size_t kPendingEvents = 2048;
  constexpr std::size_t kPullItems = 768;

  des::EventQueue queue(kind);
  core::PullQueue pull(mode);
  const auto policy = sched::make_pull_policy(sched::PullPolicyKind::kImportance,
                                              0.5);
  sched::PullContext ctx;

  Lcg rng;
  des::EventId next_id = 0;
  for (std::size_t i = 0; i < kPendingEvents; ++i) {
    queue.push(des::Event{rng.uniform01() * 10.0, next_id++, [] {}});
  }
  workload::RequestId next_req = 0;
  for (std::size_t i = 0; i < kPullItems; ++i) {
    workload::Request r;
    r.id = next_req++;
    r.item = static_cast<catalog::ItemId>(i);
    r.arrival = rng.uniform01();
    pull.add(r, /*priority=*/1.0 + rng.uniform01(),
             /*length=*/1.0 + rng.uniform01() * 3.0,
             /*popularity=*/rng.uniform01());
  }

  LoopResult out;
  const runtime::StopWatch watch;
  for (std::size_t i = 0; i < ops; ++i) {
    des::Event ev = queue.pop();
    out.checksum = mix(out.checksum, bits_of(ev.time));
    out.checksum = mix(out.checksum, ev.id);
    queue.push(des::Event{ev.time + 0.25 + rng.uniform01() * 4.0, next_id++,
                          [] {}});
    if (i % 4 == 0) {
      ctx.now = ev.time;
      auto entry = pull.extract_best(*policy, ctx);
      out.checksum = mix(out.checksum, entry ? entry->item : 0);
      if (entry) {
        workload::Request r;
        r.id = next_req++;
        r.item = entry->item;
        r.arrival = ev.time;
        pull.add(r, 1.0 + rng.uniform01(), entry->length, entry->popularity);
      }
    }
  }
  out.ms = watch.elapsed_ms();
  return out;
}

// Event-queue-only churn (telemetry): pop + reschedule.
LoopResult event_churn(des::EventQueueKind kind, std::size_t ops) {
  constexpr std::size_t kPending = 4096;
  des::EventQueue queue(kind);
  Lcg rng;
  des::EventId next_id = 0;
  for (std::size_t i = 0; i < kPending; ++i) {
    queue.push(des::Event{rng.uniform01() * 10.0, next_id++, [] {}});
  }
  LoopResult out;
  const runtime::StopWatch watch;
  for (std::size_t i = 0; i < ops; ++i) {
    des::Event ev = queue.pop();
    out.checksum = mix(out.checksum, bits_of(ev.time));
    out.checksum = mix(out.checksum, ev.id);
    queue.push(des::Event{ev.time + 0.25 + rng.uniform01() * 4.0, next_id++,
                          [] {}});
  }
  out.ms = watch.elapsed_ms();
  return out;
}

// Pull-queue-only churn (telemetry): extract_best + re-add.
LoopResult pull_churn(core::PullQueue::SelectMode mode, std::size_t ops) {
  constexpr std::size_t kItems = 768;
  core::PullQueue pull(mode);
  const auto policy = sched::make_pull_policy(sched::PullPolicyKind::kImportance,
                                              0.5);
  sched::PullContext ctx;
  Lcg rng;
  workload::RequestId next_req = 0;
  for (std::size_t i = 0; i < kItems; ++i) {
    workload::Request r;
    r.id = next_req++;
    r.item = static_cast<catalog::ItemId>(i);
    r.arrival = rng.uniform01();
    pull.add(r, 1.0 + rng.uniform01(), 1.0 + rng.uniform01() * 3.0,
             rng.uniform01());
  }
  LoopResult out;
  const runtime::StopWatch watch;
  for (std::size_t i = 0; i < ops; ++i) {
    ctx.now = static_cast<double>(i) * 0.01;
    auto entry = pull.extract_best(*policy, ctx);
    out.checksum = mix(out.checksum, entry ? entry->item : 0);
    if (entry) {
      workload::Request r;
      r.id = next_req++;
      r.item = entry->item;
      r.arrival = ctx.now;
      pull.add(r, 1.0 + rng.uniform01(), entry->length, entry->popularity);
    }
  }
  out.ms = watch.elapsed_ms();
  return out;
}

template <typename Fn>
LoopResult min_of(std::size_t rounds, Fn&& fn) {
  LoopResult best = fn();
  for (std::size_t r = 1; r < rounds; ++r) {
    const LoopResult run = fn();
    if (run.checksum != best.checksum) {
      std::cerr << "throughput: checksum varies across rounds\n";
      std::exit(2);
    }
    if (run.ms < best.ms) best = run;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pushpull;
  const exp::ArgParser args(argc, argv);
  const std::size_t rounds = args.get_size("rounds", 7);
  const std::size_t ops = args.get_size("ops", 300000);
  const std::string out_path =
      args.get_string("out", "BENCH_throughput.json");

  using des::EventQueueKind;
  using core::PullQueue;

  // 1. Combined hot loop, seed vs fast structures.
  const LoopResult hot_seed = min_of(rounds, [&] {
    return hot_loop(EventQueueKind::kBinaryHeap, PullQueue::SelectMode::kScan,
                    ops);
  });
  const LoopResult hot_fast = min_of(rounds, [&] {
    return hot_loop(EventQueueKind::kCalendar,
                    PullQueue::SelectMode::kIndexed, ops);
  });
  const bool hot_identical = hot_seed.checksum == hot_fast.checksum;
  const double eps_seed = static_cast<double>(ops) / (hot_seed.ms / 1000.0);
  const double eps_fast = static_cast<double>(ops) / (hot_fast.ms / 1000.0);
  const double speedup = hot_seed.ms / hot_fast.ms;

  // 2. Per-structure telemetry.
  const LoopResult eq_heap = min_of(rounds, [&] {
    return event_churn(EventQueueKind::kBinaryHeap, ops);
  });
  const LoopResult eq_cal = min_of(rounds, [&] {
    return event_churn(EventQueueKind::kCalendar, ops);
  });
  const LoopResult pq_scan = min_of(rounds, [&] {
    return pull_churn(PullQueue::SelectMode::kScan, ops / 4);
  });
  const LoopResult pq_indexed = min_of(rounds, [&] {
    return pull_churn(PullQueue::SelectMode::kIndexed, ops / 4);
  });
  const bool parts_identical = eq_heap.checksum == eq_cal.checksum &&
                               pq_scan.checksum == pq_indexed.checksum;

  // 3. Trace-enabled overhead of the full hybrid run. Export/report stay
  //    outside the timed region (deferred rendering is the design).
  exp::Scenario scenario;
  scenario.num_requests = args.get_size("requests", 120000);
  const auto built = scenario.build();
  core::HybridConfig obs_off;
  obs_off.cutoff = 30;
  obs_off.alpha = 0.5;
  core::HybridConfig obs_on = obs_off;
  obs_on.obs.enabled = true;
  // Machine throughput drifts over the bench's runtime by far more than
  // the true overhead, so the two arms are timed as back-to-back pairs
  // (order alternating to cancel first-runner bias) and the gate uses the
  // median per-pair ratio: drift within one ~100 ms pair is small, and
  // the median discards the pairs a background hiccup landed on.
  const auto timed_ms = [&](const core::HybridConfig& config) {
    const runtime::StopWatch watch;
    (void)exp::run_hybrid(built, config);
    return watch.elapsed_ms();
  };
  (void)timed_ms(obs_off);  // warm both paths (allocator, page cache)
  (void)timed_ms(obs_on);
  double off_ms = 0.0;
  double on_ms = 0.0;
  std::vector<double> ratios;
  ratios.reserve(rounds);
  for (std::size_t r = 0; r < rounds; ++r) {
    double off = 0.0;
    double on = 0.0;
    if (r % 2 == 0) {
      off = timed_ms(obs_off);
      on = timed_ms(obs_on);
    } else {
      on = timed_ms(obs_on);
      off = timed_ms(obs_off);
    }
    ratios.push_back(on / off);
    if (r == 0 || off < off_ms) off_ms = off;
    if (r == 0 || on < on_ms) on_ms = on;
  }
  std::sort(ratios.begin(), ratios.end());
  const double median_ratio = ratios[ratios.size() / 2];
  const double trace_pct = (median_ratio - 1.0) * 100.0;

  const bool pass_speedup = hot_identical && speedup >= 2.0;
  const bool pass_trace = trace_pct < 20.0;
  const bool pass = pass_speedup && pass_trace && parts_identical;

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "throughput: cannot open " << out_path << "\n";
    return 2;
  }
  out << "{\n"
      << "  \"bench\": \"throughput\",\n"
      << "  \"rounds\": " << rounds << ",\n"
      << "  \"ops\": " << ops << ",\n"
      << "  \"hot_loop\": {\n"
      << "    \"seed_ms\": " << hot_seed.ms << ",\n"
      << "    \"fast_ms\": " << hot_fast.ms << ",\n"
      << "    \"seed_events_per_sec\": " << eps_seed << ",\n"
      << "    \"fast_events_per_sec\": " << eps_fast << ",\n"
      << "    \"speedup\": " << speedup << ",\n"
      << "    \"bit_identical\": " << (hot_identical ? "true" : "false")
      << "\n  },\n"
      << "  \"event_queue\": {\n"
      << "    \"heap_ms\": " << eq_heap.ms << ",\n"
      << "    \"calendar_ms\": " << eq_cal.ms << ",\n"
      << "    \"bit_identical\": "
      << (eq_heap.checksum == eq_cal.checksum ? "true" : "false")
      << "\n  },\n"
      << "  \"pull_queue\": {\n"
      << "    \"scan_ms\": " << pq_scan.ms << ",\n"
      << "    \"indexed_ms\": " << pq_indexed.ms << ",\n"
      << "    \"bit_identical\": "
      << (pq_scan.checksum == pq_indexed.checksum ? "true" : "false")
      << "\n  },\n"
      << "  \"trace\": {\n"
      << "    \"baseline_ms\": " << off_ms << ",\n"
      << "    \"traced_ms\": " << on_ms << ",\n"
      << "    \"enabled_overhead_pct\": " << trace_pct << "\n  },\n"
      << "  \"pass_speedup\": " << (pass_speedup ? "true" : "false") << ",\n"
      << "  \"pass_trace_overhead\": " << (pass_trace ? "true" : "false")
      << ",\n"
      << "  \"pass\": " << (pass ? "true" : "false") << "\n}\n";

  std::cout << "hot loop: seed " << hot_seed.ms << " ms, fast " << hot_fast.ms
            << " ms (speedup " << speedup << "x, "
            << (hot_identical ? "bit-identical" : "DIVERGED") << ")\n"
            << "event queue: heap " << eq_heap.ms << " ms, calendar "
            << eq_cal.ms << " ms\n"
            << "pull queue: scan " << pq_scan.ms << " ms, indexed "
            << pq_indexed.ms << " ms\n"
            << "trace overhead: " << trace_pct << "% (baseline " << off_ms
            << " ms, traced " << on_ms << " ms)\n"
            << "wrote " << out_path << "\n";
  if (!hot_identical || !parts_identical) return 2;
  return pass ? 0 : 1;
}
