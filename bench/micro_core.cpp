// P1: micro-benchmarks of the hot paths — pull-queue operations, Zipf
// sampling, the event queue, and a full hybrid run.
#include <benchmark/benchmark.h>

#include "core/pull_queue.hpp"
#include "des/simulator.hpp"
#include "exp/scenario.hpp"
#include "rng/zipf.hpp"

namespace {

using namespace pushpull;

void BM_ZipfSample(benchmark::State& state) {
  rng::ZipfDistribution zipf(static_cast<std::size_t>(state.range(0)), 0.8);
  rng::Xoshiro256ss eng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(eng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(100)->Arg(10000);

void BM_PullQueueAddExtract(benchmark::State& state) {
  const auto policy = sched::make_pull_policy(
      sched::PullPolicyKind::kImportance, 0.5);
  rng::Xoshiro256ss eng(3);
  rng::ZipfDistribution zipf(static_cast<std::size_t>(state.range(0)), 0.8);
  for (auto _ : state) {
    core::PullQueue queue;
    for (std::uint64_t r = 0; r < 256; ++r) {
      workload::Request req;
      req.id = r;
      req.item = static_cast<catalog::ItemId>(zipf.sample(eng));
      req.arrival = static_cast<double>(r);
      queue.add(req, 1.0, 2.0, 0.01);
    }
    sched::PullContext ctx{256.0, 1.0};
    while (!queue.empty()) {
      benchmark::DoNotOptimize(queue.extract_best(*policy, ctx));
    }
  }
}
BENCHMARK(BM_PullQueueAddExtract)->Arg(100)->Arg(1000);

void BM_EventQueueChurn(benchmark::State& state) {
  for (auto _ : state) {
    des::Simulator sim;
    for (int i = 0; i < 1024; ++i) {
      sim.schedule_in(static_cast<double>((i * 37) % 101), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.dispatched_events());
  }
}
BENCHMARK(BM_EventQueueChurn);

void BM_HybridRun(benchmark::State& state) {
  exp::Scenario scenario;
  scenario.num_requests = static_cast<std::size_t>(state.range(0));
  const auto built = scenario.build();
  core::HybridConfig config;
  config.cutoff = 40;
  for (auto _ : state) {
    benchmark::DoNotOptimize(exp::run_hybrid(built, config));
  }
}
BENCHMARK(BM_HybridRun)->Arg(5000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
