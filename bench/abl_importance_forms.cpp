// A3 — ablation: the paper's Eq. 1 importance factor against its Eq. 6
// queue-aware generalization across the α sweep. Eq. 6 folds the expected
// number of queued copies (E[L_pull]·p_i) into both terms; this bench
// quantifies whether that refinement changes the QoS outcome.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pushpull;
  const auto opts = bench::parse_options(argc, argv);

  std::cout << "# Importance-factor forms: Eq. 1 vs Eq. 6, theta = 0.60, "
               "K = 20\n";
  const auto built = bench::paper_scenario(opts, 0.60).build();

  exp::Table table({"alpha", "form", "delay A", "delay B", "delay C",
                    "overall", "total cost"});
  for (double alpha : {0.0, 0.25, 0.50, 0.75, 1.0}) {
    for (auto kind : {sched::PullPolicyKind::kImportance,
                      sched::PullPolicyKind::kImportanceQueueAware}) {
      core::HybridConfig config;
      config.cutoff = 20;
      config.alpha = alpha;
      config.pull_policy = kind;
      const core::SimResult r = exp::run_hybrid(built, config);
      table.row()
          .add(alpha, 2)
          .add(std::string(kind == sched::PullPolicyKind::kImportance
                               ? "eq1"
                               : "eq6"))
          .add(r.mean_wait(0), 2)
          .add(r.mean_wait(1), 2)
          .add(r.mean_wait(2), 2)
          .add(r.overall().wait.mean(), 2)
          .add(r.total_prioritized_cost(built.population), 2);
    }
  }
  bench::emit(table, opts);
  return 0;
}
