// X8 — burstiness robustness: the paper assumes Poisson arrivals; real
// request streams arrive in flash crowds. Load-matched compound-Poisson
// sweeps of the batch size show how much delay the Poisson assumption
// hides and whether the importance policy's ranking over baselines
// survives burstiness.
#include <iostream>

#include "bench_common.hpp"
#include "workload/bursty_generator.hpp"

int main(int argc, char** argv) {
  using namespace pushpull;
  const auto opts = bench::parse_options(argc, argv);

  std::cout << "# Burstiness sweep (compound Poisson, aggregate rate 5), "
               "theta = 0.60, K = 20, alpha = 0.25\n";
  catalog::Catalog cat(100, 0.60, catalog::LengthModel::paper_default(),
                       opts.seed);
  const auto pop = workload::ClientPopulation::paper_default();

  exp::Table table({"batch mean", "policy", "delay A", "delay C", "overall",
                    "p99 C", "total cost"});
  for (double batch : {1.0, 2.0, 4.0, 8.0}) {
    workload::BurstyGenerator gen(cat, pop, 5.0, batch, opts.seed);
    const workload::Trace trace =
        workload::Trace::record(gen, opts.num_requests / 2);
    for (auto kind : {sched::PullPolicyKind::kImportance,
                      sched::PullPolicyKind::kFcfs}) {
      core::HybridConfig config;
      config.cutoff = 20;
      config.alpha = 0.25;
      config.pull_policy = kind;
      core::HybridServer server(cat, pop, config);
      const core::SimResult r = server.run(trace);
      table.row()
          .add(batch, 1)
          .add(std::string(sched::to_string(kind)))
          .add(r.mean_wait(0), 2)
          .add(r.mean_wait(2), 2)
          .add(r.overall().wait.mean(), 2)
          .add(r.per_class[2].wait_p99.value(), 2)
          .add(r.total_prioritized_cost(pop), 2);
    }
  }
  bench::emit(table, opts);
  return 0;
}
