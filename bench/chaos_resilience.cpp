// Robustness — degradation curves under server crashes, with and without
// the overload ladder.
//
// One grid over the paper's §5.1 scenario at elevated load: crash rate ×
// {ladder off, ladder on}, cold recovery. Each cell reports prioritized
// cost, per-class goodput, crash/storm/downtime totals and the highest
// ladder level reached, so the perf trajectory tracks *degradation
// curves*, not just fair-weather numbers.
//
//   chaos_resilience [--csv] [--requests N] [--seed S] [--jobs N]
//                    [--out FILE]
//
// Emits BENCH_resilience.json. Exit status checks one exact per-seed
// invariant: with the same stream, a higher crash rate can only shorten
// inter-crash gaps, so the crash count per cell must be monotone
// non-decreasing in the rate (at fixed ladder setting).
#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "resilience/overload.hpp"

namespace {

using namespace pushpull;

struct Cell {
  double crash_rate = 0.0;
  bool ladder = false;
  double cost = 0.0;
  std::vector<double> goodput;  // per class
  std::uint64_t crashes = 0;
  std::uint64_t storms = 0;
  double downtime = 0.0;
  std::uint64_t rejected = 0;
  resilience::OverloadLevel max_level = resilience::OverloadLevel::kNormal;
};

}  // namespace

int main(int argc, char** argv) {
  auto opts = bench::parse_options(argc, argv);
  std::string out_path = "BENCH_resilience.json";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--out" && i + 1 < argc) out_path = argv[i + 1];
  }

  // Elevated load so the ladder has something to degrade gracefully from;
  // the trace is shared across every cell (paired comparison).
  exp::Scenario scenario = bench::paper_scenario(opts, 0.60);
  scenario.arrival_rate = 8.0;
  const auto built = scenario.build();

  const std::vector<double> rate_grid = {0.0, 0.002, 0.005, 0.01, 0.02};
  const std::size_t cells = rate_grid.size() * 2;

  auto run_cell = [&](std::size_t i) {
    const double rate = rate_grid[i % rate_grid.size()];
    const bool ladder = i >= rate_grid.size();

    core::HybridConfig config;
    config.cutoff = 20;
    config.alpha = 0.5;
    config.resilience.crash.enabled = rate > 0.0;
    config.resilience.crash.rate = rate;
    config.resilience.crash.downtime = 30.0;
    config.resilience.crash.recovery = resilience::RecoveryMode::kCold;
    config.resilience.overload.enabled = ladder;
    config.resilience.overload.eval_interval = 5.0;
    config.resilience.overload.capacity_ref = 32;
    const core::SimResult r = exp::run_hybrid(built, config);

    Cell cell;
    cell.crash_rate = rate;
    cell.ladder = ladder;
    cell.cost = r.total_prioritized_cost(built.population);
    for (workload::ClassId c = 0; c < built.population.num_classes(); ++c) {
      cell.goodput.push_back(r.per_class[c].goodput_ratio());
    }
    cell.crashes = r.crashes;
    cell.storms = r.storm_rerequests;
    cell.downtime = r.total_downtime;
    cell.rejected = r.overall().rejected;
    cell.max_level = r.max_overload_level;
    return cell;
  };
  const auto grid =
      exp::sweep(cells, run_cell, bench::sweep_options(opts, "resilience"));

  exp::Table table({"crash rate", "ladder", "p-cost", "goodput A",
                    "goodput B", "goodput C", "crashes", "storms",
                    "downtime", "rejected", "max level"});
  for (const auto& cell : grid) {
    table.row()
        .add(cell.crash_rate, 3)
        .add(std::string(cell.ladder ? "on" : "off"))
        .add(cell.cost, 1)
        .add(cell.goodput[0], 4)
        .add(cell.goodput[1], 4)
        .add(cell.goodput[2], 4)
        .add(static_cast<std::size_t>(cell.crashes))
        .add(static_cast<std::size_t>(cell.storms))
        .add(cell.downtime, 1)
        .add(static_cast<std::size_t>(cell.rejected))
        .add(std::string(resilience::to_string(cell.max_level)));
  }
  bench::emit(table, opts);

  // Exact per-seed check: at fixed ladder setting, the crash count must be
  // monotone non-decreasing in the crash rate (a higher rate uniformly
  // shrinks the same stream's inter-crash gaps).
  bool crashes_monotone = true;
  for (std::size_t half = 0; half < 2; ++half) {
    const std::size_t base = half * rate_grid.size();
    for (std::size_t i = 1; i < rate_grid.size(); ++i) {
      if (grid[base + i].crashes < grid[base + i - 1].crashes) {
        crashes_monotone = false;
      }
    }
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "chaos_resilience: cannot open " << out_path << "\n";
    return 2;
  }
  out << "{\n  \"bench\": \"chaos_resilience\",\n"
      << "  \"requests\": " << scenario.num_requests << ",\n"
      << "  \"arrival_rate\": " << scenario.arrival_rate << ",\n"
      << "  \"grid\": [\n";
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto& cell = grid[i];
    out << "    {\"crash_rate\": " << cell.crash_rate << ", \"ladder\": "
        << (cell.ladder ? "true" : "false") << ", \"cost\": " << cell.cost
        << ", \"goodput\": [" << cell.goodput[0] << ", " << cell.goodput[1]
        << ", " << cell.goodput[2] << "], \"crashes\": " << cell.crashes
        << ", \"storms\": " << cell.storms << ", \"downtime\": "
        << cell.downtime << ", \"rejected\": " << cell.rejected
        << ", \"max_level\": \"" << resilience::to_string(cell.max_level)
        << "\"}" << (i + 1 < grid.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"crashes_monotone_in_rate\": "
      << (crashes_monotone ? "true" : "false") << "\n}\n";

  std::cout << "crash counts "
            << (crashes_monotone ? "monotone" : "NOT MONOTONE")
            << " in crash rate; wrote " << out_path << "\n";
  return crashes_monotone ? 0 : 1;
}
