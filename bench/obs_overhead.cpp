// O1 — cost of the observability layer (src/obs/).
//
// Runs one fixed simulation three ways — observer off (baseline), observer
// off again (noise floor), observer on with every category — taking the
// min-of-R wall time of each, verifies the simulation numbers are
// bit-identical in all three, and writes BENCH_obs.json.
//
// The pass gate is the DISABLED path: instrumentation nobody turned on must
// cost nothing measurable, so the two obs-off timings have to agree within
// 2%. (Both runs execute the same per-site null check; any spread between
// them is machine noise, which is exactly the bound the claim "disabled
// tracing is free" has to clear.) The obs-on timing is recorded as
// telemetry, not gated — it pays for real work.
//
//   obs_overhead [--rounds R] [--requests N] [--out FILE]
//
// Defaults: 5 rounds, 40000 requests, out = BENCH_obs.json.
#include <fstream>
#include <iostream>
#include <string>

#include "exp/cli.hpp"
#include "exp/scenario.hpp"
#include "obs/profile.hpp"
#include "runtime/run_reporter.hpp"

int main(int argc, char** argv) {
  using namespace pushpull;
  const exp::ArgParser args(argc, argv);
  const std::size_t rounds = args.get_size("rounds", 5);
  const std::string out_path = args.get_string("out", "BENCH_obs.json");

  exp::Scenario scenario;
  scenario.num_requests = args.get_size("requests", 40000);
  const auto built = scenario.build();

  core::HybridConfig off;
  off.cutoff = 30;
  off.alpha = 0.5;
  core::HybridConfig on = off;
  on.obs.enabled = true;

  obs::Profiler profiler;
  const auto time_min = [&](const core::HybridConfig& config,
                            const char* label, core::SimResult* result) {
    double best = 0.0;
    for (std::size_t r = 0; r < rounds; ++r) {
      const obs::ProfileScope scope(&profiler, label);
      const runtime::StopWatch watch;
      core::SimResult run = exp::run_hybrid(built, config);
      const double ms = watch.elapsed_ms();
      if (r == 0 || ms < best) best = ms;
      if (result != nullptr && r == 0) *result = run;
    }
    return best;
  };

  core::SimResult r_off;
  core::SimResult r_off2;
  core::SimResult r_on;
  const double off_ms = time_min(off, "run.baseline", &r_off);
  const double off2_ms = time_min(off, "run.noise_floor", &r_off2);
  const double on_ms = time_min(on, "run.traced", &r_on);

  // Bit-exact invariant: observation is write-only, so the observer's
  // presence (on or off) must be invisible in every simulation number.
  const auto same = [&](const core::SimResult& a, const core::SimResult& b) {
    return a.overall().wait.mean() == b.overall().wait.mean() &&
           a.total_prioritized_cost(built.population) ==
               b.total_prioritized_cost(built.population) &&
           a.push_transmissions == b.push_transmissions &&
           a.pull_transmissions == b.pull_transmissions;
  };
  const bool identical = same(r_off, r_off2) && same(r_off, r_on);

  const double disabled_pct =
      off_ms > 0.0 ? (off2_ms - off_ms) / off_ms * 100.0 : 0.0;
  const double enabled_pct =
      off_ms > 0.0 ? (on_ms - off_ms) / off_ms * 100.0 : 0.0;
  const bool pass = identical && disabled_pct <= 2.0;

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "obs_overhead: cannot open " << out_path << "\n";
    return 2;
  }
  out << "{\n"
      << "  \"bench\": \"obs_overhead\",\n"
      << "  \"rounds\": " << rounds << ",\n"
      << "  \"requests\": " << scenario.num_requests << ",\n"
      << "  \"baseline_ms\": " << off_ms << ",\n"
      << "  \"noise_floor_ms\": " << off2_ms << ",\n"
      << "  \"traced_ms\": " << on_ms << ",\n"
      << "  \"disabled_overhead_pct\": " << disabled_pct << ",\n"
      << "  \"enabled_overhead_pct\": " << enabled_pct << ",\n"
      << "  \"bit_identical\": " << (identical ? "true" : "false") << ",\n"
      << "  \"pass\": " << (pass ? "true" : "false") << ",\n"
      << "  \"scopes\": [";
  const auto rows = profiler.rows();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    out << (i ? "," : "") << "\n    {\"name\": \"" << rows[i].first
        << "\", \"calls\": " << rows[i].second.calls
        << ", \"total_ms\": " << rows[i].second.total_ms << "}";
  }
  out << "\n  ]\n}\n";

  std::cout << "baseline " << off_ms << " ms, noise floor " << off2_ms
            << " ms (disabled overhead " << disabled_pct << "%), traced "
            << on_ms << " ms (enabled overhead " << enabled_pct
            << "%), numbers "
            << (identical ? "bit-identical" : "DIVERGED") << "\n"
            << "wrote " << out_path << "\n";
  return pass ? 0 : 1;
}
