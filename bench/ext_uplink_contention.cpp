// X6 — back-channel contention: pull requests must first win a slotted-
// ALOHA uplink before the server hears them; push requests need no uplink
// at all (the client just tunes in). A larger push set therefore does
// double duty under uplink congestion: it answers more requests from the
// broadcast AND thins the uplink contention for the remaining pulls. This
// bench scans the cutoff at several request rates and reports the
// end-to-end (generation → delivery) prioritized cost, showing the optimal
// cutoff climbing as the back-channel saturates — the asymmetry argument
// of the hybrid-broadcast literature made quantitative.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "uplink/slotted_aloha.hpp"

namespace {

using namespace pushpull;

struct EndToEnd {
  double cost = 0.0;          // Σ q_c · mean end-to-end delay of class c
  double uplink_delay = 0.0;  // mean uplink delay of pull requests
  double collision_ratio = 0.0;
};

/// Splits the trace at `cutoff`, contends the pull half on the uplink,
/// replays the merged stream, and prices delays from the *generation*
/// instants.
EndToEnd evaluate(const exp::Scenario::Built& built, std::size_t cutoff,
                  const uplink::AlohaConfig& aloha) {
  // Generation instants by request id (ids are dense in scenario traces).
  std::vector<double> generated(built.trace.size());
  std::vector<workload::Request> push_part;
  std::vector<workload::Request> pull_part;
  for (const auto& r : built.trace.requests()) {
    generated[r.id] = r.arrival;
    (r.item < cutoff ? push_part : pull_part).push_back(r);
  }

  // Only the pull half contends.
  uplink::AlohaResult contended =
      uplink::simulate_uplink(workload::Trace(std::move(pull_part)), aloha);

  // Merge the direct (push) and delayed (pull) streams.
  std::vector<workload::Request> merged = std::move(push_part);
  const auto delayed = contended.delayed_trace.requests();
  merged.insert(merged.end(), delayed.begin(), delayed.end());
  std::sort(merged.begin(), merged.end(),
            [](const workload::Request& a, const workload::Request& b) {
              return a.arrival < b.arrival;
            });

  core::HybridConfig config;
  config.cutoff = cutoff;
  config.alpha = 0.25;
  core::HybridServer server(built.catalog, built.population, config);
  // The server measures waits from its own arrival instants; add the
  // uplink component per class by re-pricing from generation instants.
  std::vector<double> uplink_delay_sum(built.population.num_classes(), 0.0);
  std::vector<std::uint64_t> class_count(built.population.num_classes(), 0);
  for (const auto& r : built.trace.requests()) ++class_count[r.cls];
  for (const auto& r : delayed) {
    uplink_delay_sum[r.cls] += r.arrival - generated[r.id];
  }

  const core::SimResult result = server.run(workload::Trace(std::move(merged)));

  EndToEnd out;
  out.uplink_delay = contended.mean_uplink_delay;
  out.collision_ratio = contended.collision_ratio();
  for (workload::ClassId c = 0; c < built.population.num_classes(); ++c) {
    const double downlink = result.mean_wait(c);
    const double uplink_mean =
        class_count[c] ? uplink_delay_sum[c] /
                             static_cast<double>(class_count[c])
                       : 0.0;
    out.cost += built.population.priority(c) * (downlink + uplink_mean);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);

  std::cout << "# Uplink contention (stabilized slotted ALOHA, slot 0.1), "
               "theta = 0.60, alpha = 0.25, end-to-end prioritized cost\n";
  exp::Table table({"rate", "K", "uplink delay", "collision %",
                    "end-to-end cost"});
  for (double rate : {2.0, 5.0, 8.0}) {
    exp::Scenario scenario = bench::paper_scenario(opts, 0.60);
    scenario.arrival_rate = rate;
    scenario.num_requests = opts.num_requests / 3;
    const auto built = scenario.build();

    uplink::AlohaConfig aloha;
    aloha.slot_duration = 0.1;
    aloha.retry_probability = 0.1;
    aloha.seed = opts.seed;

    std::size_t best_k = 0;
    double best_cost = 0.0;
    bool first = true;
    for (std::size_t k : {std::size_t{0}, std::size_t{20}, std::size_t{40},
                          std::size_t{60}, std::size_t{80},
                          std::size_t{100}}) {
      const EndToEnd e2e = evaluate(built, k, aloha);
      table.row()
          .add(rate, 1)
          .add(k)
          .add(e2e.uplink_delay, 2)
          .add(100.0 * e2e.collision_ratio, 1)
          .add(e2e.cost, 2);
      if (first || e2e.cost < best_cost) {
        best_cost = e2e.cost;
        best_k = k;
        first = false;
      }
    }
    std::cout << "# rate " << rate << ": end-to-end optimal cutoff K* = "
              << best_k << " (cost " << best_cost << ")\n";
  }
  bench::emit(table, opts);
  return 0;
}
