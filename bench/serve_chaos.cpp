// R5 — live failure-model degradation sweep (see EXPERIMENTS.md).
//
// Drives the completion-queue server (accelerated virtual clock, so every
// point is seeded and bit-reproducible) through the full failure model —
// per-class deadlines, the Gilbert-Elliott channel with bounded retries,
// the bounded queue with priority shedding, and the overload ladder —
// across a range of offered loads, and reports achieved QPS, the ladder
// level each load reached, and per-class timeout/retry/shed rates and
// p95/p99 waits. Results land in BENCH_serve_chaos.json so the live
// degradation trajectory is tracked across PRs.
//
// Exit gate (the paper's differentiated-QoS promise under failure): at
// every load, a higher-priority class never sees a worse total failure
// rate — (timed_out + shed + rejected + lost) / arrived — than a
// lower-priority one. Totals, not just timeouts: the ladder deliberately
// converts low-class timeouts into sheds and uplink rejections, so a
// timeout-only comparison would read deliberate sacrifice as priority
// inversion. Rates are compared exactly via cross-multiplication — no
// float thresholds.
//
//   serve_chaos [--duration T] [--seed S] [--out FILE]
//
// Defaults: 200 broadcast units per point, seed 20050614,
// out = BENCH_serve_chaos.json.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "exp/cli.hpp"
#include "exp/table.hpp"
#include "obs/export.hpp"
#include "serve/serve.hpp"

namespace {

using namespace pushpull;

struct Point {
  double target_qps = 0.0;
  serve::ServeReport report;
  bool qos_ordered = false;
};

std::uint64_t failures(const metrics::ClassStats& s) {
  return s.abandoned + s.shed + s.rejected + s.lost;
}

/// fail_rate(c) <= fail_rate(c+1) for every adjacent class pair, compared
/// exactly: failures[c] * arrived[c+1] <= failures[c+1] * arrived[c].
/// Classes with no arrivals never violate the gate.
bool failure_rates_ordered(const std::vector<metrics::ClassStats>& stats) {
  for (std::size_t c = 0; c + 1 < stats.size(); ++c) {
    const auto& hi = stats[c];      // higher priority (priorities are N..1)
    const auto& lo = stats[c + 1];
    if (hi.arrived == 0 || lo.arrived == 0) continue;
    if (failures(hi) * lo.arrived > failures(lo) * hi.arrived) return false;
  }
  return true;
}

double rate(std::uint64_t part, std::uint64_t whole) {
  return whole == 0 ? 0.0
                    : static_cast<double>(part) / static_cast<double>(whole);
}

Point run_point(const serve::ServeConfig& config) {
  const auto cat = config.build_catalog();
  const auto pop = config.build_population();
  serve::LoadDriver driver(cat, pop, config.target_qps, config.duration,
                           config.seed);
  serve::LiveServer server(cat, pop, config);
  Point p;
  p.target_qps = config.target_qps;
  p.report = server.run_accelerated(driver, nullptr);
  p.qos_ordered = failure_rates_ordered(p.report.per_class);
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const exp::ArgParser args(argc, argv);
  const double duration = args.get_positive_double("duration", 200.0);
  const std::uint64_t seed = args.get_u64("seed", 20050614);
  const std::string out_path = args.get_string("out", "BENCH_serve_chaos.json");

  // Uniform deadlines (no per-class scales): any per-class failure skew is
  // the scheduler's and ladder's priority treatment, which is exactly what
  // the gate certifies.
  const std::vector<double> sweep = {4.0, 8.0, 14.0, 22.0};
  std::vector<Point> points;
  for (const double qps : sweep) {
    serve::ServeConfig config;
    config.accelerated = true;
    config.duration = duration;
    config.target_qps = qps;
    config.seed = seed;
    config.mean_deadline = 6.0;
    config.fault.enabled = true;
    config.fault.channel.p_good_to_bad = 0.05;
    config.fault.channel.p_bad_to_good = 0.25;
    config.fault.channel.corrupt_bad = 0.6;
    config.fault.channel.corrupt_good = 0.01;
    config.fault.queue_capacity = 32;
    config.fault.shed_policy = fault::ShedPolicy::kDropLowestPriority;
    config.overload.enabled = true;
    points.push_back(run_point(config));
  }

  exp::Table table({"target qps", "achieved", "ladder", "fail c0/c1/c2",
                    "retry", "shed", "qos"});
  for (const Point& p : points) {
    const auto& r = p.report;
    auto& row = table.row();
    row.add(p.target_qps, 1).add(r.achieved_qps, 3);
    row.add(static_cast<std::size_t>(r.max_overload_level));
    std::string fails;
    for (std::size_t c = 0; c < r.per_class.size(); ++c) {
      fails += (c ? "/" : "");
      char buf[16];
      std::snprintf(buf, sizeof buf, "%.3f",
                    rate(failures(r.per_class[c]), r.per_class[c].arrived));
      fails += buf;
    }
    row.add(fails);
    row.add(rate(r.retries, r.arrivals), 3);
    row.add(rate(r.shed, r.arrivals), 3);
    row.add(p.qos_ordered ? "ordered" : "INVERTED");
  }
  table.print(std::cout);

  bool all_ordered = true;
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "serve_chaos: cannot open " << out_path << "\n";
    return 2;
  }
  out << "{\n  \"bench\": \"serve_chaos\",\n  \"duration\": "
      << obs::render_number(duration) << ",\n  \"seed\": " << seed
      << ",\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    const auto& r = p.report;
    out << "    {\"target_qps\": " << obs::render_number(p.target_qps)
        << ", \"achieved_qps\": " << obs::render_number(r.achieved_qps)
        << ", \"arrivals\": " << r.arrivals << ", \"served\": " << r.served
        << ", \"timed_out\": " << r.timed_out
        << ", \"retries\": " << r.retries << ", \"shed\": " << r.shed
        << ", \"lost\": " << r.lost << ", \"rejected\": " << r.rejected
        << ", \"max_overload_level\": "
        << static_cast<int>(r.max_overload_level)
        << ", \"ladder_transitions\": " << r.ladder_transitions
        << ", \"qos_ordered\": " << (p.qos_ordered ? "true" : "false")
        << ", \"classes\": [";
    for (std::size_t c = 0; c < r.per_class.size(); ++c) {
      const auto& cls = r.per_class[c];
      out << (c == 0 ? "" : ", ") << "{\"arrived\": " << cls.arrived
          << ", \"timed_out\": " << cls.abandoned
          << ", \"retries\": " << cls.retries << ", \"shed\": " << cls.shed
          << ", \"rejected\": " << cls.rejected << ", \"lost\": " << cls.lost
          << ", \"fail_rate\": "
          << obs::render_number(rate(failures(cls), cls.arrived))
          << ", \"p95\": "
          << obs::render_number(
                 cls.wait_p95.count() > 0 ? cls.wait_p95.value() : 0.0)
          << ", \"p99\": "
          << obs::render_number(
                 cls.wait_p99.count() > 0 ? cls.wait_p99.value() : 0.0)
          << "}";
    }
    out << "]}" << (i + 1 < points.size() ? "," : "") << "\n";
    all_ordered = all_ordered && p.qos_ordered;
  }
  out << "  ],\n  \"qos_gate\": " << (all_ordered ? "true" : "false")
      << "\n}\n";

  std::cout << "wrote " << out_path << " ("
            << (all_ordered ? "QoS ordering holds at every load"
                            : "QOS ORDERING INVERTED")
      << ")\n";
  return all_ordered ? 0 : 1;
}
