// F3 — Figure 3: per-class expected delay vs. cutoff point K at α = 0
// (pure priority selection), for every access skew θ in the paper's grid.
//
// Paper claims to check: delay is worst at small K; Class-A stays the
// fastest class, Class-C the slowest; the bands separate clearly at α = 0.
#include <iostream>

#include "bench_common.hpp"
#include "metrics/float_compare.hpp"

int main(int argc, char** argv) {
  using namespace pushpull;
  const auto opts = bench::parse_options(argc, argv);

  std::cout << "# Figure 3 — delay vs cutoff, alpha = 0.0 (priority-only "
               "pull selection)\n";
  exp::Table table({"theta", "K", "delay A", "delay B", "delay C", "overall"});
  exp::PlotSpec plot;
  plot.title = "Fig. 3 - delay vs cutoff, alpha = 0 (theta = 0.60)";
  plot.xlabel = "cutoff K";
  plot.ylabel = "mean delay (broadcast units)";
  plot.series = {{"class A", {}}, {"class B", {}}, {"class C", {}}};
  for (double theta : {0.20, 0.60, 1.00, 1.40}) {
    const auto built = bench::paper_scenario(opts, theta).build();
    // All cutoffs of one theta run concurrently against the shared trace;
    // results come back in grid order, so the table is jobs-independent.
    const auto results = exp::sweep(
        std::size(bench::kCutoffGrid),
        [&](std::size_t i) {
          core::HybridConfig config;
          config.cutoff = bench::kCutoffGrid[i];
          config.alpha = 0.0;
          return exp::run_hybrid(built, config);
        },
        bench::sweep_options(opts, "fig3"));
    for (std::size_t i = 0; i < results.size(); ++i) {
      const std::size_t k = bench::kCutoffGrid[i];
      const core::SimResult& r = results[i];
      table.row()
          .add(theta, 2)
          .add(k)
          .add(r.mean_wait(0), 2)
          .add(r.mean_wait(1), 2)
          .add(r.mean_wait(2), 2)
          .add(r.overall().wait.mean(), 2);
      // Grid values come from the same literal list, so bit-exact match
      // is the right selector (approved helper, detlint D4).
      if (metrics::exactly_equal(theta, 0.60)) {
        const auto x = static_cast<double>(k);
        plot.series[0].points.emplace_back(x, r.mean_wait(0));
        plot.series[1].points.emplace_back(x, r.mean_wait(1));
        plot.series[2].points.emplace_back(x, r.mean_wait(2));
      }
    }
  }
  bench::emit(table, opts);
  if (!opts.plot_prefix.empty()) {
    exp::write_gnuplot(opts.plot_prefix, plot);
    std::cout << "# wrote " << opts.plot_prefix << ".dat/.gp\n";
  }
  return 0;
}
