// X5 — client-side caching: how terminal memory offloads the hybrid
// downlink. Sweeps the per-client LRU capacity; requests hitting the local
// cache never reach the server, so both the offered load and the delay of
// the surviving requests drop.
// A second-order effect worth watching in the output: caches absorb mostly
// *hot*-item demand, so the surviving miss stream is flatter than the
// catalog's Zipf — at a fixed cutoff the per-request delay can rise even
// as total load falls (cache filtering). The K* column shows the operator
// response: re-optimize the cutoff for the filtered stream.
#include <iostream>

#include "bench_common.hpp"
#include "core/cutoff_optimizer.hpp"
#include "workload/cached_generator.hpp"

int main(int argc, char** argv) {
  using namespace pushpull;
  const auto opts = bench::parse_options(argc, argv);

  std::cout << "# Client cache sweep, theta = 0.90, K = 20, alpha = 0.25, "
               "60 clients\n";
  catalog::Catalog cat(100, 0.90, catalog::LengthModel::paper_default(),
                       opts.seed);
  const auto pop = workload::ClientPopulation::paper_default();

  exp::Table table({"cache cap", "hit ratio", "server load", "delay A",
                    "delay C", "overall", "total cost", "K*",
                    "cost @ K*"});
  for (std::size_t capacity : {std::size_t{0}, std::size_t{2}, std::size_t{5},
                               std::size_t{10}, std::size_t{20}}) {
    workload::CachedRequestGenerator gen(cat, pop, 5.0, std::size_t{60},
                                         capacity, opts.seed);
    // Fixed *demand* volume; the emitted (miss) trace shrinks with capacity.
    const std::size_t demand_target = opts.num_requests / 2;
    std::vector<workload::Request> misses;
    while (gen.demands() < demand_target) misses.push_back(gen.next());
    const workload::Trace trace(std::move(misses));

    core::HybridConfig config;
    config.cutoff = 20;
    config.alpha = 0.25;
    core::HybridServer server(cat, pop, config);
    const core::SimResult r = server.run(trace);

    const auto scan = core::scan_cutoffs(0, 100, 10, [&](std::size_t k) {
      core::HybridConfig candidate = config;
      candidate.cutoff = k;
      core::HybridServer candidate_server(cat, pop, candidate);
      return candidate_server.run(trace).total_prioritized_cost(pop);
    });

    table.row()
        .add(capacity)
        .add(gen.hit_ratio(), 3)
        .add(static_cast<std::size_t>(trace.size()))
        .add(r.mean_wait(0), 2)
        .add(r.mean_wait(2), 2)
        .add(r.overall().wait.mean(), 2)
        .add(r.total_prioritized_cost(pop), 2)
        .add(scan.best_cutoff)
        .add(scan.best_cost, 2);
  }
  bench::emit(table, opts);
  return 0;
}
