// X2 — blocking vs. per-class bandwidth share (the abstract's claim:
// "the number of requests dropped [can be minimized] by assigning an
// appropriate fraction of available bandwidth" to the premium class).
//
// A constrained channel is swept over Class-A bandwidth fractions; the
// output shows premium blocking driven toward zero as its share grows,
// while lower classes absorb the loss.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pushpull;
  const auto opts = bench::parse_options(argc, argv);

  std::cout << "# Blocking vs premium bandwidth share, theta = 0.60, "
               "K = 10, total bandwidth = 5, mean demand = 2\n";
  const auto built = bench::paper_scenario(opts, 0.60).build();

  exp::Table table({"A share", "block A", "block B", "block C",
                    "blocked total", "served total"});
  for (double share_a : {0.10, 0.20, 1.0 / 3.0, 0.50, 0.70, 0.85}) {
    core::HybridConfig config;
    config.cutoff = 10;
    config.alpha = 0.0;
    config.total_bandwidth = 5.0;
    config.mean_bandwidth_demand = 2.0;
    const double rest = (1.0 - share_a) / 2.0;
    config.bandwidth_fractions = {share_a, rest, rest};
    const core::SimResult r = exp::run_hybrid(built, config);
    table.row()
        .add(share_a, 2)
        .add(r.per_class[0].blocking_ratio(), 4)
        .add(r.per_class[1].blocking_ratio(), 4)
        .add(r.per_class[2].blocking_ratio(), 4)
        .add(static_cast<std::size_t>(r.overall().blocked))
        .add(static_cast<std::size_t>(r.overall().served));
  }
  bench::emit(table, opts);
  return 0;
}
