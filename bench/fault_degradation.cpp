// Robustness — graceful degradation under an unreliable downlink.
//
// Two sweeps over the paper's §5.1 scenario:
//
//  1. Channel sweep: fix the Gilbert–Elliott recovery/corruption parameters
//     and raise the good→bad transition probability, so the stationary
//     bad-state fraction grows. Reports per-class mean delay and goodput
//     (served / settled) — the QoS ordering A < B < C must survive the
//     noise, which is the robustness claim this bench tracks.
//
//  2. Load sweep: bound the pull queue and raise the offered load; the shed
//     count must be monotone non-decreasing in load (checked, and the
//     result recorded in the JSON).
//
//   fault_degradation [--csv] [--requests N] [--seed S] [--jobs N]
//                     [--out FILE]
//
// Emits BENCH_fault.json with both series for cross-PR tracking.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "exp/cli.hpp"

namespace {

using namespace pushpull;

struct ChannelPoint {
  double p_gb = 0.0;
  double stationary_bad = 0.0;
  std::vector<double> delay;    // per class
  std::vector<double> goodput;  // per class
  std::uint64_t lost = 0;
};

struct LoadPoint {
  double rate = 0.0;
  std::uint64_t shed = 0;
  std::uint64_t served = 0;
  double delay = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  auto opts = bench::parse_options(argc, argv);
  std::string out_path = "BENCH_fault.json";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--out" && i + 1 < argc) out_path = argv[i + 1];
  }

  const exp::Scenario scenario = bench::paper_scenario(opts, 0.60);
  const auto built = scenario.build();

  // --- sweep 1: bad-state probability grid --------------------------------
  const std::vector<double> p_gb_grid = {0.0, 0.02, 0.05, 0.10, 0.20, 0.40};
  auto channel_point = [&](std::size_t i) {
    core::HybridConfig config;
    config.cutoff = 40;
    config.alpha = 0.5;
    config.fault.enabled = true;
    config.fault.channel.p_good_to_bad = p_gb_grid[i];
    config.fault.channel.p_bad_to_good = 0.30;
    config.fault.channel.corrupt_good = 0.0;
    config.fault.channel.corrupt_bad = 0.75;
    config.fault.retry.max_retries = 3;
    const core::SimResult r = exp::run_hybrid(built, config);

    ChannelPoint point;
    point.p_gb = p_gb_grid[i];
    point.stationary_bad = config.fault.channel.stationary_bad();
    for (workload::ClassId c = 0; c < built.population.num_classes(); ++c) {
      point.delay.push_back(r.per_class[c].wait.mean());
      point.goodput.push_back(r.per_class[c].goodput_ratio());
    }
    point.lost = r.overall().lost;
    return point;
  };
  const auto channel_series =
      exp::sweep(p_gb_grid.size(), channel_point,
                 bench::sweep_options(opts, "fault-channel"));

  exp::Table channel_table({"p(g->b)", "stationary bad", "delay A", "delay B",
                            "delay C", "goodput A", "goodput B", "goodput C",
                            "lost"});
  for (const auto& p : channel_series) {
    channel_table.row()
        .add(p.p_gb, 2)
        .add(p.stationary_bad, 3)
        .add(p.delay[0], 2)
        .add(p.delay[1], 2)
        .add(p.delay[2], 2)
        .add(p.goodput[0], 4)
        .add(p.goodput[1], 4)
        .add(p.goodput[2], 4)
        .add(static_cast<std::size_t>(p.lost));
  }
  bench::emit(channel_table, opts);

  // --- sweep 2: offered load vs shedding ----------------------------------
  const std::vector<double> rate_grid = {2.0, 4.0, 6.0, 8.0, 10.0};
  auto load_point = [&](std::size_t i) {
    exp::Scenario s = scenario;
    s.arrival_rate = rate_grid[i];
    const auto loaded = s.build();
    core::HybridConfig config;
    config.cutoff = 0;  // pure pull stresses the bounded queue hardest
    config.alpha = 0.5;
    config.fault.queue_capacity = 8;
    config.fault.shed_policy = fault::ShedPolicy::kDropTail;
    const core::SimResult r = exp::run_hybrid(loaded, config);

    LoadPoint point;
    point.rate = rate_grid[i];
    point.shed = r.overall().shed;
    point.served = r.overall().served;
    point.delay = r.overall().wait.mean();
    return point;
  };
  const auto load_series = exp::sweep(rate_grid.size(), load_point,
                                      bench::sweep_options(opts, "fault-load"));

  exp::Table load_table({"rate", "shed", "served", "mean delay"});
  for (const auto& p : load_series) {
    load_table.row()
        .add(p.rate, 1)
        .add(static_cast<std::size_t>(p.shed))
        .add(static_cast<std::size_t>(p.served))
        .add(p.delay, 2);
  }
  bench::emit(load_table, opts);

  const bool shed_monotone = std::is_sorted(
      load_series.begin(), load_series.end(),
      [](const LoadPoint& a, const LoadPoint& b) { return a.shed < b.shed; });

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "fault_degradation: cannot open " << out_path << "\n";
    return 2;
  }
  out << "{\n  \"bench\": \"fault_degradation\",\n"
      << "  \"requests\": " << scenario.num_requests << ",\n"
      << "  \"channel_sweep\": [\n";
  for (std::size_t i = 0; i < channel_series.size(); ++i) {
    const auto& p = channel_series[i];
    out << "    {\"p_gb\": " << p.p_gb
        << ", \"stationary_bad\": " << p.stationary_bad << ", \"delay\": ["
        << p.delay[0] << ", " << p.delay[1] << ", " << p.delay[2]
        << "], \"goodput\": [" << p.goodput[0] << ", " << p.goodput[1] << ", "
        << p.goodput[2] << "], \"lost\": " << p.lost << "}"
        << (i + 1 < channel_series.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"load_sweep\": [\n";
  for (std::size_t i = 0; i < load_series.size(); ++i) {
    const auto& p = load_series[i];
    out << "    {\"rate\": " << p.rate << ", \"shed\": " << p.shed
        << ", \"served\": " << p.served << ", \"delay\": " << p.delay << "}"
        << (i + 1 < load_series.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"shed_monotone_in_load\": "
      << (shed_monotone ? "true" : "false") << "\n}\n";

  std::cout << "shed counts " << (shed_monotone ? "monotone" : "NOT MONOTONE")
            << " in offered load; wrote " << out_path << "\n";
  return shed_monotone ? 0 : 1;
}
