// X9 — closed-loop population scaling: the paper's finite-C client model.
// Open-loop Poisson load either under- or over-runs the channel; a closed
// loop self-limits, so throughput saturates at the channel capacity and
// delay grows smoothly with C. This bench sweeps the population size and
// reports throughput, per-class delay and the premium advantage.
#include <iostream>

#include "bench_common.hpp"
#include "core/closed_loop.hpp"

int main(int argc, char** argv) {
  using namespace pushpull;
  const auto opts = bench::parse_options(argc, argv);

  std::cout << "# Closed-loop population sweep, theta = 0.60, K = 15, "
               "alpha = 0.25, think rate 0.05\n";
  catalog::Catalog cat(100, 0.60, catalog::LengthModel::paper_default(),
                       opts.seed);
  const auto pop = workload::ClientPopulation::paper_default();

  exp::Table table({"clients", "throughput", "delay A", "delay B", "delay C",
                    "A/C ratio"});
  for (std::size_t clients : {std::size_t{10}, std::size_t{25},
                              std::size_t{50}, std::size_t{100},
                              std::size_t{200}, std::size_t{400}}) {
    core::ClosedLoopConfig config;
    config.num_clients = clients;
    config.think_rate = 0.05;
    config.cutoff = 15;
    config.alpha = 0.25;
    config.horizon = 20000.0;
    config.seed = opts.seed;
    core::ClosedLoopServer server(cat, pop, config);
    const core::ClosedLoopResult r = server.run();
    const double a = r.mean_wait(0);
    const double c = r.mean_wait(2);
    table.row()
        .add(clients)
        .add(r.throughput, 3)
        .add(a, 2)
        .add(r.mean_wait(1), 2)
        .add(c, 2)
        .add(c > 0.0 ? a / c : 1.0, 3);
  }
  bench::emit(table, opts);
  return 0;
}
