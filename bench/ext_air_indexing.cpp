// X7 — (1, m) air indexing on the push broadcast: the energy dimension the
// paper leaves out. Sweeps the number of index copies m and reports the
// access-time / tuning-time trade, the sqrt-law optimum m*, and the energy
// win over unindexed listening.
#include <iostream>

#include "airindex/one_m_index.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pushpull;
  const auto opts = bench::parse_options(argc, argv);

  std::cout << "# (1,m) air indexing over the push cycle, theta = 0.60, "
               "K = 40, index airtime = 2\n";
  const auto built = bench::paper_scenario(opts, 0.60).build();
  const double data = built.catalog.push_cycle_length(40);
  const double ix = 2.0;
  const std::size_t m_star = airindex::OneMIndexModel::optimal_m(data, ix);

  exp::Table table({"m", "access (model)", "access (sim)", "tuning",
                    "tuning/unindexed", "cycle airtime"});
  const double unindexed =
      airindex::OneMIndexModel(built.catalog, 40, ix, 1).unindexed_access_time();
  for (std::size_t m : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                        std::size_t{6}, std::size_t{8}, std::size_t{12},
                        std::size_t{16}}) {
    airindex::OneMIndexModel model(built.catalog, 40, ix, m);
    const auto sampled = model.simulate(100000, opts.seed);
    table.row()
        .add(m)
        .add(model.expected_access_time(), 2)
        .add(sampled.access, 2)
        .add(model.expected_tuning_time(), 2)
        .add(model.expected_tuning_time() / unindexed, 3)
        .add(model.cycle_airtime(), 1);
  }
  bench::emit(table, opts);
  std::cout << "# unindexed: access = tuning = " << unindexed
            << " broadcast units; sqrt-law optimum m* = " << m_star << "\n";
  return 0;
}
