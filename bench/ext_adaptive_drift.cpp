// X3 — adaptive cutoff re-optimization under popularity drift (the paper's
// "periodically the algorithm is executed for different cutoff-points",
// exercised on a workload where the hot set actually moves).
//
// Sweeps the drift speed (epoch length; shorter = faster drift) and
// compares a static rank-prefix cutoff against the adaptive server that
// re-learns popularity online. Expected shape: roughly even on stationary
// workloads, adaptive increasingly ahead as drift accelerates.
#include <iostream>

#include "bench_common.hpp"
#include "core/adaptive_server.hpp"
#include "workload/drifting_generator.hpp"

int main(int argc, char** argv) {
  using namespace pushpull;
  const auto opts = bench::parse_options(argc, argv);

  std::cout << "# Adaptive vs static cutoff under popularity drift "
               "(theta = 1.0, shift = D/3 per epoch)\n";
  catalog::Catalog cat(100, 1.0, catalog::LengthModel::paper_default(),
                       opts.seed);
  const auto pop = workload::ClientPopulation::paper_default();

  exp::Table table({"epoch len", "static delay", "adaptive delay",
                    "improvement %", "reopts", "static cost",
                    "adaptive cost"});
  for (double epoch : {1e9, 2000.0, 800.0, 400.0, 200.0}) {
    workload::DriftingGenerator gen(cat, pop, 5.0, epoch, 33, opts.seed);
    const workload::Trace trace =
        workload::Trace::record(gen, opts.num_requests / 2);

    core::HybridConfig static_config;
    static_config.cutoff = 30;
    static_config.alpha = 0.5;
    core::HybridServer fixed(cat, pop, static_config);
    const core::SimResult rs = fixed.run(trace);

    core::AdaptiveConfig adaptive;
    adaptive.initial_cutoff = 30;
    adaptive.alpha = 0.5;
    adaptive.reoptimize_interval = 100.0;
    adaptive.estimator_half_life = 150.0;
    adaptive.scan_step = 5;
    core::AdaptiveHybridServer dynamic(cat, pop, adaptive);
    const core::AdaptiveResult ra = dynamic.run(trace);

    const double sd = rs.overall().wait.mean();
    const double ad = ra.overall().wait.mean();
    table.row()
        .add(epoch >= 1e9 ? std::string("stationary") : std::to_string(static_cast<int>(epoch)))
        .add(sd, 2)
        .add(ad, 2)
        .add(100.0 * (sd - ad) / sd, 1)
        .add(static_cast<std::size_t>(ra.reoptimizations))
        .add(rs.total_prioritized_cost(pop), 2)
        .add(ra.total_prioritized_cost(pop), 2);
  }
  bench::emit(table, opts);
  return 0;
}
