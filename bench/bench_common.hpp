#pragma once

// Shared plumbing for the figure-reproduction binaries: every bench builds
// the paper's §5.1 scenario through exp::Scenario, replays the identical
// trace across configurations (paired comparison), and prints its series
// through exp::Table. Pass --csv to any bench for machine-readable output.

#include <cstring>
#include <iostream>
#include <string>
#include <string_view>

#include "exp/plots.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "exp/table.hpp"

namespace pushpull::bench {

struct BenchOptions {
  bool csv = false;
  std::size_t num_requests = 60000;
  std::uint64_t seed = 20050614;
  /// Worker threads for grid sweeps: 0 = one per hardware thread (the
  /// default), 1 = serial. Output is identical for any value — sweeps
  /// collect results in grid order.
  std::size_t jobs = 0;
  /// When non-empty, benches additionally emit <prefix>.dat/.gp gnuplot
  /// files rendering the figure.
  std::string plot_prefix;
};

inline BenchOptions parse_options(int argc, char** argv) {
  BenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--csv") {
      opts.csv = true;
    } else if (arg == "--requests" && i + 1 < argc) {
      opts.num_requests = static_cast<std::size_t>(std::stoull(argv[++i]));
    } else if (arg == "--seed" && i + 1 < argc) {
      opts.seed = std::stoull(argv[++i]);
    } else if (arg == "--jobs" && i + 1 < argc) {
      opts.jobs = static_cast<std::size_t>(std::stoull(argv[++i]));
    } else if (arg == "--plot" && i + 1 < argc) {
      opts.plot_prefix = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "options: [--csv] [--requests N] [--seed S] [--jobs N] "
                   "[--plot PREFIX]\n";
      std::exit(0);
    }
  }
  return opts;
}

/// exp::sweep options for a bench grid: worker count from --jobs, no
/// progress sink (benches print tables, not telemetry). `label` must be a
/// string literal or otherwise outlive the sweep.
inline exp::SweepOptions sweep_options(const BenchOptions& opts,
                                       std::string_view label) {
  exp::SweepOptions sweep_opts;
  sweep_opts.jobs = opts.jobs;
  sweep_opts.label = label;
  return sweep_opts;
}

inline exp::Scenario paper_scenario(const BenchOptions& opts, double theta) {
  exp::Scenario s;
  s.theta = theta;
  s.num_requests = opts.num_requests;
  s.seed = opts.seed;
  return s;
}

inline void emit(const exp::Table& table, const BenchOptions& opts) {
  if (opts.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

/// The cutoff grid every delay/cost sweep uses (the paper plots K along the
/// x-axis of Figs. 3–5 and 7).
inline const std::size_t kCutoffGrid[] = {5,  10, 20, 30, 40, 50,
                                          60, 70, 80, 90, 100};

}  // namespace pushpull::bench
