// A4 — ablation: the starvation guard. The paper concedes that priority
// selection "might suffer from un-fairness to the lower priority clients";
// this bench quantifies the fix: linear aging on top of the importance
// factor, sweeping the aging rate. Watch class-C's p99/max tail collapse
// while class-A's mean degrades only gradually.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pushpull;
  const auto opts = bench::parse_options(argc, argv);

  std::cout << "# Aging ablation, theta = 0.60, K = 10, alpha = 0 (pure "
               "priority — worst case for fairness)\n";
  const auto built = bench::paper_scenario(opts, 0.60).build();

  exp::Table table({"aging rate", "mean A", "mean C", "p99 C", "max C",
                    "total cost"});
  const double rates[] = {0.0, 0.05, 0.2, 0.5, 2.0, 10.0};
  const auto results = exp::sweep(
      std::size(rates),
      [&](std::size_t i) {
        core::HybridConfig config;
        config.cutoff = 10;
        config.alpha = 0.0;
        config.aging_rate = rates[i];
        return exp::run_hybrid(built, config);
      },
      bench::sweep_options(opts, "abl_aging"));
  for (std::size_t i = 0; i < results.size(); ++i) {
    const core::SimResult& r = results[i];
    table.row()
        .add(rates[i], 2)
        .add(r.mean_wait(0), 2)
        .add(r.mean_wait(2), 2)
        .add(r.per_class[2].wait_p99.value(), 2)
        .add(r.per_class[2].wait.max(), 2)
        .add(r.total_prioritized_cost(built.population), 2);
  }
  bench::emit(table, opts);
  return 0;
}
