// A4 — ablation: the starvation guard. The paper concedes that priority
// selection "might suffer from un-fairness to the lower priority clients";
// this bench quantifies the fix: linear aging on top of the importance
// factor, sweeping the aging rate. Watch class-C's p99/max tail collapse
// while class-A's mean degrades only gradually.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pushpull;
  const auto opts = bench::parse_options(argc, argv);

  std::cout << "# Aging ablation, theta = 0.60, K = 10, alpha = 0 (pure "
               "priority — worst case for fairness)\n";
  const auto built = bench::paper_scenario(opts, 0.60).build();

  exp::Table table({"aging rate", "mean A", "mean C", "p99 C", "max C",
                    "total cost"});
  for (double rate : {0.0, 0.05, 0.2, 0.5, 2.0, 10.0}) {
    core::HybridConfig config;
    config.cutoff = 10;
    config.alpha = 0.0;
    config.aging_rate = rate;
    const core::SimResult r = exp::run_hybrid(built, config);
    table.row()
        .add(rate, 2)
        .add(r.mean_wait(0), 2)
        .add(r.mean_wait(2), 2)
        .add(r.per_class[2].wait_p99.value(), 2)
        .add(r.per_class[2].wait.max(), 2)
        .add(r.total_prioritized_cost(built.population), 2);
  }
  bench::emit(table, opts);
  return 0;
}
