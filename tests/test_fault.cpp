// Fault-injection layer: Gilbert–Elliott channel statistics, bit-invisible
// defaults, bounded-retry recovery, overload shedding and the conservation
// law arrived = served + blocked + abandoned + shed + lost.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/hybrid_server.hpp"
#include "exp/scenario.hpp"
#include "fault/channel.hpp"
#include "fault/fault_config.hpp"
#include "fault/retry.hpp"
#include "fault/shedding.hpp"
#include "rng/stream.hpp"
#include "rng/uniform.hpp"

namespace pushpull {
namespace {

exp::Scenario small_scenario() {
  exp::Scenario s;
  s.num_items = 50;
  s.num_requests = 5000;
  return s;
}

void expect_identical(const core::SimResult& a, const core::SimResult& b) {
  EXPECT_DOUBLE_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.push_transmissions, b.push_transmissions);
  EXPECT_EQ(a.pull_transmissions, b.pull_transmissions);
  ASSERT_EQ(a.per_class.size(), b.per_class.size());
  for (std::size_t c = 0; c < a.per_class.size(); ++c) {
    EXPECT_EQ(a.per_class[c].arrived, b.per_class[c].arrived);
    EXPECT_EQ(a.per_class[c].served, b.per_class[c].served);
    EXPECT_DOUBLE_EQ(a.per_class[c].wait.mean(), b.per_class[c].wait.mean());
    EXPECT_DOUBLE_EQ(a.per_class[c].wait.max(), b.per_class[c].wait.max());
  }
}

// --- channel --------------------------------------------------------------

TEST(GilbertElliottChannel, AllGoodChannelNeverCorrupts) {
  fault::ChannelConfig config;  // defaults: never leaves the good state
  fault::GilbertElliottChannel channel(config,
                                       rng::StreamFactory(1).stream("c"));
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(channel.corrupts());
  EXPECT_EQ(channel.transmissions(), 1000u);
  EXPECT_EQ(channel.corrupted(), 0u);
  EXPECT_EQ(channel.bad_state_transmissions(), 0u);
}

TEST(GilbertElliottChannel, AlwaysBadAlwaysCorrupts) {
  fault::ChannelConfig config;
  config.p_good_to_bad = 1.0;
  config.p_bad_to_good = 0.0;
  config.corrupt_bad = 1.0;
  fault::GilbertElliottChannel channel(config,
                                       rng::StreamFactory(1).stream("c"));
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(channel.corrupts());
  EXPECT_EQ(channel.bad_state_transmissions(), 100u);
}

TEST(GilbertElliottChannel, BadStateFractionTracksStationaryDistribution) {
  fault::ChannelConfig config;
  config.p_good_to_bad = 0.1;
  config.p_bad_to_good = 0.3;
  config.corrupt_bad = 1.0;
  fault::GilbertElliottChannel channel(config,
                                       rng::StreamFactory(7).stream("c"));
  const int n = 200000;
  for (int i = 0; i < n; ++i) (void)channel.corrupts();
  const double fraction =
      static_cast<double>(channel.bad_state_transmissions()) / n;
  EXPECT_NEAR(fraction, config.stationary_bad(), 0.01);  // 0.25 exactly
}

TEST(GilbertElliottChannel, ResetRestoresGoodStateAndCounters) {
  fault::ChannelConfig config;
  config.p_good_to_bad = 1.0;
  config.corrupt_bad = 1.0;
  fault::GilbertElliottChannel channel(config,
                                       rng::StreamFactory(1).stream("c"));
  (void)channel.corrupts();
  channel.reset(rng::StreamFactory(1).stream("c"));
  EXPECT_EQ(channel.transmissions(), 0u);
  EXPECT_EQ(channel.corrupted(), 0u);
}

TEST(ChannelConfig, RejectsOutOfRangeProbabilities) {
  fault::ChannelConfig config;
  config.p_good_to_bad = 1.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.p_good_to_bad = 0.5;
  config.corrupt_bad = -0.1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(RetryConfig, BackoffGrowsExponentially) {
  fault::RetryConfig retry;
  retry.backoff_base = 1.5;
  retry.backoff_multiplier = 2.0;
  EXPECT_DOUBLE_EQ(retry.backoff_delay(1), 1.5);
  EXPECT_DOUBLE_EQ(retry.backoff_delay(2), 3.0);
  EXPECT_DOUBLE_EQ(retry.backoff_delay(3), 6.0);
}

TEST(RetryConfig, BackoffDelayClampsAtMaxBackoff) {
  fault::RetryConfig retry;
  retry.backoff_base = 1.0;
  retry.backoff_multiplier = 2.0;
  retry.max_backoff = 10.0;
  EXPECT_NO_THROW(retry.validate());
  EXPECT_DOUBLE_EQ(retry.backoff_delay(3), 4.0);   // below the cap: exact
  EXPECT_DOUBLE_EQ(retry.backoff_delay(5), 10.0);  // 16 clamps to 10
  // An adversarial attempt count must not overflow the repeated product to
  // infinity — the whole point of the cap (an event at t = inf deadlocks).
  const double worst = retry.backoff_delay(100000);
  EXPECT_TRUE(std::isfinite(worst));
  EXPECT_DOUBLE_EQ(worst, 10.0);
}

TEST(RetryConfig, RejectsMaxBackoffBelowBaseOrNonFinite) {
  fault::RetryConfig retry;
  retry.backoff_base = 5.0;
  retry.max_backoff = 1.0;  // first retry would already exceed the cap
  EXPECT_THROW(retry.validate(), std::invalid_argument);
  retry.max_backoff = std::numeric_limits<double>::infinity();
  EXPECT_THROW(retry.validate(), std::invalid_argument);
}

TEST(ShedPolicy, ParseRoundTripsAndRejectsUnknown) {
  EXPECT_EQ(fault::parse_shed_policy("tail"), fault::ShedPolicy::kDropTail);
  EXPECT_EQ(fault::parse_shed_policy("priority"),
            fault::ShedPolicy::kDropLowestPriority);
  EXPECT_THROW((void)fault::parse_shed_policy("random"),
               std::invalid_argument);
}

// --- determinism guarantees ----------------------------------------------

TEST(FaultInjection, DisabledFaultConfigIsBitInvisible) {
  const auto built = small_scenario().build();
  core::HybridConfig plain;
  plain.cutoff = 20;
  core::HybridConfig with_default_fault = plain;
  with_default_fault.fault = fault::FaultConfig{};  // explicit default
  expect_identical(exp::run_hybrid(built, plain),
                   exp::run_hybrid(built, with_default_fault));
}

TEST(FaultInjection, ZeroErrorChannelMatchesFaultFreeRunExactly) {
  // Enabling the channel with zero corruption probability draws from its
  // own named rng stream, so the demand/patience streams are untouched and
  // the results are *exactly* equal, not just within tolerance.
  const auto built = small_scenario().build();
  core::HybridConfig plain;
  plain.cutoff = 20;
  core::HybridConfig zero_error = plain;
  zero_error.fault.enabled = true;
  zero_error.fault.channel.p_good_to_bad = 0.2;  // visits the bad state...
  zero_error.fault.channel.corrupt_good = 0.0;   // ...but never corrupts
  zero_error.fault.channel.corrupt_bad = 0.0;
  expect_identical(exp::run_hybrid(built, plain),
                   exp::run_hybrid(built, zero_error));
}

TEST(FaultInjection, FaultyRunIsDeterministic) {
  const auto built = small_scenario().build();
  core::HybridConfig config;
  config.cutoff = 20;
  config.fault.enabled = true;
  config.fault.channel.p_good_to_bad = 0.1;
  config.fault.channel.p_bad_to_good = 0.3;
  config.fault.channel.corrupt_bad = 0.7;
  expect_identical(exp::run_hybrid(built, config),
                   exp::run_hybrid(built, config));
}

// --- recovery accounting --------------------------------------------------

TEST(FaultInjection, CorruptionDelaysButStillServesWithoutPatience) {
  const auto built = small_scenario().build();
  core::HybridConfig clean;
  clean.cutoff = 20;
  core::HybridConfig noisy = clean;
  noisy.fault.enabled = true;
  noisy.fault.channel.p_good_to_bad = 0.1;
  noisy.fault.channel.p_bad_to_good = 0.3;
  noisy.fault.channel.corrupt_bad = 0.7;
  noisy.fault.retry.max_retries = 50;  // effectively unbounded

  const auto before = exp::run_hybrid(built, clean);
  const auto after = exp::run_hybrid(built, noisy);
  EXPECT_EQ(after.overall().served, after.overall().arrived);
  EXPECT_GT(after.overall().wait.mean(), before.overall().wait.mean());
  EXPECT_GT(after.overall().corrupted, 0u);
  EXPECT_GT(after.corrupted_push_transmissions +
                after.corrupted_pull_transmissions,
            0u);
}

TEST(FaultInjection, BoundedRetriesProduceLostRequests) {
  const auto built = small_scenario().build();
  core::HybridConfig config;
  config.cutoff = 20;
  config.fault.enabled = true;
  config.fault.channel.p_good_to_bad = 0.5;
  config.fault.channel.p_bad_to_good = 0.2;
  config.fault.channel.corrupt_bad = 0.9;
  config.fault.retry.max_retries = 1;

  const auto result = exp::run_hybrid(built, config);
  const auto overall = result.overall();
  EXPECT_GT(overall.lost, 0u);
  EXPECT_GT(overall.retries, 0u);
  EXPECT_LT(overall.goodput_ratio(), 1.0);
  EXPECT_EQ(overall.served + overall.blocked + overall.abandoned +
                overall.shed + overall.lost,
            overall.arrived);
}

TEST(FaultInjection, ConservationHoldsWithPatienceAndFaults) {
  const auto built = small_scenario().build();
  core::HybridConfig config;
  config.cutoff = 20;
  config.mean_patience = 30.0;
  config.fault.enabled = true;
  config.fault.channel.p_good_to_bad = 0.2;
  config.fault.channel.p_bad_to_good = 0.3;
  config.fault.channel.corrupt_bad = 0.6;
  config.fault.retry.max_retries = 2;
  config.fault.queue_capacity = 16;

  const auto result = exp::run_hybrid(built, config);
  for (const auto& s : result.per_class) {
    EXPECT_EQ(s.served + s.blocked + s.abandoned + s.shed + s.lost,
              s.arrived);
  }
}

// --- overload shedding ----------------------------------------------------

TEST(FaultInjection, BoundedQueueShedsUnderLoadDropTail) {
  auto scenario = small_scenario();
  scenario.arrival_rate = 10.0;  // overload a pure-pull server
  const auto built = scenario.build();
  core::HybridConfig config;
  config.cutoff = 0;
  config.fault.queue_capacity = 4;
  config.fault.shed_policy = fault::ShedPolicy::kDropTail;

  const auto result = exp::run_hybrid(built, config);
  const auto overall = result.overall();
  EXPECT_GT(overall.shed, 0u);
  EXPECT_EQ(overall.served + overall.shed + overall.blocked, overall.arrived);
  EXPECT_LT(overall.goodput_ratio(), 1.0);
}

TEST(FaultInjection, PrioritySheddingProtectsHighPriorityClass) {
  auto scenario = small_scenario();
  scenario.arrival_rate = 10.0;
  const auto built = scenario.build();
  core::HybridConfig config;
  config.cutoff = 0;
  config.fault.queue_capacity = 4;
  config.fault.shed_policy = fault::ShedPolicy::kDropLowestPriority;

  const auto result = exp::run_hybrid(built, config);
  // Class A (priority 3) must lose a smaller fraction than class C
  // (priority 1) — that is the whole point of the policy.
  const auto& a = result.per_class[0];
  const auto& c = result.per_class[2];
  ASSERT_GT(a.arrived, 0u);
  ASSERT_GT(c.arrived, 0u);
  const double shed_a =
      static_cast<double>(a.shed) / static_cast<double>(a.arrived);
  const double shed_c =
      static_cast<double>(c.shed) / static_cast<double>(c.arrived);
  EXPECT_LT(shed_a, shed_c);
  EXPECT_GT(result.overall().shed, 0u);
}

TEST(FaultInjection, ShedCountMonotoneInOfferedLoad) {
  std::uint64_t previous = 0;
  for (const double rate : {2.0, 5.0, 10.0}) {
    auto scenario = small_scenario();
    scenario.arrival_rate = rate;
    const auto built = scenario.build();
    core::HybridConfig config;
    config.cutoff = 0;
    config.fault.queue_capacity = 4;
    const auto result = exp::run_hybrid(built, config);
    EXPECT_GE(result.overall().shed, previous);
    previous = result.overall().shed;
  }
}

TEST(FaultConfig, ValidatesNestedConfigs) {
  fault::FaultConfig config;
  EXPECT_FALSE(config.active());
  EXPECT_NO_THROW(config.validate());
  config.queue_capacity = 5;
  EXPECT_TRUE(config.active());
  config.retry.backoff_base = 0.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(FaultConfig, HybridServerRejectsInvalidFaultConfig) {
  const auto built = small_scenario().build();
  core::HybridConfig config;
  config.cutoff = 10;
  config.fault.enabled = true;
  config.fault.channel.p_bad_to_good = 2.0;
  EXPECT_THROW(
      core::HybridServer(built.catalog, built.population, config),
      std::invalid_argument);
}

// --- drop-lowest-priority victim selection (property) ---------------------

struct Queued {
  double priority = 0.0;
  std::uint64_t id = 0;
};

/// Reference implementation of the shedding rule, written as the spec
/// reads: globally minimal priority, ties to the highest id.
const Queued* reference_victim(const std::vector<Queued>& queue) {
  const Queued* best = nullptr;
  for (const auto& q : queue) {
    const bool better =
        best == nullptr || q.priority < best->priority ||
        (q.priority == best->priority && q.id > best->id);
    if (better) best = &q;
  }
  return best;
}

TEST(LowestPriorityVictim, MatchesReferenceOnSeededRandomQueues) {
  auto eng = rng::StreamFactory(20260806).stream("shed-property");
  for (int round = 0; round < 500; ++round) {
    const std::size_t n = 1 + rng::uniform_below(eng, 32);
    std::vector<Queued> queue(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Few distinct priority values so ties are the common case, like a
      // real population with a handful of service classes.
      queue[i].priority = static_cast<double>(rng::uniform_below(eng, 4));
      queue[i].id = i;
    }

    fault::LowestPriorityVictim<Queued> scan;
    for (const auto& q : queue) scan.consider(q, q.priority, q.id);
    const Queued* expected = reference_victim(queue);
    ASSERT_NE(scan.victim(), nullptr);
    EXPECT_EQ(scan.victim(), expected);

    // The victim's priority is a global minimum.
    for (const auto& q : queue) EXPECT_LE(scan.priority(), q.priority);

    // Feeding the same queue rotated selects the same victim: eviction
    // must not depend on queue iteration order.
    const std::size_t rot = rng::uniform_below(eng, n);
    fault::LowestPriorityVictim<Queued> rotated;
    for (std::size_t i = 0; i < n; ++i) {
      const Queued& q = queue[(i + rot) % n];
      rotated.consider(q, q.priority, q.id);
    }
    ASSERT_NE(rotated.victim(), nullptr);
    EXPECT_EQ(rotated.victim()->id, expected->id);

    // arrival_yields_to is exactly "arrival no more important than the
    // victim", for every priority an arrival could have.
    for (int p = 0; p < 5; ++p) {
      const double arrival = static_cast<double>(p);
      EXPECT_EQ(scan.arrival_yields_to(arrival),
                arrival <= scan.priority());
    }
  }
}

TEST(FaultInjection, SheddingReconcilesWithQueueCapConservation) {
  // Seeded random arrival sequences: whatever the eviction pattern, every
  // arrival must settle exactly once and the hard cap must never be
  // exceeded — shedding redistributes loss, it cannot create or lose
  // requests.
  for (const std::uint64_t seed : {1ULL, 7ULL, 20260806ULL}) {
    auto scenario = small_scenario();
    scenario.seed = seed;
    scenario.arrival_rate = 10.0;
    const auto built = scenario.build();
    core::HybridConfig config;
    config.cutoff = 0;
    config.fault.queue_capacity = 4;
    config.fault.shed_policy = fault::ShedPolicy::kDropLowestPriority;
    const auto result = exp::run_hybrid(built, config);
    const auto o = result.overall();
    EXPECT_EQ(o.arrived, o.served + o.blocked + o.abandoned + o.shed +
                             o.lost + o.rejected);
    EXPECT_LE(result.max_pull_queue_len, config.fault.queue_capacity);
    EXPECT_GT(o.shed, 0u);
  }
}

TEST(LowestPriorityVictim, EmptyScanYieldsToEveryArrival) {
  const fault::LowestPriorityVictim<Queued> scan;
  EXPECT_EQ(scan.victim(), nullptr);
  EXPECT_TRUE(scan.arrival_yields_to(0.0));
  EXPECT_TRUE(scan.arrival_yields_to(1.0e9));
}

TEST(LowestPriorityVictim, PriorityTiesPreferTheYoungestRequest) {
  const std::vector<Queued> queue = {
      {2.0, 10}, {1.0, 11}, {1.0, 42}, {1.0, 12}, {3.0, 99}};
  fault::LowestPriorityVictim<Queued> scan;
  for (const auto& q : queue) scan.consider(q, q.priority, q.id);
  ASSERT_NE(scan.victim(), nullptr);
  EXPECT_EQ(scan.victim()->id, 42u);
  EXPECT_DOUBLE_EQ(scan.priority(), 1.0);
}

}  // namespace
}  // namespace pushpull
