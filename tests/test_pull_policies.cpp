// Unit tests for the pull-queue selection policies, including the paper's
// importance factor (Eq. 1) and its queue-aware generalization (Eq. 6).
#include <gtest/gtest.h>

#include "sched/pull/policies.hpp"
#include "sched/pull/policy.hpp"

namespace pushpull::sched {
namespace {

PullEntry make_entry(catalog::ItemId item, double length,
                     std::size_t num_requests, double total_priority,
                     double first_arrival = 0.0, double popularity = 0.01) {
  PullEntry e;
  e.item = item;
  e.length = length;
  e.popularity = popularity;
  e.pending.resize(num_requests);
  e.total_priority = total_priority;
  e.first_arrival = first_arrival;
  return e;
}

const PullContext kCtx{100.0, 1.0};

// ------------------------------------------------------------------- basics

TEST(PullEntry, StretchMatchesDefinition) {
  const PullEntry e = make_entry(0, 2.0, 8, 1.0);
  EXPECT_DOUBLE_EQ(e.stretch(), 8.0 / 4.0);
  EXPECT_DOUBLE_EQ(e.num_requests(), 8.0);
}

TEST(Factory, NamesRoundTrip) {
  for (auto kind :
       {PullPolicyKind::kFcfs, PullPolicyKind::kMrf, PullPolicyKind::kStretch,
        PullPolicyKind::kPriority, PullPolicyKind::kRxw, PullPolicyKind::kLwf,
        PullPolicyKind::kImportance, PullPolicyKind::kImportanceQueueAware}) {
    const auto policy = make_pull_policy(kind, 0.5);
    EXPECT_EQ(policy->name(), to_string(kind));
  }
}

TEST(Factory, RejectsBadAlpha) {
  EXPECT_THROW(make_pull_policy(PullPolicyKind::kImportance, -0.1),
               std::invalid_argument);
  EXPECT_THROW(make_pull_policy(PullPolicyKind::kImportance, 1.1),
               std::invalid_argument);
  EXPECT_THROW(make_pull_policy(PullPolicyKind::kImportanceQueueAware, 2.0),
               std::invalid_argument);
}

// ----------------------------------------------------------------- policies

TEST(Fcfs, PrefersOldestFirstRequest) {
  FcfsPolicy policy;
  const auto old_entry = make_entry(1, 2.0, 1, 1.0, /*first_arrival=*/5.0);
  const auto new_entry = make_entry(2, 2.0, 9, 9.0, /*first_arrival=*/50.0);
  EXPECT_GT(policy.score(old_entry, kCtx), policy.score(new_entry, kCtx));
}

TEST(Mrf, PrefersMoreRequests) {
  MrfPolicy policy;
  EXPECT_GT(policy.score(make_entry(1, 2.0, 10, 1.0), kCtx),
            policy.score(make_entry(2, 2.0, 3, 99.0), kCtx));
}

TEST(Stretch, PrefersShortPopular) {
  StretchPolicy policy;
  // 6 requests over length 1 beats 8 requests over length 3.
  EXPECT_GT(policy.score(make_entry(1, 1.0, 6, 1.0), kCtx),
            policy.score(make_entry(2, 3.0, 8, 1.0), kCtx));
}

TEST(Stretch, QuadraticLengthPenalty) {
  StretchPolicy policy;
  const auto short_item = make_entry(1, 1.0, 1, 1.0);
  const auto long_item = make_entry(2, 4.0, 1, 1.0);
  EXPECT_DOUBLE_EQ(policy.score(short_item, kCtx) / policy.score(long_item, kCtx),
                   16.0);
}

TEST(Priority, PrefersHigherSummedPriority) {
  PriorityPolicy policy;
  EXPECT_GT(policy.score(make_entry(1, 5.0, 1, 6.0), kCtx),
            policy.score(make_entry(2, 1.0, 10, 5.0), kCtx));
}

TEST(Rxw, ProductOfRequestsAndWait) {
  RxwPolicy policy;
  PullContext ctx{100.0, 1.0};
  const auto entry = make_entry(1, 2.0, 4, 1.0, /*first_arrival=*/60.0);
  EXPECT_DOUBLE_EQ(policy.score(entry, ctx), 4.0 * 40.0);
}

TEST(Rxw, WaitGrowsWithClock) {
  RxwPolicy policy;
  const auto entry = make_entry(1, 2.0, 2, 1.0, 0.0);
  EXPECT_LT(policy.score(entry, PullContext{10.0, 1.0}),
            policy.score(entry, PullContext{20.0, 1.0}));
}

TEST(Lwf, TotalWaitAccumulatesOverPending) {
  LwfPolicy policy;
  PullEntry e = make_entry(1, 2.0, 0, 0.0);
  workload::Request r1;
  r1.arrival = 10.0;
  workload::Request r2;
  r2.arrival = 30.0;
  e.pending = {r1, r2};
  e.total_arrival = 40.0;
  // At now = 50: waits are 40 and 20.
  EXPECT_DOUBLE_EQ(policy.score(e, PullContext{50.0, 1.0}), 60.0);
}

TEST(Lwf, ManySmallWaitsCanBeatOneLongWait) {
  LwfPolicy policy;
  PullContext ctx{100.0, 1.0};
  // 5 requests waiting 10 each (total 50) beat 1 request waiting 40.
  PullEntry crowd = make_entry(1, 2.0, 0, 0.0);
  crowd.pending.resize(5);
  crowd.total_arrival = 5 * 90.0;
  PullEntry loner = make_entry(2, 2.0, 0, 0.0);
  loner.pending.resize(1);
  loner.total_arrival = 60.0;
  EXPECT_GT(policy.score(crowd, ctx), policy.score(loner, ctx));
}

// --------------------------------------------------------------- importance

TEST(Importance, MatchesEquationOne) {
  const double alpha = 0.3;
  ImportancePolicy policy(alpha);
  const auto e = make_entry(1, 2.0, 8, 7.0);
  const double expected = alpha * (8.0 / 4.0) + (1.0 - alpha) * 7.0;
  EXPECT_DOUBLE_EQ(policy.score(e, kCtx), expected);
}

TEST(Importance, AlphaOneIsStretch) {
  ImportancePolicy importance(1.0);
  StretchPolicy stretch;
  for (int i = 0; i < 5; ++i) {
    const auto e = make_entry(static_cast<catalog::ItemId>(i),
                              1.0 + i, static_cast<std::size_t>(2 * i + 1),
                              10.0 - i);
    EXPECT_DOUBLE_EQ(importance.score(e, kCtx), stretch.score(e, kCtx));
  }
}

TEST(Importance, AlphaZeroIsPriority) {
  ImportancePolicy importance(0.0);
  PriorityPolicy priority;
  for (int i = 0; i < 5; ++i) {
    const auto e = make_entry(static_cast<catalog::ItemId>(i),
                              1.0 + i, static_cast<std::size_t>(i + 1),
                              3.0 * i + 1.0);
    EXPECT_DOUBLE_EQ(importance.score(e, kCtx), priority.score(e, kCtx));
  }
}

TEST(Importance, AlphaInterpolatesMonotonically) {
  // An entry strong on stretch and weak on priority gains score with alpha.
  const auto strong_stretch = make_entry(1, 1.0, 9, 0.5);
  double prev = ImportancePolicy(0.0).score(strong_stretch, kCtx);
  for (double alpha : {0.25, 0.5, 0.75, 1.0}) {
    const double score = ImportancePolicy(alpha).score(strong_stretch, kCtx);
    EXPECT_GT(score, prev);
    prev = score;
  }
}

TEST(Importance, PriorityBreaksStretchTies) {
  ImportancePolicy policy(0.5);
  const auto low = make_entry(1, 2.0, 4, 2.0);
  const auto high = make_entry(2, 2.0, 4, 6.0);
  EXPECT_GT(policy.score(high, kCtx), policy.score(low, kCtx));
}

// ---------------------------------------------------- queue-aware (Eq. 6)

TEST(ImportanceQueueAware, MatchesEquationSix) {
  const double alpha = 0.4;
  ImportanceQueueAwarePolicy policy(alpha);
  PullContext ctx{0.0, 50.0};  // E[L_pull] = 50
  const auto e = make_entry(1, 2.0, 3, 4.0, 0.0, /*popularity=*/0.02);
  const double copies = 50.0 * 0.02;
  const double expected =
      alpha * copies / 4.0 + (1.0 - alpha) * copies * 4.0;
  EXPECT_DOUBLE_EQ(policy.score(e, ctx), expected);
}

TEST(ImportanceQueueAware, ReducesToEqOneWhenCopiesAreUnit) {
  // E[L_pull]·p_i = 1 makes Eq. 6 collapse to Eq. 1 with R_i replaced by
  // the unit expected copy count: α/L² + (1−α)·Q.
  const double alpha = 0.7;
  ImportanceQueueAwarePolicy q_aware(alpha);
  PullContext ctx{0.0, 100.0};
  const auto e = make_entry(1, 3.0, 1, 5.0, 0.0, /*popularity=*/0.01);
  const double expected = alpha * 1.0 / 9.0 + (1.0 - alpha) * 1.0 * 5.0;
  EXPECT_DOUBLE_EQ(q_aware.score(e, ctx), expected);
}

TEST(ImportanceQueueAware, PopularItemsScoreHigher) {
  ImportanceQueueAwarePolicy policy(0.5);
  PullContext ctx{0.0, 10.0};
  const auto popular = make_entry(1, 2.0, 1, 3.0, 0.0, 0.05);
  const auto obscure = make_entry(2, 2.0, 1, 3.0, 0.0, 0.001);
  EXPECT_GT(policy.score(popular, ctx), policy.score(obscure, ctx));
}

}  // namespace
}  // namespace pushpull::sched
