// Unit tests for the statistics substrate: Welford accumulators, histograms,
// time series and the per-class collector.
#include <gtest/gtest.h>

#include <cmath>

#include "metrics/class_stats.hpp"
#include "metrics/histogram.hpp"
#include "metrics/timeseries.hpp"
#include "metrics/welford.hpp"

namespace pushpull::metrics {
namespace {

// ------------------------------------------------------------------ Welford

TEST(Welford, EmptyIsZero) {
  Welford w;
  EXPECT_TRUE(w.empty());
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
  EXPECT_DOUBLE_EQ(w.ci_half_width(), 0.0);
}

TEST(Welford, KnownMoments) {
  Welford w;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) w.add(x);
  EXPECT_EQ(w.count(), 8u);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_DOUBLE_EQ(w.sum(), 40.0);
  // Population variance is 4 ⇒ sample variance is 32/7.
  EXPECT_NEAR(w.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(w.min(), 2.0);
  EXPECT_DOUBLE_EQ(w.max(), 9.0);
}

TEST(Welford, SingleSample) {
  Welford w;
  w.add(3.5);
  EXPECT_DOUBLE_EQ(w.mean(), 3.5);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
  EXPECT_DOUBLE_EQ(w.min(), 3.5);
  EXPECT_DOUBLE_EQ(w.max(), 3.5);
}

TEST(Welford, MergeMatchesPooled) {
  Welford a;
  Welford b;
  Welford pooled;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i * 0.7) * 10.0;
    (i % 2 ? a : b).add(x);
    pooled.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), pooled.count());
  EXPECT_NEAR(a.mean(), pooled.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), pooled.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), pooled.min());
  EXPECT_DOUBLE_EQ(a.max(), pooled.max());
}

TEST(Welford, MergeWithEmpty) {
  Welford a;
  a.add(1.0);
  a.add(2.0);
  Welford empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(Welford, CiShrinksWithSamples) {
  Welford small;
  Welford large;
  for (int i = 0; i < 10; ++i) small.add(i % 3);
  for (int i = 0; i < 1000; ++i) large.add(i % 3);
  EXPECT_GT(small.ci_half_width(), large.ci_half_width());
}

TEST(Welford, NumericallyStableForLargeOffsets) {
  Welford w;
  for (int i = 0; i < 1000; ++i) {
    w.add(1e9 + static_cast<double>(i % 2));
  }
  EXPECT_NEAR(w.variance(), 0.25025, 1e-3);
}

// ---------------------------------------------------------------- Histogram

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram(5.0, 5.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 10.0, 0), std::invalid_argument);
}

TEST(Histogram, BinsValues) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(1.5);
  h.add(1.7);
  h.add(9.9);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 2u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.count(), 4u);
}

TEST(Histogram, TracksOverUnderflow) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(10.0);  // hi is exclusive
  h.add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, BinBounds) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, MedianOfUniformIsMidpoint) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.quantile(0.1), 10.0, 1.5);
}

TEST(Histogram, QuantileEdges) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty
  h.add(5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
}

// --------------------------------------------------------------- TimeSeries

TEST(TimeSeries, TimeWeightedMean) {
  TimeSeries ts;
  ts.add(0.0, 2.0);   // holds for 5 units
  ts.add(5.0, 10.0);  // holds for 5 units
  EXPECT_DOUBLE_EQ(ts.time_weighted_mean(10.0), 6.0);
}

TEST(TimeSeries, UnequalHoldTimes) {
  TimeSeries ts;
  ts.add(0.0, 0.0);  // 9 units at 0
  ts.add(9.0, 10.0);  // 1 unit at 10
  EXPECT_DOUBLE_EQ(ts.time_weighted_mean(10.0), 1.0);
}

TEST(TimeSeries, EmptyIsZero) {
  TimeSeries ts;
  EXPECT_DOUBLE_EQ(ts.time_weighted_mean(10.0), 0.0);
}

TEST(TimeSeries, SingleSampleHoldsToEnd) {
  TimeSeries ts;
  ts.add(2.0, 7.0);
  EXPECT_DOUBLE_EQ(ts.time_weighted_mean(12.0), 7.0);
}

// ----------------------------------------------------------- ClassCollector

TEST(ClassCollector, RecordsPerClass) {
  ClassCollector collector(3);
  collector.record_arrival(0);
  collector.record_arrival(0);
  collector.record_arrival(2);
  collector.record_served(0, 5.0, /*via_push=*/true);
  collector.record_served(0, 7.0, /*via_push=*/false);
  collector.record_blocked(2);

  EXPECT_EQ(collector.at(0).arrived, 2u);
  EXPECT_EQ(collector.at(0).served, 2u);
  EXPECT_EQ(collector.at(0).served_push, 1u);
  EXPECT_EQ(collector.at(0).served_pull, 1u);
  EXPECT_DOUBLE_EQ(collector.at(0).wait.mean(), 6.0);
  EXPECT_EQ(collector.at(2).blocked, 1u);
  EXPECT_EQ(collector.at(1).arrived, 0u);
}

TEST(ClassCollector, AggregatePoolsClasses) {
  ClassCollector collector(2);
  collector.record_arrival(0);
  collector.record_arrival(1);
  collector.record_served(0, 2.0, true);
  collector.record_served(1, 4.0, false);
  const ClassStats total = collector.aggregate();
  EXPECT_EQ(total.arrived, 2u);
  EXPECT_EQ(total.served, 2u);
  EXPECT_DOUBLE_EQ(total.wait.mean(), 3.0);
}

TEST(ClassStats, BlockingRatio) {
  ClassStats stats;
  stats.served = 8;
  stats.blocked = 2;
  EXPECT_DOUBLE_EQ(stats.blocking_ratio(), 0.2);
  ClassStats empty;
  EXPECT_DOUBLE_EQ(empty.blocking_ratio(), 0.0);
}

TEST(ClassStats, Outstanding) {
  ClassStats stats;
  stats.arrived = 10;
  stats.served = 6;
  stats.blocked = 1;
  EXPECT_EQ(stats.outstanding(), 3u);
}

}  // namespace
}  // namespace pushpull::metrics
