// Tests for the adaptive hybrid server: conservation, migration across
// re-partitions, cutoff tracking under drift, and superiority over a stale
// static configuration on non-stationary workloads.
#include <gtest/gtest.h>

#include "core/adaptive_server.hpp"
#include "core/hybrid_server.hpp"
#include "exp/scenario.hpp"
#include "workload/drifting_generator.hpp"

namespace pushpull::core {
namespace {

struct DriftWorld {
  catalog::Catalog catalog;
  workload::ClientPopulation population;
  workload::Trace trace;
};

DriftWorld make_drift_world(double epoch, std::size_t shift,
                            std::size_t requests, std::uint64_t seed = 99) {
  catalog::Catalog cat(100, 1.0, catalog::LengthModel::paper_default(), 7);
  auto pop = workload::ClientPopulation::paper_default();
  workload::DriftingGenerator gen(cat, pop, 5.0, epoch, shift, seed);
  workload::Trace trace = workload::Trace::record(gen, requests);
  return DriftWorld{std::move(cat), std::move(pop), std::move(trace)};
}

AdaptiveConfig default_adaptive() {
  AdaptiveConfig config;
  config.initial_cutoff = 30;
  config.alpha = 0.5;
  config.reoptimize_interval = 300.0;
  config.estimator_half_life = 400.0;
  config.scan_step = 10;
  return config;
}

TEST(AdaptiveServer, RejectsBadConfig) {
  const auto world = make_drift_world(1000.0, 10, 10);
  AdaptiveConfig config = default_adaptive();
  config.initial_cutoff = 1000;
  EXPECT_THROW(AdaptiveHybridServer(world.catalog, world.population, config),
               std::invalid_argument);
  config = default_adaptive();
  config.reoptimize_interval = 0.0;
  EXPECT_THROW(AdaptiveHybridServer(world.catalog, world.population, config),
               std::invalid_argument);
  config = default_adaptive();
  config.scan_step = 0;
  EXPECT_THROW(AdaptiveHybridServer(world.catalog, world.population, config),
               std::invalid_argument);
}

TEST(AdaptiveServer, ConservesRequests) {
  const auto world = make_drift_world(500.0, 20, 15000);
  AdaptiveHybridServer server(world.catalog, world.population,
                              default_adaptive());
  const AdaptiveResult r = server.run(world.trace);
  const auto overall = r.overall();
  EXPECT_EQ(overall.arrived, world.trace.size());
  EXPECT_EQ(overall.served, overall.arrived);
}

TEST(AdaptiveServer, ReoptimizesPeriodically) {
  const auto world = make_drift_world(500.0, 20, 15000);
  AdaptiveHybridServer server(world.catalog, world.population,
                              default_adaptive());
  const AdaptiveResult r = server.run(world.trace);
  EXPECT_GT(r.reoptimizations, 3u);
  // History: initial entry plus one per re-optimization.
  EXPECT_EQ(r.cutoff_history.size(), r.reoptimizations + 1);
  EXPECT_DOUBLE_EQ(r.cutoff_history.front().first, 0.0);
  EXPECT_EQ(r.cutoff_history.front().second, 30u);
}

TEST(AdaptiveServer, DeterministicAcrossRuns) {
  const auto world = make_drift_world(500.0, 20, 8000);
  AdaptiveHybridServer server(world.catalog, world.population,
                              default_adaptive());
  const AdaptiveResult a = server.run(world.trace);
  const AdaptiveResult b = server.run(world.trace);
  EXPECT_DOUBLE_EQ(a.overall().wait.mean(), b.overall().wait.mean());
  EXPECT_EQ(a.reoptimizations, b.reoptimizations);
  EXPECT_EQ(a.cutoff_history, b.cutoff_history);
}

TEST(AdaptiveServer, WorksFromPurePullStart) {
  const auto world = make_drift_world(500.0, 20, 8000);
  AdaptiveConfig config = default_adaptive();
  config.initial_cutoff = 0;
  AdaptiveHybridServer server(world.catalog, world.population, config);
  const AdaptiveResult r = server.run(world.trace);
  EXPECT_EQ(r.overall().served, world.trace.size());
}

TEST(AdaptiveServer, HandlesEmptyTrace) {
  const auto world = make_drift_world(500.0, 20, 10);
  AdaptiveHybridServer server(world.catalog, world.population,
                              default_adaptive());
  const AdaptiveResult r = server.run(workload::Trace{});
  EXPECT_EQ(r.overall().arrived, 0u);
}

TEST(AdaptiveServer, BeatsStaleStaticCutoffUnderDrift) {
  // Drift rotates the hot set by a third of the catalog every 400 units;
  // a static rank-prefix push set goes stale after the first epoch, while
  // the adaptive server re-learns the hot set.
  const auto world = make_drift_world(400.0, 33, 30000);

  AdaptiveConfig adaptive = default_adaptive();
  adaptive.reoptimize_interval = 100.0;
  adaptive.estimator_half_life = 150.0;
  AdaptiveHybridServer dynamic(world.catalog, world.population, adaptive);
  const AdaptiveResult ra = dynamic.run(world.trace);

  HybridConfig static_config;
  static_config.cutoff = 30;
  static_config.alpha = 0.5;
  HybridServer fixed(world.catalog, world.population, static_config);
  const SimResult rs = fixed.run(world.trace);

  EXPECT_LT(ra.overall().wait.mean(), rs.overall().wait.mean());
}

TEST(AdaptiveServer, MatchesStationaryWorkloadReasonably) {
  // On a stationary workload the adaptive server should converge to a
  // sensible cutoff and not be dramatically worse than a tuned static one.
  exp::Scenario scenario;
  scenario.theta = 1.0;
  scenario.num_requests = 20000;
  const auto built = scenario.build();

  AdaptiveConfig adaptive = default_adaptive();
  AdaptiveHybridServer dynamic(built.catalog, built.population, adaptive);
  const AdaptiveResult ra = dynamic.run(built.trace);

  HybridConfig static_config;
  static_config.cutoff = 30;
  static_config.alpha = 0.5;
  const SimResult rs = exp::run_hybrid(built, static_config);

  EXPECT_LT(ra.overall().wait.mean(), rs.overall().wait.mean() * 1.5);
  EXPECT_EQ(ra.overall().served, built.trace.size());
}

TEST(AdaptiveServer, MigratesPendingRequestsAcrossRepartitions) {
  // With aggressive re-optimization every 50 units and strong drift, items
  // cross the push/pull boundary constantly while requests are pending; all
  // requests must still be delivered exactly once.
  const auto world = make_drift_world(100.0, 50, 12000);
  AdaptiveConfig config = default_adaptive();
  config.reoptimize_interval = 50.0;
  config.estimator_half_life = 80.0;
  config.scan_step = 5;
  AdaptiveHybridServer server(world.catalog, world.population, config);
  const AdaptiveResult r = server.run(world.trace);
  EXPECT_EQ(r.overall().served, world.trace.size());
  EXPECT_GT(r.reoptimizations, 10u);
}

TEST(AdaptiveServer, PremiumClassStillFavored) {
  const auto world = make_drift_world(400.0, 33, 20000);
  AdaptiveConfig config = default_adaptive();
  config.alpha = 0.0;
  AdaptiveHybridServer server(world.catalog, world.population, config);
  const AdaptiveResult r = server.run(world.trace);
  EXPECT_LE(r.mean_wait(0), r.mean_wait(2) * 1.10);
}

}  // namespace
}  // namespace pushpull::core
