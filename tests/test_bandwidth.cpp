// Unit tests for the per-class bandwidth pools and admission control.
#include <gtest/gtest.h>

#include "core/bandwidth_manager.hpp"

namespace pushpull::core {
namespace {

TEST(Bandwidth, UnconstrainedAlwaysAdmits) {
  BandwidthManager bw;
  EXPECT_TRUE(bw.unconstrained());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(bw.try_acquire(0, 1e9));
  }
  bw.release(0, 1e9);  // no-op, must not crash
}

TEST(Bandwidth, NonPositiveTotalIsUnconstrained) {
  BandwidthManager bw(0.0, std::vector<double>{1.0, 1.0});
  EXPECT_TRUE(bw.unconstrained());
  BandwidthManager neg(-5.0, std::vector<double>{1.0});
  EXPECT_TRUE(neg.unconstrained());
}

TEST(Bandwidth, FractionsPartitionTotal) {
  BandwidthManager bw(100.0, {3.0, 2.0, 5.0});
  EXPECT_DOUBLE_EQ(bw.capacity(0), 30.0);
  EXPECT_DOUBLE_EQ(bw.capacity(1), 20.0);
  EXPECT_DOUBLE_EQ(bw.capacity(2), 50.0);
}

TEST(Bandwidth, EqualSplitConstructor) {
  BandwidthManager bw(90.0, std::size_t{3});
  for (workload::ClassId c = 0; c < 3; ++c) {
    EXPECT_DOUBLE_EQ(bw.capacity(c), 30.0);
  }
}

TEST(Bandwidth, AcquireReleaseAccounting) {
  BandwidthManager bw(10.0, std::size_t{2});
  EXPECT_TRUE(bw.try_acquire(0, 3.0));
  EXPECT_DOUBLE_EQ(bw.available(0), 2.0);
  EXPECT_DOUBLE_EQ(bw.in_use(0), 3.0);
  // Other class untouched.
  EXPECT_DOUBLE_EQ(bw.available(1), 5.0);
  bw.release(0, 3.0);
  EXPECT_DOUBLE_EQ(bw.available(0), 5.0);
}

TEST(Bandwidth, RejectsWhenPoolExhausted) {
  BandwidthManager bw(10.0, std::size_t{2});
  EXPECT_TRUE(bw.try_acquire(0, 5.0));
  EXPECT_FALSE(bw.try_acquire(0, 1.0));
  // The other class's pool is independent.
  EXPECT_TRUE(bw.try_acquire(1, 5.0));
}

TEST(Bandwidth, CountsAdmissionOutcomes) {
  BandwidthManager bw(4.0, std::size_t{1});
  EXPECT_TRUE(bw.try_acquire(0, 3.0));
  EXPECT_FALSE(bw.try_acquire(0, 2.0));
  EXPECT_TRUE(bw.try_acquire(0, 1.0));
  EXPECT_EQ(bw.admitted(), 2u);
  EXPECT_EQ(bw.rejected(), 1u);
}

TEST(Bandwidth, ZeroDemandAlwaysFits) {
  BandwidthManager bw(1.0, std::size_t{1});
  EXPECT_TRUE(bw.try_acquire(0, 1.0));
  EXPECT_TRUE(bw.try_acquire(0, 0.0));
}

TEST(Bandwidth, RejectsBadFractions) {
  EXPECT_THROW(BandwidthManager(10.0, std::vector<double>{}),
               std::invalid_argument);
  EXPECT_THROW(BandwidthManager(10.0, {1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(BandwidthManager(10.0, {1.0, -1.0}), std::invalid_argument);
}

TEST(Bandwidth, ReacquireAfterRelease) {
  BandwidthManager bw(6.0, std::size_t{1});
  EXPECT_TRUE(bw.try_acquire(0, 6.0));
  EXPECT_FALSE(bw.try_acquire(0, 6.0));
  bw.release(0, 6.0);
  EXPECT_TRUE(bw.try_acquire(0, 6.0));
}

}  // namespace
}  // namespace pushpull::core
