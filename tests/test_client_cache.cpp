// Tests for the client-side caching substrate: the LRU cache and the
// cache-filtered request generator.
#include <gtest/gtest.h>

#include "catalog/catalog.hpp"
#include "catalog/length_model.hpp"
#include "workload/cached_generator.hpp"
#include "workload/lru_cache.hpp"
#include "workload/trace.hpp"

namespace pushpull::workload {
namespace {

// ---------------------------------------------------------------- LruCache

TEST(LruCache, BasicInsertAndLookup) {
  LruCache cache(2);
  EXPECT_TRUE(cache.empty());
  cache.insert(1);
  cache.insert(2);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_FALSE(cache.contains(3));
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache cache(2);
  cache.insert(1);
  cache.insert(2);
  cache.insert(3);  // evicts 1
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
}

TEST(LruCache, TouchRefreshesRecency) {
  LruCache cache(2);
  cache.insert(1);
  cache.insert(2);
  EXPECT_TRUE(cache.touch(1));  // 1 becomes most recent
  cache.insert(3);              // evicts 2, not 1
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
}

TEST(LruCache, TouchMissIsFalse) {
  LruCache cache(2);
  EXPECT_FALSE(cache.touch(9));
}

TEST(LruCache, ReinsertRefreshesNotDuplicates) {
  LruCache cache(2);
  cache.insert(1);
  cache.insert(2);
  cache.insert(1);  // refresh, size stays 2
  EXPECT_EQ(cache.size(), 2u);
  cache.insert(3);  // evicts 2
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
}

TEST(LruCache, ZeroCapacityNeverStores) {
  LruCache cache(0);
  cache.insert(1);
  EXPECT_TRUE(cache.empty());
  EXPECT_FALSE(cache.contains(1));
}

// -------------------------------------------------- CachedRequestGenerator

catalog::Catalog test_catalog(double theta = 0.9) {
  return catalog::Catalog(50, theta, catalog::LengthModel::paper_default(),
                          11);
}

TEST(CachedGenerator, RejectsBadArguments) {
  const auto cat = test_catalog();
  const auto pop = ClientPopulation::paper_default();
  EXPECT_THROW(
      CachedRequestGenerator(cat, pop, 0.0, std::size_t{30}, 5, 1),
      std::invalid_argument);
  EXPECT_THROW(CachedRequestGenerator(cat, pop, 5.0,
                                      std::vector<std::size_t>{1, 2}, 5, 1),
               std::invalid_argument);
  EXPECT_THROW(
      CachedRequestGenerator(cat, pop, 5.0,
                             std::vector<std::size_t>{1, 0, 2}, 5, 1),
      std::invalid_argument);
}

TEST(CachedGenerator, SplitsClientsByShare) {
  const auto cat = test_catalog();
  const auto pop = ClientPopulation::paper_default();
  CachedRequestGenerator gen(cat, pop, 5.0, std::size_t{60}, 5, 1);
  EXPECT_GE(gen.num_clients(), 60u);
}

TEST(CachedGenerator, ZeroCapacityNeverHits) {
  const auto cat = test_catalog();
  const auto pop = ClientPopulation::paper_default();
  CachedRequestGenerator gen(cat, pop, 5.0, std::size_t{30}, 0, 2);
  for (int i = 0; i < 2000; ++i) (void)gen.next();
  EXPECT_EQ(gen.hits(), 0u);
  EXPECT_DOUBLE_EQ(gen.hit_ratio(), 0.0);
}

TEST(CachedGenerator, HitsHappenWithCapacity) {
  const auto cat = test_catalog(1.2);  // skewed: caching pays
  const auto pop = ClientPopulation::paper_default();
  CachedRequestGenerator gen(cat, pop, 5.0, std::size_t{10}, 10, 3);
  for (int i = 0; i < 5000; ++i) (void)gen.next();
  EXPECT_GT(gen.hits(), 0u);
  EXPECT_GT(gen.hit_ratio(), 0.05);
}

TEST(CachedGenerator, BiggerCachesHitMore) {
  const auto cat = test_catalog(1.0);
  const auto pop = ClientPopulation::paper_default();
  CachedRequestGenerator small(cat, pop, 5.0, std::size_t{20}, 2, 4);
  CachedRequestGenerator large(cat, pop, 5.0, std::size_t{20}, 20, 4);
  for (int i = 0; i < 5000; ++i) {
    (void)small.next();
    (void)large.next();
  }
  EXPECT_GT(large.hit_ratio(), small.hit_ratio());
}

TEST(CachedGenerator, EmittedStreamIsMissesOnly) {
  const auto cat = test_catalog();
  const auto pop = ClientPopulation::paper_default();
  CachedRequestGenerator gen(cat, pop, 5.0, std::size_t{15}, 8, 5);
  std::uint64_t emitted = 0;
  for (int i = 0; i < 3000; ++i) {
    (void)gen.next();
    ++emitted;
  }
  EXPECT_EQ(gen.demands(), emitted + gen.hits());
}

TEST(CachedGenerator, ArrivalsStrictlyIncreaseAcrossHits) {
  const auto cat = test_catalog(1.2);
  const auto pop = ClientPopulation::paper_default();
  CachedRequestGenerator gen(cat, pop, 5.0, std::size_t{10}, 10, 6);
  double last = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const Request r = gen.next();
    EXPECT_GT(r.arrival, last);
    last = r.arrival;
  }
}

TEST(CachedGenerator, DeterministicForSeed) {
  const auto cat = test_catalog();
  const auto pop = ClientPopulation::paper_default();
  CachedRequestGenerator a(cat, pop, 5.0, std::size_t{25}, 6, 7);
  CachedRequestGenerator b(cat, pop, 5.0, std::size_t{25}, 6, 7);
  for (int i = 0; i < 500; ++i) {
    const Request ra = a.next();
    const Request rb = b.next();
    EXPECT_DOUBLE_EQ(ra.arrival, rb.arrival);
    EXPECT_EQ(ra.item, rb.item);
    EXPECT_EQ(ra.cls, rb.cls);
  }
  EXPECT_EQ(a.hits(), b.hits());
}

TEST(CachedGenerator, TraceRecordWorks) {
  const auto cat = test_catalog();
  const auto pop = ClientPopulation::paper_default();
  CachedRequestGenerator gen(cat, pop, 5.0, std::size_t{25}, 6, 8);
  const Trace trace = Trace::record(gen, 1000);
  EXPECT_EQ(trace.size(), 1000u);
}

TEST(CachedGenerator, PerClassHitAccounting) {
  const auto cat = test_catalog(1.2);
  const auto pop = ClientPopulation::paper_default();
  CachedRequestGenerator gen(cat, pop, 5.0, std::size_t{12}, 10, 9);
  for (int i = 0; i < 5000; ++i) (void)gen.next();
  std::uint64_t sum = 0;
  for (ClassId c = 0; c < pop.num_classes(); ++c) {
    sum += gen.hits_for_class(c);
  }
  EXPECT_EQ(sum, gen.hits());
}

}  // namespace
}  // namespace pushpull::workload
