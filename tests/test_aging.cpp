// Tests for the aging (anti-starvation) decorator.
#include <gtest/gtest.h>

#include "exp/scenario.hpp"
#include "sched/pull/aging.hpp"
#include "sched/pull/policies.hpp"

namespace pushpull::sched {
namespace {

PullEntry make_entry(catalog::ItemId item, double priority,
                     double first_arrival) {
  PullEntry e;
  e.item = item;
  e.length = 2.0;
  e.pending.resize(1);
  e.total_priority = priority;
  e.first_arrival = first_arrival;
  return e;
}

TEST(Aging, RejectsBadArguments) {
  EXPECT_THROW(AgingPolicy(nullptr, 1.0), std::invalid_argument);
  EXPECT_THROW(
      AgingPolicy(make_pull_policy(PullPolicyKind::kPriority), -1.0),
      std::invalid_argument);
}

TEST(Aging, ZeroRateIsIdentity) {
  AgingPolicy aged(make_pull_policy(PullPolicyKind::kPriority), 0.0);
  PriorityPolicy plain;
  const auto e = make_entry(1, 5.0, 3.0);
  const PullContext ctx{100.0, 1.0};
  EXPECT_DOUBLE_EQ(aged.score(e, ctx), plain.score(e, ctx));
}

TEST(Aging, AddsLinearAgeTerm) {
  AgingPolicy aged(make_pull_policy(PullPolicyKind::kPriority), 0.5);
  const auto e = make_entry(1, 5.0, 10.0);
  const PullContext ctx{30.0, 1.0};
  EXPECT_DOUBLE_EQ(aged.score(e, ctx), 5.0 + 0.5 * 20.0);
}

TEST(Aging, OldLowPriorityBeatsFreshHighPriority) {
  AgingPolicy aged(make_pull_policy(PullPolicyKind::kPriority), 1.0);
  const auto old_cheap = make_entry(1, 1.0, 0.0);
  const auto new_premium = make_entry(2, 3.0, 99.0);
  const PullContext ctx{100.0, 1.0};
  // age 100 vs age 1: 1 + 100 > 3 + 1.
  EXPECT_GT(aged.score(old_cheap, ctx), aged.score(new_premium, ctx));
}

TEST(Aging, NameReflectsInner) {
  AgingPolicy aged(make_pull_policy(PullPolicyKind::kImportance, 0.3), 0.1);
  EXPECT_EQ(aged.name(), "aging(importance)");
  EXPECT_DOUBLE_EQ(aged.rate(), 0.1);
}

TEST(Aging, BoundsWorstCaseDelayInFullRuns) {
  // Under pure priority (alpha = 0), class-C items can be overtaken for a
  // long time; aging caps the tail. Compare the worst observed wait.
  exp::Scenario scenario;
  scenario.num_requests = 30000;
  const auto built = scenario.build();

  core::HybridConfig plain;
  plain.cutoff = 10;
  plain.alpha = 0.0;

  core::HybridConfig aged = plain;
  aged.aging_rate = 0.5;

  const core::SimResult rp = exp::run_hybrid(built, plain);
  const core::SimResult ra = exp::run_hybrid(built, aged);

  // The starvation guard trims the lowest class's extreme tail...
  EXPECT_LT(ra.per_class[2].wait.max(), rp.per_class[2].wait.max());
  // ...and all requests are still served.
  EXPECT_EQ(ra.overall().served, built.trace.size());
}

TEST(Aging, PremiumAdvantageDegradesGracefully) {
  exp::Scenario scenario;
  scenario.num_requests = 20000;
  const auto built = scenario.build();

  core::HybridConfig mild;
  mild.cutoff = 10;
  mild.alpha = 0.0;
  mild.aging_rate = 0.05;

  core::HybridConfig strong = mild;
  strong.aging_rate = 50.0;  // aging dominates: effectively FCFS

  const core::SimResult rm = exp::run_hybrid(built, mild);
  const core::SimResult rs = exp::run_hybrid(built, strong);

  // With mild aging the premium class keeps a clear advantage; with
  // dominant aging the classes converge.
  const double gap_mild = rm.mean_wait(2) - rm.mean_wait(0);
  const double gap_strong = rs.mean_wait(2) - rs.mean_wait(0);
  EXPECT_GT(gap_mild, gap_strong);
}

TEST(Aging, MakeAgedImportanceFactory) {
  const auto policy = make_aged_importance(0.4, 0.2);
  EXPECT_EQ(policy->name(), "aging(importance)");
}

}  // namespace
}  // namespace pushpull::sched
