// Tests for the slotted-ALOHA uplink: conservation, delay accounting,
// contention behavior and the classic G·e^{−G} throughput law.
#include <gtest/gtest.h>

#include <cmath>

#include "catalog/catalog.hpp"
#include "catalog/length_model.hpp"
#include "uplink/slotted_aloha.hpp"
#include "workload/request_generator.hpp"

namespace pushpull::uplink {
namespace {

workload::Trace make_trace(double rate, std::size_t count,
                           std::uint64_t seed = 5) {
  catalog::Catalog cat(50, 0.6, catalog::LengthModel::paper_default(), 3);
  const auto pop = workload::ClientPopulation::paper_default();
  workload::RequestGenerator gen(cat, pop, rate, seed);
  return workload::Trace::record(gen, count);
}

TEST(Aloha, RejectsBadConfig) {
  const auto trace = make_trace(1.0, 10);
  AlohaConfig config;
  config.slot_duration = 0.0;
  EXPECT_THROW((void)simulate_uplink(trace, config), std::invalid_argument);
  config = AlohaConfig{};
  config.retry_probability = 0.0;
  EXPECT_THROW((void)simulate_uplink(trace, config), std::invalid_argument);
  config.retry_probability = 1.5;
  EXPECT_THROW((void)simulate_uplink(trace, config), std::invalid_argument);
}

TEST(Aloha, EmptyTrace) {
  const AlohaResult result = simulate_uplink(workload::Trace{}, AlohaConfig{});
  EXPECT_TRUE(result.delayed_trace.empty());
  EXPECT_EQ(result.slots_elapsed, 0u);
}

TEST(Aloha, EveryRequestEventuallySucceeds) {
  const auto trace = make_trace(5.0, 3000);
  const AlohaResult result = simulate_uplink(trace, AlohaConfig{});
  EXPECT_EQ(result.delayed_trace.size(), trace.size());
  EXPECT_EQ(result.successful_slots, trace.size());
}

TEST(Aloha, DelaysAreNonNegativeAndArrivalSorted) {
  const auto trace = make_trace(5.0, 2000);
  const AlohaResult result = simulate_uplink(trace, AlohaConfig{});
  EXPECT_GT(result.mean_uplink_delay, 0.0);
  EXPECT_GE(result.max_uplink_delay, result.mean_uplink_delay);
  double last = 0.0;
  for (const auto& r : result.delayed_trace.requests()) {
    EXPECT_GE(r.arrival, last);
    last = r.arrival;
  }
  // Every request is delayed relative to its generation.
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& original = trace[i];
    // Find the same id in the delayed trace (ids are preserved).
    bool found = false;
    for (const auto& r : result.delayed_trace.requests()) {
      if (r.id == original.id) {
        EXPECT_GT(r.arrival, original.arrival);
        EXPECT_EQ(r.item, original.item);
        EXPECT_EQ(r.cls, original.cls);
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "request " << original.id;
    if (i > 50) break;  // spot-check a prefix; full scan is O(n²)
  }
}

TEST(Aloha, LightLoadHasFewCollisions) {
  // Rate 0.5 per unit, slot 0.1 ⇒ offered load 0.05 per slot: nearly
  // collision-free, delay ≈ one slot.
  const auto trace = make_trace(0.5, 2000);
  AlohaConfig config;
  config.slot_duration = 0.1;
  const AlohaResult result = simulate_uplink(trace, config);
  EXPECT_LT(result.collision_ratio(), 0.10);
  EXPECT_LT(result.mean_uplink_delay, 0.5);
}

TEST(Aloha, HeavierLoadCollidesMore) {
  AlohaConfig config;
  config.slot_duration = 0.1;
  const AlohaResult light = simulate_uplink(make_trace(0.5, 3000), config);
  const AlohaResult heavy = simulate_uplink(make_trace(6.0, 3000), config);
  EXPECT_GT(heavy.collision_ratio(), light.collision_ratio());
  EXPECT_GT(heavy.mean_uplink_delay, light.mean_uplink_delay);
}

TEST(Aloha, DeterministicForSeed) {
  const auto trace = make_trace(5.0, 2000);
  const AlohaResult a = simulate_uplink(trace, AlohaConfig{});
  const AlohaResult b = simulate_uplink(trace, AlohaConfig{});
  EXPECT_EQ(a.collision_slots, b.collision_slots);
  EXPECT_DOUBLE_EQ(a.mean_uplink_delay, b.mean_uplink_delay);
}

TEST(Aloha, ThroughputLawShape) {
  // S(G) = G·e^{−G}: increasing below G = 1, peak 1/e, decreasing above.
  EXPECT_NEAR(aloha_throughput(1.0), 1.0 / std::exp(1.0), 1e-12);
  EXPECT_LT(aloha_throughput(0.2), aloha_throughput(0.8));
  EXPECT_GT(aloha_throughput(1.0), aloha_throughput(3.0));
  EXPECT_NEAR(aloha_throughput(0.0), 0.0, 1e-12);
}

TEST(Aloha, SimulatedThroughputBoundedByOptimum) {
  // No slotted-ALOHA run can beat the 1/e ≈ 0.368 ceiling for long.
  AlohaConfig config;
  config.slot_duration = 0.1;
  config.retry_probability = 0.2;
  const AlohaResult result = simulate_uplink(make_trace(8.0, 4000), config);
  EXPECT_LT(result.throughput(), 0.45);
  EXPECT_GT(result.throughput(), 0.05);
}

TEST(Aloha, SaturatedChannelApproachesTheoreticalPeak) {
  // Offered load >> capacity: the backlog self-regulates near the retry
  // probability's operating point; throughput must sit in the ALOHA range.
  AlohaConfig config;
  config.slot_duration = 0.1;
  config.retry_probability = 0.05;
  const AlohaResult result = simulate_uplink(make_trace(3.4, 5000), config);
  EXPECT_GT(result.throughput(), 0.15);
  EXPECT_LT(result.throughput(), 0.40);
}

}  // namespace
}  // namespace pushpull::uplink
