// Tests for the live serving frontend (src/serve/): clock backends, the
// bounded completion queue, the load driver's pacer-invariant plan, the
// accelerated event loop's determinism, and the record/replay bridge back
// into the deterministic DES core.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "core/hybrid_server.hpp"
#include "serve/serve.hpp"

namespace pushpull::serve {
namespace {

// ---------------------------------------------------------------------------
// Clock backends
// ---------------------------------------------------------------------------

TEST(VirtualClock, StartsAtZeroAndAdvancesMonotonically) {
  VirtualClock clock;
  EXPECT_EQ(clock.now(), 0.0);
  EXPECT_FALSE(clock.realtime());
  clock.advance_to(3.5);
  EXPECT_EQ(clock.now(), 3.5);
  clock.advance_to(1.0);  // moving backwards is ignored
  EXPECT_EQ(clock.now(), 3.5);
  clock.advance_to(3.5);
  EXPECT_EQ(clock.now(), 3.5);
}

TEST(VirtualClock, NothingIsWorthWaitingFor) {
  VirtualClock clock;
  EXPECT_EQ(clock.seconds_until(100.0), 0.0);
  clock.advance_to(5.0);
  EXPECT_EQ(clock.seconds_until(2.0), 0.0);
}

TEST(WallClock, ReportsRealtimeAndAdvances) {
  const auto clock = make_wall_clock(1000.0);  // 1000 units per wall second
  EXPECT_TRUE(clock->realtime());
  const double a = clock->now();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double b = clock->now();
  EXPECT_GE(a, 0.0);
  EXPECT_GT(b, a);
  // A serve-time instant already behind us has no wait budget left.
  EXPECT_EQ(clock->seconds_until(0.0), 0.0);
  // One ahead has a bounded, scale-converted budget.
  const double budget = clock->seconds_until(b + 1000.0);
  EXPECT_GT(budget, 0.0);
  EXPECT_LE(budget, 1.0);
}

TEST(WallClock, RejectsNonPositiveOrNonFiniteScale) {
  EXPECT_THROW((void)make_wall_clock(0.0), std::invalid_argument);
  EXPECT_THROW((void)make_wall_clock(-1.0), std::invalid_argument);
  EXPECT_THROW((void)make_wall_clock(
                   std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_THROW((void)make_wall_clock(std::nan("")), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Completion queue
// ---------------------------------------------------------------------------

Completion arrival_at(double t) {
  Completion c;
  c.kind = CompletionKind::kArrival;
  c.time = t;
  return c;
}

TEST(CompletionQueue, RejectsZeroCapacity) {
  EXPECT_THROW(CompletionQueue(0), std::invalid_argument);
}

TEST(CompletionQueue, DeliversInFifoOrder) {
  CompletionQueue q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.try_post(arrival_at(i)));
  for (int i = 0; i < 5; ++i) {
    const auto c = q.pop(0.0);
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c->time, static_cast<double>(i));
  }
  EXPECT_FALSE(q.pop(0.0).has_value());
  EXPECT_EQ(q.posted(), 5u);
  EXPECT_EQ(q.high_water(), 5u);
}

TEST(CompletionQueue, TryPostRefusesWhenFull) {
  CompletionQueue q(2);
  EXPECT_TRUE(q.try_post(arrival_at(0)));
  EXPECT_TRUE(q.try_post(arrival_at(1)));
  EXPECT_FALSE(q.try_post(arrival_at(2)));
  (void)q.pop(0.0);
  EXPECT_TRUE(q.try_post(arrival_at(3)));
}

TEST(CompletionQueue, FullQueueBackpressuresThenDrains) {
  CompletionQueue q(1);
  ASSERT_TRUE(q.try_post(arrival_at(0)));
  std::atomic<bool> posted{false};
  std::thread producer([&q, &posted] {
    // Blocks until the consumer pops, then succeeds.
    EXPECT_TRUE(q.post(arrival_at(1)));
    posted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(posted.load());
  EXPECT_TRUE(q.pop(1.0).has_value());
  producer.join();
  EXPECT_TRUE(posted.load());
  EXPECT_TRUE(q.pop(1.0).has_value());
}

TEST(CompletionQueue, CloseReleasesProducersAndDrainsConsumers) {
  CompletionQueue q(4);
  ASSERT_TRUE(q.try_post(arrival_at(0)));
  q.close();
  EXPECT_TRUE(q.closed());
  // Posts after close are dropped...
  EXPECT_FALSE(q.post(arrival_at(1)));
  EXPECT_FALSE(q.try_post(arrival_at(2)));
  // ...but queued completions still drain.
  EXPECT_TRUE(q.pop(0.0).has_value());
  EXPECT_FALSE(q.pop(0.0).has_value());
}

TEST(CompletionQueue, CloseUnblocksABlockedProducer) {
  CompletionQueue q(1);
  ASSERT_TRUE(q.try_post(arrival_at(0)));
  std::thread producer([&q] { EXPECT_FALSE(q.post(arrival_at(1))); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  producer.join();
}

// ---------------------------------------------------------------------------
// ServeConfig
// ---------------------------------------------------------------------------

TEST(ServeConfig, DefaultsValidate) {
  EXPECT_NO_THROW(ServeConfig{}.validate());
}

TEST(ServeConfig, RejectsBadValues) {
  const auto expect_rejected = [](auto mutate) {
    ServeConfig c;
    mutate(c);
    EXPECT_THROW(c.validate(), std::invalid_argument);
  };
  expect_rejected([](ServeConfig& c) { c.num_items = 0; });
  expect_rejected([](ServeConfig& c) { c.num_classes = 0; });
  expect_rejected([](ServeConfig& c) { c.duration = 0.0; });
  expect_rejected([](ServeConfig& c) { c.duration = -5.0; });
  expect_rejected([](ServeConfig& c) { c.target_qps = 0.0; });
  expect_rejected([](ServeConfig& c) { c.time_scale = 0.0; });
  expect_rejected([](ServeConfig& c) { c.pacers = 0; });
  expect_rejected([](ServeConfig& c) { c.queue_capacity = 0; });
  expect_rejected([](ServeConfig& c) { c.cutoff = c.num_items + 1; });
  expect_rejected([](ServeConfig& c) { c.min_length = 0; });
  expect_rejected([](ServeConfig& c) { c.max_length = 0; });
}

TEST(ServeConfig, HybridMappingKeepsFaultLayersInert) {
  ServeConfig c;
  c.cutoff = 25;
  c.alpha = 0.75;
  c.seed = 99;
  const core::HybridConfig h = c.hybrid();
  EXPECT_EQ(h.cutoff, 25u);
  EXPECT_EQ(h.alpha, 0.75);
  EXPECT_EQ(h.seed, 99u);
  EXPECT_FALSE(h.fault.enabled);
  EXPECT_FALSE(h.resilience.crash.enabled);
  EXPECT_FALSE(h.resilience.overload.enabled);
}

// ---------------------------------------------------------------------------
// Load driver
// ---------------------------------------------------------------------------

ServeConfig small_config() {
  ServeConfig c;
  c.accelerated = true;
  c.duration = 40.0;
  c.target_qps = 6.0;
  c.seed = 7;
  return c;
}

TEST(LoadDriver, PlanIsAPureFunctionOfItsInputs) {
  const ServeConfig c = small_config();
  const auto cat = c.build_catalog();
  const auto pop = c.build_population();
  LoadDriver a(cat, pop, c.target_qps, c.duration, c.seed);
  LoadDriver b(cat, pop, c.target_qps, c.duration, c.seed);
  ASSERT_EQ(a.plan().size(), b.plan().size());
  ASSERT_GT(a.plan().size(), 0u);
  for (std::size_t i = 0; i < a.plan().size(); ++i) {
    EXPECT_EQ(a.plan()[i].arrival, b.plan()[i].arrival);
    EXPECT_EQ(a.plan()[i].item, b.plan()[i].item);
    EXPECT_EQ(a.plan()[i].cls, b.plan()[i].cls);
  }
}

TEST(LoadDriver, PumpWalksThePlanOnce) {
  const ServeConfig c = small_config();
  const auto cat = c.build_catalog();
  const auto pop = c.build_population();
  LoadDriver driver(cat, pop, c.target_qps, c.duration, c.seed);
  const std::size_t n = driver.plan().size();
  std::size_t taken = 0;
  while (driver.peek() != nullptr) {
    (void)driver.take();
    ++taken;
  }
  EXPECT_EQ(taken, n);
  EXPECT_TRUE(driver.exhausted());
  EXPECT_EQ(driver.remaining(), 0u);
  EXPECT_THROW((void)driver.take(), std::logic_error);
}

// ---------------------------------------------------------------------------
// Accelerated runs: determinism and the DES differential
// ---------------------------------------------------------------------------

struct AcceleratedRun {
  std::string report;
  std::string trace;
};

AcceleratedRun run_accelerated(const ServeConfig& config) {
  const auto cat = config.build_catalog();
  const auto pop = config.build_population();
  LoadDriver driver(cat, pop, config.target_qps, config.duration,
                    config.seed);
  std::ostringstream trace;
  AcceleratedRun out;
  {
    TraceRecorder recorder(trace, config);
    LiveServer server(cat, pop, config);
    out.report = render_serve_report(server.run_accelerated(driver,
                                                            &recorder));
  }
  out.trace = trace.str();
  return out;
}

TEST(LiveServer, AcceleratedRunsAreBitReproducible) {
  const ServeConfig c = small_config();
  const AcceleratedRun a = run_accelerated(c);
  const AcceleratedRun b = run_accelerated(c);
  EXPECT_EQ(a.report, b.report);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_FALSE(a.report.empty());
  EXPECT_FALSE(a.trace.empty());
}

TEST(LiveServer, DifferentSeedsProduceDifferentRuns) {
  ServeConfig c = small_config();
  const AcceleratedRun a = run_accelerated(c);
  c.seed = c.seed + 1;
  const AcceleratedRun b = run_accelerated(c);
  EXPECT_NE(a.trace, b.trace);
}

TEST(LiveServer, EveryArrivalIsServed) {
  const ServeConfig c = small_config();
  const auto cat = c.build_catalog();
  const auto pop = c.build_population();
  LoadDriver driver(cat, pop, c.target_qps, c.duration, c.seed);
  const std::size_t planned = driver.plan().size();
  LiveServer server(cat, pop, c);
  const ServeReport report = server.run_accelerated(driver, nullptr);
  EXPECT_EQ(report.arrivals, planned);
  EXPECT_EQ(report.served, planned);
  std::uint64_t served = 0;
  for (const auto& cls : report.per_class) served += cls.served;
  EXPECT_EQ(served, planned);
  EXPECT_GT(report.end_time, 0.0);
  EXPECT_EQ(report.achieved_qps,
            static_cast<double>(report.arrivals) / report.end_time);
}

/// The tentpole's core claim: the live event loop is an exact mirror of the
/// DES for the deterministic subset — same plan through core::HybridServer
/// agrees on every count and every wait statistic bit-for-bit.
TEST(LiveServer, AcceleratedRunMatchesDesBitForBit) {
  for (const std::size_t cutoff : {std::size_t{0}, std::size_t{40},
                                   std::size_t{100}}) {
    ServeConfig c = small_config();
    c.cutoff = cutoff;
    const auto cat = c.build_catalog();
    const auto pop = c.build_population();
    LoadDriver driver(cat, pop, c.target_qps, c.duration, c.seed);
    const workload::Trace trace = driver.plan();

    LiveServer server(cat, pop, c);
    const ServeReport live = server.run_accelerated(driver, nullptr);

    core::HybridServer des(cat, pop, c.hybrid());
    const core::SimResult sim = des.run(trace);

    EXPECT_EQ(live.end_time, sim.end_time) << "cutoff " << cutoff;
    EXPECT_EQ(live.push_transmissions, sim.push_transmissions);
    EXPECT_EQ(live.pull_transmissions, sim.pull_transmissions);
    EXPECT_EQ(live.mean_pull_queue_len, sim.mean_pull_queue_len);
    EXPECT_EQ(live.max_pull_queue_len, sim.max_pull_queue_len);
    ASSERT_EQ(live.per_class.size(), sim.per_class.size());
    for (std::size_t i = 0; i < live.per_class.size(); ++i) {
      const auto& a = live.per_class[i];
      const auto& b = sim.per_class[i];
      EXPECT_EQ(a.arrived, b.arrived) << "cutoff " << cutoff << " class " << i;
      EXPECT_EQ(a.served, b.served);
      EXPECT_EQ(a.served_push, b.served_push);
      EXPECT_EQ(a.served_pull, b.served_pull);
      EXPECT_EQ(a.wait.count(), b.wait.count());
      EXPECT_EQ(a.wait.mean(), b.wait.mean());
      EXPECT_EQ(a.wait.variance(), b.wait.variance());
      EXPECT_EQ(a.wait_p95.count(), b.wait_p95.count());
      if (a.wait_p95.count() > 0) {
        EXPECT_EQ(a.wait_p95.value(), b.wait_p95.value());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Record -> replay round trip
// ---------------------------------------------------------------------------

TEST(Replay, RoundTripIsByteIdenticalAndJobsInvariant) {
  const AcceleratedRun recorded = run_accelerated(small_config());
  std::istringstream in1(recorded.trace);
  const RecordedRun run1 = load_trace(in1);
  std::istringstream in2(recorded.trace);
  const RecordedRun run2 = load_trace(in2);

  ReplayOptions serial;
  serial.reps = 3;
  serial.jobs = 1;
  ReplayOptions parallel;
  parallel.reps = 3;
  parallel.jobs = 4;

  const std::string a = render_replay_report(run1, replay(run1, serial));
  const std::string b = render_replay_report(run2, replay(run2, serial));
  const std::string c = render_replay_report(run1, replay(run1, parallel));
  EXPECT_EQ(a, b);  // replaying the same bytes twice is byte-identical
  EXPECT_EQ(a, c);  // the worker count is invisible in the numbers
  EXPECT_FALSE(a.empty());
}

TEST(Replay, RepZeroReproducesTheLiveRun) {
  const ServeConfig config = small_config();
  const auto cat = config.build_catalog();
  const auto pop = config.build_population();
  LoadDriver driver(cat, pop, config.target_qps, config.duration,
                    config.seed);
  std::ostringstream trace;
  ServeReport live;
  {
    TraceRecorder recorder(trace, config);
    LiveServer server(cat, pop, config);
    live = server.run_accelerated(driver, &recorder);
  }
  std::istringstream in(trace.str());
  const RecordedRun run = load_trace(in);
  EXPECT_EQ(run.requests.size(), live.arrivals);

  const auto results = replay(run);
  ASSERT_EQ(results.size(), 1u);
  const core::SimResult& sim = results.front();
  EXPECT_EQ(sim.end_time, live.end_time);
  EXPECT_EQ(sim.push_transmissions, live.push_transmissions);
  EXPECT_EQ(sim.pull_transmissions, live.pull_transmissions);
  EXPECT_EQ(sim.mean_pull_queue_len, live.mean_pull_queue_len);
  for (std::size_t i = 0; i < live.per_class.size(); ++i) {
    EXPECT_EQ(sim.per_class[i].wait.mean(), live.per_class[i].wait.mean());
  }
}

TEST(Replay, LaterRepsDecorrelateTheServerSeed) {
  const AcceleratedRun recorded = run_accelerated(small_config());
  std::istringstream in(recorded.trace);
  const RecordedRun run = load_trace(in);
  ReplayOptions options;
  options.reps = 2;
  const auto results = replay(run, options);
  ASSERT_EQ(results.size(), 2u);
  // Identical frozen workload, different server seed: the pull order (and
  // with it the waits) may shift, but the arrival counts cannot.
  std::uint64_t arrived0 = 0;
  std::uint64_t arrived1 = 0;
  for (const auto& s : results[0].per_class) arrived0 += s.arrived;
  for (const auto& s : results[1].per_class) arrived1 += s.arrived;
  EXPECT_EQ(arrived0, arrived1);
}

TEST(Replay, RejectsZeroReps) {
  const AcceleratedRun recorded = run_accelerated(small_config());
  std::istringstream in(recorded.trace);
  const RecordedRun run = load_trace(in);
  ReplayOptions options;
  options.reps = 0;
  EXPECT_THROW((void)replay(run, options), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Trace loader hardening
// ---------------------------------------------------------------------------

TEST(TraceLoader, RejectsEmptyInput) {
  std::istringstream in("");
  EXPECT_THROW((void)load_trace(in), std::runtime_error);
}

TEST(TraceLoader, RejectsWrongSchema) {
  std::istringstream in("{\"schema\":\"sv999\",\"seed\":1}\n");
  EXPECT_THROW((void)load_trace(in), std::runtime_error);
}

TEST(TraceLoader, RejectsTruncatedRecording) {
  const AcceleratedRun recorded = run_accelerated(small_config());
  // Drop the sealing footer record (the journal is framed — splice at a
  // record boundary so only the *seal* is missing, not the framing).
  std::istringstream scan_in(recorded.trace);
  const JournalScan scan = scan_journal(scan_in);
  ASSERT_FALSE(scan.truncated);
  ASSERT_GE(scan.payloads.size(), 2u);
  std::string unsealed;
  for (std::size_t i = 0; i + 1 < scan.payloads.size(); ++i) {
    unsealed += frame_record(scan.payloads[i]);
  }
  std::istringstream in(unsealed);
  EXPECT_THROW((void)load_trace(in), std::runtime_error);
}

TEST(TraceLoader, RejectsFooterCountMismatch) {
  const AcceleratedRun recorded = run_accelerated(small_config());
  // Remove one framed request record; the footer now over-counts.
  std::istringstream scan_in(recorded.trace);
  const JournalScan scan = scan_journal(scan_in);
  ASSERT_FALSE(scan.truncated);
  std::string spliced;
  bool removed = false;
  for (const std::string& payload : scan.payloads) {
    if (!removed && payload.rfind("{\"t\":", 0) == 0 &&
        payload.find("\"id\":") != std::string::npos) {
      removed = true;
      continue;
    }
    spliced += frame_record(payload);
  }
  ASSERT_TRUE(removed);
  std::istringstream in(spliced);
  EXPECT_THROW((void)load_trace(in), std::runtime_error);
}

TEST(TraceLoader, RejectsGarbledLines) {
  const AcceleratedRun recorded = run_accelerated(small_config());
  const std::size_t insert_at = recorded.trace.find('\n') + 1;
  std::string garbled = recorded.trace;
  garbled.insert(insert_at, "not json at all\n");
  std::istringstream in(garbled);
  EXPECT_THROW((void)load_trace(in), std::runtime_error);
}

TEST(TraceLoader, RejectsItemsBeyondTheRecordedCatalog) {
  ServeConfig c = small_config();
  std::ostringstream out;
  TraceRecorder recorder(out, c);
  workload::Request r;
  r.arrival = 1.0;
  r.id = 0;
  r.item = static_cast<catalog::ItemId>(c.num_items);  // out of range
  r.cls = 0;
  recorder.record_request(r, 1.0);
  recorder.finish();
  std::istringstream in(out.str());
  EXPECT_THROW((void)load_trace(in), std::runtime_error);
}

TEST(TraceLoader, AcceptsItsOwnRecorderOutput) {
  const AcceleratedRun recorded = run_accelerated(small_config());
  std::istringstream in(recorded.trace);
  const RecordedRun run = load_trace(in);
  EXPECT_GT(run.requests.size(), 0u);
  EXPECT_GT(run.decisions, 0u);
  // Arrivals come back sorted (the Trace contract).
  for (std::size_t i = 1; i < run.requests.size(); ++i) {
    EXPECT_LE(run.requests[i - 1].arrival, run.requests[i].arrival);
  }
}

// ---------------------------------------------------------------------------
// Realtime smoke
// ---------------------------------------------------------------------------

TEST(LiveServer, RealtimeRunDeliversTheWholePlan) {
  // Fast-forwarded hard so the test stays quick: 500 broadcast units per
  // wall second. Timing skew changes the waits, never the delivery count.
  ServeConfig config;
  config.accelerated = false;
  config.duration = 8.0;
  config.target_qps = 3.0;
  config.seed = 11;
  config.time_scale = 500.0;
  config.pacers = 2;
  const auto cat = config.build_catalog();
  const auto pop = config.build_population();
  LoadDriver driver(cat, pop, config.target_qps, config.duration,
                    config.seed);
  const std::size_t planned = driver.plan().size();
  ASSERT_GT(planned, 0u);

  const auto clock = make_wall_clock(config.time_scale);
  CompletionQueue queue(config.queue_capacity);
  LiveServer server(cat, pop, config);
  std::thread producer([&driver, &queue, &clock, &config] {
    driver.run_realtime(queue, *clock, config.pacers);
  });
  const ServeReport report =
      server.run_realtime(queue, *clock, planned, nullptr);
  producer.join();

  EXPECT_EQ(report.arrivals, planned);
  EXPECT_EQ(report.served, planned);
  EXPECT_FALSE(report.accelerated);
  EXPECT_GT(report.end_time, 0.0);
  EXPECT_EQ(queue.posted(), planned);
}

}  // namespace
}  // namespace pushpull::serve
