// Tests for the §4.2.1 two-class priority chain, cross-validated against
// Cobham (§4.2.2) and M/M/1 work conservation.
#include <gtest/gtest.h>

#include <numeric>

#include "queueing/cobham.hpp"
#include "queueing/mm1.hpp"
#include "queueing/two_class_chain.hpp"

namespace pushpull::queueing {
namespace {

TEST(TwoClassChain, RejectsBadInput) {
  EXPECT_THROW(TwoClassPriorityChain(0.0, 0.1, 1.0, 10),
               std::invalid_argument);
  EXPECT_THROW(TwoClassPriorityChain(0.1, -1.0, 1.0, 10),
               std::invalid_argument);
  EXPECT_THROW(TwoClassPriorityChain(0.1, 0.1, 0.0, 10),
               std::invalid_argument);
  EXPECT_THROW(TwoClassPriorityChain(0.1, 0.1, 1.0, 0),
               std::invalid_argument);
}

TEST(TwoClassChain, RequiresSolve) {
  TwoClassPriorityChain chain(0.2, 0.2, 1.0, 20);
  EXPECT_THROW((void)chain.mean_class1(), std::logic_error);
  EXPECT_THROW((void)chain.p(0, 0, 0), std::logic_error);
}

TEST(TwoClassChain, DistributionNormalized) {
  TwoClassPriorityChain chain(0.2, 0.3, 1.0, 30);
  chain.solve();
  double total = 0.0;
  for (std::size_t m = 0; m <= 30; ++m) {
    for (std::size_t n = 0; n <= 30; ++n) {
      for (int r = 0; r <= 2; ++r) total += chain.p(m, n, r);
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(TwoClassChain, IdleMatchesMm1) {
  // Aggregate load ρ = 0.5 ⇒ P(empty) = 0.5 regardless of the discipline.
  TwoClassPriorityChain chain(0.2, 0.3, 1.0, 60);
  chain.solve();
  EXPECT_NEAR(chain.idle_probability(), 0.5, 0.01);
}

TEST(TwoClassChain, InconsistentStatesHaveZeroMass) {
  TwoClassPriorityChain chain(0.2, 0.2, 1.0, 20);
  chain.solve();
  // r = 1 requires m >= 1; r = 2 requires n >= 1; r = 0 requires empty.
  EXPECT_NEAR(chain.p(0, 3, 1), 0.0, 1e-12);
  EXPECT_NEAR(chain.p(3, 0, 2), 0.0, 1e-12);
  EXPECT_NEAR(chain.p(2, 2, 0), 0.0, 1e-12);
}

TEST(TwoClassChain, QueueWaitsMatchCobham) {
  // The transform-free numerical solution must agree with the closed form
  // the paper switches to in §4.2.2.
  const double l1 = 0.2;
  const double l2 = 0.35;
  const double mu = 1.0;
  TwoClassPriorityChain chain(l1, l2, mu, 120);
  chain.solve();
  const auto cobham = cobham_waits({{l1, mu}, {l2, mu}});
  EXPECT_NEAR(chain.queue_wait_class1(), cobham.wait[0],
              0.03 * cobham.wait[0] + 0.01);
  EXPECT_NEAR(chain.queue_wait_class2(), cobham.wait[1],
              0.03 * cobham.wait[1] + 0.01);
}

TEST(TwoClassChain, PriorityOrderingHolds) {
  TwoClassPriorityChain chain(0.25, 0.35, 1.0, 80);
  chain.solve();
  EXPECT_LT(chain.sojourn_class1(), chain.sojourn_class2());
}

TEST(TwoClassChain, WorkConservationAcrossClasses) {
  // λ-weighted mean queue wait equals the pooled FCFS M/M/1 wait.
  const double l1 = 0.2;
  const double l2 = 0.3;
  TwoClassPriorityChain chain(l1, l2, 1.0, 120);
  chain.solve();
  const double weighted = (l1 * chain.queue_wait_class1() +
                           l2 * chain.queue_wait_class2()) /
                          (l1 + l2);
  const MM1 pooled{l1 + l2, 1.0};
  EXPECT_NEAR(weighted, pooled.mean_wait(), 0.03 * pooled.mean_wait());
}

TEST(TwoClassChain, TotalOccupancyMatchesMm1) {
  // L₁ + L₂ must equal the M/M/1 mean number in system (discipline-blind).
  TwoClassPriorityChain chain(0.2, 0.3, 1.0, 120);
  chain.solve();
  const MM1 pooled{0.5, 1.0};
  EXPECT_NEAR(chain.mean_class1() + chain.mean_class2(),
              pooled.mean_in_system(), 0.03 * pooled.mean_in_system());
}

}  // namespace
}  // namespace pushpull::queueing
