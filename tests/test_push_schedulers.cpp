// Unit tests for the push-side broadcast programs: flat round-robin,
// Broadcast Disks and the Square-Root Rule.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "catalog/catalog.hpp"
#include "catalog/length_model.hpp"
#include "sched/push/broadcast_disks.hpp"
#include "sched/push/flat.hpp"
#include "sched/push/square_root_rule.hpp"

namespace pushpull::sched {
namespace {

catalog::Catalog test_catalog(std::size_t n = 30, double theta = 1.0) {
  return catalog::Catalog(n, theta, catalog::LengthModel::paper_default(), 5);
}

// --------------------------------------------------------------------- flat

TEST(FlatPush, CyclesInRankOrder) {
  FlatPush flat(4);
  std::vector<catalog::ItemId> seq;
  for (int i = 0; i < 8; ++i) seq.push_back(flat.next());
  EXPECT_EQ(seq, (std::vector<catalog::ItemId>{0, 1, 2, 3, 0, 1, 2, 3}));
}

TEST(FlatPush, ResetRestarts) {
  FlatPush flat(3);
  (void)flat.next();
  (void)flat.next();
  flat.reset();
  EXPECT_EQ(flat.next(), 0u);
}

TEST(FlatPush, RejectsEmptyPushSet) {
  EXPECT_THROW(FlatPush(0), std::invalid_argument);
}

TEST(FlatPush, SingleItem) {
  FlatPush flat(1);
  EXPECT_EQ(flat.next(), 0u);
  EXPECT_EQ(flat.next(), 0u);
}

// ---------------------------------------------------------- broadcast disks

TEST(BroadcastDisks, EveryPushItemAppears) {
  const auto cat = test_catalog();
  BroadcastDisksPush disks(cat, 12, 3);
  std::vector<bool> seen(12, false);
  for (catalog::ItemId id : disks.major_cycle()) {
    ASSERT_LT(id, 12u);
    seen[id] = true;
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(BroadcastDisks, HotterDisksRecurMoreOften) {
  const auto cat = test_catalog();
  BroadcastDisksPush disks(cat, 12, 3);
  std::map<catalog::ItemId, int> freq;
  for (catalog::ItemId id : disks.major_cycle()) ++freq[id];
  // Item 0 is on the hottest disk (relative frequency 3), item 11 on the
  // coldest (frequency 1).
  EXPECT_EQ(freq[0], 3);
  EXPECT_EQ(freq[11], 1);
  EXPECT_GT(freq[0], freq[11]);
}

TEST(BroadcastDisks, NextWrapsAroundCycle) {
  const auto cat = test_catalog();
  BroadcastDisksPush disks(cat, 6, 2);
  const std::size_t cycle = disks.major_cycle().size();
  std::vector<catalog::ItemId> first;
  std::vector<catalog::ItemId> second;
  for (std::size_t i = 0; i < cycle; ++i) first.push_back(disks.next());
  for (std::size_t i = 0; i < cycle; ++i) second.push_back(disks.next());
  EXPECT_EQ(first, second);
}

TEST(BroadcastDisks, SingleDiskIsFlat) {
  const auto cat = test_catalog();
  BroadcastDisksPush disks(cat, 5, 1);
  std::vector<catalog::ItemId> seq;
  for (int i = 0; i < 5; ++i) seq.push_back(disks.next());
  EXPECT_EQ(seq, (std::vector<catalog::ItemId>{0, 1, 2, 3, 4}));
}

TEST(BroadcastDisks, MoreDisksThanItemsIsClamped) {
  const auto cat = test_catalog();
  BroadcastDisksPush disks(cat, 2, 5);
  std::vector<bool> seen(2, false);
  for (catalog::ItemId id : disks.major_cycle()) seen[id] = true;
  EXPECT_TRUE(seen[0]);
  EXPECT_TRUE(seen[1]);
}

TEST(BroadcastDisks, RejectsBadArguments) {
  const auto cat = test_catalog();
  EXPECT_THROW(BroadcastDisksPush(cat, 0, 3), std::invalid_argument);
  EXPECT_THROW(BroadcastDisksPush(cat, 5, 0), std::invalid_argument);
  EXPECT_THROW(BroadcastDisksPush(cat, 1000, 3), std::invalid_argument);
}

TEST(BroadcastDisks, ResetRestartsCycle) {
  const auto cat = test_catalog();
  BroadcastDisksPush disks(cat, 6, 2);
  const catalog::ItemId first = disks.next();
  (void)disks.next();
  disks.reset();
  EXPECT_EQ(disks.next(), first);
}

// --------------------------------------------------------- square-root rule

TEST(SquareRootRule, SpacingFollowsSqrtLawAcrossItems) {
  const auto cat = test_catalog(20, 1.0);
  SquareRootRulePush srr(cat, 10);
  // s_i / s_j should equal sqrt((L_i/P_i) / (L_j/P_j)).
  for (catalog::ItemId i = 1; i < 10; ++i) {
    const double expected =
        std::sqrt((cat.length(i) / cat.probability(i)) /
                  (cat.length(0) / cat.probability(0)));
    EXPECT_NEAR(srr.spacing(i) / srr.spacing(0), expected, 1e-9);
  }
}

TEST(SquareRootRule, PopularItemsBroadcastMoreOften) {
  const auto cat = test_catalog(30, 1.2);
  SquareRootRulePush srr(cat, 15);
  std::map<catalog::ItemId, int> freq;
  for (int i = 0; i < 3000; ++i) ++freq[srr.next()];
  EXPECT_GT(freq[0], freq[14]);
  // Every push item gets airtime — no starvation.
  for (catalog::ItemId id = 0; id < 15; ++id) EXPECT_GT(freq[id], 0);
}

TEST(SquareRootRule, FrequencyRatioTracksSqrtRule) {
  // With equal lengths the frequency ratio should approach
  // sqrt(P_0 / P_k).
  catalog::Catalog cat(std::vector<double>(10, 1.0), 1.0);
  SquareRootRulePush srr(cat, 10);
  std::map<catalog::ItemId, int> freq;
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++freq[srr.next()];
  const double sqrt_ratio = std::sqrt(cat.probability(0) / cat.probability(9));
  const double linear_ratio = cat.probability(0) / cat.probability(9);
  const double actual =
      static_cast<double>(freq[0]) / static_cast<double>(freq[9]);
  // The online greedy approximates the square-root optimum; with only ten
  // items the discretization bias is noticeable, so assert a band around
  // the sqrt law that excludes both the uniform (1) and the proportional
  // (P_0/P_9 = 10) alternatives.
  EXPECT_GT(actual, 0.6 * sqrt_ratio);
  EXPECT_LT(actual, 0.5 * (sqrt_ratio + linear_ratio));
}

TEST(SquareRootRule, ResetReplaysSequence) {
  const auto cat = test_catalog();
  SquareRootRulePush srr(cat, 8);
  std::vector<catalog::ItemId> first;
  for (int i = 0; i < 50; ++i) first.push_back(srr.next());
  srr.reset();
  for (std::size_t i = 0; i < 50; ++i) EXPECT_EQ(srr.next(), first[i]);
}

TEST(SquareRootRule, RejectsBadArguments) {
  const auto cat = test_catalog();
  EXPECT_THROW(SquareRootRulePush(cat, 0), std::invalid_argument);
  EXPECT_THROW(SquareRootRulePush(cat, 1000), std::invalid_argument);
}

// ------------------------------------------------------------------ factory

TEST(PushFactory, CreatesEachKind) {
  const auto cat = test_catalog();
  for (auto kind : {PushPolicyKind::kFlat, PushPolicyKind::kBroadcastDisks,
                    PushPolicyKind::kSquareRootRule}) {
    const auto sched = make_push_scheduler(kind, cat, 10);
    EXPECT_EQ(sched->name(), to_string(kind));
    EXPECT_LT(sched->next(), 10u);
  }
}

TEST(PushFactory, RejectsOversizedCutoff) {
  const auto cat = test_catalog();
  EXPECT_THROW(make_push_scheduler(PushPolicyKind::kFlat, cat, 1000),
               std::invalid_argument);
}

}  // namespace
}  // namespace pushpull::sched
