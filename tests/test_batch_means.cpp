// Tests for the batch-means CI estimator.
#include <gtest/gtest.h>

#include "exp/scenario.hpp"
#include "metrics/batch_means.hpp"
#include "rng/exponential.hpp"
#include "rng/xoshiro256ss.hpp"

namespace pushpull::metrics {
namespace {

TEST(BatchMeans, RejectsBadBatching) {
  BatchMeans bm;
  bm.add(1.0);
  EXPECT_THROW((void)bm.batch_statistics(1), std::invalid_argument);
  EXPECT_THROW((void)bm.batch_statistics(5), std::invalid_argument);
}

TEST(BatchMeans, MeanMatchesWelford) {
  BatchMeans bm;
  Welford w;
  rng::Xoshiro256ss eng(1);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng::exponential(eng, 0.5);
    bm.add(x);
    w.add(x);
  }
  EXPECT_NEAR(bm.mean(), w.mean(), 1e-9);
}

TEST(BatchMeans, IidDataHasNearZeroAutocorrelation) {
  BatchMeans bm;
  rng::Xoshiro256ss eng(2);
  for (int i = 0; i < 50000; ++i) bm.add(rng::exponential(eng, 1.0));
  EXPECT_NEAR(bm.lag1_autocorrelation(), 0.0, 0.02);
}

TEST(BatchMeans, Ar1DataIsAutocorrelatedAndWidensCi) {
  // AR(1) with φ = 0.9: strongly autocorrelated; the batch-means CI must
  // be wider than the (invalid) iid Welford CI.
  BatchMeans bm;
  Welford naive;
  rng::Xoshiro256ss eng(3);
  double x = 0.0;
  for (int i = 0; i < 100000; ++i) {
    x = 0.9 * x + rng::exponential(eng, 1.0) - 1.0;
    bm.add(x);
    naive.add(x);
  }
  EXPECT_GT(bm.lag1_autocorrelation(), 0.8);
  EXPECT_GT(bm.ci_half_width(20), 2.0 * naive.ci_half_width());
}

TEST(BatchMeans, BatchMeansCoverTrueMeanOfIid) {
  // For iid data the batch CI behaves like the classic one.
  BatchMeans bm;
  rng::Xoshiro256ss eng(4);
  const double rate = 2.0;
  for (int i = 0; i < 40000; ++i) bm.add(rng::exponential(eng, rate));
  const double half = bm.ci_half_width(20);
  EXPECT_NEAR(bm.mean(), 1.0 / rate, 3.0 * half);
  EXPECT_GT(half, 0.0);
}

TEST(BatchMeans, SimulationWaitsAreAutocorrelated) {
  // Consecutive waits in the hybrid simulation share queue state — the
  // whole reason this estimator exists.
  exp::Scenario scenario;
  scenario.num_requests = 20000;
  const auto built = scenario.build();
  core::HybridConfig config;
  config.cutoff = 20;
  const core::SimResult r = exp::run_hybrid(built, config);
  // Re-run and collect waits in completion order via a fresh simulation is
  // not exposed; instead sanity-check the estimator on a synthetic queue
  // proxy: cumulative workload excursions.
  BatchMeans bm;
  rng::Xoshiro256ss eng(5);
  double backlog = 0.0;
  for (int i = 0; i < 30000; ++i) {
    backlog = std::max(0.0, backlog + rng::exponential(eng, 1.0) - 1.02);
    bm.add(backlog);
  }
  EXPECT_GT(bm.lag1_autocorrelation(), 0.5);
  EXPECT_GT(r.overall().served, 0u);  // the simulation itself ran
}

}  // namespace
}  // namespace pushpull::metrics
