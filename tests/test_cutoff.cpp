// Unit tests for the cutoff-point scan/optimizer.
#include <gtest/gtest.h>

#include <cmath>

#include "core/cutoff_optimizer.hpp"

namespace pushpull::core {
namespace {

TEST(CutoffScan, FindsParabolaMinimum) {
  const auto cost = [](std::size_t k) {
    const double x = static_cast<double>(k);
    return (x - 37.0) * (x - 37.0);
  };
  const CutoffScan scan = scan_cutoffs(0, 100, 1, cost);
  EXPECT_EQ(scan.best_cutoff, 37u);
  EXPECT_DOUBLE_EQ(scan.best_cost, 0.0);
  EXPECT_EQ(scan.curve.size(), 101u);
}

TEST(CutoffScan, StepSamplingStillCoversEndpoints) {
  const auto cost = [](std::size_t k) { return static_cast<double>(k); };
  const CutoffScan scan = scan_cutoffs(0, 100, 7, cost);
  EXPECT_EQ(scan.curve.front().cutoff, 0u);
  EXPECT_EQ(scan.curve.back().cutoff, 100u);
  EXPECT_EQ(scan.best_cutoff, 0u);
}

TEST(CutoffScan, StepLargerThanRange) {
  const auto cost = [](std::size_t k) { return static_cast<double>(k); };
  const CutoffScan scan = scan_cutoffs(3, 5, 10, cost);
  ASSERT_EQ(scan.curve.size(), 2u);
  EXPECT_EQ(scan.curve[0].cutoff, 3u);
  EXPECT_EQ(scan.curve[1].cutoff, 5u);
}

TEST(CutoffScan, SinglePoint) {
  const auto cost = [](std::size_t) { return 4.0; };
  const CutoffScan scan = scan_cutoffs(8, 8, 1, cost);
  ASSERT_EQ(scan.curve.size(), 1u);
  EXPECT_EQ(scan.best_cutoff, 8u);
  EXPECT_DOUBLE_EQ(scan.best_cost, 4.0);
}

TEST(CutoffScan, FirstMinimumWinsOnTies) {
  const auto cost = [](std::size_t k) {
    return (k == 10 || k == 20) ? 1.0 : 2.0;
  };
  const CutoffScan scan = scan_cutoffs(0, 30, 1, cost);
  EXPECT_EQ(scan.best_cutoff, 10u);
}

TEST(CutoffScan, MinimumAtRightEndpoint) {
  const auto cost = [](std::size_t k) { return 100.0 - static_cast<double>(k); };
  const CutoffScan scan = scan_cutoffs(0, 55, 10, cost);
  EXPECT_EQ(scan.best_cutoff, 55u);
}

TEST(CutoffScan, RejectsBadArguments) {
  const auto cost = [](std::size_t) { return 0.0; };
  EXPECT_THROW(scan_cutoffs(5, 4, 1, cost), std::invalid_argument);
  EXPECT_THROW(scan_cutoffs(0, 10, 0, cost), std::invalid_argument);
}

TEST(CutoffScan, CurveIsStrictlyIncreasingInCutoff) {
  const auto cost = [](std::size_t k) { return std::sin(static_cast<double>(k)); };
  const CutoffScan scan = scan_cutoffs(0, 50, 3, cost);
  for (std::size_t i = 1; i < scan.curve.size(); ++i) {
    EXPECT_LT(scan.curve[i - 1].cutoff, scan.curve[i].cutoff);
  }
}

}  // namespace
}  // namespace pushpull::core
