// Tests for the compound-Poisson (bursty) request source.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "catalog/catalog.hpp"
#include "core/hybrid_server.hpp"
#include "catalog/length_model.hpp"
#include "workload/bursty_generator.hpp"
#include "workload/trace.hpp"

namespace pushpull::workload {
namespace {

catalog::Catalog test_catalog() {
  return catalog::Catalog(50, 0.6, catalog::LengthModel::paper_default(), 3);
}

TEST(Bursty, RejectsBadArguments) {
  const auto cat = test_catalog();
  const auto pop = ClientPopulation::paper_default();
  EXPECT_THROW(BurstyGenerator(cat, pop, 0.0, 2.0, 1), std::invalid_argument);
  EXPECT_THROW(BurstyGenerator(cat, pop, 5.0, 0.5, 1), std::invalid_argument);
}

TEST(Bursty, AggregateRateMatchesTarget) {
  const auto cat = test_catalog();
  const auto pop = ClientPopulation::paper_default();
  BurstyGenerator gen(cat, pop, 5.0, 4.0, 7);
  const int n = 100000;
  Request last;
  for (int i = 0; i < n; ++i) last = gen.next();
  EXPECT_NEAR(static_cast<double>(n) / last.arrival, 5.0, 0.2);
}

TEST(Bursty, ArrivalsNonDecreasingAndBatchesShareInstants) {
  const auto cat = test_catalog();
  const auto pop = ClientPopulation::paper_default();
  BurstyGenerator gen(cat, pop, 5.0, 3.0, 8);
  double last = -1.0;
  int shared = 0;
  for (int i = 0; i < 5000; ++i) {
    const Request r = gen.next();
    EXPECT_GE(r.arrival, last);
    if (r.arrival == last) ++shared;
    last = r.arrival;
  }
  // Mean batch size 3 ⇒ roughly two thirds of consecutive pairs share an
  // instant.
  EXPECT_GT(shared, 2000);
}

TEST(Bursty, BatchMeanOneIsNearlyPoisson) {
  const auto cat = test_catalog();
  const auto pop = ClientPopulation::paper_default();
  BurstyGenerator gen(cat, pop, 5.0, 1.0, 9);
  double last = -1.0;
  int shared = 0;
  for (int i = 0; i < 5000; ++i) {
    const Request r = gen.next();
    if (r.arrival == last) ++shared;
    last = r.arrival;
  }
  EXPECT_EQ(shared, 0);  // every batch has exactly one request
}

TEST(Bursty, DispersionGrowsWithBatchMean) {
  // Index of dispersion of counts in unit windows ≈ batch mean.
  const auto cat = test_catalog();
  const auto pop = ClientPopulation::paper_default();
  const auto dispersion = [&](double batch_mean, std::uint64_t seed) {
    BurstyGenerator gen(cat, pop, 5.0, batch_mean, seed);
    std::vector<int> counts(4000, 0);
    for (;;) {
      const Request r = gen.next();
      const auto window = static_cast<std::size_t>(r.arrival);
      if (window >= counts.size()) break;
      ++counts[window];
    }
    double mean = 0.0;
    for (int c : counts) mean += c;
    mean /= static_cast<double>(counts.size());
    double var = 0.0;
    for (int c : counts) var += (c - mean) * (c - mean);
    var /= static_cast<double>(counts.size() - 1);
    return var / mean;
  };
  const double d1 = dispersion(1.0, 11);
  const double d4 = dispersion(4.0, 11);
  EXPECT_NEAR(d1, 1.0, 0.3);  // Poisson: variance == mean
  EXPECT_GT(d4, 2.5);         // strongly over-dispersed
}

TEST(Bursty, DeterministicForSeed) {
  const auto cat = test_catalog();
  const auto pop = ClientPopulation::paper_default();
  BurstyGenerator a(cat, pop, 5.0, 3.0, 21);
  BurstyGenerator b(cat, pop, 5.0, 3.0, 21);
  for (int i = 0; i < 500; ++i) {
    const Request ra = a.next();
    const Request rb = b.next();
    EXPECT_DOUBLE_EQ(ra.arrival, rb.arrival);
    EXPECT_EQ(ra.item, rb.item);
  }
}

TEST(Bursty, WorksWithTraceAndServer) {
  const auto cat = test_catalog();
  const auto pop = ClientPopulation::paper_default();
  BurstyGenerator gen(cat, pop, 5.0, 4.0, 22);
  const Trace trace = Trace::record(gen, 5000);
  core::HybridConfig config;
  config.cutoff = 15;
  core::HybridServer server(cat, pop, config);
  const core::SimResult r = server.run(trace);
  EXPECT_EQ(r.overall().served, trace.size());
}

}  // namespace
}  // namespace pushpull::workload
