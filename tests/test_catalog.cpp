// Unit tests for the item catalog: the length model, Zipf popularities,
// prefix metrics and the push/pull partition.
#include <gtest/gtest.h>

#include <cmath>

#include "catalog/catalog.hpp"
#include "catalog/length_model.hpp"
#include "rng/xoshiro256ss.hpp"

namespace pushpull::catalog {
namespace {

// -------------------------------------------------------------- LengthModel

TEST(LengthModel, PaperDefaultHitsMeanExactly) {
  const LengthModel model = LengthModel::paper_default();
  EXPECT_EQ(model.min_length(), 1u);
  EXPECT_EQ(model.max_length(), 5u);
  EXPECT_NEAR(model.mean(), 2.0, 1e-9);
}

TEST(LengthModel, WeightsSumToOne) {
  const LengthModel model(1, 5, 2.0);
  double sum = 0.0;
  for (double w : model.weights()) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(LengthModel, LowMeanSkewsShort) {
  const LengthModel model(1, 5, 2.0);
  // Mean below the midpoint ⇒ decreasing weights.
  const auto& w = model.weights();
  for (std::size_t i = 1; i < w.size(); ++i) EXPECT_LT(w[i], w[i - 1]);
}

TEST(LengthModel, HighMeanSkewsLong) {
  const LengthModel model(1, 5, 4.0);
  const auto& w = model.weights();
  for (std::size_t i = 1; i < w.size(); ++i) EXPECT_GT(w[i], w[i - 1]);
}

TEST(LengthModel, MidpointMeanIsUniform) {
  const LengthModel model(1, 5, 3.0);
  for (double w : model.weights()) EXPECT_NEAR(w, 0.2, 1e-6);
}

TEST(LengthModel, DegenerateSupport) {
  const LengthModel model(4, 4, 4.0);
  EXPECT_NEAR(model.mean(), 4.0, 1e-12);
  rng::Xoshiro256ss eng(1);
  EXPECT_DOUBLE_EQ(model.sample(eng), 4.0);
}

TEST(LengthModel, RejectsInvalidMean) {
  EXPECT_THROW(LengthModel(1, 5, 1.0), std::invalid_argument);
  EXPECT_THROW(LengthModel(1, 5, 5.0), std::invalid_argument);
  EXPECT_THROW(LengthModel(1, 5, 0.5), std::invalid_argument);
  EXPECT_THROW(LengthModel(5, 1, 3.0), std::invalid_argument);
}

TEST(LengthModel, SampleMeanMatches) {
  const LengthModel model(1, 5, 2.0);
  rng::Xoshiro256ss eng(2);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double len = model.sample(eng);
    EXPECT_GE(len, 1.0);
    EXPECT_LE(len, 5.0);
    sum += len;
  }
  EXPECT_NEAR(sum / n, 2.0, 0.01);
}

TEST(LengthModel, GenerateProducesCount) {
  const LengthModel model(1, 5, 2.0);
  rng::Xoshiro256ss eng(3);
  const auto lengths = model.generate(eng, 1000);
  EXPECT_EQ(lengths.size(), 1000u);
}

// ------------------------------------------------------------------ Catalog

class CatalogTest : public ::testing::Test {
 protected:
  Catalog cat_{100, 0.6, LengthModel::paper_default(), 42};
};

TEST_F(CatalogTest, ProbabilitiesSumToOne) {
  double sum = 0.0;
  for (const auto& item : cat_.items()) sum += item.access_prob;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST_F(CatalogTest, RankOrderIsByPopularity) {
  for (std::size_t i = 1; i < cat_.size(); ++i) {
    EXPECT_GE(cat_.probability(static_cast<ItemId>(i - 1)),
              cat_.probability(static_cast<ItemId>(i)));
  }
}

TEST_F(CatalogTest, IdsAreDense) {
  for (std::size_t i = 0; i < cat_.size(); ++i) {
    EXPECT_EQ(cat_.item(static_cast<ItemId>(i)).id, i);
  }
}

TEST_F(CatalogTest, MassesComplement) {
  for (std::size_t k : {std::size_t{0}, std::size_t{1}, std::size_t{40},
                        std::size_t{99}, std::size_t{100}}) {
    EXPECT_NEAR(cat_.push_probability(k) + cat_.pull_probability(k), 1.0,
                1e-12);
  }
}

TEST_F(CatalogTest, EdgeCutoffs) {
  EXPECT_DOUBLE_EQ(cat_.push_probability(0), 0.0);
  EXPECT_NEAR(cat_.pull_probability(100), 0.0, 1e-15);
  EXPECT_DOUBLE_EQ(cat_.push_cycle_length(0), 0.0);
  EXPECT_DOUBLE_EQ(cat_.pull_mean_length(100), 0.0);
}

TEST_F(CatalogTest, ServiceDemandsMatchDefinition) {
  const std::size_t k = 30;
  double mu1 = 0.0;
  double mu2 = 0.0;
  for (std::size_t i = 0; i < cat_.size(); ++i) {
    const auto& item = cat_.item(static_cast<ItemId>(i));
    (i < k ? mu1 : mu2) += item.access_prob * item.length;
  }
  EXPECT_NEAR(cat_.push_service_demand(k), mu1, 1e-12);
  EXPECT_NEAR(cat_.pull_service_demand(k), mu2, 1e-12);
}

TEST_F(CatalogTest, CycleLengthIsSumOfPushLengths) {
  const std::size_t k = 25;
  double cycle = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    cycle += cat_.length(static_cast<ItemId>(i));
  }
  EXPECT_NEAR(cat_.push_cycle_length(k), cycle, 1e-12);
}

TEST_F(CatalogTest, PullMeanLengthIsConditionalMean) {
  const std::size_t k = 60;
  EXPECT_NEAR(cat_.pull_mean_length(k),
              cat_.pull_service_demand(k) / cat_.pull_probability(k), 1e-12);
}

TEST_F(CatalogTest, SameSeedSameCatalog) {
  Catalog other(100, 0.6, LengthModel::paper_default(), 42);
  for (std::size_t i = 0; i < cat_.size(); ++i) {
    EXPECT_DOUBLE_EQ(other.length(static_cast<ItemId>(i)),
                     cat_.length(static_cast<ItemId>(i)));
  }
}

TEST_F(CatalogTest, DifferentSeedDifferentLengths) {
  Catalog other(100, 0.6, LengthModel::paper_default(), 43);
  int diff = 0;
  for (std::size_t i = 0; i < cat_.size(); ++i) {
    if (other.length(static_cast<ItemId>(i)) !=
        cat_.length(static_cast<ItemId>(i))) {
      ++diff;
    }
  }
  EXPECT_GT(diff, 10);
}

TEST_F(CatalogTest, SamplingFollowsPopularity) {
  rng::Xoshiro256ss eng(9);
  std::vector<int> counts(cat_.size(), 0);
  const int n = 300000;
  for (int i = 0; i < n; ++i) ++counts[cat_.sample(eng)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, cat_.probability(0), 0.005);
  EXPECT_GT(counts[0], counts[99]);
}

TEST(Catalog, ExplicitLengthsConstructor) {
  Catalog cat({2.0, 1.0, 4.0}, 1.0);
  EXPECT_EQ(cat.size(), 3u);
  EXPECT_DOUBLE_EQ(cat.length(0), 2.0);
  EXPECT_DOUBLE_EQ(cat.length(2), 4.0);
  double sum = 0.0;
  for (const auto& item : cat.items()) sum += item.access_prob;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Catalog, RejectsBadExplicitLengths) {
  EXPECT_THROW(Catalog(std::vector<double>{}, 1.0), std::invalid_argument);
  EXPECT_THROW(Catalog(std::vector<double>{1.0, 0.0}, 1.0),
               std::invalid_argument);
  EXPECT_THROW(Catalog(std::vector<double>{1.0, -2.0}, 1.0),
               std::invalid_argument);
}

// ---------------------------------------------------------------- Partition

TEST(Partition, SplitsAtCutoff) {
  Catalog cat({1.0, 2.0, 3.0, 4.0}, 0.5);
  Partition part(cat, 2);
  EXPECT_TRUE(part.is_push(0));
  EXPECT_TRUE(part.is_push(1));
  EXPECT_TRUE(part.is_pull(2));
  EXPECT_TRUE(part.is_pull(3));
  EXPECT_EQ(part.push_count(), 2u);
  EXPECT_EQ(part.pull_count(), 2u);
}

TEST(Partition, PurePushAndPurePull) {
  Catalog cat({1.0, 2.0}, 0.5);
  Partition pure_pull(cat, 0);
  EXPECT_TRUE(pure_pull.is_pull(0));
  EXPECT_EQ(pure_pull.push_count(), 0u);
  Partition pure_push(cat, 2);
  EXPECT_TRUE(pure_push.is_push(1));
  EXPECT_EQ(pure_push.pull_count(), 0u);
}

}  // namespace
}  // namespace pushpull::catalog
