// Integration tests across modules: simulation vs analytical model,
// Little's law on the simulated pull queue, policy cross-comparisons and
// the blocking/bandwidth interplay.
#include <gtest/gtest.h>

#include <cmath>

#include "core/cutoff_optimizer.hpp"
#include "exp/scenario.hpp"
#include "queueing/access_time.hpp"
#include "queueing/littles.hpp"

namespace pushpull {
namespace {

exp::Scenario default_scenario(std::size_t requests = 30000) {
  exp::Scenario s;
  s.num_requests = requests;
  return s;
}

TEST(Integration, AnalyticTracksSimulationShape) {
  const auto built = default_scenario(40000).build();
  queueing::HybridAccessModel model(built.catalog, built.population, 5.0);

  // Compare overall mean delay at several cutoffs; the analytic model should
  // stay within a factor of ~2.5 of simulation (the paper itself reports
  // ~10% at its calibrated point; our bound is deliberately loose because
  // the workload regime here is heavily batched).
  for (std::size_t k : {std::size_t{20}, std::size_t{50}, std::size_t{80}}) {
    core::HybridConfig config;
    config.cutoff = k;
    config.alpha = 0.75;
    const core::SimResult sim = exp::run_hybrid(built, config);
    const auto est = model.estimate(k);
    const double simulated = sim.overall().wait.mean();
    EXPECT_GT(est.overall, simulated / 2.5) << "k=" << k;
    EXPECT_LT(est.overall, simulated * 2.5) << "k=" << k;
  }
}

TEST(Integration, LittlesLawOnPullQueue) {
  const auto built = default_scenario(40000).build();
  core::HybridConfig config;
  config.cutoff = 40;
  const core::SimResult result = exp::run_hybrid(built, config);

  // L = λ_pull · W_pull for pull-served requests (waits measured to
  // delivery, queue length measured in pending requests; the difference is
  // the in-flight transmission, so allow a modest tolerance band).
  const auto overall = result.overall();
  const std::uint64_t pull_served = overall.served_pull;
  ASSERT_GT(pull_served, 0u);
  // The time-weighted queue length implied by Little's law must be positive
  // and bounded by the worst observed wait.
  const double lambda_pull = static_cast<double>(pull_served) / result.end_time;
  const double implied_wait =
      queueing::littles_wait(result.mean_pull_queue_len, lambda_pull);
  EXPECT_GT(implied_wait, 0.0);
  // Pull waits cannot exceed the overall max wait.
  EXPECT_LE(implied_wait, overall.wait.max());
}

TEST(Integration, PriorityPolicyBeatsStretchForPremiumClass) {
  const auto built = default_scenario(40000).build();
  core::HybridConfig priority;
  priority.cutoff = 15;
  priority.pull_policy = sched::PullPolicyKind::kImportance;
  priority.alpha = 0.0;  // pure priority

  core::HybridConfig stretch = priority;
  stretch.alpha = 1.0;  // pure stretch (priority-blind)

  const core::SimResult rp = exp::run_hybrid(built, priority);
  const core::SimResult rs = exp::run_hybrid(built, stretch);

  // Class-A pull delay should benefit from priority weighting.
  EXPECT_LT(rp.mean_wait(0), rs.mean_wait(0) * 1.05);
  // And the class ordering under pure priority must hold.
  EXPECT_LE(rp.mean_wait(0), rp.mean_wait(1) * 1.05);
  EXPECT_LE(rp.mean_wait(1), rp.mean_wait(2) * 1.05);
}

TEST(Integration, ImportanceMatchesStretchAtAlphaOne) {
  const auto built = default_scenario(10000).build();
  core::HybridConfig importance;
  importance.cutoff = 20;
  importance.pull_policy = sched::PullPolicyKind::kImportance;
  importance.alpha = 1.0;

  core::HybridConfig stretch = importance;
  stretch.pull_policy = sched::PullPolicyKind::kStretch;

  const core::SimResult ri = exp::run_hybrid(built, importance);
  const core::SimResult rs = exp::run_hybrid(built, stretch);
  EXPECT_DOUBLE_EQ(ri.overall().wait.mean(), rs.overall().wait.mean());
  EXPECT_EQ(ri.pull_transmissions, rs.pull_transmissions);
}

TEST(Integration, ImportanceMatchesPriorityAtAlphaZero) {
  const auto built = default_scenario(10000).build();
  core::HybridConfig importance;
  importance.cutoff = 20;
  importance.pull_policy = sched::PullPolicyKind::kImportance;
  importance.alpha = 0.0;

  core::HybridConfig priority = importance;
  priority.pull_policy = sched::PullPolicyKind::kPriority;

  const core::SimResult ri = exp::run_hybrid(built, importance);
  const core::SimResult rp = exp::run_hybrid(built, priority);
  EXPECT_DOUBLE_EQ(ri.overall().wait.mean(), rp.overall().wait.mean());
}

TEST(Integration, MoreBandwidthLowersBlocking) {
  const auto built = default_scenario(20000).build();
  core::HybridConfig scarce;
  scarce.cutoff = 10;
  scarce.total_bandwidth = 1.5;
  scarce.mean_bandwidth_demand = 1.0;

  core::HybridConfig ample = scarce;
  ample.total_bandwidth = 30.0;

  const core::SimResult rs = exp::run_hybrid(built, scarce);
  const core::SimResult ra = exp::run_hybrid(built, ample);
  EXPECT_GT(rs.overall().blocked, ra.overall().blocked);
}

TEST(Integration, PremiumBandwidthShareDrivesPremiumBlockingDown) {
  const auto built = default_scenario(20000).build();
  core::HybridConfig skewed;
  skewed.cutoff = 10;
  skewed.total_bandwidth = 5.0;
  skewed.mean_bandwidth_demand = 2.0;
  skewed.bandwidth_fractions = {0.8, 0.1, 0.1};

  core::HybridConfig equal = skewed;
  equal.bandwidth_fractions = {1.0 / 3, 1.0 / 3, 1.0 / 3};

  const core::SimResult r_skewed = exp::run_hybrid(built, skewed);
  const core::SimResult r_equal = exp::run_hybrid(built, equal);
  EXPECT_LE(r_skewed.per_class[0].blocking_ratio(),
            r_equal.per_class[0].blocking_ratio());
}

TEST(Integration, CutoffScanOverSimulationFindsInteriorOptimum) {
  const auto built = default_scenario(15000).build();
  const auto cost = [&](std::size_t k) {
    core::HybridConfig config;
    config.cutoff = k;
    config.alpha = 0.5;
    return exp::run_hybrid(built, config)
        .total_prioritized_cost(built.population);
  };
  const core::CutoffScan scan = core::scan_cutoffs(5, 95, 15, cost);
  EXPECT_GE(scan.best_cutoff, 5u);
  EXPECT_LE(scan.best_cutoff, 95u);
  EXPECT_TRUE(std::isfinite(scan.best_cost));
  // The optimum strictly beats at least one scanned endpoint (the curve is
  // not flat).
  const double worst = std::max(scan.curve.front().cost, scan.curve.back().cost);
  EXPECT_LT(scan.best_cost, worst);
}

TEST(Integration, CutoffScanOverAnalyticModelAgreesRoughly) {
  const auto built = default_scenario(10000).build();
  queueing::HybridAccessModel model(built.catalog, built.population, 5.0);
  const auto analytic_cost = [&](std::size_t k) {
    return model.prioritized_cost(k);
  };
  const core::CutoffScan scan = core::scan_cutoffs(0, 100, 5, analytic_cost);
  EXPECT_TRUE(std::isfinite(scan.best_cost));
  EXPECT_LE(scan.best_cutoff, 100u);
}

TEST(Integration, HigherThetaConcentratesPushService) {
  // With a steeper Zipf, the same cutoff captures more probability mass, so
  // more requests are served by the broadcast.
  exp::Scenario mild = default_scenario(20000);
  mild.theta = 0.2;
  exp::Scenario steep = default_scenario(20000);
  steep.theta = 1.4;

  core::HybridConfig config;
  config.cutoff = 30;

  const core::SimResult rm = exp::run_hybrid(mild.build(), config);
  const core::SimResult rs = exp::run_hybrid(steep.build(), config);
  const double frac_m = static_cast<double>(rm.overall().served_push) /
                        static_cast<double>(rm.overall().served);
  const double frac_s = static_cast<double>(rs.overall().served_push) /
                        static_cast<double>(rs.overall().served);
  EXPECT_GT(frac_s, frac_m);
}

}  // namespace
}  // namespace pushpull
