// Cross-validation of the DES kernel against closed-form queueing theory:
// an M/M/1 and an M/D/1 queue are simulated event-by-event on the kernel
// and compared with the exact formulas. This is the strongest evidence the
// kernel's clock, FIFO ordering and event dispatch are correct.
#include <gtest/gtest.h>

#include <deque>

#include "des/simulator.hpp"
#include "metrics/welford.hpp"
#include "queueing/mg1.hpp"
#include "queueing/mm1.hpp"
#include "queueing/cobham.hpp"
#include "rng/alias_table.hpp"
#include "rng/exponential.hpp"
#include "rng/stream.hpp"

namespace pushpull {
namespace {

/// Single-server FCFS queue simulated on the DES kernel. Service times are
/// produced by `service_fn` (exponential, deterministic, ...).
template <typename ServiceFn>
metrics::Welford simulate_queue(double lambda, ServiceFn service_fn,
                                std::size_t customers, std::uint64_t seed) {
  des::Simulator sim;
  rng::StreamFactory streams(seed);
  auto arrivals_eng = streams.stream("arrivals");

  metrics::Welford wait_in_queue;
  std::deque<double> queue;  // arrival times of waiting customers
  bool busy = false;
  std::size_t generated = 0;

  // Forward declarations via std::function to allow mutual recursion.
  std::function<void()> start_service = [&] {
    busy = true;
    const double arrival = queue.front();
    queue.pop_front();
    wait_in_queue.add(sim.now() - arrival);
    sim.schedule_in(service_fn(), [&] {
      busy = false;
      if (!queue.empty()) start_service();
    });
  };
  std::function<void()> arrive = [&] {
    queue.push_back(sim.now());
    if (!busy) start_service();
    if (++generated < customers) {
      sim.schedule_in(rng::exponential(arrivals_eng, lambda), arrive);
    }
  };

  sim.schedule_at(rng::exponential(arrivals_eng, lambda), arrive);
  sim.run();
  return wait_in_queue;
}

TEST(KernelValidation, MM1WaitMatchesFormula) {
  const double lambda = 0.7;
  const double mu = 1.0;
  rng::StreamFactory streams(99);
  auto service_eng = streams.stream("service");
  const auto wait = simulate_queue(
      lambda, [&] { return rng::exponential(service_eng, mu); }, 400000, 99);

  const queueing::MM1 reference{lambda, mu};
  EXPECT_NEAR(wait.mean(), reference.mean_wait(),
              0.06 * reference.mean_wait());
}

TEST(KernelValidation, MM1LowLoad) {
  const double lambda = 0.2;
  const double mu = 1.0;
  rng::StreamFactory streams(7);
  auto service_eng = streams.stream("service");
  const auto wait = simulate_queue(
      lambda, [&] { return rng::exponential(service_eng, mu); }, 300000, 7);
  const queueing::MM1 reference{lambda, mu};
  EXPECT_NEAR(wait.mean(), reference.mean_wait(),
              0.08 * reference.mean_wait());
}

TEST(KernelValidation, MD1WaitIsHalfOfMM1) {
  // Deterministic service halves the P-K wait relative to exponential.
  const double lambda = 0.6;
  const double d = 1.0;
  const auto wait =
      simulate_queue(lambda, [&] { return d; }, 400000, 1234);
  const queueing::MG1 reference = queueing::MG1::deterministic(lambda, d);
  EXPECT_NEAR(wait.mean(), reference.mean_wait(),
              0.06 * reference.mean_wait());
  const queueing::MM1 exponential_ref{lambda, 1.0 / d};
  EXPECT_LT(wait.mean(), exponential_ref.mean_wait());
}

// ------------------------------------------------------------------- MG1

TEST(MG1, ExponentialReducesToMM1) {
  const auto mg1 = queueing::MG1::exponential(0.5, 1.0);
  const queueing::MM1 mm1{0.5, 1.0};
  EXPECT_NEAR(mg1.mean_wait(), mm1.mean_wait(), 1e-12);
  EXPECT_NEAR(mg1.mean_sojourn(), mm1.mean_sojourn(), 1e-12);
  EXPECT_NEAR(mg1.mean_in_system(), mm1.mean_in_system(), 1e-12);
}

TEST(MG1, DeterministicIsHalfExponentialWait) {
  const auto det = queueing::MG1::deterministic(0.5, 1.0);
  const auto expo = queueing::MG1::exponential(0.5, 1.0);
  EXPECT_NEAR(det.mean_wait(), 0.5 * expo.mean_wait(), 1e-12);
}

TEST(MG1, DiscreteMatchesMoments) {
  // Lengths 1..5 with mean-2 weights (the paper's pull items as M/G/1).
  const std::vector<std::pair<double, double>> dist = {
      {1.0, 0.5}, {2.0, 0.25}, {3.0, 0.125}, {4.0, 0.0625}, {5.0, 0.0625}};
  const auto mg1 = queueing::MG1::discrete(0.2, dist);
  double m1 = 0.0;
  double m2 = 0.0;
  for (const auto& [v, p] : dist) {
    m1 += v * p;
    m2 += v * v * p;
  }
  EXPECT_NEAR(mg1.mean_service, m1, 1e-12);
  EXPECT_NEAR(mg1.second_moment, m2, 1e-12);
  EXPECT_NEAR(mg1.mean_wait(), 0.2 * m2 / (2.0 * (1.0 - 0.2 * m1)), 1e-12);
}

TEST(MG1, UnstableIsInfinite) {
  const auto mg1 = queueing::MG1::deterministic(1.2, 1.0);
  EXPECT_FALSE(mg1.stable());
  EXPECT_TRUE(std::isinf(mg1.mean_wait()));
}

}  // namespace
}  // namespace pushpull

namespace pushpull {
namespace {

/// Non-preemptive multi-class priority M/M/1 on the DES kernel, validated
/// against Cobham's formula — the same structure the paper's §4.2.2
/// analysis assumes for the pull queue.
std::vector<metrics::Welford> simulate_priority_queue(
    const std::vector<queueing::PriorityClass>& classes,
    std::size_t customers, std::uint64_t seed) {
  des::Simulator sim;
  rng::StreamFactory streams(seed);
  auto arrival_eng = streams.stream("arrivals");
  auto service_eng = streams.stream("service");
  auto class_eng = streams.stream("class-pick");

  double total_lambda = 0.0;
  std::vector<double> weights;
  for (const auto& c : classes) {
    total_lambda += c.lambda;
    weights.push_back(c.lambda);
  }
  rng::AliasTable class_mix(weights);

  std::vector<metrics::Welford> waits(classes.size());
  // One FIFO queue per class; service picks the highest non-empty class.
  std::vector<std::deque<double>> queues(classes.size());
  bool busy = false;
  std::size_t generated = 0;

  std::function<void()> start_service = [&] {
    std::size_t cls = 0;
    while (queues[cls].empty()) ++cls;
    busy = true;
    const double arrival = queues[cls].front();
    queues[cls].pop_front();
    waits[cls].add(sim.now() - arrival);
    sim.schedule_in(rng::exponential(service_eng, classes[cls].mu), [&] {
      busy = false;
      for (const auto& queue : queues) {
        if (!queue.empty()) {
          start_service();
          return;
        }
      }
    });
  };
  std::function<void()> arrive = [&] {
    const std::size_t cls = class_mix.sample(class_eng);
    queues[cls].push_back(sim.now());
    if (!busy) start_service();
    if (++generated < customers) {
      sim.schedule_in(rng::exponential(arrival_eng, total_lambda), arrive);
    }
  };
  sim.schedule_at(rng::exponential(arrival_eng, total_lambda), arrive);
  sim.run();
  return waits;
}

TEST(KernelValidation, NonPreemptivePriorityMatchesCobham) {
  const std::vector<queueing::PriorityClass> classes = {
      {0.15, 1.0}, {0.25, 1.0}, {0.30, 1.0}};
  const auto simulated = simulate_priority_queue(classes, 400000, 321);
  const auto analytic = queueing::cobham_waits(classes);
  for (std::size_t c = 0; c < classes.size(); ++c) {
    EXPECT_NEAR(simulated[c].mean(), analytic.wait[c],
                0.08 * analytic.wait[c])
        << "class " << c;
  }
  // Ordering: the premium class waits the least.
  EXPECT_LT(simulated[0].mean(), simulated[1].mean());
  EXPECT_LT(simulated[1].mean(), simulated[2].mean());
}

TEST(KernelValidation, PriorityQueueWorkConservation) {
  // With identical service rates, the lambda-weighted mean wait equals the
  // pooled FCFS M/M/1 wait regardless of the priority discipline.
  const std::vector<queueing::PriorityClass> classes = {
      {0.2, 1.0}, {0.2, 1.0}, {0.2, 1.0}};
  const auto simulated = simulate_priority_queue(classes, 400000, 77);
  double weighted = 0.0;
  double total = 0.0;
  for (std::size_t c = 0; c < classes.size(); ++c) {
    weighted += classes[c].lambda * simulated[c].mean();
    total += classes[c].lambda;
  }
  const queueing::MM1 pooled{0.6, 1.0};
  EXPECT_NEAR(weighted / total, pooled.mean_wait(),
              0.08 * pooled.mean_wait());
}

}  // namespace
}  // namespace pushpull
