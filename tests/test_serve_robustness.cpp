// Tests for the live failure model (DESIGN §10): per-request deadlines and
// their DES-impatience mirror, retry/loss on the burst-error channel,
// hedged re-requests, the overload ladder, the sv2 crash-consistent
// journal (recovery at every byte offset, kill -> resume -> replay
// bit-exactness), graceful drain, the machine-checked conservation
// identity over a seeded chaos property suite, and the completion queue's
// close-then-drain discipline under multi-producer stress.
#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/hybrid_server.hpp"
#include "obs/export.hpp"
#include "serve/serve.hpp"

namespace pushpull::serve {
namespace {

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

ServeConfig robust_base() {
  ServeConfig c;
  c.num_items = 40;
  c.num_classes = 3;
  c.cutoff = 12;
  c.duration = 10.0;
  c.target_qps = 6.0;
  c.seed = 20050614;
  c.accelerated = true;
  return c;
}

struct JournaledRun {
  ServeReport report;
  std::string trace;
};

JournaledRun run_journaled(const ServeConfig& c) {
  const auto cat = c.build_catalog();
  const auto pop = c.build_population();
  LoadDriver driver(cat, pop, c.target_qps, c.duration, c.seed);
  std::ostringstream out;
  JournaledRun run;
  {
    TraceRecorder recorder(out, c);
    LiveServer server(cat, pop, c);
    run.report = server.run_accelerated(driver, &recorder);
  }
  run.trace = out.str();
  return run;
}

ServeReport run_plain(const ServeConfig& c) {
  const auto cat = c.build_catalog();
  const auto pop = c.build_population();
  LoadDriver driver(cat, pop, c.target_qps, c.duration, c.seed);
  LiveServer server(cat, pop, c);
  return server.run_accelerated(driver, nullptr);
}

// Canonical byte rendering of per-class statistics; equality here is the
// bit-exactness check the acceptance criteria demand.
std::string fingerprint(const std::vector<metrics::ClassStats>& stats) {
  std::ostringstream out;
  for (std::size_t cls = 0; cls < stats.size(); ++cls) {
    const metrics::ClassStats& s = stats[cls];
    out << cls << '|' << s.arrived << '|' << s.served << '|' << s.served_push
        << '|' << s.served_pull << '|' << s.abandoned << '|' << s.corrupted
        << '|' << s.retries << '|' << s.shed << '|' << s.lost << '|'
        << s.rejected << '|' << obs::render_number(s.wait.mean()) << '|'
        << obs::render_number(s.wait_p95.count() ? s.wait_p95.value() : 0.0)
        << '\n';
  }
  return out.str();
}

// First record's framed length — a cut below this loses the header.
std::size_t header_frame_len(const std::string& journal) {
  std::istringstream in(journal);
  const JournalScan scan = scan_journal(in);
  EXPECT_FALSE(scan.payloads.empty());
  return kFrameDigits + 1 + scan.payloads.front().size() + 1;
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

void write_bytes(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ---------------------------------------------------------------------------
// Deadlines: the DES impatience mirror
// ---------------------------------------------------------------------------

TEST(LiveDeadlines, ExpiryMatchesDesImpatienceBitForBit) {
  // Plain uniform deadlines are DES-mappable: the live server draws the
  // same patience stream at the same instants the DES impatience model
  // does, so every per-class statistic — including who abandoned — must
  // agree exactly, across push-heavy, hybrid and pure-pull regimes.
  for (const std::size_t cutoff : {std::size_t{0}, std::size_t{12},
                                   std::size_t{40}}) {
    ServeConfig c = robust_base();
    c.cutoff = cutoff;
    c.mean_deadline = 4.0;
    ASSERT_TRUE(c.des_mappable()) << "plain deadlines must map";

    const auto cat = c.build_catalog();
    const auto pop = c.build_population();
    LoadDriver driver(cat, pop, c.target_qps, c.duration, c.seed);
    const workload::Trace trace = driver.plan();

    LiveServer server(cat, pop, c);
    const ServeReport live = server.run_accelerated(driver, nullptr);

    core::HybridServer des(cat, pop, c.hybrid());
    const core::SimResult sim = des.run(trace);

    EXPECT_EQ(live.end_time, sim.end_time) << "cutoff " << cutoff;
    EXPECT_EQ(live.push_transmissions, sim.push_transmissions);
    EXPECT_EQ(live.pull_transmissions, sim.pull_transmissions);
    EXPECT_EQ(live.mean_pull_queue_len, sim.mean_pull_queue_len);
    EXPECT_EQ(live.max_pull_queue_len, sim.max_pull_queue_len);
    EXPECT_EQ(fingerprint(live.per_class), fingerprint(sim.per_class))
        << "cutoff " << cutoff;
    EXPECT_GT(live.timed_out, 0u) << "test must actually exercise expiry";
  }
}

TEST(LiveDeadlines, PerClassScalesSkewTimeoutRates) {
  ServeConfig c = robust_base();
  c.duration = 20.0;
  c.mean_deadline = 3.0;
  c.deadline_scale = {4.0, 1.0, 0.25};  // premium waits 16x longer
  EXPECT_FALSE(c.des_mappable());
  const ServeReport r = run_plain(c);
  ASSERT_EQ(r.per_class.size(), 3u);
  const auto rate = [](const metrics::ClassStats& s) {
    return s.arrived ? static_cast<double>(s.abandoned) /
                           static_cast<double>(s.arrived)
                     : 0.0;
  };
  EXPECT_LT(rate(r.per_class[0]), rate(r.per_class[2]));
  EXPECT_TRUE(r.ledger.balanced());
}

TEST(LiveDeadlines, SpikeTightensOnlyTheWindow) {
  ServeConfig base = robust_base();
  base.duration = 20.0;
  base.mean_deadline = 6.0;
  ServeConfig spiked = base;
  spiked.deadline_spike_factor = 0.1;
  spiked.deadline_spike_start = 5.0;
  spiked.deadline_spike_duration = 10.0;
  const ServeReport a = run_plain(base);
  const ServeReport b = run_plain(spiked);
  // The spike multiplies draws *after* consuming the stream, so the two
  // runs see identical arrivals and identical raw patience draws; tighter
  // deadlines can only increase timeouts.
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_GE(b.timed_out, a.timed_out);
  EXPECT_GT(b.timed_out, 0u);
  EXPECT_TRUE(b.ledger.balanced());
}

// ---------------------------------------------------------------------------
// Retry / loss on the burst-error channel
// ---------------------------------------------------------------------------

TEST(LiveRetry, AlwaysCorruptedPullsExhaustRetriesAndAreLost) {
  ServeConfig c = robust_base();
  c.cutoff = 0;  // pure pull, so every transmission faces the channel
  c.duration = 6.0;
  c.fault.enabled = true;
  c.fault.channel.p_good_to_bad = 1.0;
  c.fault.channel.p_bad_to_good = 0.0;
  c.fault.channel.corrupt_good = 1.0;
  c.fault.channel.corrupt_bad = 1.0;  // nothing ever gets through
  c.fault.retry.max_retries = 2;
  c.fault.retry.backoff_base = 0.5;
  const ServeReport r = run_plain(c);
  EXPECT_EQ(r.served, 0u);
  EXPECT_GT(r.retries, 0u);
  EXPECT_EQ(r.lost, r.arrivals);
  EXPECT_TRUE(r.ledger.balanced());
  EXPECT_EQ(r.ledger.lost, r.arrivals);
}

TEST(LiveRetry, BoundedBackoffReentersDeterministically) {
  ServeConfig c = robust_base();
  c.duration = 15.0;
  c.fault.enabled = true;
  c.fault.channel.p_good_to_bad = 0.3;
  c.fault.channel.p_bad_to_good = 0.3;
  c.fault.channel.corrupt_bad = 0.9;
  const ServeReport a = run_plain(c);
  const ServeReport b = run_plain(c);
  EXPECT_GT(a.retries, 0u) << "test must actually exercise retries";
  EXPECT_EQ(fingerprint(a.per_class), fingerprint(b.per_class));
  EXPECT_EQ(a.corrupted_pull_transmissions, b.corrupted_pull_transmissions);
  EXPECT_TRUE(a.ledger.balanced());
}

// ---------------------------------------------------------------------------
// Hedging
// ---------------------------------------------------------------------------

TEST(LiveHedge, DuplicatesNeverDoubleCount) {
  ServeConfig c = robust_base();
  c.duration = 20.0;
  c.target_qps = 10.0;
  c.mean_deadline = 8.0;
  c.hedge_after = 2.0;
  const ServeReport r = run_plain(c);
  EXPECT_GT(r.hedges_posted, 0u);
  EXPECT_LE(r.hedges_absorbed, r.hedges_posted);
  // Hedge duplicates are synthetic: the ledger accounts only primaries.
  EXPECT_TRUE(r.ledger.balanced());
  EXPECT_EQ(r.ledger.injected, r.arrivals);
}

// ---------------------------------------------------------------------------
// Overload ladder
// ---------------------------------------------------------------------------

TEST(LiveLadder, TransitionsAreOrderedAndJournaled) {
  ServeConfig c = robust_base();
  c.duration = 30.0;
  c.target_qps = 12.0;
  c.cutoff = 4;
  c.overload.enabled = true;
  c.overload.eval_interval = 1.0;
  c.overload.capacity_ref = 8;  // small soft cap so pressure builds fast
  c.mean_deadline = 12.0;
  const JournaledRun run = run_journaled(c);
  EXPECT_GT(run.report.ladder_transitions, 0u);
  EXPECT_GT(run.report.max_overload_level,
            pushpull::resilience::OverloadLevel::kNormal);
  ASSERT_EQ(run.report.overload_transitions.size(),
            run.report.ladder_transitions);
  for (std::size_t i = 1; i < run.report.overload_transitions.size(); ++i) {
    EXPECT_LE(run.report.overload_transitions[i - 1].time,
              run.report.overload_transitions[i].time);
  }
  EXPECT_NE(run.trace.find("\"d\":\"ladder\""), std::string::npos);
  EXPECT_TRUE(run.report.ledger.balanced());
}

// ---------------------------------------------------------------------------
// Graceful drain
// ---------------------------------------------------------------------------

TEST(LiveDrain, DrainAfterStopsAdmissionAndBalancesTheLedger) {
  ServeConfig c = robust_base();
  c.duration = 30.0;
  c.mean_deadline = 6.0;
  c.drain_after = 10.0;
  const JournaledRun run = run_journaled(c);
  EXPECT_TRUE(run.report.drained);
  EXPECT_EQ(run.report.drain_time, 10.0);
  EXPECT_GT(run.report.skipped_arrivals, 0u);
  EXPECT_TRUE(run.report.ledger.balanced());
  EXPECT_NE(run.trace.find("\"d\":\"drain\""), std::string::npos);
  // The sealed footer carries the same ledger the report does.
  std::istringstream in(run.trace);
  const RecordedRun loaded = load_trace(in);
  EXPECT_EQ(loaded.ledger.render_json(), run.report.ledger.render_json());
}

// ---------------------------------------------------------------------------
// sv2 journal: header round trip, recovery, resume, replay
// ---------------------------------------------------------------------------

TEST(Journal, HeaderRoundTripsTheFullFailureModel) {
  ServeConfig c = robust_base();
  c.mean_deadline = 5.5;
  c.deadline_scale = {2.0, 1.0, 0.5};
  c.deadline_spike_factor = 0.3;
  c.deadline_spike_start = 4.0;
  c.deadline_spike_duration = 2.0;
  c.fault.enabled = true;
  c.fault.channel.corrupt_bad = 0.7;
  c.fault.queue_capacity = 24;
  c.fault.shed_policy = fault::ShedPolicy::kDropLowestPriority;
  c.overload.enabled = true;
  c.overload.capacity_ref = 16;
  c.hedge_after = 3.0;
  c.drain_after = 7.0;
  c.journal_sync_every = 7;

  std::ostringstream first;
  {
    TraceRecorder recorder(first, c);
    recorder.finish();
  }
  std::istringstream in(first.str());
  const RecordedRun run = load_trace(in);
  // Re-recording with the loaded config must reproduce the header bytes —
  // i.e. every failure-model field survived the round trip.
  std::ostringstream second;
  {
    TraceRecorder recorder(second, run.config);
    recorder.finish();
  }
  EXPECT_EQ(first.str(), second.str());
}

TEST(Journal, RecoversALongestValidPrefixAtEveryByteOffset) {
  ServeConfig c = robust_base();
  c.duration = 4.0;
  c.target_qps = 4.0;
  c.mean_deadline = 3.0;
  const JournaledRun run = run_journaled(c);
  const std::size_t header_len = header_frame_len(run.trace);
  std::uint64_t last_records = 0;
  for (std::size_t cut = 0; cut <= run.trace.size(); ++cut) {
    std::istringstream in(run.trace.substr(0, cut));
    if (cut < header_len) {
      // The config itself is gone — recovery is meaningless.
      EXPECT_THROW((void)recover_trace(in), std::runtime_error) << cut;
      continue;
    }
    const RecoveredRun r = recover_trace(in);
    EXPECT_GE(r.records, 1u) << cut;
    EXPECT_LE(r.bytes_consumed, cut) << cut;
    // More surviving bytes can only ever salvage more records.
    EXPECT_GE(r.records, last_records) << cut;
    last_records = r.records;
    EXPECT_EQ(r.sealed, cut == run.trace.size()) << cut;
  }
}

TEST(Journal, KillResumeReplayIsBitExact) {
  // The acceptance path: kill at an arbitrary point -> serve --resume from
  // the truncated journal -> replay of the resumed journal reproduces the
  // recovered prefix's per-class statistics bit-for-bit.
  ServeConfig c = robust_base();
  c.duration = 12.0;
  c.mean_deadline = 5.0;
  c.deadline_scale = {2.0, 1.0, 0.5};
  c.fault.enabled = true;
  c.fault.channel.corrupt_bad = 0.6;
  c.hedge_after = 3.0;
  const JournaledRun run = run_journaled(c);
  const std::size_t header_len = header_frame_len(run.trace);
  ASSERT_LT(header_len, run.trace.size());

  const std::size_t span = run.trace.size() - header_len;
  for (std::size_t k = 1; k <= 5; ++k) {
    const std::size_t cut = header_len + span * k / 5;
    const std::string killed = temp_path("robustness_killed.svj");
    const std::string resumed = temp_path("robustness_resumed.svj");
    write_bytes(killed, std::string_view(run.trace).substr(0, cut));

    const ResumeResult resume = resume_from_journal(killed, resumed);
    EXPECT_TRUE(resume.report.ledger.balanced()) << "cut " << cut;

    const RecordedRun reloaded = load_trace_file(resumed);
    EXPECT_EQ(reloaded.requests.size(),
              resume.recovered.run.requests.size());
    const auto replayed = replay(reloaded);
    ASSERT_EQ(replayed.size(), 1u);
    EXPECT_EQ(fingerprint(replayed.front().per_class),
              fingerprint(resume.report.per_class))
        << "cut " << cut;
    std::remove(killed.c_str());
    std::remove(resumed.c_str());
  }
}

TEST(Journal, ReplayReportsTheEngine) {
  ServeConfig plain = robust_base();
  const JournaledRun a = run_journaled(plain);
  std::istringstream in_a(a.trace);
  const RecordedRun run_a = load_trace(in_a);
  EXPECT_NE(render_replay_report(run_a, replay(run_a))
                .find("\"engine\":\"des\""),
            std::string::npos);

  ServeConfig robust = robust_base();
  robust.mean_deadline = 4.0;
  robust.deadline_scale = {2.0, 1.0, 0.5};
  const JournaledRun b = run_journaled(robust);
  std::istringstream in_b(b.trace);
  const RecordedRun run_b = load_trace(in_b);
  const auto results = replay(run_b);
  EXPECT_NE(render_replay_report(run_b, results).find("\"engine\":\"live\""),
            std::string::npos);
  // Rep 0 of a live-engine replay reproduces the original run bit-for-bit.
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(fingerprint(results.front().per_class),
            fingerprint(b.report.per_class));
}

// ---------------------------------------------------------------------------
// The chaos harness itself
// ---------------------------------------------------------------------------

TEST(ChaosHarness, EveryReplicationSurvivesKillResumeReplay) {
  ServeConfig c = chaos_profile(robust_base());
  c.duration = 8.0;
  ChaosOptions options;
  options.replications = 3;
  options.scratch_dir = ::testing::TempDir();
  const ChaosReport report = run_chaos(c, options);
  ASSERT_EQ(report.reps.size(), 3u);
  EXPECT_TRUE(report.all_exact());
  for (const ChaosRepOutcome& rep : report.reps) {
    EXPECT_TRUE(rep.ledger.balanced()) << "rep " << rep.rep;
    EXPECT_GT(rep.kill_offset, 0u) << "rep " << rep.rep;
    EXPECT_LE(rep.kill_offset, rep.journal_bytes);
    EXPECT_GE(rep.records_recovered, 1u);
  }
  // Same config + options -> byte-identical report (the whole harness is
  // seeded, including the kill offsets).
  const ChaosReport again = run_chaos(c, options);
  EXPECT_EQ(render_chaos_report(report), render_chaos_report(again));
}

// ---------------------------------------------------------------------------
// Conservation property suite: 500 seeded chaos cases
// ---------------------------------------------------------------------------

TEST(Conservation, HoldsExactlyAcross500SeededChaosCases) {
  for (std::uint64_t case_id = 1; case_id <= 500; ++case_id) {
    ServeConfig c;
    c.accelerated = true;
    c.num_items = 30;
    c.num_classes = 2 + case_id % 3;
    c.cutoff = case_id % 31;
    c.duration = 3.0 + static_cast<double>(case_id % 4);
    c.target_qps = 3.0 + static_cast<double>(case_id % 5);
    c.seed = case_id * 977 + 11;
    if (case_id % 3 != 0) {
      c.mean_deadline = 2.0 + 0.25 * static_cast<double>(case_id % 8);
    }
    if (case_id % 4 == 1) {
      // Must carry one factor per class; skew the extremes.
      c.deadline_scale.assign(c.num_classes, 1.0);
      c.deadline_scale.front() = 2.0;
      c.deadline_scale.back() = 0.5;
    }
    if (case_id % 5 == 2) {
      c.deadline_spike_factor = 0.4;
      c.deadline_spike_start = c.duration * 0.3;
      c.deadline_spike_duration = c.duration * 0.4;
    }
    if (case_id % 2 == 0) {
      c.fault.enabled = true;
      c.fault.channel.p_good_to_bad = 0.2;
      c.fault.channel.p_bad_to_good = 0.4;
      c.fault.channel.corrupt_bad = 0.5;
      c.fault.retry.max_retries = 1 + static_cast<std::uint32_t>(case_id % 3);
      c.fault.retry.backoff_base = 0.5;
    }
    if (case_id % 3 == 1) {
      c.fault.queue_capacity = 8 + case_id % 9;
      c.fault.shed_policy = case_id % 6 == 1
                                ? fault::ShedPolicy::kDropLowestPriority
                                : fault::ShedPolicy::kDropTail;
    }
    if (case_id % 4 == 2) {
      c.overload.enabled = true;
      c.overload.eval_interval = 1.0;
      c.overload.capacity_ref = 8;
    }
    if (case_id % 7 == 3) c.hedge_after = 1.5;
    if (case_id % 6 == 4) c.drain_after = c.duration * 0.6;
    ASSERT_NO_THROW(c.validate()) << "case " << case_id;

    // finalize_ledger() machine-checks the identity and throws on any
    // imbalance — a completed run IS the conservation proof; the explicit
    // checks below pin the report copy too.
    ServeReport r;
    ASSERT_NO_THROW(r = run_plain(c)) << "case " << case_id;
    EXPECT_TRUE(r.ledger.balanced()) << "case " << case_id;
    EXPECT_EQ(r.ledger.injected, r.arrivals) << "case " << case_id;
    EXPECT_EQ(r.ledger.delivered, r.served) << "case " << case_id;
    if (!r.drained) {
      EXPECT_EQ(r.ledger.in_flight_at_drain, 0u) << "case " << case_id;
    }
  }
}

// ---------------------------------------------------------------------------
// CompletionQueue: close-then-drain under multi-producer stress
// ---------------------------------------------------------------------------

TEST(CompletionQueueStress, CloseThenDrainLosesAndDuplicatesNothing) {
  // Producers hammer a tiny queue while the consumer closes it partway
  // through the drain. The contract: every accepted post is delivered
  // exactly once; every refused post was refused *after* close; nothing
  // disappears in the race between a producer's last post and close().
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  constexpr int kTotal = kProducers * kPerProducer;
  for (int round = 0; round < 20; ++round) {
    CompletionQueue queue(8);
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> refused{0};
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&queue, &accepted, &refused, p] {
        for (int i = 0; i < kPerProducer; ++i) {
          Completion c;
          c.kind = CompletionKind::kArrival;
          c.request.id =
              static_cast<workload::RequestId>(p * kPerProducer + i);
          if (queue.post(c)) {
            accepted.fetch_add(1);
          } else {
            refused.fetch_add(1);
          }
        }
      });
    }

    std::vector<char> seen(kTotal, 0);
    std::uint64_t delivered = 0;
    const std::uint64_t close_after =
        static_cast<std::uint64_t>(50 + round * 17);  // always < kTotal
    for (;;) {
      const auto c = queue.pop(0.05);
      if (c.has_value()) {
        ASSERT_LT(c->request.id, static_cast<workload::RequestId>(kTotal));
        ASSERT_EQ(seen[c->request.id], 0) << "double delivery";
        seen[c->request.id] = 1;
        ++delivered;
        if (delivered == close_after) queue.close();
      } else if (queue.closed()) {
        // Closed and momentarily empty: no further item can ever appear
        // (post() checks closed_ under the same mutex), so this is the
        // drain-complete condition.
        break;
      }
    }
    for (auto& t : producers) t.join();

    EXPECT_EQ(accepted.load() + refused.load(),
              static_cast<std::uint64_t>(kTotal));
    EXPECT_EQ(delivered, accepted.load()) << "accepted posts were lost";
    EXPECT_EQ(queue.posted(), accepted.load());
    EXPECT_GT(refused.load(), 0u) << "close must actually race the posts";
    EXPECT_EQ(queue.depth(), 0u);
  }
}

}  // namespace
}  // namespace pushpull::serve
