// Tests for the P² streaming quantile estimator, validated against exact
// sample quantiles on known distributions.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "metrics/p2_quantile.hpp"
#include "rng/exponential.hpp"
#include "rng/uniform.hpp"
#include "rng/xoshiro256ss.hpp"

namespace pushpull::metrics {
namespace {

double exact_quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(values.size())));
  return values[std::min(values.size() - 1, rank > 0 ? rank - 1 : 0)];
}

TEST(P2Quantile, RejectsBadQuantile) {
  EXPECT_THROW(P2Quantile(0.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(1.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(-0.5), std::invalid_argument);
}

TEST(P2Quantile, EmptyIsZero) {
  P2Quantile est(0.5);
  EXPECT_DOUBLE_EQ(est.value(), 0.0);
  EXPECT_EQ(est.count(), 0u);
}

TEST(P2Quantile, ExactForSmallSamples) {
  P2Quantile median(0.5);
  median.add(3.0);
  EXPECT_DOUBLE_EQ(median.value(), 3.0);
  median.add(1.0);
  median.add(5.0);
  // Exact median of {1,3,5} (nearest rank): 3.
  EXPECT_DOUBLE_EQ(median.value(), 3.0);
}

TEST(P2Quantile, MedianOfUniform) {
  P2Quantile est(0.5);
  rng::Xoshiro256ss eng(1);
  for (int i = 0; i < 100000; ++i) est.add(rng::uniform01(eng));
  EXPECT_NEAR(est.value(), 0.5, 0.01);
}

TEST(P2Quantile, TailOfUniform) {
  P2Quantile est(0.95);
  rng::Xoshiro256ss eng(2);
  for (int i = 0; i < 100000; ++i) est.add(rng::uniform01(eng));
  EXPECT_NEAR(est.value(), 0.95, 0.01);
}

TEST(P2Quantile, TailOfExponential) {
  // p99 of Exp(rate 1) is -ln(0.01) ≈ 4.605.
  P2Quantile est(0.99);
  rng::Xoshiro256ss eng(3);
  for (int i = 0; i < 400000; ++i) est.add(rng::exponential(eng, 1.0));
  EXPECT_NEAR(est.value(), 4.605, 0.25);
}

TEST(P2Quantile, MatchesExactQuantileOnMixedData) {
  rng::Xoshiro256ss eng(4);
  std::vector<double> data;
  P2Quantile est(0.9);
  for (int i = 0; i < 50000; ++i) {
    // Bimodal: mixture of two uniforms.
    const double x = rng::uniform01(eng) < 0.7
                         ? rng::uniform(eng, 0.0, 1.0)
                         : rng::uniform(eng, 5.0, 6.0);
    data.push_back(x);
    est.add(x);
  }
  const double exact = exact_quantile(data, 0.9);
  EXPECT_NEAR(est.value(), exact, 0.15);
}

TEST(P2Quantile, MonotoneAcrossQuantiles) {
  P2Quantile p50(0.5);
  P2Quantile p95(0.95);
  P2Quantile p99(0.99);
  rng::Xoshiro256ss eng(5);
  for (int i = 0; i < 50000; ++i) {
    const double x = rng::exponential(eng, 0.5);
    p50.add(x);
    p95.add(x);
    p99.add(x);
  }
  EXPECT_LT(p50.value(), p95.value());
  EXPECT_LT(p95.value(), p99.value());
}

TEST(P2Quantile, CountTracksObservations) {
  P2Quantile est(0.5);
  for (int i = 0; i < 42; ++i) est.add(i);
  EXPECT_EQ(est.count(), 42u);
}

TEST(P2Quantile, ConstantStream) {
  P2Quantile est(0.9);
  for (int i = 0; i < 1000; ++i) est.add(7.0);
  EXPECT_DOUBLE_EQ(est.value(), 7.0);
}

}  // namespace
}  // namespace pushpull::metrics
