// Tests for the deterministic parallel execution engine: thread-pool
// lifecycle, ordered collection, exception propagation and the JSONL
// progress reporter.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "runtime/runtime.hpp"

namespace pushpull::runtime {
namespace {

TEST(ThreadPool, StartsRequestedWorkersAndStops) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  // Destructor joins — the test passing at all is the stop/join check.
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), ThreadPool::default_concurrency());
  EXPECT_GE(ThreadPool::default_concurrency(), 1u);
}

TEST(ThreadPool, RunsSubmittedJobs) {
  std::atomic<int> hits{0};
  {
    ThreadPool pool(4);
    parallel_for(pool, 100, [&](std::size_t) { ++hits; });
  }
  EXPECT_EQ(hits.load(), 100);
}

TEST(ParallelFor, EachIndexRunsExactlyOnce) {
  std::vector<int> counts(500, 0);
  ThreadPool pool(8);
  // Per-slot writes only — no shared mutation.
  parallel_for(pool, counts.size(), [&](std::size_t i) { counts[i] += 1; });
  for (const int c : counts) EXPECT_EQ(c, 1);
}

TEST(ParallelMap, CollectsInIndexOrderRegardlessOfCompletion) {
  ThreadPool pool(8);
  // Early indices sleep longest, so completion order is roughly reversed —
  // collection order must still be 0, 1, 2, ...
  const auto squares = parallel_map(pool, 16, [](std::size_t i) {
    std::this_thread::sleep_for(std::chrono::microseconds((16 - i) * 200));
    return i * i;
  });
  ASSERT_EQ(squares.size(), 16u);
  for (std::size_t i = 0; i < squares.size(); ++i) {
    EXPECT_EQ(squares[i], i * i);
  }
}

TEST(ParallelMap, PropagatesJobException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      (void)parallel_map(pool, 8,
                         [](std::size_t i) {
                           if (i == 5) throw std::runtime_error("job 5 died");
                           return i;
                         }),
      std::runtime_error);
}

TEST(ParallelMap, LowestIndexedFailureWins) {
  ThreadPool pool(4);
  try {
    (void)parallel_map(pool, 8, [](std::size_t i) {
      if (i == 3) throw std::runtime_error("failure 3");
      if (i == 6) throw std::runtime_error("failure 6");
      return i;
    });
    FAIL() << "expected a runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "failure 3");
  }
}

TEST(SerialMap, MatchesParallelMapSemantics) {
  const auto serial = serial_map(10, [](std::size_t i) { return i + 1; });
  ThreadPool pool(4);
  const auto parallel = parallel_map(pool, 10,
                                     [](std::size_t i) { return i + 1; });
  EXPECT_EQ(serial, parallel);
}

TEST(JobResult, OrderedCollectionFromOutOfOrderFulfillment) {
  JobResult<int> result(4);
  result.fulfill(2, 20);
  result.fulfill(0, 0);
  EXPECT_FALSE(result.done());
  result.fulfill(3, 30);
  result.fulfill(1, 10);
  EXPECT_TRUE(result.done());
  EXPECT_EQ(result.collect(), (std::vector<int>{0, 10, 20, 30}));
}

TEST(JobResult, RejectsDoubleSettlement) {
  JobResult<int> result(2);
  result.fulfill(0, 1);
  EXPECT_THROW(result.fulfill(0, 2), std::logic_error);
  EXPECT_THROW(result.fulfill(9, 0), std::out_of_range);
}

TEST(RunReporter, EmitsOneJsonLinePerEvent) {
  std::ostringstream sink;
  RunReporter reporter(sink);
  reporter.run_started("unit", 2, 4);
  reporter.job_finished(0, 1.5, true);
  reporter.job_finished(1, 0.25, false, "boom");
  reporter.run_finished("unit", 2, 2.0);

  std::istringstream lines(sink.str());
  std::vector<std::string> parsed;
  for (std::string line; std::getline(lines, line);) parsed.push_back(line);
  ASSERT_EQ(parsed.size(), 4u);
  EXPECT_EQ(parsed[0],
            R"({"event":"run_start","label":"unit","jobs":2,"workers":4})");
  EXPECT_EQ(parsed[1],
            R"({"event":"job","id":0,"wall_ms":1.500,"outcome":"ok"})");
  EXPECT_EQ(
      parsed[2],
      R"({"event":"job","id":1,"wall_ms":0.250,"outcome":"error","detail":"boom"})");
  EXPECT_EQ(parsed[3],
            R"({"event":"run_end","label":"unit","jobs":2,"wall_ms":2.000})");
}

TEST(RunReporter, EscapesDetailText) {
  std::ostringstream sink;
  RunReporter reporter(sink);
  reporter.job_finished(0, 1.0, false, "say \"hi\"\nback\\slash");
  EXPECT_NE(sink.str().find(R"(say \"hi\"\nback\\slash)"), std::string::npos);
}

TEST(RunReporter, ReportsFromParallelWorkersWithoutTearing) {
  std::ostringstream sink;
  RunReporter reporter(sink);
  ThreadPool pool(8);
  parallel_for(
      pool, 64, [](std::size_t) {}, &reporter);
  std::istringstream lines(sink.str());
  std::size_t count = 0;
  for (std::string line; std::getline(lines, line);) {
    EXPECT_EQ(line.find(R"({"event":"job","id":)"), 0u);
    EXPECT_NE(line.find(R"("outcome":"ok"})"), std::string::npos);
    ++count;
  }
  EXPECT_EQ(count, 64u);
}

}  // namespace
}  // namespace pushpull::runtime
