// Randomized oracle tests: the optimized PullQueue and EventQueue are
// driven with long random operation sequences and compared step-by-step
// against trivially-correct reference implementations. These catch index
// corruption (swap-removal), tie-break drift and cancellation bugs that
// targeted unit tests can miss.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "core/pull_queue.hpp"
#include "des/event_queue.hpp"
#include "rng/uniform.hpp"
#include "rng/xoshiro256ss.hpp"
#include "sched/pull/aging.hpp"
#include "sched/pull/policies.hpp"

namespace pushpull {
namespace {

// ------------------------------------------------- PullQueue vs reference

/// Reference pull queue: a plain map of item -> request list; selection is
/// a naive scan with the identical scoring and tie-break rule.
class ReferencePullQueue {
 public:
  void add(const workload::Request& r, double priority, double length,
           double popularity) {
    auto& e = entries_[r.item];
    if (e.pending.empty()) {
      e.item = r.item;
      e.length = length;
      e.popularity = popularity;
      e.first_arrival = r.arrival;
      e.total_priority = 0.0;
      e.total_arrival = 0.0;
    }
    e.pending.push_back(r);
    e.total_priority += priority;
    e.total_arrival += r.arrival;
  }

  bool remove_request(catalog::ItemId item, workload::RequestId id,
                      double priority) {
    auto it = entries_.find(item);
    if (it == entries_.end()) return false;
    auto& e = it->second;
    for (auto p = e.pending.begin(); p != e.pending.end(); ++p) {
      if (p->id == id) {
        e.total_arrival -= p->arrival;
        e.total_priority -= priority;
        e.pending.erase(p);
        if (e.pending.empty()) {
          entries_.erase(it);
        } else {
          e.first_arrival = e.pending.front().arrival;
          for (const auto& q : e.pending) {
            if (q.arrival < e.first_arrival) e.first_arrival = q.arrival;
          }
        }
        return true;
      }
    }
    return false;
  }

  std::optional<sched::PullEntry> extract_best(
      const sched::PullPolicy& policy, const sched::PullContext& ctx) {
    if (entries_.empty()) return std::nullopt;
    const sched::PullEntry* best = nullptr;
    double best_score = 0.0;
    for (const auto& [item, e] : entries_) {
      const double s = policy.score(e, ctx);
      if (best == nullptr || s > best_score ||
          (s == best_score && e.item < best->item)) {
        best = &e;
        best_score = s;
      }
    }
    sched::PullEntry out = *best;
    entries_.erase(out.item);
    return out;
  }

  std::optional<sched::PullEntry> extract(catalog::ItemId item) {
    auto it = entries_.find(item);
    if (it == entries_.end()) return std::nullopt;
    sched::PullEntry out = it->second;
    entries_.erase(it);
    return out;
  }

  [[nodiscard]] std::size_t total_requests() const {
    std::size_t n = 0;
    for (const auto& [item, e] : entries_) n += e.pending.size();
    return n;
  }
  [[nodiscard]] std::size_t distinct_items() const { return entries_.size(); }

 private:
  std::map<catalog::ItemId, sched::PullEntry> entries_;
};

/// Drives the indexed PullQueue, the O(n) reference-scan PullQueue and the
/// naive map oracle through one random schedule (adds, impatience removals,
/// direct evictions — the shed/blocking path — and policy extractions),
/// asserting all three agree after every operation.
void run_pull_fuzz(const sched::PullPolicy& policy, std::uint64_t seed,
                   int ops) {
  core::PullQueue fast;  // default engine: indexed (dirty-set + max-tree)
  core::PullQueue scan(core::PullQueue::SelectMode::kScan);
  ReferencePullQueue oracle;

  rng::Xoshiro256ss eng(seed);
  double clock = 0.0;
  workload::RequestId next_id = 0;
  std::vector<workload::Request> live;  // queued requests, for removals

  for (int op = 0; op < ops; ++op) {
    clock += 0.25;
    const double dice = rng::uniform01(eng);
    if (dice < 0.5) {
      // Insert a request for a random item.
      workload::Request r;
      r.id = next_id++;
      r.item = static_cast<catalog::ItemId>(rng::uniform_below(eng, 25));
      r.cls = static_cast<workload::ClassId>(rng::uniform_below(eng, 3));
      r.arrival = clock;
      const double priority = static_cast<double>(3 - r.cls);
      const double length = 1.0 + static_cast<double>(r.item % 5);
      const double popularity = 1.0 / (1.0 + static_cast<double>(r.item));
      fast.add(r, priority, length, popularity);
      scan.add(r, priority, length, popularity);
      oracle.add(r, priority, length, popularity);
      live.push_back(r);
    } else if (dice < 0.68 && !live.empty()) {
      // Remove a random queued request (impatience path).
      const auto idx =
          static_cast<std::size_t>(rng::uniform_below(eng, live.size()));
      const workload::Request victim = live[idx];
      const double priority = static_cast<double>(3 - victim.cls);
      const bool a = fast.remove_request(victim.item, victim.id, priority);
      const bool s = scan.remove_request(victim.item, victim.id, priority);
      const bool b = oracle.remove_request(victim.item, victim.id, priority);
      ASSERT_EQ(a, b);
      ASSERT_EQ(s, b);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    } else if (dice < 0.76) {
      // Evict a specific item outright (the shed / blocking-drop path).
      const auto item =
          static_cast<catalog::ItemId>(rng::uniform_below(eng, 25));
      const auto a = fast.extract(item);
      const auto s = scan.extract(item);
      const auto b = oracle.extract(item);
      ASSERT_EQ(a.has_value(), b.has_value()) << "op " << op;
      ASSERT_EQ(s.has_value(), b.has_value()) << "op " << op;
      if (a.has_value()) {
        ASSERT_EQ(a->pending.size(), b->pending.size());
        ASSERT_EQ(s->pending.size(), b->pending.size());
        for (const auto& r : a->pending) {
          for (auto it = live.begin(); it != live.end(); ++it) {
            if (it->id == r.id) {
              live.erase(it);
              break;
            }
          }
        }
      }
    } else {
      // Extract the best entry under the policy.
      const sched::PullContext ctx{clock, 2.0};
      const auto a = fast.extract_best(policy, ctx);
      const auto s = scan.extract_best(policy, ctx);
      const auto b = oracle.extract_best(policy, ctx);
      ASSERT_EQ(a.has_value(), b.has_value());
      ASSERT_EQ(s.has_value(), b.has_value());
      if (a.has_value()) {
        ASSERT_EQ(a->item, b->item) << "op " << op;
        ASSERT_EQ(s->item, b->item) << "op " << op;
        ASSERT_EQ(a->pending.size(), b->pending.size());
        ASSERT_DOUBLE_EQ(a->total_priority, b->total_priority);
        // Drop the extracted requests from the live set.
        for (const auto& r : a->pending) {
          for (auto it = live.begin(); it != live.end(); ++it) {
            if (it->id == r.id) {
              live.erase(it);
              break;
            }
          }
        }
      }
    }
    ASSERT_EQ(fast.total_requests(), oracle.total_requests());
    ASSERT_EQ(scan.total_requests(), oracle.total_requests());
    ASSERT_EQ(fast.distinct_items(), oracle.distinct_items());
    ASSERT_EQ(scan.distinct_items(), oracle.distinct_items());
  }
}

class PullQueueOracleTest
    : public ::testing::TestWithParam<sched::PullPolicyKind> {};

TEST_P(PullQueueOracleTest, RandomOpsMatchReference) {
  const auto policy = sched::make_pull_policy(GetParam(), 0.4);
  run_pull_fuzz(*policy, 0xFACE + static_cast<std::uint64_t>(GetParam()),
                8000);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, PullQueueOracleTest,
    ::testing::Values(sched::PullPolicyKind::kFcfs,
                      sched::PullPolicyKind::kMrf,
                      sched::PullPolicyKind::kStretch,
                      sched::PullPolicyKind::kPriority,
                      sched::PullPolicyKind::kRxw,
                      sched::PullPolicyKind::kLwf,
                      sched::PullPolicyKind::kImportance,
                      sched::PullPolicyKind::kImportanceQueueAware),
    [](const ::testing::TestParamInfo<sched::PullPolicyKind>& param_info) {
      std::string name(sched::to_string(param_info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(PullQueueOracle, AgedImportanceMatchesReference) {
  // Aging reads ctx.now, so the indexed engine must detect the
  // ctx-dependence and defer to the scan — verified against the oracle.
  const auto policy = sched::make_aged_importance(0.4, 0.35);
  EXPECT_FALSE(policy->ctx_invariant());
  run_pull_fuzz(*policy, 0xA9ED, 8000);
}

TEST(PullQueueOracle, ZeroRateAgingStaysIndexed) {
  // rate = 0 makes the decorator transparent, so the inner importance
  // policy's invariance carries through and the cached path is exercised.
  const auto policy = sched::make_aged_importance(0.4, 0.0);
  EXPECT_TRUE(policy->ctx_invariant());
  run_pull_fuzz(*policy, 0xA9ED0, 8000);
}

TEST(PullQueueOracle, PolicySwapsInvalidateCachedScores) {
  // Alternating between two distinct policy objects (different alphas, and
  // a ctx-dependent interloper) on the SAME queues must rescore correctly
  // every time — this is the cache-invalidation-on-policy-change path.
  core::PullQueue fast;
  core::PullQueue scan(core::PullQueue::SelectMode::kScan);
  const auto gamma_low = sched::make_pull_policy(
      sched::PullPolicyKind::kImportance, 0.1);
  const auto gamma_high = sched::make_pull_policy(
      sched::PullPolicyKind::kImportance, 0.9);
  const auto rxw = sched::make_pull_policy(sched::PullPolicyKind::kRxw);
  const sched::PullPolicy* const policies[] = {gamma_low.get(),
                                               gamma_high.get(), rxw.get()};

  rng::Xoshiro256ss eng(0x50AB);
  workload::RequestId next_id = 0;
  double clock = 0.0;
  for (int round = 0; round < 600; ++round) {
    clock += 1.0;
    for (int j = 0; j < 4; ++j) {
      workload::Request r;
      r.id = next_id++;
      r.item = static_cast<catalog::ItemId>(rng::uniform_below(eng, 12));
      r.arrival = clock;
      const double priority = 1.0 + rng::uniform01(eng);
      const double length = 1.0 + static_cast<double>(r.item % 3);
      fast.add(r, priority, length, 0.5);
      scan.add(r, priority, length, 0.5);
    }
    const sched::PullContext ctx{clock, 2.0};
    const auto& policy = *policies[round % 3];
    const auto a = fast.extract_best(policy, ctx);
    const auto s = scan.extract_best(policy, ctx);
    ASSERT_EQ(a.has_value(), s.has_value());
    if (a.has_value()) ASSERT_EQ(a->item, s->item) << "round " << round;
  }
}

// ------------------------------------------------ EventQueue vs multimap

TEST(EventQueueOracle, RandomOpsMatchMultimap) {
  des::EventQueue fast;
  // Oracle: (time, id) ordered set mirrors the heap's contract exactly.
  std::set<std::pair<double, des::EventId>> oracle;

  rng::Xoshiro256ss eng(0xBEEF);
  des::EventId next_id = 1;
  std::vector<des::EventId> pending_ids;

  for (int op = 0; op < 20000; ++op) {
    const double dice = rng::uniform01(eng);
    if (dice < 0.5) {
      const double when = rng::uniform(eng, 0.0, 1000.0);
      const des::EventId id = next_id++;
      fast.push(des::Event{when, id, [] {}});
      oracle.emplace(when, id);
      pending_ids.push_back(id);
    } else if (dice < 0.65 && !pending_ids.empty()) {
      // Cancel a random pending event (or an already-fired id).
      const auto idx = static_cast<std::size_t>(
          rng::uniform_below(eng, pending_ids.size()));
      const des::EventId id = pending_ids[idx];
      bool oracle_had = false;
      for (auto it = oracle.begin(); it != oracle.end(); ++it) {
        if (it->second == id) {
          oracle.erase(it);
          oracle_had = true;
          break;
        }
      }
      ASSERT_EQ(fast.cancel(id), oracle_had);
      pending_ids.erase(pending_ids.begin() +
                        static_cast<std::ptrdiff_t>(idx));
    } else if (!oracle.empty()) {
      ASSERT_FALSE(fast.empty());
      ASSERT_DOUBLE_EQ(fast.next_time(), oracle.begin()->first);
      const des::Event event = fast.pop();
      ASSERT_EQ(event.id, oracle.begin()->second);
      oracle.erase(oracle.begin());
      for (auto it = pending_ids.begin(); it != pending_ids.end(); ++it) {
        if (*it == event.id) {
          pending_ids.erase(it);
          break;
        }
      }
    } else {
      ASSERT_TRUE(fast.empty());
    }
    ASSERT_EQ(fast.size(), oracle.size());
  }
}

}  // namespace
}  // namespace pushpull
