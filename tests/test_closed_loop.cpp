// Tests for the closed-loop (finite client population) hybrid system.
#include <gtest/gtest.h>

#include "catalog/catalog.hpp"
#include "catalog/length_model.hpp"
#include "core/closed_loop.hpp"

namespace pushpull::core {
namespace {

catalog::Catalog test_catalog() {
  return catalog::Catalog(50, 0.6, catalog::LengthModel::paper_default(), 7);
}

ClosedLoopConfig base_config() {
  ClosedLoopConfig config;
  config.num_clients = 40;
  config.think_rate = 0.05;
  config.cutoff = 15;
  config.alpha = 0.25;
  config.horizon = 8000.0;
  return config;
}

TEST(ClosedLoop, RejectsBadConfig) {
  const auto cat = test_catalog();
  const auto pop = workload::ClientPopulation::paper_default();
  ClosedLoopConfig config = base_config();
  config.num_clients = 0;
  EXPECT_THROW(ClosedLoopServer(cat, pop, config), std::invalid_argument);
  config = base_config();
  config.think_rate = 0.0;
  EXPECT_THROW(ClosedLoopServer(cat, pop, config), std::invalid_argument);
  config = base_config();
  config.cutoff = 1000;
  EXPECT_THROW(ClosedLoopServer(cat, pop, config), std::invalid_argument);
  config = base_config();
  config.horizon = 0.0;
  EXPECT_THROW(ClosedLoopServer(cat, pop, config), std::invalid_argument);
  config = base_config();
  config.warmup_fraction = 1.0;
  EXPECT_THROW(ClosedLoopServer(cat, pop, config), std::invalid_argument);
}

TEST(ClosedLoop, RunsAndServes) {
  const auto cat = test_catalog();
  const auto pop = workload::ClientPopulation::paper_default();
  ClosedLoopServer server(cat, pop, base_config());
  const ClosedLoopResult r = server.run();
  EXPECT_GT(r.overall().served, 0u);
  EXPECT_GT(r.throughput, 0.0);
  EXPECT_GT(r.push_transmissions, 0u);
}

TEST(ClosedLoop, OutstandingBoundedByPopulation) {
  // A closed loop can never have more outstanding requests than clients.
  const auto cat = test_catalog();
  const auto pop = workload::ClientPopulation::paper_default();
  ClosedLoopServer server(cat, pop, base_config());
  const ClosedLoopResult r = server.run();
  const auto overall = r.overall();
  EXPECT_LE(overall.arrived - overall.served, 40u);
}

TEST(ClosedLoop, ThroughputSaturatesWithPopulation) {
  const auto cat = test_catalog();
  const auto pop = workload::ClientPopulation::paper_default();
  double prev_throughput = 0.0;
  double saturated = 0.0;
  for (std::size_t clients : {std::size_t{5}, std::size_t{40},
                              std::size_t{200}}) {
    ClosedLoopConfig config = base_config();
    config.num_clients = clients;
    ClosedLoopServer server(cat, pop, config);
    const ClosedLoopResult r = server.run();
    EXPECT_GE(r.throughput, prev_throughput * 0.9)
        << clients << " clients";  // throughput never collapses
    prev_throughput = r.throughput;
    saturated = r.throughput;
  }
  // 200 clients cannot push more deliveries than the channel can carry:
  // at mean item length 2, even perfect batching bounds deliveries well
  // below clients × think rate (= 10 per unit).
  EXPECT_LT(saturated, 10.0);
  EXPECT_GT(saturated, 0.2);
}

TEST(ClosedLoop, DelayGrowsWithPopulation) {
  const auto cat = test_catalog();
  const auto pop = workload::ClientPopulation::paper_default();
  ClosedLoopConfig small = base_config();
  small.num_clients = 5;
  ClosedLoopConfig large = base_config();
  large.num_clients = 300;
  ClosedLoopServer a(cat, pop, small);
  ClosedLoopServer b(cat, pop, large);
  EXPECT_LT(a.run().overall().wait.mean(), b.run().overall().wait.mean());
}

TEST(ClosedLoop, DeterministicForSeed) {
  const auto cat = test_catalog();
  const auto pop = workload::ClientPopulation::paper_default();
  ClosedLoopServer server(cat, pop, base_config());
  const ClosedLoopResult a = server.run();
  const ClosedLoopResult b = server.run();
  EXPECT_DOUBLE_EQ(a.overall().wait.mean(), b.overall().wait.mean());
  EXPECT_EQ(a.pull_transmissions, b.pull_transmissions);
}

TEST(ClosedLoop, ClassAssignmentFollowsShares) {
  const auto cat = test_catalog();
  const auto pop = workload::ClientPopulation::paper_default();
  ClosedLoopConfig config = base_config();
  config.num_clients = 300;
  config.alpha = 0.0;
  ClosedLoopServer server(cat, pop, config);
  const ClosedLoopResult r = server.run();
  // Lowest class has the largest population share, hence the most arrivals.
  EXPECT_GT(r.per_class[2].arrived, r.per_class[0].arrived);
  // And the premium class keeps its delay edge.
  EXPECT_LE(r.mean_wait(0), r.mean_wait(2) * 1.10);
}

TEST(ClosedLoop, PurePullIdlesGracefully) {
  const auto cat = test_catalog();
  const auto pop = workload::ClientPopulation::paper_default();
  ClosedLoopConfig config = base_config();
  config.cutoff = 0;
  config.num_clients = 10;
  ClosedLoopServer server(cat, pop, config);
  const ClosedLoopResult r = server.run();
  EXPECT_GT(r.overall().served, 0u);
  EXPECT_EQ(r.push_transmissions, 0u);
}

}  // namespace
}  // namespace pushpull::core
