// Unit tests for the server's pull queue: per-item aggregation, policy
// extraction, index integrity under swap-removal.
#include <gtest/gtest.h>

#include "core/pull_queue.hpp"
#include "sched/pull/policies.hpp"

namespace pushpull::core {
namespace {

workload::Request make_request(workload::RequestId id, catalog::ItemId item,
                               workload::ClassId cls, double arrival) {
  workload::Request r;
  r.id = id;
  r.item = item;
  r.cls = cls;
  r.arrival = arrival;
  return r;
}

const sched::PullContext kCtx{100.0, 1.0};

TEST(PullQueue, StartsEmpty) {
  PullQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.distinct_items(), 0u);
  EXPECT_EQ(q.total_requests(), 0u);
  sched::MrfPolicy policy;
  EXPECT_FALSE(q.extract_best(policy, kCtx).has_value());
}

TEST(PullQueue, AggregatesPerItem) {
  PullQueue q;
  q.add(make_request(1, 7, 0, 1.0), 3.0, 2.0, 0.05);
  q.add(make_request(2, 7, 2, 2.0), 1.0, 2.0, 0.05);
  q.add(make_request(3, 9, 1, 3.0), 2.0, 4.0, 0.01);

  EXPECT_EQ(q.distinct_items(), 2u);
  EXPECT_EQ(q.total_requests(), 3u);

  const auto* entry = q.find(7);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->pending.size(), 2u);
  EXPECT_DOUBLE_EQ(entry->total_priority, 4.0);
  EXPECT_DOUBLE_EQ(entry->first_arrival, 1.0);
  EXPECT_DOUBLE_EQ(entry->length, 2.0);
  EXPECT_DOUBLE_EQ(entry->popularity, 0.05);
}

TEST(PullQueue, FirstArrivalSticksToOldest) {
  PullQueue q;
  q.add(make_request(1, 3, 0, 10.0), 1.0, 1.0, 0.1);
  q.add(make_request(2, 3, 0, 20.0), 1.0, 1.0, 0.1);
  EXPECT_DOUBLE_EQ(q.find(3)->first_arrival, 10.0);
}

TEST(PullQueue, ExtractBestFollowsPolicy) {
  PullQueue q;
  // Item 1: 3 requests; item 2: 1 request with huge priority.
  for (int i = 0; i < 3; ++i) {
    q.add(make_request(static_cast<workload::RequestId>(i), 1, 2,
                       static_cast<double>(i)),
          1.0, 2.0, 0.1);
  }
  q.add(make_request(10, 2, 0, 0.5), 9.0, 2.0, 0.1);

  sched::MrfPolicy mrf;
  sched::PriorityPolicy prio;

  {
    PullQueue copy = q;
    const auto best = copy.extract_best(mrf, kCtx);
    ASSERT_TRUE(best.has_value());
    EXPECT_EQ(best->item, 1u);
  }
  {
    PullQueue copy = q;
    const auto best = copy.extract_best(prio, kCtx);
    ASSERT_TRUE(best.has_value());
    EXPECT_EQ(best->item, 2u);
  }
}

TEST(PullQueue, ExtractRemovesEntry) {
  PullQueue q;
  q.add(make_request(1, 5, 0, 1.0), 1.0, 1.0, 0.1);
  q.add(make_request(2, 6, 0, 2.0), 1.0, 1.0, 0.1);
  const auto out = q.extract(5);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->item, 5u);
  EXPECT_EQ(q.distinct_items(), 1u);
  EXPECT_EQ(q.total_requests(), 1u);
  EXPECT_EQ(q.find(5), nullptr);
  EXPECT_NE(q.find(6), nullptr);
}

TEST(PullQueue, ExtractMissingIsNullopt) {
  PullQueue q;
  q.add(make_request(1, 5, 0, 1.0), 1.0, 1.0, 0.1);
  EXPECT_FALSE(q.extract(99).has_value());
  EXPECT_EQ(q.total_requests(), 1u);
}

TEST(PullQueue, SwapRemovalKeepsIndexConsistent) {
  PullQueue q;
  for (catalog::ItemId item = 0; item < 10; ++item) {
    q.add(make_request(item, item, 0, static_cast<double>(item)), 1.0, 1.0,
          0.1);
  }
  // Remove from the middle repeatedly; remaining entries stay findable.
  EXPECT_TRUE(q.extract(4).has_value());
  EXPECT_TRUE(q.extract(0).has_value());
  EXPECT_TRUE(q.extract(9).has_value());
  for (catalog::ItemId item : {1u, 2u, 3u, 5u, 6u, 7u, 8u}) {
    const auto* entry = q.find(item);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->item, item);
  }
  EXPECT_EQ(q.distinct_items(), 7u);
}

TEST(PullQueue, TieBreaksTowardLowestItemId) {
  PullQueue q;
  q.add(make_request(1, 8, 0, 1.0), 2.0, 2.0, 0.1);
  q.add(make_request(2, 3, 0, 1.0), 2.0, 2.0, 0.1);
  sched::PriorityPolicy prio;  // equal scores
  const auto best = q.extract_best(prio, kCtx);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->item, 3u);
}

TEST(PullQueue, DrainOrderUnderMrfIsDescendingRequests) {
  PullQueue q;
  const std::size_t sizes[] = {1, 4, 2, 7, 3};
  workload::RequestId rid = 0;
  for (catalog::ItemId item = 0; item < 5; ++item) {
    for (std::size_t r = 0; r < sizes[item]; ++r) {
      q.add(make_request(rid++, item, 0, 1.0), 1.0, 1.0, 0.1);
    }
  }
  sched::MrfPolicy mrf;
  std::size_t prev = 100;
  while (!q.empty()) {
    const auto entry = q.extract_best(mrf, kCtx);
    ASSERT_TRUE(entry.has_value());
    EXPECT_LE(entry->pending.size(), prev);
    prev = entry->pending.size();
  }
}

TEST(PullQueue, ClearResets) {
  PullQueue q;
  q.add(make_request(1, 5, 0, 1.0), 1.0, 1.0, 0.1);
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.total_requests(), 0u);
  // Reusable after clear.
  q.add(make_request(2, 5, 0, 2.0), 1.0, 1.0, 0.1);
  EXPECT_EQ(q.distinct_items(), 1u);
}

}  // namespace
}  // namespace pushpull::core
