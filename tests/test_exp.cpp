// Unit tests for the experiment infrastructure: the paper-default scenario
// facade and the table printer.
#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

#include "exp/scenario.hpp"
#include "exp/table.hpp"

namespace pushpull::exp {
namespace {

TEST(Scenario, PaperDefaults) {
  const Scenario s;
  EXPECT_EQ(s.num_items, 100u);
  EXPECT_DOUBLE_EQ(s.theta, 0.60);
  EXPECT_DOUBLE_EQ(s.arrival_rate, 5.0);
  EXPECT_EQ(s.num_classes, 3u);
  EXPECT_EQ(s.min_length, 1u);
  EXPECT_EQ(s.max_length, 5u);
  EXPECT_DOUBLE_EQ(s.mean_length, 2.0);
}

TEST(Scenario, BuildIsDeterministic) {
  Scenario s;
  s.num_requests = 500;
  const auto a = s.build();
  const auto b = s.build();
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.trace[i].arrival, b.trace[i].arrival);
    EXPECT_EQ(a.trace[i].item, b.trace[i].item);
    EXPECT_EQ(a.trace[i].cls, b.trace[i].cls);
  }
  for (std::size_t i = 0; i < a.catalog.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.catalog.length(static_cast<catalog::ItemId>(i)),
                     b.catalog.length(static_cast<catalog::ItemId>(i)));
  }
}

TEST(Scenario, SeedChangesWorkload) {
  Scenario a;
  a.num_requests = 500;
  Scenario b = a;
  b.seed = a.seed + 1;
  const auto ba = a.build();
  const auto bb = b.build();
  int diff = 0;
  for (std::size_t i = 0; i < ba.trace.size(); ++i) {
    if (ba.trace[i].item != bb.trace[i].item) ++diff;
  }
  EXPECT_GT(diff, 50);
}

TEST(Scenario, ThetaPropagatesToCatalog) {
  Scenario s;
  s.theta = 1.4;
  s.num_requests = 10;
  const auto built = s.build();
  EXPECT_DOUBLE_EQ(built.catalog.theta(), 1.4);
}

// -------------------------------------------------------------------- Table

TEST(Scenario, ValidateRejectsNonPositiveArrivalRate) {
  Scenario s;
  s.arrival_rate = 0.0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s.arrival_rate = -2.0;
  EXPECT_THROW((void)s.build(), std::invalid_argument);
  s.arrival_rate = std::numeric_limits<double>::infinity();
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(Scenario, ValidateRejectsZeroLengthItems) {
  Scenario s;
  s.min_length = 0;
  try {
    s.validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("min_length"), std::string::npos);
  }
}

TEST(Scenario, ValidateRejectsInvertedLengthBounds) {
  Scenario s;
  s.min_length = 4;
  s.max_length = 2;
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(Scenario, ValidateRejectsZeroCounts) {
  Scenario items;
  items.num_items = 0;
  EXPECT_THROW(items.validate(), std::invalid_argument);
  Scenario classes;
  classes.num_classes = 0;
  EXPECT_THROW(classes.validate(), std::invalid_argument);
  Scenario requests;
  requests.num_requests = 0;
  EXPECT_THROW(requests.validate(), std::invalid_argument);
}

TEST(Scenario, ValidateAcceptsPaperDefaults) {
  EXPECT_NO_THROW(Scenario{}.validate());
}

TEST(Scenario, CutoffBeyondCatalogRejectedByServer) {
  Scenario s;
  s.num_items = 20;
  s.num_requests = 100;
  const auto built = s.build();
  core::HybridConfig config;
  config.cutoff = 21;  // one past the catalog
  EXPECT_THROW(core::HybridServer(built.catalog, built.population, config),
               std::invalid_argument);
}

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.row().add("alpha").add(1.5, 2);
  t.row().add("b").add(std::size_t{42});
  std::ostringstream out;
  t.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("1.50"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.row().add("x").add(2.0, 1);
  std::ostringstream out;
  t.print_csv(out);
  EXPECT_EQ(out.str(), "a,b\nx,2.0\n");
}

TEST(Table, RowDisciplineEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add("x"), std::logic_error);  // add before row
  t.row().add("1").add("2");
  EXPECT_THROW(t.add("3"), std::logic_error);  // row already full
}

TEST(Table, IncompleteRowDetectedOnNextRow) {
  Table t({"a", "b"});
  t.row().add("only-one");
  EXPECT_THROW(t.row(), std::logic_error);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, NumRows) {
  Table t({"a"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.row().add("1");
  t.row().add("2");
  EXPECT_EQ(t.num_rows(), 2u);
}

}  // namespace
}  // namespace pushpull::exp
