// detlint's own test suite: every rule fires on its fixture exactly at the
// marked lines, path scoping works (D2/D5/R1/R2), the clean fixture is
// silent, suppressions and the baseline filter findings, the tree-wide
// D3 declaration merge catches cross-file header/impl splits, parity
// regions are token-compared across engine files (including the real
// tree's engines, with a PR-7 bug re-introduction check), the layer DAG
// rejects undeclared include edges, dead suppressions and stale baseline
// entries are themselves findings, and the SARIF rendering validates
// against the 2.1.0 structural schema offline.
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "lint.hpp"
#include "report.hpp"

#ifndef DETLINT_FIXTURE_DIR
#error "DETLINT_FIXTURE_DIR must point at tools/detlint/fixtures"
#endif

namespace {

std::string read_fixture(const std::string& name) {
  const std::filesystem::path path =
      std::filesystem::path(DETLINT_FIXTURE_DIR) / name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot read fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

/// (line, rule) pairs declared by `DETLINT-EXPECT: <rule>` markers.
std::set<std::pair<std::size_t, std::string>> expected_findings(
    const std::string& text) {
  std::set<std::pair<std::size_t, std::string>> expected;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string marker = "DETLINT-EXPECT: ";
    const std::size_t pos = line.find(marker);
    if (pos == std::string::npos) continue;
    std::string rule;
    for (std::size_t i = pos + marker.size();
         i < line.size() && (std::isalnum(line[i]) != 0); ++i) {
      rule += line[i];
    }
    expected.emplace(lineno, rule);
  }
  return expected;
}

std::set<std::pair<std::size_t, std::string>> actual_findings(
    const std::vector<detlint::Diagnostic>& diags) {
  std::set<std::pair<std::size_t, std::string>> actual;
  for (const auto& d : diags) actual.emplace(d.line, d.rule);
  return actual;
}

/// The fixture must produce exactly its marked findings — no more, no
/// fewer, at exactly the marked lines.
void expect_matches_markers(const std::string& fixture,
                            const std::string& pretend_path) {
  const std::string text = read_fixture(fixture);
  const auto expected = expected_findings(text);
  ASSERT_FALSE(expected.empty()) << fixture << " has no markers";
  const auto diags = detlint::analyze_source(pretend_path, text);
  EXPECT_EQ(actual_findings(diags), expected) << fixture;
}

TEST(DetlintRules, D1FiresOnWallClockSources) {
  expect_matches_markers("bad_d1.cpp", "src/sim/bad_d1.cpp");
}

TEST(DetlintRules, D1SkipsServeClockBoundaryFile) {
  // The wall backend of serve::Clock is the one sanctioned machine-time
  // read in the tree: under its real path the steady_clock uses are clean,
  // while the identical text anywhere else — even next door in src/serve/ —
  // still flags.
  const std::string text = read_fixture("serve_clock_boundary.cpp");
  EXPECT_TRUE(detlint::analyze_source("src/serve/clock.cpp", text).empty())
      << "the serve::Clock wall backend is the sanctioned D1 boundary";
  EXPECT_FALSE(
      detlint::analyze_source("src/serve/event_loop.cpp", text).empty())
      << "the exemption must cover exactly src/serve/clock.cpp";
  EXPECT_FALSE(detlint::analyze_source("src/core/clock.cpp", text).empty())
      << "the exemption must not follow the file name to other directories";
}

TEST(DetlintRules, D1FiresOnWallClockLeaksOutsideTheBoundary) {
  expect_matches_markers("serve_clock_leak.cpp", "src/serve/event_loop.cpp");
}

TEST(DetlintRules, D2FiresOnRawEnginesOutsideRng) {
  expect_matches_markers("bad_d2.cpp", "src/sim/bad_d2.cpp");
}

TEST(DetlintRules, D2IsAllowedInsideRngSubsystem) {
  const std::string text = read_fixture("bad_d2.cpp");
  const auto diags = detlint::analyze_source("src/rng/bad_d2.cpp", text);
  EXPECT_TRUE(diags.empty())
      << "engines are legal inside src/rng/, got " << diags.size();
}

TEST(DetlintRules, D3FiresOnUnorderedIteration) {
  expect_matches_markers("bad_d3.cpp", "src/exp/bad_d3.cpp");
}

TEST(DetlintRules, D3AcceptsSortedViewRouting) {
  // The fixture's second loop routes through sorted_view; the marker set
  // (exactly one D3) proves it stays silent. Belt-and-braces: no D3 on the
  // sorted_view line.
  const std::string text = read_fixture("bad_d3.cpp");
  const auto diags = detlint::analyze_source("src/exp/bad_d3.cpp", text);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "D3");
}

TEST(DetlintRules, D3SeesCrossFileDeclarationsViaExtraNames) {
  const std::string body =
      "void emit(const Options& options_) {\n"
      "  for (const auto& kv : options_) {\n"
      "    (void)kv;\n"
      "  }\n"
      "}\n";
  // Without the tree-wide declaration set the lexical pass cannot know
  // options_ is unordered.
  EXPECT_TRUE(detlint::analyze_source("src/exp/emit.cpp", body).empty());
  const auto diags =
      detlint::analyze_source("src/exp/emit.cpp", body, {"options_"});
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "D3");
  EXPECT_EQ(diags[0].line, 2u);
}

TEST(DetlintRules, CollectUnorderedNamesFindsHeaderDeclarations) {
  const auto names = detlint::collect_unordered_names(
      "class ArgParser {\n"
      "  std::unordered_map<std::string, std::string> options_;\n"
      "  std::unordered_set<int> seen_;\n"
      "  std::map<int, int> ordered_;\n"
      "};\n");
  EXPECT_EQ(names, (std::set<std::string>{"options_", "seen_"}));
}

TEST(DetlintRules, D4FiresOnFloatAndRawLiteralComparison) {
  expect_matches_markers("bad_d4.cpp", "src/metrics/bad_d4.cpp");
}

TEST(DetlintRules, D4SkipsApprovedHelperFile) {
  const std::string helper =
      "constexpr bool exactly_equal(double a, double b) {\n"
      "  return a == b;\n"
      "}\n"
      "constexpr bool is_zero(double a) { return a == 0.0; }\n";
  // Same text: flagged anywhere else, approved in the helper's home.
  EXPECT_FALSE(
      detlint::analyze_source("src/metrics/other.hpp", helper).empty());
  EXPECT_TRUE(
      detlint::analyze_source("src/metrics/float_compare.hpp", helper)
          .empty());
}

TEST(DetlintRules, R1FiresOnAssertInLibraryCode) {
  expect_matches_markers("bad_r1.cpp", "src/core/bad_r1.cpp");
}

TEST(DetlintRules, R1ScopesToSrcOnly) {
  const std::string text = read_fixture("bad_r1.cpp");
  const auto diags = detlint::analyze_source("bench/bad_r1.cpp", text);
  EXPECT_TRUE(diags.empty())
      << "assert() is legal outside src/, got " << diags.size();
}

TEST(DetlintRules, R2FiresOnUsingNamespaceInHeader) {
  expect_matches_markers("bad_r2.hpp", "src/core/bad_r2.hpp");
}

TEST(DetlintRules, R2ScopesToHeadersOnly) {
  const std::string text = read_fixture("bad_r2.hpp");
  const auto diags = detlint::analyze_source("src/core/bad_r2.cpp", text);
  EXPECT_TRUE(diags.empty())
      << "using namespace is legal in a .cpp, got " << diags.size();
}

TEST(DetlintClean, CleanFixtureProducesNoFindings) {
  const std::string text = read_fixture("clean.cpp");
  for (const char* path : {"src/sim/clean.cpp", "src/sim/clean.hpp"}) {
    const auto diags = detlint::analyze_source(path, text);
    std::string listing;
    for (const auto& d : diags) {
      listing += d.file + ":" + std::to_string(d.line) + ": " + d.rule + "\n";
    }
    EXPECT_TRUE(diags.empty()) << "unexpected findings:\n" << listing;
  }
}

TEST(DetlintSuppression, SuppressedFixtureIsSilent) {
  const std::string text = read_fixture("suppressed.cpp");
  const auto diags = detlint::analyze_source("src/sim/suppressed.cpp", text);
  std::string listing;
  for (const auto& d : diags) {
    listing += d.file + ":" + std::to_string(d.line) + ": " + d.rule + "\n";
  }
  EXPECT_TRUE(diags.empty()) << "unexpected findings:\n" << listing;
}

TEST(DetlintSuppression, FindingsReappearWithoutSuppressions) {
  std::string text = read_fixture("suppressed.cpp");
  // Neutralize every directive; the violations are still in the code.
  const std::string directive = "detlint:allow";
  std::size_t pos = 0;
  std::size_t neutralized = 0;
  while ((pos = text.find(directive, pos)) != std::string::npos) {
    text.replace(pos, directive.size(), "detlint:nope!");
    ++neutralized;
  }
  ASSERT_GE(neutralized, 3u);
  const auto diags = detlint::analyze_source("src/sim/suppressed.cpp", text);
  std::set<std::string> rules;
  for (const auto& d : diags) rules.insert(d.rule);
  EXPECT_TRUE(rules.count("D1") != 0) << "steady_clock should resurface";
  EXPECT_TRUE(rules.count("D3") != 0) << "unordered loop should resurface";
  EXPECT_TRUE(rules.count("D4") != 0) << "sentinel == should resurface";
}

TEST(DetlintSuppression, FileWideAllowCoversWholeFile) {
  const std::string body =
      "// detlint:allow-file(D4): fixture-wide exemption\n"
      "bool a(double x) { return x == 1.0; }\n"
      "bool b(double x) { return x != 2.5; }\n";
  EXPECT_TRUE(detlint::analyze_source("src/metrics/f.cpp", body).empty());
}

TEST(DetlintSuppression, StandaloneCommentCoversNextLineOnly) {
  const std::string body =
      "// detlint:allow(D4): covers the next line\n"
      "bool a(double x) { return x == 1.0; }\n"
      "bool b(double x) { return x == 1.0; }\n";
  const auto diags = detlint::analyze_source("src/metrics/f.cpp", body);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 3u);
}

TEST(DetlintBaseline, BaselineMarksButDoesNotDrop) {
  std::istringstream baseline_text(
      "# comment\n"
      "\n"
      "src/sim/old.cpp:D1\n");
  const auto baseline = detlint::Baseline::parse(baseline_text);
  EXPECT_EQ(baseline.size(), 1u);

  std::vector<detlint::Diagnostic> diags = detlint::analyze_source(
      "src/sim/old.cpp", "long seed() { return time(nullptr); }\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "D1");

  detlint::apply_baseline(diags, baseline);
  EXPECT_TRUE(diags[0].baselined);
  EXPECT_EQ(detlint::fresh_count(diags), 0u);

  // A different file with the same finding is NOT covered.
  std::vector<detlint::Diagnostic> other = detlint::analyze_source(
      "src/sim/new.cpp", "long seed() { return time(nullptr); }\n");
  detlint::apply_baseline(other, baseline);
  EXPECT_EQ(detlint::fresh_count(other), 1u);
}

TEST(DetlintMeta, RuleTableListsAllTenRules) {
  const auto& rules = detlint::rules();
  ASSERT_EQ(rules.size(), 10u);
  std::vector<std::string> ids;
  ids.reserve(rules.size());
  for (const auto& r : rules) ids.emplace_back(r.id);
  EXPECT_EQ(ids, (std::vector<std::string>{"D1", "D2", "D3", "D4", "D5",
                                           "L1", "P1", "R1", "R2", "S1"}));
}

TEST(DetlintMeta, CommentsAndStringsNeverFire) {
  const std::string body =
      "// rand() time(nullptr) float x == 1.0 assert(x)\n"
      "/* std::mt19937 engine; using namespace std; */\n"
      "const char* s = \"rand() assert(true) == 0.5\";\n"
      "const char* r = R\"(time(nullptr) float)\";\n";
  for (const char* path : {"src/sim/c.cpp", "src/sim/c.hpp"}) {
    EXPECT_TRUE(detlint::analyze_source(path, body).empty()) << path;
  }
}

// ---------------------------------------------------------------------------
// D5: RNG stream purity
// ---------------------------------------------------------------------------

TEST(DetlintRules, D5FiresOnAllThreeImpurityModes) {
  expect_matches_markers("bad_d5.cpp", "src/sim/bad_d5.cpp");
}

TEST(DetlintRules, D5IsScopedToSrcOutsideRng) {
  const std::string text = read_fixture("bad_d5.cpp");
  EXPECT_TRUE(detlint::analyze_source("src/rng/bad_d5.cpp", text).empty())
      << "the stream factory itself may construct and seed engines";
  EXPECT_TRUE(detlint::analyze_source("bench/bad_d5.cpp", text).empty())
      << "D5 polices library code, not benches";
}

// ---------------------------------------------------------------------------
// L1: layer DAG
// ---------------------------------------------------------------------------

detlint::LayerConfig mini_layer_config() {
  std::istringstream toml(
      "[layers]\n"
      "des = []\n"
      "core = [\"des\"]\n"
      "serve = [\"core\"]\n"
      "cli = [\"*\"]\n"
      "exp = []\n"
      "[restricted]\n"
      "exp = [\"cli\"]\n");
  return detlint::LayerConfig::parse(toml);
}

TEST(DetlintLayers, L1FiresOnUndeclaredAndRestrictedEdges) {
  const detlint::LayerConfig layers = mini_layer_config();
  ASSERT_TRUE(layers.errors.empty());
  const std::string text = read_fixture("bad_l1.cpp");
  const auto expected = expected_findings(text);
  ASSERT_FALSE(expected.empty());
  const auto report = detlint::analyze_source_v2("src/core/bad_l1.cpp", text,
                                                 {}, &layers);
  EXPECT_EQ(actual_findings(report.diags), expected);
}

TEST(DetlintLayers, WildcardLayerMayIncludeAnythingButRestricted) {
  const detlint::LayerConfig layers = mini_layer_config();
  const std::string body =
      "#include \"core/hybrid.hpp\"\n"
      "#include \"serve/live.hpp\"\n"
      "#include \"exp/cli.hpp\"\n";
  // tools/ maps to the wildcard `cli` layer, which is also on exp's
  // restricted allow-list — everything is legal.
  EXPECT_TRUE(
      detlint::analyze_source_v2("tools/pushpull_cli.cpp", body, {}, &layers)
          .diags.empty());
  // bench is not declared in the mini config, so it is unlayered: silent.
  EXPECT_TRUE(
      detlint::analyze_source_v2("bench/b.cpp", body, {}, &layers)
          .diags.empty());
}

TEST(DetlintLayers, L1SkipsEntirelyWithoutConfig) {
  const std::string body = "#include \"serve/live.hpp\"\n";
  EXPECT_TRUE(
      detlint::analyze_source_v2("src/core/f.cpp", body, {}, nullptr)
          .diags.empty());
}

TEST(DetlintLayers, ConfigRejectsUndeclaredDepsAndCycles) {
  std::istringstream cyclic(
      "[layers]\n"
      "a = [\"b\"]\n"
      "b = [\"a\"]\n"
      "c = [\"ghost\"]\n");
  const auto config = detlint::LayerConfig::parse(cyclic);
  std::string joined;
  for (const auto& e : config.errors) joined += e + "\n";
  EXPECT_NE(joined.find("undeclared layer 'ghost'"), std::string::npos)
      << joined;
  EXPECT_NE(joined.find("cycle"), std::string::npos) << joined;
  // Config problems surface as L1 findings against the config file itself.
  const auto diags =
      detlint::check_layer_config(config, "tools/detlint/layers.toml");
  EXPECT_EQ(diags.size(), config.errors.size());
  for (const auto& d : diags) {
    EXPECT_EQ(d.rule, "L1");
    EXPECT_EQ(d.file, "tools/detlint/layers.toml");
  }
}

TEST(DetlintLayers, ConfigRejectsMalformedLines) {
  std::istringstream bad(
      "[layers]\n"
      "des = []\n"
      "this is not toml\n");
  const auto config = detlint::LayerConfig::parse(bad);
  ASSERT_EQ(config.errors.size(), 1u);
  EXPECT_NE(config.errors[0].find("line 3"), std::string::npos);
}

TEST(DetlintLayers, MissingConfigLoadsEmpty) {
  const auto config =
      detlint::LayerConfig::load_file("/nonexistent/layers.toml");
  EXPECT_TRUE(config.empty());
}

TEST(DetlintLayers, RealTreeConfigParsesCleanly) {
  const std::filesystem::path root = DETLINT_REPO_ROOT;
  const auto config = detlint::LayerConfig::load_file(
      (root / "tools" / "detlint" / "layers.toml").string());
  ASSERT_FALSE(config.empty()) << "the repo must ship a layer DAG";
  std::string joined;
  for (const auto& e : config.errors) joined += e + "\n";
  EXPECT_TRUE(config.errors.empty()) << joined;
}

// ---------------------------------------------------------------------------
// S1: dead suppressions and the baseline ratchet
// ---------------------------------------------------------------------------

TEST(DetlintSuppression, S1FiresOnEveryDeadDirective) {
  expect_matches_markers("bad_s1.cpp", "src/sim/bad_s1.cpp");
}

TEST(DetlintSuppression, S1CannotBeSuppressed) {
  // Allowing S1 on a dead directive's line must not silence it — a
  // suppression that suppresses the dead-suppression checker is a paradox.
  const std::string body =
      "// detlint:allow(S1, D4): nothing below trips D4\n"
      "int clean() { return 0; }\n";
  const auto diags = detlint::analyze_source("src/sim/f.cpp", body);
  ASSERT_FALSE(diags.empty());
  for (const auto& d : diags) EXPECT_EQ(d.rule, "S1");
}

TEST(DetlintBaseline, RatchetFlagsStaleEntries) {
  std::istringstream baseline_text(
      "src/sim/old.cpp:D1\n"
      "src/sim/gone.cpp:D4\n");
  const auto baseline = detlint::Baseline::parse(baseline_text);
  std::vector<detlint::Diagnostic> diags = detlint::analyze_source(
      "src/sim/old.cpp", "long seed() { return time(nullptr); }\n");
  detlint::apply_baseline(diags, baseline);
  EXPECT_EQ(detlint::fresh_count(diags), 0u);
  const auto stale = detlint::baseline_ratchet(diags, baseline,
                                               "tools/detlint/baseline.txt");
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0].rule, "S1");
  EXPECT_EQ(stale[0].file, "tools/detlint/baseline.txt");
  EXPECT_EQ(stale[0].line, 0u);
  EXPECT_NE(stale[0].message.find("src/sim/gone.cpp:D4"), std::string::npos);
}

// ---------------------------------------------------------------------------
// P1: cross-engine parity
// ---------------------------------------------------------------------------

TEST(DetlintParity, StructuralErrorsAreFileLocalFindings) {
  expect_matches_markers("parity_nested.cpp", "src/core/parity_nested.cpp");
}

/// Pools the parity regions of the two named sources and compares them.
std::vector<detlint::Diagnostic> parity_of(
    const std::string& core_path, const std::string& core_text,
    const std::string& live_path, const std::string& live_text) {
  auto core = detlint::analyze_source_v2(core_path, core_text);
  auto live = detlint::analyze_source_v2(live_path, live_text);
  EXPECT_TRUE(core.diags.empty()) << core_path;
  EXPECT_TRUE(live.diags.empty()) << live_path;
  std::vector<detlint::ParityRegion> regions = std::move(core.parity);
  regions.insert(regions.end(),
                 std::make_move_iterator(live.parity.begin()),
                 std::make_move_iterator(live.parity.end()));
  return detlint::check_parity(regions);
}

TEST(DetlintParity, FixturePairIsTokenIdenticalModuloRenames) {
  const auto diags = parity_of(
      "src/core/parity_core.cpp", read_fixture("parity_core.cpp"),
      "src/serve/parity_live.cpp", read_fixture("parity_live.cpp"));
  std::string listing;
  for (const auto& d : diags) listing += d.message + "\n";
  EXPECT_TRUE(diags.empty()) << listing;
}

TEST(DetlintParity, DriftInOneEngineIsCaught) {
  // Re-introduce the PR-7 bug shape in the fixture: the live engine's
  // occupancy signal stops counting the boosted push backlog.
  std::string live = read_fixture("parity_live.cpp");
  const std::string needle = "push_waiters_";
  const std::size_t pos = live.find(needle);
  ASSERT_NE(pos, std::string::npos);
  live.replace(pos, needle.size(), "empty_waiters_");
  const auto diags = parity_of(
      "src/core/parity_core.cpp", read_fixture("parity_core.cpp"),
      "src/serve/parity_live.cpp", live);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "P1");
  EXPECT_EQ(diags[0].file, "src/serve/parity_live.cpp");
  EXPECT_NE(diags[0].message.find("fixture-ladder-occupancy"),
            std::string::npos);
  EXPECT_NE(diags[0].message.find("empty_waiters_"), std::string::npos);
}

TEST(DetlintParity, DeclaredRenamesAreSymmetric) {
  // The deliver-at-end pair differs only by request=r, declared on both
  // begin markers; remove the live declaration and the pair still passes
  // because the maps merge. Then break the *token* and it fails.
  std::string live = read_fixture("parity_live.cpp");
  const std::string decl = "fixture-deliver-at-end, request=r";
  const std::size_t pos = live.find(decl);
  ASSERT_NE(pos, std::string::npos);
  live.replace(pos, decl.size(), "fixture-deliver-at-end");
  EXPECT_TRUE(parity_of("src/core/parity_core.cpp",
                        read_fixture("parity_core.cpp"),
                        "src/serve/parity_live.cpp", live)
                  .empty())
      << "one side's rename declaration must cover the pair";

  // An identifier outside every rename map is drift.
  std::string live2 = read_fixture("parity_live.cpp");
  const std::string call = "record_delivery(*collector_, r,";
  const std::size_t pos2 = live2.find(call);
  ASSERT_NE(pos2, std::string::npos);
  live2.replace(pos2, call.size(), "record_delivery(*collector_, q,");
  const auto diags = parity_of("src/core/parity_core.cpp",
                               read_fixture("parity_core.cpp"),
                               "src/serve/parity_live.cpp", live2);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("'q'"), std::string::npos);
}

TEST(DetlintParity, ASoloRegionIsAFinding) {
  auto core = detlint::analyze_source_v2("src/core/parity_core.cpp",
                                         read_fixture("parity_core.cpp"));
  const auto diags = detlint::check_parity(core.parity);
  ASSERT_EQ(diags.size(), 2u);  // both rules are missing their partner
  for (const auto& d : diags) {
    EXPECT_EQ(d.rule, "P1");
    EXPECT_NE(d.message.find("exactly two engines"), std::string::npos);
  }
}

TEST(DetlintParity, RealEnginesPassAndPR7BugIsCaught) {
  // The acceptance check for this analyzer: the real engines' annotated
  // regions are in parity today, and re-introducing one of PR 7's actual
  // cross-engine bugs — the live ladder reading a diverged occupancy
  // signal — is caught by P1 at the mutated token.
  const std::filesystem::path root = DETLINT_REPO_ROOT;
  auto read = [](const std::filesystem::path& p) {
    std::ifstream in(p, std::ios::binary);
    EXPECT_TRUE(in) << p;
    std::ostringstream buf;
    buf << in.rdbuf();
    return std::move(buf).str();
  };
  const std::string core_text = read(root / "src/core/hybrid_server.cpp");
  std::string live_text = read(root / "src/serve/live_server.cpp");

  auto pool = [&](const std::string& live) {
    auto core = detlint::analyze_source_v2("src/core/hybrid_server.cpp",
                                           core_text);
    auto live_report =
        detlint::analyze_source_v2("src/serve/live_server.cpp", live);
    std::vector<detlint::ParityRegion> regions = std::move(core.parity);
    regions.insert(regions.end(),
                   std::make_move_iterator(live_report.parity.begin()),
                   std::make_move_iterator(live_report.parity.end()));
    return detlint::check_parity(regions);
  };

  EXPECT_TRUE(pool(live_text).empty())
      << "the live engine drifted from the DES engine";

  // PR-7 bug shape: the live occupancy stops counting parked pull work.
  const std::string needle = "pull_queue_.total_requests(), push_waiters_";
  const std::size_t pos = live_text.find(needle);
  ASSERT_NE(pos, std::string::npos)
      << "live_server.cpp no longer feeds the shared occupancy rule";
  live_text.replace(pos, needle.size(),
                    "pull_queue_.size(), push_waiters_");
  const auto diags = pool(live_text);
  ASSERT_FALSE(diags.empty());
  EXPECT_EQ(diags[0].rule, "P1");
  EXPECT_EQ(diags[0].file, "src/serve/live_server.cpp");
  EXPECT_NE(diags[0].message.find("ladder-occupancy"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Reporting: JSON and SARIF
// ---------------------------------------------------------------------------

std::vector<detlint::Diagnostic> sample_diags() {
  return {
      {"src/core/a.cpp", 12, "D1", "wall-clock \"time()\" call", false},
      {"tools/detlint/baseline.txt", 0, "S1", "stale baseline entry", false},
      {"src/serve/b.cpp", 3, "D4", "raw '==' against 1.0", true},
  };
}

TEST(DetlintReport, RenderedSarifValidates) {
  std::ostringstream out;
  detlint::render_sarif(out, sample_diags());
  std::vector<std::string> errors;
  EXPECT_TRUE(detlint::validate_sarif(out.str(), &errors))
      << (errors.empty() ? "" : errors.front());
  // Baselined findings carry an external suppression; line-0 findings
  // clamp to startLine 1.
  EXPECT_NE(out.str().find("\"suppressions\": [{\"kind\": \"external\"}]"),
            std::string::npos);
  EXPECT_NE(out.str().find("\"startLine\": 1"), std::string::npos);
}

TEST(DetlintReport, EmptyRunSarifValidates) {
  std::ostringstream out;
  detlint::render_sarif(out, {});
  std::vector<std::string> errors;
  EXPECT_TRUE(detlint::validate_sarif(out.str(), &errors))
      << (errors.empty() ? "" : errors.front());
}

TEST(DetlintReport, ValidatorRejectsStructuralViolations) {
  std::vector<std::string> errors;
  EXPECT_FALSE(detlint::validate_sarif("not json at all", &errors));
  EXPECT_FALSE(detlint::validate_sarif("[]", nullptr));
  EXPECT_FALSE(detlint::validate_sarif(
      R"({"version": "2.0.0", "runs": [{"tool": {"driver": {"name": "x"}}}]})",
      nullptr))
      << "wrong version must fail";
  EXPECT_FALSE(detlint::validate_sarif(
      R"({"version": "2.1.0", "runs": []})", nullptr))
      << "empty runs must fail";
  EXPECT_FALSE(detlint::validate_sarif(
      R"({"version": "2.1.0", "runs": [{"tool": {"driver": {}}}]})",
      nullptr))
      << "missing driver name must fail";
  errors.clear();
  EXPECT_FALSE(detlint::validate_sarif(
      R"({"version": "2.1.0", "runs": [{"tool": {"driver": {"name": "x"}},
          "results": [{"ruleId": "D1", "message": {"text": "m"},
          "locations": [{"physicalLocation": {"artifactLocation":
          {"uri": "f.cpp"}, "region": {"startLine": 0}}}]}]}]})",
      &errors))
      << "startLine 0 must fail";
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].find("startLine"), std::string::npos);
}

TEST(DetlintReport, JsonRenderingIsStableAndComplete) {
  std::ostringstream out;
  detlint::render_json(out, sample_diags());
  const std::string json = out.str();
  EXPECT_NE(json.find("\"fresh\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"baselined\": 1"), std::string::npos);
  EXPECT_NE(json.find("\\\"time()\\\""), std::string::npos)
      << "quotes in messages must be escaped";
  std::ostringstream again;
  detlint::render_json(again, sample_diags());
  EXPECT_EQ(json, again.str());
}

TEST(DetlintTree, RepositoryIsCleanWithEmptyBaseline) {
  // The same invariant the detlint_tree ctest enforces, checked in-process
  // so a failure names the findings in the gtest log.
  const std::filesystem::path root = DETLINT_REPO_ROOT;
  auto diags = detlint::analyze_tree(root);
  const auto baseline = detlint::Baseline::load_file(
      (root / "tools" / "detlint" / "baseline.txt").string());
  EXPECT_EQ(baseline.size(), 0u) << "baseline must stay empty";
  detlint::apply_baseline(diags, baseline);
  std::string listing;
  for (const auto& d : diags) {
    if (!d.baselined) {
      listing += d.file + ":" + std::to_string(d.line) + ": " + d.rule + "\n";
    }
  }
  EXPECT_EQ(detlint::fresh_count(diags), 0u) << "tree findings:\n" << listing;
}

}  // namespace
