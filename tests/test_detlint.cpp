// detlint's own test suite: every rule fires on its fixture exactly at the
// marked lines, path scoping works (D2/R1/R2), the clean fixture is
// silent, suppressions and the baseline filter findings, and the tree-wide
// D3 declaration merge catches cross-file header/impl splits.
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "lint.hpp"

#ifndef DETLINT_FIXTURE_DIR
#error "DETLINT_FIXTURE_DIR must point at tools/detlint/fixtures"
#endif

namespace {

std::string read_fixture(const std::string& name) {
  const std::filesystem::path path =
      std::filesystem::path(DETLINT_FIXTURE_DIR) / name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot read fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

/// (line, rule) pairs declared by `DETLINT-EXPECT: <rule>` markers.
std::set<std::pair<std::size_t, std::string>> expected_findings(
    const std::string& text) {
  std::set<std::pair<std::size_t, std::string>> expected;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string marker = "DETLINT-EXPECT: ";
    const std::size_t pos = line.find(marker);
    if (pos == std::string::npos) continue;
    std::string rule;
    for (std::size_t i = pos + marker.size();
         i < line.size() && (std::isalnum(line[i]) != 0); ++i) {
      rule += line[i];
    }
    expected.emplace(lineno, rule);
  }
  return expected;
}

std::set<std::pair<std::size_t, std::string>> actual_findings(
    const std::vector<detlint::Diagnostic>& diags) {
  std::set<std::pair<std::size_t, std::string>> actual;
  for (const auto& d : diags) actual.emplace(d.line, d.rule);
  return actual;
}

/// The fixture must produce exactly its marked findings — no more, no
/// fewer, at exactly the marked lines.
void expect_matches_markers(const std::string& fixture,
                            const std::string& pretend_path) {
  const std::string text = read_fixture(fixture);
  const auto expected = expected_findings(text);
  ASSERT_FALSE(expected.empty()) << fixture << " has no markers";
  const auto diags = detlint::analyze_source(pretend_path, text);
  EXPECT_EQ(actual_findings(diags), expected) << fixture;
}

TEST(DetlintRules, D1FiresOnWallClockSources) {
  expect_matches_markers("bad_d1.cpp", "src/sim/bad_d1.cpp");
}

TEST(DetlintRules, D1SkipsServeClockBoundaryFile) {
  // The wall backend of serve::Clock is the one sanctioned machine-time
  // read in the tree: under its real path the steady_clock uses are clean,
  // while the identical text anywhere else — even next door in src/serve/ —
  // still flags.
  const std::string text = read_fixture("serve_clock_boundary.cpp");
  EXPECT_TRUE(detlint::analyze_source("src/serve/clock.cpp", text).empty())
      << "the serve::Clock wall backend is the sanctioned D1 boundary";
  EXPECT_FALSE(
      detlint::analyze_source("src/serve/event_loop.cpp", text).empty())
      << "the exemption must cover exactly src/serve/clock.cpp";
  EXPECT_FALSE(detlint::analyze_source("src/core/clock.cpp", text).empty())
      << "the exemption must not follow the file name to other directories";
}

TEST(DetlintRules, D1FiresOnWallClockLeaksOutsideTheBoundary) {
  expect_matches_markers("serve_clock_leak.cpp", "src/serve/event_loop.cpp");
}

TEST(DetlintRules, D2FiresOnRawEnginesOutsideRng) {
  expect_matches_markers("bad_d2.cpp", "src/sim/bad_d2.cpp");
}

TEST(DetlintRules, D2IsAllowedInsideRngSubsystem) {
  const std::string text = read_fixture("bad_d2.cpp");
  const auto diags = detlint::analyze_source("src/rng/bad_d2.cpp", text);
  EXPECT_TRUE(diags.empty())
      << "engines are legal inside src/rng/, got " << diags.size();
}

TEST(DetlintRules, D3FiresOnUnorderedIteration) {
  expect_matches_markers("bad_d3.cpp", "src/exp/bad_d3.cpp");
}

TEST(DetlintRules, D3AcceptsSortedViewRouting) {
  // The fixture's second loop routes through sorted_view; the marker set
  // (exactly one D3) proves it stays silent. Belt-and-braces: no D3 on the
  // sorted_view line.
  const std::string text = read_fixture("bad_d3.cpp");
  const auto diags = detlint::analyze_source("src/exp/bad_d3.cpp", text);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "D3");
}

TEST(DetlintRules, D3SeesCrossFileDeclarationsViaExtraNames) {
  const std::string body =
      "void emit(const Options& options_) {\n"
      "  for (const auto& kv : options_) {\n"
      "    (void)kv;\n"
      "  }\n"
      "}\n";
  // Without the tree-wide declaration set the lexical pass cannot know
  // options_ is unordered.
  EXPECT_TRUE(detlint::analyze_source("src/exp/emit.cpp", body).empty());
  const auto diags =
      detlint::analyze_source("src/exp/emit.cpp", body, {"options_"});
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "D3");
  EXPECT_EQ(diags[0].line, 2u);
}

TEST(DetlintRules, CollectUnorderedNamesFindsHeaderDeclarations) {
  const auto names = detlint::collect_unordered_names(
      "class ArgParser {\n"
      "  std::unordered_map<std::string, std::string> options_;\n"
      "  std::unordered_set<int> seen_;\n"
      "  std::map<int, int> ordered_;\n"
      "};\n");
  EXPECT_EQ(names, (std::set<std::string>{"options_", "seen_"}));
}

TEST(DetlintRules, D4FiresOnFloatAndRawLiteralComparison) {
  expect_matches_markers("bad_d4.cpp", "src/metrics/bad_d4.cpp");
}

TEST(DetlintRules, D4SkipsApprovedHelperFile) {
  const std::string helper =
      "constexpr bool exactly_equal(double a, double b) {\n"
      "  return a == b;\n"
      "}\n"
      "constexpr bool is_zero(double a) { return a == 0.0; }\n";
  // Same text: flagged anywhere else, approved in the helper's home.
  EXPECT_FALSE(
      detlint::analyze_source("src/metrics/other.hpp", helper).empty());
  EXPECT_TRUE(
      detlint::analyze_source("src/metrics/float_compare.hpp", helper)
          .empty());
}

TEST(DetlintRules, R1FiresOnAssertInLibraryCode) {
  expect_matches_markers("bad_r1.cpp", "src/core/bad_r1.cpp");
}

TEST(DetlintRules, R1ScopesToSrcOnly) {
  const std::string text = read_fixture("bad_r1.cpp");
  const auto diags = detlint::analyze_source("bench/bad_r1.cpp", text);
  EXPECT_TRUE(diags.empty())
      << "assert() is legal outside src/, got " << diags.size();
}

TEST(DetlintRules, R2FiresOnUsingNamespaceInHeader) {
  expect_matches_markers("bad_r2.hpp", "src/core/bad_r2.hpp");
}

TEST(DetlintRules, R2ScopesToHeadersOnly) {
  const std::string text = read_fixture("bad_r2.hpp");
  const auto diags = detlint::analyze_source("src/core/bad_r2.cpp", text);
  EXPECT_TRUE(diags.empty())
      << "using namespace is legal in a .cpp, got " << diags.size();
}

TEST(DetlintClean, CleanFixtureProducesNoFindings) {
  const std::string text = read_fixture("clean.cpp");
  for (const char* path : {"src/sim/clean.cpp", "src/sim/clean.hpp"}) {
    const auto diags = detlint::analyze_source(path, text);
    std::string listing;
    for (const auto& d : diags) {
      listing += d.file + ":" + std::to_string(d.line) + ": " + d.rule + "\n";
    }
    EXPECT_TRUE(diags.empty()) << "unexpected findings:\n" << listing;
  }
}

TEST(DetlintSuppression, SuppressedFixtureIsSilent) {
  const std::string text = read_fixture("suppressed.cpp");
  const auto diags = detlint::analyze_source("src/sim/suppressed.cpp", text);
  std::string listing;
  for (const auto& d : diags) {
    listing += d.file + ":" + std::to_string(d.line) + ": " + d.rule + "\n";
  }
  EXPECT_TRUE(diags.empty()) << "unexpected findings:\n" << listing;
}

TEST(DetlintSuppression, FindingsReappearWithoutSuppressions) {
  std::string text = read_fixture("suppressed.cpp");
  // Neutralize every directive; the violations are still in the code.
  const std::string directive = "detlint:allow";
  std::size_t pos = 0;
  std::size_t neutralized = 0;
  while ((pos = text.find(directive, pos)) != std::string::npos) {
    text.replace(pos, directive.size(), "detlint:nope!");
    ++neutralized;
  }
  ASSERT_GE(neutralized, 3u);
  const auto diags = detlint::analyze_source("src/sim/suppressed.cpp", text);
  std::set<std::string> rules;
  for (const auto& d : diags) rules.insert(d.rule);
  EXPECT_TRUE(rules.count("D1") != 0) << "steady_clock should resurface";
  EXPECT_TRUE(rules.count("D3") != 0) << "unordered loop should resurface";
  EXPECT_TRUE(rules.count("D4") != 0) << "sentinel == should resurface";
}

TEST(DetlintSuppression, FileWideAllowCoversWholeFile) {
  const std::string body =
      "// detlint:allow-file(D4): fixture-wide exemption\n"
      "bool a(double x) { return x == 1.0; }\n"
      "bool b(double x) { return x != 2.5; }\n";
  EXPECT_TRUE(detlint::analyze_source("src/metrics/f.cpp", body).empty());
}

TEST(DetlintSuppression, StandaloneCommentCoversNextLineOnly) {
  const std::string body =
      "// detlint:allow(D4): covers the next line\n"
      "bool a(double x) { return x == 1.0; }\n"
      "bool b(double x) { return x == 1.0; }\n";
  const auto diags = detlint::analyze_source("src/metrics/f.cpp", body);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 3u);
}

TEST(DetlintBaseline, BaselineMarksButDoesNotDrop) {
  std::istringstream baseline_text(
      "# comment\n"
      "\n"
      "src/sim/old.cpp:D1\n");
  const auto baseline = detlint::Baseline::parse(baseline_text);
  EXPECT_EQ(baseline.size(), 1u);

  std::vector<detlint::Diagnostic> diags = detlint::analyze_source(
      "src/sim/old.cpp", "long seed() { return time(nullptr); }\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "D1");

  detlint::apply_baseline(diags, baseline);
  EXPECT_TRUE(diags[0].baselined);
  EXPECT_EQ(detlint::fresh_count(diags), 0u);

  // A different file with the same finding is NOT covered.
  std::vector<detlint::Diagnostic> other = detlint::analyze_source(
      "src/sim/new.cpp", "long seed() { return time(nullptr); }\n");
  detlint::apply_baseline(other, baseline);
  EXPECT_EQ(detlint::fresh_count(other), 1u);
}

TEST(DetlintMeta, RuleTableListsAllSixRules) {
  const auto& rules = detlint::rules();
  ASSERT_EQ(rules.size(), 6u);
  std::vector<std::string> ids;
  ids.reserve(rules.size());
  for (const auto& r : rules) ids.emplace_back(r.id);
  EXPECT_EQ(ids, (std::vector<std::string>{"D1", "D2", "D3", "D4", "R1",
                                           "R2"}));
}

TEST(DetlintMeta, CommentsAndStringsNeverFire) {
  const std::string body =
      "// rand() time(nullptr) float x == 1.0 assert(x)\n"
      "/* std::mt19937 engine; using namespace std; */\n"
      "const char* s = \"rand() assert(true) == 0.5\";\n"
      "const char* r = R\"(time(nullptr) float)\";\n";
  for (const char* path : {"src/sim/c.cpp", "src/sim/c.hpp"}) {
    EXPECT_TRUE(detlint::analyze_source(path, body).empty()) << path;
  }
}

TEST(DetlintTree, RepositoryIsCleanWithEmptyBaseline) {
  // The same invariant the detlint_tree ctest enforces, checked in-process
  // so a failure names the findings in the gtest log.
  const std::filesystem::path root = DETLINT_REPO_ROOT;
  auto diags = detlint::analyze_tree(root);
  const auto baseline = detlint::Baseline::load_file(
      (root / "tools" / "detlint" / "baseline.txt").string());
  EXPECT_EQ(baseline.size(), 0u) << "baseline must stay empty";
  detlint::apply_baseline(diags, baseline);
  std::string listing;
  for (const auto& d : diags) {
    if (!d.baselined) {
      listing += d.file + ":" + std::to_string(d.line) + ": " + d.rule + "\n";
    }
  }
  EXPECT_EQ(detlint::fresh_count(diags), 0u) << "tree findings:\n" << listing;
}

}  // namespace
