// Tests for the gnuplot emitter.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "exp/plots.hpp"

namespace pushpull::exp {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class PlotsTest : public ::testing::Test {
 protected:
  void TearDown() override {
    std::remove((prefix_ + ".dat").c_str());
    std::remove((prefix_ + ".gp").c_str());
  }
  std::string prefix_ = "test_plot_output";
};

TEST_F(PlotsTest, RejectsEmptySpec) {
  EXPECT_THROW(write_gnuplot(prefix_, PlotSpec{}), std::invalid_argument);
}

TEST_F(PlotsTest, WritesDataAndScript) {
  PlotSpec spec{std::string("Delay vs cutoff"), std::string("K"),
                std::string("delay"), {}};
  spec.series.push_back(PlotSeries{"class A", {{10, 5.0}, {20, 3.0}}});
  spec.series.push_back(PlotSeries{"class C", {{10, 9.0}, {20, 7.0}}});
  write_gnuplot(prefix_, spec);

  const std::string dat = slurp(prefix_ + ".dat");
  EXPECT_NE(dat.find("class A"), std::string::npos);
  EXPECT_NE(dat.find("10\t5\t9"), std::string::npos);
  EXPECT_NE(dat.find("20\t3\t7"), std::string::npos);

  const std::string gp = slurp(prefix_ + ".gp");
  EXPECT_NE(gp.find("set title 'Delay vs cutoff'"), std::string::npos);
  EXPECT_NE(gp.find("using 1:2"), std::string::npos);
  EXPECT_NE(gp.find("using 1:3"), std::string::npos);
  EXPECT_NE(gp.find(prefix_ + ".png"), std::string::npos);
}

TEST_F(PlotsTest, MisalignedSeriesUseMissingMarker) {
  PlotSpec spec;
  spec.series.push_back(PlotSeries{"a", {{1, 1.0}, {2, 2.0}}});
  spec.series.push_back(PlotSeries{"b", {{2, 5.0}, {3, 6.0}}});
  write_gnuplot(prefix_, spec);
  const std::string dat = slurp(prefix_ + ".dat");
  // x=1 has no 'b' value; x=3 has no 'a' value.
  EXPECT_NE(dat.find("1\t1\t?"), std::string::npos);
  EXPECT_NE(dat.find("3\t?\t6"), std::string::npos);
  const std::string gp = slurp(prefix_ + ".gp");
  EXPECT_NE(gp.find("datafile missing"), std::string::npos);
}

TEST_F(PlotsTest, XValuesSorted) {
  PlotSpec spec;
  spec.series.push_back(PlotSeries{"a", {{30, 1.0}, {10, 2.0}, {20, 3.0}}});
  write_gnuplot(prefix_, spec);
  const std::string dat = slurp(prefix_ + ".dat");
  const auto p10 = dat.find("\n10\t");
  const auto p20 = dat.find("\n20\t");
  const auto p30 = dat.find("\n30\t");
  ASSERT_NE(p10, std::string::npos);
  ASSERT_NE(p20, std::string::npos);
  ASSERT_NE(p30, std::string::npos);
  EXPECT_LT(p10, p20);
  EXPECT_LT(p20, p30);
}

}  // namespace
}  // namespace pushpull::exp
