// End-to-end smoke: build the paper's default scenario, run the hybrid
// server at a mid-range cutoff, and check conservation plus the QoS
// ordering the paper claims.
#include <gtest/gtest.h>

#include "exp/scenario.hpp"

namespace pushpull {
namespace {

TEST(Smoke, HybridRunCompletesAndConserves) {
  exp::Scenario scenario;
  scenario.num_requests = 20000;
  const auto built = scenario.build();

  core::HybridConfig config;
  config.cutoff = 40;
  config.alpha = 0.5;
  const core::SimResult result = exp::run_hybrid(built, config);

  const auto overall = result.overall();
  EXPECT_EQ(overall.arrived, built.trace.size());
  EXPECT_EQ(overall.served + overall.blocked, overall.arrived);
  EXPECT_EQ(overall.blocked, 0u);  // unconstrained bandwidth

  // Premium clients (class 0) should not wait longer than the lowest class.
  EXPECT_LE(result.mean_wait(0), result.mean_wait(2));
}

}  // namespace
}  // namespace pushpull
