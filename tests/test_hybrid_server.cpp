// Unit and behavioral tests for the hybrid server: conservation,
// determinism, push/pull mechanics, blocking, warm-up and edge cutoffs.
#include <gtest/gtest.h>

#include "catalog/catalog.hpp"
#include "catalog/length_model.hpp"
#include "core/hybrid_server.hpp"
#include "exp/scenario.hpp"

namespace pushpull::core {
namespace {

exp::Scenario small_scenario() {
  exp::Scenario s;
  s.num_items = 50;
  s.num_requests = 5000;
  return s;
}

TEST(HybridServer, ConservationOfRequests) {
  const auto built = small_scenario().build();
  HybridConfig config;
  config.cutoff = 20;
  const SimResult result = exp::run_hybrid(built, config);
  const auto overall = result.overall();
  EXPECT_EQ(overall.arrived, built.trace.size());
  EXPECT_EQ(overall.served + overall.blocked, overall.arrived);
}

TEST(HybridServer, DeterministicAcrossRuns) {
  const auto built = small_scenario().build();
  HybridConfig config;
  config.cutoff = 15;
  const SimResult a = exp::run_hybrid(built, config);
  const SimResult b = exp::run_hybrid(built, config);
  EXPECT_DOUBLE_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.push_transmissions, b.push_transmissions);
  EXPECT_EQ(a.pull_transmissions, b.pull_transmissions);
  for (std::size_t c = 0; c < a.per_class.size(); ++c) {
    EXPECT_DOUBLE_EQ(a.per_class[c].wait.mean(), b.per_class[c].wait.mean());
  }
}

TEST(HybridServer, ServerObjectIsReusable) {
  const auto built = small_scenario().build();
  HybridConfig config;
  config.cutoff = 15;
  HybridServer server(built.catalog, built.population, config);
  const SimResult a = server.run(built.trace);
  const SimResult b = server.run(built.trace);
  EXPECT_DOUBLE_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.overall().served, b.overall().served);
}

TEST(HybridServer, PurePushServesEverythingViaBroadcast) {
  const auto built = small_scenario().build();
  HybridConfig config;
  config.cutoff = built.catalog.size();
  const SimResult result = exp::run_hybrid(built, config);
  const auto overall = result.overall();
  EXPECT_EQ(overall.served, overall.arrived);
  EXPECT_EQ(overall.served_pull, 0u);
  EXPECT_EQ(result.pull_transmissions, 0u);
  // Flat broadcast delay is bounded by one full cycle plus the longest item.
  const double cycle = built.catalog.push_cycle_length(config.cutoff);
  EXPECT_LE(overall.wait.max(), cycle + 5.0);
  EXPECT_GT(overall.wait.mean(), 0.0);
}

TEST(HybridServer, PurePushDelayIsAboutHalfCycle) {
  const auto built = small_scenario().build();
  HybridConfig config;
  config.cutoff = built.catalog.size();
  const SimResult result = exp::run_hybrid(built, config);
  const double cycle = built.catalog.push_cycle_length(config.cutoff);
  const double mean = result.overall().wait.mean();
  EXPECT_GT(mean, 0.3 * cycle);
  EXPECT_LT(mean, 0.8 * cycle);
}

TEST(HybridServer, PurePullServesEverythingOnDemand) {
  const auto built = small_scenario().build();
  HybridConfig config;
  config.cutoff = 0;
  const SimResult result = exp::run_hybrid(built, config);
  const auto overall = result.overall();
  EXPECT_EQ(overall.served, overall.arrived);
  EXPECT_EQ(overall.served_push, 0u);
  EXPECT_EQ(result.push_transmissions, 0u);
  EXPECT_GT(result.pull_transmissions, 0u);
}

TEST(HybridServer, PullNeverOutpacesPushByMoreThanOne) {
  // Strict alternation: between two pull transmissions there is at least
  // one push (for hybrid cutoffs).
  const auto built = small_scenario().build();
  HybridConfig config;
  config.cutoff = 10;
  const SimResult result = exp::run_hybrid(built, config);
  EXPECT_LE(result.pull_transmissions, result.push_transmissions + 1);
}

TEST(HybridServer, UnconstrainedChannelNeverBlocks) {
  const auto built = small_scenario().build();
  HybridConfig config;
  config.cutoff = 20;
  config.total_bandwidth = 0.0;
  const SimResult result = exp::run_hybrid(built, config);
  EXPECT_EQ(result.overall().blocked, 0u);
  EXPECT_EQ(result.blocked_transmissions, 0u);
}

TEST(HybridServer, TinyBandwidthBlocksPulls) {
  const auto built = small_scenario().build();
  HybridConfig config;
  config.cutoff = 10;
  config.total_bandwidth = 0.3;  // pools so small most Poisson(1) draws fail
  config.mean_bandwidth_demand = 1.0;
  const SimResult result = exp::run_hybrid(built, config);
  EXPECT_GT(result.overall().blocked, 0u);
  EXPECT_GT(result.blocked_transmissions, 0u);
  // Conservation still holds with blocking.
  const auto overall = result.overall();
  EXPECT_EQ(overall.served + overall.blocked, overall.arrived);
}

TEST(HybridServer, GenerousPremiumBandwidthProtectsClassA) {
  const auto built = small_scenario().build();
  HybridConfig config;
  config.cutoff = 10;
  config.total_bandwidth = 6.0;
  config.mean_bandwidth_demand = 2.0;
  // Class A gets 70% of the channel, B and C split the rest.
  config.bandwidth_fractions = {0.7, 0.2, 0.1};
  const SimResult result = exp::run_hybrid(built, config);
  EXPECT_LT(result.per_class[0].blocking_ratio(),
            result.per_class[2].blocking_ratio());
}

TEST(HybridServer, WarmupExcludesEarlyRequests) {
  const auto built = small_scenario().build();
  HybridConfig config;
  config.cutoff = 20;
  config.warmup_fraction = 0.3;
  const SimResult result = exp::run_hybrid(built, config);
  const auto overall = result.overall();
  EXPECT_LT(overall.arrived, built.trace.size());
  EXPECT_GT(overall.arrived, built.trace.size() / 2);
  EXPECT_EQ(overall.served + overall.blocked, overall.arrived);
}

TEST(HybridServer, AllRequestsForPushItemsServedByPush) {
  const auto built = small_scenario().build();
  HybridConfig config;
  config.cutoff = 25;
  const SimResult result = exp::run_hybrid(built, config);
  std::uint64_t push_requests = 0;
  for (const auto& r : built.trace.requests()) {
    if (r.item < config.cutoff) ++push_requests;
  }
  EXPECT_EQ(result.overall().served_push, push_requests);
}

TEST(HybridServer, AlphaZeroFavorsPremiumClass) {
  exp::Scenario s = small_scenario();
  s.num_requests = 20000;
  const auto built = s.build();
  HybridConfig config;
  config.cutoff = 10;
  config.alpha = 0.0;  // pure priority selection
  const SimResult result = exp::run_hybrid(built, config);
  EXPECT_LE(result.mean_wait(0), result.mean_wait(2));
}

TEST(HybridServer, MeanPullQueueLenPositiveWhenLoaded) {
  const auto built = small_scenario().build();
  HybridConfig config;
  config.cutoff = 10;
  const SimResult result = exp::run_hybrid(built, config);
  EXPECT_GT(result.mean_pull_queue_len, 0.0);
}

TEST(HybridServer, EmptyTraceFinishesImmediately) {
  const auto built = small_scenario().build();
  HybridConfig config;
  config.cutoff = 10;
  HybridServer server(built.catalog, built.population, config);
  const SimResult result = server.run(workload::Trace{});
  EXPECT_EQ(result.overall().arrived, 0u);
  EXPECT_EQ(result.overall().served, 0u);
}

TEST(HybridServer, RejectsBadConfig) {
  const auto built = small_scenario().build();
  HybridConfig config;
  config.cutoff = built.catalog.size() + 1;
  EXPECT_THROW(HybridServer(built.catalog, built.population, config),
               std::invalid_argument);

  config.cutoff = 10;
  config.warmup_fraction = 1.0;
  EXPECT_THROW(HybridServer(built.catalog, built.population, config),
               std::invalid_argument);

  config.warmup_fraction = 0.0;
  config.total_bandwidth = 10.0;
  config.bandwidth_fractions = {0.5, 0.5};  // population has 3 classes
  EXPECT_THROW(HybridServer(built.catalog, built.population, config),
               std::invalid_argument);
}

TEST(HybridServer, WaitsAreNonNegativeAndFinite) {
  const auto built = small_scenario().build();
  HybridConfig config;
  config.cutoff = 20;
  const SimResult result = exp::run_hybrid(built, config);
  for (const auto& cls : result.per_class) {
    EXPECT_GE(cls.wait.min(), 0.0);
    EXPECT_TRUE(std::isfinite(cls.wait.max()));
  }
}

TEST(HybridServer, PullPolicySwapChangesSchedule) {
  const auto built = small_scenario().build();
  HybridConfig a;
  a.cutoff = 10;
  a.pull_policy = sched::PullPolicyKind::kFcfs;
  HybridConfig b = a;
  b.pull_policy = sched::PullPolicyKind::kMrf;
  const SimResult ra = exp::run_hybrid(built, a);
  const SimResult rb = exp::run_hybrid(built, b);
  // Same workload, different service order ⇒ different mean waits.
  EXPECT_NE(ra.overall().wait.mean(), rb.overall().wait.mean());
  // But identical conservation.
  EXPECT_EQ(ra.overall().served, rb.overall().served);
}

}  // namespace
}  // namespace pushpull::core
