// Round-trip suite for the binary trace ring (DESIGN §13): the compact
// encoding must decode to exactly the TraceEvent stream the old struct
// ring stored — same seqs, same bit patterns — and the deferred JSONL
// render must stay byte-identical to the committed goldens across worker
// counts and a kill + --resume.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "obs/category.hpp"
#include "obs/trace.hpp"

namespace pushpull {
namespace {

using obs::Category;
using obs::TraceEvent;
using obs::TraceSink;

std::uint64_t bits_of(double v) {
  std::uint64_t b = 0;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

// Field-for-field equality, doubles by bit pattern (so -0.0 != +0.0 and
// NaN payloads count).
void expect_event_eq(const TraceEvent& got, const TraceEvent& want) {
  EXPECT_EQ(bits_of(got.time), bits_of(want.time));
  EXPECT_EQ(got.seq, want.seq);
  EXPECT_EQ(got.category, want.category);
  EXPECT_EQ(got.name, want.name);  // same literal pointer, not strcmp
  EXPECT_EQ(got.a, want.a);
  EXPECT_EQ(got.b, want.b);
  EXPECT_EQ(bits_of(got.v), bits_of(want.v));
}

TEST(BinaryRing, RoundTripsFieldBitPatterns) {
  TraceSink sink(64, obs::kAllCategories);
  const double neg_zero = -0.0;
  const double quiet_nan = std::numeric_limits<double>::quiet_NaN();
  const double denorm = std::numeric_limits<double>::denorm_min();
  // Varint boundaries for a/b, every v encoding case, one name under two
  // categories, duplicate names (interning must not conflate any of them).
  const TraceEvent cases[] = {
      {0.0, 0, Category::kPush, "tx_start", 0, 0, 0.0},
      {1.5, 1, Category::kPush, "tx_start", 127, 128, 1.0},
      {1.5, 2, Category::kPull, "tx_start", 16383, 16384, neg_zero},
      {2.25, 3, Category::kQueue, "enter",
       std::numeric_limits<std::uint64_t>::max(), 1, quiet_nan},
      {-3.5, 4, Category::kFault, "corrupt", 7, 9, denorm},
      {1e300, 5, Category::kDrain, "drain", 42, 0, -1e-300},
  };
  for (const TraceEvent& ev : cases) {
    sink.record(ev.time, ev.category, ev.name, ev.a, ev.b, ev.v);
  }
  const std::vector<TraceEvent> got = sink.snapshot();
  // snapshot sorts by (time, seq): -3.5 first, 1e300 last.
  ASSERT_EQ(got.size(), 6u);
  expect_event_eq(got[0], cases[4]);
  expect_event_eq(got[1], cases[0]);
  expect_event_eq(got[2], cases[1]);
  expect_event_eq(got[3], cases[2]);
  expect_event_eq(got[4], cases[3]);
  expect_event_eq(got[5], cases[5]);
}

TEST(BinaryRing, DropOldestKeepsSeqAndPayloadsExact) {
  constexpr std::size_t kCap = 4;
  TraceSink sink(kCap, obs::kAllCategories);
  std::deque<TraceEvent> reference;
  for (std::uint64_t i = 0; i < 100; ++i) {
    const TraceEvent ev{static_cast<double>(i), i, Category::kQueue, "enter",
                        i * i, i % 3,
                        i % 2 == 0 ? 0.0 : 0.5 * static_cast<double>(i)};
    sink.record(ev.time, ev.category, ev.name, ev.a, ev.b, ev.v);
    reference.push_back(ev);
    if (reference.size() > kCap) reference.pop_front();
  }
  EXPECT_EQ(sink.size(), kCap);
  EXPECT_EQ(sink.emitted(), 100u);
  EXPECT_EQ(sink.dropped(), 100u - kCap);
  const std::vector<TraceEvent> got = sink.snapshot();
  ASSERT_EQ(got.size(), reference.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    expect_event_eq(got[i], reference[i]);
  }
}

TEST(BinaryRing, MaskedOffersStillAdvanceSeqDeltas) {
  // Only kPull stored: stored seqs form a gappy subsequence, so the
  // encoded seq deltas exceed 1 and must still reconstruct exactly.
  TraceSink sink(32, category_bit(Category::kPull));
  std::vector<std::uint64_t> want_seqs;
  for (std::uint64_t i = 0; i < 40; ++i) {
    const Category cat = i % 7 == 0 ? Category::kPull : Category::kPush;
    if (cat == Category::kPull) want_seqs.push_back(i);
    sink.record(1.0, cat, "op", i, 0, 0.0);
  }
  const std::vector<TraceEvent> got = sink.snapshot();
  ASSERT_EQ(got.size(), want_seqs.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].seq, want_seqs[i]);
    EXPECT_EQ(got[i].a, want_seqs[i]);
  }
  EXPECT_EQ(sink.emitted(), 40u);
  EXPECT_EQ(sink.dropped(), 0u);
}

TEST(BinaryRing, HeavyChurnSurvivesCompaction) {
  // Thousands of drops force the dead-prefix reclaim repeatedly; the
  // surviving window must always equal the reference deque's.
  constexpr std::size_t kCap = 7;
  TraceSink sink(kCap, obs::kAllCategories);
  std::deque<TraceEvent> reference;
  static const char* const names[] = {"a", "bb", "ccc", "dddd"};
  for (std::uint64_t i = 0; i < 5000; ++i) {
    const TraceEvent ev{static_cast<double>(i % 11), i,
                        static_cast<Category>(1u << (i % 10)),
                        names[i % 4], i << (i % 20), i,
                        i % 5 == 0 ? -0.0 : static_cast<double>(i)};
    sink.record(ev.time, ev.category, ev.name, ev.a, ev.b, ev.v);
    reference.push_back(ev);
    if (reference.size() > kCap) reference.pop_front();
  }
  std::vector<TraceEvent> want(reference.begin(), reference.end());
  std::stable_sort(want.begin(), want.end(),
                   [](const TraceEvent& l, const TraceEvent& r) {
                     if (l.time < r.time) return true;
                     if (r.time < l.time) return false;
                     return l.seq < r.seq;
                   });
  const std::vector<TraceEvent> got = sink.snapshot();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    expect_event_eq(got[i], want[i]);
  }
}

TEST(BinaryRing, ClearRestartsStreamAndKeepsNamesValid) {
  TraceSink sink(8, obs::kAllCategories);
  sink.record(1.0, Category::kPush, "tx_start", 1, 2, 3.0);
  sink.record(2.0, Category::kPull, "tx_start", 4, 5, 6.0);
  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.emitted(), 0u);
  EXPECT_EQ(sink.dropped(), 0u);
  sink.record(9.0, Category::kPush, "tx_start", 7, 0, 0.0);
  const std::vector<TraceEvent> got = sink.snapshot();
  ASSERT_EQ(got.size(), 1u);
  const TraceEvent want{9.0, 0, Category::kPush, "tx_start", 7, 0, 0.0};
  expect_event_eq(got[0], want);
}

// ------------------------------------------------ golden round trips -----
//
// The real CLI renders replicate traces through the binary ring and the
// deferred JSONL path; the bytes must match the committed fixture whatever
// the worker count, and after a crash + --resume.

#if defined(PUSHPULL_CLI_PATH) && defined(PUSHPULL_GOLDEN_DIR)

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << "cannot write " << path;
}

const char* kReplicateArgs =
    " replicate --items 12 --requests 80 --rate 2 --seed 9 --reps 6 "
    "--cutoff 5";

std::string golden_replicate() {
  return slurp(std::string(PUSHPULL_GOLDEN_DIR) + "/trace/"
               "trace_replicate.jsonl");
}

TEST(GoldenTraceRoundTrip, ByteIdenticalAcrossJobs128) {
  const std::string golden = golden_replicate();
  ASSERT_FALSE(golden.empty()) << "missing fixture trace_replicate.jsonl";
  for (const int jobs : {1, 2, 8}) {
    const std::string tmp = "trace_roundtrip_j" + std::to_string(jobs) +
                            ".jsonl";
    const std::string cmd = std::string(PUSHPULL_CLI_PATH) + kReplicateArgs +
                            " --jobs " + std::to_string(jobs) + " --trace " +
                            tmp + " > /dev/null";
    ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;
    EXPECT_EQ(slurp(tmp), golden) << "jobs=" << jobs
                                  << " trace drifted from golden";
    (void)std::remove(tmp.c_str());
  }
}

TEST(GoldenTraceRoundTrip, KillAndResumeReproducesGolden) {
  const std::string golden = golden_replicate();
  ASSERT_FALSE(golden.empty()) << "missing fixture trace_replicate.jsonl";
  const std::string progress = "trace_roundtrip_progress.jsonl";
  const std::string tmp = "trace_roundtrip_resumed.jsonl";

  // Full run to get a complete progress log, then truncate it as a kill -9
  // mid-run would and resume from the remains.
  std::string cmd = std::string(PUSHPULL_CLI_PATH) + kReplicateArgs +
                    " --jobs 2 --progress " + progress + " --trace " + tmp +
                    " > /dev/null";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;
  const std::string full_log = slurp(progress);
  ASSERT_FALSE(full_log.empty());
  write_bytes(progress, full_log.substr(0, (2 * full_log.size()) / 3));

  cmd = std::string(PUSHPULL_CLI_PATH) + kReplicateArgs +
        " --jobs 3 --resume --progress " + progress + " --trace " + tmp +
        " > /dev/null";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;
  EXPECT_EQ(slurp(tmp), golden) << "resumed trace drifted from golden";
  (void)std::remove(tmp.c_str());
  (void)std::remove(progress.c_str());
}

#endif  // PUSHPULL_CLI_PATH && PUSHPULL_GOLDEN_DIR

}  // namespace
}  // namespace pushpull
