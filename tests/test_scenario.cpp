// Tests for the scenario engine: the environment timeline (time-warp,
// rotation, mobility pressure), named presets, the RNG-free trace shaper
// with its conservation guarantees, the multicell runner, and the chaos
// harness's determinism under an active scenario.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "catalog/catalog.hpp"
#include "catalog/length_model.hpp"
#include "exp/chaos.hpp"
#include "exp/scenario.hpp"
#include "resilience/invariants.hpp"
#include "scenario/multicell.hpp"
#include "scenario/presets.hpp"
#include "scenario/shaper.hpp"
#include "scenario/timeline.hpp"
#include "workload/population.hpp"
#include "workload/request.hpp"
#include "workload/trace.hpp"

namespace pushpull {
namespace {

using scenario::Preset;
using scenario::Segment;
using scenario::Timeline;

// --- Timeline -------------------------------------------------------------

TEST(Timeline, EmptyTimelineIsIdentity) {
  const Timeline t;
  EXPECT_TRUE(t.empty());
  EXPECT_DOUBLE_EQ(t.horizon(), 0.0);
  EXPECT_DOUBLE_EQ(t.multiplier(5.0), 1.0);
  EXPECT_DOUBLE_EQ(t.cumulative(42.5), 42.5);
  EXPECT_DOUBLE_EQ(t.inverse_cumulative(42.5), 42.5);
  EXPECT_EQ(t.rotation_at(100.0), 0u);
  EXPECT_DOUBLE_EQ(t.handoff_prob_at(100.0), 0.0);
}

TEST(Timeline, RejectsMalformedSegments) {
  EXPECT_THROW(Timeline({Segment{0.0, 1.0, 1.0, 0, 0.0}}),
               std::invalid_argument);
  EXPECT_THROW(Timeline({Segment{-5.0, 1.0, 1.0, 0, 0.0}}),
               std::invalid_argument);
  EXPECT_THROW(Timeline({Segment{10.0, 0.0, 1.0, 0, 0.0}}),
               std::invalid_argument);
  EXPECT_THROW(Timeline({Segment{10.0, 1.0, -0.5, 0, 0.0}}),
               std::invalid_argument);
  EXPECT_THROW(Timeline({Segment{10.0, 1.0, 1.0, 0, 1.5}}),
               std::invalid_argument);
  EXPECT_THROW(Timeline({Segment{10.0, 1.0, 1.0, 0, -0.1}}),
               std::invalid_argument);
  // The diagnostic names the offending segment.
  try {
    Timeline({Segment{10.0, 1.0, 1.0, 0, 0.0}, Segment{5.0, 0.0, 1.0, 0, 0.0}});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("segment 1"), std::string::npos);
  }
}

TEST(Timeline, MultiplierIsPiecewiseWithInclusiveLaterBoundaries) {
  const Timeline t({Segment{10.0, 2.0, 2.0, 0, 0.0},
                    Segment{10.0, 0.5, 0.5, 3, 0.25}});
  EXPECT_DOUBLE_EQ(t.horizon(), 20.0);
  EXPECT_DOUBLE_EQ(t.multiplier(-1.0), 1.0);
  EXPECT_DOUBLE_EQ(t.multiplier(0.0), 2.0);
  EXPECT_DOUBLE_EQ(t.multiplier(9.999), 2.0);
  // At exactly t == boundary the *later* segment is in force, the
  // DriftingGenerator epoch convention.
  EXPECT_DOUBLE_EQ(t.multiplier(10.0), 0.5);
  EXPECT_EQ(t.rotation_at(10.0), 3u);
  EXPECT_DOUBLE_EQ(t.handoff_prob_at(10.0), 0.25);
  EXPECT_DOUBLE_EQ(t.multiplier(19.9), 0.5);
  // Past the horizon the rate and mobility revert, the rotation persists.
  EXPECT_DOUBLE_EQ(t.multiplier(20.0), 1.0);
  EXPECT_DOUBLE_EQ(t.handoff_prob_at(20.0), 0.0);
  EXPECT_EQ(t.rotation_at(20.0), 3u);
  EXPECT_EQ(t.rotation_at(-1.0), 0u);
}

TEST(Timeline, CumulativeIntegratesFlatsAndRamps) {
  const Timeline t({Segment{10.0, 1.0, 3.0, 0, 0.0},
                    Segment{10.0, 2.0, 2.0, 0, 0.0}});
  EXPECT_DOUBLE_EQ(t.cumulative(0.0), 0.0);
  EXPECT_DOUBLE_EQ(t.cumulative(-7.0), -7.0);
  // Ramp 1 -> 3 over 10: trapezoid — Λ(5) = 5·(1 + 0.5·0.2·5) = 7.5.
  EXPECT_DOUBLE_EQ(t.cumulative(5.0), 7.5);
  EXPECT_DOUBLE_EQ(t.cumulative(10.0), 20.0);
  EXPECT_DOUBLE_EQ(t.cumulative(15.0), 30.0);
  // Slope returns to 1 past the horizon.
  EXPECT_DOUBLE_EQ(t.cumulative(25.0), 45.0);
}

TEST(Timeline, InverseCumulativeRoundTrips) {
  const Timeline t({Segment{10.0, 0.6, 0.6, 0, 0.0},
                    Segment{5.0, 0.6, 4.0, 0, 0.0},
                    Segment{8.0, 4.0, 0.3, 0, 0.0},
                    Segment{7.0, 1.0, 1.0, 0, 0.0}});
  double last = -1.0;
  for (double u = 0.0; u <= 60.0; u += 0.37) {
    const double warped = t.inverse_cumulative(u);
    EXPECT_NEAR(t.cumulative(warped), u, 1e-9) << "u=" << u;
    EXPECT_GT(warped, last) << "warp must be strictly increasing at u=" << u;
    last = warped;
  }
}

// --- Presets --------------------------------------------------------------

TEST(Presets, ParseRoundTripsEveryName) {
  for (Preset p : {Preset::kNone, Preset::kDiurnal, Preset::kFlashcrowd,
                   Preset::kCommuter, Preset::kKitchenSink}) {
    EXPECT_EQ(scenario::parse_preset(std::string(scenario::to_string(p))), p);
  }
  try {
    (void)scenario::parse_preset("rush-hour");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rush-hour"), std::string::npos);
    EXPECT_NE(what.find("kitchen-sink"), std::string::npos);
  }
}

TEST(Presets, MakeTimelineCoversTheHorizon) {
  for (Preset p : {Preset::kDiurnal, Preset::kFlashcrowd, Preset::kCommuter,
                   Preset::kKitchenSink}) {
    const Timeline t = scenario::make_timeline(p, 1.0, 1000.0, 100);
    EXPECT_FALSE(t.empty()) << scenario::to_string(p);
    EXPECT_NEAR(t.horizon(), 1000.0, 1e-6) << scenario::to_string(p);
  }
  EXPECT_TRUE(scenario::make_timeline(Preset::kNone, 1.0, 1000.0, 100).empty());
}

TEST(Presets, MakeTimelineValidatesArguments) {
  EXPECT_THROW(scenario::make_timeline(Preset::kDiurnal, 0.0, 1000.0, 100),
               std::invalid_argument);
  EXPECT_THROW(scenario::make_timeline(Preset::kDiurnal, 1.0, 0.0, 100),
               std::invalid_argument);
  EXPECT_THROW(scenario::make_timeline(Preset::kDiurnal, 1.0, 1000.0, 0),
               std::invalid_argument);
  // Extreme intensity must still build a valid (floored/clamped) timeline.
  const Timeline t =
      scenario::make_timeline(Preset::kKitchenSink, 50.0, 1000.0, 100);
  for (const auto& s : t.segments()) {
    EXPECT_GT(s.rate_begin, 0.0);
    EXPECT_GT(s.rate_end, 0.0);
    EXPECT_LE(s.handoff_prob, 0.9);
  }
}

// --- Shaper ---------------------------------------------------------------

workload::Trace synthetic_trace(std::size_t n, std::size_t num_items,
                                std::size_t num_classes) {
  std::vector<workload::Request> reqs;
  reqs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workload::Request r;
    r.id = static_cast<workload::RequestId>(i);
    r.item = static_cast<catalog::ItemId>((i * 7) % num_items);
    r.cls = static_cast<workload::ClassId>(i % num_classes);
    r.arrival = 0.25 * static_cast<double>(i + 1);
    reqs.push_back(r);
  }
  return workload::Trace(std::move(reqs));
}

TEST(Shaper, HandoffDrawIsDeterministicAndRespectsEdges) {
  for (workload::RequestId id = 0; id < 64; ++id) {
    EXPECT_FALSE(scenario::handoff_draw(42, id, 0.0).migrates);
    EXPECT_TRUE(scenario::handoff_draw(42, id, 1.0).migrates);
    const auto a = scenario::handoff_draw(42, id, 0.5);
    const auto b = scenario::handoff_draw(42, id, 0.5);
    EXPECT_EQ(a.migrates, b.migrates);
    EXPECT_EQ(a.lost, b.lost);
    EXPECT_DOUBLE_EQ(a.delay, b.delay);
    if (a.migrates && !a.lost) {
      EXPECT_GE(a.delay, scenario::kHandoffDelayMin);
      EXPECT_LT(a.delay, scenario::kHandoffDelayMax);
    }
  }
}

TEST(Shaper, HomeAndTargetCellsAreInRangeAndDistinct) {
  for (workload::RequestId id = 0; id < 200; ++id) {
    const std::size_t home = scenario::home_cell(9, id, 3);
    ASSERT_LT(home, 3u);
    const std::size_t target = scenario::handoff_target(9, id, home, 3);
    ASSERT_LT(target, 3u);
    EXPECT_NE(target, home);
  }
  EXPECT_EQ(scenario::home_cell(9, 5, 1), 0u);
}

TEST(Shaper, EmptyTimelineIsTheIdentity) {
  const auto base = synthetic_trace(500, 50, 3);
  const auto shaped = scenario::shape_trace(base, Timeline{}, 1, 50, 3);
  EXPECT_FALSE(shaped.summary.active);
  EXPECT_EQ(shaped.summary.total_lost(), 0u);
  EXPECT_TRUE(shaped.home.empty());
  ASSERT_EQ(shaped.trace.requests().size(), base.requests().size());
  for (std::size_t i = 0; i < base.requests().size(); ++i) {
    EXPECT_EQ(shaped.trace.requests()[i].id, base.requests()[i].id);
    EXPECT_EQ(shaped.trace.requests()[i].item, base.requests()[i].item);
    EXPECT_DOUBLE_EQ(shaped.trace.requests()[i].arrival,
                     base.requests()[i].arrival);
  }
}

TEST(Shaper, PureRotationMovesItemsNotArrivals) {
  const auto base = synthetic_trace(400, 50, 3);
  // Rate 1 everywhere → identity warp; rotation 7 over the whole span.
  const Timeline t({Segment{200.0, 1.0, 1.0, 7, 0.0}});
  const auto shaped = scenario::shape_trace(base, t, 1, 50, 3);
  EXPECT_TRUE(shaped.summary.active);
  EXPECT_EQ(shaped.summary.rotated, 400u);
  EXPECT_EQ(shaped.summary.rehomed, 0u);
  EXPECT_EQ(shaped.summary.total_lost(), 0u);
  ASSERT_EQ(shaped.trace.requests().size(), 400u);
  for (std::size_t i = 0; i < 400; ++i) {
    EXPECT_EQ(shaped.trace.requests()[i].item,
              (base.requests()[i].item + 7) % 50);
    EXPECT_DOUBLE_EQ(shaped.trace.requests()[i].arrival,
                     base.requests()[i].arrival);
  }
}

TEST(Shaper, ConservationHoldsPerClassUnderMobility) {
  const auto base = synthetic_trace(3000, 100, 3);
  const Timeline t = scenario::make_timeline(Preset::kKitchenSink, 1.5,
                                             base.span(), 100);
  const auto shaped = scenario::shape_trace(base, t, 77, 100, 3);
  EXPECT_TRUE(shaped.summary.active);
  ASSERT_EQ(shaped.summary.base_per_class.size(), 3u);
  std::uint64_t offered = 0;
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(shaped.summary.base_per_class[c],
              shaped.summary.offered_per_class[c] +
                  shaped.summary.handoff_lost[c])
        << "class " << c;
    offered += shaped.summary.offered_per_class[c];
  }
  EXPECT_EQ(shaped.summary.total_base(), 3000u);
  EXPECT_EQ(offered, shaped.trace.requests().size());
  EXPECT_GT(shaped.summary.total_lost(), 0u)
      << "kitchen-sink at intensity 1.5 should lose some handoffs";
  // Shaped arrivals are sorted and every item is in range.
  double last = -1.0;
  for (const auto& r : shaped.trace.requests()) {
    EXPECT_GE(r.arrival, last);
    last = r.arrival;
    EXPECT_LT(r.item, 100u);
  }
}

TEST(Shaper, SameSeedSameTrace) {
  const auto base = synthetic_trace(2000, 100, 3);
  const Timeline t = scenario::make_timeline(Preset::kCommuter, 1.0,
                                             base.span(), 100);
  const auto a = scenario::shape_trace(base, t, 5, 100, 3, 2);
  const auto b = scenario::shape_trace(base, t, 5, 100, 3, 2);
  ASSERT_EQ(a.trace.requests().size(), b.trace.requests().size());
  for (std::size_t i = 0; i < a.trace.requests().size(); ++i) {
    EXPECT_EQ(a.trace.requests()[i].id, b.trace.requests()[i].id);
    EXPECT_DOUBLE_EQ(a.trace.requests()[i].arrival,
                     b.trace.requests()[i].arrival);
  }
  EXPECT_EQ(a.home, b.home);
  EXPECT_EQ(a.cell, b.cell);
}

TEST(Shaper, RejectsOutOfRangeArguments) {
  const auto base = synthetic_trace(10, 5, 2);
  EXPECT_THROW(scenario::shape_trace(base, Timeline{}, 1, 0, 2),
               std::invalid_argument);
  EXPECT_THROW(scenario::shape_trace(base, Timeline{}, 1, 5, 0),
               std::invalid_argument);
  EXPECT_THROW(scenario::shape_trace(base, Timeline{}, 1, 5, 2, 0),
               std::invalid_argument);
  // A class id outside [0, num_classes) must be rejected, not mis-binned.
  EXPECT_THROW(scenario::shape_trace(base, Timeline{}, 1, 5, 1),
               std::invalid_argument);
}

// --- Multicell ------------------------------------------------------------

TEST(Multicell, SplitsConservesAndCountsInboundHandoffs) {
  const auto base = synthetic_trace(2400, 60, 3);
  const Timeline t = scenario::make_timeline(Preset::kCommuter, 1.0,
                                             base.span(), 60);
  const auto shaped = scenario::shape_trace(base, t, 11, 60, 3, /*cells=*/3);
  ASSERT_EQ(shaped.cell.size(), shaped.trace.requests().size());

  const auto cat =
      catalog::Catalog(60, 0.8, catalog::LengthModel::paper_default(), 3);
  const auto pop = workload::ClientPopulation::paper_default();
  scenario::MulticellConfig config;
  config.cells = 3;
  config.channel.cutoff = 15;
  const auto result = scenario::run_multicell(cat, pop, shaped, config);

  ASSERT_EQ(result.cells.size(), 3u);
  EXPECT_EQ(result.offered, shaped.trace.requests().size());
  EXPECT_EQ(result.handoffs, shaped.summary.rehomed);
  std::uint64_t arrived = 0;
  for (const auto& s : result.per_class) arrived += s.arrived;
  EXPECT_EQ(arrived, shaped.trace.requests().size());
  for (const auto& cell : result.cells) {
    EXPECT_LE(cell.inbound_handoffs, cell.offered);
    if (config.channel.cutoff > 0) {
      EXPECT_GT(cell.index_m, 0u);
      EXPECT_GT(cell.tuning, 0.0);
      // Indexing trades access time for tuning time: the client dozes
      // through most of the cycle, so tuning is well under both access
      // figures while indexed access pays the index-bucket overhead.
      EXPECT_LT(cell.tuning, cell.unindexed_access);
      EXPECT_GE(cell.indexed_access, cell.unindexed_access);
    }
  }
}

TEST(Multicell, RejectsMalformedShapedTrace) {
  const auto base = synthetic_trace(100, 20, 3);
  auto shaped = scenario::shape_trace(base, Timeline{}, 1, 20, 3);
  shaped.cell.assign(50, 0);  // wrong size
  const auto cat =
      catalog::Catalog(20, 0.8, catalog::LengthModel::paper_default(), 3);
  const auto pop = workload::ClientPopulation::paper_default();
  scenario::MulticellConfig config;
  EXPECT_THROW(scenario::run_multicell(cat, pop, shaped, config),
               std::invalid_argument);
}

// --- exp integration ------------------------------------------------------

exp::Scenario scenario_with(Preset preset) {
  exp::Scenario s;
  s.num_items = 50;
  s.num_requests = 4000;
  s.preset = preset;
  return s;
}

TEST(ExpScenario, PresetShapesTheBuiltTrace) {
  const auto built = scenario_with(Preset::kFlashcrowd).build();
  EXPECT_TRUE(built.shape.active);
  EXPECT_EQ(built.shape.total_base(), 4000u);
  EXPECT_EQ(built.trace.requests().size(),
            4000u - built.shape.total_lost());
}

TEST(ExpScenario, NoPresetLeavesShapeInactive) {
  const auto built = scenario_with(Preset::kNone).build();
  EXPECT_FALSE(built.shape.active);
  EXPECT_EQ(built.trace.requests().size(), 4000u);
}

TEST(ExpScenario, ValidateRejectsBadIntensity) {
  auto s = scenario_with(Preset::kDiurnal);
  s.preset_intensity = 0.0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s.preset_intensity = -2.0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

exp::ChaosSummary chaos_run(Preset preset, std::size_t jobs,
                            double gap_bound = 0.0) {
  auto s = scenario_with(preset);
  s.jobs = jobs;
  core::HybridConfig config;
  config.cutoff = 10;
  config.resilience.crash.enabled = true;
  config.resilience.crash.rate = 0.005;
  config.resilience.crash.downtime = 15.0;
  exp::ChaosOptions options;
  options.replications = 4;
  options.jobs = jobs;
  options.gap_bound = gap_bound;
  return exp::run_chaos(s, config, options);
}

TEST(ChaosScenario, HandoffConservationInvariantIsCheckedAndPasses) {
  const auto summary = chaos_run(Preset::kCommuter, 1);
  EXPECT_GT(summary.handoff_rehomed + summary.handoff_lost, 0u);
  bool saw_handoff_check = false;
  for (const auto& check : summary.invariants.checks) {
    if (check.name == "conservation-handoff-total") saw_handoff_check = true;
  }
  EXPECT_TRUE(saw_handoff_check)
      << "chaos with an active scenario must audit handoff conservation";
  EXPECT_TRUE(summary.invariants.all_pass())
      << resilience::format_report(summary.invariants);
  EXPECT_TRUE(summary.replay_identical);
}

TEST(ChaosScenario, GapBoundInvariantIsEmittedWhenRequested) {
  const auto summary = chaos_run(Preset::kCommuter, 1, /*gap_bound=*/1e9);
  bool saw_gap_check = false;
  for (const auto& check : summary.invariants.checks) {
    if (check.name.rfind("service-gap-bound", 0) == 0) {
      saw_gap_check = true;
      EXPECT_TRUE(check.pass) << check.name << ": " << check.detail;
    }
  }
  EXPECT_TRUE(saw_gap_check);
}

TEST(ChaosScenario, JobsCountNeverChangesTheNumbers) {
  const auto serial = chaos_run(Preset::kKitchenSink, 1);
  const auto parallel = chaos_run(Preset::kKitchenSink, 2);
  EXPECT_EQ(serial.crashes, parallel.crashes);
  EXPECT_EQ(serial.handoff_rehomed, parallel.handoff_rehomed);
  EXPECT_EQ(serial.handoff_lost, parallel.handoff_lost);
  EXPECT_EQ(serial.overall_delay.mean(), parallel.overall_delay.mean());
  EXPECT_EQ(serial.total_cost.mean(), parallel.total_cost.mean());
  ASSERT_EQ(serial.per_class.size(), parallel.per_class.size());
  for (std::size_t c = 0; c < serial.per_class.size(); ++c) {
    EXPECT_EQ(serial.per_class[c].arrived, parallel.per_class[c].arrived);
    EXPECT_EQ(serial.per_class[c].served, parallel.per_class[c].served);
    EXPECT_EQ(serial.per_class[c].gap.count(), parallel.per_class[c].gap.count());
    EXPECT_EQ(serial.per_class[c].gap.mean(), parallel.per_class[c].gap.mean());
    EXPECT_EQ(serial.per_class[c].gap.max(), parallel.per_class[c].gap.max());
  }
}

// --- CLI smoke ------------------------------------------------------------

#if defined(PUSHPULL_CLI_PATH)

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(CliScenario, SimulateWithPresetReportsGapColumnsAndSummary) {
  const std::string tmp = "scenario_cli_out.txt";
  const std::string cmd = std::string(PUSHPULL_CLI_PATH) +
                          " simulate --requests 2000 --seed 7 --scenario "
                          "flashcrowd > " +
                          tmp;
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;
  const std::string out = slurp(tmp);
  EXPECT_NE(out.find("gap max"), std::string::npos) << out;
  EXPECT_NE(out.find("gap p99"), std::string::npos) << out;
  EXPECT_NE(out.find("scenario flashcrowd"), std::string::npos) << out;
  std::remove(tmp.c_str());
}

// `serve --chaos` used to accept --scenario and silently ignore it; pin
// that the preset now reaches the journaled plan (the recorded rep journal
// must differ from the stationary run's) while the kill/recover/resume/
// replay chain stays bit-exact (exit 0).
TEST(CliScenario, ServeChaosScenarioShapesJournaledPlan) {
  const std::string quiet = " > /dev/null 2>&1";
  const std::string base =
      std::string(PUSHPULL_CLI_PATH) +
      " serve --chaos --reps 1 --duration 4 --target-qps 50 --seed 11 --dir .";
  ASSERT_EQ(std::system((base + quiet).c_str()), 0);
  const std::string stationary = slurp("serve_chaos_rep0.svj");
  ASSERT_EQ(std::system((base + " --scenario commuter" + quiet).c_str()), 0)
      << "shaped chaos campaign must stay replay-bit-exact";
  const std::string shaped = slurp("serve_chaos_rep0.svj");
  EXPECT_NE(stationary, shaped)
      << "--scenario must shape the requests the chaos harness journals";
  for (const char* leftover :
       {"serve_chaos_rep0.svj", "serve_chaos_rep0_killed.svj",
        "serve_chaos_rep0_resumed.svj"}) {
    std::remove(leftover);
  }
}

TEST(CliScenario, ChaosRejectsNegativeSpikeFlags) {
  const std::string quiet = " > /dev/null 2>&1";
  for (const std::string bad :
       {" chaos --reps 1 --requests 500 --spike-factor -1",
        " chaos --reps 1 --requests 500 --spike-start -5",
        " chaos --reps 1 --requests 500 --spike-duration nan",
        " chaos --reps 1 --requests 500 --gap-bound -2",
        " simulate --requests 500 --scenario rush-hour"}) {
    const std::string cmd = std::string(PUSHPULL_CLI_PATH) + bad + quiet;
    EXPECT_NE(std::system(cmd.c_str()), 0) << cmd;
  }
}

#endif  // PUSHPULL_CLI_PATH

}  // namespace
}  // namespace pushpull
