// Tests for (1, m) air indexing: closed forms, the optimal-m law, and
// Monte-Carlo validation of the access/tuning model.
#include <gtest/gtest.h>

#include <cmath>

#include "airindex/one_m_index.hpp"
#include "catalog/catalog.hpp"
#include "catalog/length_model.hpp"

namespace pushpull::airindex {
namespace {

catalog::Catalog test_catalog() {
  return catalog::Catalog(100, 0.6, catalog::LengthModel::paper_default(),
                          13);
}

TEST(AirIndex, RejectsBadArguments) {
  const auto cat = test_catalog();
  EXPECT_THROW(OneMIndexModel(cat, 0, 2.0, 2), std::invalid_argument);
  EXPECT_THROW(OneMIndexModel(cat, 1000, 2.0, 2), std::invalid_argument);
  EXPECT_THROW(OneMIndexModel(cat, 40, 0.0, 2), std::invalid_argument);
  EXPECT_THROW(OneMIndexModel(cat, 40, 2.0, 0), std::invalid_argument);
  OneMIndexModel model(cat, 40, 2.0, 2);
  EXPECT_THROW((void)model.simulate(0, 1), std::invalid_argument);
  EXPECT_THROW((void)OneMIndexModel::optimal_m(0.0, 1.0),
               std::invalid_argument);
}

TEST(AirIndex, CycleIncludesIndexCopies) {
  const auto cat = test_catalog();
  OneMIndexModel model(cat, 40, 2.0, 4);
  EXPECT_DOUBLE_EQ(model.data_airtime(), cat.push_cycle_length(40));
  EXPECT_DOUBLE_EQ(model.cycle_airtime(), model.data_airtime() + 8.0);
}

TEST(AirIndex, TuningTimeIndependentOfM) {
  const auto cat = test_catalog();
  OneMIndexModel one(cat, 40, 2.0, 1);
  OneMIndexModel many(cat, 40, 2.0, 16);
  EXPECT_DOUBLE_EQ(one.expected_tuning_time(), many.expected_tuning_time());
}

TEST(AirIndex, TuningFarBelowUnindexedAccess) {
  const auto cat = test_catalog();
  OneMIndexModel model(cat, 40, 2.0, 4);
  // The whole point of indexing: listen for a few units instead of half a
  // cycle (~40 units here).
  EXPECT_LT(model.expected_tuning_time(),
            0.25 * model.unindexed_access_time());
}

TEST(AirIndex, AccessCostOfIndexingIsBounded) {
  const auto cat = test_catalog();
  OneMIndexModel model(cat, 40, 2.0, 4);
  // Indexing inflates access time by the index overhead, but at m near the
  // optimum the inflation stays modest.
  EXPECT_GT(model.expected_access_time(), model.unindexed_access_time());
  EXPECT_LT(model.expected_access_time(),
            1.5 * model.unindexed_access_time());
}

TEST(AirIndex, OptimalMFollowsSqrtLaw) {
  EXPECT_EQ(OneMIndexModel::optimal_m(100.0, 1.0), 10u);
  EXPECT_EQ(OneMIndexModel::optimal_m(100.0, 4.0), 5u);
  EXPECT_EQ(OneMIndexModel::optimal_m(2.0, 8.0), 1u);  // never below 1
}

TEST(AirIndex, OptimalMMinimizesModelAccessTime) {
  const auto cat = test_catalog();
  const double data = cat.push_cycle_length(40);
  const double ix = 2.0;
  const std::size_t m_star = OneMIndexModel::optimal_m(data, ix);
  const double at_star =
      OneMIndexModel(cat, 40, ix, m_star).expected_access_time();
  // The sqrt law is derived from the uniform-wait approximation; with the
  // exact popularity-weighted wait the true optimum can sit one step away,
  // so assert near-optimality rather than exact argmin.
  for (std::size_t m : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                        std::size_t{8}, std::size_t{16}, std::size_t{32}}) {
    const double at_m = OneMIndexModel(cat, 40, ix, m).expected_access_time();
    EXPECT_LE(at_star, at_m * 1.03) << "m=" << m;
  }
}

TEST(AirIndex, SimulationMatchesClosedForm) {
  const auto cat = test_catalog();
  for (std::size_t m : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    OneMIndexModel model(cat, 40, 2.0, m);
    const auto sampled = model.simulate(200000, 99);
    EXPECT_NEAR(sampled.access, model.expected_access_time(),
                0.08 * model.expected_access_time())
        << "m=" << m;
    EXPECT_NEAR(sampled.tuning, model.expected_tuning_time(),
                0.05 * model.expected_tuning_time())
        << "m=" << m;
  }
}

TEST(AirIndex, SimulationDeterministicForSeed) {
  const auto cat = test_catalog();
  OneMIndexModel model(cat, 30, 2.0, 4);
  const auto a = model.simulate(10000, 7);
  const auto b = model.simulate(10000, 7);
  EXPECT_DOUBLE_EQ(a.access, b.access);
  EXPECT_DOUBLE_EQ(a.tuning, b.tuning);
}

TEST(AirIndex, MoreIndexCopiesShortenTheIndexWait) {
  const auto cat = test_catalog();
  // The wait-to-index component falls with m even as the cycle grows, up
  // to the optimum.
  const double a1 = OneMIndexModel(cat, 40, 2.0, 1).expected_access_time();
  const double a4 = OneMIndexModel(cat, 40, 2.0, 4).expected_access_time();
  EXPECT_LT(a4, a1);
}

}  // namespace
}  // namespace pushpull::airindex
