// Tests for the multi-channel hybrid server: conservation, concurrency
// across pull channels, capacity scaling and the alternation-penalty
// comparison against the single-channel server.
#include <gtest/gtest.h>

#include "core/hybrid_server.hpp"
#include "core/multichannel_server.hpp"
#include "exp/scenario.hpp"

namespace pushpull::core {
namespace {

exp::Scenario small_scenario(std::size_t requests = 15000) {
  exp::Scenario s;
  s.num_items = 50;
  s.num_requests = requests;
  return s;
}

TEST(MultiChannel, RejectsBadConfig) {
  const auto built = small_scenario(10).build();
  MultiChannelConfig config;
  config.cutoff = 1000;
  EXPECT_THROW(MultiChannelServer(built.catalog, built.population, config),
               std::invalid_argument);
  config.cutoff = 10;
  config.num_pull_channels = 0;
  EXPECT_THROW(MultiChannelServer(built.catalog, built.population, config),
               std::invalid_argument);
}

TEST(MultiChannel, ConservesRequests) {
  const auto built = small_scenario().build();
  MultiChannelConfig config;
  config.cutoff = 20;
  config.num_pull_channels = 2;
  MultiChannelServer server(built.catalog, built.population, config);
  const MultiChannelResult r = server.run(built.trace);
  const auto overall = r.overall();
  EXPECT_EQ(overall.arrived, built.trace.size());
  EXPECT_EQ(overall.served, overall.arrived);
}

TEST(MultiChannel, EmptyTraceAndPureModes) {
  const auto built = small_scenario(5000).build();
  for (std::size_t cutoff : {std::size_t{0}, built.catalog.size()}) {
    MultiChannelConfig config;
    config.cutoff = cutoff;
    config.num_pull_channels = 2;
    MultiChannelServer server(built.catalog, built.population, config);
    const MultiChannelResult r = server.run(built.trace);
    EXPECT_EQ(r.overall().served, built.trace.size()) << "cutoff=" << cutoff;
  }
  MultiChannelConfig config;
  config.cutoff = 10;
  MultiChannelServer server(built.catalog, built.population, config);
  const MultiChannelResult r = server.run(workload::Trace{});
  EXPECT_EQ(r.overall().arrived, 0u);
}

TEST(MultiChannel, MoreChannelsNeverSlower) {
  const auto built = small_scenario(25000).build();
  double prev = 1e300;
  for (std::size_t channels : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    MultiChannelConfig config;
    config.cutoff = 10;
    config.num_pull_channels = channels;
    MultiChannelServer server(built.catalog, built.population, config);
    const MultiChannelResult r = server.run(built.trace);
    const double delay = r.overall().wait.mean();
    EXPECT_LT(delay, prev * 1.02) << channels << " channels";
    prev = delay;
  }
}

TEST(MultiChannel, BeatsAlternatingSingleChannelServer) {
  // Even with ONE pull channel, the multi-channel layout has strictly more
  // capacity than the paper's shared channel (push no longer steals pull
  // airtime), so delays must be lower at the same cutoff.
  const auto built = small_scenario(25000).build();
  MultiChannelConfig multi;
  multi.cutoff = 15;
  multi.num_pull_channels = 1;
  MultiChannelServer layered(built.catalog, built.population, multi);
  const MultiChannelResult rm = layered.run(built.trace);

  HybridConfig shared;
  shared.cutoff = 15;
  HybridServer single(built.catalog, built.population, shared);
  const SimResult rs = single.run(built.trace);

  EXPECT_LT(rm.overall().wait.mean(), rs.overall().wait.mean());
}

TEST(MultiChannel, UtilizationAccounting) {
  const auto built = small_scenario(20000).build();
  MultiChannelConfig config;
  config.cutoff = 20;
  config.num_pull_channels = 3;
  MultiChannelServer server(built.catalog, built.population, config);
  const MultiChannelResult r = server.run(built.trace);

  // The broadcast channel runs back-to-back: utilization ≈ 1.
  EXPECT_GT(r.push_channel_utilization, 0.95);
  EXPECT_LT(r.push_channel_utilization, 1.05);
  ASSERT_EQ(r.pull_channel_utilization.size(), 3u);
  for (double u : r.pull_channel_utilization) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.05);
  }
  // Channel 0 is always tried first, so utilization is non-increasing.
  EXPECT_GE(r.pull_channel_utilization[0] + 1e-9,
            r.pull_channel_utilization[2]);
}

TEST(MultiChannel, DeterministicAcrossRuns) {
  const auto built = small_scenario(8000).build();
  MultiChannelConfig config;
  config.cutoff = 15;
  config.num_pull_channels = 2;
  MultiChannelServer server(built.catalog, built.population, config);
  const MultiChannelResult a = server.run(built.trace);
  const MultiChannelResult b = server.run(built.trace);
  EXPECT_DOUBLE_EQ(a.overall().wait.mean(), b.overall().wait.mean());
  EXPECT_EQ(a.pull_transmissions, b.pull_transmissions);
}

TEST(MultiChannel, PremiumClassOrderingHolds) {
  const auto built = small_scenario(25000).build();
  MultiChannelConfig config;
  config.cutoff = 10;
  config.alpha = 0.0;
  config.num_pull_channels = 1;
  MultiChannelServer server(built.catalog, built.population, config);
  const MultiChannelResult r = server.run(built.trace);
  EXPECT_LE(r.mean_wait(0), r.mean_wait(2) * 1.10);
}

TEST(MultiChannel, TailQuantilesPopulated) {
  const auto built = small_scenario(20000).build();
  MultiChannelConfig config;
  config.cutoff = 20;
  config.num_pull_channels = 2;
  MultiChannelServer server(built.catalog, built.population, config);
  const MultiChannelResult r = server.run(built.trace);
  for (const auto& cls : r.per_class) {
    if (cls.served == 0) continue;
    EXPECT_GT(cls.wait_p50.value(), 0.0);
    EXPECT_LE(cls.wait_p50.value(), cls.wait_p95.value());
    EXPECT_LE(cls.wait_p95.value(), cls.wait_p99.value());
    EXPECT_LE(cls.wait_p99.value(), cls.wait.max() * 1.001);
  }
}

}  // namespace
}  // namespace pushpull::core
