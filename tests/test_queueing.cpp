// Unit tests for the analytical models: M/M/1, the §4.1 birth–death hybrid
// chain, Cobham's non-preemptive priority waits, and the access-time model.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "catalog/catalog.hpp"
#include "catalog/length_model.hpp"
#include "queueing/access_time.hpp"
#include "queueing/birth_death.hpp"
#include "queueing/cobham.hpp"
#include "queueing/littles.hpp"
#include "queueing/mm1.hpp"
#include "workload/population.hpp"

namespace pushpull::queueing {
namespace {

// --------------------------------------------------------------------- MM1

TEST(MM1, TextbookValues) {
  const MM1 q{0.5, 1.0};
  EXPECT_TRUE(q.stable());
  EXPECT_DOUBLE_EQ(q.rho(), 0.5);
  EXPECT_DOUBLE_EQ(q.mean_in_system(), 1.0);
  EXPECT_DOUBLE_EQ(q.mean_sojourn(), 2.0);
  EXPECT_DOUBLE_EQ(q.mean_wait(), 1.0);
  EXPECT_DOUBLE_EQ(q.mean_in_queue(), 0.5);
  EXPECT_DOUBLE_EQ(q.p0(), 0.5);
}

TEST(MM1, LittlesLawHolds) {
  const MM1 q{0.7, 1.0};
  EXPECT_NEAR(q.mean_in_system(), q.lambda * q.mean_sojourn(), 1e-12);
  EXPECT_NEAR(q.mean_in_queue(), q.lambda * q.mean_wait(), 1e-12);
}

TEST(MM1, UnstableIsInfinite) {
  const MM1 q{2.0, 1.0};
  EXPECT_FALSE(q.stable());
  EXPECT_TRUE(std::isinf(q.mean_in_system()));
  EXPECT_TRUE(std::isinf(q.mean_sojourn()));
}

// ------------------------------------------------------------- birth-death

TEST(HybridBirthDeath, RejectsBadInput) {
  EXPECT_THROW(HybridBirthDeath(0.0, 1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(HybridBirthDeath(1.0, 0.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(HybridBirthDeath(1.0, 1.0, -1.0, 10), std::invalid_argument);
  EXPECT_THROW(HybridBirthDeath(1.0, 1.0, 1.0, 0), std::invalid_argument);
}

TEST(HybridBirthDeath, RequiresSolveBeforeQuery) {
  HybridBirthDeath chain(0.2, 2.0, 1.0, 50);
  EXPECT_THROW((void)chain.idle_probability(), std::logic_error);
  EXPECT_THROW((void)chain.expected_pull_len(), std::logic_error);
}

TEST(HybridBirthDeath, StationaryDistributionNormalized) {
  HybridBirthDeath chain(0.2, 2.0, 1.0, 60);
  chain.solve();
  double total = 0.0;
  for (std::size_t i = 0; i <= chain.capacity(); ++i) {
    total += chain.p(i, 0) + chain.p(i, 1);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(HybridBirthDeath, IdleMatchesClosedFormWhenLightlyLoaded) {
  // ρ = 0.1, f = 2 ⇒ closed-form idle = 1 − 0.1 − 0.05 = 0.85. A large
  // truncation makes the numerical chain effectively infinite.
  HybridBirthDeath chain(0.1, 2.0, 1.0, 120);
  chain.solve();
  EXPECT_NEAR(chain.idle_probability(), chain.closed_form_idle(), 0.02);
}

TEST(HybridBirthDeath, PullBusyFractionApproachesRho) {
  HybridBirthDeath chain(0.15, 1.5, 1.0, 120);
  chain.solve();
  EXPECT_NEAR(chain.pull_busy_fraction(), chain.rho(), 0.02);
}

TEST(HybridBirthDeath, QueueGrowsWithLoad) {
  HybridBirthDeath light(0.05, 2.0, 1.0, 120);
  HybridBirthDeath heavy(0.30, 2.0, 1.0, 120);
  light.solve();
  heavy.solve();
  EXPECT_LT(light.expected_pull_len(), heavy.expected_pull_len());
}

TEST(HybridBirthDeath, UnreachableStatesHaveZeroMass) {
  HybridBirthDeath chain(0.2, 2.0, 1.0, 40);
  chain.solve();
  // (0, 1) — pull in service with an empty queue — is unreachable.
  EXPECT_NEAR(chain.p(0, 1), 0.0, 1e-12);
}

TEST(HybridBirthDeath, MeanLenDuringPushBelowTotalMean) {
  HybridBirthDeath chain(0.25, 2.0, 1.0, 80);
  chain.solve();
  EXPECT_LE(chain.mean_len_during_push(), chain.expected_pull_len() + 1e-12);
  EXPECT_GT(chain.mean_len_during_push(), 0.0);
}

TEST(HybridBirthDeath, StableFlagTracksClosedForm) {
  EXPECT_TRUE(HybridBirthDeath(0.1, 2.0, 1.0, 10).stable());
  EXPECT_FALSE(HybridBirthDeath(0.9, 1.0, 1.0, 10).stable());
}

// ------------------------------------------------------------------ Cobham

TEST(Cobham, RejectsBadInput) {
  EXPECT_THROW(cobham_waits({}), std::invalid_argument);
  EXPECT_THROW(cobham_waits({{1.0, 0.0}}), std::invalid_argument);
  EXPECT_THROW(cobham_waits({{-1.0, 1.0}}), std::invalid_argument);
}

TEST(Cobham, SingleClassReducesToMm1Wait) {
  // With one exponential class, the non-preemptive priority queue is plain
  // M/M/1: W = ρ/(μ−λ).
  const double lambda = 0.6;
  const double mu = 1.0;
  const auto waits = cobham_waits({{lambda, mu}});
  const MM1 reference{lambda, mu};
  EXPECT_NEAR(waits.wait[0], reference.mean_wait(), 1e-12);
  EXPECT_NEAR(waits.overall_wait, reference.mean_wait(), 1e-12);
}

TEST(Cobham, TwoClassTextbookValues) {
  // λ₁ = λ₂ = 0.25, μ = 1: W₀ = 0.5, σ₁ = 0.25, σ₂ = 0.5.
  const auto waits = cobham_waits({{0.25, 1.0}, {0.25, 1.0}});
  EXPECT_NEAR(waits.residual, 0.5, 1e-12);
  EXPECT_NEAR(waits.wait[0], 0.5 / 0.75, 1e-12);
  EXPECT_NEAR(waits.wait[1], 0.5 / (0.75 * 0.5), 1e-12);
}

TEST(Cobham, HigherClassNeverWaitsLonger) {
  const auto waits =
      cobham_waits({{0.2, 1.0}, {0.3, 1.1}, {0.25, 0.9}, {0.1, 1.3}});
  for (std::size_t i = 1; i < waits.wait.size(); ++i) {
    EXPECT_LE(waits.wait[i - 1], waits.wait[i]);
  }
}

TEST(Cobham, OverloadedLowClassIsInfinite) {
  const auto waits = cobham_waits({{0.5, 1.0}, {0.8, 1.0}});
  EXPECT_TRUE(std::isfinite(waits.wait[0]));
  EXPECT_TRUE(std::isinf(waits.wait[1]));
}

TEST(Cobham, PriorityOrderingBeatsSharedFcfsForTopClass) {
  // The top class under priority scheduling waits less than the pooled
  // FCFS M/M/1 wait for the same aggregate load.
  const auto waits = cobham_waits({{0.3, 1.0}, {0.3, 1.0}});
  const MM1 pooled{0.6, 1.0};
  EXPECT_LT(waits.wait[0], pooled.mean_wait());
  EXPECT_GT(waits.wait[1], pooled.mean_wait());
}

TEST(Cobham, ConservationLawForEqualServiceRates) {
  // With identical μ, the λ-weighted mean wait is invariant to the priority
  // discipline and equals the FCFS M/M/1 wait (work conservation).
  const auto waits = cobham_waits({{0.2, 1.0}, {0.3, 1.0}, {0.1, 1.0}});
  const MM1 pooled{0.6, 1.0};
  EXPECT_NEAR(waits.overall_wait, pooled.mean_wait(), 1e-9);
}

TEST(Cobham, SigmaAccumulates) {
  const auto waits = cobham_waits({{0.2, 1.0}, {0.3, 1.0}});
  EXPECT_NEAR(waits.sigma[0], 0.2, 1e-12);
  EXPECT_NEAR(waits.sigma[1], 0.5, 1e-12);
}

// ------------------------------------------------------------- access time

class AccessModelTest : public ::testing::Test {
 protected:
  catalog::Catalog cat_{100, 0.6, catalog::LengthModel::paper_default(), 42};
  workload::ClientPopulation pop_ = workload::ClientPopulation::paper_default();
  HybridAccessModel model_{cat_, pop_, 5.0};
};

TEST_F(AccessModelTest, FlatPushDelayGrowsWithCutoff) {
  double prev = flat_push_delay(cat_, 1);
  for (std::size_t k = 10; k <= 100; k += 10) {
    const double d = flat_push_delay(cat_, k);
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST_F(AccessModelTest, FlatPushDelayZeroAtZeroCutoff) {
  EXPECT_DOUBLE_EQ(flat_push_delay(cat_, 0), 0.0);
}

TEST_F(AccessModelTest, EstimateIsFiniteAcrossCutoffs) {
  for (std::size_t k = 0; k <= 100; k += 10) {
    const auto est = model_.estimate(k);
    EXPECT_TRUE(std::isfinite(est.overall)) << "k=" << k;
    EXPECT_GE(est.overall, 0.0);
    for (double t : est.access_time) EXPECT_TRUE(std::isfinite(t));
  }
}

TEST_F(AccessModelTest, PurePushEqualsPushDelay) {
  const auto est = model_.estimate(100);
  EXPECT_DOUBLE_EQ(est.overall, est.push_delay);
  EXPECT_DOUBLE_EQ(est.push_delay, flat_push_delay(cat_, 100));
}

TEST_F(AccessModelTest, PremiumClassNeverSlower) {
  const auto est = model_.estimate(40);
  EXPECT_LE(est.pull_delay[0], est.pull_delay[1]);
  EXPECT_LE(est.pull_delay[1], est.pull_delay[2]);
  EXPECT_LE(est.access_time[0], est.access_time[2]);
}

TEST_F(AccessModelTest, EntryRateBoundedByRequestRate) {
  const auto est = model_.estimate(40);
  EXPECT_GT(est.entry_rate, 0.0);
  EXPECT_LE(est.entry_rate, 5.0 * cat_.pull_probability(40) + 1e-9);
}

TEST_F(AccessModelTest, PrioritizedCostPositive) {
  EXPECT_GT(model_.prioritized_cost(40), 0.0);
}

TEST_F(AccessModelTest, PaperEq19PushOnlyTermIsHalf) {
  // With the paper's own μ₁ definition the push term is identically 1/2.
  EXPECT_NEAR(model_.paper_eq19(100), 0.5, 1e-12);
}

TEST_F(AccessModelTest, RejectsOversizedCutoff) {
  EXPECT_THROW((void)model_.estimate(101), std::invalid_argument);
  EXPECT_THROW((void)model_.paper_eq19(101), std::invalid_argument);
}

TEST(AccessModel, RejectsBadArrivalRate) {
  catalog::Catalog cat(10, 0.6, catalog::LengthModel::paper_default(), 1);
  const auto pop = workload::ClientPopulation::paper_default();
  EXPECT_THROW(HybridAccessModel(cat, pop, 0.0), std::invalid_argument);
}

// ------------------------------------------------------------ Little's law

TEST(Littles, Identities) {
  EXPECT_DOUBLE_EQ(littles_wait(10.0, 2.0), 5.0);
  EXPECT_DOUBLE_EQ(littles_length(5.0, 2.0), 10.0);
  EXPECT_DOUBLE_EQ(littles_wait(10.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(utilization(0.5, 1.5), 0.75);
}

}  // namespace
}  // namespace pushpull::queueing
