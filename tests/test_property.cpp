// Property-style parameterized suites sweeping the paper's parameter grid:
// conservation, QoS ordering, determinism and metric sanity must hold at
// every (θ, α, K) combination.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "exp/scenario.hpp"

namespace pushpull {
namespace {

struct GridParam {
  double theta;
  double alpha;
  std::size_t cutoff;
};

std::string param_name(const ::testing::TestParamInfo<GridParam>& info) {
  const auto& p = info.param;
  std::string s = "theta" + std::to_string(static_cast<int>(p.theta * 100)) +
                  "_alpha" + std::to_string(static_cast<int>(p.alpha * 100)) +
                  "_k" + std::to_string(p.cutoff);
  return s;
}

class HybridGridTest : public ::testing::TestWithParam<GridParam> {
 protected:
  static core::SimResult run(const GridParam& p, std::size_t requests = 8000) {
    exp::Scenario scenario;
    scenario.theta = p.theta;
    scenario.num_requests = requests;
    const auto built = scenario.build();
    core::HybridConfig config;
    config.cutoff = p.cutoff;
    config.alpha = p.alpha;
    return exp::run_hybrid(built, config);
  }
};

TEST_P(HybridGridTest, ConservationHolds) {
  const auto result = run(GetParam());
  const auto overall = result.overall();
  EXPECT_EQ(overall.served + overall.blocked, overall.arrived);
  EXPECT_EQ(overall.blocked, 0u);  // unconstrained channel on this grid
}

TEST_P(HybridGridTest, WaitsAreSaneEverywhere) {
  const auto result = run(GetParam());
  for (const auto& cls : result.per_class) {
    if (cls.wait.count() == 0) continue;
    EXPECT_GE(cls.wait.min(), 0.0);
    EXPECT_TRUE(std::isfinite(cls.wait.max()));
    EXPECT_GE(cls.wait.mean(), 0.0);
    EXPECT_LE(cls.wait.mean(), cls.wait.max());
    EXPECT_GE(cls.wait.mean(), cls.wait.min());
  }
}

TEST_P(HybridGridTest, PremiumClassOrderingUnderPriorityWeighting) {
  const GridParam p = GetParam();
  if (p.alpha > 0.5) {
    // Ordering is only guaranteed when priority dominates the importance
    // factor; for stretch-dominated weights the property does not apply.
    SUCCEED();
    return;
  }
  const auto result = run(p, 20000);
  // Class A must not be slower than class C by more than simulation noise.
  EXPECT_LE(result.mean_wait(0), result.mean_wait(2) * 1.10);
}

TEST_P(HybridGridTest, DeterministicAcrossIdenticalRuns) {
  const auto a = run(GetParam(), 3000);
  const auto b = run(GetParam(), 3000);
  EXPECT_DOUBLE_EQ(a.overall().wait.mean(), b.overall().wait.mean());
  EXPECT_EQ(a.pull_transmissions, b.pull_transmissions);
}

TEST_P(HybridGridTest, TransmissionAccountingConsistent) {
  const auto result = run(GetParam());
  const auto overall = result.overall();
  if (GetParam().cutoff == 0) {
    EXPECT_EQ(result.push_transmissions, 0u);
    EXPECT_EQ(overall.served_push, 0u);
  } else {
    EXPECT_GT(result.push_transmissions, 0u);
    EXPECT_LE(result.pull_transmissions, result.push_transmissions + 1);
  }
  EXPECT_EQ(overall.served_push + overall.served_pull, overall.served);
}

INSTANTIATE_TEST_SUITE_P(
    PaperGrid, HybridGridTest,
    ::testing::Values(
        // θ sweep at the paper's midpoints.
        GridParam{0.20, 0.50, 40}, GridParam{0.60, 0.50, 40},
        GridParam{1.00, 0.50, 40}, GridParam{1.40, 0.50, 40},
        // α sweep (Figs. 3–4 family).
        GridParam{0.60, 0.00, 40}, GridParam{0.60, 0.25, 40},
        GridParam{0.60, 0.75, 40}, GridParam{0.60, 1.00, 40},
        // cutoff extremes and interior points.
        GridParam{0.60, 0.50, 0}, GridParam{0.60, 0.50, 5},
        GridParam{0.60, 0.50, 70}, GridParam{0.60, 0.50, 100},
        // skew/α interactions.
        GridParam{1.40, 0.00, 20}, GridParam{0.20, 1.00, 80}),
    param_name);

// ---------------------------------------------------------- policy sweep

class PullPolicySweepTest
    : public ::testing::TestWithParam<sched::PullPolicyKind> {};

TEST_P(PullPolicySweepTest, EveryPolicyConservesAndTerminates) {
  exp::Scenario scenario;
  scenario.num_requests = 8000;
  const auto built = scenario.build();
  core::HybridConfig config;
  config.cutoff = 25;
  config.pull_policy = GetParam();
  config.alpha = 0.5;
  const auto result = exp::run_hybrid(built, config);
  const auto overall = result.overall();
  EXPECT_EQ(overall.served, overall.arrived);
  EXPECT_GT(overall.wait.mean(), 0.0);
}

TEST_P(PullPolicySweepTest, PurePullAlsoWorks) {
  exp::Scenario scenario;
  scenario.num_requests = 5000;
  const auto built = scenario.build();
  core::HybridConfig config;
  config.cutoff = 0;
  config.pull_policy = GetParam();
  config.alpha = 0.5;
  const auto result = exp::run_hybrid(built, config);
  EXPECT_EQ(result.overall().served, result.overall().arrived);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PullPolicySweepTest,
    ::testing::Values(sched::PullPolicyKind::kFcfs, sched::PullPolicyKind::kMrf,
                      sched::PullPolicyKind::kStretch,
                      sched::PullPolicyKind::kPriority,
                      sched::PullPolicyKind::kRxw,
                      sched::PullPolicyKind::kLwf,
                      sched::PullPolicyKind::kImportance,
                      sched::PullPolicyKind::kImportanceQueueAware),
    [](const ::testing::TestParamInfo<sched::PullPolicyKind>& param_info) {
      std::string name(sched::to_string(param_info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ------------------------------------------------------- push policy sweep

class PushPolicySweepTest
    : public ::testing::TestWithParam<sched::PushPolicyKind> {};

TEST_P(PushPolicySweepTest, EveryPushProgramServesAllPushRequests) {
  exp::Scenario scenario;
  scenario.num_requests = 8000;
  const auto built = scenario.build();
  core::HybridConfig config;
  config.cutoff = 30;
  config.push_policy = GetParam();
  const auto result = exp::run_hybrid(built, config);
  std::uint64_t push_requests = 0;
  for (const auto& r : built.trace.requests()) {
    if (r.item < config.cutoff) ++push_requests;
  }
  EXPECT_EQ(result.overall().served_push, push_requests);
  EXPECT_EQ(result.overall().served, result.overall().arrived);
}

INSTANTIATE_TEST_SUITE_P(
    AllPushPolicies, PushPolicySweepTest,
    ::testing::Values(sched::PushPolicyKind::kFlat,
                      sched::PushPolicyKind::kBroadcastDisks,
                      sched::PushPolicyKind::kSquareRootRule),
    [](const ::testing::TestParamInfo<sched::PushPolicyKind>& param_info) {
      std::string name(sched::to_string(param_info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// -------------------------------------------------- seed robustness sweep

class SeedSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweepTest, QosOrderingRobustAcrossSeeds) {
  exp::Scenario scenario;
  scenario.seed = GetParam();
  scenario.num_requests = 20000;
  const auto built = scenario.build();
  core::HybridConfig config;
  config.cutoff = 15;
  config.alpha = 0.0;
  const auto result = exp::run_hybrid(built, config);
  EXPECT_LE(result.mean_wait(0), result.mean_wait(2) * 1.10)
      << "seed=" << GetParam();
  EXPECT_EQ(result.overall().served, result.overall().arrived);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweepTest,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

}  // namespace
}  // namespace pushpull
