// Tests for the non-stationary workload substrate: the drifting generator
// and the exponential-forgetting popularity estimator.
#include <gtest/gtest.h>

#include <vector>

#include "catalog/catalog.hpp"
#include "catalog/length_model.hpp"
#include "workload/drifting_generator.hpp"
#include "workload/popularity_estimator.hpp"
#include "workload/request_generator.hpp"
#include "workload/trace.hpp"

namespace pushpull::workload {
namespace {

catalog::Catalog test_catalog(std::size_t n = 50, double theta = 1.0) {
  return catalog::Catalog(n, theta, catalog::LengthModel::paper_default(), 7);
}

// -------------------------------------------------------- DriftingGenerator

TEST(DriftingGenerator, RejectsBadArguments) {
  const auto cat = test_catalog();
  const auto pop = ClientPopulation::paper_default();
  EXPECT_THROW(DriftingGenerator(cat, pop, 0.0, 100.0, 5, 1),
               std::invalid_argument);
  EXPECT_THROW(DriftingGenerator(cat, pop, 5.0, 0.0, 5, 1),
               std::invalid_argument);
}

TEST(DriftingGenerator, RankMappingRotatesPerEpoch) {
  const auto cat = test_catalog();
  const auto pop = ClientPopulation::paper_default();
  DriftingGenerator gen(cat, pop, 5.0, /*epoch=*/100.0, /*shift=*/7, 1);
  EXPECT_EQ(gen.item_at_rank(0, 0.0), 0u);
  EXPECT_EQ(gen.item_at_rank(0, 99.9), 0u);
  EXPECT_EQ(gen.item_at_rank(0, 100.1), 7u);
  EXPECT_EQ(gen.item_at_rank(0, 200.1), 14u);
  EXPECT_EQ(gen.item_at_rank(3, 100.1), 10u);
}

TEST(DriftingGenerator, ExactEpochBoundaryBelongsToLaterEpoch) {
  // Pins the boundary-inclusive-toward-later-epoch convention documented on
  // item_at_rank: at exactly when == k·epoch the rotation of epoch k is
  // already in force. scenario::Timeline mirrors this for its segments.
  const auto cat = test_catalog();
  const auto pop = ClientPopulation::paper_default();
  DriftingGenerator gen(cat, pop, 5.0, /*epoch=*/100.0, /*shift=*/7, 1);
  EXPECT_EQ(gen.item_at_rank(0, 100.0), 7u);
  EXPECT_EQ(gen.item_at_rank(0, 200.0), 14u);
  EXPECT_EQ(gen.item_at_rank(3, 100.0), 10u);
}

TEST(DriftingGenerator, ZeroShiftMatchesRequestGeneratorDrawForDraw) {
  // shift = 0 degenerates to the stationary generator: same seed, same
  // streams, so the two must agree on every field of every draw.
  const auto cat = test_catalog();
  const auto pop = ClientPopulation::paper_default();
  DriftingGenerator drifting(cat, pop, 5.0, 100.0, /*shift=*/0, 42);
  RequestGenerator stationary(cat, pop, 5.0, 42);
  for (int i = 0; i < 1000; ++i) {
    const Request a = drifting.next();
    const Request b = stationary.next();
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.item, b.item);
    EXPECT_EQ(a.cls, b.cls);
    EXPECT_DOUBLE_EQ(a.arrival, b.arrival);
  }
}

TEST(DriftingGenerator, MappingWrapsAround) {
  const auto cat = test_catalog(10);
  const auto pop = ClientPopulation::paper_default();
  DriftingGenerator gen(cat, pop, 5.0, 10.0, 4, 1);
  // After 3 epochs the offset is 12 mod 10 = 2.
  EXPECT_EQ(gen.item_at_rank(0, 30.5), 2u);
  EXPECT_EQ(gen.item_at_rank(9, 30.5), 1u);
}

TEST(DriftingGenerator, ProbabilityAtInvertsMapping) {
  const auto cat = test_catalog();
  const auto pop = ClientPopulation::paper_default();
  DriftingGenerator gen(cat, pop, 5.0, 100.0, 7, 1);
  for (double when : {0.0, 150.0, 730.0}) {
    for (std::size_t rank : {std::size_t{0}, std::size_t{5}, std::size_t{49}}) {
      const catalog::ItemId item = gen.item_at_rank(rank, when);
      EXPECT_DOUBLE_EQ(gen.probability_at(item, when),
                       cat.probability(static_cast<catalog::ItemId>(rank)));
    }
  }
}

TEST(DriftingGenerator, HotItemMovesInGeneratedStream) {
  const auto cat = test_catalog(50, 1.2);
  const auto pop = ClientPopulation::paper_default();
  DriftingGenerator gen(cat, pop, 50.0, /*epoch=*/200.0, /*shift=*/25, 3);
  std::vector<int> first_epoch(50, 0);
  std::vector<int> second_epoch(50, 0);
  for (;;) {
    const Request r = gen.next();
    if (r.arrival > 400.0) break;
    if (r.arrival < 200.0) {
      ++first_epoch[r.item];
    } else {
      ++second_epoch[r.item];
    }
  }
  // The hottest item of epoch 0 is item 0; of epoch 1 it is item 25.
  EXPECT_GT(first_epoch[0], first_epoch[25]);
  EXPECT_GT(second_epoch[25], second_epoch[0]);
}

TEST(DriftingGenerator, DeterministicForSeed) {
  const auto cat = test_catalog();
  const auto pop = ClientPopulation::paper_default();
  DriftingGenerator a(cat, pop, 5.0, 100.0, 5, 42);
  DriftingGenerator b(cat, pop, 5.0, 100.0, 5, 42);
  for (int i = 0; i < 200; ++i) {
    const Request ra = a.next();
    const Request rb = b.next();
    EXPECT_DOUBLE_EQ(ra.arrival, rb.arrival);
    EXPECT_EQ(ra.item, rb.item);
  }
}

TEST(DriftingGenerator, ArrivalsStrictlyIncrease) {
  const auto cat = test_catalog();
  const auto pop = ClientPopulation::paper_default();
  DriftingGenerator gen(cat, pop, 5.0, 100.0, 5, 11);
  double last = 0.0;
  for (int i = 0; i < 500; ++i) {
    const Request r = gen.next();
    EXPECT_GT(r.arrival, last);
    last = r.arrival;
  }
}

// ----------------------------------------------------- PopularityEstimator

TEST(PopularityEstimator, RejectsBadArguments) {
  EXPECT_THROW(PopularityEstimator(0, 10.0), std::invalid_argument);
  EXPECT_THROW(PopularityEstimator(5, 0.0), std::invalid_argument);
}

TEST(PopularityEstimator, UniformWhenEmpty) {
  PopularityEstimator est(4, 10.0);
  const auto probs = est.probabilities();
  for (double p : probs) EXPECT_DOUBLE_EQ(p, 0.25);
  EXPECT_DOUBLE_EQ(est.total_weight(), 0.0);
}

TEST(PopularityEstimator, CountsWithoutDecayAtSameInstant) {
  PopularityEstimator est(3, 10.0);
  est.observe(0, 0.0);
  est.observe(0, 0.0);
  est.observe(1, 0.0);
  const auto probs = est.probabilities();
  EXPECT_NEAR(probs[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(probs[1], 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(probs[2], 0.0);
}

TEST(PopularityEstimator, HalfLifeHalvesOldWeight) {
  PopularityEstimator est(2, 10.0);
  est.observe(0, 0.0);
  est.observe(1, 10.0);  // exactly one half-life later
  // Item 0's weight decayed to 0.5; item 1's is 1.0.
  EXPECT_NEAR(est.weight(0), 0.5, 1e-12);
  EXPECT_NEAR(est.weight(1), 1.0, 1e-12);
  const auto probs = est.probabilities();
  EXPECT_NEAR(probs[0], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(probs[1], 2.0 / 3.0, 1e-12);
}

TEST(PopularityEstimator, ForgetsOldRegime) {
  PopularityEstimator est(2, 5.0);
  for (int i = 0; i < 100; ++i) est.observe(0, static_cast<double>(i) * 0.1);
  // After many half-lives of observations favoring item 1, the ranking flips.
  for (int i = 0; i < 100; ++i) {
    est.observe(1, 100.0 + static_cast<double>(i) * 0.1);
  }
  const auto ranking = est.ranking();
  EXPECT_EQ(ranking[0], 1u);
}

TEST(PopularityEstimator, RankingSortsByWeight) {
  PopularityEstimator est(4, 10.0);
  est.observe(2, 0.0);
  est.observe(2, 0.0);
  est.observe(2, 0.0);
  est.observe(0, 0.0);
  est.observe(0, 0.0);
  est.observe(3, 0.0);
  const auto ranking = est.ranking();
  EXPECT_EQ(ranking[0], 2u);
  EXPECT_EQ(ranking[1], 0u);
  EXPECT_EQ(ranking[2], 3u);
  EXPECT_EQ(ranking[3], 1u);
}

TEST(PopularityEstimator, RejectsOutOfOrderAndRange) {
  PopularityEstimator est(2, 10.0);
  est.observe(0, 5.0);
  EXPECT_THROW(est.observe(0, 4.0), std::invalid_argument);
  EXPECT_THROW(est.observe(2, 6.0), std::out_of_range);
}

TEST(PopularityEstimator, LongHorizonRebaseIsStable) {
  // Push the lazy-decay exponent far past the rebase threshold and verify
  // weights stay finite and correctly ordered.
  PopularityEstimator est(2, 1.0);
  for (int i = 0; i < 2000; ++i) {
    est.observe(0, static_cast<double>(i));
  }
  est.observe(1, 2000.0);
  EXPECT_TRUE(std::isfinite(est.weight(0)));
  EXPECT_TRUE(std::isfinite(est.weight(1)));
  // Item 0 was observed at t=2000-1 too... its decayed mass is a geometric
  // series ≈ 2 at half-life 1, minus decay to t=2000; still above 0.9.
  EXPECT_GT(est.weight(0), 0.9);
  EXPECT_NEAR(est.weight(1), 1.0, 1e-9);
}

TEST(PopularityEstimator, TracksZipfFrequencies) {
  const auto cat = test_catalog(20, 1.0);
  rng::Xoshiro256ss eng(5);
  PopularityEstimator est(20, 1e6);  // effectively no forgetting
  double now = 0.0;
  for (int i = 0; i < 100000; ++i) {
    now += 0.01;
    est.observe(cat.sample(eng), now);
  }
  const auto probs = est.probabilities();
  for (catalog::ItemId id = 0; id < 20; ++id) {
    EXPECT_NEAR(probs[id], cat.probability(id), 0.01);
  }
}

}  // namespace
}  // namespace pushpull::workload
