// Resilience layer: seeded crash/recovery, the overload degradation
// ladder, snapshot codec, the machine-verified invariant suite, and the
// chaos harness's determinism guarantees (bit-identical replay, jobs
// independence, warm-recovery ≡ fault-free under an empty schedule,
// bit-invisible defaults checked against the committed CLI goldens).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/hybrid_server.hpp"
#include "exp/chaos.hpp"
#include "exp/scenario.hpp"
#include "resilience/crash.hpp"
#include "resilience/invariants.hpp"
#include "resilience/overload.hpp"
#include "resilience/resilience_config.hpp"
#include "resilience/snapshot.hpp"
#include "rng/stream.hpp"

namespace pushpull {
namespace {

exp::Scenario small_scenario() {
  exp::Scenario s;
  s.num_items = 50;
  s.num_requests = 4000;
  return s;
}

core::HybridConfig crash_config(resilience::RecoveryMode mode) {
  core::HybridConfig config;
  config.cutoff = 10;
  config.resilience.crash.enabled = true;
  config.resilience.crash.rate = 0.01;
  config.resilience.crash.downtime = 20.0;
  config.resilience.crash.recovery = mode;
  config.resilience.crash.snapshot_interval = 40.0;
  return config;
}

// --- CrashSchedule --------------------------------------------------------

TEST(CrashSchedule, DeterministicForAGivenStream) {
  resilience::CrashConfig config;
  config.enabled = true;
  config.rate = 0.02;
  config.downtime = 25.0;
  const auto a = resilience::CrashSchedule::poisson(
      config, 5000.0, rng::StreamFactory(99).stream("crash-schedule"));
  const auto b = resilience::CrashSchedule::poisson(
      config, 5000.0, rng::StreamFactory(99).stream("crash-schedule"));
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a.times(), b.times());
}

TEST(CrashSchedule, RespectsDowntimeSpacingAndHorizon) {
  resilience::CrashConfig config;
  config.enabled = true;
  config.rate = 0.5;  // dense: spacing must come from the downtime guard
  config.downtime = 30.0;
  const auto schedule = resilience::CrashSchedule::poisson(
      config, 2000.0, rng::StreamFactory(7).stream("crash-schedule"));
  ASSERT_GT(schedule.size(), 1u);
  EXPECT_LE(schedule.size(), config.max_crashes);
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    EXPECT_GE(schedule.times()[i], 0.0);
    EXPECT_LE(schedule.times()[i], 2000.0);
    if (i > 0) {
      // No crash lands inside the previous crash's downtime.
      EXPECT_GE(schedule.times()[i] - schedule.times()[i - 1],
                config.downtime);
    }
  }
}

TEST(CrashSchedule, DisabledOrZeroRateIsEmpty) {
  resilience::CrashConfig config;
  EXPECT_TRUE(resilience::CrashSchedule::poisson(
                  config, 1000.0,
                  rng::StreamFactory(1).stream("crash-schedule"))
                  .empty());
  config.enabled = true;
  config.rate = 0.0;
  EXPECT_TRUE(resilience::CrashSchedule::poisson(
                  config, 1000.0,
                  rng::StreamFactory(1).stream("crash-schedule"))
                  .empty());
}

TEST(CrashSchedule, MaxCrashesBoundsAdversarialRates) {
  resilience::CrashConfig config;
  config.enabled = true;
  config.rate = 1000.0;
  config.downtime = 0.001;
  config.max_crashes = 5;
  const auto schedule = resilience::CrashSchedule::poisson(
      config, 1.0e9, rng::StreamFactory(3).stream("crash-schedule"));
  EXPECT_EQ(schedule.size(), 5u);
}

// --- OverloadController ---------------------------------------------------

TEST(OverloadController, ClimbsOneRungPerUpdateWithStickyExit) {
  resilience::OverloadConfig config;
  config.enabled = true;
  resilience::OverloadController ctl(config);

  // Saturating pressure climbs exactly one rung per evaluation.
  EXPECT_EQ(ctl.update(1.0, 1.0, 0.0),
            resilience::OverloadLevel::kShedLowPriority);
  EXPECT_EQ(ctl.update(2.0, 1.0, 0.0), resilience::OverloadLevel::kWidenPush);
  EXPECT_EQ(ctl.update(3.0, 1.0, 0.0),
            resilience::OverloadLevel::kAdmissionControl);
  EXPECT_EQ(ctl.update(4.0, 1.0, 0.0), resilience::OverloadLevel::kBrownout);
  EXPECT_EQ(ctl.update(5.0, 1.0, 0.0), resilience::OverloadLevel::kBrownout);
  EXPECT_EQ(ctl.max_level(), resilience::OverloadLevel::kBrownout);

  // Pressure inside the hysteresis band (between exit[3]=0.80 and
  // enter[3]=0.95) keeps the current level — sticky, no flapping.
  EXPECT_EQ(ctl.update(6.0, 0.85, 0.0), resilience::OverloadLevel::kBrownout);

  // Calm input relaxes one rung at a time, never jumps to normal.
  EXPECT_EQ(ctl.update(7.0, 0.0, 0.0),
            resilience::OverloadLevel::kAdmissionControl);
  EXPECT_EQ(ctl.update(8.0, 0.0, 0.0), resilience::OverloadLevel::kWidenPush);
  EXPECT_EQ(ctl.update(9.0, 0.0, 0.0),
            resilience::OverloadLevel::kShedLowPriority);
  EXPECT_EQ(ctl.update(10.0, 0.0, 0.0), resilience::OverloadLevel::kNormal);

  // The log is ordered and covers every move up and down.
  const auto& log = ctl.transitions();
  ASSERT_EQ(log.size(), 8u);
  for (std::size_t i = 1; i < log.size(); ++i) {
    EXPECT_LT(log[i - 1].time, log[i].time);
    EXPECT_EQ(log[i - 1].to, log[i].from);  // a connected path, no jumps
  }
}

TEST(OverloadController, BlockingEwmaAloneCanEscalate) {
  resilience::OverloadConfig config;
  config.enabled = true;
  config.blocking_ref = 0.5;
  resilience::OverloadController ctl(config);
  // Occupancy low, blocking EWMA at the reference → pressure 1.0.
  EXPECT_EQ(ctl.update(1.0, 0.1, 0.5),
            resilience::OverloadLevel::kShedLowPriority);
}

TEST(OverloadController, ResetClearsLevelAndLog) {
  resilience::OverloadConfig config;
  config.enabled = true;
  resilience::OverloadController ctl(config);
  (void)ctl.update(1.0, 1.0, 0.0);
  ctl.reset();
  EXPECT_EQ(ctl.level(), resilience::OverloadLevel::kNormal);
  EXPECT_EQ(ctl.max_level(), resilience::OverloadLevel::kNormal);
  EXPECT_TRUE(ctl.transitions().empty());
}

TEST(OverloadConfig, RejectsNonMonotoneHysteresisBands) {
  resilience::OverloadConfig config;
  config.enabled = true;
  config.exit[0] = config.enter[0];  // exit must be strictly below enter
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

// --- snapshot codec -------------------------------------------------------

TEST(Snapshot, RoundTripsBitExactly) {
  resilience::QueueSnapshot snap;
  snap.time = 1234.0 / 3.0;
  snap.queued = {5, 1, 99, 42};
  const std::string record = resilience::encode_snapshot(snap, 0xFEED);
  const auto restored = resilience::decode_snapshot(record, 0xFEED);
  EXPECT_EQ(restored.time, snap.time);
  EXPECT_EQ(restored.queued, snap.queued);
}

TEST(Snapshot, RejectsWrongFingerprintSchemaOrTruncation) {
  resilience::QueueSnapshot snap;
  snap.time = 10.0;
  snap.queued = {1, 2, 3};
  const std::string record = resilience::encode_snapshot(snap, 7);
  EXPECT_THROW((void)resilience::decode_snapshot(record, 8),
               std::runtime_error);
  EXPECT_THROW((void)resilience::decode_snapshot("snap0 " + record, 7),
               std::runtime_error);
  EXPECT_THROW((void)resilience::decode_snapshot(
                   record.substr(0, record.size() - 2), 7),
               std::runtime_error);
}

// --- invariant suite ------------------------------------------------------

resilience::InvariantInputs consistent_inputs() {
  resilience::InvariantInputs in;
  in.per_class.resize(1);
  auto& s = in.per_class[0];
  s.arrived = 10;
  s.served = 6;
  s.blocked = 1;
  s.abandoned = 1;
  s.shed = 1;
  s.lost = 0;
  s.rejected = 1;
  in.queue_capacity = 4;
  in.max_queue_len = 4;
  in.end_time = 100.0;
  return in;
}

TEST(Invariants, PassOnConsistentCounters) {
  const auto report = resilience::check_invariants(consistent_inputs());
  EXPECT_TRUE(report.all_pass()) << resilience::format_report(report);
  EXPECT_EQ(report.failures(), 0u);
}

TEST(Invariants, CatchBrokenConservation) {
  auto in = consistent_inputs();
  in.per_class[0].served -= 1;  // one request vanished
  const auto report = resilience::check_invariants(in);
  EXPECT_FALSE(report.all_pass());
  EXPECT_GE(report.failures(), 1u);
}

TEST(Invariants, CatchQueueCapViolationAndOrderViolations) {
  auto in = consistent_inputs();
  in.max_queue_len = in.queue_capacity + 1;
  EXPECT_FALSE(resilience::check_invariants(in).all_pass());

  in = consistent_inputs();
  in.event_order_violations = 2;
  EXPECT_FALSE(resilience::check_invariants(in).all_pass());

  in = consistent_inputs();
  in.end_time = -1.0;
  EXPECT_FALSE(resilience::check_invariants(in).all_pass());
}

TEST(Invariants, MergePoolsChecksAcrossReplications) {
  const auto one = resilience::check_invariants(consistent_inputs());
  auto pooled = one;
  pooled.merge(one);
  EXPECT_EQ(pooled.checks.size(), 2 * one.checks.size());
  EXPECT_TRUE(pooled.all_pass());
}

// --- crash/recovery through the full server -------------------------------

TEST(CrashRecovery, ColdCrashConservesEveryRequestAndStorms) {
  const auto built = small_scenario().build();
  const auto config = crash_config(resilience::RecoveryMode::kCold);
  const auto result = exp::run_hybrid(built, config);

  EXPECT_GT(result.crashes, 0u);
  EXPECT_GT(result.storm_rerequests, 0u);
  EXPECT_GT(result.total_downtime, 0.0);
  EXPECT_EQ(result.event_order_violations, 0u);

  resilience::InvariantInputs in;
  in.per_class = result.per_class;
  in.max_queue_len = result.max_pull_queue_len;
  in.event_order_violations = result.event_order_violations;
  in.end_time = result.end_time;
  const auto report = resilience::check_invariants(in);
  EXPECT_TRUE(report.all_pass()) << resilience::format_report(report);
}

TEST(CrashRecovery, CrashyRunsReplayBitIdentically) {
  const auto built = small_scenario().build();
  const auto config = crash_config(resilience::RecoveryMode::kCold);
  const auto a = exp::run_hybrid(built, config);
  const auto b = exp::run_hybrid(built, config);
  EXPECT_EQ(exp::serialize_result(a), exp::serialize_result(b));
}

TEST(CrashRecovery, WarmRecoveryStormsNoMoreThanCold) {
  const auto built = small_scenario().build();
  const auto cold =
      exp::run_hybrid(built, crash_config(resilience::RecoveryMode::kCold));
  const auto warm =
      exp::run_hybrid(built, crash_config(resilience::RecoveryMode::kWarm));
  // Both see the identical crash schedule (same named stream), so the only
  // difference is how much queue state survives: warm restores the latest
  // snapshot, cold loses everything.
  EXPECT_EQ(warm.crashes, cold.crashes);
  EXPECT_GT(cold.storm_rerequests, 0u);
  EXPECT_LE(warm.storm_rerequests, cold.storm_rerequests);
}

TEST(CrashRecovery, WarmWithEmptyScheduleEqualsFaultFreeBitExactly) {
  const auto built = small_scenario().build();
  core::HybridConfig plain;
  plain.cutoff = 10;

  core::HybridConfig armed = plain;
  armed.resilience.crash.enabled = true;
  armed.resilience.crash.rate = 0.0;  // armed but never fires
  armed.resilience.crash.recovery = resilience::RecoveryMode::kWarm;

  EXPECT_EQ(exp::serialize_result(exp::run_hybrid(built, plain)),
            exp::serialize_result(exp::run_hybrid(built, armed)));
}

TEST(DegradationLadder, EngagesUnderPressureAndKeepsConservation) {
  auto scenario = small_scenario();
  scenario.arrival_rate = 12.0;
  const auto built = scenario.build();
  core::HybridConfig config;
  config.cutoff = 0;  // pure pull: maximal queue pressure
  config.resilience.overload.enabled = true;
  config.resilience.overload.eval_interval = 2.0;
  config.resilience.overload.capacity_ref = 16;
  const auto result = exp::run_hybrid(built, config);

  EXPECT_GT(result.max_overload_level, resilience::OverloadLevel::kNormal);
  EXPECT_FALSE(result.overload_transitions.empty());
  for (std::size_t i = 1; i < result.overload_transitions.size(); ++i) {
    EXPECT_LE(result.overload_transitions[i - 1].time,
              result.overload_transitions[i].time);
  }

  resilience::InvariantInputs in;
  in.per_class = result.per_class;
  in.max_queue_len = result.max_pull_queue_len;
  in.event_order_violations = result.event_order_violations;
  in.end_time = result.end_time;
  const auto report = resilience::check_invariants(in);
  EXPECT_TRUE(report.all_pass()) << resilience::format_report(report);
}

// --- chaos harness --------------------------------------------------------

TEST(Chaos, SpikeWarpIsDeterministicOrderPreservingAndGated) {
  const auto built = small_scenario().build();
  // Factor 1 (or zero duration) must return the trace untouched.
  const auto same =
      exp::apply_arrival_spike(built.trace, 100.0, 50.0, 1.0);
  ASSERT_EQ(same.requests().size(), built.trace.requests().size());
  for (std::size_t i = 0; i < same.requests().size(); ++i) {
    EXPECT_EQ(same.requests()[i].arrival, built.trace.requests()[i].arrival);
  }

  const auto warped =
      exp::apply_arrival_spike(built.trace, 100.0, 50.0, 4.0);
  ASSERT_EQ(warped.requests().size(), built.trace.requests().size());
  double prev = 0.0;
  for (std::size_t i = 0; i < warped.requests().size(); ++i) {
    const auto& before = built.trace.requests()[i];
    const auto& after = warped.requests()[i];
    EXPECT_EQ(after.id, before.id);
    EXPECT_EQ(after.item, before.item);
    EXPECT_EQ(after.cls, before.cls);
    EXPECT_GE(after.arrival, prev);  // order preserved
    prev = after.arrival;
    if (before.arrival <= 100.0) {
      EXPECT_EQ(after.arrival, before.arrival);  // before the spike: exact
    }
  }
}

exp::ChaosSummary chaos_run(std::size_t jobs) {
  auto scenario = small_scenario();
  scenario.seed = 11;
  auto config = crash_config(resilience::RecoveryMode::kCold);
  config.resilience.overload.enabled = true;
  exp::ChaosOptions options;
  options.replications = 4;
  options.jobs = jobs;
  options.spike_factor = 3.0;
  options.spike_start = 100.0;
  options.spike_duration = 150.0;
  return exp::run_chaos(scenario, config, options);
}

TEST(Chaos, InvariantSuitePassesAndReplayIsBitIdentical) {
  const auto summary = chaos_run(1);
  EXPECT_EQ(summary.replications, 4u);
  EXPECT_GT(summary.crashes, 0u);
  EXPECT_TRUE(summary.replay_identical);
  EXPECT_TRUE(summary.invariants.all_pass())
      << resilience::format_report(summary.invariants);
}

TEST(Chaos, JobsCountNeverChangesTheNumbers) {
  const auto serial = chaos_run(1);
  const auto parallel = chaos_run(3);
  EXPECT_EQ(serial.crashes, parallel.crashes);
  EXPECT_EQ(serial.storm_rerequests, parallel.storm_rerequests);
  EXPECT_EQ(serial.largest_storm, parallel.largest_storm);
  EXPECT_EQ(serial.total_downtime, parallel.total_downtime);
  EXPECT_EQ(serial.overall_delay.mean(), parallel.overall_delay.mean());
  EXPECT_EQ(serial.overall_delay.variance(),
            parallel.overall_delay.variance());
  EXPECT_EQ(serial.total_cost.mean(), parallel.total_cost.mean());
  EXPECT_EQ(serial.goodput.mean(), parallel.goodput.mean());
  EXPECT_EQ(serial.overload_transitions, parallel.overload_transitions);
  EXPECT_EQ(serial.max_overload_level, parallel.max_overload_level);
  ASSERT_EQ(serial.per_class.size(), parallel.per_class.size());
  for (std::size_t c = 0; c < serial.per_class.size(); ++c) {
    EXPECT_EQ(serial.per_class[c].arrived, parallel.per_class[c].arrived);
    EXPECT_EQ(serial.per_class[c].served, parallel.per_class[c].served);
    EXPECT_EQ(serial.per_class[c].stormed, parallel.per_class[c].stormed);
    EXPECT_EQ(serial.per_class[c].rejected, parallel.per_class[c].rejected);
  }
}

// --- bit-invisible defaults: committed CLI goldens ------------------------

#if defined(PUSHPULL_CLI_PATH) && defined(PUSHPULL_GOLDEN_DIR)

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Runs the real CLI binary and byte-compares stdout against the golden
/// committed before the resilience layer existed: with crashes and the
/// ladder disabled (the default), the new code must be invisible.
void expect_golden(const std::string& args, const std::string& golden_name) {
  const std::string tmp = "resilience_golden_out.txt";
  const std::string cmd =
      std::string(PUSHPULL_CLI_PATH) + " " + args + " > " + tmp;
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;
  const std::string expected =
      slurp(std::string(PUSHPULL_GOLDEN_DIR) + "/" + golden_name);
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(slurp(tmp), expected)
      << "CLI output drifted from pre-resilience golden " << golden_name;
  std::remove(tmp.c_str());
}

TEST(GoldenOutput, SimulateIsByteIdenticalToPreResilienceSeed) {
  expect_golden("simulate --requests 4000 --seed 7", "simulate_default.txt");
}

TEST(GoldenOutput, ReplicateIsByteIdenticalToPreResilienceSeed) {
  expect_golden("replicate --reps 4 --requests 4000 --jobs 2 --seed 7",
                "replicate_default.txt");
}

#endif  // PUSHPULL_CLI_PATH && PUSHPULL_GOLDEN_DIR

}  // namespace
}  // namespace pushpull
