// Unit tests for the workload model: service classes, client population,
// Poisson request generation and trace record/replay.
#include <gtest/gtest.h>

#include <sstream>

#include "catalog/catalog.hpp"
#include "catalog/length_model.hpp"
#include "rng/xoshiro256ss.hpp"
#include "workload/population.hpp"
#include "workload/request_generator.hpp"
#include "workload/trace.hpp"

namespace pushpull::workload {
namespace {

catalog::Catalog test_catalog() {
  return catalog::Catalog(50, 0.6, catalog::LengthModel::paper_default(), 7);
}

// --------------------------------------------------------- ClientPopulation

TEST(ClientPopulation, PaperDefaultShape) {
  const auto pop = ClientPopulation::paper_default();
  ASSERT_EQ(pop.num_classes(), 3u);
  // Class-A: highest priority, fewest clients.
  EXPECT_DOUBLE_EQ(pop.priority(0), 3.0);
  EXPECT_DOUBLE_EQ(pop.priority(1), 2.0);
  EXPECT_DOUBLE_EQ(pop.priority(2), 1.0);
  EXPECT_LT(pop.share(0), pop.share(1));
  EXPECT_LT(pop.share(1), pop.share(2));
  EXPECT_EQ(pop.cls(0).name, "class-A");
  EXPECT_EQ(pop.cls(2).name, "class-C");
}

TEST(ClientPopulation, SharesSumToOne) {
  const auto pop = ClientPopulation::zipf_classes(5, 0.8);
  double sum = 0.0;
  for (ClassId c = 0; c < pop.num_classes(); ++c) sum += pop.share(c);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ClientPopulation, ExplicitSharesNormalized) {
  ClientPopulation pop({{"gold", 3.0, 2.0}, {"silver", 1.0, 6.0}});
  EXPECT_NEAR(pop.share(0), 0.25, 1e-12);
  EXPECT_NEAR(pop.share(1), 0.75, 1e-12);
}

TEST(ClientPopulation, MaxPriority) {
  ClientPopulation pop({{"a", 5.0, 1.0}, {"b", 2.0, 1.0}});
  EXPECT_DOUBLE_EQ(pop.max_priority(), 5.0);
}

TEST(ClientPopulation, RejectsBadInput) {
  EXPECT_THROW(ClientPopulation({}), std::invalid_argument);
  EXPECT_THROW(ClientPopulation({{"a", 1.0, 0.0}}), std::invalid_argument);
  EXPECT_THROW(ClientPopulation({{"a", -1.0, 1.0}}), std::invalid_argument);
  EXPECT_THROW(ClientPopulation::zipf_classes(0, 1.0), std::invalid_argument);
}

TEST(ClientPopulation, SampleFollowsShares) {
  const auto pop = ClientPopulation::paper_default();
  rng::Xoshiro256ss eng(3);
  std::vector<int> counts(3, 0);
  const int n = 300000;
  for (int i = 0; i < n; ++i) ++counts[pop.sample_class(eng)];
  for (ClassId c = 0; c < 3; ++c) {
    EXPECT_NEAR(static_cast<double>(counts[c]) / n, pop.share(c), 0.005);
  }
}

// --------------------------------------------------------- RequestGenerator

TEST(RequestGenerator, ArrivalsStrictlyIncrease) {
  const auto cat = test_catalog();
  const auto pop = ClientPopulation::paper_default();
  RequestGenerator gen(cat, pop, 5.0, 11);
  double last = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const Request r = gen.next();
    EXPECT_GT(r.arrival, last);
    last = r.arrival;
  }
}

TEST(RequestGenerator, RateMatches) {
  const auto cat = test_catalog();
  const auto pop = ClientPopulation::paper_default();
  RequestGenerator gen(cat, pop, 5.0, 12);
  const int n = 100000;
  Request last;
  for (int i = 0; i < n; ++i) last = gen.next();
  EXPECT_NEAR(static_cast<double>(n) / last.arrival, 5.0, 0.1);
}

TEST(RequestGenerator, IdsSequential) {
  const auto cat = test_catalog();
  const auto pop = ClientPopulation::paper_default();
  RequestGenerator gen(cat, pop, 1.0, 13);
  for (RequestId i = 0; i < 100; ++i) EXPECT_EQ(gen.next().id, i);
  EXPECT_EQ(gen.generated(), 100u);
}

TEST(RequestGenerator, DeterministicForSeed) {
  const auto cat = test_catalog();
  const auto pop = ClientPopulation::paper_default();
  RequestGenerator a(cat, pop, 5.0, 14);
  RequestGenerator b(cat, pop, 5.0, 14);
  for (int i = 0; i < 500; ++i) {
    const Request ra = a.next();
    const Request rb = b.next();
    EXPECT_DOUBLE_EQ(ra.arrival, rb.arrival);
    EXPECT_EQ(ra.item, rb.item);
    EXPECT_EQ(ra.cls, rb.cls);
  }
}

TEST(RequestGenerator, ItemFrequenciesFollowCatalog) {
  const auto cat = test_catalog();
  const auto pop = ClientPopulation::paper_default();
  RequestGenerator gen(cat, pop, 5.0, 15);
  std::vector<int> counts(cat.size(), 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[gen.next().item];
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, cat.probability(0), 0.01);
  EXPECT_GT(counts[0], counts[49]);
}

TEST(RequestGenerator, RejectsBadRate) {
  const auto cat = test_catalog();
  const auto pop = ClientPopulation::paper_default();
  EXPECT_THROW(RequestGenerator(cat, pop, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(RequestGenerator(cat, pop, -2.0, 1), std::invalid_argument);
}

// -------------------------------------------------------------------- Trace

TEST(Trace, RecordCount) {
  const auto cat = test_catalog();
  const auto pop = ClientPopulation::paper_default();
  RequestGenerator gen(cat, pop, 5.0, 16);
  const Trace trace = Trace::record(gen, 1234);
  EXPECT_EQ(trace.size(), 1234u);
  EXPECT_GT(trace.span(), 0.0);
}

TEST(Trace, RecordUntilHorizon) {
  const auto cat = test_catalog();
  const auto pop = ClientPopulation::paper_default();
  RequestGenerator gen(cat, pop, 5.0, 17);
  const Trace trace = Trace::record_until(gen, 100.0);
  EXPECT_LE(trace.span(), 100.0);
  // Rate 5 over horizon 100 ⇒ about 500 requests.
  EXPECT_NEAR(static_cast<double>(trace.size()), 500.0, 120.0);
}

TEST(Trace, EmptyTrace) {
  const Trace trace;
  EXPECT_TRUE(trace.empty());
  EXPECT_DOUBLE_EQ(trace.span(), 0.0);
}

TEST(Trace, RejectsUnsortedArrivals) {
  std::vector<Request> reqs(2);
  reqs[0].arrival = 5.0;
  reqs[1].arrival = 1.0;
  EXPECT_THROW(Trace{reqs}, std::invalid_argument);
}

TEST(Trace, CsvRoundTrip) {
  const auto cat = test_catalog();
  const auto pop = ClientPopulation::paper_default();
  RequestGenerator gen(cat, pop, 5.0, 18);
  const Trace trace = Trace::record(gen, 200);

  std::stringstream buffer;
  trace.save_csv(buffer);
  const Trace loaded = Trace::load_csv(buffer);

  ASSERT_EQ(loaded.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(loaded[i].id, trace[i].id);
    EXPECT_EQ(loaded[i].item, trace[i].item);
    EXPECT_EQ(loaded[i].cls, trace[i].cls);
    EXPECT_NEAR(loaded[i].arrival, trace[i].arrival, 1e-4);
  }
}

TEST(Trace, LoadRejectsMalformed) {
  std::stringstream missing_header("1,2,3,4\n");
  EXPECT_THROW(Trace::load_csv(missing_header), std::invalid_argument);

  std::stringstream bad_row("id,arrival,item,class\n1,2,3\n");
  EXPECT_THROW(Trace::load_csv(bad_row), std::invalid_argument);

  std::stringstream empty;
  EXPECT_THROW(Trace::load_csv(empty), std::invalid_argument);
}

TEST(Trace, ClassMixMatchesPopulation) {
  const auto cat = test_catalog();
  const auto pop = ClientPopulation::paper_default();
  RequestGenerator gen(cat, pop, 5.0, 19);
  const Trace trace = Trace::record(gen, 100000);
  std::vector<int> counts(3, 0);
  for (const auto& r : trace.requests()) ++counts[r.cls];
  for (ClassId c = 0; c < 3; ++c) {
    EXPECT_NEAR(static_cast<double>(counts[c]) / static_cast<double>(trace.size()),
                pop.share(c), 0.01);
  }
}

}  // namespace
}  // namespace pushpull::workload
