// Tests for the multi-seed replication runner.
#include <gtest/gtest.h>

#include "exp/replication.hpp"

namespace pushpull::exp {
namespace {

TEST(Replication, RejectsZeroReplications) {
  Scenario scenario;
  core::HybridConfig config;
  config.cutoff = 20;
  EXPECT_THROW(replicate_hybrid(scenario, config, 0), std::invalid_argument);
}

TEST(Replication, PoolsAcrossSeeds) {
  Scenario scenario;
  scenario.num_requests = 4000;
  core::HybridConfig config;
  config.cutoff = 30;
  const ReplicationSummary summary = replicate_hybrid(scenario, config, 5);
  EXPECT_EQ(summary.replications, 5u);
  EXPECT_EQ(summary.overall_delay.count(), 5u);
  ASSERT_EQ(summary.class_delay.size(), 3u);
  EXPECT_EQ(summary.class_delay[0].count(), 5u);
  EXPECT_GT(summary.overall_delay.mean(), 0.0);
  EXPECT_GT(summary.total_cost.mean(), 0.0);
  // Different seeds produce different runs, so there is real variance.
  EXPECT_GT(summary.overall_delay.variance(), 0.0);
}

TEST(Replication, CiShrinksWithMoreReplications) {
  Scenario scenario;
  scenario.num_requests = 3000;
  core::HybridConfig config;
  config.cutoff = 30;
  const auto few = replicate_hybrid(scenario, config, 3);
  const auto many = replicate_hybrid(scenario, config, 12);
  EXPECT_GT(few.overall_delay.ci_half_width(), 0.0);
  EXPECT_GT(many.overall_delay.ci_half_width(), 0.0);
  // Quadrupling the replications should clearly tighten the interval.
  EXPECT_LT(many.overall_delay.ci_half_width(),
            few.overall_delay.ci_half_width());
}

TEST(Replication, DeterministicGivenBaseSeed) {
  Scenario scenario;
  scenario.num_requests = 3000;
  core::HybridConfig config;
  config.cutoff = 30;
  const auto a = replicate_hybrid(scenario, config, 4);
  const auto b = replicate_hybrid(scenario, config, 4);
  EXPECT_DOUBLE_EQ(a.overall_delay.mean(), b.overall_delay.mean());
  EXPECT_DOUBLE_EQ(a.total_cost.mean(), b.total_cost.mean());
}

TEST(Replication, ClassOrderingSurvivesPooling) {
  Scenario scenario;
  scenario.num_requests = 8000;
  core::HybridConfig config;
  config.cutoff = 15;
  config.alpha = 0.0;
  const auto summary = replicate_hybrid(scenario, config, 5);
  EXPECT_LE(summary.class_delay[0].mean(),
            summary.class_delay[2].mean() * 1.05);
}

TEST(Replication, BlockingMetricTracked) {
  Scenario scenario;
  scenario.num_requests = 5000;
  core::HybridConfig config;
  config.cutoff = 10;
  config.total_bandwidth = 1.0;
  config.mean_bandwidth_demand = 1.5;
  const auto summary = replicate_hybrid(scenario, config, 3);
  EXPECT_GT(summary.blocking.mean(), 0.0);
  EXPECT_LE(summary.blocking.max(), 1.0);
}

}  // namespace
}  // namespace pushpull::exp
