// Tests for the multi-seed replication runner.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "exp/replication.hpp"
#include "metrics/welford.hpp"
#include "runtime/run_reporter.hpp"

namespace pushpull::exp {
namespace {

// Bit-exact equality — the parallel engine promises the worker count is
// invisible in the numbers, so no tolerance is allowed.
void expect_identical(const metrics::Welford& a, const metrics::Welford& b,
                      const std::string& label) {
  EXPECT_EQ(a.count(), b.count()) << label;
  EXPECT_EQ(a.mean(), b.mean()) << label;
  EXPECT_EQ(a.variance(), b.variance()) << label;
  EXPECT_EQ(a.sum(), b.sum()) << label;
  EXPECT_EQ(a.min(), b.min()) << label;
  EXPECT_EQ(a.max(), b.max()) << label;
}

void expect_identical(const ReplicationSummary& a,
                      const ReplicationSummary& b) {
  EXPECT_EQ(a.replications, b.replications);
  expect_identical(a.overall_delay, b.overall_delay, "overall_delay");
  ASSERT_EQ(a.class_delay.size(), b.class_delay.size());
  for (std::size_t c = 0; c < a.class_delay.size(); ++c) {
    expect_identical(a.class_delay[c], b.class_delay[c],
                     "class_delay[" + std::to_string(c) + "]");
  }
  expect_identical(a.total_cost, b.total_cost, "total_cost");
  expect_identical(a.blocking, b.blocking, "blocking");
  expect_identical(a.pull_queue_len, b.pull_queue_len, "pull_queue_len");
}

TEST(Replication, RejectsZeroReplications) {
  Scenario scenario;
  core::HybridConfig config;
  config.cutoff = 20;
  EXPECT_THROW(replicate_hybrid(scenario, config, 0), std::invalid_argument);
}

TEST(Replication, PoolsAcrossSeeds) {
  Scenario scenario;
  scenario.num_requests = 4000;
  core::HybridConfig config;
  config.cutoff = 30;
  const ReplicationSummary summary = replicate_hybrid(scenario, config, 5);
  EXPECT_EQ(summary.replications, 5u);
  EXPECT_EQ(summary.overall_delay.count(), 5u);
  ASSERT_EQ(summary.class_delay.size(), 3u);
  EXPECT_EQ(summary.class_delay[0].count(), 5u);
  EXPECT_GT(summary.overall_delay.mean(), 0.0);
  EXPECT_GT(summary.total_cost.mean(), 0.0);
  // Different seeds produce different runs, so there is real variance.
  EXPECT_GT(summary.overall_delay.variance(), 0.0);
}

TEST(Replication, CiShrinksWithMoreReplications) {
  Scenario scenario;
  scenario.num_requests = 3000;
  core::HybridConfig config;
  config.cutoff = 30;
  const auto few = replicate_hybrid(scenario, config, 3);
  const auto many = replicate_hybrid(scenario, config, 12);
  EXPECT_GT(few.overall_delay.ci_half_width(), 0.0);
  EXPECT_GT(many.overall_delay.ci_half_width(), 0.0);
  // Quadrupling the replications should clearly tighten the interval.
  EXPECT_LT(many.overall_delay.ci_half_width(),
            few.overall_delay.ci_half_width());
}

TEST(Replication, DeterministicGivenBaseSeed) {
  Scenario scenario;
  scenario.num_requests = 3000;
  core::HybridConfig config;
  config.cutoff = 30;
  const auto a = replicate_hybrid(scenario, config, 4);
  const auto b = replicate_hybrid(scenario, config, 4);
  EXPECT_DOUBLE_EQ(a.overall_delay.mean(), b.overall_delay.mean());
  EXPECT_DOUBLE_EQ(a.total_cost.mean(), b.total_cost.mean());
}

TEST(Replication, ClassOrderingSurvivesPooling) {
  Scenario scenario;
  scenario.num_requests = 8000;
  core::HybridConfig config;
  config.cutoff = 15;
  config.alpha = 0.0;
  const auto summary = replicate_hybrid(scenario, config, 5);
  EXPECT_LE(summary.class_delay[0].mean(),
            summary.class_delay[2].mean() * 1.05);
}

TEST(Replication, BlockingMetricTracked) {
  Scenario scenario;
  scenario.num_requests = 5000;
  core::HybridConfig config;
  config.cutoff = 10;
  config.total_bandwidth = 1.0;
  config.mean_bandwidth_demand = 1.5;
  const auto summary = replicate_hybrid(scenario, config, 3);
  EXPECT_GT(summary.blocking.mean(), 0.0);
  EXPECT_LE(summary.blocking.max(), 1.0);
}

TEST(Replication, ParallelIsBitIdenticalToSerial) {
  Scenario scenario;
  scenario.num_requests = 2000;
  core::HybridConfig config;
  config.cutoff = 30;

  ReplicateOptions serial_opts;
  serial_opts.jobs = 1;
  const auto serial = replicate_hybrid(scenario, config, 8, serial_opts);

  ReplicateOptions parallel_opts;
  parallel_opts.jobs = 8;
  const auto parallel = replicate_hybrid(scenario, config, 8, parallel_opts);

  expect_identical(serial, parallel);
}

TEST(Replication, AutoJobsMatchesSerialToo) {
  Scenario scenario;
  scenario.num_requests = 1500;
  scenario.jobs = 0;  // hardware concurrency via the Scenario knob
  core::HybridConfig config;
  config.cutoff = 20;
  const auto auto_jobs = replicate_hybrid(scenario, config, 6);

  scenario.jobs = 1;
  const auto serial = replicate_hybrid(scenario, config, 6);
  expect_identical(serial, auto_jobs);
}

TEST(Replication, ClassDelaySizedFromBuiltPopulation) {
  // The summary's per-class pools must track the *built* population, not
  // blindly trust the scenario's declared class count (the two are
  // validated against each other inside each replication).
  Scenario scenario;
  scenario.num_classes = 5;
  scenario.num_requests = 2000;
  core::HybridConfig config;
  config.cutoff = 25;
  const auto summary = replicate_hybrid(scenario, config, 3);
  ASSERT_EQ(summary.class_delay.size(), 5u);
  for (const auto& w : summary.class_delay) {
    EXPECT_EQ(w.count(), 3u);
  }
}

TEST(Replication, ParallelRunEmitsProgressJsonl) {
  Scenario scenario;
  scenario.num_requests = 1000;
  core::HybridConfig config;
  config.cutoff = 30;

  std::ostringstream sink;
  runtime::RunReporter reporter(sink);
  ReplicateOptions options;
  options.jobs = 4;
  options.reporter = &reporter;
  (void)replicate_hybrid(scenario, config, 4, options);

  std::istringstream lines(sink.str());
  std::size_t jobs = 0;
  bool saw_start = false;
  bool saw_end = false;
  for (std::string line; std::getline(lines, line);) {
    if (line.find(R"("event":"run_start")") != std::string::npos) {
      saw_start = true;
    } else if (line.find(R"("event":"run_end")") != std::string::npos) {
      saw_end = true;
    } else if (line.find(R"("event":"job")") != std::string::npos) {
      ++jobs;
    }
  }
  EXPECT_TRUE(saw_start);
  EXPECT_TRUE(saw_end);
  EXPECT_EQ(jobs, 4u);
}

}  // namespace
}  // namespace pushpull::exp
