// Property sweep: the self-consistent access-time model must track the
// simulation across the paper's whole (θ, α, K) grid — not just at the
// Fig. 7 calibration point. Bounds here are looser than Fig. 7's ±9%
// because the grid includes the extreme regimes (tiny/huge cutoffs, steep
// skew) where the renewal approximation is weakest.
#include <gtest/gtest.h>

#include <cmath>

#include "exp/scenario.hpp"
#include "queueing/access_time.hpp"

namespace pushpull {
namespace {

struct ModelParam {
  double theta;
  double alpha;
  std::size_t cutoff;
};

std::string model_param_name(const ::testing::TestParamInfo<ModelParam>& info) {
  const auto& p = info.param;
  return "theta" + std::to_string(static_cast<int>(p.theta * 100)) + "_alpha" +
         std::to_string(static_cast<int>(p.alpha * 100)) + "_k" +
         std::to_string(p.cutoff);
}

class ModelVsSimTest : public ::testing::TestWithParam<ModelParam> {};

TEST_P(ModelVsSimTest, OverallDelayWithinBand) {
  const ModelParam p = GetParam();
  exp::Scenario scenario;
  scenario.theta = p.theta;
  scenario.num_requests = 30000;
  const auto built = scenario.build();

  core::HybridConfig config;
  config.cutoff = p.cutoff;
  config.alpha = p.alpha;
  const core::SimResult sim = exp::run_hybrid(built, config);

  queueing::HybridAccessModel model(built.catalog, built.population, 5.0);
  const auto est = model.estimate(p.cutoff, p.alpha);

  const double simulated = sim.overall().wait.mean();
  ASSERT_GT(simulated, 0.0);
  EXPECT_TRUE(std::isfinite(est.overall));
  // Factor-of-1.6 band across the whole grid (Fig. 7's calibration slice
  // is within ±9%).
  EXPECT_GT(est.overall, simulated / 1.6)
      << "sim=" << simulated << " model=" << est.overall;
  EXPECT_LT(est.overall, simulated * 1.6)
      << "sim=" << simulated << " model=" << est.overall;
}

TEST_P(ModelVsSimTest, ClassOrderingAgreesWithSimulation) {
  const ModelParam p = GetParam();
  if (p.alpha > 0.5 || p.cutoff >= 100) return;  // ordering only when priority dominates
  exp::Scenario scenario;
  scenario.theta = p.theta;
  scenario.num_requests = 20000;
  const auto built = scenario.build();
  queueing::HybridAccessModel model(built.catalog, built.population, 5.0);
  const auto est = model.estimate(p.cutoff, p.alpha);
  EXPECT_LE(est.access_time[0], est.access_time[2]);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModelVsSimTest,
    ::testing::Values(ModelParam{0.20, 0.75, 30}, ModelParam{0.60, 0.75, 10},
                      ModelParam{0.60, 0.75, 50}, ModelParam{0.60, 0.25, 30},
                      ModelParam{0.60, 0.00, 60}, ModelParam{1.00, 0.75, 30},
                      ModelParam{1.40, 0.50, 20}, ModelParam{0.60, 1.00, 40},
                      ModelParam{0.60, 0.75, 100}),
    model_param_name);

}  // namespace
}  // namespace pushpull
