// Unit tests for the discrete-event kernel: ordering, FIFO tie-breaking,
// cancellation, horizons, stop requests and reuse.
#include <gtest/gtest.h>

#include <type_traits>
#include <vector>

#include "des/event_queue.hpp"
#include "des/simulator.hpp"

namespace pushpull::des {
namespace {

// --------------------------------------------------------------- EventQueue

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  q.push(Event{5.0, 1, [] {}});
  q.push(Event{1.0, 2, [] {}});
  q.push(Event{3.0, 3, [] {}});
  EXPECT_DOUBLE_EQ(q.pop().time, 1.0);
  EXPECT_DOUBLE_EQ(q.pop().time, 3.0);
  EXPECT_DOUBLE_EQ(q.pop().time, 5.0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, EqualTimesAreFifo) {
  EventQueue q;
  q.push(Event{2.0, 10, [] {}});
  q.push(Event{2.0, 11, [] {}});
  q.push(Event{2.0, 12, [] {}});
  EXPECT_EQ(q.pop().id, 10u);
  EXPECT_EQ(q.pop().id, 11u);
  EXPECT_EQ(q.pop().id, 12u);
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue q;
  q.push(Event{1.0, 1, [] {}});
  q.push(Event{2.0, 2, [] {}});
  EXPECT_TRUE(q.cancel(1));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.pop().id, 2u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelUnknownIsFalse) {
  EventQueue q;
  q.push(Event{1.0, 1, [] {}});
  EXPECT_FALSE(q.cancel(99));
  EXPECT_FALSE(q.cancel(1) && q.cancel(1));  // second cancel fails
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  q.push(Event{1.0, 1, [] {}});
  q.push(Event{2.0, 2, [] {}});
  q.cancel(1);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST(EventQueue, NextTimeIsConstCorrect) {
  // next_time() is a pure query: the lazy purge of cancelled heap entries
  // it may trigger is not observable, so it must be callable through a
  // const reference. Pinned at compile time, then exercised through a
  // const view over a queue whose top is cancelled (the purge path).
  static_assert(
      std::is_invocable_r_v<SimTime, decltype(&EventQueue::next_time),
                            const EventQueue&>,
      "EventQueue::next_time must be const-qualified");
  EventQueue q;
  q.push(Event{2.0, 1, [] {}});
  q.push(Event{4.0, 2, [] {}});
  q.cancel(1);
  const EventQueue& view = q;
  EXPECT_DOUBLE_EQ(view.next_time(), 4.0);
  // The purge through the const view changed nothing observable.
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.pop().id, 2u);
}

TEST(EventQueue, ClearEmptiesEverything) {
  EventQueue q;
  q.push(Event{1.0, 1, [] {}});
  q.push(Event{2.0, 2, [] {}});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

// ---------------------------------------------------------------- Simulator

TEST(Simulator, RunsEventsInOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(10.0, [&] {
    sim.schedule_in(5.0, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(Simulator, SameTimeFifo) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(1.0, [&] { order.push_back(2); });
  sim.schedule_at(1.0, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, NestedSchedulingAtCurrentTime) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] {
    order.push_back(1);
    sim.schedule_in(0.0, [&] { order.push_back(2); });
  });
  sim.schedule_at(2.0, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, RunUntilHonorsHorizon) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  sim.schedule_at(10.0, [&] { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.pending_events(), 1u);
  // Event exactly at the horizon still fires on the next call.
  sim.run_until(10.0);
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunUntilAdvancesClockToHorizonWhenDrained) {
  Simulator sim;
  sim.schedule_at(1.0, [] {});
  sim.run_until(7.0);
  EXPECT_DOUBLE_EQ(sim.now(), 7.0);
}

TEST(Simulator, CancelPreventsDispatch) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelAfterFireIsFalse) {
  Simulator sim;
  const EventId id = sim.schedule_at(1.0, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, RequestStopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] {
    ++fired;
    sim.request_stop();
  });
  sim.schedule_at(2.0, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending_events(), 1u);
  // A subsequent run resumes from where we stopped.
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, StepDispatchesOne) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, DispatchedEventsCounts) {
  Simulator sim;
  for (int i = 0; i < 10; ++i) sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.dispatched_events(), 10u);
}

TEST(Simulator, ScheduledAndCancelledCounters) {
  Simulator sim;
  const EventId a = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.scheduled_events(), 2u);
  EXPECT_EQ(sim.cancelled_events(), 0u);
  EXPECT_TRUE(sim.cancel(a));
  EXPECT_FALSE(sim.cancel(a));  // double-cancel counts once
  EXPECT_EQ(sim.cancelled_events(), 1u);
  sim.run();
  EXPECT_EQ(sim.dispatched_events(), 1u);
  EXPECT_EQ(sim.scheduled_events(), 2u);  // lifetime total, not pending
}

TEST(Simulator, ResetDropsPendingAndClock) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(5.0, [&] { fired = true; });
  sim.reset();
  EXPECT_TRUE(sim.idle());
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, EventChainTerminates) {
  // A self-rescheduling process that stops itself after N steps — the shape
  // of the hybrid server's push loop.
  Simulator sim;
  int steps = 0;
  std::function<void()> tick = [&] {
    if (++steps < 100) sim.schedule_in(1.0, tick);
  };
  sim.schedule_at(0.0, tick);
  sim.run();
  EXPECT_EQ(steps, 100);
  EXPECT_DOUBLE_EQ(sim.now(), 99.0);
}

}  // namespace
}  // namespace pushpull::des
