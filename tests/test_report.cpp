// Tests for the Markdown report writer.
#include <gtest/gtest.h>

#include <sstream>

#include "exp/report.hpp"
#include "exp/scenario.hpp"

namespace pushpull::exp {
namespace {

TEST(Report, ContainsConfigurationAndQoS) {
  Scenario scenario;
  scenario.num_requests = 5000;
  const auto built = scenario.build();
  core::HybridConfig config;
  config.cutoff = 25;
  config.alpha = 0.25;
  const core::SimResult result = run_hybrid(built, config);

  ReportHeader header;
  header.num_items = scenario.num_items;
  header.theta = scenario.theta;
  header.arrival_rate = scenario.arrival_rate;
  header.num_requests = scenario.num_requests;
  header.seed = scenario.seed;

  std::ostringstream out;
  write_markdown_report(out, header, config, built.population, result);
  const std::string text = out.str();

  EXPECT_NE(text.find("# pushpull simulation report"), std::string::npos);
  EXPECT_NE(text.find("| cutoff K | 25 |"), std::string::npos);
  EXPECT_NE(text.find("| pull policy | importance |"), std::string::npos);
  EXPECT_NE(text.find("class-A"), std::string::npos);
  EXPECT_NE(text.find("class-C"), std::string::npos);
  EXPECT_NE(text.find("## Totals"), std::string::npos);
  EXPECT_NE(text.find("push transmissions"), std::string::npos);
}

TEST(Report, QuantileColumnsOrdered) {
  Scenario scenario;
  scenario.num_requests = 10000;
  const auto built = scenario.build();
  core::HybridConfig config;
  config.cutoff = 25;
  const core::SimResult result = run_hybrid(built, config);
  for (const auto& cls : result.per_class) {
    EXPECT_LE(cls.wait_p50.value(), cls.wait_p95.value());
    EXPECT_LE(cls.wait_p95.value(), cls.wait_p99.value());
  }
  // And the report renders without throwing.
  std::ostringstream out;
  write_markdown_report(out, ReportHeader{}, config, built.population,
                        result);
  EXPECT_FALSE(out.str().empty());
}

TEST(Report, ReflectsBlockingAndImpatience) {
  Scenario scenario;
  scenario.num_requests = 8000;
  const auto built = scenario.build();
  core::HybridConfig config;
  config.cutoff = 10;
  config.total_bandwidth = 1.0;
  config.mean_bandwidth_demand = 1.5;
  config.mean_patience = 15.0;
  const core::SimResult result = run_hybrid(built, config);

  std::ostringstream out;
  write_markdown_report(out, ReportHeader{}, config, built.population,
                        result);
  const std::string text = out.str();
  EXPECT_NE(text.find("| total bandwidth | 1 |"), std::string::npos);
  EXPECT_NE(text.find("| mean patience | 15 |"), std::string::npos);
  EXPECT_NE(text.find("blocked transmissions"), std::string::npos);
}

}  // namespace
}  // namespace pushpull::exp
