// Tests for client impatience: exponentially distributed patience timers,
// abandonment accounting, and the interaction with push/pull delivery.
#include <gtest/gtest.h>

#include "core/pull_queue.hpp"
#include "exp/scenario.hpp"

namespace pushpull::core {
namespace {

exp::Scenario small_scenario(std::size_t requests = 15000) {
  exp::Scenario s;
  s.num_items = 50;
  s.num_requests = requests;
  return s;
}

TEST(Impatience, DisabledByDefault) {
  const auto built = small_scenario().build();
  HybridConfig config;
  config.cutoff = 20;
  const SimResult r = exp::run_hybrid(built, config);
  EXPECT_EQ(r.overall().abandoned, 0u);
}

TEST(Impatience, ConservationIncludesAbandonment) {
  const auto built = small_scenario().build();
  HybridConfig config;
  config.cutoff = 20;
  config.mean_patience = 10.0;
  const SimResult r = exp::run_hybrid(built, config);
  const auto overall = r.overall();
  EXPECT_GT(overall.abandoned, 0u);
  EXPECT_EQ(overall.served + overall.blocked + overall.abandoned,
            overall.arrived);
}

TEST(Impatience, ShorterPatienceDropsMore) {
  const auto built = small_scenario().build();
  HybridConfig impatient;
  impatient.cutoff = 20;
  impatient.mean_patience = 5.0;
  HybridConfig tolerant = impatient;
  tolerant.mean_patience = 50.0;
  const SimResult ri = exp::run_hybrid(built, impatient);
  const SimResult rt = exp::run_hybrid(built, tolerant);
  EXPECT_GT(ri.overall().abandoned, rt.overall().abandoned);
}

TEST(Impatience, ServedWaitsBoundedByObservedPatience) {
  // A served request was never abandoned, but its wait can exceed the mean
  // patience (exponential tail); the mean wait of survivors must still be
  // well below the no-impatience mean because long waiters left the system.
  const auto built = small_scenario(25000).build();
  HybridConfig patient;
  patient.cutoff = 20;
  HybridConfig impatient = patient;
  impatient.mean_patience = 10.0;
  const SimResult rp = exp::run_hybrid(built, patient);
  const SimResult ri = exp::run_hybrid(built, impatient);
  EXPECT_LT(ri.overall().wait.mean(), rp.overall().wait.mean());
}

TEST(Impatience, AbandonmentRatioConsistent) {
  const auto built = small_scenario().build();
  HybridConfig config;
  config.cutoff = 20;
  config.mean_patience = 8.0;
  const SimResult r = exp::run_hybrid(built, config);
  for (const auto& cls : r.per_class) {
    const double ratio = cls.abandonment_ratio();
    EXPECT_GE(ratio, 0.0);
    EXPECT_LE(ratio, 1.0);
  }
  const auto overall = r.overall();
  EXPECT_NEAR(overall.abandonment_ratio(),
              static_cast<double>(overall.abandoned) /
                  static_cast<double>(overall.arrived),
              1e-12);
}

TEST(Impatience, WorksInPurePushAndPurePull) {
  const auto built = small_scenario(8000).build();
  for (std::size_t cutoff : {std::size_t{0}, built.catalog.size()}) {
    HybridConfig config;
    config.cutoff = cutoff;
    config.mean_patience = 5.0;
    const SimResult r = exp::run_hybrid(built, config);
    const auto overall = r.overall();
    EXPECT_EQ(overall.served + overall.blocked + overall.abandoned,
              overall.arrived)
        << "cutoff=" << cutoff;
  }
}

TEST(Impatience, DeterministicForSeed) {
  const auto built = small_scenario(8000).build();
  HybridConfig config;
  config.cutoff = 20;
  config.mean_patience = 10.0;
  const SimResult a = exp::run_hybrid(built, config);
  const SimResult b = exp::run_hybrid(built, config);
  EXPECT_EQ(a.overall().abandoned, b.overall().abandoned);
  EXPECT_DOUBLE_EQ(a.overall().wait.mean(), b.overall().wait.mean());
}

TEST(Impatience, PremiumClassAbandonsLessUnderPriorityScheduling) {
  // Under α = 0 the premium class is served sooner, so fewer of its pull
  // requests time out.
  exp::Scenario s = small_scenario(30000);
  const auto built = s.build();
  HybridConfig config;
  config.cutoff = 10;
  config.alpha = 0.0;
  config.mean_patience = 20.0;
  const SimResult r = exp::run_hybrid(built, config);
  EXPECT_LE(r.per_class[0].abandonment_ratio(),
            r.per_class[2].abandonment_ratio() + 0.02);
}

// --------------------------------------------------- PullQueue::remove_request

workload::Request make_request(workload::RequestId id, catalog::ItemId item,
                               double arrival) {
  workload::Request r;
  r.id = id;
  r.item = item;
  r.cls = 0;
  r.arrival = arrival;
  return r;
}

TEST(PullQueueRemove, RemovesSingleRequest) {
  PullQueue q;
  q.add(make_request(1, 5, 1.0), 2.0, 1.0, 0.1);
  q.add(make_request(2, 5, 2.0), 3.0, 1.0, 0.1);
  EXPECT_TRUE(q.remove_request(5, 1, 2.0));
  const auto* entry = q.find(5);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->pending.size(), 1u);
  EXPECT_DOUBLE_EQ(entry->total_priority, 3.0);
  EXPECT_DOUBLE_EQ(entry->first_arrival, 2.0);
  EXPECT_EQ(q.total_requests(), 1u);
}

TEST(PullQueueRemove, LastRequestRemovesEntry) {
  PullQueue q;
  q.add(make_request(1, 5, 1.0), 2.0, 1.0, 0.1);
  EXPECT_TRUE(q.remove_request(5, 1, 2.0));
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.total_requests(), 0u);
  EXPECT_EQ(q.find(5), nullptr);
}

TEST(PullQueueRemove, MissingRequestIsFalse) {
  PullQueue q;
  q.add(make_request(1, 5, 1.0), 2.0, 1.0, 0.1);
  EXPECT_FALSE(q.remove_request(5, 99, 2.0));
  EXPECT_FALSE(q.remove_request(6, 1, 2.0));
  EXPECT_EQ(q.total_requests(), 1u);
}

TEST(PullQueueRemove, FirstArrivalRecomputed) {
  PullQueue q;
  q.add(make_request(1, 5, 1.0), 1.0, 1.0, 0.1);
  q.add(make_request(2, 5, 3.0), 1.0, 1.0, 0.1);
  q.add(make_request(3, 5, 2.0), 1.0, 1.0, 0.1);
  EXPECT_TRUE(q.remove_request(5, 1, 1.0));
  EXPECT_DOUBLE_EQ(q.find(5)->first_arrival, 2.0);
}

}  // namespace
}  // namespace pushpull::core
