// Differential suite proving the calendar-queue EventQueue backend is
// observably identical to the binary-heap reference: same pop sequence
// (time AND id), same next_time() at every step, same size/empty, same
// cancel results — over 1000 seeded random schedules exercising bursty
// times, duplicate timestamps, interleaved cancellations, sparse
// far-future jumps, and clear/reuse.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "des/event_queue.hpp"
#include "rng/uniform.hpp"
#include "rng/xoshiro256ss.hpp"

namespace pushpull::des {
namespace {

/// Asserts every observable query agrees between the two backends.
void expect_agree(const EventQueue& heap, const EventQueue& cal,
                  std::uint64_t seed, std::size_t step) {
  ASSERT_EQ(heap.empty(), cal.empty()) << "seed " << seed << " step " << step;
  ASSERT_EQ(heap.size(), cal.size()) << "seed " << seed << " step " << step;
  if (!heap.empty()) {
    ASSERT_EQ(heap.next_time(), cal.next_time())
        << "seed " << seed << " step " << step;
  }
}

/// One random schedule: pushes with bursty/duplicate/sparse times,
/// interleaved pops, cancels and the occasional clear, comparing the
/// backends after every operation.
void run_schedule(std::uint64_t seed, std::size_t ops) {
  rng::Xoshiro256ss eng(seed);
  EventQueue heap(EventQueueKind::kBinaryHeap);
  EventQueue cal(EventQueueKind::kCalendar);
  EventId next_id = 1;
  std::vector<EventId> live;  // superset: may contain fired/cancelled ids
  double base = 0.0;

  for (std::size_t step = 0; step < ops; ++step) {
    const double r = rng::uniform01(eng);
    if (r < 0.55 || heap.empty()) {
      // Push. Time pattern: duplicates, micro-steps, normal bursts, rare
      // huge jumps (forces the calendar's sparse direct-search path), and
      // rare rewinds below the current base.
      const double shape = rng::uniform01(eng);
      if (shape < 0.25) {
        // duplicate timestamp: keep base
      } else if (shape < 0.5) {
        base += rng::uniform01(eng) * 1e-3;
      } else if (shape < 0.9) {
        base += rng::uniform01(eng) * 10.0;
      } else if (shape < 0.97) {
        base += rng::uniform01(eng) * 1e6;
      }
      double when = base;
      if (shape >= 0.97) {
        when = base * rng::uniform01(eng);  // rewind into the past
      }
      const EventId id = next_id++;
      heap.push(Event{when, id, [] {}});
      cal.push(Event{when, id, [] {}});
      live.push_back(id);
    } else if (r < 0.80) {
      Event a = heap.pop();
      Event b = cal.pop();
      ASSERT_EQ(a.time, b.time) << "seed " << seed << " step " << step;
      ASSERT_EQ(a.id, b.id) << "seed " << seed << " step " << step;
    } else if (r < 0.97) {
      // Cancel a random (possibly stale) id; results must match.
      if (!live.empty()) {
        const std::size_t pick = static_cast<std::size_t>(
            rng::uniform_below(eng, live.size()));
        ASSERT_EQ(heap.cancel(live[pick]), cal.cancel(live[pick]))
            << "seed " << seed << " step " << step;
      }
    } else {
      heap.clear();
      cal.clear();
      live.clear();
      base = 0.0;
    }
    expect_agree(heap, cal, seed, step);
  }
  // Drain both completely: full pop order must match.
  while (!heap.empty()) {
    Event a = heap.pop();
    Event b = cal.pop();
    ASSERT_EQ(a.time, b.time) << "seed " << seed << " drain";
    ASSERT_EQ(a.id, b.id) << "seed " << seed << " drain";
    expect_agree(heap, cal, seed, ops);
  }
  ASSERT_TRUE(cal.empty());
}

TEST(EventQueueDiff, ThousandSeededRandomSchedules) {
  for (std::uint64_t seed = 0; seed < 1000; ++seed) {
    run_schedule(seed, 60);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(EventQueueDiff, LongSchedulesCrossResizeThresholds) {
  // Enough pushes to grow through several calendar rebuilds and drain
  // back down through the shrink threshold.
  for (std::uint64_t seed = 2000; seed < 2010; ++seed) {
    run_schedule(seed, 3000);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(EventQueueDiff, DuplicateTimestampsPopFifo) {
  EventQueue cal(EventQueueKind::kCalendar);
  for (EventId id = 1; id <= 64; ++id) cal.push(Event{5.0, id, [] {}});
  for (EventId id = 1; id <= 64; ++id) {
    ASSERT_EQ(cal.next_time(), 5.0);
    ASSERT_EQ(cal.pop().id, id);
  }
  EXPECT_TRUE(cal.empty());
}

TEST(EventQueueDiff, CancelOfCurrentMinimumAdvances) {
  EventQueue cal(EventQueueKind::kCalendar);
  cal.push(Event{1.0, 1, [] {}});
  cal.push(Event{2.0, 2, [] {}});
  ASSERT_EQ(cal.next_time(), 1.0);
  EXPECT_TRUE(cal.cancel(1));
  EXPECT_FALSE(cal.cancel(1));
  ASSERT_EQ(cal.next_time(), 2.0);
  EXPECT_EQ(cal.pop().id, 2u);
  EXPECT_TRUE(cal.empty());
}

TEST(EventQueueDiff, DuplicateIdThrowsLikeHeap) {
  EventQueue cal(EventQueueKind::kCalendar);
  cal.push(Event{1.0, 7, [] {}});
  EXPECT_THROW(cal.push(Event{2.0, 7, [] {}}), std::logic_error);
}

TEST(EventQueueDiff, EmptyPopAndNextTimeThrowLikeHeap) {
  EventQueue cal(EventQueueKind::kCalendar);
  EXPECT_THROW((void)cal.pop(), std::logic_error);
  EXPECT_THROW((void)cal.next_time(), std::logic_error);
  cal.push(Event{1.0, 1, [] {}});
  (void)cal.pop();
  EXPECT_THROW((void)cal.pop(), std::logic_error);
}

TEST(EventQueueDiff, InfiniteTimesLandInOverflowAndStillOrder) {
  constexpr SimTime kInf = std::numeric_limits<SimTime>::infinity();
  EventQueue cal(EventQueueKind::kCalendar);
  cal.push(Event{kInf, 1, [] {}});
  cal.push(Event{3.0, 2, [] {}});
  cal.push(Event{kInf, 3, [] {}});
  EXPECT_EQ(cal.pop().id, 2u);
  EXPECT_EQ(cal.next_time(), kInf);
  EXPECT_EQ(cal.pop().id, 1u);  // FIFO among equal (infinite) times
  EXPECT_EQ(cal.pop().id, 3u);
  EXPECT_TRUE(cal.empty());
}

TEST(EventQueueDiff, ClearThenReuse) {
  EventQueue cal(EventQueueKind::kCalendar);
  for (EventId id = 1; id <= 100; ++id) {
    cal.push(Event{static_cast<SimTime>(id) * 1e5, id, [] {}});
  }
  cal.clear();
  EXPECT_TRUE(cal.empty());
  EXPECT_EQ(cal.size(), 0u);
  cal.push(Event{0.25, 101, [] {}});
  EXPECT_EQ(cal.next_time(), 0.25);
  EXPECT_EQ(cal.pop().id, 101u);
}

}  // namespace
}  // namespace pushpull::des
