// Locks down the deterministic observability layer (src/obs/): the ring
// sink's seq/masking/drop semantics, bit-identity of traced vs untraced
// runs, exact sub-sequence filtering, conservation of the counter set,
// --jobs / --resume invariance of merged replication traces, and the
// committed golden trace fixtures.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/config.hpp"
#include "core/result.hpp"
#include "exp/replication.hpp"
#include "exp/scenario.hpp"
#include "obs/category.hpp"
#include "obs/config.hpp"
#include "obs/export.hpp"
#include "obs/observer.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/run_reporter.hpp"

namespace pushpull {
namespace {

using obs::Category;

// ------------------------------------------------------------- categories

TEST(Category, ParseAndFormatRoundTrip) {
  EXPECT_EQ(obs::parse_categories("all"), obs::kAllCategories);
  const std::uint32_t mask = obs::parse_categories("push,queue,fault");
  EXPECT_EQ(mask, obs::category_bit(Category::kPush) |
                      obs::category_bit(Category::kQueue) |
                      obs::category_bit(Category::kFault));
  // format emits the canonical fixed order regardless of input order.
  EXPECT_EQ(obs::format_categories(obs::parse_categories("fault,push,queue")),
            "push,queue,fault");
  EXPECT_EQ(obs::parse_categories(obs::format_categories(mask)), mask);
}

TEST(Category, FormatEdges) {
  EXPECT_EQ(obs::format_categories(obs::kAllCategories), "all");
  EXPECT_EQ(obs::format_categories(0), "none");
  EXPECT_EQ(obs::format_categories(obs::category_bit(Category::kLadder)),
            "ladder");
}

TEST(Category, ParseRejectsUnknownAndEmpty) {
  EXPECT_THROW((void)obs::parse_categories("push,bogus"),
               std::invalid_argument);
  EXPECT_THROW((void)obs::parse_categories(""), std::invalid_argument);
}

// -------------------------------------------------------------- TraceSink

TEST(TraceSink, RejectsZeroCapacity) {
  EXPECT_THROW(obs::TraceSink(0, obs::kAllCategories), std::logic_error);
}

TEST(TraceSink, DropsOldestAtCapacity) {
  obs::TraceSink sink(4, obs::kAllCategories);
  for (int i = 0; i < 6; ++i) {
    sink.record(static_cast<double>(i), Category::kQueue, "e",
                static_cast<std::uint64_t>(i), 0, 0.0);
  }
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.emitted(), 6u);
  EXPECT_EQ(sink.dropped(), 2u);
  const auto events = sink.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // The two oldest (seq 0, 1) were evicted; the window is the most recent.
  EXPECT_EQ(events.front().seq, 2u);
  EXPECT_EQ(events.back().seq, 5u);
}

TEST(TraceSink, MaskedCategoriesConsumeSeqWithoutStorage) {
  obs::TraceSink sink(16, obs::category_bit(Category::kPush));
  sink.record(1.0, Category::kPull, "skipped", 0, 0, 0.0);
  sink.record(2.0, Category::kPush, "kept", 0, 0, 0.0);
  sink.record(3.0, Category::kFault, "skipped", 0, 0, 0.0);
  sink.record(4.0, Category::kPush, "kept", 0, 0, 0.0);
  EXPECT_EQ(sink.emitted(), 4u);  // every offer consumed a seq
  EXPECT_EQ(sink.dropped(), 0u);  // mask skips are not ring drops
  const auto events = sink.snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Stored events keep the seq they were offered with — the filtered
  // stream is an exact sub-sequence of the unfiltered one.
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[1].seq, 3u);
}

TEST(TraceSink, SnapshotSortsByTimeThenSeq) {
  obs::TraceSink sink(8, obs::kAllCategories);
  sink.record(5.0, Category::kQueue, "late", 0, 0, 0.0);
  sink.record(1.0, Category::kQueue, "early", 0, 0, 0.0);
  sink.record(1.0, Category::kQueue, "early2", 0, 0, 0.0);
  const auto events = sink.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_DOUBLE_EQ(events[0].time, 1.0);
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_DOUBLE_EQ(events[1].time, 1.0);
  EXPECT_EQ(events[1].seq, 2u);
  EXPECT_DOUBLE_EQ(events[2].time, 5.0);
}

TEST(TraceSink, ClearRestartsSequenceNumbers) {
  obs::TraceSink sink(4, obs::kAllCategories);
  sink.record(1.0, Category::kQueue, "e", 0, 0, 0.0);
  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.emitted(), 0u);
  sink.record(2.0, Category::kQueue, "e", 0, 0, 0.0);
  EXPECT_EQ(sink.snapshot().front().seq, 0u);
}

TEST(Tracer, DefaultConstructedIsInert) {
  const obs::Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  // The disabled path is a null check; emitting must be a no-op, not UB.
  tracer.emit<Category::kQueue>(1.0, "nobody_listens", 1, 2, 3.0);
}

// -------------------------------------------------------------- ObsConfig

TEST(ObsConfig, ValidatesCapacityAndMask) {
  obs::ObsConfig ok;
  ok.enabled = true;
  ok.validate();

  obs::ObsConfig zero_cap;
  zero_cap.trace_capacity = 0;
  EXPECT_THROW(zero_cap.validate(), std::logic_error);

  obs::ObsConfig bad_mask;
  bad_mask.categories = 0x400u;  // outside kAllCategories
  EXPECT_THROW(bad_mask.validate(), std::logic_error);
}

// ----------------------------------------------------------------- export

TEST(Export, HeaderNamesSchemaAndMask) {
  const std::string header =
      obs::render_header(obs::kAllCategories, 65536);
  EXPECT_NE(header.find("\"schema\":\"obs1\""), std::string::npos);
  EXPECT_NE(header.find("\"categories\":\"all\""), std::string::npos);
  EXPECT_NE(header.find("\"cap\":65536"), std::string::npos);
  EXPECT_EQ(header.back(), '\n');
}

TEST(Export, SingleRunChunkOmitsRepKey) {
  obs::ObsReport report;
  report.enabled = true;
  report.categories = obs::kAllCategories;
  report.events.push_back(
      obs::TraceEvent{1.5, 0, Category::kPush, "tx_start", 7, 2, 0.25});
  const std::string chunk = obs::render_chunk(report, obs::kNoRep);
  EXPECT_EQ(chunk.find("\"rep\""), std::string::npos);
  EXPECT_NE(chunk.find("\"ev\":\"tx_start\""), std::string::npos);
  EXPECT_NE(chunk.find("\"cat\":\"push\""), std::string::npos);
}

TEST(Export, ReplicationChunkTagsEveryLine) {
  obs::ObsReport report;
  report.enabled = true;
  report.events.push_back(
      obs::TraceEvent{0.0, 0, Category::kQueue, "enter", 1, 0, 1.0});
  std::istringstream lines(obs::render_chunk(report, 3));
  std::size_t total = 0;
  for (std::string line; std::getline(lines, line); ++total) {
    EXPECT_NE(line.find("\"rep\":3"), std::string::npos) << line;
  }
  EXPECT_GT(total, 1u);  // events + counters + footer at minimum
}

// --------------------------------------------------------------- profiler

TEST(Profiler, AccumulatesScopesDeterministically) {
  obs::Profiler profiler;
  profiler.add_sample("b", 2.0);
  profiler.add_sample("a", 1.0);
  profiler.add_sample("b", 3.0);
  const auto rows = profiler.rows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].first, "a");  // std::map order, not insertion order
  EXPECT_EQ(rows[0].second.calls, 1u);
  EXPECT_EQ(rows[1].first, "b");
  EXPECT_EQ(rows[1].second.calls, 2u);
  EXPECT_DOUBLE_EQ(rows[1].second.total_ms, 5.0);
}

TEST(Profiler, ScopesMeasureAndNullProfilerIsInert) {
  obs::Profiler profiler;
  {
    const obs::ProfileScope scope(&profiler, "work");
  }
  {
    const obs::ProfileScope inert(nullptr, "ignored");
  }
  const auto rows = profiler.rows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].first, "work");
  EXPECT_EQ(rows[0].second.calls, 1u);
  EXPECT_GE(rows[0].second.total_ms, 0.0);
}

// ----------------------------------- differential: traced == untraced ----

exp::Scenario small_scenario() {
  exp::Scenario s;
  s.num_items = 50;
  s.num_requests = 4000;
  s.seed = 11;
  return s;
}

core::HybridConfig base_config() {
  core::HybridConfig c;
  c.cutoff = 15;
  c.alpha = 0.5;
  return c;
}

core::HybridConfig faulty_config() {
  core::HybridConfig c = base_config();
  c.fault.enabled = true;
  c.fault.channel.p_good_to_bad = 0.10;
  c.fault.channel.p_bad_to_good = 0.30;
  c.fault.channel.corrupt_bad = 0.5;
  c.fault.queue_capacity = 48;
  c.mean_patience = 120.0;
  return c;
}

core::HybridConfig chaos_config() {
  core::HybridConfig c = faulty_config();
  c.resilience.crash.enabled = true;
  c.resilience.crash.rate = 0.002;
  c.resilience.overload.enabled = true;
  return c;
}

core::HybridConfig traced(core::HybridConfig c,
                          std::uint32_t categories = obs::kAllCategories) {
  c.obs.enabled = true;
  c.obs.categories = categories;
  return c;
}

void expect_same_result(const core::SimResult& a, const core::SimResult& b) {
  ASSERT_EQ(a.per_class.size(), b.per_class.size());
  for (std::size_t c = 0; c < a.per_class.size(); ++c) {
    const auto& x = a.per_class[c];
    const auto& y = b.per_class[c];
    EXPECT_EQ(x.arrived, y.arrived) << "class " << c;
    EXPECT_EQ(x.served, y.served) << "class " << c;
    EXPECT_EQ(x.blocked, y.blocked) << "class " << c;
    EXPECT_EQ(x.abandoned, y.abandoned) << "class " << c;
    EXPECT_EQ(x.corrupted, y.corrupted) << "class " << c;
    EXPECT_EQ(x.retries, y.retries) << "class " << c;
    EXPECT_EQ(x.shed, y.shed) << "class " << c;
    EXPECT_EQ(x.lost, y.lost) << "class " << c;
    EXPECT_EQ(x.rejected, y.rejected) << "class " << c;
    EXPECT_EQ(x.stormed, y.stormed) << "class " << c;
    EXPECT_EQ(x.wait.count(), y.wait.count()) << "class " << c;
    EXPECT_EQ(x.wait.mean(), y.wait.mean()) << "class " << c;
    EXPECT_EQ(x.wait.variance(), y.wait.variance()) << "class " << c;
    EXPECT_EQ(x.wait.max(), y.wait.max()) << "class " << c;
  }
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.push_transmissions, b.push_transmissions);
  EXPECT_EQ(a.pull_transmissions, b.pull_transmissions);
  EXPECT_EQ(a.blocked_transmissions, b.blocked_transmissions);
  EXPECT_EQ(a.corrupted_push_transmissions, b.corrupted_push_transmissions);
  EXPECT_EQ(a.corrupted_pull_transmissions, b.corrupted_pull_transmissions);
  EXPECT_EQ(a.mean_pull_queue_len, b.mean_pull_queue_len);
  EXPECT_EQ(a.max_pull_queue_len, b.max_pull_queue_len);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.total_downtime, b.total_downtime);
  EXPECT_EQ(a.storm_rerequests, b.storm_rerequests);
  EXPECT_EQ(a.overload_transitions.size(), b.overload_transitions.size());
}

TEST(Differential, DefaultScenarioBitIdentical) {
  const auto built = small_scenario().build();
  const auto plain = exp::run_hybrid(built, base_config());
  const auto observed = exp::run_hybrid_observed(built, traced(base_config()));
  expect_same_result(plain, observed.result);
  EXPECT_TRUE(observed.obs.enabled);
  EXPECT_GT(observed.obs.events.size(), 0u);
}

TEST(Differential, FaultyChannelBitIdentical) {
  // The traced channel overload must consume the identical RNG draws.
  const auto built = small_scenario().build();
  const auto plain = exp::run_hybrid(built, faulty_config());
  const auto observed =
      exp::run_hybrid_observed(built, traced(faulty_config()));
  expect_same_result(plain, observed.result);
  EXPECT_GT(observed.obs.counters.fault_flips, 0u);
}

TEST(Differential, ChaosScenarioBitIdentical) {
  const auto built = small_scenario().build();
  const auto plain = exp::run_hybrid(built, chaos_config());
  const auto observed = exp::run_hybrid_observed(built, traced(chaos_config()));
  expect_same_result(plain, observed.result);
}

TEST(Differential, CategoryFilteringBitIdentical) {
  // Restricting the runtime mask only changes what the sink stores, never
  // what the simulation computes.
  const auto built = small_scenario().build();
  const auto plain = exp::run_hybrid(built, faulty_config());
  const auto observed = exp::run_hybrid_observed(
      built, traced(faulty_config(), obs::category_bit(Category::kFault)));
  expect_same_result(plain, observed.result);
  for (const auto& e : observed.obs.events) {
    EXPECT_EQ(e.category, Category::kFault);
  }
}

TEST(Differential, ObserverOffProducesEmptyReport) {
  const auto built = small_scenario().build();
  const auto observed = exp::run_hybrid_observed(built, base_config());
  EXPECT_FALSE(observed.obs.enabled);
  EXPECT_TRUE(observed.obs.events.empty());
  EXPECT_EQ(observed.obs.counters.server_arrivals, 0u);
}

// ------------------------------------------- report and conservation -----

void expect_conserved(const obs::CounterSet& c) {
  // Every arrival settles exactly once: delivered, blocked at the
  // bandwidth gate, abandoned, shed by the bounded queue, lost after
  // exhausting retries, or refused by ladder admission control.
  EXPECT_EQ(c.server_arrivals,
            c.server_served_push + c.server_served_pull + c.blocked_requests +
                c.server_abandoned + c.fault_shed + c.fault_lost +
                c.server_rejected);
  // The pull queue drains by the end of the run.
  EXPECT_EQ(c.queue_enter, c.queue_leave);
  EXPECT_GE(c.queue_peak, 1u);
  // Kernel bookkeeping: everything dispatched was scheduled first.
  EXPECT_LE(c.des_dispatched + c.des_cancelled, c.des_scheduled);
  EXPECT_GT(c.des_dispatched, 0u);
}

TEST(Observer, ReportCarriesCountersHistogramsAndEvents) {
  const auto built = small_scenario().build();
  const auto observed =
      exp::run_hybrid_observed(built, traced(faulty_config()));
  const obs::ObsReport& r = observed.obs;
  EXPECT_TRUE(r.enabled);
  EXPECT_EQ(r.categories, obs::kAllCategories);
  EXPECT_GT(r.emitted, 0u);
  expect_conserved(r.counters);

  // One pull-queue-length histogram plus one response histogram per class.
  ASSERT_EQ(r.histograms.size(), 1 + built.population.num_classes());
  EXPECT_EQ(r.histograms[0].name, "pull_queue_len");
  EXPECT_GT(r.histograms[0].count, 0u);
  for (std::size_t c = 0; c < built.population.num_classes(); ++c) {
    const auto& h = r.histograms[1 + c];
    EXPECT_EQ(h.name, "response.class" + std::to_string(c));
    EXPECT_GT(h.count, 0u);
    EXPECT_GE(h.p99, h.p50);
    EXPECT_GE(h.max, h.mean);
    EXPECT_GE(h.mean, h.min);
  }
  // Served counters agree with the response histogram populations.
  std::uint64_t responses = 0;
  for (std::size_t c = 0; c < built.population.num_classes(); ++c) {
    responses += r.histograms[1 + c].count;
  }
  EXPECT_EQ(responses,
            r.counters.server_served_push + r.counters.server_served_pull);
}

// --------------------------------------------- filtered sub-sequence -----

bool same_event(const obs::TraceEvent& a, const obs::TraceEvent& b) {
  return a.time == b.time && a.seq == b.seq && a.category == b.category &&
         std::string_view(a.name) == std::string_view(b.name) && a.a == b.a &&
         a.b == b.b && a.v == b.v;
}

TEST(Filtering, FilteredStreamIsExactSubsequence) {
  const auto built = small_scenario().build();
  const std::uint32_t mask = obs::category_bit(Category::kQueue) |
                             obs::category_bit(Category::kFault);
  // A capacity no run here can overflow: eviction would break the
  // sub-sequence relation by dropping different windows.
  auto big = [](core::HybridConfig c) {
    c.obs.trace_capacity = 1u << 20;
    return c;
  };
  const auto unfiltered =
      exp::run_hybrid_observed(built, big(traced(faulty_config())));
  const auto filtered =
      exp::run_hybrid_observed(built, big(traced(faulty_config(), mask)));
  ASSERT_EQ(unfiltered.obs.dropped, 0u);
  ASSERT_EQ(filtered.obs.dropped, 0u);
  // Same offers on both runs...
  EXPECT_EQ(unfiltered.obs.emitted, filtered.obs.emitted);

  // ...and the filtered stream is byte-for-byte the masked projection of
  // the unfiltered one, seq values included.
  std::vector<obs::TraceEvent> expected;
  for (const auto& e : unfiltered.obs.events) {
    if ((obs::category_bit(e.category) & mask) != 0) expected.push_back(e);
  }
  ASSERT_EQ(filtered.obs.events.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_TRUE(same_event(filtered.obs.events[i], expected[i]))
        << "event " << i;
  }
  EXPECT_GT(expected.size(), 0u);
  EXPECT_LT(expected.size(), unfiltered.obs.events.size());
}

// ------------------------------------------------------ property test ----

TEST(ObsProperty, FiveHundredSeededCases) {
  // 500 seeded tiny scenarios across the fault/patience/queue-cap/ladder
  // option grid. Pinned properties: event times non-decreasing with seq
  // strictly increasing, every stored event inside the runtime mask, and
  // the conservation identities of the counter set.
  constexpr std::size_t kCases = 500;
  for (std::size_t i = 0; i < kCases; ++i) {
    SCOPED_TRACE("case " + std::to_string(i));
    exp::Scenario s;
    s.num_items = 20 + (i % 7) * 5;
    s.num_requests = 150 + (i % 5) * 40;
    s.seed = 1000 + i;
    const auto built = s.build();

    core::HybridConfig c;
    c.cutoff = (i % 3) * 7;
    c.alpha = 0.25 * static_cast<double>(i % 4);
    c.seed = 77 + i;
    if (i % 2 == 1) {
      c.fault.enabled = true;
      c.fault.channel.p_good_to_bad = 0.08;
      c.fault.channel.p_bad_to_good = 0.30;
      c.fault.channel.corrupt_bad = 0.4;
    }
    if (i % 3 == 1) c.mean_patience = 60.0;
    if (i % 4 == 2) c.fault.queue_capacity = 24;
    if (i % 5 == 3) c.resilience.overload.enabled = true;
    c.obs.enabled = true;
    c.obs.trace_capacity = 1u << 18;
    if (i % 6 == 5) {
      c.obs.categories = obs::category_bit(Category::kQueue) |
                         obs::category_bit(Category::kPull);
    }

    const auto observed = exp::run_hybrid_observed(built, c);
    const obs::ObsReport& r = observed.obs;
    ASSERT_EQ(r.dropped, 0u);
    for (std::size_t k = 0; k < r.events.size(); ++k) {
      const auto& e = r.events[k];
      ASSERT_NE(obs::category_bit(e.category) & r.categories, 0u);
      if (k > 0) {
        ASSERT_GE(e.time, r.events[k - 1].time);
        ASSERT_GT(e.seq, r.events[k - 1].seq);
      }
    }
    expect_conserved(r.counters);
  }
}

// --------------------------------------------------- --jobs invariance ---

exp::Scenario rep_scenario() {
  exp::Scenario s;
  s.num_items = 40;
  s.num_requests = 1500;
  return s;
}

std::string merged_trace(std::size_t jobs, std::size_t reps,
                         runtime::RunReporter* reporter = nullptr,
                         const runtime::CheckpointStore* resume = nullptr) {
  core::HybridConfig config = base_config();
  std::ostringstream trace;
  exp::ReplicateOptions options;
  options.jobs = jobs;
  options.obs.enabled = true;
  options.trace_out = &trace;
  options.reporter = reporter;
  options.resume = resume;
  (void)exp::replicate_hybrid(rep_scenario(), config, reps, options);
  return trace.str();
}

TEST(ReplicationTrace, MergedStreamIdenticalAcrossJobs) {
  const std::string serial = merged_trace(1, 6);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, merged_trace(2, 6));
  EXPECT_EQ(serial, merged_trace(8, 6));
  // Header first, every subsequent line rep-tagged in index order.
  std::istringstream lines(serial);
  std::string header;
  ASSERT_TRUE(std::getline(lines, header));
  EXPECT_NE(header.find("\"schema\":\"obs1\""), std::string::npos);
  std::uint64_t last_rep = 0;
  for (std::string line; std::getline(lines, line);) {
    const auto pos = line.find("\"rep\":");
    ASSERT_NE(pos, std::string::npos) << line;
    const std::uint64_t rep = std::stoull(line.substr(pos + 6));
    EXPECT_GE(rep, last_rep);
    last_rep = rep;
  }
  EXPECT_EQ(last_rep, 5u);
}

TEST(ReplicationTrace, SurvivesKillAndResume) {
  const std::size_t reps = 6;
  std::ostringstream log;
  std::string expected;
  {
    runtime::RunReporter reporter(log);
    expected = merged_trace(2, reps, &reporter);
  }
  // Truncate the JSONL as a kill -9 would, resume from the remains.
  const std::string full = log.str();
  std::istringstream in(full.substr(0, (2 * full.size()) / 3));
  const auto checkpoint = runtime::CheckpointStore::load(in);
  EXPECT_LT(checkpoint.size(), reps);
  const std::string resumed = merged_trace(3, reps, nullptr, &checkpoint);
  EXPECT_EQ(expected, resumed);
}

TEST(ReplicationTrace, TracelessCheckpointRecomputesTrace) {
  // A checkpoint from a run WITHOUT tracing carries no trace chunks; a
  // traced resume must recompute those replications (deterministically)
  // instead of splicing silent gaps into the stream.
  const std::size_t reps = 4;
  std::ostringstream log;
  {
    runtime::RunReporter reporter(log);
    exp::ReplicateOptions options;
    options.reporter = &reporter;
    (void)exp::replicate_hybrid(rep_scenario(), base_config(), reps, options);
  }
  std::istringstream in(log.str());
  const auto checkpoint = runtime::CheckpointStore::load(in);
  ASSERT_EQ(checkpoint.size(), reps);

  const std::string fresh = merged_trace(1, reps);
  const std::string resumed = merged_trace(1, reps, nullptr, &checkpoint);
  EXPECT_EQ(fresh, resumed);
}

TEST(ReplicationTrace, SummaryUnchangedByTracing) {
  const auto scenario = rep_scenario();
  const auto plain =
      exp::replicate_hybrid(scenario, base_config(), 4);
  exp::ReplicateOptions options;
  options.obs.enabled = true;
  std::ostringstream trace;
  options.trace_out = &trace;
  const auto traced_summary =
      exp::replicate_hybrid(scenario, base_config(), 4, options);
  EXPECT_EQ(plain.overall_delay.mean(), traced_summary.overall_delay.mean());
  EXPECT_EQ(plain.total_cost.mean(), traced_summary.total_cost.mean());
  EXPECT_EQ(plain.blocking.mean(), traced_summary.blocking.mean());
}

// -------------------------------------------------- golden fixtures ------

#if defined(PUSHPULL_CLI_PATH) && defined(PUSHPULL_GOLDEN_DIR)

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Runs the real CLI binary writing a trace to a temp file and
/// byte-compares it against the committed fixture.
void expect_golden_trace(const std::string& args,
                         const std::string& golden_name) {
  const std::string tmp = "obs_golden_trace.jsonl";
  const std::string cmd = std::string(PUSHPULL_CLI_PATH) + " " + args +
                          " --trace " + tmp + " > /dev/null";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;
  const std::string golden =
      slurp(std::string(PUSHPULL_GOLDEN_DIR) + "/trace/" + golden_name);
  ASSERT_FALSE(golden.empty()) << "missing fixture " << golden_name;
  EXPECT_EQ(slurp(tmp), golden)
      << "trace drifted from golden " << golden_name;
  (void)std::remove(tmp.c_str());
}

TEST(GoldenTrace, DefaultScenario) {
  expect_golden_trace(
      "trace --items 12 --requests 60 --rate 2 --seed 3 --cutoff 5",
      "trace_default.jsonl");
}

TEST(GoldenTrace, FaultyChannel) {
  expect_golden_trace(
      "trace --items 12 --requests 60 --rate 2 --seed 5 --cutoff 5 --fault "
      "--fault-corrupt-bad 0.4",
      "trace_fault.jsonl");
}

#endif  // PUSHPULL_CLI_PATH && PUSHPULL_GOLDEN_DIR

}  // namespace
}  // namespace pushpull
