// Tests for the transient (uniformization) analysis of the hybrid
// birth–death chain.
#include <gtest/gtest.h>

#include <numeric>

#include "queueing/birth_death.hpp"

namespace pushpull::queueing {
namespace {

HybridBirthDeath chain() { return HybridBirthDeath(0.2, 2.0, 1.0, 80); }

TEST(Transient, RejectsNegativeTime) {
  const auto bd = chain();
  EXPECT_THROW((void)bd.transient(-1.0), std::invalid_argument);
}

TEST(Transient, AtTimeZeroIsEmptySystem) {
  const auto bd = chain();
  const auto dist = bd.transient(0.0);
  EXPECT_DOUBLE_EQ(dist[0], 1.0);  // state (0, 0)
  EXPECT_DOUBLE_EQ(std::accumulate(dist.begin(), dist.end(), 0.0), 1.0);
}

TEST(Transient, DistributionNormalizedAtAllTimes) {
  const auto bd = chain();
  for (double t : {0.1, 1.0, 10.0, 100.0, 1000.0}) {
    const auto dist = bd.transient(t);
    EXPECT_NEAR(std::accumulate(dist.begin(), dist.end(), 0.0), 1.0, 1e-9)
        << "t=" << t;
    for (double p : dist) EXPECT_GE(p, -1e-15);
  }
}

TEST(Transient, QueueGrowsFromEmptyStart) {
  const auto bd = chain();
  EXPECT_DOUBLE_EQ(bd.transient_pull_len(0.0), 0.0);
  const double early = bd.transient_pull_len(1.0);
  const double later = bd.transient_pull_len(20.0);
  EXPECT_GT(early, 0.0);
  EXPECT_GT(later, early);
}

TEST(Transient, ConvergesToStationary) {
  auto bd = chain();
  bd.solve();
  const double early = bd.distance_to_stationary(1.0);
  const double mid = bd.distance_to_stationary(20.0);
  const double late = bd.distance_to_stationary(400.0);
  EXPECT_GT(early, mid);
  EXPECT_GT(mid, late);
  EXPECT_LT(late, 0.01);
}

TEST(Transient, LongRunPullLenMatchesStationary) {
  auto bd = chain();
  bd.solve();
  EXPECT_NEAR(bd.transient_pull_len(500.0), bd.expected_pull_len(), 0.02);
}

TEST(Transient, DistanceRequiresSolve) {
  const auto bd = chain();
  EXPECT_THROW((void)bd.distance_to_stationary(1.0), std::logic_error);
}

TEST(Transient, HeavierLoadWarmsUpSlower) {
  // Warm-up sizing: the distance to stationarity at a fixed t is larger for
  // the more loaded system.
  HybridBirthDeath light(0.05, 2.0, 1.0, 80);
  HybridBirthDeath heavy(0.30, 2.0, 1.0, 80);
  light.solve();
  heavy.solve();
  const double t = 15.0;
  EXPECT_LT(light.distance_to_stationary(t),
            heavy.distance_to_stationary(t));
}

TEST(PaperEq5, DivergesFromNumericalSolution) {
  // Documented divergence: the paper's Eq. 5 closed form for E[L_pull]
  // evaluates NEGATIVE across the stable grid — its z-transform algebra
  // does not balance. This test pins the observation so a future fix to
  // the formula would be noticed.
  for (double lam : {0.05, 0.1, 0.2, 0.3}) {
    HybridBirthDeath bd(lam, 2.0, 1.0, 200);
    bd.solve();
    EXPECT_GT(bd.expected_pull_len(), 0.0);
    EXPECT_LT(bd.paper_eq5_expected_len(), 0.0) << "lambda=" << lam;
  }
}

}  // namespace
}  // namespace pushpull::queueing
