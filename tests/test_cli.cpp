// Tests for the command-line argument parser used by the pushpull tool.
#include <gtest/gtest.h>

#include "exp/cli.hpp"

namespace pushpull::exp {
namespace {

ArgParser parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParser, PositionalArguments) {
  const auto args = parse({"simulate", "extra"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "simulate");
  EXPECT_EQ(args.positional()[1], "extra");
}

TEST(ArgParser, KeyValueOptions) {
  const auto args = parse({"simulate", "--theta", "0.6", "--cutoff", "40"});
  EXPECT_DOUBLE_EQ(args.get_double("theta", 0.0), 0.6);
  EXPECT_EQ(args.get_size("cutoff", 0), 40u);
  EXPECT_EQ(args.positional().size(), 1u);
}

TEST(ArgParser, BooleanFlags) {
  const auto args = parse({"optimize", "--analytic", "--csv"});
  EXPECT_TRUE(args.has("analytic"));
  EXPECT_TRUE(args.has("csv"));
  EXPECT_FALSE(args.has("missing"));
}

TEST(ArgParser, FlagFollowedByOption) {
  const auto args = parse({"--csv", "--theta", "1.4"});
  EXPECT_TRUE(args.has("csv"));
  EXPECT_DOUBLE_EQ(args.get_double("theta", 0.0), 1.4);
}

TEST(ArgParser, DefaultsWhenAbsent) {
  const auto args = parse({"simulate"});
  EXPECT_DOUBLE_EQ(args.get_double("theta", 0.33), 0.33);
  EXPECT_EQ(args.get_size("cutoff", 7), 7u);
  EXPECT_EQ(args.get_u64("seed", 9), 9u);
  EXPECT_EQ(args.get_string("policy", "importance"), "importance");
}

TEST(ArgParser, StringValues) {
  const auto args = parse({"--policy", "rxw", "--out", "file.csv"});
  EXPECT_EQ(args.get_string("policy", ""), "rxw");
  EXPECT_EQ(args.get_string("out", ""), "file.csv");
}

TEST(ArgParser, RejectsMalformedNumbers) {
  const auto args = parse({"--theta", "abc", "--cutoff", "xyz"});
  EXPECT_THROW((void)args.get_double("theta", 0.0), std::invalid_argument);
  EXPECT_THROW((void)args.get_size("cutoff", 0), std::invalid_argument);
}

TEST(ArgParser, RejectsBareDoubleDash) {
  std::vector<const char*> argv = {"prog", "--"};
  EXPECT_THROW(ArgParser(2, argv.data()), std::invalid_argument);
}

TEST(ArgParser, RejectsRepeatedOption) {
  // Silently keeping either occurrence would reproduce the wrong run;
  // the diagnostic must name the offending flag.
  try {
    (void)parse({"--theta", "0.2", "--theta", "0.9"});
    FAIL() << "duplicate --theta accepted";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("--theta"), std::string::npos);
  }
}

TEST(ArgParser, RejectsRepeatedBooleanFlag) {
  EXPECT_THROW((void)parse({"--csv", "--csv"}), std::logic_error);
}

TEST(ArgParser, RepeatCheckDistinguishesFlags) {
  // Different flags never collide — only true repeats are rejected.
  const auto args = parse({"--theta", "0.2", "--alpha", "0.9"});
  EXPECT_DOUBLE_EQ(args.get_double("theta", 0.0), 0.2);
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0.0), 0.9);
}

TEST(ArgParser, NegativeNumbersAsValues) {
  // A negative number after an option key is its value, not a new flag.
  const auto args = parse({"--offset", "-3.5"});
  EXPECT_DOUBLE_EQ(args.get_double("offset", 0.0), -3.5);
}

TEST(ArgParser, GetJobsDefaultsToHardwareConcurrency) {
  const auto args = parse({"replicate"});
  EXPECT_GE(args.get_jobs("jobs"), 1u);
}

TEST(ArgParser, GetJobsExplicitValue) {
  const auto args = parse({"replicate", "--jobs", "4"});
  EXPECT_EQ(args.get_jobs("jobs"), 4u);
}

TEST(ArgParser, GetJobsRejectsExplicitZero) {
  // Auto is requested by *omitting* the flag; an explicit --jobs 0 is a
  // mistake and must fail loudly rather than silently meaning "auto".
  const auto args = parse({"replicate", "--jobs", "0"});
  try {
    (void)args.get_jobs("jobs");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--jobs"), std::string::npos);
  }
}

TEST(ArgParser, GetJobsRejectsGarbage) {
  const auto args = parse({"replicate", "--jobs", "lots"});
  EXPECT_THROW((void)args.get_jobs("jobs"), std::invalid_argument);
}

TEST(ArgParser, GetJobsRejectsMissingValue) {
  // `--jobs` with no value parses as a boolean flag; get_jobs must reject
  // the empty value instead of defaulting.
  const auto args = parse({"replicate", "--jobs"});
  EXPECT_THROW((void)args.get_jobs("jobs"), std::invalid_argument);
}

TEST(ArgParser, RejectsTrailingGarbageOnIntegers) {
  // std::stoull would silently parse "12abc" as 12; the parser must not.
  const auto args = parse({"--cutoff", "12abc"});
  EXPECT_THROW((void)args.get_size("cutoff", 0), std::invalid_argument);
}

TEST(ArgParser, RejectsNegativeCounts) {
  // std::stoull wraps "-5" to a huge unsigned value; the parser must not.
  const auto args = parse({"--cutoff", "-5"});
  EXPECT_THROW((void)args.get_size("cutoff", 0), std::invalid_argument);
}

TEST(ArgParser, RejectsTrailingGarbageOnDoubles) {
  const auto args = parse({"--theta", "0.6x"});
  EXPECT_THROW((void)args.get_double("theta", 0.0), std::invalid_argument);
}

TEST(ArgParser, RequireKnownAcceptsListedOptions) {
  const auto args = parse({"simulate", "--theta", "0.6", "--csv"});
  EXPECT_NO_THROW(args.require_known({"theta", "csv"}));
  EXPECT_NO_THROW(args.require_known({"theta"}, {"csv"}));
}

TEST(ArgParser, RequireKnownRejectsUnknownOption) {
  const auto args = parse({"simulate", "--cutof", "40"});
  try {
    args.require_known({"cutoff", "theta"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--cutof"), std::string::npos);
  }
}

TEST(ArgParser, PositiveDoubleReturnsFallbackWhenAbsent) {
  const auto args = parse({"loadtest"});
  EXPECT_DOUBLE_EQ(args.get_positive_double("duration", 50.0), 50.0);
}

TEST(ArgParser, PositiveDoubleAcceptsPositiveValues) {
  const auto args = parse({"loadtest", "--duration", "12.5"});
  EXPECT_DOUBLE_EQ(args.get_positive_double("duration", 50.0), 12.5);
}

TEST(ArgParser, PositiveDoubleRejectsZeroNegativeAndNonFinite) {
  for (const char* bad : {"0", "0.0", "-3", "-0.25", "inf", "nan"}) {
    const auto args = parse({"loadtest", "--duration", bad});
    EXPECT_THROW((void)args.get_positive_double("duration", 50.0),
                 std::invalid_argument)
        << "value: " << bad;
  }
}

TEST(ArgParser, PositiveDoubleRejectsGarble) {
  for (const char* bad : {"abc", "12abc", ""}) {
    const auto args = parse({"loadtest", "--duration", bad});
    EXPECT_THROW((void)args.get_positive_double("duration", 50.0),
                 std::invalid_argument)
        << "value: '" << bad << "'";
  }
}

TEST(ArgParser, PositiveDoubleErrorsAreLogicErrors) {
  // The CLI's catch-all handles std::exception, but callers that want to
  // distinguish usage errors from runtime failures catch std::logic_error;
  // std::invalid_argument IS-A std::logic_error.
  const auto args = parse({"loadtest", "--target-qps", "-1"});
  EXPECT_THROW((void)args.get_positive_double("target-qps", 5.0),
               std::logic_error);
}

TEST(ArgParser, PositiveDoubleNamesTheFlagAndValue) {
  const auto args = parse({"loadtest", "--target-qps", "0"});
  try {
    (void)args.get_positive_double("target-qps", 5.0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--target-qps"), std::string::npos);
    EXPECT_NE(what.find("'0'"), std::string::npos);
  }
}

TEST(ArgParser, NonnegativeDoubleReturnsFallbackWhenAbsent) {
  const auto args = parse({"chaos"});
  EXPECT_DOUBLE_EQ(args.get_nonnegative_double("spike-start", 0.0), 0.0);
}

TEST(ArgParser, NonnegativeDoubleAcceptsZeroAndPositive) {
  const auto zero = parse({"chaos", "--spike-start", "0"});
  EXPECT_DOUBLE_EQ(zero.get_nonnegative_double("spike-start", 7.0), 0.0);
  const auto positive = parse({"chaos", "--spike-start", "250.5"});
  EXPECT_DOUBLE_EQ(positive.get_nonnegative_double("spike-start", 7.0), 250.5);
}

TEST(ArgParser, NonnegativeDoubleRejectsNegativeNonFiniteAndGarble) {
  for (const char* bad : {"-3", "-0.25", "inf", "nan", "abc", "12abc", ""}) {
    const auto args = parse({"chaos", "--spike-duration", bad});
    EXPECT_THROW((void)args.get_nonnegative_double("spike-duration", 0.0),
                 std::invalid_argument)
        << "value: '" << bad << "'";
  }
}

TEST(ArgParser, NonnegativeDoubleNamesTheFlagAndValue) {
  const auto args = parse({"chaos", "--spike-duration", "-5"});
  try {
    (void)args.get_nonnegative_double("spike-duration", 0.0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--spike-duration"), std::string::npos);
    EXPECT_NE(what.find("'-5'"), std::string::npos);
  }
}

TEST(ArgParser, PositiveU64ReturnsFallbackWhenAbsent) {
  const auto args = parse({"loadtest"});
  EXPECT_EQ(args.get_positive_u64("pacers", 2), 2u);
}

TEST(ArgParser, PositiveU64AcceptsPositiveIntegers) {
  const auto args = parse({"loadtest", "--pacers", "8"});
  EXPECT_EQ(args.get_positive_u64("pacers", 1), 8u);
}

TEST(ArgParser, PositiveU64RejectsZeroSignsAndGarble) {
  for (const char* bad : {"0", "-1", "+4", "abc", "12abc", "3.5", ""}) {
    const auto args = parse({"loadtest", "--pacers", bad});
    EXPECT_THROW((void)args.get_positive_u64("pacers", 1),
                 std::logic_error)
        << "value: '" << bad << "'";
  }
}

}  // namespace
}  // namespace pushpull::exp
