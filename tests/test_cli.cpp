// Tests for the command-line argument parser used by the pushpull tool.
#include <gtest/gtest.h>

#include "exp/cli.hpp"

namespace pushpull::exp {
namespace {

ArgParser parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParser, PositionalArguments) {
  const auto args = parse({"simulate", "extra"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "simulate");
  EXPECT_EQ(args.positional()[1], "extra");
}

TEST(ArgParser, KeyValueOptions) {
  const auto args = parse({"simulate", "--theta", "0.6", "--cutoff", "40"});
  EXPECT_DOUBLE_EQ(args.get_double("theta", 0.0), 0.6);
  EXPECT_EQ(args.get_size("cutoff", 0), 40u);
  EXPECT_EQ(args.positional().size(), 1u);
}

TEST(ArgParser, BooleanFlags) {
  const auto args = parse({"optimize", "--analytic", "--csv"});
  EXPECT_TRUE(args.has("analytic"));
  EXPECT_TRUE(args.has("csv"));
  EXPECT_FALSE(args.has("missing"));
}

TEST(ArgParser, FlagFollowedByOption) {
  const auto args = parse({"--csv", "--theta", "1.4"});
  EXPECT_TRUE(args.has("csv"));
  EXPECT_DOUBLE_EQ(args.get_double("theta", 0.0), 1.4);
}

TEST(ArgParser, DefaultsWhenAbsent) {
  const auto args = parse({"simulate"});
  EXPECT_DOUBLE_EQ(args.get_double("theta", 0.33), 0.33);
  EXPECT_EQ(args.get_size("cutoff", 7), 7u);
  EXPECT_EQ(args.get_u64("seed", 9), 9u);
  EXPECT_EQ(args.get_string("policy", "importance"), "importance");
}

TEST(ArgParser, StringValues) {
  const auto args = parse({"--policy", "rxw", "--out", "file.csv"});
  EXPECT_EQ(args.get_string("policy", ""), "rxw");
  EXPECT_EQ(args.get_string("out", ""), "file.csv");
}

TEST(ArgParser, RejectsMalformedNumbers) {
  const auto args = parse({"--theta", "abc", "--cutoff", "xyz"});
  EXPECT_THROW((void)args.get_double("theta", 0.0), std::invalid_argument);
  EXPECT_THROW((void)args.get_size("cutoff", 0), std::invalid_argument);
}

TEST(ArgParser, RejectsBareDoubleDash) {
  std::vector<const char*> argv = {"prog", "--"};
  EXPECT_THROW(ArgParser(2, argv.data()), std::invalid_argument);
}

TEST(ArgParser, LastValueWinsOnRepeat) {
  const auto args = parse({"--theta", "0.2", "--theta", "0.9"});
  EXPECT_DOUBLE_EQ(args.get_double("theta", 0.0), 0.9);
}

TEST(ArgParser, NegativeNumbersAsValues) {
  // A negative number after an option key is its value, not a new flag.
  const auto args = parse({"--offset", "-3.5"});
  EXPECT_DOUBLE_EQ(args.get_double("offset", 0.0), -3.5);
}

TEST(ArgParser, GetJobsDefaultsToHardwareConcurrency) {
  const auto args = parse({"replicate"});
  EXPECT_GE(args.get_jobs("jobs"), 1u);
}

TEST(ArgParser, GetJobsExplicitValue) {
  const auto args = parse({"replicate", "--jobs", "4"});
  EXPECT_EQ(args.get_jobs("jobs"), 4u);
}

TEST(ArgParser, GetJobsZeroMeansAuto) {
  const auto args = parse({"replicate", "--jobs", "0"});
  EXPECT_GE(args.get_jobs("jobs"), 1u);
}

TEST(ArgParser, GetJobsRejectsGarbage) {
  const auto args = parse({"replicate", "--jobs", "lots"});
  EXPECT_THROW((void)args.get_jobs("jobs"), std::invalid_argument);
}

}  // namespace
}  // namespace pushpull::exp
