// Unit tests for the random-number substrate: engines, uniform helpers,
// exponential/Poisson variates, the alias table and the Zipf distribution.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "rng/alias_table.hpp"
#include "rng/exponential.hpp"
#include "rng/poisson.hpp"
#include "rng/splitmix64.hpp"
#include "rng/stream.hpp"
#include "rng/uniform.hpp"
#include "rng/xoshiro256ss.hpp"
#include "rng/zipf.hpp"

namespace pushpull::rng {
namespace {

// ------------------------------------------------------------------ engines

TEST(SplitMix64, MatchesReferenceSequence) {
  // Reference values from the published splitmix64.c with seed 1234567.
  SplitMix64 sm(1234567);
  EXPECT_EQ(sm(), 6457827717110365317ULL);
  EXPECT_EQ(sm(), 3203168211198807973ULL);
  EXPECT_EQ(sm(), 9817491932198370423ULL);
}

TEST(SplitMix64, MixIsStateless) {
  EXPECT_EQ(SplitMix64::mix(42), SplitMix64::mix(42));
  EXPECT_NE(SplitMix64::mix(42), SplitMix64::mix(43));
}

TEST(Xoshiro256ss, DeterministicForSeed) {
  Xoshiro256ss a(99);
  Xoshiro256ss b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256ss, DifferentSeedsDiffer) {
  Xoshiro256ss a(1);
  Xoshiro256ss b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro256ss, JumpChangesStream) {
  Xoshiro256ss a(7);
  Xoshiro256ss b(7);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro256ss, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256ss::min() == 0);
  static_assert(Xoshiro256ss::max() == ~std::uint64_t{0});
  SUCCEED();
}

// ------------------------------------------------------------------ uniform

TEST(Uniform, Uniform01InRange) {
  Xoshiro256ss eng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = uniform01(eng);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Uniform, Uniform01MeanIsHalf) {
  Xoshiro256ss eng(4);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += uniform01(eng);
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Uniform, UniformRangeRespected) {
  Xoshiro256ss eng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = uniform(eng, -2.5, 7.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Uniform, UniformBelowBounds) {
  Xoshiro256ss eng(6);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(uniform_below(eng, 17), 17u);
  }
}

TEST(Uniform, UniformBelowDegenerate) {
  Xoshiro256ss eng(7);
  EXPECT_EQ(uniform_below(eng, 0), 0u);
  EXPECT_EQ(uniform_below(eng, 1), 0u);
}

TEST(Uniform, UniformBelowIsUnbiased) {
  Xoshiro256ss eng(8);
  std::array<int, 5> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[uniform_below(eng, 5)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.01);
  }
}

TEST(Uniform, UniformIntCoversClosedRange) {
  Xoshiro256ss eng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = uniform_int(eng, -3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

// -------------------------------------------------------------- exponential

TEST(Exponential, MeanMatchesRate) {
  Xoshiro256ss eng(10);
  const double rate = 2.5;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += exponential(eng, rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
}

TEST(Exponential, AlwaysNonNegative) {
  Xoshiro256ss eng(11);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(exponential(eng, 0.1), 0.0);
  }
}

TEST(Exponential, MemorylessVarianceMatches) {
  Xoshiro256ss eng(12);
  const double rate = 1.5;
  const int n = 200000;
  double sum = 0.0;
  double sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = exponential(eng, rate);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(var, 1.0 / (rate * rate), 0.02);
}

// ------------------------------------------------------------------ poisson

TEST(Poisson, SmallMeanMatches) {
  Xoshiro256ss eng(13);
  const double mean = 1.0;
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(poisson(eng, mean));
  EXPECT_NEAR(sum / n, mean, 0.01);
}

TEST(Poisson, LargeMeanUsesSplitAndMatches) {
  Xoshiro256ss eng(14);
  const double mean = 100.0;  // forces the recursive split path
  const int n = 20000;
  double sum = 0.0;
  double sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = static_cast<double>(poisson(eng, mean));
    sum += x;
    sumsq += x * x;
  }
  const double m = sum / n;
  const double var = sumsq / n - m * m;
  EXPECT_NEAR(m, mean, 0.5);
  EXPECT_NEAR(var, mean, 3.0);  // Poisson: variance == mean
}

TEST(Poisson, ZeroIsPossibleAtSmallMean) {
  Xoshiro256ss eng(15);
  bool saw_zero = false;
  for (int i = 0; i < 1000 && !saw_zero; ++i) {
    saw_zero = (poisson(eng, 0.5) == 0);
  }
  EXPECT_TRUE(saw_zero);
}

// -------------------------------------------------------------- alias table

TEST(AliasTable, RejectsBadInput) {
  EXPECT_THROW(AliasTable(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(AliasTable(std::vector<double>{0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(AliasTable(std::vector<double>{1.0, -0.5}),
               std::invalid_argument);
}

TEST(AliasTable, NormalizesProbabilities) {
  const std::vector<double> w = {2.0, 6.0, 2.0};
  AliasTable table(w);
  EXPECT_NEAR(table.probability(0), 0.2, 1e-12);
  EXPECT_NEAR(table.probability(1), 0.6, 1e-12);
  EXPECT_NEAR(table.probability(2), 0.2, 1e-12);
}

TEST(AliasTable, SampleFrequenciesMatchWeights) {
  const std::vector<double> w = {1.0, 2.0, 3.0, 4.0};
  AliasTable table(w);
  Xoshiro256ss eng(16);
  std::array<int, 4> counts{};
  const int n = 400000;
  for (int i = 0; i < n; ++i) ++counts[table.sample(eng)];
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, w[i] / 10.0, 0.005);
  }
}

TEST(AliasTable, ZeroWeightNeverSampled) {
  const std::vector<double> w = {0.0, 1.0, 0.0, 1.0};
  AliasTable table(w);
  Xoshiro256ss eng(17);
  for (int i = 0; i < 10000; ++i) {
    const auto s = table.sample(eng);
    EXPECT_TRUE(s == 1 || s == 3);
  }
}

TEST(AliasTable, SingleColumn) {
  AliasTable table(std::vector<double>{3.0});
  Xoshiro256ss eng(18);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.sample(eng), 0u);
}

// --------------------------------------------------------------------- zipf

TEST(Zipf, RejectsBadInput) {
  EXPECT_THROW(ZipfDistribution(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfDistribution(10, -0.1), std::invalid_argument);
}

TEST(Zipf, PmfSumsToOne) {
  for (double theta : {0.0, 0.2, 0.6, 1.0, 1.4}) {
    ZipfDistribution zipf(100, theta);
    double sum = 0.0;
    for (std::size_t i = 0; i < zipf.size(); ++i) sum += zipf.pmf(i);
    EXPECT_NEAR(sum, 1.0, 1e-12) << "theta=" << theta;
  }
}

TEST(Zipf, ThetaZeroIsUniform) {
  ZipfDistribution zipf(50, 0.0);
  for (std::size_t i = 0; i < zipf.size(); ++i) {
    EXPECT_NEAR(zipf.pmf(i), 1.0 / 50.0, 1e-12);
  }
}

TEST(Zipf, PmfIsNonIncreasingInRank) {
  ZipfDistribution zipf(100, 0.8);
  for (std::size_t i = 1; i < zipf.size(); ++i) {
    EXPECT_GE(zipf.pmf(i - 1), zipf.pmf(i));
  }
}

TEST(Zipf, HigherThetaIsMoreSkewed) {
  ZipfDistribution mild(100, 0.2);
  ZipfDistribution steep(100, 1.4);
  EXPECT_GT(steep.pmf(0), mild.pmf(0));
  EXPECT_LT(steep.pmf(99), mild.pmf(99));
}

TEST(Zipf, PmfMatchesFormula) {
  const double theta = 0.6;
  ZipfDistribution zipf(10, theta);
  double norm = 0.0;
  for (int j = 1; j <= 10; ++j) norm += std::pow(1.0 / j, theta);
  for (std::size_t i = 0; i < 10; ++i) {
    const double expected =
        std::pow(1.0 / static_cast<double>(i + 1), theta) / norm;
    EXPECT_NEAR(zipf.pmf(i), expected, 1e-12);
  }
}

TEST(Zipf, CdfEndsAtOne) {
  ZipfDistribution zipf(37, 1.1);
  EXPECT_DOUBLE_EQ(zipf.cdf(36), 1.0);
  for (std::size_t i = 1; i < zipf.size(); ++i) {
    EXPECT_GE(zipf.cdf(i), zipf.cdf(i - 1));
  }
}

TEST(Zipf, SampleFrequenciesMatchPmf) {
  ZipfDistribution zipf(20, 0.9);
  Xoshiro256ss eng(19);
  std::vector<int> counts(20, 0);
  const int n = 400000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(eng)];
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, zipf.pmf(i), 0.005);
  }
}

// ------------------------------------------------------------------ streams

TEST(StreamFactory, SameNameSameStream) {
  StreamFactory streams(77);
  auto a = streams.stream("arrivals");
  auto b = streams.stream("arrivals");
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a(), b());
}

TEST(StreamFactory, DifferentNamesIndependent) {
  StreamFactory streams(77);
  auto a = streams.stream("arrivals");
  auto b = streams.stream("lengths");
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(StreamFactory, DifferentSeedsIndependent) {
  auto a = StreamFactory(1).stream("x");
  auto b = StreamFactory(2).stream("x");
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(StreamFactory, NumberedStreamsIndependent) {
  StreamFactory streams(5);
  auto a = streams.stream(std::uint64_t{0});
  auto b = streams.stream(std::uint64_t{1});
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace pushpull::rng
