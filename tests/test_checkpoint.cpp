// Crash-safe checkpoint/resume: hexfloat round-trip, tolerant JSONL
// parsing (truncated final lines), Welford state restoration, and
// kill-and-resume producing bit-identical replication summaries.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "exp/replication.hpp"
#include "exp/sweep.hpp"
#include "metrics/welford.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/run_reporter.hpp"

namespace pushpull {
namespace {

// --- double encoding ------------------------------------------------------

TEST(EncodeDouble, RoundTripsExactly) {
  for (const double v : {0.0, 1.0, -1.0, 1.0 / 3.0, 76.82771234567891,
                         1e-300, -1e300, 0.1, std::nextafter(2.0, 3.0)}) {
    EXPECT_EQ(runtime::decode_double(runtime::encode_double(v)), v)
        << "value " << v;
  }
}

TEST(EncodeDouble, AcceptsPlainDecimal) {
  EXPECT_DOUBLE_EQ(runtime::decode_double("2.5"), 2.5);
}

TEST(EncodeDouble, RejectsMalformedTokens) {
  EXPECT_THROW((void)runtime::decode_double(""), std::invalid_argument);
  EXPECT_THROW((void)runtime::decode_double("abc"), std::invalid_argument);
  EXPECT_THROW((void)runtime::decode_double("1.5junk"),
               std::invalid_argument);
}

// --- Welford restore ------------------------------------------------------

TEST(WelfordRestore, RoundTripsInternalStateBitExactly) {
  metrics::Welford w;
  for (const double x : {3.1, -2.7, 0.4, 19.0, 5.5}) w.add(x);
  const metrics::Welford r = metrics::Welford::restore(
      w.count(), w.mean(), w.m2(), w.sum(), w.min(), w.max());
  EXPECT_EQ(r.count(), w.count());
  EXPECT_EQ(r.mean(), w.mean());
  EXPECT_EQ(r.m2(), w.m2());
  EXPECT_EQ(r.sum(), w.sum());
  EXPECT_EQ(r.min(), w.min());
  EXPECT_EQ(r.max(), w.max());
  // Merging restored state must behave exactly like merging the original.
  metrics::Welford a, b;
  a.add(1.0);
  b.add(1.0);
  a.merge(w);
  b.merge(r);
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.variance(), b.variance());
}

TEST(WelfordRestore, ZeroCountYieldsFreshAccumulator) {
  const metrics::Welford w = metrics::Welford::restore(0, 9.9, 9.9, 9.9,
                                                       9.9, 9.9);
  EXPECT_TRUE(w.empty());
  EXPECT_EQ(w.mean(), 0.0);
  metrics::Welford other;
  other.add(2.0);
  metrics::Welford merged = w;
  merged.merge(other);
  EXPECT_EQ(merged.count(), 1u);
}

// --- JSONL parsing --------------------------------------------------------

TEST(CheckpointStore, LoadsPayloadRecords) {
  std::istringstream in(
      "{\"event\":\"run_start\",\"label\":\"replicate\",\"jobs\":3,"
      "\"workers\":1}\n"
      "{\"event\":\"payload\",\"id\":0,\"payload\":\"alpha\"}\n"
      "{\"event\":\"job\",\"id\":0,\"wall_ms\":1.000,\"outcome\":\"ok\"}\n"
      "{\"event\":\"payload\",\"id\":2,\"payload\":\"gamma\"}\n");
  const auto store = runtime::CheckpointStore::load(in);
  EXPECT_EQ(store.size(), 2u);
  ASSERT_NE(store.find(0), nullptr);
  EXPECT_EQ(*store.find(0), "alpha");
  EXPECT_EQ(store.find(1), nullptr);
  ASSERT_NE(store.find(2), nullptr);
  EXPECT_EQ(*store.find(2), "gamma");
}

TEST(CheckpointStore, SkipsTruncatedFinalLine) {
  // A crash mid-append leaves the last record without its closing brace
  // (or even mid-payload); the reader must drop it, not trust it.
  std::istringstream in(
      "{\"event\":\"payload\",\"id\":0,\"payload\":\"alpha\"}\n"
      "{\"event\":\"payload\",\"id\":1,\"payload\":\"bet");
  const auto store = runtime::CheckpointStore::load(in);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.find(1), nullptr);
}

TEST(CheckpointStore, SkipsGarbageAndNonPayloadLines) {
  std::istringstream in(
      "not json at all\n"
      "{\"event\":\"job\",\"id\":7,\"wall_ms\":1.000,\"outcome\":\"ok\"}\n"
      "{\"event\":\"payload\",\"id\":5}\n"
      "\n"
      "{\"event\":\"payload\",\"id\":4,\"payload\":\"ok\"}\n");
  const auto store = runtime::CheckpointStore::load(in);
  EXPECT_EQ(store.size(), 1u);
  ASSERT_NE(store.find(4), nullptr);
  EXPECT_EQ(*store.find(4), "ok");
}

TEST(CheckpointStore, LastPayloadWinsOnRepeatedId) {
  // A resumed run appends to the same file, so a job that re-ran after an
  // unparseable checkpoint has two records; the newest is the valid one.
  std::istringstream in(
      "{\"event\":\"payload\",\"id\":3,\"payload\":\"old\"}\n"
      "{\"event\":\"payload\",\"id\":3,\"payload\":\"new\"}\n");
  const auto store = runtime::CheckpointStore::load(in);
  ASSERT_NE(store.find(3), nullptr);
  EXPECT_EQ(*store.find(3), "new");
}

TEST(CheckpointStore, MissingFileYieldsEmptyStore) {
  const auto store =
      runtime::CheckpointStore::load_file("/nonexistent/progress.jsonl");
  EXPECT_TRUE(store.empty());
}

TEST(CheckpointStore, RoundTripsThroughRunReporter) {
  std::ostringstream out;
  runtime::RunReporter reporter(out);
  reporter.run_started("replicate", 2, 1);
  reporter.job_payload(0, "rp1 3 " + runtime::encode_double(1.0 / 3.0));
  reporter.job_finished(0, 1.0, true);
  reporter.job_payload(1, "with \"quotes\" and \\slashes\\");
  std::istringstream in(out.str());
  const auto store = runtime::CheckpointStore::load(in);
  ASSERT_EQ(store.size(), 2u);
  EXPECT_EQ(*store.find(0), "rp1 3 " + runtime::encode_double(1.0 / 3.0));
  EXPECT_EQ(*store.find(1), "with \"quotes\" and \\slashes\\");
}

// --- kill-and-resume ------------------------------------------------------

exp::Scenario tiny_scenario() {
  exp::Scenario s;
  s.num_items = 40;
  s.num_requests = 2000;
  return s;
}

void expect_same_summary(const exp::ReplicationSummary& a,
                         const exp::ReplicationSummary& b) {
  EXPECT_EQ(a.overall_delay.mean(), b.overall_delay.mean());
  EXPECT_EQ(a.overall_delay.variance(), b.overall_delay.variance());
  EXPECT_EQ(a.total_cost.mean(), b.total_cost.mean());
  EXPECT_EQ(a.blocking.mean(), b.blocking.mean());
  EXPECT_EQ(a.pull_queue_len.mean(), b.pull_queue_len.mean());
  ASSERT_EQ(a.class_delay.size(), b.class_delay.size());
  for (std::size_t c = 0; c < a.class_delay.size(); ++c) {
    EXPECT_EQ(a.class_delay[c].mean(), b.class_delay[c].mean());
    EXPECT_EQ(a.class_delay[c].variance(), b.class_delay[c].variance());
  }
}

/// Runs replicate_hybrid with a reporter, "kills" the run by keeping only
/// the first `keep_chars` characters of the JSONL (as a crash would), then
/// resumes with `resume_jobs` workers and checks bit-identity.
void kill_and_resume(std::size_t jobs, std::size_t resume_jobs) {
  const auto scenario = tiny_scenario();
  core::HybridConfig config;
  config.cutoff = 15;
  const std::size_t reps = 6;

  exp::ReplicateOptions plain;
  plain.jobs = jobs;
  const auto expected =
      exp::replicate_hybrid(scenario, config, reps, plain);

  // Full instrumented run to obtain a realistic JSONL...
  std::ostringstream log;
  {
    runtime::RunReporter reporter(log);
    exp::ReplicateOptions opts;
    opts.jobs = jobs;
    opts.reporter = &reporter;
    const auto logged =
        exp::replicate_hybrid(scenario, config, reps, opts);
    expect_same_summary(expected, logged);
  }

  // ...then truncate it mid-record, as a kill -9 would.
  const std::string full = log.str();
  const std::string truncated = full.substr(0, (2 * full.size()) / 3);
  std::istringstream in(truncated);
  const auto checkpoint = runtime::CheckpointStore::load(in);
  EXPECT_LT(checkpoint.size(), reps);  // some work genuinely remains

  std::ostringstream resumed_log;
  runtime::RunReporter reporter(resumed_log);
  exp::ReplicateOptions resume_opts;
  resume_opts.jobs = resume_jobs;
  resume_opts.reporter = &reporter;
  resume_opts.resume = &checkpoint;
  const auto resumed =
      exp::replicate_hybrid(scenario, config, reps, resume_opts);
  expect_same_summary(expected, resumed);
}

TEST(Resume, KilledSerialRunResumesBitIdentically) {
  kill_and_resume(/*jobs=*/1, /*resume_jobs=*/1);
}

TEST(Resume, KilledParallelRunResumesBitIdentically) {
  kill_and_resume(/*jobs=*/3, /*resume_jobs=*/3);
}

TEST(Resume, WorkerCountMayChangeAcrossResume) {
  kill_and_resume(/*jobs=*/1, /*resume_jobs=*/4);
}

TEST(Resume, FullCheckpointRecomputesNothing) {
  const auto scenario = tiny_scenario();
  core::HybridConfig config;
  config.cutoff = 15;
  const std::size_t reps = 4;

  std::ostringstream log;
  exp::ReplicationSummary expected;
  {
    runtime::RunReporter reporter(log);
    exp::ReplicateOptions opts;
    opts.reporter = &reporter;
    expected = exp::replicate_hybrid(scenario, config, reps, opts);
  }
  std::istringstream in(log.str());
  const auto checkpoint = runtime::CheckpointStore::load(in);
  ASSERT_EQ(checkpoint.size(), reps);

  // No reporter this time: if a replication re-ran it could not be
  // checkpointed, and the summaries must still match from payloads alone.
  exp::ReplicateOptions resume_opts;
  resume_opts.resume = &checkpoint;
  const auto resumed =
      exp::replicate_hybrid(scenario, config, reps, resume_opts);
  expect_same_summary(expected, resumed);
}

TEST(Resume, CorruptPayloadFailsLoudly) {
  const auto scenario = tiny_scenario();
  core::HybridConfig config;
  config.cutoff = 15;
  std::istringstream in(
      "{\"event\":\"payload\",\"id\":0,\"payload\":\"zz9 not-a-partial\"}\n");
  const auto checkpoint = runtime::CheckpointStore::load(in);
  exp::ReplicateOptions opts;
  opts.resume = &checkpoint;
  EXPECT_THROW((void)exp::replicate_hybrid(scenario, config, 2, opts),
               std::runtime_error);
}

// --- checkpoint format versioning ----------------------------------------

TEST(CheckpointStore, ParsesContextRecord) {
  std::ostringstream out;
  runtime::RunReporter reporter(out);
  reporter.run_started("replicate", 2, 1);
  reporter.run_context("rp1", 0xDEADBEEFCAFEULL);
  reporter.job_payload(0, "rp1 stub");
  std::istringstream in(out.str());
  const auto store = runtime::CheckpointStore::load(in);
  EXPECT_TRUE(store.has_context());
  EXPECT_EQ(store.schema(), "rp1");
  EXPECT_EQ(store.fingerprint(), 0xDEADBEEFCAFEULL);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_NO_THROW(store.require("rp1", 0xDEADBEEFCAFEULL));
}

TEST(CheckpointStore, RequireAcceptsLegacyFileWithoutContext) {
  std::istringstream in(
      "{\"event\":\"payload\",\"id\":0,\"payload\":\"rp1 stub\"}\n");
  const auto store = runtime::CheckpointStore::load(in);
  EXPECT_FALSE(store.has_context());
  // Pre-versioning files carry no context; they must keep resuming.
  EXPECT_NO_THROW(store.require("rp1", 12345));
}

TEST(CheckpointStore, RequireRejectsSchemaAndFingerprintMismatch) {
  std::ostringstream out;
  runtime::RunReporter reporter(out);
  reporter.run_context("rp1", 42);
  std::istringstream in(out.str());
  const auto store = runtime::CheckpointStore::load(in);
  EXPECT_THROW(store.require("rp2", 42), std::runtime_error);
  EXPECT_THROW(store.require("rp1", 43), std::runtime_error);
  EXPECT_NO_THROW(store.require("rp1", 42));
}

TEST(CheckpointStore, TruncatedContextRecordIsIgnored) {
  std::istringstream in(
      "{\"event\":\"context\",\"schema\":\"rp1\",\"fingerprint\":42");
  const auto store = runtime::CheckpointStore::load(in);
  EXPECT_FALSE(store.has_context());  // no closing brace → not trusted
}

TEST(Fingerprint, IgnoresWorkerCountButTracksEverythingElse) {
  exp::Scenario scenario = tiny_scenario();
  core::HybridConfig config;
  config.cutoff = 15;
  const auto base = exp::replication_fingerprint(scenario, config, 6);

  exp::Scenario other_jobs = scenario;
  other_jobs.jobs = 8;  // execution knob: provably result-neutral
  EXPECT_EQ(exp::replication_fingerprint(other_jobs, config, 6), base);

  exp::Scenario other_seed = scenario;
  other_seed.seed ^= 1;
  EXPECT_NE(exp::replication_fingerprint(other_seed, config, 6), base);

  core::HybridConfig other_cutoff = config;
  other_cutoff.cutoff = 16;
  EXPECT_NE(exp::replication_fingerprint(scenario, other_cutoff, 6), base);

  core::HybridConfig other_crash = config;
  other_crash.resilience.crash.enabled = true;
  other_crash.resilience.crash.rate = 0.01;
  EXPECT_NE(exp::replication_fingerprint(scenario, other_crash, 6), base);

  EXPECT_NE(exp::replication_fingerprint(scenario, config, 7), base);
}

TEST(Resume, CheckpointFromDifferentExperimentIsRejected) {
  const auto scenario = tiny_scenario();
  core::HybridConfig config;
  config.cutoff = 15;

  std::ostringstream log;
  {
    runtime::RunReporter reporter(log);
    exp::ReplicateOptions opts;
    opts.reporter = &reporter;
    (void)exp::replicate_hybrid(scenario, config, 3, opts);
  }
  std::istringstream in(log.str());
  const auto checkpoint = runtime::CheckpointStore::load(in);
  ASSERT_TRUE(checkpoint.has_context());

  // Same file, different experiment: changed config, changed scenario and
  // changed replication count must all refuse to resume...
  exp::ReplicateOptions opts;
  opts.resume = &checkpoint;
  core::HybridConfig other = config;
  other.cutoff = 20;
  EXPECT_THROW((void)exp::replicate_hybrid(scenario, other, 3, opts),
               std::runtime_error);
  exp::Scenario other_scenario = scenario;
  other_scenario.num_requests += 1;
  EXPECT_THROW((void)exp::replicate_hybrid(other_scenario, config, 3, opts),
               std::runtime_error);
  EXPECT_THROW((void)exp::replicate_hybrid(scenario, config, 4, opts),
               std::runtime_error);

  // ...while the matching experiment still resumes cleanly.
  EXPECT_NO_THROW((void)exp::replicate_hybrid(scenario, config, 3, opts));
}

// --- resumable_sweep ------------------------------------------------------

TEST(Resume, ResumableSweepRestoresCheckpointedPoints) {
  auto fn = [](std::size_t i) { return static_cast<double>(i) * 1.5; };
  auto ser = [](double v) { return runtime::encode_double(v); };
  auto de = [](const std::string& p) { return runtime::decode_double(p); };

  std::ostringstream log;
  std::vector<double> expected;
  {
    runtime::RunReporter reporter(log);
    exp::SweepOptions opts;
    opts.reporter = &reporter;
    expected = exp::resumable_sweep(5, fn, ser, de, opts);
  }
  std::istringstream in(log.str());
  const auto checkpoint = runtime::CheckpointStore::load(in);
  ASSERT_EQ(checkpoint.size(), 5u);

  // Resume with a poisoned fn: any recomputation would be visible.
  auto poisoned = [](std::size_t) -> double {
    throw std::runtime_error("should not recompute");
  };
  exp::SweepOptions resume_opts;
  resume_opts.resume = &checkpoint;
  const auto resumed =
      exp::resumable_sweep(5, poisoned, ser, de, resume_opts);
  EXPECT_EQ(resumed, expected);
}

}  // namespace
}  // namespace pushpull
