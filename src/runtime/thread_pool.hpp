#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pushpull::runtime {

/// Bounded, work-stealing-free thread pool: a fixed set of workers drains a
/// single FIFO job queue. Deliberately minimal — simulation jobs here are
/// coarse (one full replication or grid point each), so a shared queue with
/// no stealing is both simple and contention-free in practice.
///
/// The pool never reorders completion-order-sensitive state itself; callers
/// that need deterministic output collect results by job index (see
/// JobResult / parallel_map), never by completion order.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means default_concurrency().
  explicit ThreadPool(std::size_t num_threads);

  /// Drains nothing: pending jobs still queued at destruction are discarded,
  /// but jobs already running are joined. Callers that care about results
  /// must block on them (JobResult::collect) before the pool dies.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a job. Jobs must not throw out of the callable itself —
  /// wrap user code and capture exceptions (parallel_map does this).
  void submit(std::function<void()> job);

  /// max(1, std::thread::hardware_concurrency()) — the `--jobs 0` default.
  [[nodiscard]] static std::size_t default_concurrency() noexcept {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
  }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace pushpull::runtime
