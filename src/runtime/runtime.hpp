#pragma once

/// Umbrella header for the execution runtime: bounded thread pool,
/// deterministic ordered fan-out (parallel_map / parallel_for / serial_map)
/// and the JSONL progress reporter.
///
/// Determinism contract: every job derives its randomness from its own job
/// index (SplitMix64-hashed seeds), results are collected in job-index
/// order, and aggregation happens only after collection — so the output of
/// a run is a pure function of (inputs, seed, job count = N jobs or 1), and
/// parallel runs are bit-identical to serial ones.

#include "runtime/checkpoint.hpp"      // IWYU pragma: export
#include "runtime/job_result.hpp"      // IWYU pragma: export
#include "runtime/parallel_for.hpp"    // IWYU pragma: export
#include "runtime/run_reporter.hpp"    // IWYU pragma: export
#include "runtime/thread_pool.hpp"     // IWYU pragma: export
