#include "runtime/checkpoint.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <stdexcept>
#include <string_view>

namespace pushpull::runtime {

std::string encode_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", value);
  return buf;
}

double decode_double(const std::string& token) {
  const char* begin = token.c_str();
  char* end = nullptr;
  const double value = std::strtod(begin, &end);
  if (end == begin || *end != '\0') {
    throw std::invalid_argument("decode_double: malformed token '" + token +
                                "'");
  }
  return value;
}

namespace {

/// Reverses RunReporter's JSON escaping. Payload strings the library writes
/// contain no escapes, but a hand-edited file should still parse.
std::string unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out += s[i];
      continue;
    }
    switch (s[++i]) {
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u':
        if (i + 4 < s.size()) {
          out += static_cast<char>(
              std::strtoul(std::string(s.substr(i + 1, 4)).c_str(), nullptr,
                           16));
          i += 4;
        }
        break;
      default: out += s[i]; break;  // \" and \\ and anything unknown
    }
  }
  return out;
}

/// Parses one JSONL line into (id, payload) if it is a complete payload
/// record; returns false otherwise (wrong event, malformed, or truncated).
bool parse_payload_line(const std::string& line, std::size_t& id,
                        std::string& payload) {
  // A record interrupted by a crash lacks its closing brace — the cheapest
  // possible completeness check, and exact because payloads never contain
  // '}' (RunReporter escapes nothing that could embed one un-quoted).
  if (line.empty() || line.front() != '{' || line.back() != '}') return false;
  if (line.find(R"("event":"payload")") == std::string::npos) return false;

  const std::size_t id_key = line.find(R"("id":)");
  if (id_key == std::string::npos) return false;
  const char* id_begin = line.c_str() + id_key + 5;
  char* id_end = nullptr;
  const unsigned long long parsed = std::strtoull(id_begin, &id_end, 10);
  if (id_end == id_begin) return false;

  const std::size_t key = line.find(R"("payload":")");
  if (key == std::string::npos) return false;
  const std::size_t begin = key + 11;
  // Find the closing quote, skipping escaped characters.
  std::size_t end = begin;
  while (end < line.size() && line[end] != '"') {
    end += line[end] == '\\' ? std::size_t{2} : std::size_t{1};
  }
  if (end >= line.size()) return false;  // unterminated → truncated line

  id = static_cast<std::size_t>(parsed);
  payload = unescape(std::string_view(line).substr(begin, end - begin));
  return true;
}

}  // namespace

CheckpointStore CheckpointStore::load(std::istream& in) {
  CheckpointStore store;
  std::string line;
  while (std::getline(in, line)) {
    // A line without a trailing '\n' (crash mid-append) still reaches here
    // via the final getline; parse_payload_line rejects it if incomplete.
    std::size_t id = 0;
    std::string payload;
    if (parse_payload_line(line, id, payload)) {
      store.payloads_[id] = std::move(payload);
    }
  }
  return store;
}

CheckpointStore CheckpointStore::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return CheckpointStore{};
  return load(in);
}

const std::string* CheckpointStore::find(std::size_t job_id) const {
  const auto it = payloads_.find(job_id);
  return it == payloads_.end() ? nullptr : &it->second;
}

}  // namespace pushpull::runtime
