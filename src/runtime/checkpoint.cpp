#include "runtime/checkpoint.hpp"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <stdexcept>
#include <string_view>

namespace pushpull::runtime {

std::string encode_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", value);
  return buf;
}

double decode_double(const std::string& token) {
  const char* begin = token.c_str();
  char* end = nullptr;
  const double value = std::strtod(begin, &end);
  if (end == begin || *end != '\0') {
    throw std::invalid_argument("decode_double: malformed token '" + token +
                                "'");
  }
  return value;
}

namespace {

/// Reverses RunReporter's JSON escaping. Payload strings the library writes
/// contain no escapes, but a hand-edited file should still parse.
std::string unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out += s[i];
      continue;
    }
    switch (s[++i]) {
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u':
        if (i + 4 < s.size()) {
          out += static_cast<char>(
              std::strtoul(std::string(s.substr(i + 1, 4)).c_str(), nullptr,
                           16));
          i += 4;
        }
        break;
      default: out += s[i]; break;  // \" and \\ and anything unknown
    }
  }
  return out;
}

/// Parses one JSONL line into (id, payload) if it is a complete payload
/// record; returns false otherwise (wrong event, malformed, or truncated).
bool parse_payload_line(const std::string& line, std::size_t& id,
                        std::string& payload) {
  // A record interrupted by a crash lacks its closing brace — the cheapest
  // possible completeness check, and exact because payloads never contain
  // '}' (RunReporter escapes nothing that could embed one un-quoted).
  if (line.empty() || line.front() != '{' || line.back() != '}') return false;
  if (line.find(R"("event":"payload")") == std::string::npos) return false;

  const std::size_t id_key = line.find(R"("id":)");
  if (id_key == std::string::npos) return false;
  const char* id_begin = line.c_str() + id_key + 5;
  char* id_end = nullptr;
  const unsigned long long parsed = std::strtoull(id_begin, &id_end, 10);
  if (id_end == id_begin) return false;

  const std::size_t key = line.find(R"("payload":")");
  if (key == std::string::npos) return false;
  const std::size_t begin = key + 11;
  // Find the closing quote, skipping escaped characters.
  std::size_t end = begin;
  while (end < line.size() && line[end] != '"') {
    end += line[end] == '\\' ? std::size_t{2} : std::size_t{1};
  }
  if (end >= line.size()) return false;  // unterminated → truncated line

  id = static_cast<std::size_t>(parsed);
  payload = unescape(std::string_view(line).substr(begin, end - begin));
  return true;
}

/// Parses one JSONL line into (schema, fingerprint) if it is a complete
/// context record; returns false otherwise.
bool parse_context_line(const std::string& line, std::string& schema,
                        std::uint64_t& fingerprint) {
  if (line.empty() || line.front() != '{' || line.back() != '}') return false;
  if (line.find(R"("event":"context")") == std::string::npos) return false;

  const std::size_t skey = line.find(R"("schema":")");
  if (skey == std::string::npos) return false;
  const std::size_t sbegin = skey + 10;
  std::size_t send = sbegin;
  while (send < line.size() && line[send] != '"') {
    send += line[send] == '\\' ? std::size_t{2} : std::size_t{1};
  }
  if (send >= line.size()) return false;

  const std::size_t fkey = line.find(R"("fingerprint":)");
  if (fkey == std::string::npos) return false;
  const char* fbegin = line.c_str() + fkey + 14;
  char* fend = nullptr;
  const unsigned long long parsed = std::strtoull(fbegin, &fend, 10);
  if (fend == fbegin) return false;

  schema = unescape(std::string_view(line).substr(sbegin, send - sbegin));
  fingerprint = static_cast<std::uint64_t>(parsed);
  return true;
}

}  // namespace

CheckpointStore CheckpointStore::load(std::istream& in) {
  CheckpointStore store;
  std::string line;
  while (std::getline(in, line)) {
    // A line without a trailing '\n' (crash mid-append) still reaches here
    // via the final getline; parse_payload_line rejects it if incomplete.
    std::size_t id = 0;
    std::string payload;
    if (parse_payload_line(line, id, payload)) {
      store.payloads_[id] = std::move(payload);
      continue;
    }
    // Keep the last context seen: an appended resume restates it, and the
    // restated one is the run the payloads after it belong to.
    std::string schema;
    std::uint64_t fingerprint = 0;
    if (parse_context_line(line, schema, fingerprint)) {
      store.has_context_ = true;
      store.schema_ = std::move(schema);
      store.fingerprint_ = fingerprint;
    }
  }
  return store;
}

CheckpointStore CheckpointStore::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return CheckpointStore{};
  return load(in);
}

const std::string* CheckpointStore::find(std::size_t job_id) const {
  const auto it = payloads_.find(job_id);
  return it == payloads_.end() ? nullptr : &it->second;
}

void CheckpointStore::require(std::string_view schema,
                              std::uint64_t fingerprint) const {
  if (!has_context_) return;  // pre-versioning file: accept as before
  if (schema_ != schema) {
    throw std::runtime_error(
        "CheckpointStore: cannot resume — checkpoint file has payload "
        "schema '" + schema_ + "' but this run expects '" +
        std::string(schema) + "'");
  }
  if (fingerprint_ != fingerprint) {
    throw std::runtime_error(
        "CheckpointStore: cannot resume — checkpoint file was written for a "
        "different run (fingerprint " + std::to_string(fingerprint_) +
        ", expected " + std::to_string(fingerprint) +
        "); the scenario, config, or replication count differs");
  }
}

}  // namespace pushpull::runtime
