#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>

namespace pushpull::runtime {

/// Bit-exact, locale-independent double encoding for checkpoint payloads:
/// C99 hexadecimal floating point ("0x1.91eb851eb851fp+1"). Encoding and
/// decoding round-trip every finite double exactly, which is what lets a
/// resumed run reproduce an uninterrupted one byte-for-byte.
[[nodiscard]] std::string encode_double(double value);

/// Inverse of encode_double (also accepts plain decimal). Throws
/// std::invalid_argument on malformed input.
[[nodiscard]] double decode_double(const std::string& token);

/// Completed-job index loaded from a RunReporter JSONL file, used to resume
/// a killed run.
///
/// A job counts as completed when the file holds a *complete* line
/// `{"event":"payload","id":N,"payload":"..."}` for it — the payload is the
/// job's serialized result, written by the job itself before its telemetry
/// line. The reader is deliberately forgiving: a crash mid-append leaves a
/// truncated final line, and any line that does not parse as a whole
/// payload record is skipped rather than trusted, so that job simply
/// re-runs on resume.
///
/// Versioning: a `{"event":"context","schema":"...","fingerprint":N}`
/// record (see RunReporter::run_context) identifies the payload format and
/// the run's inputs. `require()` rejects a resume against a file written
/// for a different schema or experiment. Files without a context record
/// (written before versioning existed) are accepted as-is.
class CheckpointStore {
 public:
  CheckpointStore() = default;

  /// Parses JSONL from `in`, keeping the last payload seen per job id
  /// (a resumed run may have appended newer records).
  [[nodiscard]] static CheckpointStore load(std::istream& in);

  /// Convenience: load from a file path; a missing file yields an empty
  /// store (nothing to resume).
  [[nodiscard]] static CheckpointStore load_file(const std::string& path);

  /// Payload of a completed job, or nullptr if the job must (re)run.
  [[nodiscard]] const std::string* find(std::size_t job_id) const;

  [[nodiscard]] std::size_t size() const noexcept { return payloads_.size(); }
  [[nodiscard]] bool empty() const noexcept { return payloads_.empty(); }

  /// True when the file carried a context record (schema + fingerprint).
  [[nodiscard]] bool has_context() const noexcept { return has_context_; }
  [[nodiscard]] const std::string& schema() const noexcept { return schema_; }
  [[nodiscard]] std::uint64_t fingerprint() const noexcept {
    return fingerprint_;
  }

  /// Verifies this store was written by a run with the same payload schema
  /// and input fingerprint. Throws std::runtime_error naming both sides on
  /// any mismatch; a store with no context record passes (legacy file).
  void require(std::string_view schema, std::uint64_t fingerprint) const;

 private:
  std::unordered_map<std::size_t, std::string> payloads_;
  bool has_context_ = false;
  std::string schema_;
  std::uint64_t fingerprint_ = 0;
};

}  // namespace pushpull::runtime
