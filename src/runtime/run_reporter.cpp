#include "runtime/run_reporter.hpp"

#include <cstdio>

namespace pushpull::runtime {

void RunReporter::run_started(std::string_view label, std::size_t num_jobs,
                              std::size_t workers) {
  std::string line = R"({"event":"run_start","label":")";
  append_escaped(line, label);
  line += R"(","jobs":)";
  line += std::to_string(num_jobs);
  line += R"(,"workers":)";
  line += std::to_string(workers);
  line += '}';
  write_line(line);
}

void RunReporter::run_context(std::string_view schema,
                              std::uint64_t fingerprint) {
  std::string line = R"({"event":"context","schema":")";
  append_escaped(line, schema);
  line += R"(","fingerprint":)";
  line += std::to_string(fingerprint);
  line += '}';
  write_line(line);
}

void RunReporter::job_finished(std::size_t job_id, double wall_ms, bool ok,
                               std::string_view detail) {
  std::string line = R"({"event":"job","id":)";
  line += std::to_string(job_id);
  line += R"(,"wall_ms":)";
  line += format_ms(wall_ms);
  line += R"(,"outcome":")";
  line += ok ? "ok" : "error";
  line += '"';
  if (!detail.empty()) {
    line += R"(,"detail":")";
    append_escaped(line, detail);
    line += '"';
  }
  line += '}';
  write_line(line);
}

void RunReporter::job_payload(std::size_t job_id, std::string_view payload) {
  std::string line = R"({"event":"payload","id":)";
  line += std::to_string(job_id);
  line += R"(,"payload":")";
  append_escaped(line, payload);
  line += "\"}";
  write_line(line);
}

void RunReporter::run_finished(std::string_view label, std::size_t num_jobs,
                               double wall_ms) {
  std::string line = R"({"event":"run_end","label":")";
  append_escaped(line, label);
  line += R"(","jobs":)";
  line += std::to_string(num_jobs);
  line += R"(,"wall_ms":)";
  line += format_ms(wall_ms);
  line += '}';
  write_line(line);
}

void RunReporter::write_line(const std::string& line) {
  const std::lock_guard<std::mutex> lock(mu_);
  // One write call for record + newline, then a flush: a crash between
  // records loses nothing, a crash mid-record truncates only the final
  // line — exactly what CheckpointStore's tolerant reader expects.
  std::string record = line;
  record += '\n';
  out_->write(record.data(), static_cast<std::streamsize>(record.size()));
  out_->flush();
}

void RunReporter::append_escaped(std::string& buf, std::string_view s) {
  for (const char ch : s) {
    switch (ch) {
      case '"':
        buf += "\\\"";
        break;
      case '\\':
        buf += "\\\\";
        break;
      case '\n':
        buf += "\\n";
        break;
      case '\r':
        buf += "\\r";
        break;
      case '\t':
        buf += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          buf += hex;
        } else {
          buf += ch;
        }
    }
  }
}

std::string RunReporter::format_ms(double ms) {
  char out[64];
  std::snprintf(out, sizeof(out), "%.3f", ms);
  return out;
}

}  // namespace pushpull::runtime
