#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

namespace pushpull::runtime {

/// Ordered collection point for a batch of indexed jobs.
///
/// Workers fulfill (or fail) their own slot in any completion order;
/// collect() blocks until every slot is settled and then returns the values
/// in **job-index order**, which is what makes parallel sweeps bit-identical
/// to their serial counterparts. If any job failed, collect() rethrows the
/// error of the lowest-indexed failure — again independent of the order in
/// which jobs actually finished.
template <typename T>
class JobResult {
 public:
  explicit JobResult(std::size_t num_jobs)
      : slots_(num_jobs), errors_(num_jobs), remaining_(num_jobs) {}

  JobResult(const JobResult&) = delete;
  JobResult& operator=(const JobResult&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }

  void fulfill(std::size_t index, T value) {
    settle(index, std::optional<T>(std::move(value)), nullptr);
  }

  void fail(std::size_t index, std::exception_ptr error) {
    settle(index, std::nullopt, std::move(error));
  }

  /// True once every job has settled (no blocking).
  [[nodiscard]] bool done() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return remaining_ == 0;
  }

  /// Blocks until all jobs settle; rethrows the lowest-index failure, else
  /// returns all values in index order. Call at most once.
  [[nodiscard]] std::vector<T> collect() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return remaining_ == 0; });
    for (std::size_t i = 0; i < errors_.size(); ++i) {
      if (errors_[i]) std::rethrow_exception(errors_[i]);
    }
    std::vector<T> values;
    values.reserve(slots_.size());
    for (auto& slot : slots_) values.push_back(std::move(*slot));
    return values;
  }

 private:
  void settle(std::size_t index, std::optional<T> value,
              std::exception_ptr error) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (index >= slots_.size()) {
      throw std::out_of_range("JobResult: job index out of range");
    }
    if (slots_[index].has_value() || errors_[index]) {
      throw std::logic_error("JobResult: job settled twice");
    }
    slots_[index] = std::move(value);
    errors_[index] = std::move(error);
    if (--remaining_ == 0) cv_.notify_all();
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::optional<T>> slots_;
  std::vector<std::exception_ptr> errors_;
  std::size_t remaining_;
};

}  // namespace pushpull::runtime
