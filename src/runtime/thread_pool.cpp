#include "runtime/thread_pool.hpp"

#include <utility>

namespace pushpull::runtime {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = default_concurrency();
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    queue_.clear();
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;  // shutting down: drop silently, nothing to run on
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

}  // namespace pushpull::runtime
