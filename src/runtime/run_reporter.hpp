#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

namespace pushpull::runtime {

/// Monotonic stopwatch for job/run wall times. This is the one sanctioned
/// wall-clock reader in the tree: it feeds telemetry (wall_ms fields in
/// JSONL progress lines) and never simulation state, so replay stays
/// bit-exact — hence the detlint D1 exemptions below.
class StopWatch {
 public:
  // detlint:allow(D1): wall-clock telemetry only, never feeds sim state
  StopWatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double elapsed_ms() const {
    // detlint:allow(D1): wall-clock telemetry only, never feeds sim state
    const auto dt = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double, std::milli>(dt).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;  // detlint:allow(D1): telemetry
};

/// Structured progress/telemetry sink for parallel runs.
///
/// Emits one JSON object per line (JSONL) so long sweeps can be tailed and
/// machine-parsed while they run:
///
///   {"event":"run_start","label":"replicate","jobs":20,"workers":4}
///   {"event":"payload","id":3,"payload":"rp1 3 ..."}
///   {"event":"job","id":3,"wall_ms":12.504,"outcome":"ok"}
///   {"event":"job","id":5,"wall_ms":0.291,"outcome":"error","detail":"..."}
///   {"event":"run_end","label":"replicate","jobs":20,"wall_ms":131.882}
///
/// `payload` records carry a job's serialized result, which is what makes a
/// killed run resumable (see runtime::CheckpointStore).
///
/// Thread-safe: workers report concurrently and each line (text plus its
/// newline) is written under a lock as a single buffered write followed by
/// a flush, so a crash can truncate at most the final record — never
/// interleave or tear earlier ones. The reporter observes completion order
/// (telemetry), never influences result order (determinism lives in
/// JobResult).
class RunReporter {
 public:
  /// Writes to `out`, which must outlive the reporter. Not owned.
  explicit RunReporter(std::ostream& out) : out_(&out) {}

  RunReporter(const RunReporter&) = delete;
  RunReporter& operator=(const RunReporter&) = delete;

  void run_started(std::string_view label, std::size_t num_jobs,
                   std::size_t workers);
  /// Stamps the file with the payload schema tag and a fingerprint of the
  /// run's inputs (scenario, config, job count). Written once, right after
  /// run_start; CheckpointStore refuses to resume against a file whose
  /// context disagrees, which catches the classic footgun of pointing
  /// --resume at a checkpoint from a different experiment.
  void run_context(std::string_view schema, std::uint64_t fingerprint);
  void job_finished(std::size_t job_id, double wall_ms, bool ok,
                    std::string_view detail = {});
  /// Records a job's serialized result so a killed run can resume without
  /// recomputing it. Written by the job itself, before its `job` line.
  void job_payload(std::size_t job_id, std::string_view payload);
  void run_finished(std::string_view label, std::size_t num_jobs,
                    double wall_ms);

 private:
  void write_line(const std::string& line);
  /// Appends `s` JSON-escaped (quotes, backslashes, control chars).
  static void append_escaped(std::string& buf, std::string_view s);
  /// Fixed-point, locale-independent "%.3f" formatting for wall times.
  static std::string format_ms(double ms);

  std::mutex mu_;
  std::ostream* out_;
};

}  // namespace pushpull::runtime
