#pragma once

#include <cstddef>
#include <exception>
#include <type_traits>
#include <utility>
#include <vector>

#include "runtime/job_result.hpp"
#include "runtime/run_reporter.hpp"
#include "runtime/thread_pool.hpp"

namespace pushpull::runtime {

namespace detail {

/// Runs one indexed job with timing + telemetry, routing the value or the
/// exception into its JobResult slot. Shared by every execution strategy so
/// serial and parallel runs observe identical job semantics.
template <typename T, typename Fn>
void run_job(JobResult<T>& result, Fn& fn, std::size_t index,
             RunReporter* reporter) {
  const StopWatch watch;
  try {
    T value = fn(index);
    // Report BEFORE settling: collect() may return the instant the last
    // slot settles, and every job's telemetry must already be on the wire
    // by then (the caller may tear down the reporter right after).
    if (reporter) reporter->job_finished(index, watch.elapsed_ms(), true);
    result.fulfill(index, std::move(value));
  } catch (const std::exception& e) {
    if (reporter) {
      reporter->job_finished(index, watch.elapsed_ms(), false, e.what());
    }
    result.fail(index, std::current_exception());
  } catch (...) {
    if (reporter) {
      reporter->job_finished(index, watch.elapsed_ms(), false,
                             "unknown exception");
    }
    result.fail(index, std::current_exception());
  }
}

}  // namespace detail

/// Applies `fn(i)` to every i in [0, num_jobs) on the pool and returns the
/// results **in index order** regardless of completion order. Blocks until
/// every job settles; rethrows the lowest-indexed failure. `fn` must be
/// safe to invoke concurrently from multiple threads.
template <typename Fn>
[[nodiscard]] auto parallel_map(ThreadPool& pool, std::size_t num_jobs,
                                Fn&& fn, RunReporter* reporter = nullptr)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using T = std::invoke_result_t<Fn&, std::size_t>;
  JobResult<T> result(num_jobs);
  for (std::size_t i = 0; i < num_jobs; ++i) {
    pool.submit([&result, &fn, i, reporter] {
      detail::run_job(result, fn, i, reporter);
    });
  }
  return result.collect();
}

/// The inline twin of parallel_map: same per-job timing, telemetry and
/// lowest-index error semantics, but runs on the calling thread. This is the
/// `--jobs 1` legacy-serial path; keeping it on the same JobResult plumbing
/// is what guarantees serial and parallel output stay bit-identical.
template <typename Fn>
[[nodiscard]] auto serial_map(std::size_t num_jobs, Fn&& fn,
                              RunReporter* reporter = nullptr)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using T = std::invoke_result_t<Fn&, std::size_t>;
  JobResult<T> result(num_jobs);
  for (std::size_t i = 0; i < num_jobs; ++i) {
    detail::run_job(result, fn, i, reporter);
  }
  return result.collect();
}

/// Side-effect fan-out: runs `fn(i)` for every i in [0, num_jobs) and blocks
/// until all complete (or rethrows the lowest-indexed failure). `fn(i)` may
/// only touch state owned by index i — per-slot writes, no shared mutation.
template <typename Fn>
void parallel_for(ThreadPool& pool, std::size_t num_jobs, Fn&& fn,
                  RunReporter* reporter = nullptr) {
  auto wrapped = [&fn](std::size_t i) {
    fn(i);
    return true;  // JobResult needs a value; the payload is the side effect
  };
  (void)parallel_map(pool, num_jobs, wrapped, reporter);
}

}  // namespace pushpull::runtime
