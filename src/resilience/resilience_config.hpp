#pragma once

#include "resilience/crash.hpp"
#include "resilience/overload.hpp"

namespace pushpull::resilience {

/// Umbrella knob block for the robustness features: the crash/recovery
/// model and the overload degradation ladder. Default-constructed it is
/// fully inert — no events scheduled, no RNG streams derived — so a config
/// that never mentions resilience produces bit-identical output to builds
/// that predate it.
struct ResilienceConfig {
  CrashConfig crash;
  OverloadConfig overload;

  /// True when any resilience machinery will actually run.
  [[nodiscard]] bool active() const noexcept {
    return (crash.enabled && crash.rate > 0.0) || overload.enabled;
  }

  void validate() const {
    crash.validate();
    overload.validate();
  }
};

}  // namespace pushpull::resilience
