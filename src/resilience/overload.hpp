#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.hpp"

namespace pushpull::resilience {

/// The degradation ladder, in escalation order. Each level keeps every
/// action of the levels below it active:
///
///   normal -> shed-low-priority -> widen-push -> admission-control -> brownout
///
///  * shed-low-priority  — overload shedding switches to evicting the
///    lowest-priority queued request (and a soft queue cap engages when no
///    hard cap is configured);
///  * widen-push         — the push cutoff K grows by `cutoff_step`, so the
///    hottest pull items ride the broadcast instead of the queue (sheds
///    pull load fairly to users, not items);
///  * admission-control  — arrivals of the lowest-priority class are
///    rejected at the uplink;
///  * brownout           — only the most important class is admitted.
enum class OverloadLevel : int {
  kNormal = 0,
  kShedLowPriority = 1,
  kWidenPush = 2,
  kAdmissionControl = 3,
  kBrownout = 4,
};

inline constexpr int kNumOverloadLevels = 5;

[[nodiscard]] std::string_view to_string(OverloadLevel level) noexcept;

/// One ordered ladder transition, as logged by the controller.
struct OverloadTransition {
  double time = 0.0;
  OverloadLevel from = OverloadLevel::kNormal;
  OverloadLevel to = OverloadLevel::kNormal;
  /// The inputs that drove the move, for the report.
  double occupancy = 0.0;
  double blocking_ewma = 0.0;
};

/// Degradation-ladder parameters. Disabled by default; a disabled ladder
/// schedules no evaluation events and is bit-invisible in simulation
/// output.
struct OverloadConfig {
  bool enabled = false;

  /// Virtual time between controller evaluations.
  double eval_interval = 5.0;

  /// Smoothing factor of the per-class blocking EWMA (weight of the newest
  /// observation).
  double ewma_alpha = 0.1;

  /// Blocking EWMA that counts as "pressure 1.0" — the controller input is
  /// max(occupancy, ewma / blocking_ref).
  double blocking_ref = 0.5;

  /// Occupancy denominator when no hard pull-queue cap is configured; also
  /// the soft cap that engages at shed-low-priority and above.
  std::size_t capacity_ref = 64;

  /// How many catalog items the push set grows by at widen-push and above.
  std::size_t cutoff_step = 10;

  /// Pressure needed to climb from level i to i+1...
  std::array<double, 4> enter{0.60, 0.75, 0.85, 0.95};
  /// ...and the pressure below which level i+1 relaxes back to i. Strictly
  /// below `enter` so levels are sticky (hysteresis).
  std::array<double, 4> exit{0.45, 0.60, 0.70, 0.80};

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// The ladder state machine. Pure and deterministic: feed it (time,
/// occupancy, blocking EWMA) observations; it moves at most one level per
/// update, applies the enter/exit hysteresis bands, and logs every
/// transition as an ordered event.
class OverloadController {
 public:
  OverloadController() = default;
  explicit OverloadController(OverloadConfig config);

  /// One evaluation step. `occupancy` is queue fill (pending / capacity);
  /// `blocking_ewma` the worst per-class blocking EWMA. Returns the level
  /// in force after the step.
  OverloadLevel update(double now, double occupancy, double blocking_ewma);

  /// Same step, but additionally emits a ladder-category "transition"
  /// trace event (a=from, b=to, v=pressure input) when the level moves.
  /// Observation only — the decision path is byte-for-byte the plain
  /// update().
  OverloadLevel update(double now, double occupancy, double blocking_ewma,
                       const obs::Tracer& tracer);

  [[nodiscard]] OverloadLevel level() const noexcept { return level_; }
  [[nodiscard]] OverloadLevel max_level() const noexcept { return max_level_; }
  [[nodiscard]] const std::vector<OverloadTransition>& transitions()
      const noexcept {
    return transitions_;
  }
  [[nodiscard]] const OverloadConfig& config() const noexcept {
    return config_;
  }

  /// Back to normal with an empty log (run reuse).
  void reset();

 private:
  OverloadConfig config_;
  OverloadLevel level_ = OverloadLevel::kNormal;
  OverloadLevel max_level_ = OverloadLevel::kNormal;
  std::vector<OverloadTransition> transitions_;
};

}  // namespace pushpull::resilience
