#include "resilience/snapshot.hpp"

#include <sstream>
#include <stdexcept>

#include "runtime/checkpoint.hpp"

namespace pushpull::resilience {

std::string encode_snapshot(const QueueSnapshot& snapshot,
                            std::uint64_t fingerprint) {
  std::string out(kSnapshotSchema);
  out += ' ';
  out += std::to_string(fingerprint);
  out += ' ';
  out += runtime::encode_double(snapshot.time);
  out += ' ';
  out += std::to_string(snapshot.queued.size());
  for (const std::uint64_t id : snapshot.queued) {
    out += ' ';
    out += std::to_string(id);
  }
  return out;
}

QueueSnapshot decode_snapshot(const std::string& record,
                              std::uint64_t expected_fingerprint) {
  std::istringstream in(record);
  std::string tag;
  std::uint64_t fingerprint = 0;
  std::string time_token;
  std::size_t count = 0;
  if (!(in >> tag)) {
    throw std::runtime_error("decode_snapshot: empty snapshot record");
  }
  if (tag != kSnapshotSchema) {
    throw std::runtime_error(
        "decode_snapshot: schema mismatch — record is tagged '" + tag +
        "' but this build reads '" + std::string(kSnapshotSchema) +
        "'; refusing to restore state written by a different version");
  }
  if (!(in >> fingerprint >> time_token >> count)) {
    throw std::runtime_error("decode_snapshot: truncated snapshot header");
  }
  if (fingerprint != expected_fingerprint) {
    throw std::runtime_error(
        "decode_snapshot: fingerprint mismatch (record " +
        std::to_string(fingerprint) + ", expected " +
        std::to_string(expected_fingerprint) +
        ") — the snapshot was taken under a different catalog/scenario/"
        "config; refusing to mis-restore the pull queue");
  }
  QueueSnapshot snapshot;
  snapshot.time = runtime::decode_double(time_token);
  snapshot.queued.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (!(in >> snapshot.queued[i])) {
      throw std::runtime_error(
          "decode_snapshot: truncated snapshot body (expected " +
          std::to_string(count) + " request ids, got " + std::to_string(i) +
          ")");
    }
  }
  return snapshot;
}

}  // namespace pushpull::resilience
