#include "resilience/crash.hpp"

#include <cmath>
#include <stdexcept>

#include "metrics/float_compare.hpp"
#include "rng/exponential.hpp"

namespace pushpull::resilience {

std::string_view to_string(RecoveryMode mode) noexcept {
  switch (mode) {
    case RecoveryMode::kCold: return "cold";
    case RecoveryMode::kWarm: return "warm";
  }
  return "?";
}

RecoveryMode parse_recovery_mode(const std::string& name) {
  if (name == "cold") return RecoveryMode::kCold;
  if (name == "warm") return RecoveryMode::kWarm;
  throw std::invalid_argument("unknown recovery mode '" + name +
                              "' (expected cold or warm)");
}

void CrashConfig::validate() const {
  if (!(rate >= 0.0) || !std::isfinite(rate)) {
    throw std::invalid_argument(
        "CrashConfig: rate must be a non-negative finite number, got " +
        std::to_string(rate));
  }
  if (!(downtime > 0.0) || !std::isfinite(downtime)) {
    throw std::invalid_argument(
        "CrashConfig: downtime must be positive and finite, got " +
        std::to_string(downtime));
  }
  if (!(snapshot_interval > 0.0) || !std::isfinite(snapshot_interval)) {
    throw std::invalid_argument(
        "CrashConfig: snapshot_interval must be positive and finite, got " +
        std::to_string(snapshot_interval));
  }
  if (!(rerequest_timeout >= 0.0) || !std::isfinite(rerequest_timeout)) {
    throw std::invalid_argument(
        "CrashConfig: rerequest_timeout must be non-negative and finite, "
        "got " + std::to_string(rerequest_timeout));
  }
  if (!(storm_spread >= 0.0) || !std::isfinite(storm_spread)) {
    throw std::invalid_argument(
        "CrashConfig: storm_spread must be non-negative and finite, got " +
        std::to_string(storm_spread));
  }
  if (max_crashes == 0) {
    throw std::invalid_argument(
        "CrashConfig: max_crashes must be >= 1 (set enabled=false or rate=0 "
        "to disable crashes)");
  }
}

CrashSchedule::CrashSchedule(std::vector<double> times)
    : times_(std::move(times)) {
  double prev = 0.0;
  for (const double t : times_) {
    if (!(t >= prev) || !std::isfinite(t)) {
      throw std::invalid_argument(
          "CrashSchedule: instants must be sorted, non-negative and finite");
    }
    prev = t;
  }
}

CrashSchedule CrashSchedule::poisson(const CrashConfig& config,
                                     double horizon,
                                     // detlint:allow(D5): sink
                                     rng::Xoshiro256ss engine) {
  config.validate();
  CrashSchedule schedule;
  if (!config.enabled || metrics::exactly_zero(config.rate) ||
      !(horizon > 0.0)) {
    return schedule;
  }
  double t = 0.0;
  while (schedule.times_.size() < config.max_crashes) {
    t += rng::exponential(engine, config.rate);
    if (t > horizon) break;
    schedule.times_.push_back(t);
    // The server is dark until t + downtime; a crash cannot hit a server
    // that is already down, so the process resumes at recovery.
    t += config.downtime;
  }
  return schedule;
}

}  // namespace pushpull::resilience
