#include "resilience/overload.hpp"

#include <cmath>
#include <stdexcept>

namespace pushpull::resilience {

std::string_view to_string(OverloadLevel level) noexcept {
  switch (level) {
    case OverloadLevel::kNormal: return "normal";
    case OverloadLevel::kShedLowPriority: return "shed-low-priority";
    case OverloadLevel::kWidenPush: return "widen-push";
    case OverloadLevel::kAdmissionControl: return "admission-control";
    case OverloadLevel::kBrownout: return "brownout";
  }
  return "?";
}

void OverloadConfig::validate() const {
  if (!(eval_interval > 0.0) || !std::isfinite(eval_interval)) {
    throw std::invalid_argument(
        "OverloadConfig: eval_interval must be positive and finite, got " +
        std::to_string(eval_interval));
  }
  if (!(ewma_alpha > 0.0) || !(ewma_alpha <= 1.0)) {
    throw std::invalid_argument(
        "OverloadConfig: ewma_alpha must be in (0, 1], got " +
        std::to_string(ewma_alpha));
  }
  if (!(blocking_ref > 0.0) || !std::isfinite(blocking_ref)) {
    throw std::invalid_argument(
        "OverloadConfig: blocking_ref must be positive and finite, got " +
        std::to_string(blocking_ref));
  }
  if (capacity_ref == 0) {
    throw std::invalid_argument(
        "OverloadConfig: capacity_ref must be >= 1 (it is the occupancy "
        "denominator and soft cap when no hard queue cap is set)");
  }
  double prev_enter = 0.0;
  for (std::size_t i = 0; i < enter.size(); ++i) {
    if (!(enter[i] > 0.0) || !std::isfinite(enter[i])) {
      throw std::invalid_argument(
          "OverloadConfig: enter thresholds must be positive and finite");
    }
    if (!(enter[i] >= prev_enter)) {
      throw std::invalid_argument(
          "OverloadConfig: enter thresholds must be non-decreasing "
          "(escalation gets harder, never easier)");
    }
    if (!(exit[i] < enter[i]) || !(exit[i] >= 0.0)) {
      throw std::invalid_argument(
          "OverloadConfig: exit[" + std::to_string(i) +
          "] must be in [0, enter[" + std::to_string(i) +
          ")) so levels are sticky (hysteresis)");
    }
    prev_enter = enter[i];
  }
}

OverloadController::OverloadController(OverloadConfig config)
    : config_(std::move(config)) {
  config_.validate();
}

OverloadLevel OverloadController::update(double now, double occupancy,
                                         double blocking_ewma) {
  if (!config_.enabled) return level_;
  const double pressure =
      std::max(occupancy, blocking_ewma / config_.blocking_ref);
  const int at = static_cast<int>(level_);
  OverloadLevel next = level_;
  // At most one rung per evaluation, in either direction: escalation is
  // paced (a spike cannot jump straight to brownout between evaluations)
  // and de-escalation unwinds level by level as pressure drains.
  if (at < kNumOverloadLevels - 1 &&
      pressure >= config_.enter[static_cast<std::size_t>(at)]) {
    next = static_cast<OverloadLevel>(at + 1);
  } else if (at > 0 &&
             pressure <= config_.exit[static_cast<std::size_t>(at - 1)]) {
    next = static_cast<OverloadLevel>(at - 1);
  }
  if (next != level_) {
    transitions_.push_back(
        OverloadTransition{now, level_, next, occupancy, blocking_ewma});
    level_ = next;
    if (static_cast<int>(level_) > static_cast<int>(max_level_)) {
      max_level_ = level_;
    }
  }
  return level_;
}

OverloadLevel OverloadController::update(double now, double occupancy,
                                         double blocking_ewma,
                                         const obs::Tracer& tracer) {
  const OverloadLevel before = level_;
  const OverloadLevel after = update(now, occupancy, blocking_ewma);
  if (after != before) {
    tracer.emit<obs::Category::kLadder>(
        now, "transition", static_cast<std::uint64_t>(before),
        static_cast<std::uint64_t>(after), occupancy);
  }
  return after;
}

void OverloadController::reset() {
  level_ = OverloadLevel::kNormal;
  max_level_ = OverloadLevel::kNormal;
  transitions_.clear();
}

}  // namespace pushpull::resilience
