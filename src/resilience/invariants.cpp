#include "resilience/invariants.hpp"

#include <algorithm>
#include <cmath>

namespace pushpull::resilience {

namespace {

char class_letter(std::size_t cls) {
  return static_cast<char>('A' + (cls % 26));
}

}  // namespace

bool InvariantReport::all_pass() const noexcept {
  return std::all_of(checks.begin(), checks.end(),
                     [](const InvariantCheck& c) { return c.pass; });
}

std::size_t InvariantReport::failures() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(checks.begin(), checks.end(),
                    [](const InvariantCheck& c) { return !c.pass; }));
}

void InvariantReport::merge(const InvariantReport& other) {
  checks.insert(checks.end(), other.checks.begin(), other.checks.end());
}

InvariantReport check_invariants(const InvariantInputs& inputs) {
  InvariantReport report;

  std::uint64_t total_arrived = 0;
  std::uint64_t total_settled = 0;
  for (std::size_t cls = 0; cls < inputs.per_class.size(); ++cls) {
    const metrics::ClassStats& s = inputs.per_class[cls];
    const std::uint64_t settled = s.served + s.blocked + s.abandoned + s.shed +
                                  s.lost + s.rejected;
    total_arrived += s.arrived;
    total_settled += settled;
    InvariantCheck check;
    check.name = std::string("conservation-class-") + class_letter(cls);
    check.pass = s.arrived == settled;
    check.detail = "arrived=" + std::to_string(s.arrived) +
                   " served=" + std::to_string(s.served) +
                   " blocked=" + std::to_string(s.blocked) +
                   " abandoned=" + std::to_string(s.abandoned) +
                   " shed=" + std::to_string(s.shed) +
                   " lost=" + std::to_string(s.lost) +
                   " rejected=" + std::to_string(s.rejected);
    report.checks.push_back(std::move(check));
  }
  report.checks.push_back(InvariantCheck{
      "conservation-total", total_arrived == total_settled,
      "arrived=" + std::to_string(total_arrived) +
          " settled=" + std::to_string(total_settled)});

  const std::size_t cap = std::max(inputs.queue_capacity, inputs.soft_capacity);
  const bool cap_ok = cap == 0 || inputs.max_queue_len <= cap;
  report.checks.push_back(InvariantCheck{
      "queue-cap-bound", cap_ok,
      cap == 0 ? "no cap in force; peak=" + std::to_string(inputs.max_queue_len)
               : "peak=" + std::to_string(inputs.max_queue_len) +
                     " cap=" + std::to_string(cap)});

  report.checks.push_back(InvariantCheck{
      "event-time-monotone", inputs.event_order_violations == 0,
      std::to_string(inputs.event_order_violations) +
          " out-of-order dispatches"});

  const bool end_ok = std::isfinite(inputs.end_time) && inputs.end_time >= 0.0;
  report.checks.push_back(InvariantCheck{
      "end-time-finite", end_ok,
      "end_time=" + std::to_string(inputs.end_time)});

  if (!inputs.scenario_base_per_class.empty()) {
    std::uint64_t base_total = 0;
    std::uint64_t accounted_total = 0;
    for (std::size_t cls = 0; cls < inputs.scenario_base_per_class.size();
         ++cls) {
      const std::uint64_t base = inputs.scenario_base_per_class[cls];
      const std::uint64_t lost =
          cls < inputs.scenario_handoff_lost.size()
              ? inputs.scenario_handoff_lost[cls]
              : 0;
      const std::uint64_t arrived =
          cls < inputs.per_class.size() ? inputs.per_class[cls].arrived : 0;
      base_total += base;
      accounted_total += arrived + lost;
      report.checks.push_back(InvariantCheck{
          std::string("conservation-handoff-") + class_letter(cls),
          arrived + lost == base,
          "base=" + std::to_string(base) +
              " arrived=" + std::to_string(arrived) +
              " handoff_lost=" + std::to_string(lost)});
    }
    report.checks.push_back(InvariantCheck{
        "conservation-handoff-total", accounted_total == base_total,
        "base=" + std::to_string(base_total) +
            " accounted=" + std::to_string(accounted_total)});
  }

  if (inputs.gap_bound > 0.0) {
    for (std::size_t cls = 0; cls < inputs.per_class.size(); ++cls) {
      const metrics::ClassStats& s = inputs.per_class[cls];
      // A class served fewer than twice has no gap sample; that is a pass
      // (nothing to bound), not a vacuous failure.
      const double worst = s.gap.count() > 0 ? s.gap.max() : 0.0;
      report.checks.push_back(InvariantCheck{
          std::string("service-gap-bound-") + class_letter(cls),
          worst <= inputs.gap_bound,
          "max_gap=" + std::to_string(worst) +
              " bound=" + std::to_string(inputs.gap_bound) +
              " samples=" + std::to_string(s.gap.count())});
    }
  }

  return report;
}

std::string format_report(const InvariantReport& report) {
  std::string out;
  for (const InvariantCheck& check : report.checks) {
    out += check.pass ? "PASS " : "FAIL ";
    out += check.name;
    if (!check.detail.empty()) {
      out += " — ";
      out += check.detail;
    }
    out += '\n';
  }
  return out;
}

}  // namespace pushpull::resilience
