#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pushpull::resilience {

/// Schema tag of the queue-snapshot record format. Bumped whenever the
/// layout changes, so a warm restore can never silently mis-parse a record
/// produced by a different version.
inline constexpr std::string_view kSnapshotSchema = "snap1";

/// The server's periodically checkpointed pull-queue state: which requests
/// were queued, and when the snapshot was taken. Warm recovery restores
/// exactly the requests covered by the latest snapshot; everything newer
/// storms.
struct QueueSnapshot {
  double time = 0.0;
  std::vector<std::uint64_t> queued;  // request ids, in queue order
};

/// Serializes a snapshot as a single-line record:
///
///   snap1 <fingerprint> <time-hexfloat> <count> <id> <id> ...
///
/// `fingerprint` identifies the (catalog, scenario, config) the snapshot
/// belongs to; the time is hexfloat (runtime::encode_double) so restores
/// are bit-exact. The record is also valid as a runtime::RunReporter
/// payload, so crash-safe persistence gets the same tolerant-reader
/// semantics as replication checkpoints.
[[nodiscard]] std::string encode_snapshot(const QueueSnapshot& snapshot,
                                          std::uint64_t fingerprint);

/// Inverse of encode_snapshot. Throws std::runtime_error when the schema
/// tag or the fingerprint does not match `expected_fingerprint`, or on a
/// truncated/malformed record — restoring a snapshot from a different
/// catalog or config would silently mis-restore the queue.
[[nodiscard]] QueueSnapshot decode_snapshot(const std::string& record,
                                            std::uint64_t expected_fingerprint);

}  // namespace pushpull::resilience
