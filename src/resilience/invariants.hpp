#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "metrics/class_stats.hpp"

namespace pushpull::resilience {

/// Everything the invariant suite needs to audit one finished run. Kept
/// free of any core/exp dependency so the checks can run against raw
/// counters from any harness (ctest, the chaos CLI, the soak workflow).
struct InvariantInputs {
  std::vector<metrics::ClassStats> per_class;
  /// Hard pull-queue capacity in force (0 = unbounded).
  std::size_t queue_capacity = 0;
  /// Soft cap that engaged under overload, if any (0 = none). The queue-cap
  /// bound uses max(queue_capacity, soft_capacity) as the admissible peak:
  /// a soft cap may engage after the queue already grew past it.
  std::size_t soft_capacity = 0;
  /// Largest pull-queue length observed during the run.
  std::size_t max_queue_len = 0;
  /// Times the simulator popped an event scheduled before current time.
  std::uint64_t event_order_violations = 0;
  double end_time = 0.0;
  /// Scenario shaping audit (empty = no scenario in force). When sized,
  /// the suite checks conservation *across handoff*: per class, the
  /// requests the server saw arrive plus the requests the shaper dropped
  /// mid-handoff must equal the base trace — a migration may delay or lose
  /// a request but never mint or double-count one.
  std::vector<std::uint64_t> scenario_base_per_class;
  std::vector<std::uint64_t> scenario_handoff_lost;
  /// When positive, every class's maximum inter-service gap must stay
  /// within this bound (the "regular service" guarantee under chaos);
  /// 0 disables the check.
  double gap_bound = 0.0;
};

/// One named check with a human-readable verdict.
struct InvariantCheck {
  std::string name;
  bool pass = false;
  std::string detail;
};

struct InvariantReport {
  std::vector<InvariantCheck> checks;

  [[nodiscard]] bool all_pass() const noexcept;
  [[nodiscard]] std::size_t failures() const noexcept;

  /// Appends another report's checks (used to pool replications).
  void merge(const InvariantReport& other);
};

/// Runs the machine-verified invariant suite:
///
///  * conservation — per class and in aggregate,
///      arrived == served + blocked + abandoned + shed + lost + rejected
///    (every admitted request is accounted for exactly once, crashes and
///    degradation included);
///  * queue-cap — with a cap in force the observed peak never exceeds it;
///  * event-order — simulated time never ran backwards;
///  * end-time — the run finished at a finite, non-negative instant;
///  * conservation-handoff — with a scenario in force, per class and in
///    aggregate, server-observed arrivals + shaper handoff losses equal
///    the base trace (emitted only when scenario_base_per_class is sized);
///  * service-gap-bound — with gap_bound > 0, no class's maximum
///    inter-service gap exceeds it.
[[nodiscard]] InvariantReport check_invariants(const InvariantInputs& inputs);

/// Formats a report as aligned "PASS/FAIL name — detail" lines.
[[nodiscard]] std::string format_report(const InvariantReport& report);

}  // namespace pushpull::resilience
