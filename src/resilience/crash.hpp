#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "rng/xoshiro256ss.hpp"

namespace pushpull::resilience {

/// What the server remembers when it comes back after a crash.
enum class RecoveryMode {
  /// Pull queue and pending-request state are lost. Every queued client
  /// notices the silence after `rerequest_timeout` and re-requests — the
  /// re-request storm. The broadcast program also restarts from the top.
  kCold,
  /// State is restored from the latest periodic in-sim snapshot (see
  /// resilience::encode_snapshot); only requests that arrived after the
  /// snapshot storm, so the storm shrinks with the snapshot interval.
  kWarm,
};

[[nodiscard]] std::string_view to_string(RecoveryMode mode) noexcept;

/// Parses "cold" / "warm"; throws std::invalid_argument otherwise.
[[nodiscard]] RecoveryMode parse_recovery_mode(const std::string& name);

/// Seeded server crash/recovery model. Disabled by default and, when
/// disabled, bit-invisible: no crash stream is constructed and no events
/// are scheduled, so simulation output matches a build without it.
struct CrashConfig {
  /// Master switch: when false nothing below is consulted.
  bool enabled = false;

  /// Crash arrival rate (Poisson process, crashes per broadcast unit of
  /// the trace span). 0 with `enabled` means "armed but never fires" —
  /// useful for the warm-recovery ≡ fault-free equivalence check.
  double rate = 0.0;

  /// How long the server stays dark after each crash, in broadcast units.
  double downtime = 50.0;

  RecoveryMode recovery = RecoveryMode::kCold;

  /// Warm recovery: how often the server snapshots its pull-queue state.
  double snapshot_interval = 100.0;

  /// How long a client whose request vanished in the crash waits before
  /// re-requesting (it cannot tell a crash from a long queue any earlier).
  double rerequest_timeout = 20.0;

  /// Re-requests are jittered uniformly over [0, storm_spread) so the storm
  /// is a burst, not a single instant; 0 = everyone hits at once.
  double storm_spread = 10.0;

  /// Hard bound on crashes per run, so an adversarial rate cannot wedge a
  /// simulation in a crash/recover loop forever.
  std::size_t max_crashes = 64;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// The deterministic list of crash instants for one run: a Poisson process
/// over [0, horizon], thinned so no crash lands inside the previous crash's
/// downtime, drawn from the run's own named RNG stream.
class CrashSchedule {
 public:
  CrashSchedule() = default;

  /// Explicit instants (tests, replayed schedules). Must be sorted and
  /// non-negative; throws std::invalid_argument otherwise.
  explicit CrashSchedule(std::vector<double> times);

  /// Samples the schedule for one run. `engine` should come from
  /// rng::StreamFactory::stream("crash-schedule") so crash draws never
  /// perturb any other stochastic component.
  [[nodiscard]] static CrashSchedule poisson(const CrashConfig& config,
                                             double horizon,
                                             // detlint:allow(D5): sink
                                             rng::Xoshiro256ss engine);

  [[nodiscard]] const std::vector<double>& times() const noexcept {
    return times_;
  }
  [[nodiscard]] bool empty() const noexcept { return times_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return times_.size(); }

 private:
  std::vector<double> times_;
};

}  // namespace pushpull::resilience
