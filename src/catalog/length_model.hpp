#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "rng/alias_table.hpp"

namespace pushpull::catalog {

/// Generates item lengths per the paper's assumption 3: integer lengths in
/// [min_length, max_length] with a target mean (default 1..5, mean 2).
///
/// The length distribution is truncated-geometric: weight(k) ∝ r^(k-min),
/// with the ratio r solved numerically so the mean hits `mean_length`
/// exactly. This gives a one-parameter family that covers any feasible mean
/// in (min, max) and reduces to uniform when the mean is the midpoint.
class LengthModel {
 public:
  LengthModel(std::uint32_t min_length, std::uint32_t max_length,
              double mean_length);

  /// Paper defaults: lengths 1..5, mean 2.
  [[nodiscard]] static LengthModel paper_default() {
    return LengthModel(1, 5, 2.0);
  }

  [[nodiscard]] std::uint32_t min_length() const noexcept { return min_; }
  [[nodiscard]] std::uint32_t max_length() const noexcept { return max_; }

  /// Exact mean of the fitted distribution (equals the requested mean).
  [[nodiscard]] double mean() const noexcept;

  /// Probability of each length value; index 0 corresponds to min_length.
  [[nodiscard]] const std::vector<double>& weights() const noexcept {
    return weights_;
  }

  /// Draws one length.
  template <typename Engine>
  [[nodiscard]] double sample(Engine& eng) const {
    return static_cast<double>(min_ + table_.sample(eng));
  }

  /// Draws `count` lengths.
  template <typename Engine>
  [[nodiscard]] std::vector<double> generate(Engine& eng,
                                             std::size_t count) const {
    std::vector<double> lengths(count);
    for (auto& len : lengths) len = sample(eng);
    return lengths;
  }

 private:
  std::uint32_t min_;
  std::uint32_t max_;
  std::vector<double> weights_;
  rng::AliasTable table_;
};

}  // namespace pushpull::catalog
