#include "catalog/length_model.hpp"

#include <cmath>
#include <stdexcept>

namespace pushpull::catalog {
namespace {

/// Mean of the truncated geometric distribution weight(k) ∝ r^(k-min) on
/// the integer support [min, max].
double truncated_geometric_mean(std::uint32_t min, std::uint32_t max,
                                double r) {
  double total_weight = 0.0;
  double total_mass = 0.0;
  double w = 1.0;
  for (std::uint32_t k = min; k <= max; ++k, w *= r) {
    total_weight += w;
    total_mass += w * static_cast<double>(k);
  }
  return total_mass / total_weight;
}

}  // namespace

LengthModel::LengthModel(std::uint32_t min_length, std::uint32_t max_length,
                         double mean_length)
    : min_(min_length), max_(max_length) {
  if (min_ > max_) {
    throw std::invalid_argument("LengthModel: min_length > max_length");
  }
  if (mean_length <= static_cast<double>(min_) ||
      mean_length >= static_cast<double>(max_)) {
    if (min_ == max_ && mean_length == static_cast<double>(min_)) {
      weights_ = {1.0};
      table_ = rng::AliasTable(weights_);
      return;
    }
    throw std::invalid_argument(
        "LengthModel: mean must lie strictly inside (min, max)");
  }

  // truncated_geometric_mean is strictly increasing in r, from min (r→0) to
  // max (r→∞); bisect for the ratio that hits the requested mean.
  double lo = 1e-9;
  double hi = 1e9;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = std::sqrt(lo * hi);  // geometric bisection: r spans decades
    if (truncated_geometric_mean(min_, max_, mid) < mean_length) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double r = std::sqrt(lo * hi);

  const std::size_t support = static_cast<std::size_t>(max_ - min_) + 1;
  weights_.resize(support);
  double w = 1.0;
  double norm = 0.0;
  for (std::size_t i = 0; i < support; ++i, w *= r) {
    weights_[i] = w;
    norm += w;
  }
  for (auto& weight : weights_) weight /= norm;
  table_ = rng::AliasTable(weights_);
}

double LengthModel::mean() const noexcept {
  double m = 0.0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    m += weights_[i] * static_cast<double>(min_ + i);
  }
  return m;
}

}  // namespace pushpull::catalog
