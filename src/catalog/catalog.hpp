#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "catalog/item.hpp"
#include "catalog/length_model.hpp"
#include "rng/alias_table.hpp"

namespace pushpull::catalog {

/// The server database: D items in popularity-rank order (most popular
/// first) with access probabilities and variable lengths. Immutable once
/// built — schedulers refer to items by id and never mutate the catalog.
///
/// Probabilities are usually Zipf(θ) per the paper, but an explicit
/// probability vector is also accepted (the adaptive server builds catalogs
/// from *estimated* popularities when it re-optimizes the cutoff).
class Catalog {
 public:
  /// Zipf(theta) popularities; lengths drawn from `lengths` using `seed`
  /// (streamed, so the same seed gives the same catalog regardless of what
  /// else consumes randomness).
  Catalog(std::size_t num_items, double theta, const LengthModel& lengths,
          std::uint64_t seed);

  /// Explicit lengths; popularities are Zipf(theta).
  Catalog(std::vector<double> item_lengths, double theta);

  /// Fully explicit: lengths and unnormalized popularity weights, already
  /// in rank order (weights must be non-increasing). theta() reports 0.
  Catalog(std::vector<double> item_lengths,
          std::vector<double> popularity_weights);

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }

  /// The Zipf skew this catalog was built with (0 for explicit weights).
  [[nodiscard]] double theta() const noexcept { return theta_; }

  [[nodiscard]] const Item& item(ItemId id) const noexcept {
    return items_[id];
  }
  [[nodiscard]] std::span<const Item> items() const noexcept {
    return items_;
  }
  [[nodiscard]] double length(ItemId id) const noexcept {
    return items_[id].length;
  }
  [[nodiscard]] double probability(ItemId id) const noexcept {
    return items_[id].access_prob;
  }

  /// Draws an item id according to the access probabilities.
  template <typename Engine>
  [[nodiscard]] ItemId sample(Engine& eng) const {
    return static_cast<ItemId>(sampler_.sample(eng));
  }

  /// Σ_{i<K} P_i — probability mass of the push set under cutoff K.
  [[nodiscard]] double push_probability(std::size_t cutoff) const noexcept;

  /// Σ_{i>=K} P_i — probability mass of the pull set under cutoff K.
  [[nodiscard]] double pull_probability(std::size_t cutoff) const noexcept;

  /// Paper assumption 2: μ₁ = Σ_{i<K} P_i·L_i, the popularity-weighted
  /// service demand of the push side.
  [[nodiscard]] double push_service_demand(std::size_t cutoff) const noexcept;

  /// Paper assumption 2: μ₂ = Σ_{i>=K} P_i·L_i for the pull side.
  [[nodiscard]] double pull_service_demand(std::size_t cutoff) const noexcept;

  /// Total airtime of one flat broadcast cycle over the push set,
  /// Σ_{i<K} L_i.
  [[nodiscard]] double push_cycle_length(std::size_t cutoff) const noexcept;

  /// Popularity-weighted mean length of the pull set,
  /// Σ_{i>=K} P_i·L_i / Σ_{i>=K} P_i (0 if the pull set is empty).
  [[nodiscard]] double pull_mean_length(std::size_t cutoff) const noexcept;

 private:
  void finish_build(std::span<const double> pmf);

  std::vector<Item> items_;
  double theta_ = 0.0;
  rng::AliasTable sampler_;
  // Prefix sums over rank order, index k = sum over items [0, k).
  std::vector<double> prefix_prob_;
  std::vector<double> prefix_len_;
  std::vector<double> prefix_prob_len_;
};

/// A cutoff-point view over a catalog: items [0, cutoff) are pushed, items
/// [cutoff, D) are pulled.
class Partition {
 public:
  Partition(const Catalog& cat, std::size_t cutoff) noexcept
      : catalog_(&cat), cutoff_(cutoff) {}

  [[nodiscard]] std::size_t cutoff() const noexcept { return cutoff_; }
  [[nodiscard]] const Catalog& catalog() const noexcept { return *catalog_; }

  [[nodiscard]] bool is_push(ItemId id) const noexcept {
    return id < cutoff_;
  }
  [[nodiscard]] bool is_pull(ItemId id) const noexcept {
    return id >= cutoff_;
  }
  [[nodiscard]] std::size_t push_count() const noexcept { return cutoff_; }
  [[nodiscard]] std::size_t pull_count() const noexcept {
    return catalog_->size() - cutoff_;
  }

 private:
  const Catalog* catalog_;
  std::size_t cutoff_;
};

}  // namespace pushpull::catalog
