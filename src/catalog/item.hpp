#pragma once

#include <cstdint>

namespace pushpull::catalog {

/// Index of an item in the catalog. Items are stored in popularity-rank
/// order, so id 0 is the most popular item — the paper's "item 1".
using ItemId = std::uint32_t;

/// One database item. Lengths are in broadcast units (airtime of the item);
/// the paper draws them from {1..5} with mean 2. `access_prob` is the Zipf
/// popularity P_i; the catalog guarantees these sum to 1.
struct Item {
  ItemId id = 0;
  double length = 1.0;
  double access_prob = 0.0;
};

}  // namespace pushpull::catalog
