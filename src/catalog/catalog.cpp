#include "catalog/catalog.hpp"

#include <numeric>
#include <stdexcept>

#include "rng/stream.hpp"
#include "rng/zipf.hpp"

namespace pushpull::catalog {

Catalog::Catalog(std::size_t num_items, double theta,
                 const LengthModel& lengths, std::uint64_t seed)
    : theta_(theta) {
  rng::ZipfDistribution zipf(num_items, theta);
  rng::StreamFactory streams(seed);
  auto eng = streams.stream("catalog-lengths");
  items_.resize(num_items);
  for (std::size_t i = 0; i < num_items; ++i) {
    items_[i] =
        Item{static_cast<ItemId>(i), lengths.sample(eng), zipf.pmf(i)};
  }
  finish_build(zipf.probabilities());
}

Catalog::Catalog(std::vector<double> item_lengths, double theta)
    : theta_(theta) {
  if (item_lengths.empty()) {
    throw std::invalid_argument("Catalog: at least one item required");
  }
  rng::ZipfDistribution zipf(item_lengths.size(), theta);
  items_.resize(item_lengths.size());
  for (std::size_t i = 0; i < item_lengths.size(); ++i) {
    if (item_lengths[i] <= 0.0) {
      throw std::invalid_argument("Catalog: item lengths must be positive");
    }
    items_[i] = Item{static_cast<ItemId>(i), item_lengths[i], zipf.pmf(i)};
  }
  finish_build(zipf.probabilities());
}

Catalog::Catalog(std::vector<double> item_lengths,
                 std::vector<double> popularity_weights) {
  if (item_lengths.empty()) {
    throw std::invalid_argument("Catalog: at least one item required");
  }
  if (item_lengths.size() != popularity_weights.size()) {
    throw std::invalid_argument(
        "Catalog: lengths and popularity weights must align");
  }
  double total = 0.0;
  for (std::size_t i = 0; i < popularity_weights.size(); ++i) {
    if (popularity_weights[i] < 0.0) {
      throw std::invalid_argument("Catalog: negative popularity weight");
    }
    if (i > 0 && popularity_weights[i] > popularity_weights[i - 1]) {
      throw std::invalid_argument(
          "Catalog: popularity weights must be in rank (non-increasing) "
          "order");
    }
    total += popularity_weights[i];
  }
  if (!(total > 0.0)) {
    throw std::invalid_argument("Catalog: popularity weights sum to zero");
  }
  items_.resize(item_lengths.size());
  std::vector<double> pmf(popularity_weights.size());
  for (std::size_t i = 0; i < item_lengths.size(); ++i) {
    if (item_lengths[i] <= 0.0) {
      throw std::invalid_argument("Catalog: item lengths must be positive");
    }
    pmf[i] = popularity_weights[i] / total;
    items_[i] = Item{static_cast<ItemId>(i), item_lengths[i], pmf[i]};
  }
  finish_build(pmf);
}

void Catalog::finish_build(std::span<const double> pmf) {
  sampler_ = rng::AliasTable(pmf);
  const std::size_t n = items_.size();
  prefix_prob_.assign(n + 1, 0.0);
  prefix_len_.assign(n + 1, 0.0);
  prefix_prob_len_.assign(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    prefix_prob_[i + 1] = prefix_prob_[i] + items_[i].access_prob;
    prefix_len_[i + 1] = prefix_len_[i] + items_[i].length;
    prefix_prob_len_[i + 1] =
        prefix_prob_len_[i] + items_[i].access_prob * items_[i].length;
  }
}

double Catalog::push_probability(std::size_t cutoff) const noexcept {
  return prefix_prob_[cutoff];
}

double Catalog::pull_probability(std::size_t cutoff) const noexcept {
  return prefix_prob_.back() - prefix_prob_[cutoff];
}

double Catalog::push_service_demand(std::size_t cutoff) const noexcept {
  return prefix_prob_len_[cutoff];
}

double Catalog::pull_service_demand(std::size_t cutoff) const noexcept {
  return prefix_prob_len_.back() - prefix_prob_len_[cutoff];
}

double Catalog::push_cycle_length(std::size_t cutoff) const noexcept {
  return prefix_len_[cutoff];
}

double Catalog::pull_mean_length(std::size_t cutoff) const noexcept {
  const double mass = pull_probability(cutoff);
  if (mass <= 0.0) return 0.0;
  return pull_service_demand(cutoff) / mass;
}

}  // namespace pushpull::catalog
