#pragma once

#include <cstddef>
#include <cstdint>

#include "catalog/catalog.hpp"
#include "core/config.hpp"
#include "core/hybrid_server.hpp"
#include "core/result.hpp"
#include "scenario/presets.hpp"
#include "scenario/shaper.hpp"
#include "workload/population.hpp"
#include "workload/trace.hpp"

namespace pushpull::exp {

/// The paper's §5.1 simulation setup in one value: D = 100 items, Zipf(θ)
/// popularities, lengths 1..5 with mean 2, aggregate Poisson arrivals at
/// λ' = 5, and three service classes A/B/C with priorities 3:2:1 and
/// Zipf-distributed populations (fewest Class-A clients).
///
/// `build()` materializes the catalog, population and a recorded request
/// trace; the same Scenario value always builds the same workload, and
/// sweeps that vary only the scheduler configuration replay the identical
/// trace (paired comparisons).
struct Scenario {
  std::size_t num_items = 100;
  double theta = 0.60;
  double arrival_rate = 5.0;
  std::size_t num_classes = 3;
  double class_zipf_theta = 1.0;
  std::uint32_t min_length = 1;
  std::uint32_t max_length = 5;
  double mean_length = 2.0;
  std::uint64_t seed = 20050614;  // ICPP 2005 vintage
  std::size_t num_requests = 100000;
  /// Worker threads for replication/sweep fan-out: 1 = legacy serial path
  /// (the default — libraries opt in), 0 = hardware concurrency, N = N
  /// threads. Results are bit-identical for every value; only wall time
  /// changes (each replication/grid point keeps its index-derived seed and
  /// results merge in job-index order).
  std::size_t jobs = 1;
  /// Environment timeline applied to the recorded trace (kNone = the
  /// stationary workload, bit-identical to pre-scenario builds — shaping
  /// draws no RNG, so the generator streams are untouched either way).
  pushpull::scenario::Preset preset = pushpull::scenario::Preset::kNone;
  /// How far the preset departs from the stationary baseline (1.0 =
  /// nominal); must be positive finite when a preset is active.
  double preset_intensity = 1.0;

  /// Materialized workload for a scenario.
  struct Built {
    catalog::Catalog catalog;
    workload::ClientPopulation population;
    workload::Trace trace;
    /// Shaping audit (inactive when preset == kNone); feeds the
    /// conservation-across-handoff invariant.
    pushpull::scenario::ShapeSummary shape;
  };

  /// Rejects unusable parameter combinations (zero counts, non-positive
  /// arrival rate, zero-length items, max_length < min_length, non-finite
  /// theta) with a std::invalid_argument naming the offending field.
  /// build() calls this first, so a bad scenario fails before any work.
  void validate() const;

  [[nodiscard]] Built build() const;
};

/// Runs the hybrid server for one configuration over a built scenario.
[[nodiscard]] core::SimResult run_hybrid(const Scenario::Built& built,
                                         const core::HybridConfig& config);

/// A run plus its observability report (empty unless config.obs.enabled).
struct ObservedRun {
  core::SimResult result;
  obs::ObsReport obs;
};

/// Like run_hybrid, but also returns the run's observability report. With
/// observation disabled the simulation output is bit-identical to
/// run_hybrid — observation is write-only.
[[nodiscard]] ObservedRun run_hybrid_observed(const Scenario::Built& built,
                                              const core::HybridConfig& config);

}  // namespace pushpull::exp
