#include "exp/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace pushpull::exp {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: at least one column");
  }
}

Table& Table::row() {
  if (!rows_.empty() && rows_.back().size() != headers_.size()) {
    throw std::logic_error("Table: previous row incomplete");
  }
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::add(std::string value) {
  if (rows_.empty() || rows_.back().size() >= headers_.size()) {
    throw std::logic_error("Table: call row() before add()");
  }
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::add(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return add(ss.str());
}

Table& Table::add(std::size_t value) { return add(std::to_string(value)); }

Table& Table::add(long long value) { return add(std::to_string(value)); }

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << std::setw(static_cast<int>(width[c])) << cells[c];
      if (c + 1 != cells.size()) out << "  ";
    }
    out << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c + 1 != width.size() ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& r : rows_) print_row(r);
}

void Table::print_csv(std::ostream& out) const {
  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << cells[c];
      if (c + 1 != cells.size()) out << ',';
    }
    out << '\n';
  };
  print_row(headers_);
  for (const auto& r : rows_) print_row(r);
}

}  // namespace pushpull::exp
