#pragma once

#include <string>
#include <vector>

namespace pushpull::exp {

/// One plotted curve: a label and its (x, y) points.
struct PlotSeries {
  std::string label;
  std::vector<std::pair<double, double>> points;
};

/// A figure specification for the gnuplot emitter.
struct PlotSpec {
  std::string title;
  std::string xlabel;
  std::string ylabel;
  std::vector<PlotSeries> series;
};

/// Writes `<prefix>.dat` (whitespace columns: x then one column per series,
/// `?` for missing points) and `<prefix>.gp` (a standalone gnuplot script
/// that renders `<prefix>.png`). Figure benches call this behind their
/// `--plot PREFIX` option so every paper figure can be rendered graphically
/// without any plotting dependency in this repository.
///
/// Throws std::runtime_error if either file cannot be written.
void write_gnuplot(const std::string& prefix, const PlotSpec& spec);

}  // namespace pushpull::exp
