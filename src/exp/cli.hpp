#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace pushpull::exp {

/// Minimal command-line parser for the CLI tool and bench binaries:
/// `--key value` options, `--flag` booleans, and positional arguments.
/// Unknown keys are kept until the caller validates them with
/// require_known(); values are parsed on access with clear errors (a
/// malformed value — "abc", "12abc", a negative count — throws
/// std::invalid_argument naming the flag, never silently truncates).
class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  /// Positional arguments in order (argv[0] excluded).
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  [[nodiscard]] bool has(const std::string& key) const noexcept {
    return options_.contains(key);
  }

  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] std::size_t get_size(const std::string& key,
                                     std::size_t fallback) const;
  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t fallback) const;

  /// Strictly-positive numeric option (`--duration SEC`, `--target-qps N`,
  /// `--time-scale X`): absent returns `fallback`; present values must
  /// parse as a full token to a positive finite number — zero, negatives
  /// ("-3"), non-finite values ("inf", "nan") and garble ("abc", "12abc")
  /// all throw std::invalid_argument (IS-A std::logic_error) naming the
  /// flag, matching the rest of the parser's no-silent-truncation policy.
  [[nodiscard]] double get_positive_double(const std::string& key,
                                           double fallback) const;

  /// Non-negative numeric option (`--spike-start T`, `--spike-duration T`):
  /// same contract as get_positive_double except 0 is allowed — negatives,
  /// non-finite values and garble throw std::invalid_argument naming the
  /// flag.
  [[nodiscard]] double get_nonnegative_double(const std::string& key,
                                              double fallback) const;

  /// Strictly-positive integer option: absent returns `fallback`; present
  /// values must be a full-token integer >= 1 (zero, signs and garble throw
  /// std::invalid_argument naming the flag).
  [[nodiscard]] std::uint64_t get_positive_u64(const std::string& key,
                                               std::uint64_t fallback) const;

  /// Worker-count option (`--jobs N`): absent means "one worker per
  /// hardware thread" (std::thread::hardware_concurrency, at least 1);
  /// `--jobs 1` forces the legacy serial path. An explicit `--jobs 0` (or
  /// any non-positive/garbled value) throws std::invalid_argument — omit
  /// the flag to request auto. Never returns 0.
  [[nodiscard]] std::size_t get_jobs(const std::string& key) const;

  /// Validates that every `--option` the user passed is in `allowed` (or
  /// the optional `extra` list — convenient for "common + per-command"
  /// option sets); throws std::invalid_argument naming an unknown option
  /// otherwise. Call once per command so typos fail loudly instead of
  /// being silently ignored.
  void require_known(std::initializer_list<std::string_view> allowed,
                     std::initializer_list<std::string_view> extra = {}) const;

 private:
  std::unordered_map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace pushpull::exp
