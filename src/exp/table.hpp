#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace pushpull::exp {

/// Aligned-column text table for experiment output. Every bench binary
/// prints its figure/table through this so the rows are uniform and easy to
/// diff against EXPERIMENTS.md.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; fill it with add().
  Table& row();

  Table& add(std::string value);
  Table& add(double value, int precision = 3);
  Table& add(std::size_t value);
  Table& add(long long value);

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows()
      const noexcept {
    return rows_;
  }

  /// Renders with per-column width, a header underline and 2-space gutters.
  void print(std::ostream& out) const;

  /// Renders as CSV (headers + rows).
  void print_csv(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pushpull::exp
