#include "exp/scenario.hpp"

#include "catalog/length_model.hpp"
#include "workload/request_generator.hpp"

namespace pushpull::exp {

Scenario::Built Scenario::build() const {
  catalog::LengthModel lengths(min_length, max_length, mean_length);
  catalog::Catalog cat(num_items, theta, lengths, seed);
  workload::ClientPopulation pop =
      workload::ClientPopulation::zipf_classes(num_classes, class_zipf_theta);
  workload::RequestGenerator gen(cat, pop, arrival_rate, seed);
  workload::Trace trace = workload::Trace::record(gen, num_requests);
  return Built{std::move(cat), std::move(pop), std::move(trace)};
}

core::SimResult run_hybrid(const Scenario::Built& built,
                           const core::HybridConfig& config) {
  core::HybridServer server(built.catalog, built.population, config);
  return server.run(built.trace);
}

}  // namespace pushpull::exp
