#include "exp/scenario.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "catalog/length_model.hpp"
#include "rng/splitmix64.hpp"
#include "scenario/timeline.hpp"
#include "workload/request_generator.hpp"

namespace pushpull::exp {

void Scenario::validate() const {
  if (num_items == 0) {
    throw std::invalid_argument("Scenario: num_items must be >= 1");
  }
  if (num_classes == 0) {
    throw std::invalid_argument("Scenario: num_classes must be >= 1");
  }
  if (num_requests == 0) {
    throw std::invalid_argument("Scenario: num_requests must be >= 1");
  }
  if (!(arrival_rate > 0.0) || !std::isfinite(arrival_rate)) {
    throw std::invalid_argument(
        "Scenario: arrival_rate must be a positive finite number, got " +
        std::to_string(arrival_rate));
  }
  if (min_length == 0) {
    throw std::invalid_argument(
        "Scenario: min_length must be >= 1 (zero-length items never finish "
        "transmitting)");
  }
  if (max_length < min_length) {
    throw std::invalid_argument(
        "Scenario: max_length (" + std::to_string(max_length) +
        ") must be >= min_length (" + std::to_string(min_length) + ")");
  }
  if (!(theta >= 0.0) || !std::isfinite(theta)) {
    throw std::invalid_argument(
        "Scenario: theta must be a non-negative finite number");
  }
  if (preset != pushpull::scenario::Preset::kNone &&
      (!(preset_intensity > 0.0) || !std::isfinite(preset_intensity))) {
    throw std::invalid_argument(
        "Scenario: preset_intensity must be a positive finite number when a "
        "scenario preset is active");
  }
}

Scenario::Built Scenario::build() const {
  validate();
  catalog::LengthModel lengths(min_length, max_length, mean_length);
  catalog::Catalog cat(num_items, theta, lengths, seed);
  workload::ClientPopulation pop =
      workload::ClientPopulation::zipf_classes(num_classes, class_zipf_theta);
  workload::RequestGenerator gen(cat, pop, arrival_rate, seed);
  workload::Trace trace = workload::Trace::record(gen, num_requests);
  pushpull::scenario::ShapeSummary shape;
  if (preset != pushpull::scenario::Preset::kNone) {
    const pushpull::scenario::Timeline timeline =
        pushpull::scenario::make_timeline(preset, preset_intensity,
                                          trace.span(), num_items);
    // Shaping is seeded from the scenario seed on its own hash chain so the
    // handoff draws are independent of the generator streams.
    pushpull::scenario::ShapedTrace shaped = pushpull::scenario::shape_trace(
        trace, timeline, rng::SplitMix64::mix(seed ^ 0x5EEDCAFEULL),
        num_items, num_classes);
    trace = std::move(shaped.trace);
    shape = std::move(shaped.summary);
  }
  return Built{std::move(cat), std::move(pop), std::move(trace),
               std::move(shape)};
}

core::SimResult run_hybrid(const Scenario::Built& built,
                           const core::HybridConfig& config) {
  core::HybridServer server(built.catalog, built.population, config);
  return server.run(built.trace);
}

ObservedRun run_hybrid_observed(const Scenario::Built& built,
                                const core::HybridConfig& config) {
  core::HybridServer server(built.catalog, built.population, config);
  ObservedRun run;
  run.result = server.run(built.trace);
  run.obs = server.obs_report();
  return run;
}

}  // namespace pushpull::exp
