#include "exp/replication.hpp"

#include <algorithm>
#include <bit>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/export.hpp"
#include "rng/splitmix64.hpp"
#include "runtime/runtime.hpp"

namespace pushpull::exp {

namespace {

/// One replication's pooled metrics, each a single-sample Welford. Partials
/// are produced by workers in any order and merged into the summary strictly
/// by replication index, which keeps parallel runs bit-identical to serial
/// ones (the summary sees the same merge sequence either way).
struct RepPartial {
  metrics::Welford overall_delay;
  std::vector<metrics::Welford> class_delay;
  metrics::Welford total_cost;
  metrics::Welford blocking;
  metrics::Welford pull_queue_len;
  /// Rendered obs JSONL chunk of this replication (lines tagged "rep":N);
  /// empty when observation is off. Travels inside the checkpoint payload
  /// so a resumed run reproduces the merged trace byte-for-byte.
  std::string obs_chunk;
};

RepPartial run_one(const Scenario& scenario, const core::HybridConfig& config,
                   const obs::ObsConfig& obs_config, std::size_t rep) {
  Scenario s = scenario;
  // Decorrelate replications without risking accidental seed reuse.
  s.seed = rng::SplitMix64::mix(scenario.seed + rep);
  core::HybridConfig c = config;
  c.seed = rng::SplitMix64::mix(s.seed ^ 0x5EEDCAFEULL);
  c.obs = obs_config;

  const auto built = s.build();
  if (built.population.num_classes() != scenario.num_classes) {
    // class_delay is indexed by the *built* population's class ids; a
    // scenario whose build() disagrees with its declared num_classes would
    // silently mis-slot (or overrun) the per-class pools.
    throw std::runtime_error(
        "replicate_hybrid: scenario declares " +
        std::to_string(scenario.num_classes) +
        " classes but the built population has " +
        std::to_string(built.population.num_classes()));
  }
  const ObservedRun observed = run_hybrid_observed(built, c);
  const core::SimResult& result = observed.result;

  RepPartial partial;
  if (obs_config.enabled) {
    partial.obs_chunk = obs::render_chunk(observed.obs, rep);
  }
  partial.overall_delay.add(result.overall().wait.mean());
  partial.class_delay.resize(built.population.num_classes());
  for (workload::ClassId cls = 0; cls < built.population.num_classes();
       ++cls) {
    partial.class_delay[cls].add(result.mean_wait(cls));
  }
  partial.total_cost.add(result.total_prioritized_cost(built.population));
  partial.blocking.add(result.overall().blocking_ratio());
  partial.pull_queue_len.add(result.mean_pull_queue_len);
  return partial;
}

// --- checkpoint payload format -------------------------------------------
// "rp1 <num_classes>" followed by the Welford states of overall_delay, each
// class_delay, total_cost, blocking and pull_queue_len, each serialized as
// "<count> <mean> <m2> <sum> <min> <max>" with hexfloat doubles. Hexfloat
// round-trips bit-exactly, which is what keeps a resumed summary identical
// to an uninterrupted one.

void append_welford(std::string& out, const metrics::Welford& w) {
  out += ' ';
  out += std::to_string(w.count());
  for (const double v : {w.mean(), w.m2(), w.sum(), w.min(), w.max()}) {
    out += ' ';
    out += runtime::encode_double(v);
  }
}

metrics::Welford read_welford(std::istringstream& in) {
  std::uint64_t count = 0;
  std::string mean, m2, sum, min, max;
  if (!(in >> count >> mean >> m2 >> sum >> min >> max)) {
    throw std::runtime_error(
        "replicate_hybrid: truncated checkpoint payload");
  }
  return metrics::Welford::restore(
      count, runtime::decode_double(mean), runtime::decode_double(m2),
      runtime::decode_double(sum), runtime::decode_double(min),
      runtime::decode_double(max));
}

// A payload from a traced run additionally carries the rendered trace
// chunk after a " tr1\n" marker. The stats section never contains a
// newline, so the first newline in a payload — if any — is the marker's,
// and splitting on the first " tr1\n" is unambiguous. (RunReporter escapes
// newlines inside JSONL records and CheckpointStore unescapes them, so the
// multi-line chunk round-trips through a progress file intact.)
constexpr std::string_view kTraceMarker = " tr1\n";

std::string serialize_partial(const RepPartial& partial) {
  std::string out = "rp1 " + std::to_string(partial.class_delay.size());
  append_welford(out, partial.overall_delay);
  for (const auto& w : partial.class_delay) append_welford(out, w);
  append_welford(out, partial.total_cost);
  append_welford(out, partial.blocking);
  append_welford(out, partial.pull_queue_len);
  if (!partial.obs_chunk.empty()) {
    out += kTraceMarker;
    out += partial.obs_chunk;
  }
  return out;
}

RepPartial parse_partial(const std::string& payload) {
  const std::size_t marker = payload.find(kTraceMarker);
  std::istringstream in(marker == std::string::npos
                            ? payload
                            : payload.substr(0, marker));
  std::string tag;
  std::size_t num_classes = 0;
  if (!(in >> tag >> num_classes) || tag != "rp1") {
    throw std::runtime_error(
        "replicate_hybrid: unrecognized checkpoint payload (expected 'rp1', "
        "got '" + tag + "') — was the progress file produced by an older "
        "version or a different run?");
  }
  RepPartial partial;
  partial.overall_delay = read_welford(in);
  partial.class_delay.resize(num_classes);
  for (auto& w : partial.class_delay) w = read_welford(in);
  partial.total_cost = read_welford(in);
  partial.blocking = read_welford(in);
  partial.pull_queue_len = read_welford(in);
  if (marker != std::string::npos) {
    partial.obs_chunk = payload.substr(marker + kTraceMarker.size());
  }
  return partial;
}

}  // namespace

std::uint64_t replication_fingerprint(const Scenario& scenario,
                                      const core::HybridConfig& config,
                                      std::size_t replications) {
  // SplitMix64 absorption chain: each field perturbs the state through the
  // full mixer, so swapping two fields or dropping one changes the hash.
  // Doubles enter via their bit pattern — two configs fingerprint equal
  // exactly when every double is bit-identical, matching the bit-exact
  // resume guarantee the fingerprint protects.
  std::uint64_t h = 0x9E3779B97F4A7C15ULL;
  const auto mix = [&h](std::uint64_t v) { h = rng::SplitMix64::mix(h ^ v); };
  const auto mix_d = [&mix](double v) { mix(std::bit_cast<std::uint64_t>(v)); };

  mix(static_cast<std::uint64_t>(scenario.num_items));
  mix_d(scenario.theta);
  mix_d(scenario.arrival_rate);
  mix(static_cast<std::uint64_t>(scenario.num_classes));
  mix_d(scenario.class_zipf_theta);
  mix(scenario.min_length);
  mix(scenario.max_length);
  mix_d(scenario.mean_length);
  mix(scenario.seed);
  mix(static_cast<std::uint64_t>(scenario.num_requests));
  // scenario.jobs deliberately excluded: worker count never changes numbers.
  // Preset fields absorb only when a preset is active, so every
  // pre-scenario progress file keeps its fingerprint and resumes cleanly.
  if (scenario.preset != pushpull::scenario::Preset::kNone) {
    mix(0x5CE4A210ULL);
    mix(static_cast<std::uint64_t>(scenario.preset));
    mix_d(scenario.preset_intensity);
  }

  mix(static_cast<std::uint64_t>(config.cutoff));
  mix_d(config.alpha);
  mix(static_cast<std::uint64_t>(config.pull_policy));
  mix(static_cast<std::uint64_t>(config.push_policy));
  mix_d(config.aging_rate);
  mix_d(config.total_bandwidth);
  mix(static_cast<std::uint64_t>(config.bandwidth_fractions.size()));
  for (const double f : config.bandwidth_fractions) mix_d(f);
  mix_d(config.mean_bandwidth_demand);
  mix_d(config.mean_patience);
  mix(config.seed);
  mix_d(config.warmup_fraction);

  const fault::FaultConfig& fault = config.fault;
  mix(static_cast<std::uint64_t>(fault.enabled));
  mix_d(fault.channel.p_good_to_bad);
  mix_d(fault.channel.p_bad_to_good);
  mix_d(fault.channel.corrupt_good);
  mix_d(fault.channel.corrupt_bad);
  mix(fault.retry.max_retries);
  mix_d(fault.retry.backoff_base);
  mix_d(fault.retry.backoff_multiplier);
  mix_d(fault.retry.max_backoff);
  mix(static_cast<std::uint64_t>(fault.queue_capacity));
  mix(static_cast<std::uint64_t>(fault.shed_policy));

  const resilience::CrashConfig& crash = config.resilience.crash;
  mix(static_cast<std::uint64_t>(crash.enabled));
  mix_d(crash.rate);
  mix_d(crash.downtime);
  mix(static_cast<std::uint64_t>(crash.recovery));
  mix_d(crash.snapshot_interval);
  mix_d(crash.rerequest_timeout);
  mix_d(crash.storm_spread);
  mix(static_cast<std::uint64_t>(crash.max_crashes));

  const resilience::OverloadConfig& overload = config.resilience.overload;
  mix(static_cast<std::uint64_t>(overload.enabled));
  mix_d(overload.eval_interval);
  mix_d(overload.ewma_alpha);
  mix_d(overload.blocking_ref);
  mix(static_cast<std::uint64_t>(overload.capacity_ref));
  mix(static_cast<std::uint64_t>(overload.cutoff_step));
  for (const double v : overload.enter) mix_d(v);
  for (const double v : overload.exit) mix_d(v);

  mix(static_cast<std::uint64_t>(replications));
  return h;
}

ReplicationSummary replicate_hybrid(const Scenario& scenario,
                                    const core::HybridConfig& config,
                                    std::size_t replications) {
  ReplicateOptions options;
  options.jobs = scenario.jobs;
  return replicate_hybrid(scenario, config, replications, options);
}

ReplicationSummary replicate_hybrid(const Scenario& scenario,
                                    const core::HybridConfig& config,
                                    std::size_t replications,
                                    const ReplicateOptions& options) {
  if (replications == 0) {
    throw std::invalid_argument("replicate_hybrid: need >= 1 replication");
  }
  std::size_t jobs = options.jobs == 0
                         ? runtime::ThreadPool::default_concurrency()
                         : options.jobs;
  jobs = std::min(jobs, replications);

  const std::uint64_t fingerprint =
      (options.reporter != nullptr || options.resume != nullptr)
          ? replication_fingerprint(scenario, config, replications)
          : 0;
  if (options.resume) {
    // Refuse to splice a checkpoint from a different experiment; a file
    // without a context record (pre-versioning) is accepted unchecked.
    options.resume->require(kReplicationSchema, fingerprint);
  }

  const runtime::StopWatch watch;
  if (options.reporter) {
    options.reporter->run_started("replicate", replications, jobs);
    options.reporter->run_context(kReplicationSchema, fingerprint);
  }
  const bool tracing = options.obs.enabled;
  auto job = [&](std::size_t rep) {
    if (options.resume) {
      if (const std::string* payload = options.resume->find(rep)) {
        RepPartial restored = parse_partial(*payload);  // done pre-crash
        // A payload written without tracing cannot contribute a trace
        // chunk; recompute the replication (deterministic, so the stats
        // are bit-identical to the restored ones) instead of emitting a
        // merged trace with a silent hole.
        if (!tracing || !restored.obs_chunk.empty()) return restored;
      }
    }
    RepPartial partial = run_one(scenario, config, options.obs, rep);
    if (options.reporter) {
      options.reporter->job_payload(rep, serialize_partial(partial));
    }
    return partial;
  };
  std::vector<RepPartial> partials;
  if (jobs <= 1) {
    partials = runtime::serial_map(replications, job, options.reporter);
  } else {
    runtime::ThreadPool pool(jobs);
    partials = runtime::parallel_map(pool, replications, job,
                                     options.reporter);
  }

  // Merge in replication-index order — never completion order.
  ReplicationSummary summary;
  summary.replications = replications;
  summary.class_delay.resize(partials.front().class_delay.size());
  for (const RepPartial& partial : partials) {
    if (partial.class_delay.size() != summary.class_delay.size()) {
      throw std::runtime_error(
          "replicate_hybrid: replications disagree on class count");
    }
    summary.overall_delay.merge(partial.overall_delay);
    for (std::size_t cls = 0; cls < summary.class_delay.size(); ++cls) {
      summary.class_delay[cls].merge(partial.class_delay[cls]);
    }
    summary.total_cost.merge(partial.total_cost);
    summary.blocking.merge(partial.blocking);
    summary.pull_queue_len.merge(partial.pull_queue_len);
  }
  if (tracing && options.trace_out != nullptr) {
    // Replication-index order, like the stats merge: the file is
    // bit-identical for any jobs value.
    *options.trace_out << obs::render_header(options.obs.categories,
                                             options.obs.trace_capacity);
    for (const RepPartial& partial : partials) {
      *options.trace_out << partial.obs_chunk;
    }
    options.trace_out->flush();
  }
  if (options.reporter) {
    options.reporter->run_finished("replicate", replications,
                                   watch.elapsed_ms());
  }
  return summary;
}

}  // namespace pushpull::exp
