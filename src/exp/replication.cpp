#include "exp/replication.hpp"

#include <stdexcept>

#include "rng/splitmix64.hpp"

namespace pushpull::exp {

ReplicationSummary replicate_hybrid(const Scenario& scenario,
                                    const core::HybridConfig& config,
                                    std::size_t replications) {
  if (replications == 0) {
    throw std::invalid_argument("replicate_hybrid: need >= 1 replication");
  }
  ReplicationSummary summary;
  summary.replications = replications;
  summary.class_delay.resize(scenario.num_classes);

  for (std::size_t rep = 0; rep < replications; ++rep) {
    Scenario s = scenario;
    // Decorrelate replications without risking accidental seed reuse.
    s.seed = rng::SplitMix64::mix(scenario.seed + rep);
    core::HybridConfig c = config;
    c.seed = rng::SplitMix64::mix(s.seed ^ 0x5EEDCAFEULL);

    const auto built = s.build();
    const core::SimResult result = run_hybrid(built, c);

    summary.overall_delay.add(result.overall().wait.mean());
    for (workload::ClassId cls = 0; cls < built.population.num_classes();
         ++cls) {
      summary.class_delay[cls].add(result.mean_wait(cls));
    }
    summary.total_cost.add(result.total_prioritized_cost(built.population));
    summary.blocking.add(result.overall().blocking_ratio());
    summary.pull_queue_len.add(result.mean_pull_queue_len);
  }
  return summary;
}

}  // namespace pushpull::exp
