#pragma once

#include <algorithm>
#include <cstddef>
#include <string_view>
#include <type_traits>
#include <vector>

#include "runtime/checkpoint.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/run_reporter.hpp"
#include "runtime/thread_pool.hpp"

namespace pushpull::exp {

/// Execution knobs for a parameter sweep. Like ReplicateOptions, none of
/// these change the numbers — grid points are evaluated independently and
/// collected in grid order for any worker count.
struct SweepOptions {
  /// 1 = serial on the calling thread, 0 = one worker per hardware thread,
  /// N = N workers (clamped to the number of grid points).
  std::size_t jobs = 1;
  /// Optional JSONL progress sink (one line per finished grid point).
  runtime::RunReporter* reporter = nullptr;
  /// Label stamped on the reporter's run_start/run_end lines. Must outlive
  /// the sweep call (string literals do).
  std::string_view label = "sweep";
  /// Optional checkpoint from a previous (killed) run's JSONL; only
  /// resumable_sweep consumes it — plain sweep() has no way to decode a
  /// stored payload back into fn's result type.
  const runtime::CheckpointStore* resume = nullptr;
};

/// Evaluates `fn(i)` for every grid point i in [0, num_points) — each point
/// typically one full simulation — and returns the results in grid order.
///
/// The contract mirrors replicate_hybrid: `fn` must derive any randomness
/// from its point index (not shared mutable state), may be invoked from
/// multiple threads at once, and whatever it returns is collected by index,
/// so a sweep's output is independent of `options.jobs`. Exceptions from a
/// grid point abort the sweep with the lowest-indexed failure.
template <typename Fn>
[[nodiscard]] auto sweep(std::size_t num_points, Fn&& fn,
                         const SweepOptions& options = {})
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using T = std::invoke_result_t<Fn&, std::size_t>;
  std::size_t jobs = options.jobs == 0
                         ? runtime::ThreadPool::default_concurrency()
                         : options.jobs;
  jobs = std::min(jobs, std::max<std::size_t>(num_points, 1));

  const runtime::StopWatch watch;
  if (options.reporter) {
    options.reporter->run_started(options.label, num_points, jobs);
  }
  std::vector<T> results;
  if (jobs <= 1) {
    results = runtime::serial_map(num_points, fn, options.reporter);
  } else {
    runtime::ThreadPool pool(jobs);
    results = runtime::parallel_map(pool, num_points, fn, options.reporter);
  }
  if (options.reporter) {
    options.reporter->run_finished(options.label, num_points,
                                   watch.elapsed_ms());
  }
  return results;
}

/// Crash-safe variant of sweep(): each finished grid point is checkpointed
/// through `serialize` (result -> payload string, recorded via the
/// reporter), and when `options.resume` holds a payload for point i the
/// point is restored with `deserialize` instead of recomputed. As long as
/// serialize/deserialize round-trip the result exactly (use hexfloat
/// encode_double/decode_double for doubles), a killed-and-resumed sweep is
/// bit-identical to an uninterrupted one for any worker count.
template <typename Fn, typename Ser, typename De>
[[nodiscard]] auto resumable_sweep(std::size_t num_points, Fn&& fn, Ser&& serialize,
                                   De&& deserialize, const SweepOptions& options = {})
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  auto point = [&](std::size_t i) {
    if (options.resume) {
      if (const std::string* payload = options.resume->find(i)) {
        return deserialize(*payload);
      }
    }
    auto result = fn(i);
    if (options.reporter) {
      options.reporter->job_payload(i, serialize(result));
    }
    return result;
  };
  SweepOptions inner = options;
  inner.resume = nullptr;  // consumed here; plain sweep must not see it
  return sweep(num_points, point, inner);
}

}  // namespace pushpull::exp
