#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/result.hpp"
#include "exp/scenario.hpp"
#include "metrics/class_stats.hpp"
#include "metrics/welford.hpp"
#include "resilience/invariants.hpp"
#include "resilience/overload.hpp"
#include "runtime/run_reporter.hpp"
#include "workload/trace.hpp"

namespace pushpull::exp {

/// Knobs of one chaos/soak run: everything nasty at once — the config's
/// crash schedule and degradation ladder, the fault layer's burst-error
/// channel, plus an arrival-rate spike — replicated N times from one seed.
struct ChaosOptions {
  std::size_t replications = 8;
  /// 1 = serial, 0 = one worker per hardware thread, N = N workers. Never
  /// changes the numbers: seeds derive from the replication index and
  /// results merge in index order.
  std::size_t jobs = 1;
  /// Arrival-rate spike: arrivals inside [spike_start, spike_start +
  /// spike_duration) are compressed in time by `spike_factor` (a
  /// deterministic time-warp of the recorded trace — no extra RNG draws),
  /// so the instantaneous rate multiplies while the request population
  /// stays identical. 1.0 (or zero duration) disables the spike.
  double spike_factor = 1.0;
  double spike_start = 0.0;
  double spike_duration = 0.0;
  /// When true, rerun replication 0 after the sweep and require a
  /// bit-identical serialized result (the replay invariant).
  bool verify_replay = true;
  /// When positive, the invariant suite additionally requires every class's
  /// maximum inter-service gap to stay within this bound (regular-service
  /// guarantee); 0 disables the check.
  double gap_bound = 0.0;
  /// Optional JSONL progress sink; may be null.
  runtime::RunReporter* reporter = nullptr;
};

/// Pooled outcome of a chaos run plus its machine-verified invariants.
struct ChaosSummary {
  std::size_t replications = 0;
  /// Counters pooled over replications, indexed by ClassId.
  std::vector<metrics::ClassStats> per_class;
  /// Across-replication statistics (one sample per replication).
  metrics::Welford overall_delay;
  metrics::Welford total_cost;
  metrics::Welford goodput;

  std::uint64_t crashes = 0;
  double total_downtime = 0.0;
  /// Scenario-mobility outcomes summed over replications (zero when the
  /// scenario preset is off).
  std::uint64_t handoff_rehomed = 0;
  std::uint64_t handoff_lost = 0;
  std::uint64_t storm_rerequests = 0;
  std::uint64_t largest_storm = 0;
  metrics::Welford recovery_latency;
  std::size_t overload_transitions = 0;
  resilience::OverloadLevel max_overload_level =
      resilience::OverloadLevel::kNormal;

  /// The invariant suite of every replication, pooled; `replay` and
  /// `all_pass()` are what the chaos CLI's exit code reports.
  resilience::InvariantReport invariants;
  /// Result of the bit-identical-replay check (true when skipped).
  bool replay_identical = true;
};

/// Canonical textual digest of a SimResult: every counter and every moment,
/// doubles in hexfloat. Two results are bit-identical iff their digests
/// compare equal — the primitive behind the replay and jobs-independence
/// invariants.
[[nodiscard]] std::string serialize_result(const core::SimResult& result);

/// Deterministic arrival-spike time-warp (see ChaosOptions). Requests keep
/// their ids, items and classes; only arrival instants move, and order is
/// preserved.
[[nodiscard]] workload::Trace apply_arrival_spike(const workload::Trace& trace,
                                                  double start,
                                                  double duration,
                                                  double factor);

/// Runs the chaos harness: `options.replications` independent replications
/// of (scenario, config) with the spike applied, pooling results and
/// running the invariant suite on every replication.
[[nodiscard]] ChaosSummary run_chaos(const Scenario& scenario,
                                     const core::HybridConfig& config,
                                     const ChaosOptions& options);

}  // namespace pushpull::exp
