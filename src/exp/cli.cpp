#include "exp/cli.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <thread>

#include "metrics/sorted_view.hpp"

namespace pushpull::exp {

namespace {

/// Full-token unsigned parse: rejects empty strings, signs, and trailing
/// garbage ("12abc"), all of which std::stoull would silently accept or
/// wrap. Throws std::invalid_argument naming the flag.
std::uint64_t parse_unsigned(const std::string& key,
                             const std::string& value) {
  std::size_t pos = 0;
  std::uint64_t parsed = 0;
  try {
    if (value.empty() || value[0] == '-' || value[0] == '+') {
      throw std::invalid_argument("sign");
    }
    parsed = std::stoull(value, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("ArgParser: --" + key +
                                " expects a non-negative integer, got '" +
                                value + "'");
  }
  if (pos != value.size()) {
    throw std::invalid_argument("ArgParser: --" + key +
                                " expects a non-negative integer, got '" +
                                value + "'");
  }
  return parsed;
}

}  // namespace

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const std::string key = arg.substr(2);
      if (key.empty()) {
        throw std::invalid_argument("ArgParser: bare '--' not supported");
      }
      // A repeated flag is ambiguous — silently keeping the last occurrence
      // would make `--seed 1 ... --seed 2` reproduce the wrong run.
      if (options_.contains(key)) {
        throw std::logic_error("ArgParser: --" + key +
                               " given more than once");
      }
      // A following token that is not itself an option is this key's value;
      // otherwise the key is a boolean flag.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        options_[key] = argv[++i];
      } else {
        options_[key] = "";
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

std::string ArgParser::get_string(const std::string& key,
                                  const std::string& fallback) const {
  const auto it = options_.find(key);
  return it == options_.end() ? fallback : it->second;
}

double ArgParser::get_double(const std::string& key, double fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  std::size_t pos = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(it->second, &pos);
  } catch (const std::exception&) {
    pos = std::string::npos;  // unify the two failure paths below
  }
  if (pos != it->second.size()) {
    throw std::invalid_argument("ArgParser: --" + key +
                                " expects a number, got '" + it->second + "'");
  }
  return parsed;
}

std::size_t ArgParser::get_size(const std::string& key,
                                std::size_t fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  return static_cast<std::size_t>(parse_unsigned(key, it->second));
}

std::uint64_t ArgParser::get_u64(const std::string& key,
                                 std::uint64_t fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  return parse_unsigned(key, it->second);
}

double ArgParser::get_positive_double(const std::string& key,
                                      double fallback) const {
  if (!options_.contains(key)) return fallback;
  const double parsed = get_double(key, fallback);
  if (!(parsed > 0.0) || !std::isfinite(parsed)) {
    throw std::invalid_argument("ArgParser: --" + key +
                                " expects a positive finite number, got '" +
                                options_.at(key) + "'");
  }
  return parsed;
}

double ArgParser::get_nonnegative_double(const std::string& key,
                                         double fallback) const {
  if (!options_.contains(key)) return fallback;
  const double parsed = get_double(key, fallback);
  if (!(parsed >= 0.0) || !std::isfinite(parsed)) {
    throw std::invalid_argument("ArgParser: --" + key +
                                " expects a non-negative finite number, got '" +
                                options_.at(key) + "'");
  }
  return parsed;
}

std::uint64_t ArgParser::get_positive_u64(const std::string& key,
                                          std::uint64_t fallback) const {
  if (!options_.contains(key)) return fallback;
  const std::uint64_t parsed = parse_unsigned(key, options_.at(key));
  if (parsed == 0) {
    throw std::invalid_argument("ArgParser: --" + key +
                                " expects a positive integer, got '" +
                                options_.at(key) + "'");
  }
  return parsed;
}

std::size_t ArgParser::get_jobs(const std::string& key) const {
  if (options_.contains(key)) {
    const std::size_t jobs = get_size(key, 0);
    if (jobs == 0) {
      throw std::invalid_argument(
          "ArgParser: --" + key +
          " must be >= 1 (omit the flag for one worker per hardware thread)");
    }
    return jobs;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void ArgParser::require_known(
    std::initializer_list<std::string_view> allowed,
    std::initializer_list<std::string_view> extra) const {
  // Iterate a key-sorted view, not the unordered map: the diagnostic names
  // the offending option(s), and which one leads must not depend on hash
  // order (detlint D3).
  std::string unknown;
  for (const auto& [key, value] : metrics::sorted_view(options_)) {
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end() &&
        std::find(extra.begin(), extra.end(), key) == extra.end()) {
      unknown += (unknown.empty() ? "" : ", ") + ("--" + key);
    }
  }
  if (!unknown.empty()) {
    throw std::invalid_argument("unknown option " + unknown +
                                " (run with no arguments for usage)");
  }
}

}  // namespace pushpull::exp
