#include "exp/cli.hpp"

#include <stdexcept>
#include <thread>

namespace pushpull::exp {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const std::string key = arg.substr(2);
      if (key.empty()) {
        throw std::invalid_argument("ArgParser: bare '--' not supported");
      }
      // A following token that is not itself an option is this key's value;
      // otherwise the key is a boolean flag.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        options_[key] = argv[++i];
      } else {
        options_[key] = "";
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

std::string ArgParser::get_string(const std::string& key,
                                  const std::string& fallback) const {
  const auto it = options_.find(key);
  return it == options_.end() ? fallback : it->second;
}

double ArgParser::get_double(const std::string& key, double fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("ArgParser: --" + key +
                                " expects a number, got '" + it->second + "'");
  }
}

std::size_t ArgParser::get_size(const std::string& key,
                                std::size_t fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  try {
    return static_cast<std::size_t>(std::stoull(it->second));
  } catch (const std::exception&) {
    throw std::invalid_argument("ArgParser: --" + key +
                                " expects an integer, got '" + it->second +
                                "'");
  }
}

std::uint64_t ArgParser::get_u64(const std::string& key,
                                 std::uint64_t fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  try {
    return std::stoull(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("ArgParser: --" + key +
                                " expects an integer, got '" + it->second +
                                "'");
  }
}

std::size_t ArgParser::get_jobs(const std::string& key) const {
  const std::size_t jobs = get_size(key, 0);
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

}  // namespace pushpull::exp
