#include "exp/chaos.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "metrics/float_compare.hpp"
#include "rng/splitmix64.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/runtime.hpp"

namespace pushpull::exp {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  out += ' ';
  out += std::to_string(v);
}

void append_f64(std::string& out, double v) {
  out += ' ';
  out += runtime::encode_double(v);
}

void append_welford(std::string& out, const metrics::Welford& w) {
  append_u64(out, w.count());
  append_f64(out, w.mean());
  append_f64(out, w.m2());
  append_f64(out, w.sum());
  append_f64(out, w.min());
  append_f64(out, w.max());
}

struct ChaosPartial {
  core::SimResult result;
  std::string digest;
  resilience::InvariantReport invariants;
  double goodput = 0.0;
  double total_cost = 0.0;
  pushpull::scenario::ShapeSummary shape;
};

resilience::InvariantReport check_run(
    const core::SimResult& result, const core::HybridConfig& config,
    const pushpull::scenario::ShapeSummary& shape, double gap_bound) {
  resilience::InvariantInputs inputs;
  inputs.per_class = result.per_class;
  inputs.queue_capacity = config.fault.queue_capacity;
  inputs.soft_capacity = 0;  // the ladder's soft cap engages late; advisory
  inputs.max_queue_len = result.max_pull_queue_len;
  inputs.event_order_violations = result.event_order_violations;
  inputs.end_time = result.end_time;
  if (shape.active) {
    inputs.scenario_base_per_class = shape.base_per_class;
    inputs.scenario_handoff_lost = shape.handoff_lost;
  }
  inputs.gap_bound = gap_bound;
  return resilience::check_invariants(inputs);
}

ChaosPartial run_one(const Scenario& scenario,
                     const core::HybridConfig& config,
                     const ChaosOptions& options, std::size_t rep) {
  Scenario s = scenario;
  // Same decorrelation idiom as replicate_hybrid: per-replication workload
  // and server seeds derived from the replication index.
  s.seed = rng::SplitMix64::mix(scenario.seed + rep);
  core::HybridConfig c = config;
  c.seed = rng::SplitMix64::mix(s.seed ^ 0x5EEDCAFEULL);

  Scenario::Built built = s.build();
  if (!metrics::exactly_equal(options.spike_factor, 1.0) &&
      options.spike_duration > 0.0) {
    built.trace = apply_arrival_spike(built.trace, options.spike_start,
                                      options.spike_duration,
                                      options.spike_factor);
  }
  ChaosPartial partial;
  partial.result = run_hybrid(built, c);
  partial.digest = serialize_result(partial.result);
  partial.invariants =
      check_run(partial.result, c, built.shape, options.gap_bound);
  partial.goodput = partial.result.overall().goodput_ratio();
  partial.total_cost = partial.result.total_prioritized_cost(built.population);
  partial.shape = std::move(built.shape);
  return partial;
}

}  // namespace

std::string serialize_result(const core::SimResult& result) {
  std::string out = "sr1";
  append_u64(out, result.per_class.size());
  for (const metrics::ClassStats& s : result.per_class) {
    append_welford(out, s.wait);
    append_welford(out, s.gap);
    append_u64(out, s.arrived);
    append_u64(out, s.served);
    append_u64(out, s.served_push);
    append_u64(out, s.served_pull);
    append_u64(out, s.blocked);
    append_u64(out, s.abandoned);
    append_u64(out, s.corrupted);
    append_u64(out, s.retries);
    append_u64(out, s.shed);
    append_u64(out, s.lost);
    append_u64(out, s.rejected);
    append_u64(out, s.stormed);
  }
  append_f64(out, result.end_time);
  append_u64(out, result.push_transmissions);
  append_u64(out, result.pull_transmissions);
  append_u64(out, result.blocked_transmissions);
  append_u64(out, result.corrupted_push_transmissions);
  append_u64(out, result.corrupted_pull_transmissions);
  append_f64(out, result.mean_pull_queue_len);
  append_u64(out, result.max_pull_queue_len);
  append_u64(out, result.crashes);
  append_f64(out, result.total_downtime);
  append_u64(out, result.storm_rerequests);
  append_u64(out, result.largest_storm);
  append_welford(out, result.recovery_latency);
  append_u64(out, result.overload_transitions.size());
  for (const resilience::OverloadTransition& t : result.overload_transitions) {
    append_f64(out, t.time);
    append_u64(out, static_cast<std::uint64_t>(t.from));
    append_u64(out, static_cast<std::uint64_t>(t.to));
  }
  append_u64(out, static_cast<std::uint64_t>(result.max_overload_level));
  append_u64(out, result.event_order_violations);
  return out;
}

workload::Trace apply_arrival_spike(const workload::Trace& trace, double start,
                                    double duration, double factor) {
  if (!(factor > 0.0) || !std::isfinite(factor)) {
    throw std::invalid_argument(
        "apply_arrival_spike: factor must be positive and finite");
  }
  if (!(start >= 0.0) || !(duration >= 0.0) || !std::isfinite(start) ||
      !std::isfinite(duration)) {
    throw std::invalid_argument(
        "apply_arrival_spike: start and duration must be non-negative and "
        "finite");
  }
  if (metrics::exactly_equal(factor, 1.0) || duration <= 0.0) {
    return trace;
  }
  const double compressed = duration / factor;
  std::vector<workload::Request> warped(trace.requests().begin(),
                                        trace.requests().end());
  for (workload::Request& r : warped) {
    if (r.arrival <= start) continue;
    if (r.arrival < start + duration) {
      r.arrival = start + (r.arrival - start) / factor;
    } else {
      r.arrival -= duration - compressed;
    }
  }
  return workload::Trace(std::move(warped));
}

ChaosSummary run_chaos(const Scenario& scenario,
                       const core::HybridConfig& config,
                       const ChaosOptions& options) {
  if (options.replications == 0) {
    throw std::invalid_argument("run_chaos: need >= 1 replication");
  }
  scenario.validate();
  config.resilience.validate();
  std::size_t jobs = options.jobs == 0
                         ? runtime::ThreadPool::default_concurrency()
                         : options.jobs;
  jobs = std::min(jobs, options.replications);

  const runtime::StopWatch watch;
  if (options.reporter) {
    options.reporter->run_started("chaos", options.replications, jobs);
  }
  auto job = [&](std::size_t rep) {
    return run_one(scenario, config, options, rep);
  };
  std::vector<ChaosPartial> partials;
  if (jobs <= 1) {
    partials = runtime::serial_map(options.replications, job, options.reporter);
  } else {
    runtime::ThreadPool pool(jobs);
    partials =
        runtime::parallel_map(pool, options.replications, job,
                              options.reporter);
  }

  // Merge strictly in replication-index order.
  ChaosSummary summary;
  summary.replications = options.replications;
  summary.per_class.resize(partials.front().result.per_class.size());
  for (const ChaosPartial& partial : partials) {
    const core::SimResult& r = partial.result;
    if (r.per_class.size() != summary.per_class.size()) {
      throw std::runtime_error("run_chaos: replications disagree on classes");
    }
    for (std::size_t cls = 0; cls < summary.per_class.size(); ++cls) {
      summary.per_class[cls].merge_counters(r.per_class[cls]);
    }
    summary.overall_delay.add(r.overall().wait.mean());
    summary.total_cost.add(partial.total_cost);
    summary.goodput.add(partial.goodput);
    summary.crashes += r.crashes;
    summary.total_downtime += r.total_downtime;
    summary.handoff_rehomed += partial.shape.rehomed;
    summary.handoff_lost += partial.shape.total_lost();
    summary.storm_rerequests += r.storm_rerequests;
    summary.largest_storm = std::max(summary.largest_storm, r.largest_storm);
    summary.recovery_latency.merge(r.recovery_latency);
    summary.overload_transitions += r.overload_transitions.size();
    if (static_cast<int>(r.max_overload_level) >
        static_cast<int>(summary.max_overload_level)) {
      summary.max_overload_level = r.max_overload_level;
    }
    summary.invariants.merge(partial.invariants);
  }

  if (options.verify_replay) {
    // Bit-identical replay: replication 0 rerun from scratch must
    // reproduce its digest exactly.
    const ChaosPartial replayed = run_one(scenario, config, options, 0);
    summary.replay_identical = replayed.digest == partials.front().digest;
    summary.invariants.checks.push_back(resilience::InvariantCheck{
        "bit-identical-replay", summary.replay_identical,
        summary.replay_identical
            ? "replication 0 reran identically"
            : "replication 0 diverged on rerun — nondeterminism"});
  }

  if (options.reporter) {
    options.reporter->run_finished("chaos", options.replications,
                                   watch.elapsed_ms());
  }
  return summary;
}

}  // namespace pushpull::exp
