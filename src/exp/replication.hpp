#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

#include "core/config.hpp"
#include "exp/scenario.hpp"
#include "metrics/welford.hpp"
#include "obs/config.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/run_reporter.hpp"

namespace pushpull::exp {

/// Across-replication statistics for one experiment configuration: each
/// replication runs the same scenario with an independent seed, and every
/// reported metric carries a mean and a confidence half-width.
struct ReplicationSummary {
  std::size_t replications = 0;
  metrics::Welford overall_delay;
  std::vector<metrics::Welford> class_delay;   // indexed by ClassId
  metrics::Welford total_cost;
  metrics::Welford blocking;                   // overall blocking ratio
  metrics::Welford pull_queue_len;             // time-weighted mean

  /// "mean ± half-width" for a metric at ~95% confidence.
  [[nodiscard]] static double half_width(const metrics::Welford& w) {
    return w.ci_half_width();
  }
};

/// Schema tag of the per-replication checkpoint payload format, stamped
/// into every progress file (RunReporter::run_context) and checked before
/// resuming from one.
inline constexpr std::string_view kReplicationSchema = "rp1";

/// Stable hash of everything that determines replicate_hybrid's numbers:
/// the scenario, the server configuration (including fault and resilience
/// layers) and the replication count. Execution knobs that provably do not
/// change results (worker count) are excluded, so a checkpoint taken at
/// --jobs 4 resumes cleanly at --jobs 1. Used to stamp checkpoint files and
/// to reject a resume against a file from a different experiment.
[[nodiscard]] std::uint64_t replication_fingerprint(
    const Scenario& scenario, const core::HybridConfig& config,
    std::size_t replications);

/// Execution knobs for replicate_hybrid. None of them change the numbers —
/// replications always derive their seeds from their replication index and
/// merge in index order, so any `jobs` value produces the same summary.
struct ReplicateOptions {
  /// 1 = run serially on the calling thread (legacy path), 0 = one worker
  /// per hardware thread, N = N workers (clamped to the replication count).
  std::size_t jobs = 1;
  /// Optional JSONL progress sink (one line per finished replication); may
  /// be null. When set, each replication also records a `payload` line with
  /// its serialized partial, making a killed run resumable.
  runtime::RunReporter* reporter = nullptr;
  /// Optional checkpoint loaded from a previous (killed) run's JSONL:
  /// replications with a stored payload are restored instead of recomputed.
  /// The store's context record (schema + replication_fingerprint) is
  /// verified against this run's inputs first — a checkpoint from a
  /// different scenario, config or replication count is rejected with
  /// std::runtime_error instead of silently splicing wrong results. The
  /// summary is bit-identical to an uninterrupted run for any jobs value.
  const runtime::CheckpointStore* resume = nullptr;
  /// Observability settings applied to every replication (the per-rep seed
  /// derivation is untouched — observation never changes numbers, and the
  /// obs settings are deliberately outside replication_fingerprint, so
  /// checkpoints resume across tracing on/off).
  obs::ObsConfig obs;
  /// When obs.enabled and non-null: receives the merged trace JSONL — a
  /// header line, then each replication's chunk strictly in replication-
  /// index order (every line tagged "rep":N). Byte-identical for every
  /// jobs value, and across --resume: a restored payload carries its
  /// rendered chunk, and a payload from a trace-less run is recomputed
  /// (deterministically identical) rather than spliced without its trace.
  std::ostream* trace_out = nullptr;
};

/// Runs `replications` independent copies of (scenario, config), varying
/// both the workload seed and the server seed, and pools the results.
/// This is how EXPERIMENTS.md distinguishes real effects from seed noise.
/// Uses `scenario.jobs` worker threads (default 1 = serial).
[[nodiscard]] ReplicationSummary replicate_hybrid(
    const Scenario& scenario, const core::HybridConfig& config,
    std::size_t replications);

/// Same, with explicit execution options (worker count, progress sink).
[[nodiscard]] ReplicationSummary replicate_hybrid(
    const Scenario& scenario, const core::HybridConfig& config,
    std::size_t replications, const ReplicateOptions& options);

}  // namespace pushpull::exp
