#pragma once

#include <cstddef>
#include <vector>

#include "core/config.hpp"
#include "exp/scenario.hpp"
#include "metrics/welford.hpp"

namespace pushpull::exp {

/// Across-replication statistics for one experiment configuration: each
/// replication runs the same scenario with an independent seed, and every
/// reported metric carries a mean and a confidence half-width.
struct ReplicationSummary {
  std::size_t replications = 0;
  metrics::Welford overall_delay;
  std::vector<metrics::Welford> class_delay;   // indexed by ClassId
  metrics::Welford total_cost;
  metrics::Welford blocking;                   // overall blocking ratio
  metrics::Welford pull_queue_len;             // time-weighted mean

  /// "mean ± half-width" for a metric at ~95% confidence.
  [[nodiscard]] static double half_width(const metrics::Welford& w) {
    return w.ci_half_width();
  }
};

/// Runs `replications` independent copies of (scenario, config), varying
/// both the workload seed and the server seed, and pools the results.
/// This is how EXPERIMENTS.md distinguishes real effects from seed noise.
[[nodiscard]] ReplicationSummary replicate_hybrid(
    const Scenario& scenario, const core::HybridConfig& config,
    std::size_t replications);

}  // namespace pushpull::exp
