#include "exp/report.hpp"

#include <iomanip>
#include <ostream>

#include "exp/table.hpp"
#include "resilience/crash.hpp"
#include "resilience/overload.hpp"
#include "sched/pull/policy.hpp"
#include "sched/push/push_scheduler.hpp"

namespace pushpull::exp {

void write_markdown_report(std::ostream& out, const ReportHeader& header,
                           const core::HybridConfig& config,
                           const workload::ClientPopulation& population,
                           const core::SimResult& result) {
  out << "# " << header.title << "\n\n";

  out << "## Configuration\n\n";
  out << "| parameter | value |\n|---|---|\n";
  out << "| items | " << header.num_items << " |\n";
  out << "| zipf theta | " << header.theta << " |\n";
  out << "| arrival rate | " << header.arrival_rate << " |\n";
  out << "| requests | " << header.num_requests << " |\n";
  out << "| seed | " << header.seed << " |\n";
  out << "| cutoff K | " << config.cutoff << " |\n";
  out << "| alpha | " << config.alpha << " |\n";
  out << "| pull policy | " << sched::to_string(config.pull_policy) << " |\n";
  out << "| push policy | " << sched::to_string(config.push_policy) << " |\n";
  out << "| aging rate | " << config.aging_rate << " |\n";
  out << "| total bandwidth | " << config.total_bandwidth << " |\n";
  out << "| mean patience | " << config.mean_patience << " |\n";
  if (config.fault.active()) {
    out << "| fault channel | "
        << (config.fault.enabled ? "gilbert-elliott" : "off") << " |\n";
    if (config.fault.enabled) {
      out << "| p(good->bad) | " << config.fault.channel.p_good_to_bad
          << " |\n";
      out << "| p(bad->good) | " << config.fault.channel.p_bad_to_good
          << " |\n";
      out << "| corrupt(good) | " << config.fault.channel.corrupt_good
          << " |\n";
      out << "| corrupt(bad) | " << config.fault.channel.corrupt_bad
          << " |\n";
      out << "| max retries | " << config.fault.retry.max_retries << " |\n";
      out << "| backoff base x mult | " << config.fault.retry.backoff_base
          << " x " << config.fault.retry.backoff_multiplier << " |\n";
    }
    if (config.fault.queue_capacity > 0) {
      out << "| pull-queue capacity | " << config.fault.queue_capacity
          << " (shed: " << fault::to_string(config.fault.shed_policy)
          << ") |\n";
    }
  }
  if (config.resilience.active()) {
    const auto& crash = config.resilience.crash;
    if (crash.enabled && crash.rate > 0.0) {
      out << "| crash rate | " << crash.rate << " (downtime "
          << crash.downtime << ", recovery "
          << resilience::to_string(crash.recovery) << ") |\n";
      out << "| re-request timeout | " << crash.rerequest_timeout
          << " (+U(0, " << crash.storm_spread << ") jitter) |\n";
      if (crash.recovery == resilience::RecoveryMode::kWarm) {
        out << "| snapshot interval | " << crash.snapshot_interval << " |\n";
      }
    }
    if (config.resilience.overload.enabled) {
      out << "| degradation ladder | on (eval every "
          << config.resilience.overload.eval_interval << ", capacity ref "
          << config.resilience.overload.capacity_ref << ", cutoff step "
          << config.resilience.overload.cutoff_step << ") |\n";
    }
  }
  out << "\n";

  out << "## Per-class QoS\n\n";
  out << "| class | priority | arrived | served | mean | p50 | p95 | p99 | "
         "max | gap max | gap p99 | blocked | abandoned | corrupted | retries "
         "| shed | lost | goodput | p-cost |\n";
  out << "|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|"
         "---|---|---|\n";
  const auto fixed2 = [&out](double v) -> std::ostream& {
    out << std::fixed << std::setprecision(2) << v;
    return out;
  };
  for (workload::ClassId c = 0; c < population.num_classes(); ++c) {
    const auto& s = result.per_class[c];
    out << "| " << population.cls(c).name << " | "
        << population.priority(c) << " | " << s.arrived << " | " << s.served
        << " | ";
    fixed2(s.wait.mean()) << " | ";
    fixed2(s.wait_p50.value()) << " | ";
    fixed2(s.wait_p95.value()) << " | ";
    fixed2(s.wait_p99.value()) << " | ";
    fixed2(s.wait.max()) << " | ";
    fixed2(s.gap.max()) << " | ";
    fixed2(s.gap_p99.value()) << " | " << s.blocked << " | " << s.abandoned
                         << " | " << s.corrupted << " | " << s.retries
                         << " | " << s.shed << " | " << s.lost << " | ";
    fixed2(s.goodput_ratio()) << " | ";
    fixed2(result.prioritized_cost(population, c)) << " |\n";
  }

  const auto overall = result.overall();
  out << "\n## Totals\n\n";
  out << "- overall mean delay: ";
  fixed2(overall.wait.mean()) << " broadcast units\n";
  out << "- total prioritized cost: ";
  fixed2(result.total_prioritized_cost(population)) << "\n";
  out << "- push transmissions: " << result.push_transmissions
      << ", pull transmissions: " << result.pull_transmissions
      << ", blocked transmissions: " << result.blocked_transmissions << "\n";
  out << "- mean pull-queue length: ";
  fixed2(result.mean_pull_queue_len) << "\n";
  if (config.fault.enabled) {
    out << "- corrupted transmissions: push "
        << result.corrupted_push_transmissions << ", pull "
        << result.corrupted_pull_transmissions << " (ratio ";
    out << std::fixed << std::setprecision(4) << result.corruption_ratio()
        << ")\n";
    out << "- requests shed: " << overall.shed
        << ", lost after retries: " << overall.lost << "\n";
  }
  if (config.resilience.active()) {
    out << "\n## Resilience\n\n";
    out << "- crashes: " << result.crashes << ", total downtime: ";
    fixed2(result.total_downtime) << "\n";
    out << "- storm re-requests: " << result.storm_rerequests
        << " (largest single storm: " << result.largest_storm << ")\n";
    if (result.recovery_latency.count() > 0) {
      out << "- recovery latency: mean ";
      fixed2(result.recovery_latency.mean()) << ", max ";
      fixed2(result.recovery_latency.max()) << "\n";
    }
    out << "- stormed per class:";
    for (workload::ClassId c = 0; c < population.num_classes(); ++c) {
      out << ' ' << population.cls(c).name << '='
          << result.per_class[c].stormed;
    }
    out << "\n- rejected per class:";
    for (workload::ClassId c = 0; c < population.num_classes(); ++c) {
      out << ' ' << population.cls(c).name << '='
          << result.per_class[c].rejected;
    }
    out << "\n- peak pull-queue length: " << result.max_pull_queue_len << "\n";
    out << "- ladder: max level "
        << resilience::to_string(result.max_overload_level) << ", "
        << result.overload_transitions.size() << " transitions\n";
    if (!result.overload_transitions.empty()) {
      out << "\n| time | from | to | occupancy | blocking EWMA |\n"
             "|---|---|---|---|---|\n";
      for (const auto& t : result.overload_transitions) {
        out << "| ";
        fixed2(t.time) << " | " << resilience::to_string(t.from) << " | "
                       << resilience::to_string(t.to) << " | ";
        fixed2(t.occupancy) << " | ";
        out << std::fixed << std::setprecision(4) << t.blocking_ewma
            << " |\n";
      }
    }
  }
  out << "- virtual end time: ";
  fixed2(result.end_time) << "\n";
}

}  // namespace pushpull::exp
