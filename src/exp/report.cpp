#include "exp/report.hpp"

#include <iomanip>
#include <ostream>

#include "exp/table.hpp"
#include "sched/pull/policy.hpp"
#include "sched/push/push_scheduler.hpp"

namespace pushpull::exp {

void write_markdown_report(std::ostream& out, const ReportHeader& header,
                           const core::HybridConfig& config,
                           const workload::ClientPopulation& population,
                           const core::SimResult& result) {
  out << "# " << header.title << "\n\n";

  out << "## Configuration\n\n";
  out << "| parameter | value |\n|---|---|\n";
  out << "| items | " << header.num_items << " |\n";
  out << "| zipf theta | " << header.theta << " |\n";
  out << "| arrival rate | " << header.arrival_rate << " |\n";
  out << "| requests | " << header.num_requests << " |\n";
  out << "| seed | " << header.seed << " |\n";
  out << "| cutoff K | " << config.cutoff << " |\n";
  out << "| alpha | " << config.alpha << " |\n";
  out << "| pull policy | " << sched::to_string(config.pull_policy) << " |\n";
  out << "| push policy | " << sched::to_string(config.push_policy) << " |\n";
  out << "| aging rate | " << config.aging_rate << " |\n";
  out << "| total bandwidth | " << config.total_bandwidth << " |\n";
  out << "| mean patience | " << config.mean_patience << " |\n\n";

  out << "## Per-class QoS\n\n";
  out << "| class | priority | arrived | served | mean | p50 | p95 | p99 | "
         "max | blocked | abandoned | p-cost |\n";
  out << "|---|---|---|---|---|---|---|---|---|---|---|---|\n";
  const auto fixed2 = [&out](double v) -> std::ostream& {
    out << std::fixed << std::setprecision(2) << v;
    return out;
  };
  for (workload::ClassId c = 0; c < population.num_classes(); ++c) {
    const auto& s = result.per_class[c];
    out << "| " << population.cls(c).name << " | "
        << population.priority(c) << " | " << s.arrived << " | " << s.served
        << " | ";
    fixed2(s.wait.mean()) << " | ";
    fixed2(s.wait_p50.value()) << " | ";
    fixed2(s.wait_p95.value()) << " | ";
    fixed2(s.wait_p99.value()) << " | ";
    fixed2(s.wait.max()) << " | " << s.blocked << " | " << s.abandoned
                         << " | ";
    fixed2(result.prioritized_cost(population, c)) << " |\n";
  }

  const auto overall = result.overall();
  out << "\n## Totals\n\n";
  out << "- overall mean delay: ";
  fixed2(overall.wait.mean()) << " broadcast units\n";
  out << "- total prioritized cost: ";
  fixed2(result.total_prioritized_cost(population)) << "\n";
  out << "- push transmissions: " << result.push_transmissions
      << ", pull transmissions: " << result.pull_transmissions
      << ", blocked transmissions: " << result.blocked_transmissions << "\n";
  out << "- mean pull-queue length: ";
  fixed2(result.mean_pull_queue_len) << "\n";
  out << "- virtual end time: ";
  fixed2(result.end_time) << "\n";
}

}  // namespace pushpull::exp
