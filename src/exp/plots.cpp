#include "exp/plots.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <map>
#include <stdexcept>

namespace pushpull::exp {

void write_gnuplot(const std::string& prefix, const PlotSpec& spec) {
  if (spec.series.empty()) {
    throw std::invalid_argument("write_gnuplot: no series");
  }

  // Merge all x values so every series shares one abscissa column.
  std::map<double, std::vector<double>> rows;  // x -> per-series y (or NaN)
  const double missing = std::numeric_limits<double>::quiet_NaN();
  for (std::size_t s = 0; s < spec.series.size(); ++s) {
    for (const auto& [x, y] : spec.series[s].points) {
      auto [it, inserted] =
          rows.try_emplace(x, std::vector<double>(spec.series.size(), missing));
      it->second[s] = y;
    }
  }

  const std::string dat_path = prefix + ".dat";
  std::ofstream dat(dat_path);
  if (!dat) {
    throw std::runtime_error("write_gnuplot: cannot write " + dat_path);
  }
  dat << "# x";
  for (const auto& series : spec.series) dat << '\t' << series.label;
  dat << '\n';
  for (const auto& [x, ys] : rows) {
    dat << x;
    for (double y : ys) {
      dat << '\t';
      if (std::isnan(y)) {
        dat << '?';
      } else {
        dat << y;
      }
    }
    dat << '\n';
  }

  const std::string gp_path = prefix + ".gp";
  std::ofstream gp(gp_path);
  if (!gp) {
    throw std::runtime_error("write_gnuplot: cannot write " + gp_path);
  }
  gp << "set terminal pngcairo size 900,600\n";
  gp << "set output '" << prefix << ".png'\n";
  gp << "set title '" << spec.title << "'\n";
  gp << "set xlabel '" << spec.xlabel << "'\n";
  gp << "set ylabel '" << spec.ylabel << "'\n";
  gp << "set key outside right\n";
  gp << "set datafile missing '?'\n";
  gp << "set grid\n";
  gp << "plot";
  for (std::size_t s = 0; s < spec.series.size(); ++s) {
    if (s > 0) gp << ',';
    gp << " '" << dat_path << "' using 1:" << (s + 2)
       << " with linespoints title '" << spec.series[s].label << "'";
  }
  gp << '\n';
}

}  // namespace pushpull::exp
