#pragma once

#include <iosfwd>
#include <string>

#include "core/config.hpp"
#include "core/result.hpp"
#include "workload/population.hpp"

namespace pushpull::exp {

/// Run metadata echoed at the top of a report.
struct ReportHeader {
  std::string title = "pushpull simulation report";
  std::size_t num_items = 0;
  double theta = 0.0;
  double arrival_rate = 0.0;
  std::size_t num_requests = 0;
  std::uint64_t seed = 0;
};

/// Writes a self-contained Markdown report of one hybrid run: the
/// configuration, per-class QoS (mean/min/max, p50/p95/p99, blocking and
/// abandonment ratios, prioritized cost) and the run-level counters. Used
/// by `pushpull simulate --report FILE` and available to any embedder that
/// wants auditable experiment artifacts.
void write_markdown_report(std::ostream& out, const ReportHeader& header,
                           const core::HybridConfig& config,
                           const workload::ClientPopulation& population,
                           const core::SimResult& result);

}  // namespace pushpull::exp
