#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace pushpull::obs {

/// Trace-event taxonomy. One bit per category so masks compose: the
/// runtime gate (`ObsConfig::categories`) and the compile-time gate
/// (`PUSHPULL_OBS_COMPILED_CATEGORIES`) are both plain bitmasks.
///
///   push    broadcast-channel transmissions (tx_start/tx_end)
///   pull    on-demand transmissions, incl. bandwidth blocking
///   queue   pull-queue membership changes + event-queue high-water marks
///   cutoff  cutoff-point moves: optimizer scan samples, widen-push boosts
///   fault   burst-error channel flips, corruptions, retries, losses
///   crash   server crashes, snapshots, recoveries, re-request storms
///   ladder  overload degradation-ladder transitions and rejections
///   timeout live-path request-deadline expiries
///   retry   live-path re-request scheduling after a corrupted pull
///   drain   live-path drain lifecycle (admission stop, journal seal)
enum class Category : std::uint32_t {
  kPush = 1u << 0,
  kPull = 1u << 1,
  kQueue = 1u << 2,
  kCutoff = 1u << 3,
  kFault = 1u << 4,
  kCrash = 1u << 5,
  kLadder = 1u << 6,
  kTimeout = 1u << 7,
  kRetry = 1u << 8,
  kDrain = 1u << 9,
};

inline constexpr std::uint32_t kAllCategories = 0x3FFu;

/// Compile-time category mask: categories outside the mask compile to
/// nothing at every emission site (the `if constexpr` in Tracer::emit),
/// so a build can strip instrumentation wholesale. Default: everything
/// compiled in, gated at runtime.
#ifndef PUSHPULL_OBS_COMPILED_CATEGORIES
#define PUSHPULL_OBS_COMPILED_CATEGORIES 0x3FFu
#endif
inline constexpr std::uint32_t kCompiledCategories =
    PUSHPULL_OBS_COMPILED_CATEGORIES;

[[nodiscard]] constexpr std::uint32_t category_bit(Category c) noexcept {
  return static_cast<std::uint32_t>(c);
}

[[nodiscard]] constexpr bool compiled_in(Category c) noexcept {
  return (kCompiledCategories & category_bit(c)) != 0;
}

/// Short lowercase name ("push", "ladder", ...).
[[nodiscard]] std::string_view to_string(Category c) noexcept;

/// Parses a comma-separated category list ("push,pull,queue") into a mask;
/// "all" means every category. Throws std::invalid_argument naming an
/// unknown category.
[[nodiscard]] std::uint32_t parse_categories(std::string_view csv);

/// Renders a mask as the canonical comma-separated list, in fixed
/// push,pull,queue,cutoff,fault,crash,ladder,timeout,retry,drain order
/// ("all" for the full mask, "none" for 0).
[[nodiscard]] std::string format_categories(std::uint32_t mask);

}  // namespace pushpull::obs
