#include "obs/export.hpp"

#include <charconv>
#include <stdexcept>
#include <system_error>

namespace pushpull::obs {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

void append_double(std::string& out, double x) {
  char buf[48];
  const auto res = std::to_chars(buf, buf + sizeof(buf), x);
  if (res.ec != std::errc()) {
    throw std::logic_error("obs::render: to_chars failed for double");
  }
  out.append(buf, res.ptr);
}

void append_rep(std::string& out, std::uint64_t rep) {
  if (rep == kNoRep) return;
  out += "\"rep\":";
  append_u64(out, rep);
  out += ',';
}

}  // namespace

std::string render_number(double x) {
  std::string out;
  append_double(out, x);
  return out;
}

std::string render_header(std::uint32_t categories,
                          std::size_t trace_capacity) {
  std::string out = "{\"schema\":\"obs1\",\"categories\":\"";
  out += format_categories(categories);
  out += "\",\"cap\":";
  append_u64(out, trace_capacity);
  out += "}\n";
  return out;
}

std::string render_chunk(const ObsReport& report, std::uint64_t rep) {
  std::string out;
  for (const TraceEvent& ev : report.events) {
    out += '{';
    append_rep(out, rep);
    out += "\"seq\":";
    append_u64(out, ev.seq);
    out += ",\"t\":";
    append_double(out, ev.time);
    out += ",\"cat\":\"";
    out += to_string(ev.category);
    out += "\",\"ev\":\"";
    out += ev.name;  // static literals, no escaping needed
    out += "\",\"a\":";
    append_u64(out, ev.a);
    out += ",\"b\":";
    append_u64(out, ev.b);
    out += ",\"v\":";
    append_double(out, ev.v);
    out += "}\n";
  }
  for (const auto& [name, value] : report.counters.rows()) {
    out += '{';
    append_rep(out, rep);
    out += "\"counter\":\"";
    out += name;
    out += "\",\"value\":";
    append_u64(out, value);
    out += "}\n";
  }
  for (const QuantileSummary& h : report.histograms) {
    out += '{';
    append_rep(out, rep);
    out += "\"hist\":\"";
    out += h.name;
    out += "\",\"count\":";
    append_u64(out, h.count);
    out += ",\"mean\":";
    append_double(out, h.mean);
    out += ",\"min\":";
    append_double(out, h.min);
    out += ",\"max\":";
    append_double(out, h.max);
    out += ",\"p50\":";
    append_double(out, h.p50);
    out += ",\"p90\":";
    append_double(out, h.p90);
    out += ",\"p99\":";
    append_double(out, h.p99);
    out += "}\n";
  }
  out += '{';
  append_rep(out, rep);
  out += "\"emitted\":";
  append_u64(out, report.emitted);
  out += ",\"dropped\":";
  append_u64(out, report.dropped);
  out += "}\n";
  return out;
}

}  // namespace pushpull::obs
