#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>

#include "obs/category.hpp"

namespace pushpull::obs {

/// Observability knobs carried inside core::HybridConfig.
///
/// Deliberately excluded from exp::replication_fingerprint (like the job
/// count): observation never changes simulation numbers, so a checkpoint
/// written without tracing can be resumed with tracing on and vice versa.
struct ObsConfig {
  /// Master switch. Off ⇒ the server allocates no observer and every
  /// emission site reduces to a null check.
  bool enabled = false;
  /// Runtime category storage mask (see obs::Category).
  std::uint32_t categories = kAllCategories;
  /// Trace ring capacity (events kept per run/replication).
  std::size_t trace_capacity = 65536;

  void validate() const {
    if (trace_capacity == 0) {
      throw std::logic_error("ObsConfig: trace_capacity must be positive");
    }
    if ((categories & ~kAllCategories) != 0) {
      throw std::logic_error("ObsConfig: unknown bits in category mask");
    }
  }
};

}  // namespace pushpull::obs
