#pragma once

#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

namespace pushpull::obs {

/// Lightweight counter hook a `core::PullQueue` increments directly (no
/// virtual dispatch, no tracer formatting on the hot path). Owned by the
/// RunObserver; the queue holds a nullable pointer.
struct QueueCounters {
  std::uint64_t enters = 0;    // requests added to pull-queue entries
  std::uint64_t leaves = 0;    // requests removed (served, abandoned, shed)
  std::uint64_t extracts = 0;  // extract_best/extract calls that won an item
  std::uint64_t peak = 0;      // max total queued requests observed
};

/// Fixed per-subsystem monotonic counters for one run. Plain public
/// fields so emission sites are single `++` instructions; `rows()` renders
/// the full set in a fixed order for deterministic export — every counter
/// always appears, zero or not, so file shape never depends on behavior.
struct CounterSet {
  // des kernel (harvested as deltas around the run)
  std::uint64_t des_scheduled = 0;
  std::uint64_t des_dispatched = 0;
  std::uint64_t des_cancelled = 0;
  // server request lifecycle
  std::uint64_t server_arrivals = 0;
  std::uint64_t server_rejected = 0;   // degradation-ladder admission drops
  std::uint64_t server_abandoned = 0;  // patience expiries
  std::uint64_t server_served_push = 0;
  std::uint64_t server_served_pull = 0;
  // channel usage
  std::uint64_t push_tx = 0;
  std::uint64_t pull_tx = 0;
  std::uint64_t blocked_tx = 0;        // pull slots lost to bandwidth
  std::uint64_t blocked_requests = 0;  // requests settled as blocked
  // pull queue
  std::uint64_t queue_enter = 0;
  std::uint64_t queue_leave = 0;
  std::uint64_t queue_extracts = 0;
  std::uint64_t queue_peak = 0;
  // fault layer
  std::uint64_t fault_corrupt_push = 0;
  std::uint64_t fault_corrupt_pull = 0;
  std::uint64_t fault_retries = 0;
  std::uint64_t fault_lost = 0;
  std::uint64_t fault_shed = 0;
  std::uint64_t fault_flips = 0;  // Gilbert–Elliott state changes
  // resilience
  std::uint64_t crash_count = 0;
  std::uint64_t crash_storm = 0;
  std::uint64_t crash_snapshots = 0;
  std::uint64_t ladder_transitions = 0;
  std::uint64_t cutoff_boosts = 0;

  /// (name, value) pairs in fixed alphabetical-by-name order.
  [[nodiscard]] std::vector<std::pair<std::string_view, std::uint64_t>> rows()
      const {
    return {
        {"crash.count", crash_count},
        {"crash.snapshots", crash_snapshots},
        {"crash.storm", crash_storm},
        {"cutoff.boosts", cutoff_boosts},
        {"des.cancelled", des_cancelled},
        {"des.dispatched", des_dispatched},
        {"des.scheduled", des_scheduled},
        {"fault.corrupt_pull", fault_corrupt_pull},
        {"fault.corrupt_push", fault_corrupt_push},
        {"fault.flips", fault_flips},
        {"fault.lost", fault_lost},
        {"fault.retries", fault_retries},
        {"fault.shed", fault_shed},
        {"ladder.transitions", ladder_transitions},
        {"queue.enter", queue_enter},
        {"queue.extracts", queue_extracts},
        {"queue.leave", queue_leave},
        {"queue.peak", queue_peak},
        {"server.abandoned", server_abandoned},
        {"server.arrivals", server_arrivals},
        {"server.rejected", server_rejected},
        {"server.served_pull", server_served_pull},
        {"server.served_push", server_served_push},
        {"tx.blocked", blocked_tx},
        {"tx.blocked_requests", blocked_requests},
        {"tx.pull", pull_tx},
        {"tx.push", push_tx},
    };
  }
};

}  // namespace pushpull::obs
