#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "metrics/p2_quantile.hpp"
#include "metrics/welford.hpp"
#include "obs/config.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace pushpull::obs {

/// Welford moments plus P² tail estimates for one sim-time series
/// (pull-queue length, per-class response time).
///
/// Samples are buffered and folded into the estimators lazily: the hot
/// path (`add`) is one vector push, and the Welford + 3×P² arithmetic runs
/// at the first accessor call (report/export time) — DESIGN §13. Folding
/// replays the buffer in arrival order, so every statistic is bit-identical
/// to streaming each sample immediately. The buffer is capped at
/// kFoldChunk samples (folded eagerly past that), keeping memory O(1) in
/// the run length.
class QuantileTrack {
 public:
  QuantileTrack() : p50_(0.50), p90_(0.90), p99_(0.99) {}

  void add(double x) {
    deferred_.push_back(x);
    if (deferred_.size() >= kFoldChunk) fold();
  }

  [[nodiscard]] const metrics::Welford& moments() const {
    fold();
    return moments_;
  }
  [[nodiscard]] double p50() const {
    fold();
    return p50_.value();
  }
  [[nodiscard]] double p90() const {
    fold();
    return p90_.value();
  }
  [[nodiscard]] double p99() const {
    fold();
    return p99_.value();
  }

 private:
  static constexpr std::size_t kFoldChunk = std::size_t{1} << 20;

  void fold() const {
    for (const double x : deferred_) {
      moments_.add(x);
      p50_.add(x);
      p90_.add(x);
      p99_.add(x);
    }
    deferred_.clear();
  }

  // mutable: folding is a representation change invisible through the
  // const accessors.
  mutable std::vector<double> deferred_;
  mutable metrics::Welford moments_;
  mutable metrics::P2Quantile p50_;
  mutable metrics::P2Quantile p90_;
  mutable metrics::P2Quantile p99_;
};

/// Rendered summary of one QuantileTrack, ready for export.
struct QuantileSummary {
  std::string name;
  std::uint64_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Everything one observed run produced: the stored trace window, the
/// counter set, and the histogram summaries. Value type so it can ride in
/// results, replication partials, and checkpoints.
struct ObsReport {
  bool enabled = false;
  std::uint32_t categories = 0;
  std::size_t trace_capacity = 0;
  std::uint64_t emitted = 0;  // seq numbers consumed
  std::uint64_t dropped = 0;  // evicted from a full ring
  std::vector<TraceEvent> events;
  CounterSet counters;
  std::vector<QuantileSummary> histograms;
};

/// Per-run observability hub: owns the TraceSink, the counters and the
/// sim-time histograms for one HybridServer::run. Created by the server
/// iff ObsConfig::enabled; subsystems get a Tracer handle and/or raw
/// counter pointers and stay oblivious to everything else.
class RunObserver {
 public:
  RunObserver(const ObsConfig& config, std::size_t num_classes);

  RunObserver(const RunObserver&) = delete;
  RunObserver& operator=(const RunObserver&) = delete;

  [[nodiscard]] Tracer tracer() noexcept { return Tracer(&sink_); }
  [[nodiscard]] QueueCounters* queue_counters() noexcept { return &queue_; }

  /// Sim-time sample of the pull-queue length (taken when it changes).
  void note_queue_len(std::size_t len) {
    queue_len_.add(static_cast<double>(len));
  }
  /// Response time of a served request, by class.
  void note_response(std::size_t cls, double delay) {
    if (cls < response_.size()) response_[cls].add(delay);
  }

  CounterSet counters;

  /// Folds the queue-hook tallies into the counter set and snapshots
  /// everything into a value-type report.
  [[nodiscard]] ObsReport report() const;

 private:
  ObsConfig config_;
  TraceSink sink_;
  QueueCounters queue_;
  QuantileTrack queue_len_;
  std::vector<QuantileTrack> response_;  // one per class
};

}  // namespace pushpull::obs
