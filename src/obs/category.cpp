#include "obs/category.hpp"

#include <array>
#include <stdexcept>

namespace pushpull::obs {

namespace {

struct CategoryName {
  Category category;
  std::string_view name;
};

/// Fixed declaration order — drives format_categories and the JSONL
/// header, so the rendering is deterministic by construction.
constexpr std::array<CategoryName, 10> kCategoryNames{{
    {Category::kPush, "push"},
    {Category::kPull, "pull"},
    {Category::kQueue, "queue"},
    {Category::kCutoff, "cutoff"},
    {Category::kFault, "fault"},
    {Category::kCrash, "crash"},
    {Category::kLadder, "ladder"},
    {Category::kTimeout, "timeout"},
    {Category::kRetry, "retry"},
    {Category::kDrain, "drain"},
}};

}  // namespace

std::string_view to_string(Category c) noexcept {
  for (const auto& entry : kCategoryNames) {
    if (entry.category == c) return entry.name;
  }
  return "unknown";
}

std::uint32_t parse_categories(std::string_view csv) {
  std::uint32_t mask = 0;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string_view token =
        csv.substr(pos, comma == std::string_view::npos ? comma : comma - pos);
    if (token.empty()) {
      throw std::invalid_argument(
          "parse_categories: empty category in '" + std::string(csv) + "'");
    }
    if (token == "all") {
      mask |= kAllCategories;
    } else {
      bool found = false;
      for (const auto& entry : kCategoryNames) {
        if (token == entry.name) {
          mask |= category_bit(entry.category);
          found = true;
          break;
        }
      }
      if (!found) {
        throw std::invalid_argument(
            "parse_categories: unknown category '" + std::string(token) +
            "' (expected push,pull,queue,cutoff,fault,crash,ladder,timeout,"
            "retry,drain or all)");
      }
    }
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  return mask;
}

std::string format_categories(std::uint32_t mask) {
  if (mask == 0) return "none";
  if ((mask & kAllCategories) == kAllCategories) return "all";
  std::string out;
  for (const auto& entry : kCategoryNames) {
    if ((mask & category_bit(entry.category)) == 0) continue;
    if (!out.empty()) out += ',';
    out += entry.name;
  }
  return out;
}

}  // namespace pushpull::obs
