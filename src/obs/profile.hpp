#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "runtime/run_reporter.hpp"

namespace pushpull::obs {

/// Opt-in wall-clock profiling scopes.
///
/// Wall time lives OUTSIDE the trace on purpose (DESIGN §8): trace events
/// are part of the deterministic record and must be bit-identical across
/// machines, while wall-clock durations never can be. So profiling data
/// flows to its own sink — this class — built on the one sanctioned
/// wall-clock reader, runtime::StopWatch (detlint D1 stays clean), and is
/// only ever reported as telemetry (BENCH_obs.json).
///
/// std::map keeps scope iteration deterministically ordered (detlint D3).
class Profiler {
 public:
  struct Scope {
    std::uint64_t calls = 0;
    double total_ms = 0.0;
  };

  void add_sample(const std::string& name, double ms) {
    Scope& s = scopes_[name];
    ++s.calls;
    s.total_ms += ms;
  }

  [[nodiscard]] std::vector<std::pair<std::string, Scope>> rows() const {
    return {scopes_.begin(), scopes_.end()};
  }

  void clear() { scopes_.clear(); }

 private:
  std::map<std::string, Scope> scopes_;
};

/// RAII scope: measures wall time from construction to destruction and
/// folds it into the profiler. A null profiler makes the scope inert, so
/// call sites need no branching.
class ProfileScope {
 public:
  ProfileScope(Profiler* profiler, const char* name)
      : profiler_(profiler), name_(name) {}

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

  ~ProfileScope() {
    if (profiler_ != nullptr) profiler_->add_sample(name_, watch_.elapsed_ms());
  }

 private:
  Profiler* profiler_;
  const char* name_;
  runtime::StopWatch watch_;
};

}  // namespace pushpull::obs
