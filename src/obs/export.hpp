#pragma once

#include <cstdint>
#include <string>

#include "obs/observer.hpp"

namespace pushpull::obs {

/// Sentinel for single-run exports: the "rep" key is omitted entirely.
inline constexpr std::uint64_t kNoRep = ~0ull;

/// Shortest round-trip decimal rendering of a double via std::to_chars —
/// locale-independent and deterministic across runs, which is what lets
/// the golden trace fixtures byte-compare.
[[nodiscard]] std::string render_number(double x);

/// File header line: {"schema":"obs1","categories":"all","cap":65536}
[[nodiscard]] std::string render_header(std::uint32_t categories,
                                        std::size_t trace_capacity);

/// One run's complete JSONL chunk: events in (time, seq) order, then the
/// full counter set in fixed order, then histogram summaries, then a
/// {"emitted":..,"dropped":..} footer. `rep` tags every line when not
/// kNoRep, so replication chunks can be concatenated job-index-ordered
/// into one stream that is bit-identical across --jobs.
[[nodiscard]] std::string render_chunk(const ObsReport& report,
                                       std::uint64_t rep = kNoRep);

}  // namespace pushpull::obs
