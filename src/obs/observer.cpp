#include "obs/observer.hpp"

namespace pushpull::obs {

namespace {

QuantileSummary summarize(std::string name, const QuantileTrack& track) {
  QuantileSummary s;
  s.name = std::move(name);
  const metrics::Welford& w = track.moments();
  s.count = w.count();
  s.mean = w.mean();
  s.min = w.min();
  s.max = w.max();
  s.p50 = track.p50();
  s.p90 = track.p90();
  s.p99 = track.p99();
  return s;
}

}  // namespace

RunObserver::RunObserver(const ObsConfig& config, std::size_t num_classes)
    : config_(config),
      sink_(config.trace_capacity, config.categories),
      response_(num_classes) {
  config_.validate();
}

ObsReport RunObserver::report() const {
  ObsReport r;
  r.enabled = true;
  r.categories = sink_.categories();
  r.trace_capacity = sink_.capacity();
  r.emitted = sink_.emitted();
  r.dropped = sink_.dropped();
  r.events = sink_.snapshot();
  r.counters = counters;
  r.counters.queue_enter = queue_.enters;
  r.counters.queue_leave = queue_.leaves;
  r.counters.queue_extracts = queue_.extracts;
  r.counters.queue_peak = queue_.peak;
  r.histograms.push_back(summarize("pull_queue_len", queue_len_));
  for (std::size_t c = 0; c < response_.size(); ++c) {
    r.histograms.push_back(
        summarize("response.class" + std::to_string(c), response_[c]));
  }
  return r;
}

}  // namespace pushpull::obs
