#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "obs/category.hpp"

namespace pushpull::obs {

/// One structured trace event. `name` points at a static string literal
/// supplied by the emission site ("tx_start", "enter", ...); the sink
/// never owns or copies it. `a`/`b` carry small integer operands (item id,
/// class id, attempt number) and `v` one double operand (queue length,
/// demand draw, cost) — a fixed shape keeps the ring buffer POD and the
/// JSONL rendering uniform.
struct TraceEvent {
  double time = 0.0;
  std::uint64_t seq = 0;
  Category category = Category::kQueue;
  const char* name = "";
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  double v = 0.0;
};

/// Bounded ring of trace events, stored in a compact binary encoding.
///
/// Determinism rules (DESIGN §8): the sink is fed only sim-time-stamped
/// events in dispatch order, never reads a clock or an RNG, and never
/// influences the simulation — recording is strictly write-only from the
/// sim's perspective, which is what makes traced and untraced runs
/// bit-identical.
///
/// Sequence numbers: `record` assigns the next seq to EVERY offered event,
/// whether or not the runtime category mask stores it. A category-filtered
/// run therefore produces an exact sub-sequence (same seq values, same
/// payloads) of the unfiltered run's stream — the property the test suite
/// pins.
///
/// Capacity: when full, the oldest stored event is dropped (and counted)
/// so a long run degrades to "most recent window" rather than OOM.
///
/// Storage (DESIGN §13): events are not stored as 56-byte TraceEvent
/// structs but as variable-length binary records in a byte log —
/// (name, category) interned to a small id, seq delta-encoded, a/b as
/// varints, time raw, v present only when its bit pattern is non-zero
/// (~14-22 bytes per event in practice). Recording therefore costs a short
/// sequential append into a cache-resident log instead of a wide scattered
/// store; decoding back to TraceEvent structs — and from there to JSONL —
/// is deferred to snapshot()/export, off the simulation hot path. The
/// decoded stream is field-for-field identical to what the struct ring
/// stored (same name pointers, same bit patterns), so exports are
/// byte-identical.
class TraceSink {
 public:
  /// `capacity` must be > 0; `categories` is the runtime storage mask.
  TraceSink(std::size_t capacity, std::uint32_t categories);

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Offers an event. Always consumes one sequence number; stores the
  /// event only if its category is in the runtime mask (dropping the
  /// oldest stored event when at capacity).
  void record(double time, Category category, const char* name,
              std::uint64_t a, std::uint64_t b, double v);

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint32_t categories() const noexcept {
    return categories_;
  }
  /// Sequence numbers consumed so far (== events offered, stored or not).
  [[nodiscard]] std::uint64_t emitted() const noexcept { return next_seq_; }
  /// Events evicted from a full ring (excludes events skipped by mask).
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }

  /// Stored events in (time, seq) order. Events are offered in dispatch
  /// order so time is already non-decreasing and seq strictly increasing;
  /// the sort is a stable belt-and-braces pass that also makes the export
  /// order explicit rather than incidental.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// Forgets stored events and counters; seq restarts at 0. Used between
  /// replications so each rep's stream is self-contained.
  void clear();

 private:
  /// Interning key: emission sites pass static string literals, so the
  /// pointer itself identifies the site; category is part of the key in
  /// case one name is emitted under two categories.
  struct NameKey {
    const char* name;
    Category category;
    bool operator==(const NameKey&) const = default;
  };
  struct NameKeyHash {
    std::size_t operator()(const NameKey& k) const noexcept;
  };

  /// Direct-mapped cache in front of `name_ids_`: emission sites repeat a
  /// handful of literals millions of times, so the common intern is one
  /// pointer compare instead of a hash-map probe.
  struct InternSlot {
    const char* name = nullptr;
    Category category = Category::kQueue;
    std::uint32_t id = 0;
  };

  [[nodiscard]] std::uint32_t intern(const char* name, Category category);
  [[nodiscard]] std::uint32_t intern_slow(const char* name,
                                          Category category);
  void append_record(double time, std::uint64_t seq, std::uint32_t name_id,
                     std::uint64_t a, std::uint64_t b, double v);
  /// Parses and discards the record at head_off_.
  void drop_oldest();

  std::size_t capacity_;
  std::uint32_t categories_;
  std::vector<std::uint8_t> log_;   // encoded records, oldest at head_off_
  std::size_t head_off_ = 0;        // byte offset of the oldest record
  std::size_t count_ = 0;           // stored (undropped) records
  std::uint64_t head_prev_seq_ = 0; // seq preceding the head record
  std::uint64_t tail_prev_seq_ = 0; // seq of the newest encoded record
  std::vector<NameKey> names_;      // id -> (name, category)
  std::unordered_map<NameKey, std::uint32_t, NameKeyHash> name_ids_;
  std::array<InternSlot, 16> intern_cache_{};
  std::uint64_t next_seq_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Cheap, copyable handle the instrumented subsystems hold. A
/// default-constructed Tracer is inert: `emit` reduces to one null check
/// (after the compile-time mask), which is the entire disabled-path cost.
class Tracer {
 public:
  Tracer() = default;
  explicit Tracer(TraceSink* sink) : sink_(sink) {}

  [[nodiscard]] bool enabled() const noexcept { return sink_ != nullptr; }

  template <Category C>
  void emit(double time, const char* name, std::uint64_t a = 0,
            std::uint64_t b = 0, double v = 0.0) const {
    if constexpr (!compiled_in(C)) {
      (void)time;
      (void)name;
      (void)a;
      (void)b;
      (void)v;
      return;
    } else {
      if (sink_ == nullptr) return;
      sink_->record(time, C, name, a, b, v);
    }
  }

 private:
  TraceSink* sink_ = nullptr;
};

}  // namespace pushpull::obs
