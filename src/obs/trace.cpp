#include "obs/trace.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace pushpull::obs {

namespace {

/// LEB128 without the sign games: 7 payload bits per byte, high bit marks
/// continuation. Small operands (class ids, attempt counts, seq deltas of
/// 1) cost one byte. Encoders write into a caller-provided stack buffer
/// and return the byte count, so a whole record lands in the log with one
/// bulk insert.
std::size_t put_varint_buf(std::uint8_t* buf, std::uint64_t value) {
  std::size_t n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<std::uint8_t>(value) | 0x80;
    value >>= 7;
  }
  buf[n++] = static_cast<std::uint8_t>(value);
  return n;
}

std::uint64_t get_varint(const std::vector<std::uint8_t>& log,
                         std::size_t& off) {
  std::uint64_t value = 0;
  int shift = 0;
  while (true) {
    const std::uint8_t byte = log[off++];
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
}

std::uint64_t read_varint(const std::uint8_t*& p) {
  std::uint64_t value = 0;
  int shift = 0;
  while (true) {
    const std::uint8_t byte = *p++;
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
}

void skip_varint(const std::uint8_t*& p) {
  while ((*p++ & 0x80) != 0) {
  }
}

/// Doubles travel as their raw bit pattern (little-endian bytes) so decode
/// reproduces the exact value, including -0.0 and NaN payloads.
std::size_t put_f64_buf(std::uint8_t* buf, double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<std::uint8_t>(bits >> (8 * i));
  }
  return 8;
}

double get_f64(const std::vector<std::uint8_t>& log, std::size_t& off) {
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<std::uint64_t>(log[off++]) << (8 * i);
  }
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

constexpr std::uint8_t kHasV = 0x01;

}  // namespace

std::size_t TraceSink::NameKeyHash::operator()(
    const NameKey& k) const noexcept {
  // Golden-ratio mix of the category into the pointer hash; equality does
  // the exact comparison, so this only needs to spread.
  return std::hash<const void*>{}(static_cast<const void*>(k.name)) ^
         (static_cast<std::size_t>(k.category) * 0x9E3779B97F4A7C15ULL);
}

TraceSink::TraceSink(std::size_t capacity, std::uint32_t categories)
    : capacity_(capacity), categories_(categories & kAllCategories) {
  if (capacity_ == 0) {
    throw std::logic_error("TraceSink: capacity must be positive");
  }
  // ~24 bytes is a generous per-record estimate; cap the up-front grab.
  log_.reserve(std::min<std::size_t>(capacity_ * 24, std::size_t{1} << 20));
}

std::uint32_t TraceSink::intern(const char* name, Category category) {
  // The cache index only affects speed: ids come from insertion order, so
  // pointer values never leak into any output.
  const auto p = reinterpret_cast<std::uintptr_t>(name);
  InternSlot& slot = intern_cache_[(p >> 4 ^ p ^
                                    static_cast<std::uintptr_t>(category)) %
                                   intern_cache_.size()];
  if (slot.name == name && slot.category == category) return slot.id;
  const std::uint32_t id = intern_slow(name, category);
  slot = InternSlot{name, category, id};
  return id;
}

std::uint32_t TraceSink::intern_slow(const char* name, Category category) {
  const NameKey key{name, category};
  const auto [it, inserted] =
      name_ids_.try_emplace(key, static_cast<std::uint32_t>(names_.size()));
  if (inserted) names_.push_back(key);
  return it->second;
}

void TraceSink::append_record(double time, std::uint64_t seq,
                              std::uint32_t name_id, std::uint64_t a,
                              std::uint64_t b, double v) {
  // Layout: [flags][varint name_id][raw time][varint seq_delta][varint a]
  //         [varint b][raw v iff kHasV]. Self-delimiting, so drop/decode
  //         parse forward without a length prefix. Encoded into a stack
  //         buffer first so the log takes one bulk insert, not ~20
  //         per-byte push_backs.
  std::uint8_t buf[64];
  std::size_t n = 0;
  std::uint64_t vbits = 0;
  std::memcpy(&vbits, &v, sizeof(vbits));
  const std::uint8_t flags = vbits != 0 ? kHasV : 0;
  buf[n++] = flags;
  n += put_varint_buf(buf + n, name_id);
  n += put_f64_buf(buf + n, time);
  n += put_varint_buf(buf + n, seq - tail_prev_seq_);
  tail_prev_seq_ = seq;
  n += put_varint_buf(buf + n, a);
  n += put_varint_buf(buf + n, b);
  if ((flags & kHasV) != 0) n += put_f64_buf(buf + n, v);
  log_.insert(log_.end(), buf, buf + n);
}

void TraceSink::drop_oldest() {
  const std::uint8_t* base = log_.data();
  const std::uint8_t* p = base + head_off_;
  const std::uint8_t flags = *p++;
  skip_varint(p);  // name_id
  p += 8;          // time
  head_prev_seq_ += read_varint(p);
  skip_varint(p);  // a
  skip_varint(p);  // b
  if ((flags & kHasV) != 0) p += 8;
  head_off_ = static_cast<std::size_t>(p - base);
  --count_;
  ++dropped_;
  // Reclaim the dead prefix once it outweighs the live suffix; amortized
  // O(1) per record, bounds the log at ~2x the live bytes.
  if (head_off_ > log_.size() - head_off_) {
    log_.erase(log_.begin(), log_.begin() + static_cast<std::ptrdiff_t>(
                                                head_off_));
    head_off_ = 0;
  }
}

void TraceSink::record(double time, Category category, const char* name,
                       std::uint64_t a, std::uint64_t b, double v) {
  const std::uint64_t seq = next_seq_++;
  if ((categories_ & category_bit(category)) == 0) return;
  if (count_ == capacity_) drop_oldest();
  append_record(time, seq, intern(name, category), a, b, v);
  ++count_;
}

std::vector<TraceEvent> TraceSink::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(count_);
  std::size_t off = head_off_;
  std::uint64_t prev_seq = head_prev_seq_;
  for (std::size_t i = 0; i < count_; ++i) {
    const std::uint8_t flags = log_[off++];
    const auto name_id = static_cast<std::uint32_t>(get_varint(log_, off));
    TraceEvent ev;
    ev.time = get_f64(log_, off);
    prev_seq += get_varint(log_, off);
    ev.seq = prev_seq;
    ev.category = names_[name_id].category;
    ev.name = names_[name_id].name;
    ev.a = get_varint(log_, off);
    ev.b = get_varint(log_, off);
    ev.v = (flags & kHasV) != 0 ? get_f64(log_, off) : 0.0;
    out.push_back(ev);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& lhs, const TraceEvent& rhs) {
                     if (lhs.time < rhs.time) return true;
                     if (rhs.time < lhs.time) return false;
                     return lhs.seq < rhs.seq;
                   });
  return out;
}

void TraceSink::clear() {
  log_.clear();
  head_off_ = 0;
  count_ = 0;
  head_prev_seq_ = 0;
  tail_prev_seq_ = 0;
  next_seq_ = 0;
  dropped_ = 0;
  // The intern table survives: names are static literals and ids stay
  // valid across replications.
}

}  // namespace pushpull::obs
