#include "obs/trace.hpp"

#include <algorithm>
#include <stdexcept>

namespace pushpull::obs {

TraceSink::TraceSink(std::size_t capacity, std::uint32_t categories)
    : capacity_(capacity), categories_(categories & kAllCategories) {
  if (capacity_ == 0) {
    throw std::logic_error("TraceSink: capacity must be positive");
  }
  ring_.reserve(std::min<std::size_t>(capacity_, 4096));
}

void TraceSink::record(double time, Category category, const char* name,
                       std::uint64_t a, std::uint64_t b, double v) {
  const std::uint64_t seq = next_seq_++;
  if ((categories_ & category_bit(category)) == 0) return;
  const TraceEvent ev{time, seq, category, name, a, b, v};
  if (ring_.size() < capacity_) {
    ring_.push_back(ev);
    return;
  }
  // Full: overwrite the oldest slot and advance the ring head.
  ring_[head_] = ev;
  head_ = (head_ + 1) % capacity_;
  wrapped_ = true;
  ++dropped_;
}

std::vector<TraceEvent> TraceSink::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (wrapped_) {
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(head_));
  } else {
    out = ring_;
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& lhs, const TraceEvent& rhs) {
                     if (lhs.time < rhs.time) return true;
                     if (rhs.time < lhs.time) return false;
                     return lhs.seq < rhs.seq;
                   });
  return out;
}

void TraceSink::clear() {
  ring_.clear();
  head_ = 0;
  wrapped_ = false;
  next_seq_ = 0;
  dropped_ = 0;
}

}  // namespace pushpull::obs
