#include "serve/replay.hpp"

#include <sstream>
#include <stdexcept>

#include "core/hybrid_server.hpp"
#include "obs/export.hpp"
#include "rng/splitmix64.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/live_server.hpp"
#include "serve/load_driver.hpp"

namespace pushpull::serve {

using obs::render_number;

namespace {

/// Replays a recording whose config escapes the DES-mappable subset
/// (deadline scales, spikes, fault channel, ladder, hedging, drain):
/// re-runs the live engine itself, accelerated, over the recorded trace.
/// Deterministic for the same reason the original run was — the
/// accelerated loop is a pure function of (trace, config, seed).
core::SimResult live_replay(const catalog::Catalog& cat,
                            const workload::ClientPopulation& pop,
                            const RecordedRun& run, std::uint64_t seed) {
  ServeConfig config = run.config;
  config.accelerated = true;
  config.seed = seed;
  LoadDriver driver(run.trace());
  LiveServer server(cat, pop, config);
  const ServeReport report = server.run_accelerated(driver, nullptr);

  core::SimResult result;
  result.per_class = report.per_class;
  result.end_time = report.end_time;
  result.push_transmissions = report.push_transmissions;
  result.pull_transmissions = report.pull_transmissions;
  result.corrupted_push_transmissions = report.corrupted_push_transmissions;
  result.corrupted_pull_transmissions = report.corrupted_pull_transmissions;
  result.mean_pull_queue_len = report.mean_pull_queue_len;
  result.max_pull_queue_len = report.max_pull_queue_len;
  result.overload_transitions = report.overload_transitions;
  result.max_overload_level = report.max_overload_level;
  return result;
}

}  // namespace

std::vector<core::SimResult> replay(const RecordedRun& run,
                                    const ReplayOptions& options) {
  if (options.reps == 0) {
    throw std::invalid_argument("serve::replay: reps must be >= 1");
  }
  const catalog::Catalog cat = run.config.build_catalog();
  const workload::ClientPopulation pop = run.config.build_population();
  const workload::Trace trace = run.trace();
  const bool live = !run.config.des_mappable();

  auto run_one = [&](std::size_t rep) -> core::SimResult {
    // Same decorrelation idiom as exp::replicate_hybrid — but only the
    // *server* seed moves; the workload is the recording and stays frozen.
    // Rep 0 runs the recorded seed verbatim (the bit-exact bridge).
    const std::uint64_t seed =
        rep > 0 ? rng::SplitMix64::mix(run.config.seed + rep)
                : run.config.seed;
    if (live) return live_replay(cat, pop, run, seed);
    core::HybridConfig config = run.config.hybrid();
    config.seed = seed;
    core::HybridServer server(cat, pop, config);
    return server.run(trace);
  };

  if (options.jobs == 1 || options.reps == 1) {
    return runtime::serial_map(options.reps, run_one);
  }
  runtime::ThreadPool pool(options.jobs);
  return runtime::parallel_map(pool, options.reps, run_one);
}

std::string render_replay_report(const RecordedRun& run,
                                 const std::vector<core::SimResult>& results) {
  std::ostringstream out;
  out << "{\"schema\":\"replay1\",\"seed\":" << run.config.seed
      << ",\"requests\":" << run.requests.size()
      << ",\"decisions\":" << run.decisions
      << ",\"reps\":" << results.size() << ",\"cutoff\":" << run.config.cutoff
      << ",\"alpha\":" << render_number(run.config.alpha)
      << ",\"pull_policy\":\"" << sched::to_string(run.config.pull_policy)
      << "\",\"push_policy\":\"" << sched::to_string(run.config.push_policy)
      << "\",\"engine\":\"" << (run.config.des_mappable() ? "des" : "live")
      << "\"}\n";
  for (std::size_t rep = 0; rep < results.size(); ++rep) {
    const core::SimResult& r = results[rep];
    out << "{\"rep\":" << rep
        << ",\"end_time\":" << render_number(r.end_time)
        << ",\"push_tx\":" << r.push_transmissions
        << ",\"pull_tx\":" << r.pull_transmissions
        << ",\"blocked_tx\":" << r.blocked_transmissions
        << ",\"mean_pull_queue_len\":"
        << render_number(r.mean_pull_queue_len)
        << ",\"max_pull_queue_len\":" << r.max_pull_queue_len << "}\n";
    for (std::size_t cls = 0; cls < r.per_class.size(); ++cls) {
      const metrics::ClassStats& s = r.per_class[cls];
      out << "{\"rep\":" << rep << ",\"class\":" << cls
          << ",\"arrived\":" << s.arrived << ",\"served\":" << s.served
          << ",\"served_push\":" << s.served_push
          << ",\"served_pull\":" << s.served_pull
          << ",\"blocked\":" << s.blocked
          << ",\"mean_wait\":" << render_number(s.wait.mean())
          << ",\"wait_p50\":"
          << render_number(s.wait_p50.count() ? s.wait_p50.value() : 0.0)
          << ",\"wait_p95\":"
          << render_number(s.wait_p95.count() ? s.wait_p95.value() : 0.0)
          << ",\"wait_p99\":"
          << render_number(s.wait_p99.count() ? s.wait_p99.value() : 0.0)
          << "}\n";
    }
  }
  return out.str();
}

}  // namespace pushpull::serve
