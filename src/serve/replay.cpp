#include "serve/replay.hpp"

#include <sstream>
#include <stdexcept>

#include "core/hybrid_server.hpp"
#include "obs/export.hpp"
#include "rng/splitmix64.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/thread_pool.hpp"

namespace pushpull::serve {

using obs::render_number;

std::vector<core::SimResult> replay(const RecordedRun& run,
                                    const ReplayOptions& options) {
  if (options.reps == 0) {
    throw std::invalid_argument("serve::replay: reps must be >= 1");
  }
  const catalog::Catalog cat = run.config.build_catalog();
  const workload::ClientPopulation pop = run.config.build_population();
  const workload::Trace trace = run.trace();

  auto run_one = [&](std::size_t rep) -> core::SimResult {
    core::HybridConfig config = run.config.hybrid();
    if (rep > 0) {
      // Same decorrelation idiom as exp::replicate_hybrid — but only the
      // *server* seed moves; the workload is the recording and stays frozen.
      config.seed = rng::SplitMix64::mix(run.config.seed + rep);
    }
    core::HybridServer server(cat, pop, config);
    return server.run(trace);
  };

  if (options.jobs == 1 || options.reps == 1) {
    return runtime::serial_map(options.reps, run_one);
  }
  runtime::ThreadPool pool(options.jobs);
  return runtime::parallel_map(pool, options.reps, run_one);
}

std::string render_replay_report(const RecordedRun& run,
                                 const std::vector<core::SimResult>& results) {
  std::ostringstream out;
  out << "{\"schema\":\"replay1\",\"seed\":" << run.config.seed
      << ",\"requests\":" << run.requests.size()
      << ",\"decisions\":" << run.decisions
      << ",\"reps\":" << results.size() << ",\"cutoff\":" << run.config.cutoff
      << ",\"alpha\":" << render_number(run.config.alpha)
      << ",\"pull_policy\":\"" << sched::to_string(run.config.pull_policy)
      << "\",\"push_policy\":\"" << sched::to_string(run.config.push_policy)
      << "\"}\n";
  for (std::size_t rep = 0; rep < results.size(); ++rep) {
    const core::SimResult& r = results[rep];
    out << "{\"rep\":" << rep
        << ",\"end_time\":" << render_number(r.end_time)
        << ",\"push_tx\":" << r.push_transmissions
        << ",\"pull_tx\":" << r.pull_transmissions
        << ",\"blocked_tx\":" << r.blocked_transmissions
        << ",\"mean_pull_queue_len\":"
        << render_number(r.mean_pull_queue_len)
        << ",\"max_pull_queue_len\":" << r.max_pull_queue_len << "}\n";
    for (std::size_t cls = 0; cls < r.per_class.size(); ++cls) {
      const metrics::ClassStats& s = r.per_class[cls];
      out << "{\"rep\":" << rep << ",\"class\":" << cls
          << ",\"arrived\":" << s.arrived << ",\"served\":" << s.served
          << ",\"served_push\":" << s.served_push
          << ",\"served_pull\":" << s.served_pull
          << ",\"blocked\":" << s.blocked
          << ",\"mean_wait\":" << render_number(s.wait.mean())
          << ",\"wait_p50\":"
          << render_number(s.wait_p50.count() ? s.wait_p50.value() : 0.0)
          << ",\"wait_p95\":"
          << render_number(s.wait_p95.count() ? s.wait_p95.value() : 0.0)
          << ",\"wait_p99\":"
          << render_number(s.wait_p99.count() ? s.wait_p99.value() : 0.0)
          << "}\n";
    }
  }
  return out.str();
}

}  // namespace pushpull::serve
