#include "serve/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <fstream>
#include <istream>
#include <stdexcept>

namespace pushpull::serve {

std::string ConservationLedger::render_json() const {
  std::string out = "{\"injected\":" + std::to_string(injected) +
                    ",\"delivered\":" + std::to_string(delivered) +
                    ",\"timed_out\":" + std::to_string(timed_out) +
                    ",\"rejected\":" + std::to_string(rejected) +
                    ",\"shed\":" + std::to_string(shed) +
                    ",\"lost\":" + std::to_string(lost) +
                    ",\"in_flight_at_drain\":" +
                    std::to_string(in_flight_at_drain) + "}";
  return out;
}

std::string frame_record(std::string_view payload) {
  if (payload.find('\n') != std::string_view::npos) {
    throw std::invalid_argument(
        "frame_record: payload must not contain a newline");
  }
  // Fixed-width lowercase hex length prefix.
  std::string out(kFrameDigits, '0');
  std::size_t len = payload.size();
  for (std::size_t i = kFrameDigits; i-- > 0 && len > 0; len >>= 4) {
    out[i] = "0123456789abcdef"[len & 0xF];
  }
  if (len > 0) {
    throw std::invalid_argument("frame_record: payload too large to frame");
  }
  out += ' ';
  out += payload;
  out += '\n';
  return out;
}

namespace {

[[nodiscard]] bool hex_value(char c, std::size_t& out) noexcept {
  if (c >= '0' && c <= '9') {
    out = static_cast<std::size_t>(c - '0');
    return true;
  }
  if (c >= 'a' && c <= 'f') {
    out = static_cast<std::size_t>(c - 'a') + 10;
    return true;
  }
  return false;
}

}  // namespace

JournalScan scan_journal(std::istream& in) {
  JournalScan scan;
  std::string buffer;
  while (true) {
    char prefix[kFrameDigits + 1];
    in.read(prefix, static_cast<std::streamsize>(kFrameDigits + 1));
    const std::size_t got = static_cast<std::size_t>(in.gcount());
    if (got == 0) return scan;  // clean EOF at a record boundary
    if (got < kFrameDigits + 1) {
      scan.truncated = true;
      return scan;
    }
    std::size_t length = 0;
    bool valid = prefix[kFrameDigits] == ' ';
    for (std::size_t i = 0; valid && i < kFrameDigits; ++i) {
      std::size_t digit = 0;
      valid = hex_value(prefix[i], digit);
      length = (length << 4) | digit;
    }
    if (!valid) {
      scan.truncated = true;
      return scan;
    }
    buffer.resize(length + 1);
    in.read(buffer.data(), static_cast<std::streamsize>(length + 1));
    if (static_cast<std::size_t>(in.gcount()) < length + 1 ||
        buffer[length] != '\n') {
      scan.truncated = true;
      return scan;
    }
    buffer.pop_back();  // drop the newline
    if (buffer.find('\n') != std::string::npos) {
      scan.truncated = true;  // spliced frame hiding an embedded record
      return scan;
    }
    scan.payloads.push_back(buffer);
    scan.bytes_consumed += kFrameDigits + 1 + length + 1;
  }
}

struct JournalFile::Impl {
  std::ofstream out;
  int fd = -1;
};

JournalFile::JournalFile(const std::string& path)
    : impl_(new Impl), path_(path) {
  impl_->out.open(path, std::ios::binary | std::ios::trunc);
  if (!impl_->out) {
    delete impl_;
    throw std::runtime_error("JournalFile: cannot open \"" + path +
                             "\" for writing");
  }
  impl_->fd = ::open(path.c_str(), O_WRONLY);
}

JournalFile::~JournalFile() {
  if (impl_->fd >= 0) ::close(impl_->fd);
  delete impl_;
}

std::ostream& JournalFile::stream() { return impl_->out; }

void JournalFile::sync() {
  impl_->out.flush();
  if (!impl_->out) {
    throw std::runtime_error("JournalFile: write failure on \"" + path_ +
                             "\"");
  }
  if (impl_->fd >= 0) {
    // Durability barrier: every framed record written so far survives a
    // crash-kill. Failure is not fatal (e.g. fdatasync on a pipe) — the
    // flush above already pushed the bytes to the OS.
    (void)::fdatasync(impl_->fd);
  }
}

}  // namespace pushpull::serve
