#pragma once

/// Live serving frontend (DESIGN §9): the layer that promotes the hybrid
/// scheduler from a DES-driven model to an in-process async server.
///
///   clock.hpp            serve::Clock — the fenced time source (virtual +
///                        wall backends; wall reads only in clock.cpp)
///   completion_queue.hpp bounded MPSC queue feeding server ticks
///   serve_config.hpp     one run's workload/scheduler/serving knobs
///   load_driver.hpp      seeded open-loop load, planned upfront
///   record.hpp           sv1 request/decision trace codec
///   live_server.hpp      the completion-queue event loop around the
///                        HybridServer scheduling rules
///   replay.hpp           recorded trace → deterministic DES, bit-exact
#include "serve/clock.hpp"             // IWYU pragma: export
#include "serve/completion_queue.hpp"  // IWYU pragma: export
#include "serve/live_server.hpp"       // IWYU pragma: export
#include "serve/load_driver.hpp"       // IWYU pragma: export
#include "serve/record.hpp"            // IWYU pragma: export
#include "serve/replay.hpp"            // IWYU pragma: export
#include "serve/serve_config.hpp"      // IWYU pragma: export
