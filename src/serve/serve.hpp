#pragma once

/// Live serving frontend (DESIGN §9–10): the layer that promotes the hybrid
/// scheduler from a DES-driven model to an in-process async server, plus
/// the live failure model (deadlines, retry/hedge, overload ladder,
/// crash-consistent journaling, graceful drain).
///
///   clock.hpp            serve::Clock — the fenced time source (virtual +
///                        wall backends; wall reads only in clock.cpp)
///   completion_queue.hpp bounded MPSC queue feeding server ticks
///   serve_config.hpp     one run's workload/scheduler/serving knobs plus
///                        the live failure model
///   load_driver.hpp      seeded open-loop load, planned upfront
///   journal.hpp          sv2 framed journal: conservation ledger, length
///                        prefixes, truncation-exact scanning, fsync sink
///   record.hpp           sv1/sv2 trace codec + crash recovery
///   live_server.hpp      the completion-queue event loop around the
///                        HybridServer scheduling rules
///   replay.hpp           recorded trace → deterministic engine (DES or
///                        live), bit-exact
///   chaos.hpp            serve --resume / --chaos: journal recovery and
///                        the seeded kill/recover/resume/replay harness
#include "serve/chaos.hpp"             // IWYU pragma: export
#include "serve/clock.hpp"             // IWYU pragma: export
#include "serve/completion_queue.hpp"  // IWYU pragma: export
#include "serve/journal.hpp"           // IWYU pragma: export
#include "serve/live_server.hpp"       // IWYU pragma: export
#include "serve/load_driver.hpp"       // IWYU pragma: export
#include "serve/record.hpp"            // IWYU pragma: export
#include "serve/replay.hpp"            // IWYU pragma: export
#include "serve/serve_config.hpp"      // IWYU pragma: export
