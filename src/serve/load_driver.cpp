#include "serve/load_driver.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "workload/request_generator.hpp"

namespace pushpull::serve {

LoadDriver::LoadDriver(const catalog::Catalog& cat,
                       const workload::ClientPopulation& pop,
                       double target_qps, double duration,
                       std::uint64_t seed) {
  workload::RequestGenerator gen(cat, pop, target_qps, seed);
  plan_ = workload::Trace::record_until(gen, duration);
}

LoadDriver::LoadDriver(workload::Trace plan) : plan_(std::move(plan)) {}

workload::Request LoadDriver::take() {
  if (next_ >= plan_.size()) {
    throw std::logic_error(
        "LoadDriver: take() past the end of the plan; peek() first");
  }
  return plan_[next_++];
}

void LoadDriver::run_realtime(CompletionQueue& queue, Clock& clock,
                              std::size_t pacers) {
  if (pacers == 0) {
    throw std::invalid_argument("LoadDriver: pacers must be >= 1");
  }
  // Round-robin sharding: pacer p owns plan indices p, p+pacers, ... Each
  // shard's arrivals are in planned order, so a single pacer reproduces the
  // plan's order exactly; multiple pacers may interleave at the queue, which
  // is why replay sorts by (arrival, id) before rebuilding a Trace.
  std::vector<std::thread> threads;
  threads.reserve(pacers);
  for (std::size_t p = 0; p < pacers; ++p) {
    threads.emplace_back([this, &queue, &clock, p, pacers]() {
      for (std::size_t i = p; i < plan_.size(); i += pacers) {
        const workload::Request& planned = plan_[i];
        // seconds_until is a wait budget, not a timestamp (Clock contract);
        // re-check after each sleep so oversleep never compounds.
        for (;;) {
          const double budget = clock.seconds_until(planned.arrival);
          if (budget <= 0.0) break;
          std::this_thread::sleep_for(std::chrono::duration<double>(budget));
        }
        Completion c;
        c.kind = CompletionKind::kArrival;
        c.time = clock.now();
        c.request = planned;
        if (!queue.post(c)) return;  // queue closed under us: stop offering
      }
    });
  }
  for (auto& t : threads) t.join();
  queue.close();
}

}  // namespace pushpull::serve
