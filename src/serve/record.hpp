#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "serve/journal.hpp"
#include "serve/serve_config.hpp"
#include "workload/request.hpp"
#include "workload/trace.hpp"

namespace pushpull::serve {

/// Schema tags of the serve trace formats.
///
/// `sv1` (legacy, read-only): plain JSONL — a header line, request lines,
/// decision lines, a count footer. Still loadable so pre-journal
/// recordings replay unchanged.
///
/// `sv2` (written): the same payloads as length-prefixed framed records
/// (see journal.hpp) forming a crash-consistent write-ahead journal:
///   1. a header record carrying the full ServeConfig including the live
///      failure model (deadlines, fault channel, retry policy, ladder,
///      hedge/drain knobs) — everything replay and resume need;
///   2. one `{"t":..,"id":..,"item":..,"cls":..}` record per request, `t`
///      being the *observed* arrival stamp;
///   3. interleaved decision records: `{"d":"push"|"pull",..}`
///      transmissions, `{"d":"ladder","t":..,"from":..,"to":..}` overload
///      ladder transitions, and `{"d":"drain","t":..,"n":skipped}` drain
///      engagement;
///   4. a sealing `{"requests":N,"decisions":M,...ledger}` footer carrying
///      the conservation ledger.
/// All numbers are rendered with obs::render_number, so recording the same
/// accelerated run twice produces byte-identical files.
inline constexpr std::string_view kServeTraceSchema = "sv1";
inline constexpr std::string_view kServeJournalSchema = "sv2";

/// Writes an sv2 journal. Single-writer by design: only the server thread
/// records (arrivals at dispatch, decisions at transmission start), so
/// records never interleave. When constructed over a JournalFile the
/// recorder fsyncs every `config.journal_sync_every` records (0 = only at
/// seal); over a plain ostream it just writes (tests record into strings).
class TraceRecorder {
 public:
  /// Writes the header record immediately.
  TraceRecorder(std::ostream& out, const ServeConfig& config);
  /// Same, with fsync batching against the file.
  TraceRecorder(JournalFile& file, const ServeConfig& config);

  void record_request(const workload::Request& request, double observed_time);
  void record_decision(bool push, double time, catalog::ItemId item,
                       std::size_t delivered);
  /// Stamps an overload-ladder transition into the decision log.
  void record_ladder(double time, int from, int to);
  /// Stamps drain engagement (admission stopped; `skipped` planned
  /// arrivals were never injected).
  void record_drain(double time, std::uint64_t skipped);

  /// Seals the journal: writes the footer with the conservation ledger and
  /// syncs. Idempotent.
  void seal(const ConservationLedger& ledger);

  /// Seals with a zero ledger (legacy path / destructor safety net).
  void finish();

  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

 private:
  void append(const std::string& payload);

  std::ostream* out_;
  JournalFile* file_ = nullptr;
  std::size_t sync_every_ = 0;
  std::size_t since_sync_ = 0;
  std::uint64_t requests_ = 0;
  std::uint64_t decisions_ = 0;
  bool finished_ = false;
};

/// A parsed serve trace: the run's configuration plus its request log,
/// sorted by (arrival, id) — realtime pacer threads can interleave posts,
/// and workload::Trace requires sorted arrivals.
struct RecordedRun {
  ServeConfig config;
  std::vector<workload::Request> requests;
  std::uint64_t decisions = 0;
  /// The sealed footer's conservation ledger (zero for sv1 files).
  ConservationLedger ledger;

  [[nodiscard]] workload::Trace trace() const {
    return workload::Trace(requests);
  }
};

/// Parses a complete serve trace (sv1 plain JSONL or sv2 framed journal —
/// auto-detected). Throws std::runtime_error naming the record on any
/// malformed input: wrong schema, unparsable fields, a missing footer,
/// truncated framing, or a footer count that disagrees with the records
/// actually present.
[[nodiscard]] RecordedRun load_trace(std::istream& in);

/// load_trace from a file path (std::runtime_error when unreadable).
[[nodiscard]] RecordedRun load_trace_file(const std::string& path);

/// Crash recovery: the longest valid prefix of a possibly truncated sv2
/// journal. The header must be intact (recovery without the config is
/// meaningless — std::runtime_error otherwise); everything after it is
/// salvaged record by record until the first incomplete/garbled frame or
/// unparsable payload.
struct RecoveredRun {
  RecordedRun run;
  /// True when the sealing footer was present and consistent — i.e. the
  /// journal is complete and `run` is the whole recording.
  bool sealed = false;
  /// Complete records salvaged (header included).
  std::uint64_t records = 0;
  /// Bytes of the valid prefix (what a repair would truncate the file to).
  std::uint64_t bytes_consumed = 0;
};

[[nodiscard]] RecoveredRun recover_trace(std::istream& in);
[[nodiscard]] RecoveredRun recover_trace_file(const std::string& path);

}  // namespace pushpull::serve
