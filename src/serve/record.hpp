#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "serve/serve_config.hpp"
#include "workload/request.hpp"
#include "workload/trace.hpp"

namespace pushpull::serve {

/// Schema tag of the serve trace format. An `sv1` file is JSONL:
///   1. a header line carrying the full ServeConfig (workload universe +
///      scheduler + serving knobs) — everything replay needs to rebuild the
///      catalog, population and DES configuration;
///   2. one `{"t":..,"id":..,"item":..,"cls":..}` line per request, `t`
///      being the *observed* arrival stamp (planned == observed on the
///      virtual clock; wall-skewed in realtime mode);
///   3. interleaved `{"d":"push"|"pull","t":..,"item":..,"n":..}` decision
///      lines — the scheduler's transmission log, for humans and diff
///      tools; replay derives decisions from the DES, not from these;
///   4. a `{"requests":N,"decisions":M}` footer guarding truncation.
/// All numbers are rendered with obs::render_number, so recording the same
/// accelerated run twice produces byte-identical files.
inline constexpr std::string_view kServeTraceSchema = "sv1";

/// Writes an sv1 stream. Single-writer by design: only the server thread
/// records (arrivals at dispatch, decisions at transmission start), so
/// lines never interleave.
class TraceRecorder {
 public:
  /// Writes the header line immediately.
  TraceRecorder(std::ostream& out, const ServeConfig& config);

  void record_request(const workload::Request& request, double observed_time);
  void record_decision(bool push, double time, catalog::ItemId item,
                       std::size_t delivered);

  /// Writes the footer. Idempotent; called by the destructor if needed.
  void finish();

  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

 private:
  std::ostream* out_;
  std::uint64_t requests_ = 0;
  std::uint64_t decisions_ = 0;
  bool finished_ = false;
};

/// A parsed sv1 file: the run's configuration plus its request log, sorted
/// by (arrival, id) — realtime pacer threads can interleave posts, and
/// workload::Trace requires sorted arrivals.
struct RecordedRun {
  ServeConfig config;
  std::vector<workload::Request> requests;
  std::uint64_t decisions = 0;

  [[nodiscard]] workload::Trace trace() const {
    return workload::Trace(requests);
  }
};

/// Parses an sv1 stream. Throws std::runtime_error naming the line on any
/// malformed input: wrong schema, unparsable fields, a missing footer, or a
/// footer count that disagrees with the lines actually present.
[[nodiscard]] RecordedRun load_trace(std::istream& in);

/// load_trace from a file path (std::runtime_error when unreadable).
[[nodiscard]] RecordedRun load_trace_file(const std::string& path);

}  // namespace pushpull::serve
