#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace pushpull::serve {

/// The live-path conservation ledger (DESIGN §10): every request injected
/// into the server must be accounted for by exactly one terminal outcome
/// — or still be in flight when a drain cut the run short. The identity
///
///   injected = delivered + timed_out + rejected + shed + lost
///              + in_flight_at_drain
///
/// is machine-checked after every live run (LiveServer throws on any
/// imbalance) and sealed into the journal footer so a recovered run can be
/// audited offline.
struct ConservationLedger {
  std::uint64_t injected = 0;           // arrivals dispatched into the server
  std::uint64_t delivered = 0;          // served (push or pull)
  std::uint64_t timed_out = 0;          // per-request deadline expired
  std::uint64_t rejected = 0;           // refused at the uplink by the ladder
  std::uint64_t shed = 0;               // evicted/refused by the bounded queue
  std::uint64_t lost = 0;               // exhausted their retry budget
  std::uint64_t in_flight_at_drain = 0; // still waiting when the drain sealed

  [[nodiscard]] bool balanced() const noexcept {
    return injected == delivered + timed_out + rejected + shed + lost +
                           in_flight_at_drain;
  }

  /// The ledger as a JSON object ({"injected":..,...}), with fields in
  /// fixed declaration order — byte-stable for identical ledgers.
  [[nodiscard]] std::string render_json() const;
};

/// --- sv2 journal framing ---------------------------------------------------
///
/// An sv2 journal is a sequence of length-prefixed records:
///
///   <8 lowercase hex digits: payload byte count> <payload> '\n'
///
/// The payload is one JSON object (the same header/request/decision/footer
/// payloads the sv1 format used as bare lines). The fixed-width prefix
/// makes truncation detection exact: a reader accepts a record only when
/// the full prefix, separator, payload and terminating newline are all
/// present, so any byte-level truncation or splice cuts the journal at a
/// record boundary — the crash-recovery contract of `pushpull serve
/// --resume`.
inline constexpr std::size_t kFrameDigits = 8;

/// Frames one payload (no embedded newlines allowed; throws
/// std::invalid_argument otherwise).
[[nodiscard]] std::string frame_record(std::string_view payload);

/// Result of scanning a (possibly truncated) framed stream.
struct JournalScan {
  std::vector<std::string> payloads;  // complete records, in order
  std::uint64_t bytes_consumed = 0;   // length of the valid prefix
  bool truncated = false;  // trailing partial/garbled bytes were discarded
};

/// Reads framed records until EOF or the first malformed/incomplete frame.
/// Never throws on bad framing — the valid prefix is the result.
[[nodiscard]] JournalScan scan_journal(std::istream& in);

/// File-backed journal sink with explicit durability: write through
/// stream(), then sync() flushes the stdio buffer and fdatasync()s the
/// file so every record written before the call survives a crash-kill.
/// TraceRecorder batches sync() every ServeConfig::journal_sync_every
/// records and always syncs at seal.
class JournalFile {
 public:
  /// Creates/truncates `path`; throws std::runtime_error when unwritable.
  explicit JournalFile(const std::string& path);
  ~JournalFile();
  JournalFile(const JournalFile&) = delete;
  JournalFile& operator=(const JournalFile&) = delete;

  [[nodiscard]] std::ostream& stream();
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Flush + fdatasync. Throws std::runtime_error on a write failure.
  void sync();

 private:
  struct Impl;
  Impl* impl_;
  std::string path_;
};

}  // namespace pushpull::serve
