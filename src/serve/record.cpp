#include "serve/record.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/export.hpp"

namespace pushpull::serve {

namespace {

using obs::render_number;

[[nodiscard]] sched::PullPolicyKind pull_policy_from(const std::string& name) {
  for (const auto kind :
       {sched::PullPolicyKind::kFcfs, sched::PullPolicyKind::kMrf,
        sched::PullPolicyKind::kStretch, sched::PullPolicyKind::kPriority,
        sched::PullPolicyKind::kRxw, sched::PullPolicyKind::kLwf,
        sched::PullPolicyKind::kImportance,
        sched::PullPolicyKind::kImportanceQueueAware}) {
    if (name == sched::to_string(kind)) return kind;
  }
  throw std::runtime_error("serve trace: unknown pull policy \"" + name +
                           "\"");
}

[[nodiscard]] sched::PushPolicyKind push_policy_from(const std::string& name) {
  for (const auto kind :
       {sched::PushPolicyKind::kFlat, sched::PushPolicyKind::kBroadcastDisks,
        sched::PushPolicyKind::kSquareRootRule}) {
    if (name == sched::to_string(kind)) return kind;
  }
  throw std::runtime_error("serve trace: unknown push policy \"" + name +
                           "\"");
}

/// Position just past `"key":` in `line`, or npos when absent.
[[nodiscard]] std::size_t value_pos(const std::string& line,
                                    std::string_view key) {
  std::string needle;
  needle.reserve(key.size() + 3);
  needle += '"';
  needle += key;
  needle += "\":";
  const std::size_t at = line.find(needle);
  return at == std::string::npos ? std::string::npos : at + needle.size();
}

[[nodiscard]] bool has_key(const std::string& line, std::string_view key) {
  return value_pos(line, key) != std::string::npos;
}

[[nodiscard]] double number_field(const std::string& line,
                                  std::string_view key, std::size_t lineno) {
  const std::size_t at = value_pos(line, key);
  if (at == std::string::npos) {
    throw std::runtime_error("serve trace line " + std::to_string(lineno) +
                             ": missing field \"" + std::string(key) + "\"");
  }
  std::size_t end = at;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(line.data() + at, line.data() + end, value);
  if (ec != std::errc{} || ptr != line.data() + end) {
    throw std::runtime_error("serve trace line " + std::to_string(lineno) +
                             ": malformed number in field \"" +
                             std::string(key) + "\"");
  }
  return value;
}

[[nodiscard]] std::uint64_t count_field(const std::string& line,
                                        std::string_view key,
                                        std::size_t lineno) {
  const double value = number_field(line, key, lineno);
  if (value < 0.0 || value != static_cast<double>(
                                  static_cast<std::uint64_t>(value))) {
    throw std::runtime_error("serve trace line " + std::to_string(lineno) +
                             ": field \"" + std::string(key) +
                             "\" must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(value);
}

[[nodiscard]] std::string string_field(const std::string& line,
                                       std::string_view key,
                                       std::size_t lineno) {
  const std::size_t at = value_pos(line, key);
  if (at == std::string::npos || at >= line.size() || line[at] != '"') {
    throw std::runtime_error("serve trace line " + std::to_string(lineno) +
                             ": missing string field \"" + std::string(key) +
                             "\"");
  }
  const std::size_t close = line.find('"', at + 1);
  if (close == std::string::npos) {
    throw std::runtime_error("serve trace line " + std::to_string(lineno) +
                             ": unterminated string field \"" +
                             std::string(key) + "\"");
  }
  return line.substr(at + 1, close - at - 1);
}

[[nodiscard]] ServeConfig config_from_header(const std::string& line) {
  if (string_field(line, "schema", 1) != kServeTraceSchema) {
    throw std::runtime_error("serve trace: expected schema \"" +
                             std::string(kServeTraceSchema) + "\", got \"" +
                             string_field(line, "schema", 1) + "\"");
  }
  ServeConfig c;
  c.seed = count_field(line, "seed", 1);
  c.accelerated = count_field(line, "accelerated", 1) != 0;
  c.duration = number_field(line, "duration", 1);
  c.target_qps = number_field(line, "target_qps", 1);
  c.num_items = static_cast<std::size_t>(count_field(line, "items", 1));
  c.theta = number_field(line, "theta", 1);
  c.num_classes = static_cast<std::size_t>(count_field(line, "classes", 1));
  c.class_zipf_theta = number_field(line, "class_zipf_theta", 1);
  c.min_length =
      static_cast<std::uint32_t>(count_field(line, "min_length", 1));
  c.max_length =
      static_cast<std::uint32_t>(count_field(line, "max_length", 1));
  c.mean_length = number_field(line, "mean_length", 1);
  c.cutoff = static_cast<std::size_t>(count_field(line, "cutoff", 1));
  c.alpha = number_field(line, "alpha", 1);
  c.pull_policy = pull_policy_from(string_field(line, "pull_policy", 1));
  c.push_policy = push_policy_from(string_field(line, "push_policy", 1));
  c.mean_bandwidth_demand = number_field(line, "mean_demand", 1);
  c.validate();
  return c;
}

}  // namespace

TraceRecorder::TraceRecorder(std::ostream& out, const ServeConfig& config)
    : out_(&out) {
  *out_ << "{\"schema\":\"" << kServeTraceSchema << "\""
        << ",\"seed\":" << config.seed
        << ",\"accelerated\":" << (config.accelerated ? 1 : 0)
        << ",\"duration\":" << render_number(config.duration)
        << ",\"target_qps\":" << render_number(config.target_qps)
        << ",\"items\":" << config.num_items
        << ",\"theta\":" << render_number(config.theta)
        << ",\"classes\":" << config.num_classes
        << ",\"class_zipf_theta\":" << render_number(config.class_zipf_theta)
        << ",\"min_length\":" << config.min_length
        << ",\"max_length\":" << config.max_length
        << ",\"mean_length\":" << render_number(config.mean_length)
        << ",\"cutoff\":" << config.cutoff
        << ",\"alpha\":" << render_number(config.alpha)
        << ",\"pull_policy\":\"" << sched::to_string(config.pull_policy)
        << "\",\"push_policy\":\"" << sched::to_string(config.push_policy)
        << "\",\"mean_demand\":"
        << render_number(config.mean_bandwidth_demand) << "}\n";
}

void TraceRecorder::record_request(const workload::Request& request,
                                   double observed_time) {
  *out_ << "{\"t\":" << render_number(observed_time)
        << ",\"id\":" << request.id << ",\"item\":" << request.item
        << ",\"cls\":" << static_cast<std::uint64_t>(request.cls) << "}\n";
  ++requests_;
}

void TraceRecorder::record_decision(bool push, double time,
                                    catalog::ItemId item,
                                    std::size_t delivered) {
  *out_ << "{\"d\":\"" << (push ? "push" : "pull")
        << "\",\"t\":" << render_number(time) << ",\"item\":" << item
        << ",\"n\":" << delivered << "}\n";
  ++decisions_;
}

void TraceRecorder::finish() {
  if (finished_) return;
  finished_ = true;
  *out_ << "{\"requests\":" << requests_ << ",\"decisions\":" << decisions_
        << "}\n";
  out_->flush();
}

TraceRecorder::~TraceRecorder() { finish(); }

RecordedRun load_trace(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("serve trace: empty input (no header line)");
  }
  RecordedRun run;
  run.config = config_from_header(line);

  bool saw_footer = false;
  std::uint64_t decisions = 0;
  std::size_t lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (saw_footer) {
      throw std::runtime_error("serve trace line " + std::to_string(lineno) +
                               ": content after the footer");
    }
    if (has_key(line, "d")) {
      // Decision lines are informational; count them for the footer check.
      (void)number_field(line, "t", lineno);
      ++decisions;
      continue;
    }
    if (has_key(line, "id")) {
      workload::Request r;
      r.arrival = number_field(line, "t", lineno);
      r.id = count_field(line, "id", lineno);
      r.item = static_cast<catalog::ItemId>(count_field(line, "item", lineno));
      r.cls = static_cast<workload::ClassId>(
          count_field(line, "cls", lineno));
      if (r.item >= run.config.num_items) {
        throw std::runtime_error("serve trace line " + std::to_string(lineno) +
                                 ": item beyond the recorded catalog");
      }
      if (r.cls >= run.config.num_classes) {
        throw std::runtime_error("serve trace line " + std::to_string(lineno) +
                                 ": class beyond the recorded population");
      }
      run.requests.push_back(r);
      continue;
    }
    if (has_key(line, "requests")) {
      const std::uint64_t requests = count_field(line, "requests", lineno);
      const std::uint64_t footer_decisions =
          count_field(line, "decisions", lineno);
      if (requests != run.requests.size() || footer_decisions != decisions) {
        throw std::runtime_error(
            "serve trace: footer counts (" + std::to_string(requests) + "/" +
            std::to_string(footer_decisions) + ") disagree with lines read (" +
            std::to_string(run.requests.size()) + "/" +
            std::to_string(decisions) + ") — truncated or spliced file");
      }
      saw_footer = true;
      continue;
    }
    throw std::runtime_error("serve trace line " + std::to_string(lineno) +
                             ": unrecognized line");
  }
  if (!saw_footer) {
    throw std::runtime_error(
        "serve trace: missing footer line — truncated recording");
  }
  // Realtime pacers may interleave posts; Trace requires sorted arrivals.
  std::sort(run.requests.begin(), run.requests.end(),
            [](const workload::Request& a, const workload::Request& b) {
              return a.arrival != b.arrival ? a.arrival < b.arrival
                                            : a.id < b.id;
            });
  run.decisions = decisions;
  return run;
}

RecordedRun load_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("serve trace: cannot open \"" + path + "\"");
  }
  return load_trace(in);
}

}  // namespace pushpull::serve
