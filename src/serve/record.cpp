#include "serve/record.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/export.hpp"

namespace pushpull::serve {

namespace {

using obs::render_number;

[[nodiscard]] sched::PullPolicyKind pull_policy_from(const std::string& name) {
  for (const auto kind :
       {sched::PullPolicyKind::kFcfs, sched::PullPolicyKind::kMrf,
        sched::PullPolicyKind::kStretch, sched::PullPolicyKind::kPriority,
        sched::PullPolicyKind::kRxw, sched::PullPolicyKind::kLwf,
        sched::PullPolicyKind::kImportance,
        sched::PullPolicyKind::kImportanceQueueAware}) {
    if (name == sched::to_string(kind)) return kind;
  }
  throw std::runtime_error("serve trace: unknown pull policy \"" + name +
                           "\"");
}

[[nodiscard]] sched::PushPolicyKind push_policy_from(const std::string& name) {
  for (const auto kind :
       {sched::PushPolicyKind::kFlat, sched::PushPolicyKind::kBroadcastDisks,
        sched::PushPolicyKind::kSquareRootRule}) {
    if (name == sched::to_string(kind)) return kind;
  }
  throw std::runtime_error("serve trace: unknown push policy \"" + name +
                           "\"");
}

/// Position just past `"key":` in `line`, or npos when absent.
[[nodiscard]] std::size_t value_pos(const std::string& line,
                                    std::string_view key) {
  std::string needle;
  needle.reserve(key.size() + 3);
  needle += '"';
  needle += key;
  needle += "\":";
  const std::size_t at = line.find(needle);
  return at == std::string::npos ? std::string::npos : at + needle.size();
}

[[nodiscard]] bool has_key(const std::string& line, std::string_view key) {
  return value_pos(line, key) != std::string::npos;
}

[[nodiscard]] double number_field(const std::string& line,
                                  std::string_view key, std::size_t lineno) {
  const std::size_t at = value_pos(line, key);
  if (at == std::string::npos) {
    throw std::runtime_error("serve trace line " + std::to_string(lineno) +
                             ": missing field \"" + std::string(key) + "\"");
  }
  std::size_t end = at;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(line.data() + at, line.data() + end, value);
  if (ec != std::errc{} || ptr != line.data() + end) {
    throw std::runtime_error("serve trace line " + std::to_string(lineno) +
                             ": malformed number in field \"" +
                             std::string(key) + "\"");
  }
  return value;
}

[[nodiscard]] std::uint64_t count_field(const std::string& line,
                                        std::string_view key,
                                        std::size_t lineno) {
  const double value = number_field(line, key, lineno);
  if (value < 0.0 || value != static_cast<double>(
                                  static_cast<std::uint64_t>(value))) {
    throw std::runtime_error("serve trace line " + std::to_string(lineno) +
                             ": field \"" + std::string(key) +
                             "\" must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(value);
}

[[nodiscard]] std::string string_field(const std::string& line,
                                       std::string_view key,
                                       std::size_t lineno) {
  const std::size_t at = value_pos(line, key);
  if (at == std::string::npos || at >= line.size() || line[at] != '"') {
    throw std::runtime_error("serve trace line " + std::to_string(lineno) +
                             ": missing string field \"" + std::string(key) +
                             "\"");
  }
  const std::size_t close = line.find('"', at + 1);
  if (close == std::string::npos) {
    throw std::runtime_error("serve trace line " + std::to_string(lineno) +
                             ": unterminated string field \"" +
                             std::string(key) + "\"");
  }
  return line.substr(at + 1, close - at - 1);
}

/// "0.5,1,2" → {0.5, 1.0, 2.0}; "" → {}. Throws on garble.
[[nodiscard]] std::vector<double> csv_doubles(const std::string& csv,
                                              std::string_view key) {
  std::vector<double> out;
  if (csv.empty()) return out;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    std::size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(csv.data() + pos, csv.data() + comma, value);
    if (ec != std::errc{} || ptr != csv.data() + comma) {
      throw std::runtime_error("serve trace: malformed number in \"" +
                               std::string(key) + "\" list");
    }
    out.push_back(value);
    if (comma == csv.size()) break;
    pos = comma + 1;
  }
  return out;
}

[[nodiscard]] std::string render_csv(const std::vector<double>& values) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ',';
    out += render_number(values[i]);
  }
  return out;
}

[[nodiscard]] ServeConfig config_from_header(const std::string& line) {
  const std::string schema = string_field(line, "schema", 1);
  if (schema != kServeTraceSchema && schema != kServeJournalSchema) {
    throw std::runtime_error("serve trace: expected schema \"" +
                             std::string(kServeTraceSchema) + "\" or \"" +
                             std::string(kServeJournalSchema) + "\", got \"" +
                             schema + "\"");
  }
  ServeConfig c;
  c.seed = count_field(line, "seed", 1);
  c.accelerated = count_field(line, "accelerated", 1) != 0;
  c.duration = number_field(line, "duration", 1);
  c.target_qps = number_field(line, "target_qps", 1);
  c.num_items = static_cast<std::size_t>(count_field(line, "items", 1));
  c.theta = number_field(line, "theta", 1);
  c.num_classes = static_cast<std::size_t>(count_field(line, "classes", 1));
  c.class_zipf_theta = number_field(line, "class_zipf_theta", 1);
  c.min_length =
      static_cast<std::uint32_t>(count_field(line, "min_length", 1));
  c.max_length =
      static_cast<std::uint32_t>(count_field(line, "max_length", 1));
  c.mean_length = number_field(line, "mean_length", 1);
  c.cutoff = static_cast<std::size_t>(count_field(line, "cutoff", 1));
  c.alpha = number_field(line, "alpha", 1);
  c.pull_policy = pull_policy_from(string_field(line, "pull_policy", 1));
  c.push_policy = push_policy_from(string_field(line, "push_policy", 1));
  c.mean_bandwidth_demand = number_field(line, "mean_demand", 1);
  if (schema == kServeJournalSchema) {
    // The v2 header always carries the live failure model, defaults
    // included, so resume/replay rebuild the exact configuration.
    c.mean_deadline = number_field(line, "mean_deadline", 1);
    c.deadline_scale =
        csv_doubles(string_field(line, "deadline_scale", 1), "deadline_scale");
    c.deadline_spike_factor = number_field(line, "spike_factor", 1);
    c.deadline_spike_start = number_field(line, "spike_start", 1);
    c.deadline_spike_duration = number_field(line, "spike_duration", 1);
    c.fault.enabled = count_field(line, "fault_enabled", 1) != 0;
    c.fault.channel.p_good_to_bad = number_field(line, "fault_p_gb", 1);
    c.fault.channel.p_bad_to_good = number_field(line, "fault_p_bg", 1);
    c.fault.channel.corrupt_good = number_field(line, "fault_corrupt_good", 1);
    c.fault.channel.corrupt_bad = number_field(line, "fault_corrupt_bad", 1);
    c.fault.retry.max_retries =
        static_cast<std::uint32_t>(count_field(line, "retry_max", 1));
    c.fault.retry.backoff_base = number_field(line, "retry_base", 1);
    c.fault.retry.backoff_multiplier = number_field(line, "retry_mult", 1);
    c.fault.retry.max_backoff = number_field(line, "retry_cap", 1);
    c.fault.queue_capacity =
        static_cast<std::size_t>(count_field(line, "fault_queue_cap", 1));
    c.fault.shed_policy =
        fault::parse_shed_policy(string_field(line, "shed_policy", 1));
    c.overload.enabled = count_field(line, "ladder_enabled", 1) != 0;
    c.overload.eval_interval = number_field(line, "ladder_interval", 1);
    c.overload.ewma_alpha = number_field(line, "ladder_alpha", 1);
    c.overload.blocking_ref = number_field(line, "ladder_blocking_ref", 1);
    c.overload.capacity_ref =
        static_cast<std::size_t>(count_field(line, "ladder_capacity", 1));
    c.overload.cutoff_step =
        static_cast<std::size_t>(count_field(line, "ladder_step", 1));
    const std::vector<double> enter =
        csv_doubles(string_field(line, "ladder_enter", 1), "ladder_enter");
    const std::vector<double> exit =
        csv_doubles(string_field(line, "ladder_exit", 1), "ladder_exit");
    if (enter.size() != c.overload.enter.size() ||
        exit.size() != c.overload.exit.size()) {
      throw std::runtime_error(
          "serve trace: ladder_enter/ladder_exit must carry one threshold "
          "per ladder rung");
    }
    std::copy(enter.begin(), enter.end(), c.overload.enter.begin());
    std::copy(exit.begin(), exit.end(), c.overload.exit.begin());
    c.hedge_after = number_field(line, "hedge_after", 1);
    c.drain_after = number_field(line, "drain_after", 1);
    c.journal_sync_every =
        static_cast<std::size_t>(count_field(line, "sync_every", 1));
  }
  c.validate();
  return c;
}

[[nodiscard]] std::string render_header(const ServeConfig& config) {
  std::ostringstream out;
  out << "{\"schema\":\"" << kServeJournalSchema << "\""
      << ",\"seed\":" << config.seed
      << ",\"accelerated\":" << (config.accelerated ? 1 : 0)
      << ",\"duration\":" << render_number(config.duration)
      << ",\"target_qps\":" << render_number(config.target_qps)
      << ",\"items\":" << config.num_items
      << ",\"theta\":" << render_number(config.theta)
      << ",\"classes\":" << config.num_classes
      << ",\"class_zipf_theta\":" << render_number(config.class_zipf_theta)
      << ",\"min_length\":" << config.min_length
      << ",\"max_length\":" << config.max_length
      << ",\"mean_length\":" << render_number(config.mean_length)
      << ",\"cutoff\":" << config.cutoff
      << ",\"alpha\":" << render_number(config.alpha)
      << ",\"pull_policy\":\"" << sched::to_string(config.pull_policy)
      << "\",\"push_policy\":\"" << sched::to_string(config.push_policy)
      << "\",\"mean_demand\":" << render_number(config.mean_bandwidth_demand)
      << ",\"mean_deadline\":" << render_number(config.mean_deadline)
      << ",\"deadline_scale\":\"" << render_csv(config.deadline_scale)
      << "\",\"spike_factor\":" << render_number(config.deadline_spike_factor)
      << ",\"spike_start\":" << render_number(config.deadline_spike_start)
      << ",\"spike_duration\":"
      << render_number(config.deadline_spike_duration)
      << ",\"fault_enabled\":" << (config.fault.enabled ? 1 : 0)
      << ",\"fault_p_gb\":" << render_number(config.fault.channel.p_good_to_bad)
      << ",\"fault_p_bg\":" << render_number(config.fault.channel.p_bad_to_good)
      << ",\"fault_corrupt_good\":"
      << render_number(config.fault.channel.corrupt_good)
      << ",\"fault_corrupt_bad\":"
      << render_number(config.fault.channel.corrupt_bad)
      << ",\"retry_max\":" << config.fault.retry.max_retries
      << ",\"retry_base\":" << render_number(config.fault.retry.backoff_base)
      << ",\"retry_mult\":"
      << render_number(config.fault.retry.backoff_multiplier)
      << ",\"retry_cap\":" << render_number(config.fault.retry.max_backoff)
      << ",\"fault_queue_cap\":" << config.fault.queue_capacity
      << ",\"shed_policy\":\"" << fault::to_string(config.fault.shed_policy)
      << "\",\"ladder_enabled\":" << (config.overload.enabled ? 1 : 0)
      << ",\"ladder_interval\":" << render_number(config.overload.eval_interval)
      << ",\"ladder_alpha\":" << render_number(config.overload.ewma_alpha)
      << ",\"ladder_blocking_ref\":"
      << render_number(config.overload.blocking_ref)
      << ",\"ladder_capacity\":" << config.overload.capacity_ref
      << ",\"ladder_step\":" << config.overload.cutoff_step
      << ",\"ladder_enter\":\""
      << render_csv({config.overload.enter.begin(),
                     config.overload.enter.end()})
      << "\",\"ladder_exit\":\""
      << render_csv({config.overload.exit.begin(), config.overload.exit.end()})
      << "\",\"hedge_after\":" << render_number(config.hedge_after)
      << ",\"drain_after\":" << render_number(config.drain_after)
      << ",\"sync_every\":" << config.journal_sync_every << "}";
  return out.str();
}

[[nodiscard]] std::string render_footer(std::uint64_t requests,
                                        std::uint64_t decisions,
                                        const ConservationLedger& ledger) {
  std::string out = "{\"requests\":" + std::to_string(requests) +
                    ",\"decisions\":" + std::to_string(decisions) +
                    ",\"ledger\":" + ledger.render_json() + "}";
  return out;
}

[[nodiscard]] ConservationLedger ledger_from_footer(const std::string& line,
                                                    std::size_t lineno) {
  ConservationLedger ledger;
  if (!has_key(line, "ledger")) return ledger;  // sv1 footers carry none
  ledger.injected = count_field(line, "injected", lineno);
  ledger.delivered = count_field(line, "delivered", lineno);
  ledger.timed_out = count_field(line, "timed_out", lineno);
  ledger.rejected = count_field(line, "rejected", lineno);
  ledger.shed = count_field(line, "shed", lineno);
  ledger.lost = count_field(line, "lost", lineno);
  ledger.in_flight_at_drain = count_field(line, "in_flight_at_drain", lineno);
  return ledger;
}

enum class PayloadKind { kRequest, kDecision, kFooter };

/// Parses one body payload into `run`, throwing std::runtime_error on any
/// malformed content. `lineno` is 1-based (header = 1).
PayloadKind apply_payload(RecordedRun& run, std::uint64_t& decisions,
                          const std::string& line, std::size_t lineno) {
  if (line.empty()) {
    throw std::runtime_error("serve trace line " + std::to_string(lineno) +
                             ": empty record");
  }
  if (has_key(line, "d")) {
    // Decision records are informational; count them for the footer check.
    (void)number_field(line, "t", lineno);
    ++decisions;
    return PayloadKind::kDecision;
  }
  if (has_key(line, "id")) {
    workload::Request r;
    r.arrival = number_field(line, "t", lineno);
    r.id = count_field(line, "id", lineno);
    r.item = static_cast<catalog::ItemId>(count_field(line, "item", lineno));
    r.cls = static_cast<workload::ClassId>(count_field(line, "cls", lineno));
    if (r.item >= run.config.num_items) {
      throw std::runtime_error("serve trace line " + std::to_string(lineno) +
                               ": item beyond the recorded catalog");
    }
    if (r.cls >= run.config.num_classes) {
      throw std::runtime_error("serve trace line " + std::to_string(lineno) +
                               ": class beyond the recorded population");
    }
    run.requests.push_back(r);
    return PayloadKind::kRequest;
  }
  if (has_key(line, "requests")) {
    const std::uint64_t requests = count_field(line, "requests", lineno);
    const std::uint64_t footer_decisions =
        count_field(line, "decisions", lineno);
    if (requests != run.requests.size() || footer_decisions != decisions) {
      throw std::runtime_error(
          "serve trace: footer counts (" + std::to_string(requests) + "/" +
          std::to_string(footer_decisions) + ") disagree with records read (" +
          std::to_string(run.requests.size()) + "/" +
          std::to_string(decisions) + ") — truncated or spliced file");
    }
    run.ledger = ledger_from_footer(line, lineno);
    return PayloadKind::kFooter;
  }
  throw std::runtime_error("serve trace line " + std::to_string(lineno) +
                           ": unrecognized record");
}

void sort_requests(RecordedRun& run) {
  // Realtime pacers may interleave posts; Trace requires sorted arrivals.
  std::sort(run.requests.begin(), run.requests.end(),
            [](const workload::Request& a, const workload::Request& b) {
              return a.arrival != b.arrival ? a.arrival < b.arrival
                                            : a.id < b.id;
            });
}

[[nodiscard]] RecordedRun load_trace_v1(std::istream& in, std::string line) {
  RecordedRun run;
  run.config = config_from_header(line);
  bool saw_footer = false;
  std::uint64_t decisions = 0;
  std::size_t lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (saw_footer) {
      throw std::runtime_error("serve trace line " + std::to_string(lineno) +
                               ": content after the footer");
    }
    if (apply_payload(run, decisions, line, lineno) == PayloadKind::kFooter) {
      saw_footer = true;
    }
  }
  if (!saw_footer) {
    throw std::runtime_error(
        "serve trace: missing footer record — truncated recording");
  }
  sort_requests(run);
  run.decisions = decisions;
  return run;
}

}  // namespace

TraceRecorder::TraceRecorder(std::ostream& out, const ServeConfig& config)
    : out_(&out) {
  append(render_header(config));
}

TraceRecorder::TraceRecorder(JournalFile& file, const ServeConfig& config)
    : out_(&file.stream()),
      file_(&file),
      sync_every_(config.journal_sync_every) {
  append(render_header(config));
}

void TraceRecorder::append(const std::string& payload) {
  *out_ << frame_record(payload);
  if (file_ != nullptr && sync_every_ > 0 && ++since_sync_ >= sync_every_) {
    since_sync_ = 0;
    file_->sync();
  }
}

void TraceRecorder::record_request(const workload::Request& request,
                                   double observed_time) {
  std::ostringstream payload;
  payload << "{\"t\":" << render_number(observed_time)
          << ",\"id\":" << request.id << ",\"item\":" << request.item
          << ",\"cls\":" << static_cast<std::uint64_t>(request.cls) << "}";
  append(payload.str());
  ++requests_;
}

void TraceRecorder::record_decision(bool push, double time,
                                    catalog::ItemId item,
                                    std::size_t delivered) {
  std::ostringstream payload;
  payload << "{\"d\":\"" << (push ? "push" : "pull")
          << "\",\"t\":" << render_number(time) << ",\"item\":" << item
          << ",\"n\":" << delivered << "}";
  append(payload.str());
  ++decisions_;
}

void TraceRecorder::record_ladder(double time, int from, int to) {
  std::ostringstream payload;
  payload << "{\"d\":\"ladder\",\"t\":" << render_number(time)
          << ",\"from\":" << from << ",\"to\":" << to << "}";
  append(payload.str());
  ++decisions_;
}

void TraceRecorder::record_drain(double time, std::uint64_t skipped) {
  std::ostringstream payload;
  payload << "{\"d\":\"drain\",\"t\":" << render_number(time)
          << ",\"n\":" << skipped << "}";
  append(payload.str());
  ++decisions_;
}

void TraceRecorder::seal(const ConservationLedger& ledger) {
  if (finished_) return;
  finished_ = true;
  append(render_footer(requests_, decisions_, ledger));
  out_->flush();
  if (file_ != nullptr) file_->sync();
}

void TraceRecorder::finish() { seal(ConservationLedger{}); }

TraceRecorder::~TraceRecorder() { finish(); }

RecordedRun load_trace(std::istream& in) {
  const int first = in.peek();
  if (first == std::istream::traits_type::eof()) {
    throw std::runtime_error("serve trace: empty input (no header record)");
  }
  if (first == '{') {
    // Legacy sv1: plain JSONL, header on the first line.
    std::string line;
    if (!std::getline(in, line)) {
      throw std::runtime_error("serve trace: empty input (no header record)");
    }
    return load_trace_v1(in, std::move(line));
  }
  const JournalScan scan = scan_journal(in);
  if (scan.payloads.empty()) {
    throw std::runtime_error(
        "serve trace: no complete journal record (garbled or truncated "
        "framing)");
  }
  if (scan.truncated) {
    throw std::runtime_error(
        "serve trace: garbled or truncated journal framing — use recovery "
        "(serve --resume) to salvage the valid prefix");
  }
  RecordedRun run;
  run.config = config_from_header(scan.payloads.front());
  bool saw_footer = false;
  std::uint64_t decisions = 0;
  for (std::size_t i = 1; i < scan.payloads.size(); ++i) {
    if (saw_footer) {
      throw std::runtime_error("serve trace record " + std::to_string(i + 1) +
                               ": content after the footer");
    }
    if (apply_payload(run, decisions, scan.payloads[i], i + 1) ==
        PayloadKind::kFooter) {
      saw_footer = true;
    }
  }
  if (!saw_footer) {
    throw std::runtime_error(
        "serve trace: missing footer record — unsealed journal (crashed "
        "run?); use recovery (serve --resume) to salvage the valid prefix");
  }
  sort_requests(run);
  run.decisions = decisions;
  return run;
}

RecordedRun load_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("serve trace: cannot open \"" + path + "\"");
  }
  return load_trace(in);
}

RecoveredRun recover_trace(std::istream& in) {
  const JournalScan scan = scan_journal(in);
  if (scan.payloads.empty()) {
    throw std::runtime_error(
        "serve recovery: no complete record — the header itself is "
        "truncated, nothing to recover");
  }
  RecoveredRun recovered;
  recovered.run.config = config_from_header(scan.payloads.front());
  recovered.records = 1;
  recovered.bytes_consumed =
      kFrameDigits + 1 + scan.payloads.front().size() + 1;
  std::uint64_t decisions = 0;
  for (std::size_t i = 1; i < scan.payloads.size(); ++i) {
    const std::size_t before_requests = recovered.run.requests.size();
    const std::uint64_t before_decisions = decisions;
    PayloadKind kind;
    try {
      kind = apply_payload(recovered.run, decisions, scan.payloads[i], i + 1);
    } catch (const std::runtime_error&) {
      // An intact frame with an unparsable payload ends the valid prefix —
      // everything before it is still good.
      recovered.run.requests.resize(before_requests);
      decisions = before_decisions;
      break;
    }
    recovered.records += 1;
    recovered.bytes_consumed += kFrameDigits + 1 + scan.payloads[i].size() + 1;
    if (kind == PayloadKind::kFooter) {
      recovered.sealed = true;
      break;
    }
  }
  sort_requests(recovered.run);
  recovered.run.decisions = decisions;
  return recovered;
}

RecoveredRun recover_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("serve recovery: cannot open \"" + path + "\"");
  }
  return recover_trace(in);
}

}  // namespace pushpull::serve
