#pragma once

#include <cstddef>
#include <cstdint>

#include "catalog/catalog.hpp"
#include "serve/clock.hpp"
#include "serve/completion_queue.hpp"
#include "workload/population.hpp"
#include "workload/trace.hpp"

namespace pushpull::serve {

/// Open-loop load source for the live server.
///
/// The entire request plan is synthesized *upfront* from a single
/// workload::RequestGenerator (Poisson arrivals at target_qps, items by
/// catalog popularity, classes by population share) — never per pacer
/// thread. That is the load half of the determinism fence: the plan is a
/// pure function of (catalog, population, qps, duration, seed), so pacer
/// count and scheduling jitter can skew *when* a request lands but never
/// *which* requests exist. A driver can also wrap an already-recorded
/// trace, which is how `pushpull loadtest --from-trace` re-offers a
/// captured workload.
///
/// Two consumption modes:
///  * accelerated — the server pumps `peek()`/`take()` directly and
///    advances its VirtualClock to each planned arrival instant; no
///    threads, bit-reproducible;
///  * realtime — `run_realtime()` shards the plan round-robin across pacer
///    threads that sleep until each planned instant and post the arrival to
///    the completion queue stamped with the *observed* clock reading.
class LoadDriver {
 public:
  /// Synthesizes the plan: Poisson arrivals at `target_qps` per broadcast
  /// unit until `duration`, seeded with `seed`.
  LoadDriver(const catalog::Catalog& cat,
             const workload::ClientPopulation& pop, double target_qps,
             double duration, std::uint64_t seed);

  /// Re-offers an existing trace as the plan (replayed load).
  explicit LoadDriver(workload::Trace plan);

  [[nodiscard]] const workload::Trace& plan() const noexcept { return plan_; }

  // --- accelerated pump ---------------------------------------------------

  /// Next planned request not yet taken, or nullptr when the plan is
  /// exhausted.
  [[nodiscard]] const workload::Request* peek() const noexcept {
    return next_ < plan_.size() ? &plan_[next_] : nullptr;
  }

  /// Consumes and returns the next planned request. Throws std::logic_error
  /// when the plan is exhausted (callers must peek first).
  [[nodiscard]] workload::Request take();

  [[nodiscard]] bool exhausted() const noexcept {
    return next_ >= plan_.size();
  }

  /// Planned requests not yet taken.
  [[nodiscard]] std::size_t remaining() const noexcept {
    return plan_.size() - next_;
  }

  // --- realtime pacing ----------------------------------------------------

  /// Spawns `pacers` producer threads that pace the plan against `clock`
  /// (sleeping out `clock.seconds_until(planned arrival)`, then posting a
  /// kArrival stamped `clock.now()`), joins them, and closes `queue` so the
  /// consumer sees end-of-load. Blocks until all load is delivered. The
  /// request's planned arrival rides along untouched; the completion's
  /// `time` is the observed stamp.
  void run_realtime(CompletionQueue& queue, Clock& clock, std::size_t pacers);

 private:
  workload::Trace plan_;
  std::size_t next_ = 0;
};

}  // namespace pushpull::serve
